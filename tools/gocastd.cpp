// gocastd — a live GoCast node (or a whole deployment) in one process.
//
// Two modes run the same protocol templates the simulator runs:
//
//   Loopback (default): GoCastNodeT<runtime::RealtimeContext> for N nodes
//   over the in-process loopback transport — timers sleep on the steady
//   clock, sends are delivered after an injected per-hop latency.
//
//   UDP (--node-id / --listen / --peers): GoCastNodeT<runtime::UdpContext>
//   for ONE node behind a real non-blocking UDP socket. Launch N processes
//   with the same --peers list, same --seed, and a shared --epoch and they
//   form one overlay: every process derives the same deterministic
//   bootstrap link set from the seed and installs the links incident to
//   itself, the lowest node id becomes the initial tree root, and
//   --inject-at names the (non-root) node that multicasts. Each process
//   exits 0 once it has delivered every expected multicast (after a short
//   --drain so laggards can still pull from it), 2 on timeout, 3 on
//   bind/config errors. SIGTERM/SIGINT interrupt the reactor, drain
//   briefly, and exit with the delivery status so far.
//
//   --groups G (UDP mode) derives a deterministic multi-group subscription
//   table from the shared seed (every process computes the same directory,
//   no coordination), the injector round-robins its multicasts over its
//   subscribed groups, and the exit code covers delivery in every group
//   this process subscribes to.
//
// Exit status is 0 only when delivery was complete — the quickstart doubles
// as a smoke test (tools/check.sh and CI run both modes).
//
// Loopback flags: --nodes N --messages K --payload BYTES --warmup SECS
//                 --latency-us U --jitter-us U --seed S
// UDP flags:      --node-id I --listen HOST:PORT --peers ID@HOST:PORT,...
//                 --inject-at I --messages K --payload BYTES --warmup SECS
//                 --timeout SECS --drain SECS --epoch UNIX_SECS --seed S
#include <algorithm>
#include <csignal>
#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "gocast/group_directory.h"
#include "gocast/node.h"
#include "harness/args.h"
#include "harness/table.h"
#include "runtime/realtime_runtime.h"
#include "runtime/udp_runtime.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

extern "C" void handle_stop_signal(int) { g_stop = 1; }

void install_signal_handlers() {
  struct sigaction sa {};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: epoll_wait must see EINTR promptly
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

/// Parses "HOST:PORT"; returns false on malformed input.
bool parse_hostport(const std::string& s, std::string& host,
                    std::uint16_t& port) {
  std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) {
    return false;
  }
  host = s.substr(0, colon);
  long p = 0;
  try {
    p = std::stol(s.substr(colon + 1));
  } catch (...) {
    return false;
  }
  if (p < 1 || p > 65535) return false;
  port = static_cast<std::uint16_t>(p);
  return true;
}

/// Parses "ID@HOST:PORT,ID@HOST:PORT,..." into peer specs.
bool parse_peers(const std::string& s,
                 std::vector<gocast::runtime::UdpPeerSpec>& out) {
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    std::string item =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? s.size() : comma + 1;
    if (item.empty()) continue;
    std::size_t at = item.find('@');
    if (at == std::string::npos || at == 0) return false;
    gocast::runtime::UdpPeerSpec spec;
    try {
      spec.id = static_cast<gocast::NodeId>(std::stoul(item.substr(0, at)));
    } catch (...) {
      return false;
    }
    if (!parse_hostport(item.substr(at + 1), spec.host, spec.port)) {
      return false;
    }
    out.push_back(std::move(spec));
  }
  return !out.empty();
}

/// The deterministic bootstrap link set every process derives from the
/// shared seed: two random links per node over the sorted id list, exactly
/// the wiring the loopback mode performs imperatively. Each process then
/// installs only the links incident to itself.
std::set<std::pair<gocast::NodeId, gocast::NodeId>> bootstrap_links(
    const std::vector<gocast::NodeId>& ids, gocast::Rng& init_rng) {
  std::set<std::pair<gocast::NodeId, gocast::NodeId>> links;
  // Attempts are capped: a small deployment can saturate (2 nodes have only
  // one possible pair), and every process must run the identical number of
  // RNG draws to stay in lockstep.
  const std::size_t max_attempts = 16 * ids.size() + 64;
  for (gocast::NodeId id : ids) {
    std::size_t made = 0;
    for (std::size_t attempt = 0; made < 2 && attempt < max_attempts;
         ++attempt) {
      gocast::NodeId other = ids[init_rng.next_below(ids.size())];
      auto key = std::minmax(id, other);
      if (other == id || links.count({key.first, key.second})) continue;
      links.insert({key.first, key.second});
      ++made;
    }
  }
  return links;
}

int run_udp_mode(const gocast::harness::Args& args) {
  using namespace gocast;

  runtime::UdpConfig rt_config;
  rt_config.self = static_cast<NodeId>(args.get_int("node-id", 0));
  rt_config.epoch_unix = args.get_double("epoch", 0.0);
  rt_config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::string listen = args.get("listen", "127.0.0.1:0");
  if (!parse_hostport(listen, rt_config.listen_host, rt_config.listen_port)) {
    std::cerr << "gocastd: bad --listen '" << listen << "'\n";
    return 3;
  }
  if (!parse_peers(args.get("peers", ""), rt_config.peers)) {
    std::cerr << "gocastd: UDP mode needs --peers ID@HOST:PORT,...\n";
    return 3;
  }

  // The full deployment id list: every process receives the same --peers
  // (including its own entry) so the bootstrap derivation agrees.
  std::vector<NodeId> ids;
  for (const auto& p : rt_config.peers) ids.push_back(p.id);
  ids.push_back(rt_config.self);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.size() < 2) {
    std::cerr << "gocastd: need at least 2 nodes\n";
    return 3;
  }
  const NodeId self = rt_config.self;
  const NodeId root = ids.front();
  const NodeId inject_at = static_cast<NodeId>(
      args.get_int("inject-at", static_cast<long>(ids[1])));
  if (inject_at == root) {
    std::cerr << "gocastd: --inject-at must name a non-root node (root is "
              << root << ")\n";
    return 3;
  }
  const std::size_t messages =
      static_cast<std::size_t>(args.get_int("messages", 4));
  const std::size_t payload =
      static_cast<std::size_t>(args.get_int("payload", 512));
  const double warmup = args.get_double("warmup", 2.0);
  const double timeout = args.get_double("timeout", 20.0);
  const double drain = args.get_double("drain", 1.0);

  std::unique_ptr<runtime::UdpRuntime> rt;
  try {
    rt = std::make_unique<runtime::UdpRuntime>(rt_config);
  } catch (const runtime::UdpSetupError& e) {
    std::cerr << "gocastd: " << e.what() << "\n";
    return 3;
  }
  install_signal_handlers();
  rt->watch_stop_flag(&g_stop);

  core::GoCastConfig config;
  config.tree.heartbeat_period = 0.25;
  config.dissemination.gossip_period = 0.1;
  for (std::size_t lm = 0; lm < std::min<std::size_t>(ids.size(), 4); ++lm) {
    config.landmarks.push_back(ids[lm]);
  }

  using LiveNode = core::GoCastNodeT<runtime::UdpContext>;
  Rng rng(rt_config.seed);
  // Fork per id exactly as the loopback mode does, so every process draws
  // the same per-node stream regardless of which node it hosts.
  Rng node_rng(0);
  for (NodeId id : ids) {
    Rng forked = rng.fork(static_cast<std::uint64_t>(id));
    if (id == self) node_rng = forked;
  }
  LiveNode node(self, *rt, config, node_rng);

  std::vector<membership::MemberEntry> others;
  for (NodeId id : ids) {
    if (id == self) {
      continue;
    }
    membership::MemberEntry entry;
    entry.id = id;
    others.push_back(entry);
  }
  node.seed_view(others);

  Rng init_rng = rng.fork("init");
  for (const auto& [a, b] : bootstrap_links(ids, init_rng)) {
    if (a == self) node.bootstrap_link(b, overlay::LinkKind::kRandom);
    if (b == self) node.bootstrap_link(a, overlay::LinkKind::kRandom);
  }
  if (self == root) node.become_root();

  // Keyed by (group, id): per-group MsgId sequences overlap, so the group
  // is part of a delivery's identity.
  std::map<std::pair<GroupId, MsgId>, std::size_t> delivered;
  node.set_delivery_hook([&delivered](const core::DeliveryEvent& e) {
    ++delivered[{e.group, e.id}];
  });

  // Multi-group deployment (--groups G): the directory derives from
  // (topology, n, seed) over the dense universe [0, n), so every process
  // computes identical subscriptions with zero coordination. The injector
  // round-robins its multicasts over its own subscribed groups, and each
  // process's exit code covers every group it subscribes to.
  const std::size_t group_count =
      static_cast<std::size_t>(args.get_int("groups", 1));
  std::shared_ptr<core::GroupDirectory> directory;
  std::vector<GroupId> inject_groups{kDefaultGroup};
  if (group_count > 1) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] != static_cast<NodeId>(i)) {
        std::cerr << "gocastd: --groups needs dense node ids 0.."
                  << ids.size() - 1 << "\n";
        return 3;
      }
    }
    core::GroupTopology topology;
    topology.group_count = group_count;
    topology.min_group_size = 2;  // swarms are small; keep every group real
    directory = std::make_shared<core::GroupDirectory>(topology, ids.size(),
                                                       rt_config.seed);
    node.enable_multigroup(directory);
    for (GroupId g : directory->groups_of(self)) node.join_group(g);
    // Ring-bootstrap each extra group over its sorted member list (every
    // process derives the same ring and installs the links incident to
    // itself); the lowest member roots the group's tree.
    for (GroupId g = 1; g < static_cast<GroupId>(group_count); ++g) {
      const std::vector<NodeId>& members = directory->members(g);
      if (members.size() >= 2) {
        const std::size_t ring = members.size() == 2 ? 1 : members.size();
        for (std::size_t i = 0; i < ring; ++i) {
          NodeId a = members[i];
          NodeId b = members[(i + 1) % members.size()];
          if (a == self) node.bootstrap_link(b, overlay::LinkKind::kRandom);
          if (b == self) node.bootstrap_link(a, overlay::LinkKind::kRandom);
        }
      }
      if (!members.empty() && members.front() == self) node.become_root_in(g);
    }
    for (GroupId g : directory->groups_of(inject_at)) {
      inject_groups.push_back(g);
    }
  }

  node.start(init_rng.next_range(0.0, 0.1));
  std::cout << "gocastd: node " << self << " on " << rt_config.listen_host
            << ":" << rt->port() << ", " << ids.size()
            << "-node deployment, root " << root << ", warming up " << warmup
            << " s...\n";
  rt->run_for(warmup);

  if (self == inject_at && !g_stop) {
    for (std::size_t k = 0; k < messages; ++k) {
      const GroupId group = inject_groups[k % inject_groups.size()];
      rt->schedule_after(0.05 * static_cast<double>(k),
                         [&node, &rt, payload, group] {
                           MsgId id = node.multicast_in(group, payload);
                           std::cout << "  t=" << rt->now()
                                     << " s: multicast " << id.origin << ":"
                                     << id.seq << " group " << group << "\n";
                         });
    }
  }

  // Count multicasts from the injector that reached this node, per group;
  // every process must see all of them in every group it subscribes to
  // (the injector included, via its own delivery hook).
  auto delivered_all = [&] {
    std::map<GroupId, std::size_t> expect;
    for (std::size_t k = 0; k < messages; ++k) {
      const GroupId g = inject_groups[k % inject_groups.size()];
      if (g == kDefaultGroup ||
          (directory != nullptr && directory->subscribed(self, g))) {
        ++expect[g];
      }
    }
    for (const auto& [g, want] : expect) {
      std::size_t seen = 0;
      for (const auto& [key, count] : delivered) {
        if (key.first == g && key.second.origin == inject_at && count > 0) {
          ++seen;
        }
      }
      if (seen < want) return false;
    }
    return true;
  };

  const SimTime deadline = rt->now() + timeout;
  while (!g_stop && !delivered_all() && rt->now() < deadline) {
    rt->run_for(0.1);
  }
  const bool complete = delivered_all();

  // Keep forwarding briefly so nodes still catching up can pull from us —
  // a process that exits the instant it finishes starves the tail of the
  // swarm.
  if (!g_stop && drain > 0.0) rt->run_for(drain);

  const auto& stats = rt->stats();
  std::cout << "gocastd: node " << self << (g_stop ? " (interrupted)" : "")
            << ": delivered " << node.deliveries_count() << ", duplicates "
            << node.duplicates_count() << ", degree "
            << node.overlay().degree() << "  (udp: " << stats.datagrams_sent
            << " sent, " << stats.datagrams_received << " received, "
            << stats.rejected_frames << " rejected, " << stats.send_failures
            << " send failures)\n";
  if (!complete) {
    std::cout << "FAILED: incomplete delivery\n";
    return 2;
  }
  if (group_count > 1) {
    std::cout << "OK: node " << self << " delivered every multicast in all "
              << (1 + directory->groups_of(self).size())
              << " subscribed groups\n";
  } else {
    std::cout << "OK: node " << self << " delivered every multicast\n";
  }
  return 0;
}

int run_loopback_mode(const gocast::harness::Args& args) {
  using namespace gocast;

  const std::size_t n = static_cast<std::size_t>(args.get_int("nodes", 8));
  const std::size_t messages =
      static_cast<std::size_t>(args.get_int("messages", 4));
  const std::size_t payload =
      static_cast<std::size_t>(args.get_int("payload", 512));
  const double warmup = args.get_double("warmup", 2.0);
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (n < 2) {
    std::cerr << "gocastd: need at least 2 nodes\n";
    return 3;
  }
  if (args.get_int("groups", 1) > 1) {
    std::cerr << "gocastd: --groups is a UDP-mode flag (use --node-id / "
                 "--listen / --peers)\n";
    return 3;
  }

  runtime::RealtimeConfig rt_config;
  rt_config.one_way_latency = args.get_double("latency-us", 200.0) * 1e-6;
  rt_config.jitter = args.get_double("jitter-us", 50.0) * 1e-6;
  rt_config.seed = seed;
  runtime::RealtimeRuntime rt(rt_config);
  for (std::size_t i = 0; i < n; ++i) rt.add_node();
  install_signal_handlers();

  // Protocol periods scaled for an interactive demo: the defaults target
  // long simulated runs (15 s heartbeats), which would make a human wait.
  core::GoCastConfig config;
  config.tree.heartbeat_period = 0.25;
  config.dissemination.gossip_period = 0.1;
  for (NodeId lm = 0; lm < std::min<std::size_t>(n, 4); ++lm) {
    config.landmarks.push_back(lm);
  }

  using LiveNode = core::GoCastNodeT<runtime::RealtimeContext>;
  Rng rng(seed);
  std::vector<std::unique_ptr<LiveNode>> nodes;
  nodes.reserve(n);
  for (NodeId id = 0; id < n; ++id) {
    nodes.push_back(std::make_unique<LiveNode>(
        id, rt, config, rng.fork(static_cast<std::uint64_t>(id))));
  }

  // Same initialization a deployment's bootstrap service would provide:
  // every node knows the full (small) membership and starts with two random
  // links; node 0 is the initial root, as in the paper.
  Rng init_rng = rng.fork("init");
  std::vector<membership::MemberEntry> all(n);
  for (NodeId id = 0; id < n; ++id) all[id].id = id;
  for (NodeId id = 0; id < n; ++id) {
    std::vector<membership::MemberEntry> others;
    for (const auto& entry : all) {
      if (entry.id != id) others.push_back(entry);
    }
    nodes[id]->seed_view(others);
  }
  for (NodeId id = 0; id < n; ++id) {
    std::size_t made = 0;
    while (made < 2) {
      NodeId other = static_cast<NodeId>(init_rng.next_below(n));
      if (other == id || nodes[id]->overlay().is_neighbor(other)) continue;
      nodes[id]->bootstrap_link(other, overlay::LinkKind::kRandom);
      nodes[other]->bootstrap_link(id, overlay::LinkKind::kRandom);
      ++made;
    }
  }
  nodes[0]->become_root();

  std::map<MsgId, std::size_t> delivered;
  for (auto& node : nodes) {
    node->set_delivery_hook(
        [&delivered](const core::DeliveryEvent& e) { ++delivered[e.id]; });
  }

  for (NodeId id = 0; id < n; ++id) {
    nodes[id]->start(init_rng.next_range(0.0, 0.1));
  }

  std::cout << "gocastd: " << n << " live nodes, one-way latency "
            << rt_config.one_way_latency * 1e6 << " us, warming up " << warmup
            << " s...\n";
  rt.run_for(warmup);

  // Inject every multicast at a non-root node; the first tree hop is then a
  // real child→parent→subtree traversal, not a root-local shortcut.
  struct Inject {
    runtime::RealtimeRuntime* rt;
    std::vector<std::unique_ptr<LiveNode>>* nodes;
    std::size_t payload;
  } inject{&rt, &nodes, payload};
  for (std::size_t k = 0; k < messages; ++k) {
    NodeId sender = static_cast<NodeId>(1 + k % (n - 1));
    rt.schedule_after(0.05 * static_cast<double>(k), [&inject, sender] {
      MsgId id = (*inject.nodes)[sender]->multicast(inject.payload);
      std::cout << "  t=" << inject.rt->now() << " s: node " << sender
                << " multicast " << id.origin << ":" << id.seq << "\n";
    });
  }
  // Run long enough for the burst plus gossip recovery of any tree misses.
  rt.run_for(0.05 * static_cast<double>(messages) + 2.0);

  harness::Table table({"node", "deliveries", "duplicates", "degree"});
  for (const auto& node : nodes) {
    table.add_row({std::to_string(node->id()),
                   std::to_string(node->deliveries_count()),
                   std::to_string(node->duplicates_count()),
                   std::to_string(node->overlay().degree())});
  }
  table.print(std::cout);

  std::size_t complete = 0;
  for (const auto& [id, count] : delivered) {
    if (count == n) ++complete;
  }
  const auto& stats = rt.stats();
  std::cout << "\nmessages fully delivered: " << complete << "/" << messages
            << "  (network: " << stats.messages_sent << " sends, "
            << stats.messages_delivered << " deliveries, " << stats.bytes_sent
            << " bytes)\n";
  if (complete != messages) {
    std::cout << "FAILED: incomplete delivery\n";
    return 2;
  }
  std::cout << "OK: every node delivered every multicast\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gocast;

  harness::Args args(argc, argv,
                     {"nodes", "messages", "payload", "warmup", "latency-us",
                      "jitter-us", "seed", "node-id", "listen", "peers",
                      "inject-at", "timeout", "drain", "epoch", "groups",
                      "help"});
  if (args.get_bool("help", false)) {
    std::cout
        << "gocastd — run live GoCast nodes (loopback or UDP mode)\n"
           "loopback: --nodes N [8] --messages K [4] --payload BYTES [512]\n"
           "          --warmup SECS [2.0] --latency-us U [200] --jitter-us U "
           "[50]\n"
           "          --seed S [1]\n"
           "udp:      --node-id I --listen HOST:PORT --peers "
           "ID@HOST:PORT,...\n"
           "          --inject-at I --messages K [4] --payload BYTES [512]\n"
           "          --warmup SECS [2.0] --timeout SECS [20] --drain SECS "
           "[1.0]\n"
           "          --epoch UNIX_SECS --seed S [1] --groups G [1]\n"
           "          (--groups: deterministic multi-group subscriptions "
           "from the\n"
           "           shared seed; the injector round-robins its groups "
           "and exit\n"
           "           status covers every subscribed group)\n"
           "exit: 0 full delivery, 2 timeout/incomplete, 3 bind/config "
           "error\n";
    return 0;
  }

  if (args.has("node-id") || args.has("listen") || args.has("peers")) {
    return run_udp_mode(args);
  }
  return run_loopback_mode(args);
}

// gocastd — a live GoCast deployment in one process.
//
// Instantiates GoCastNodeT<runtime::RealtimeContext> (the same protocol code
// the simulator runs, bound to the real-time backend) for N nodes over the
// in-process loopback transport: timers sleep on the steady clock, sends are
// delivered after an injected per-hop latency. After a short warmup that lets
// the overlay and tree form, a burst of multicasts is injected at non-root
// nodes and the run reports whether every live node delivered every message.
//
// Exit status is 0 only when delivery was complete — the quickstart doubles
// as a smoke test (tools/check.sh and CI run it).
//
// Flags: --nodes N --messages K --payload BYTES --warmup SECS --latency-us U
//        --jitter-us U --seed S
#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gocast/node.h"
#include "harness/args.h"
#include "harness/table.h"
#include "runtime/realtime_runtime.h"

int main(int argc, char** argv) {
  using namespace gocast;

  harness::Args args(argc, argv,
                     {"nodes", "messages", "payload", "warmup", "latency-us",
                      "jitter-us", "seed", "help"});
  if (args.get_bool("help", false)) {
    std::cout
        << "gocastd — run N live GoCast nodes over the real-time loopback\n"
           "flags: --nodes N [8] --messages K [4] --payload BYTES [512]\n"
           "       --warmup SECS [2.0] --latency-us U [200] --jitter-us U "
           "[50]\n"
           "       --seed S [1]\n";
    return 0;
  }

  const std::size_t n = static_cast<std::size_t>(args.get_int("nodes", 8));
  const std::size_t messages =
      static_cast<std::size_t>(args.get_int("messages", 4));
  const std::size_t payload =
      static_cast<std::size_t>(args.get_int("payload", 512));
  const double warmup = args.get_double("warmup", 2.0);
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (n < 2) {
    std::cerr << "gocastd: need at least 2 nodes\n";
    return 2;
  }

  runtime::RealtimeConfig rt_config;
  rt_config.one_way_latency = args.get_double("latency-us", 200.0) * 1e-6;
  rt_config.jitter = args.get_double("jitter-us", 50.0) * 1e-6;
  rt_config.seed = seed;
  runtime::RealtimeRuntime rt(rt_config);
  for (std::size_t i = 0; i < n; ++i) rt.add_node();

  // Protocol periods scaled for an interactive demo: the defaults target
  // long simulated runs (15 s heartbeats), which would make a human wait.
  core::GoCastConfig config;
  config.tree.heartbeat_period = 0.25;
  config.dissemination.gossip_period = 0.1;
  for (NodeId lm = 0; lm < std::min<std::size_t>(n, 4); ++lm) {
    config.landmarks.push_back(lm);
  }

  using LiveNode = core::GoCastNodeT<runtime::RealtimeContext>;
  Rng rng(seed);
  std::vector<std::unique_ptr<LiveNode>> nodes;
  nodes.reserve(n);
  for (NodeId id = 0; id < n; ++id) {
    nodes.push_back(std::make_unique<LiveNode>(
        id, rt, config, rng.fork(static_cast<std::uint64_t>(id))));
  }

  // Same initialization a deployment's bootstrap service would provide:
  // every node knows the full (small) membership and starts with two random
  // links; node 0 is the initial root, as in the paper.
  Rng init_rng = rng.fork("init");
  std::vector<membership::MemberEntry> all(n);
  for (NodeId id = 0; id < n; ++id) all[id].id = id;
  for (NodeId id = 0; id < n; ++id) {
    std::vector<membership::MemberEntry> others;
    for (const auto& entry : all) {
      if (entry.id != id) others.push_back(entry);
    }
    nodes[id]->seed_view(others);
  }
  for (NodeId id = 0; id < n; ++id) {
    std::size_t made = 0;
    while (made < 2) {
      NodeId other = static_cast<NodeId>(init_rng.next_below(n));
      if (other == id || nodes[id]->overlay().is_neighbor(other)) continue;
      nodes[id]->bootstrap_link(other, overlay::LinkKind::kRandom);
      nodes[other]->bootstrap_link(id, overlay::LinkKind::kRandom);
      ++made;
    }
  }
  nodes[0]->become_root();

  std::map<MsgId, std::size_t> delivered;
  for (auto& node : nodes) {
    node->set_delivery_hook(
        [&delivered](const core::DeliveryEvent& e) { ++delivered[e.id]; });
  }

  for (NodeId id = 0; id < n; ++id) {
    nodes[id]->start(init_rng.next_range(0.0, 0.1));
  }

  std::cout << "gocastd: " << n << " live nodes, one-way latency "
            << rt_config.one_way_latency * 1e6 << " us, warming up "
            << warmup << " s...\n";
  rt.run_for(warmup);

  // Inject every multicast at a non-root node; the first tree hop is then a
  // real child→parent→subtree traversal, not a root-local shortcut.
  struct Inject {
    runtime::RealtimeRuntime* rt;
    std::vector<std::unique_ptr<LiveNode>>* nodes;
    std::size_t payload;
  } inject{&rt, &nodes, payload};
  for (std::size_t k = 0; k < messages; ++k) {
    NodeId sender = static_cast<NodeId>(1 + k % (n - 1));
    rt.schedule_after(0.05 * static_cast<double>(k), [&inject, sender] {
      MsgId id = (*inject.nodes)[sender]->multicast(inject.payload);
      std::cout << "  t=" << inject.rt->now() << " s: node " << sender
                << " multicast " << id.origin << ":" << id.seq << "\n";
    });
  }
  // Run long enough for the burst plus gossip recovery of any tree misses.
  rt.run_for(0.05 * static_cast<double>(messages) + 2.0);

  harness::Table table({"node", "deliveries", "duplicates", "degree"});
  for (const auto& node : nodes) {
    table.add_row({std::to_string(node->id()),
                   std::to_string(node->deliveries_count()),
                   std::to_string(node->duplicates_count()),
                   std::to_string(node->overlay().degree())});
  }
  table.print(std::cout);

  std::size_t complete = 0;
  for (const auto& [id, count] : delivered) {
    if (count == n) ++complete;
  }
  const auto& stats = rt.stats();
  std::cout << "\nmessages fully delivered: " << complete << "/" << messages
            << "  (network: " << stats.messages_sent << " sends, "
            << stats.messages_delivered << " deliveries, "
            << stats.bytes_sent << " bytes)\n";
  if (complete != messages) {
    std::cout << "FAILED: incomplete delivery\n";
    return 1;
  }
  std::cout << "OK: every node delivered every multicast\n";
  return 0;
}

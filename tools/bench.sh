#!/usr/bin/env bash
# Performance baseline runner. Builds the benchmarks, runs the micro-benchmark
# suite (min-of-repetitions, the only robust statistic on a shared/noisy host)
# and the large-scale perf_scaling probe, and assembles everything into
# BENCH_core.json at the repo root so perf numbers travel with the PR.
#
#   tools/bench.sh                 # full run: 5 reps, 8192 nodes x 60s
#   REPS=3 NODES=1024 SECONDS=20 tools/bench.sh   # lighter variant
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"
OUT="${OUT:-$REPO_ROOT/BENCH_core.json}"
REPS="${REPS:-5}"
NODES="${NODES:-8192}"
SECONDS_ARG="${SECONDS_ARG:-60}"
MESSAGES="${MESSAGES:-50}"

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" >/dev/null
cmake --build "$BUILD_DIR" --target micro_core perf_scaling -j "$(nproc)" >/dev/null

MICRO_JSON="$(mktemp)"
SCALING_JSON="$(mktemp)"
trap 'rm -f "$MICRO_JSON" "$SCALING_JSON"' EXIT

echo "== micro_core ($REPS repetitions, min-of-reps) =="
"$BUILD_DIR/bench/micro_core" \
  --benchmark_format=json \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=false \
  --benchmark_min_time=0.2 \
  >"$MICRO_JSON"

echo "== perf_scaling ($NODES nodes, ${SECONDS_ARG}s sim) =="
"$BUILD_DIR/bench/perf_scaling" \
  --nodes "$NODES" --seconds "$SECONDS_ARG" --messages "$MESSAGES" \
  | tee "$SCALING_JSON"

python3 - "$MICRO_JSON" "$SCALING_JSON" "$OUT" <<'PY'
import json, sys

micro_path, scaling_path, out_path = sys.argv[1:4]
with open(micro_path) as f:
    micro = json.load(f)
with open(scaling_path) as f:
    scaling = json.load(f)

# Min over repetitions: on a busy single-CPU host the mean is dominated by
# scheduling noise, while the minimum approximates the undisturbed run.
best = {}
for b in micro["benchmarks"]:
    if b.get("run_type") == "aggregate":
        continue
    name = b["run_name"] if "run_name" in b else b["name"]
    t = b["real_time"]
    if name not in best or t < best[name]["real_time"]:
        best[name] = {"real_time": t, "time_unit": b["time_unit"]}

result = {
    "context": micro.get("context", {}),
    "micro_min_of_reps": best,
    "perf_scaling": scaling,
}
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
PY

#!/usr/bin/env bash
# Performance baseline runner. Builds the benchmarks in a dedicated Release
# build tree, runs the micro-benchmark suite (min-of-repetitions, the only
# robust statistic on a shared/noisy host), the large-scale perf_scaling
# probe, and the serial-vs-parallel sweep comparison, and assembles
# everything into BENCH_core.json at the repo root so perf numbers travel
# with the PR.
#
#   tools/bench.sh                 # full run: 5 reps, 8192 nodes x 60s + curve
#   REPS=3 NODES=1024 SECONDS_ARG=20 tools/bench.sh   # lighter variant
#   SWEEP_REPS=8 SWEEP_THREADS=4 tools/bench.sh       # sweep knobs
#   CURVE=0 tools/bench.sh                            # skip the scaling curve
#   CURVE_POINTS=8192,32768 tools/bench.sh            # custom curve points
#   PDES=0 tools/bench.sh                             # skip the shard scaling
#   PDES_SECONDS=10 tools/bench.sh                    # shorter shard points
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
# A dedicated Release tree: the default dev tree may be Debug/sanitized, and
# recording numbers from an unoptimized build poisons the baseline.
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-bench}"
OUT="${OUT:-$REPO_ROOT/BENCH_core.json}"
REPS="${REPS:-5}"
NODES="${NODES:-8192}"
SECONDS_ARG="${SECONDS_ARG:-60}"
MESSAGES="${MESSAGES:-50}"
SWEEP_REPS="${SWEEP_REPS:-8}"
SWEEP_NODES="${SWEEP_NODES:-256}"
SWEEP_THREADS="${SWEEP_THREADS:-$(nproc)}"
# Scaling curve: one fresh process per point (per-point peak RSS is honest),
# horizons shrink with scale so the 512k point stays a minutes-long run.
CURVE="${CURVE:-1}"
CURVE_POINTS="${CURVE_POINTS:-8192,32768,131072,524288}"
# Sharded-PDES scaling: the 8k-node scenario at shards=1/2/4, one fresh
# process per point. Checksums must match across shard counts or nothing is
# recorded.
PDES="${PDES:-1}"
PDES_SECONDS="${PDES_SECONDS:-30}"
PDES_SHARDS="${PDES_SHARDS:-1 2 4}"

cmake -S "$REPO_ROOT" -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target micro_core perf_scaling -j "$(nproc)" >/dev/null

MICRO_JSON="$(mktemp)"
SCALING_JSON="$(mktemp)"
SWEEP_SERIAL_JSON="$(mktemp)"
SWEEP_PARALLEL_JSON="$(mktemp)"
CURVE_JSON="$(mktemp)"
PDES_JSON="$(mktemp)"
trap 'rm -f "$MICRO_JSON" "$SCALING_JSON" "$SWEEP_SERIAL_JSON" "$SWEEP_PARALLEL_JSON" "$CURVE_JSON" "$PDES_JSON"' EXIT

# Fail loudly if the benchmark binary was not compiled optimized: the
# distro's libbenchmark reports its *own* build type, so the binary embeds a
# gocast_build_type context entry describing how it was compiled.
GOCAST_BUILD_TYPE="$("$BUILD_DIR/bench/perf_scaling" --sweep --reps 1 --nodes 32 \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["build_type"])')"
if [ "$GOCAST_BUILD_TYPE" != "release" ]; then
  echo "FATAL: bench binaries report build_type=$GOCAST_BUILD_TYPE (want release)." >&2
  echo "       Refusing to record numbers from an unoptimized build." >&2
  exit 1
fi

echo "== micro_core ($REPS repetitions, min-of-reps) =="
"$BUILD_DIR/bench/micro_core" \
  --benchmark_format=json \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=false \
  --benchmark_min_time=0.2 \
  >"$MICRO_JSON"

echo "== perf_scaling ($NODES nodes, ${SECONDS_ARG}s sim) =="
"$BUILD_DIR/bench/perf_scaling" \
  --nodes "$NODES" --seconds "$SECONDS_ARG" --messages "$MESSAGES" \
  | tee "$SCALING_JSON"

if [ "$CURVE" = "1" ]; then
  echo "== perf_scaling curve ($CURVE_POINTS nodes, fresh process per point) =="
  "$BUILD_DIR/bench/perf_scaling" --curve --curve-points "$CURVE_POINTS" \
    >"$CURVE_JSON"
else
  echo "== perf_scaling curve skipped (CURVE=$CURVE) =="
  echo "[]" >"$CURVE_JSON"
fi

if [ "$PDES" = "1" ]; then
  echo "== pdes_scaling ($NODES nodes x ${PDES_SECONDS}s at shards $PDES_SHARDS) =="
  # One fresh process per shard count; the merge step below asserts the
  # checksums agree before recording anything. Like sweep_parallel, the
  # wall-clock ratio is only meaningful relative to nproc (recorded per
  # point): on a 1-CPU host the shard workers time-slice one core, so the
  # honest expectation is parity at best, not speedup.
  {
    echo "["
    first=1
    for k in $PDES_SHARDS; do
      [ "$first" = "1" ] || echo ","
      first=0
      "$BUILD_DIR/bench/perf_scaling" \
        --nodes "$NODES" --seconds "$PDES_SECONDS" --messages "$MESSAGES" \
        --shards "$k"
    done
    echo "]"
  } | tee "$PDES_JSON"
else
  echo "== pdes_scaling skipped (PDES=$PDES) =="
  echo "[]" >"$PDES_JSON"
fi

echo "== sweep_parallel ($SWEEP_REPS reps x $SWEEP_NODES nodes: 1 vs $SWEEP_THREADS threads) =="
"$BUILD_DIR/bench/perf_scaling" --sweep --threads 1 \
  --reps "$SWEEP_REPS" --nodes "$SWEEP_NODES" | tee "$SWEEP_SERIAL_JSON"
"$BUILD_DIR/bench/perf_scaling" --sweep --threads "$SWEEP_THREADS" \
  --reps "$SWEEP_REPS" --nodes "$SWEEP_NODES" | tee "$SWEEP_PARALLEL_JSON"

python3 - "$MICRO_JSON" "$SCALING_JSON" "$SWEEP_SERIAL_JSON" "$SWEEP_PARALLEL_JSON" "$CURVE_JSON" "$PDES_JSON" "$OUT" <<'PY'
import json, os, sys

(micro_path, scaling_path, sweep_serial_path, sweep_parallel_path,
 curve_path, pdes_path, out_path) = sys.argv[1:8]
with open(micro_path) as f:
    micro = json.load(f)
with open(scaling_path) as f:
    scaling = json.load(f)
with open(sweep_serial_path) as f:
    sweep_serial = json.load(f)
with open(sweep_parallel_path) as f:
    sweep_parallel = json.load(f)
with open(curve_path) as f:
    curve = json.load(f)
with open(pdes_path) as f:
    pdes = json.load(f)

# Sharded runs must reproduce the serial run byte for byte; a checksum
# mismatch is an ordering bug in the sharded engine and the numbers must
# not be recorded (same policy as the sweep checksum below).
if pdes:
    sums = {p["shards"]: p["checksum"] for p in pdes}
    if len(set(sums.values())) != 1:
        sys.exit(f"FATAL: pdes_scaling checksum mismatch across shard "
                 f"counts: {sums} — sharded engine is not deterministic, "
                 "refusing to write BENCH_core.json")

# The merged sweep output must not depend on thread count; a checksum
# mismatch means a determinism bug, and the numbers must not be recorded.
if sweep_serial["checksum"] != sweep_parallel["checksum"]:
    sys.exit(
        f"FATAL: sweep checksum mismatch: serial={sweep_serial['checksum']} "
        f"parallel={sweep_parallel['checksum']} — parallel runner is not "
        "deterministic, refusing to write BENCH_core.json")

# Min over repetitions: on a busy single-CPU host the mean is dominated by
# scheduling noise, while the minimum approximates the undisturbed run.
best = {}
for b in micro["benchmarks"]:
    if b.get("run_type") == "aggregate":
        continue
    name = b["run_name"] if "run_name" in b else b["name"]
    t = b["real_time"]
    if name not in best or t < best[name]["real_time"]:
        best[name] = {"real_time": t, "time_unit": b["time_unit"]}

serial_wall = sweep_serial["wall_seconds"]
parallel_wall = sweep_parallel["wall_seconds"]
result = {
    "context": micro.get("context", {}),
    "micro_min_of_reps": best,
    "perf_scaling": scaling,
    "perf_scaling_curve": {
        # Each point carries its own build_type/nodes/sim_seconds/messages/
        # seed from the child process — the horizon shrinks as the
        # deployment grows (see curve_point_for in bench/perf_scaling.cpp),
        # so events_per_second is comparable across points but wall time is
        # not. One fresh process per point makes peak_rss_mib per-point
        # truth rather than a high-water mark across the whole curve.
        "methodology": ("fresh process per point; sim horizon and message "
                        "count scale down with node count"),
        "points": curve,
    },
    "sweep_parallel": {
        "serial": sweep_serial,
        "parallel": sweep_parallel,
        "speedup": serial_wall / parallel_wall if parallel_wall > 0 else 0.0,
        "checksums_match": True,
    },
}
if pdes:
    base = next((p for p in pdes if p["shards"] == 1), pdes[0])
    result["pdes_scaling"] = {
        # Wall clock vs shard count for the same scenario. Every point ran
        # on this host with `nproc` CPUs: on a 1-CPU box the shard worker
        # threads time-slice a single core, so speedup <= 1 is the honest
        # expectation there (windows add barrier overhead without adding
        # parallel hardware) — same caveat as sweep_parallel above.
        "nproc": os.cpu_count(),
        "checksum": base["checksum"],
        "checksums_match": True,
        "points": [
            {
                "shards": p["shards"],
                "effective_shards": p["effective_shards"],
                "run_wall_seconds": p["run_wall_seconds"],
                "events_per_second": p["events_per_second"],
                "speedup_vs_serial": (
                    base["run_wall_seconds"] / p["run_wall_seconds"]
                    if p["run_wall_seconds"] > 0 else 0.0),
            }
            for p in pdes
        ],
    }
with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")
print(f"wrote {out_path}")
PY

// gocast_sim — the command-line simulator driver (the artifact equivalent
// of the paper's evaluation tool): runs any of the five protocols through
// the standard warmup/failure/injection/drain phases and reports the delay
// distribution, optionally exporting CSVs.
//
// Examples:
//   gocast_sim --protocol gocast --nodes 1024 --messages 1000
//   gocast_sim --protocol gossip --fanout 5 --nodes 1024 --fail 0.2
//   gocast_sim --protocol gocast --f 0.3 --csv run.csv --curve curve.csv
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>

#include "harness/args.h"
#include "harness/csv.h"
#include "harness/scenario.h"
#include "harness/table.h"

namespace {

void usage() {
  std::cout <<
      "gocast_sim — GoCast protocol simulator\n\n"
      "flags:\n"
      "  --protocol  gocast | proximity | random | gossip | no-wait  [gocast]\n"
      "  --nodes     system size                                     [1024]\n"
      "  --seed      RNG seed                                        [1]\n"
      "  --warmup    adaptation seconds before injection             [300]\n"
      "  --messages  multicast messages to inject                    [200]\n"
      "  --rate      injection rate, messages/second                 [100]\n"
      "  --payload   payload bytes per message                       [1024]\n"
      "  --fail      fraction of nodes failing after warmup          [0]\n"
      "  --repair    keep repairing after failures (true/false)      [false]\n"
      "  --f         pull-delay threshold seconds (GoCast)           [0]\n"
      "  --fanout    gossip fanout (baselines)                       [5]\n"
      "  --drain     seconds to run after the last injection         [30]\n"
      "  --shards    sharded-PDES engines (GoCast-family; results are\n"
      "              byte-identical at any count — DESIGN.md §11);\n"
      "              default from GOCAST_SHARDS                      [1]\n"
      "  --faults    scripted fault plan (GoCast-family), e.g.\n"
      "              \"330:crash:frac=0.2; 400:partition:frac=0.3; 460:heal\"\n"
      "              or \"130:mute_forwarder:frac=0.1; 300:cure\"\n"
      "              kinds: crash recover crash_site partition heal degrade\n"
      "              restore loss mute_forwarder digest_liar degree_liar\n"
      "              slow cure — see docs/PROTOCOL.md for the grammar\n"
      "  --invariants  run the protocol invariant checker (true/false) [false]\n"
      "  --csv       append a summary row to this file\n"
      "  --curve     write the delay CDF to this file\n"
      "  --help      this text\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gocast;

  harness::Args args(argc, argv,
                     {"protocol", "nodes", "seed", "warmup", "messages", "rate",
                      "payload", "fail", "repair", "f", "fanout", "drain",
                      "shards", "faults", "invariants", "csv", "curve",
                      "help"});
  if (args.get_bool("help", false)) {
    usage();
    return 0;
  }

  harness::ScenarioConfig config;
  std::string protocol = args.get("protocol", "gocast");
  if (protocol == "gocast") {
    config.protocol = harness::Protocol::kGoCast;
  } else if (protocol == "proximity") {
    config.protocol = harness::Protocol::kProximityOverlay;
  } else if (protocol == "random") {
    config.protocol = harness::Protocol::kRandomOverlay;
  } else if (protocol == "gossip") {
    config.protocol = harness::Protocol::kPushGossip;
  } else if (protocol == "no-wait") {
    config.protocol = harness::Protocol::kNoWaitGossip;
  } else {
    std::cerr << "unknown --protocol " << protocol << "\n";
    usage();
    return 2;
  }

  config.node_count = static_cast<std::size_t>(args.get_int("nodes", 1024));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  config.warmup = args.get_double("warmup", 300.0);
  config.message_count = static_cast<std::size_t>(args.get_int("messages", 200));
  config.message_rate = args.get_double("rate", 100.0);
  config.payload_bytes = static_cast<std::size_t>(args.get_int("payload", 1024));
  config.fail_fraction = args.get_double("fail", 0.0);
  config.freeze_after_failure = !args.get_bool("repair", false);
  config.pull_delay_threshold = args.get_double("f", 0.0);
  config.fanout = static_cast<int>(args.get_int("fanout", 5));
  config.drain = args.get_double("drain", 30.0);
  config.fault_spec = args.get("faults", "");
  config.check_invariants = args.get_bool("invariants", false);
  long shards_default = 1;
  if (const char* env = std::getenv("GOCAST_SHARDS"); env != nullptr) {
    shards_default = std::atol(env);
    if (shards_default < 1) shards_default = 1;
  }
  config.shards = static_cast<std::size_t>(args.get_int("shards", shards_default));

  std::cout << "running " << harness::protocol_name(config.protocol) << ", "
            << config.node_count << " nodes, " << config.message_count
            << " messages";
  if (config.shards > 1) std::cout << ", " << config.shards << " shards";
  if (config.fail_fraction > 0.0) {
    std::cout << ", " << harness::fmt_pct(config.fail_fraction, 0)
              << " failures (" << (config.freeze_after_failure ? "no repair" : "repair on")
              << ")";
  }
  std::cout << "...\n";

  auto result = harness::run_scenario(config);
  const auto& r = result.report;

  harness::Table table({"metric", "value"});
  table.add_row({"live nodes", std::to_string(result.alive_nodes)});
  table.add_row({"delivered pairs", harness::fmt_pct(r.delivered_fraction, 3)});
  table.add_row({"mean delay", harness::fmt_ms(r.delay.mean())});
  table.add_row({"p50 / p90 / p99", harness::fmt_ms(r.p50) + " / " +
                                        harness::fmt_ms(r.p90) + " / " +
                                        harness::fmt_ms(r.p99)});
  table.add_row({"max delay", harness::fmt_ms(r.max_delay)});
  table.add_row({"receptions per delivery", harness::fmt(result.redundancy(), 4)});
  table.add_row(
      {"data MB sent",
       harness::fmt(static_cast<double>(
                        result.traffic.kind(net::MsgKind::kData).bytes) /
                        (1024.0 * 1024.0),
                    2)});
  table.add_row(
      {"gossip MB sent",
       harness::fmt(static_cast<double>(
                        result.traffic.kind(net::MsgKind::kGossipDigest).bytes) /
                        (1024.0 * 1024.0),
                    2)});
  {
    // Hex digest of the recorded deliveries; the pdes-smoke check greps this
    // row and asserts it is identical across shard counts.
    std::ostringstream checksum;
    checksum << std::hex << std::setw(16) << std::setfill('0')
             << result.delivery_checksum;
    table.add_row({"delivery checksum", checksum.str()});
  }
  table.print(std::cout);

  if (!result.fault_log.empty()) {
    std::cout << "\nfault timeline:\n";
    for (const std::string& line : result.fault_log) {
      std::cout << "  " << line << "\n";
    }
  }
  if (config.check_invariants) {
    if (result.invariant_violations.empty()) {
      std::cout << "\ninvariants: no violations\n";
    } else {
      std::cout << "\ninvariant violations ("
                << result.invariant_violations.size() << "):\n";
      for (const std::string& line : result.invariant_violations) {
        std::cout << "  " << line << "\n";
      }
    }
    if (!result.expected_violations.empty()) {
      // Attack damage, reported separately: violations the checker
      // attributed to active adversarial victims are expected while the
      // behavior lasts and are not protocol failures.
      std::cout << "expected violations from adversarial victims ("
                << result.expected_violations.size() << "):\n";
      for (const std::string& line : result.expected_violations) {
        std::cout << "  " << line << "\n";
      }
    }
  }

  if (args.has("csv")) {
    harness::append_summary_csv(args.get("csv", ""), protocol,
                                config.node_count, config.fail_fraction, result);
    std::cout << "summary appended to " << args.get("csv", "") << "\n";
  }
  if (args.has("curve")) {
    harness::write_curve_csv(args.get("curve", ""), result.curve);
    std::cout << "delay CDF written to " << args.get("curve", "") << "\n";
  }
  return 0;
}

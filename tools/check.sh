#!/usr/bin/env bash
# Full pre-merge check: build and test the plain configuration, then the
# ASan+UBSan configuration (GOCAST_SANITIZE=ON). Run from the repo root:
#   tools/check.sh [extra ctest args...]
#   tools/check.sh bench-smoke     # quick perf-tooling sanity run only
#   tools/check.sh tsan            # TSan: runner tests + 2-thread mini-sweep
#   tools/check.sh byzantine-smoke # adversarial-defense gate (ext_byzantine)
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_config() {
  local build_dir="$1"
  shift
  local cmake_args=("$@")
  echo "=== configure ${build_dir} (${cmake_args[*]:-default}) ==="
  cmake -B "${root}/${build_dir}" -S "${root}" "${cmake_args[@]}"
  echo "=== build ${build_dir} ==="
  cmake --build "${root}/${build_dir}" -j "${jobs}"
  echo "=== test ${build_dir} ==="
  (cd "${root}/${build_dir}" && ctest --output-on-failure -j "${jobs}" "${EXTRA_CTEST_ARGS[@]}")
}

# bench-smoke: verify the perf tooling end to end at tiny scale — the
# micro-benchmarks execute and perf_scaling completes a small deployment.
# Catches bit-rot in the bench targets without a multi-minute run.
if [[ "${1:-}" == "bench-smoke" ]]; then
  cmake -B "${root}/build" -S "${root}"
  cmake --build "${root}/build" -j "${jobs}" --target micro_core perf_scaling
  echo "=== bench-smoke: micro_core ==="
  "${root}/build/bench/micro_core" --benchmark_min_time=0.01 \
    --benchmark_filter='BM_EngineScheduleAndRun/1000$|BM_EngineCancelHeavy|BM_SystemWarmupSecond/128'
  echo "=== bench-smoke: perf_scaling ==="
  "${root}/build/bench/perf_scaling" --nodes 128 --seconds 10 --messages 3
  echo "=== bench-smoke: gocastd (live runtime) ==="
  cmake --build "${root}/build" -j "${jobs}" --target gocastd
  "${root}/build/tools/gocastd" --nodes 8 --messages 4 --warmup 1.5
  echo "=== bench-smoke passed ==="
  exit 0
fi

# byzantine-smoke: the adversarial-defense gate — one mixed
# mute-forwarder+digest-liar cell of bench/ext_byzantine, defenses off vs on
# vs an equal-sized crash baseline. The bench's exit status carries the
# verdict (defended delivery strictly above undefended, >= 90% eviction
# coverage, and at least the honest-crash baseline).
if [[ "${1:-}" == "byzantine-smoke" ]]; then
  cmake -B "${root}/build" -S "${root}"
  cmake --build "${root}/build" -j "${jobs}" --target ext_byzantine
  echo "=== byzantine-smoke: ext_byzantine --smoke ==="
  "${root}/build/bench/ext_byzantine" --smoke
  echo "=== byzantine-smoke passed ==="
  exit 0
fi

# tsan: the concurrency surface under ThreadSanitizer — the runner/parallel
# unit tests plus a real 2-thread sweep through a converted bench driver.
if [[ "${1:-}" == "tsan" ]]; then
  cmake -B "${root}/build-tsan" -S "${root}" -DGOCAST_SANITIZE=thread
  cmake --build "${root}/build-tsan" -j "${jobs}" --target gocast_tests fig4_scalability
  echo "=== tsan: runner unit tests ==="
  (cd "${root}/build-tsan" && ctest --output-on-failure \
    -R 'Runner|Sweep|Parallel|DeriveJobSeed|EngineBatch')
  echo "=== tsan: 2-thread mini-sweep ==="
  GOCAST_BENCH_SCALE=0.05 GOCAST_WARMUP=40 \
    "${root}/build-tsan/bench/fig4_scalability" --threads 2
  echo "=== tsan checks passed ==="
  exit 0
fi

EXTRA_CTEST_ARGS=("$@")

run_config build
run_config build-asan -DGOCAST_SANITIZE=ON

echo "=== all checks passed ==="

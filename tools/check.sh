#!/usr/bin/env bash
# Full pre-merge check: build and test the plain configuration, then the
# ASan+UBSan configuration (GOCAST_SANITIZE=ON). Run from the repo root:
#   tools/check.sh [extra ctest args...]
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_config() {
  local build_dir="$1"
  shift
  local cmake_args=("$@")
  echo "=== configure ${build_dir} (${cmake_args[*]:-default}) ==="
  cmake -B "${root}/${build_dir}" -S "${root}" "${cmake_args[@]}"
  echo "=== build ${build_dir} ==="
  cmake --build "${root}/${build_dir}" -j "${jobs}"
  echo "=== test ${build_dir} ==="
  (cd "${root}/${build_dir}" && ctest --output-on-failure -j "${jobs}" "${EXTRA_CTEST_ARGS[@]}")
}

EXTRA_CTEST_ARGS=("$@")

run_config build
run_config build-asan -DGOCAST_SANITIZE=ON

echo "=== all checks passed ==="

#!/usr/bin/env bash
# Full pre-merge check: build and test the plain configuration, then the
# ASan+UBSan configuration (GOCAST_SANITIZE=ON). Run from the repo root:
#   tools/check.sh [extra ctest args...]
#   tools/check.sh bench-smoke     # quick perf-tooling sanity run only
#   tools/check.sh tsan            # TSan: runner tests + 2-thread mini-sweep
#   tools/check.sh byzantine-smoke # adversarial-defense gate (ext_byzantine)
#   tools/check.sh udp-smoke       # 8 gocastd processes over loopback UDP,
#                                  # clean run + kill -9 chaos run
#   tools/check.sh multigroup-smoke # multi-group gate: sim sweep
#                                  # (ext_multigroup --smoke) + an 8-process
#                                  # gocastd --groups UDP run
#   tools/check.sh pdes-smoke      # sharded-PDES determinism gate: 2k-node
#                                  # scenario, shards=1 vs shards=4 delivery
#                                  # checksums must be byte-identical
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

run_config() {
  local build_dir="$1"
  shift
  local cmake_args=("$@")
  echo "=== configure ${build_dir} (${cmake_args[*]:-default}) ==="
  cmake -B "${root}/${build_dir}" -S "${root}" "${cmake_args[@]}"
  echo "=== build ${build_dir} ==="
  cmake --build "${root}/${build_dir}" -j "${jobs}"
  echo "=== test ${build_dir} ==="
  (cd "${root}/${build_dir}" && ctest --output-on-failure -j "${jobs}" "${EXTRA_CTEST_ARGS[@]}")
}

# bench-smoke: verify the perf tooling end to end at tiny scale — the
# micro-benchmarks execute and perf_scaling completes a small deployment.
# Catches bit-rot in the bench targets without a multi-minute run.
if [[ "${1:-}" == "bench-smoke" ]]; then
  cmake -B "${root}/build" -S "${root}"
  cmake --build "${root}/build" -j "${jobs}" --target micro_core perf_scaling
  echo "=== bench-smoke: micro_core ==="
  "${root}/build/bench/micro_core" --benchmark_min_time=0.01 \
    --benchmark_filter='BM_EngineScheduleAndRun/1000$|BM_EngineCancelHeavy|BM_SystemWarmupSecond/128'
  echo "=== bench-smoke: perf_scaling ==="
  "${root}/build/bench/perf_scaling" --nodes 128 --seconds 10 --messages 3
  echo "=== bench-smoke: 8k peak-RSS ceiling ==="
  # Memory regression gate: an 8192-node deployment's peak RSS is
  # construction-dominated, so even this short horizon catches a per-node
  # footprint regression. Fails when >10% over the recorded BENCH_core.json
  # baseline (skipped when no baseline is recorded yet).
  rss_smoke_json="$(mktemp)"
  "${root}/build/bench/perf_scaling" --nodes 8192 --seconds 2 --messages 2 \
    >"${rss_smoke_json}"
  python3 - "${root}/BENCH_core.json" "${rss_smoke_json}" <<'PY'
import json, sys
base_path, smoke_path = sys.argv[1:3]
with open(smoke_path) as f:
    rss = json.load(f)["peak_rss_mib"]
try:
    with open(base_path) as f:
        recorded = json.load(f)["perf_scaling"]["peak_rss_mib"]
except (OSError, KeyError, json.JSONDecodeError):
    print("no recorded 8k peak RSS in BENCH_core.json; ceiling check skipped")
    sys.exit(0)
ceiling = recorded * 1.10
print(f"8k peak RSS {rss:.1f} MiB (recorded {recorded:.1f}, ceiling {ceiling:.1f})")
if rss > ceiling:
    sys.exit(f"FATAL: 8k peak RSS {rss:.1f} MiB is >10% over the recorded "
             f"{recorded:.1f} MiB baseline — memory regression")
PY
  rm -f "${rss_smoke_json}"
  echo "=== bench-smoke: gocastd (live runtime) ==="
  cmake --build "${root}/build" -j "${jobs}" --target gocastd
  "${root}/build/tools/gocastd" --nodes 8 --messages 4 --warmup 1.5
  echo "=== bench-smoke passed ==="
  exit 0
fi

# byzantine-smoke: the adversarial-defense gate — one mixed
# mute-forwarder+digest-liar cell of bench/ext_byzantine, defenses off vs on
# vs an equal-sized crash baseline. The bench's exit status carries the
# verdict (defended delivery strictly above undefended, >= 90% eviction
# coverage, and at least the honest-crash baseline).
if [[ "${1:-}" == "byzantine-smoke" ]]; then
  cmake -B "${root}/build" -S "${root}"
  cmake --build "${root}/build" -j "${jobs}" --target ext_byzantine
  echo "=== byzantine-smoke: ext_byzantine --smoke ==="
  "${root}/build/bench/ext_byzantine" --smoke
  echo "=== byzantine-smoke passed ==="
  exit 0
fi

# udp-smoke: the wire codec + UDP reactor end to end — 8 gocastd processes
# on loopback form one overlay and a multicast injected at a non-root node
# must reach every process (each exits 0 only on full local delivery).
# Phase 2 repeats the run and kill -9s a non-root, non-injector forwarder
# mid-multicast: the ICMP-unreachable/suspicion path must carry the
# remaining 7 processes to 100% delivery anyway.
if [[ "${1:-}" == "udp-smoke" ]]; then
  cmake -B "${root}/build" -S "${root}"
  cmake --build "${root}/build" -j "${jobs}" --target gocastd
  bin="${root}/build/tools/gocastd"
  n=8
  logdir="$(mktemp -d)"

  launch_swarm() { # $1 = phase name, $2 = port base; sets pids[]
    local phase="$1" base="$2" peers="" i
    for ((i = 0; i < n; ++i)); do
      peers+="${peers:+,}${i}@127.0.0.1:$((base + i))"
    done
    local epoch
    epoch="$(date +%s)"
    pids=()
    for ((i = 0; i < n; ++i)); do
      "${bin}" --node-id "${i}" --listen "127.0.0.1:$((base + i))" \
        --peers "${peers}" --inject-at 1 --messages 4 --payload 512 \
        --warmup 2.0 --timeout 25 --drain 1.5 --epoch "${epoch}" --seed 7 \
        >"${logdir}/${phase}-${i}.log" 2>&1 &
      pids+=("$!")
    done
  }

  reap_swarm() { # $1 = phase name, $2 = node id to skip ("" for none)
    local phase="$1" skip="${2:-}" status=0 i rc
    for ((i = 0; i < n; ++i)); do
      [[ "${i}" == "${skip}" ]] && continue
      rc=0
      wait "${pids[i]}" || rc=$?
      if [[ "${rc}" != 0 ]]; then
        status=1
        echo "--- ${phase}: node ${i} exited ${rc}"
        tail -4 "${logdir}/${phase}-${i}.log"
      fi
    done
    return "${status}"
  }

  echo "=== udp-smoke: 8 processes, clean full delivery ==="
  launch_swarm clean "$((20000 + RANDOM % 20000))"
  reap_swarm clean
  grep -h "^OK:" "${logdir}"/clean-*.log

  echo "=== udp-smoke: chaos — kill -9 node 2 mid-multicast ==="
  launch_swarm chaos "$((41000 + RANDOM % 20000))"
  # Injection starts right after the 2 s warmup; the kill lands inside the
  # multicast burst. Node 2 is neither root (0) nor injector (1).
  sleep 2.1
  kill -9 "${pids[2]}" 2>/dev/null || true
  wait "${pids[2]}" 2>/dev/null || true
  reap_swarm chaos 2
  grep -h "^OK:" "${logdir}"/chaos-*.log
  echo "=== udp-smoke passed ==="
  exit 0
fi

# multigroup-smoke: the multi-group plane end to end. Phase 1 is the sim
# gate (ext_multigroup --smoke): 8 groups, multiplexing on vs off — digest
# multiplexing must cut gossip messages below 0.7x the one-gossip-per-group
# baseline while every group delivers everything. Phase 2 runs 8 gocastd
# processes over loopback UDP with --groups 4: every process derives the
# same subscription table from the seed, the injector (node 2, a 3-group
# subscriber under seed 7) round-robins its groups, and each process exits
# 0 only after delivering every multicast in every group it subscribes to.
if [[ "${1:-}" == "multigroup-smoke" ]]; then
  cmake -B "${root}/build" -S "${root}"
  cmake --build "${root}/build" -j "${jobs}" --target ext_multigroup gocastd
  echo "=== multigroup-smoke: sim sweep (mux on vs off) ==="
  "${root}/build/bench/ext_multigroup" --smoke

  echo "=== multigroup-smoke: 8 gocastd processes, --groups 4 over UDP ==="
  bin="${root}/build/tools/gocastd"
  n=8
  logdir="$(mktemp -d)"
  base="$((27000 + RANDOM % 20000))"
  peers=""
  for ((i = 0; i < n; ++i)); do
    peers+="${peers:+,}${i}@127.0.0.1:$((base + i))"
  done
  epoch="$(date +%s)"
  pids=()
  for ((i = 0; i < n; ++i)); do
    "${bin}" --node-id "${i}" --listen "127.0.0.1:$((base + i))" \
      --peers "${peers}" --inject-at 2 --messages 6 --payload 512 \
      --warmup 2.0 --timeout 25 --drain 1.5 --epoch "${epoch}" --seed 7 \
      --groups 4 >"${logdir}/mg-${i}.log" 2>&1 &
    pids+=("$!")
  done
  status=0
  for ((i = 0; i < n; ++i)); do
    rc=0
    wait "${pids[i]}" || rc=$?
    if [[ "${rc}" != 0 ]]; then
      status=1
      echo "--- multigroup: node ${i} exited ${rc}"
      tail -4 "${logdir}/mg-${i}.log"
    fi
  done
  grep -h "^OK:" "${logdir}"/mg-*.log
  [[ "${status}" == 0 ]] || exit 1
  echo "=== multigroup-smoke passed ==="
  exit 0
fi

# pdes-smoke: the sharded-PDES determinism gate — the same 2048-node
# scenario at shards=1 (the historical serial engine) and shards=4 (four
# engines in conservative lookahead windows) must report byte-identical
# delivery checksums. Any divergence is an ordering bug in the sharded
# runtime (see DESIGN.md §11), never acceptable noise.
if [[ "${1:-}" == "pdes-smoke" ]]; then
  cmake -B "${root}/build" -S "${root}"
  cmake --build "${root}/build" -j "${jobs}" --target gocast_sim
  bin="${root}/build/tools/gocast_sim"
  sim_args=(--nodes 2048 --messages 60 --warmup 60 --drain 10)
  checksum() { # $1 = shard count
    "${bin}" "${sim_args[@]}" --shards "$1" |
      sed -n 's/.*delivery checksum *| *\([0-9a-f]*\).*/\1/p'
  }
  echo "=== pdes-smoke: 2048 nodes, shards=1 vs shards=4 ==="
  sum1="$(checksum 1)"
  sum4="$(checksum 4)"
  echo "shards=1 checksum: ${sum1}"
  echo "shards=4 checksum: ${sum4}"
  if [[ -z "${sum1}" || "${sum1}" != "${sum4}" ]]; then
    echo "FATAL: delivery checksums differ across shard counts" >&2
    exit 1
  fi
  echo "=== pdes-smoke passed ==="
  exit 0
fi

# tsan: the concurrency surface under ThreadSanitizer — the runner/parallel
# unit tests, the sharded-PDES tests (shards=4 scenario runs exercise the
# window barrier protocol under real threads), and a 2-thread sweep through
# a converted bench driver.
if [[ "${1:-}" == "tsan" ]]; then
  cmake -B "${root}/build-tsan" -S "${root}" -DGOCAST_SANITIZE=thread
  cmake --build "${root}/build-tsan" -j "${jobs}" --target gocast_tests fig4_scalability
  echo "=== tsan: runner unit tests ==="
  (cd "${root}/build-tsan" && ctest --output-on-failure \
    -R 'Runner|Sweep|Parallel|DeriveJobSeed|EngineBatch')
  echo "=== tsan: sharded-PDES tests ==="
  (cd "${root}/build-tsan" && ctest --output-on-failure \
    -R 'ScheduleAtOrdered|MinCrossPartition|Sharded')
  echo "=== tsan: 2-thread mini-sweep ==="
  GOCAST_BENCH_SCALE=0.05 GOCAST_WARMUP=40 \
    "${root}/build-tsan/bench/fig4_scalability" --threads 2
  echo "=== tsan checks passed ==="
  exit 0
fi

EXTRA_CTEST_ARGS=("$@")

run_config build
run_config build-asan -DGOCAST_SANITIZE=ON

echo "=== all checks passed ==="

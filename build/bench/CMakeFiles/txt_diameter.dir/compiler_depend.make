# Empty compiler generated dependencies file for txt_diameter.
# This may be replaced when dependencies are built.

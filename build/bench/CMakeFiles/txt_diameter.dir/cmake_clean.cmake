file(REMOVE_RECURSE
  "CMakeFiles/txt_diameter.dir/txt_diameter.cpp.o"
  "CMakeFiles/txt_diameter.dir/txt_diameter.cpp.o.d"
  "txt_diameter"
  "txt_diameter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txt_diameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

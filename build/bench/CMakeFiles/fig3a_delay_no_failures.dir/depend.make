# Empty dependencies file for fig3a_delay_no_failures.
# This may be replaced when dependencies are built.

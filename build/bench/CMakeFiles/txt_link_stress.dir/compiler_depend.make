# Empty compiler generated dependencies file for txt_link_stress.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/txt_link_stress.dir/txt_link_stress.cpp.o"
  "CMakeFiles/txt_link_stress.dir/txt_link_stress.cpp.o.d"
  "txt_link_stress"
  "txt_link_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txt_link_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for abl_maintenance_rules.
# This may be replaced when dependencies are built.

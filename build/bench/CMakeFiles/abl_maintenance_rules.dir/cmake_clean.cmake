file(REMOVE_RECURSE
  "CMakeFiles/abl_maintenance_rules.dir/abl_maintenance_rules.cpp.o"
  "CMakeFiles/abl_maintenance_rules.dir/abl_maintenance_rules.cpp.o.d"
  "abl_maintenance_rules"
  "abl_maintenance_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_maintenance_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

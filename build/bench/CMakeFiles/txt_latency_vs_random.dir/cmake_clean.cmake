file(REMOVE_RECURSE
  "CMakeFiles/txt_latency_vs_random.dir/txt_latency_vs_random.cpp.o"
  "CMakeFiles/txt_latency_vs_random.dir/txt_latency_vs_random.cpp.o.d"
  "txt_latency_vs_random"
  "txt_latency_vs_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txt_latency_vs_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for txt_latency_vs_random.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/txt_redundancy.dir/txt_redundancy.cpp.o"
  "CMakeFiles/txt_redundancy.dir/txt_redundancy.cpp.o.d"
  "txt_redundancy"
  "txt_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txt_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for txt_redundancy.
# This may be replaced when dependencies are built.

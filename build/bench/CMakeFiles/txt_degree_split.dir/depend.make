# Empty dependencies file for txt_degree_split.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/txt_degree_split.dir/txt_degree_split.cpp.o"
  "CMakeFiles/txt_degree_split.dir/txt_degree_split.cpp.o.d"
  "txt_degree_split"
  "txt_degree_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txt_degree_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig3b_delay_failures.dir/fig3b_delay_failures.cpp.o"
  "CMakeFiles/fig3b_delay_failures.dir/fig3b_delay_failures.cpp.o.d"
  "fig3b_delay_failures"
  "fig3b_delay_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_delay_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig3b_delay_failures.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig1_reliability.
# This may be replaced when dependencies are built.

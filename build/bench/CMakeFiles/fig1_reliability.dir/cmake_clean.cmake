file(REMOVE_RECURSE
  "CMakeFiles/fig1_reliability.dir/fig1_reliability.cpp.o"
  "CMakeFiles/fig1_reliability.dir/fig1_reliability.cpp.o.d"
  "fig1_reliability"
  "fig1_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

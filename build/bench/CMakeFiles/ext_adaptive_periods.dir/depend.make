# Empty dependencies file for ext_adaptive_periods.
# This may be replaced when dependencies are built.

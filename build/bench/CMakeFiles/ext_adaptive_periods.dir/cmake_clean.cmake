file(REMOVE_RECURSE
  "CMakeFiles/ext_adaptive_periods.dir/ext_adaptive_periods.cpp.o"
  "CMakeFiles/ext_adaptive_periods.dir/ext_adaptive_periods.cpp.o.d"
  "ext_adaptive_periods"
  "ext_adaptive_periods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_adaptive_periods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

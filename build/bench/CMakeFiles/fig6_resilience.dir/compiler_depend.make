# Empty compiler generated dependencies file for fig6_resilience.
# This may be replaced when dependencies are built.

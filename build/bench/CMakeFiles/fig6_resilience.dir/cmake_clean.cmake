file(REMOVE_RECURSE
  "CMakeFiles/fig6_resilience.dir/fig6_resilience.cpp.o"
  "CMakeFiles/fig6_resilience.dir/fig6_resilience.cpp.o.d"
  "fig6_resilience"
  "fig6_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/txt_convergence.dir/txt_convergence.cpp.o"
  "CMakeFiles/txt_convergence.dir/txt_convergence.cpp.o.d"
  "txt_convergence"
  "txt_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txt_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

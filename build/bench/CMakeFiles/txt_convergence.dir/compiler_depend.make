# Empty compiler generated dependencies file for txt_convergence.
# This may be replaced when dependencies are built.

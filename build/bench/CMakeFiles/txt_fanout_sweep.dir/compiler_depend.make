# Empty compiler generated dependencies file for txt_fanout_sweep.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/txt_fanout_sweep.dir/txt_fanout_sweep.cpp.o"
  "CMakeFiles/txt_fanout_sweep.dir/txt_fanout_sweep.cpp.o.d"
  "txt_fanout_sweep"
  "txt_fanout_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txt_fanout_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for monitoring_feed.
# This may be replaced when dependencies are built.

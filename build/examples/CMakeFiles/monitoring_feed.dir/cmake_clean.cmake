file(REMOVE_RECURSE
  "CMakeFiles/monitoring_feed.dir/monitoring_feed.cpp.o"
  "CMakeFiles/monitoring_feed.dir/monitoring_feed.cpp.o.d"
  "monitoring_feed"
  "monitoring_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitoring_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/cache_invalidation.dir/cache_invalidation.cpp.o"
  "CMakeFiles/cache_invalidation.dir/cache_invalidation.cpp.o.d"
  "cache_invalidation"
  "cache_invalidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_invalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

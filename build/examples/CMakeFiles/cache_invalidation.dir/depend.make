# Empty dependencies file for cache_invalidation.
# This may be replaced when dependencies are built.

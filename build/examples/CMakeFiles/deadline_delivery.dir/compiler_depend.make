# Empty compiler generated dependencies file for deadline_delivery.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/deadline_delivery.dir/deadline_delivery.cpp.o"
  "CMakeFiles/deadline_delivery.dir/deadline_delivery.cpp.o.d"
  "deadline_delivery"
  "deadline_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for gocast_sim_cli.
# This may be replaced when dependencies are built.

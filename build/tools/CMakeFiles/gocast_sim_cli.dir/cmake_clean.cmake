file(REMOVE_RECURSE
  "CMakeFiles/gocast_sim_cli.dir/gocast_sim.cpp.o"
  "CMakeFiles/gocast_sim_cli.dir/gocast_sim.cpp.o.d"
  "gocast_sim"
  "gocast_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gocast_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

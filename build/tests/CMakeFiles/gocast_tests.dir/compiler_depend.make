# Empty compiler generated dependencies file for gocast_tests.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/gocast_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_args_csv.cpp" "tests/CMakeFiles/gocast_tests.dir/test_args_csv.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_args_csv.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/gocast_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_dissemination.cpp" "tests/CMakeFiles/gocast_tests.dir/test_dissemination.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_dissemination.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/gocast_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/gocast_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/gocast_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_latency_model.cpp" "tests/CMakeFiles/gocast_tests.dir/test_latency_model.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_latency_model.cpp.o.d"
  "/root/repo/tests/test_membership.cpp" "tests/CMakeFiles/gocast_tests.dir/test_membership.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_membership.cpp.o.d"
  "/root/repo/tests/test_neighbor_table.cpp" "tests/CMakeFiles/gocast_tests.dir/test_neighbor_table.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_neighbor_table.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/gocast_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_node.cpp" "tests/CMakeFiles/gocast_tests.dir/test_node.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_node.cpp.o.d"
  "/root/repo/tests/test_overlay_manager.cpp" "tests/CMakeFiles/gocast_tests.dir/test_overlay_manager.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_overlay_manager.cpp.o.d"
  "/root/repo/tests/test_properties_dissemination.cpp" "tests/CMakeFiles/gocast_tests.dir/test_properties_dissemination.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_properties_dissemination.cpp.o.d"
  "/root/repo/tests/test_properties_engine.cpp" "tests/CMakeFiles/gocast_tests.dir/test_properties_engine.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_properties_engine.cpp.o.d"
  "/root/repo/tests/test_properties_overlay.cpp" "tests/CMakeFiles/gocast_tests.dir/test_properties_overlay.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_properties_overlay.cpp.o.d"
  "/root/repo/tests/test_properties_tree.cpp" "tests/CMakeFiles/gocast_tests.dir/test_properties_tree.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_properties_tree.cpp.o.d"
  "/root/repo/tests/test_reproducibility.cpp" "tests/CMakeFiles/gocast_tests.dir/test_reproducibility.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_reproducibility.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/gocast_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/gocast_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_system.cpp" "tests/CMakeFiles/gocast_tests.dir/test_system.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_system.cpp.o.d"
  "/root/repo/tests/test_timer.cpp" "tests/CMakeFiles/gocast_tests.dir/test_timer.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_timer.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/gocast_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_tree_manager.cpp" "tests/CMakeFiles/gocast_tests.dir/test_tree_manager.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_tree_manager.cpp.o.d"
  "/root/repo/tests/test_triangulation.cpp" "tests/CMakeFiles/gocast_tests.dir/test_triangulation.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_triangulation.cpp.o.d"
  "/root/repo/tests/test_underlay.cpp" "tests/CMakeFiles/gocast_tests.dir/test_underlay.cpp.o" "gcc" "tests/CMakeFiles/gocast_tests.dir/test_underlay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/gocast_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gocast_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gocast_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/gocast/CMakeFiles/gocast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/gocast_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/gocast_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gocast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gocast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/gocast_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/membership/CMakeFiles/gocast_membership.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gocast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for gocast_tree.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libgocast_tree.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/gocast_tree.dir/tree_manager.cpp.o"
  "CMakeFiles/gocast_tree.dir/tree_manager.cpp.o.d"
  "libgocast_tree.a"
  "libgocast_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gocast_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgocast_overlay.a"
)

# Empty compiler generated dependencies file for gocast_overlay.
# This may be replaced when dependencies are built.

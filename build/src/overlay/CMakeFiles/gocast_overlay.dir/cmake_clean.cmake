file(REMOVE_RECURSE
  "CMakeFiles/gocast_overlay.dir/neighbor_table.cpp.o"
  "CMakeFiles/gocast_overlay.dir/neighbor_table.cpp.o.d"
  "CMakeFiles/gocast_overlay.dir/overlay_manager.cpp.o"
  "CMakeFiles/gocast_overlay.dir/overlay_manager.cpp.o.d"
  "libgocast_overlay.a"
  "libgocast_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gocast_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

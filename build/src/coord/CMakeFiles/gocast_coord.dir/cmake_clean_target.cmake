file(REMOVE_RECURSE
  "libgocast_coord.a"
)

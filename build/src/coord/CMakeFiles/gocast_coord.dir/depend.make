# Empty dependencies file for gocast_coord.
# This may be replaced when dependencies are built.

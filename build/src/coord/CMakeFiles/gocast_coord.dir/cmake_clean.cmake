file(REMOVE_RECURSE
  "CMakeFiles/gocast_coord.dir/triangulation.cpp.o"
  "CMakeFiles/gocast_coord.dir/triangulation.cpp.o.d"
  "libgocast_coord.a"
  "libgocast_coord.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gocast_coord.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

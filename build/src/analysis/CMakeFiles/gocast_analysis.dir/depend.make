# Empty dependencies file for gocast_analysis.
# This may be replaced when dependencies are built.

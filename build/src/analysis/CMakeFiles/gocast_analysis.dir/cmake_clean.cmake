file(REMOVE_RECURSE
  "CMakeFiles/gocast_analysis.dir/delivery_tracker.cpp.o"
  "CMakeFiles/gocast_analysis.dir/delivery_tracker.cpp.o.d"
  "CMakeFiles/gocast_analysis.dir/graph_analysis.cpp.o"
  "CMakeFiles/gocast_analysis.dir/graph_analysis.cpp.o.d"
  "CMakeFiles/gocast_analysis.dir/link_stress.cpp.o"
  "CMakeFiles/gocast_analysis.dir/link_stress.cpp.o.d"
  "CMakeFiles/gocast_analysis.dir/reliability.cpp.o"
  "CMakeFiles/gocast_analysis.dir/reliability.cpp.o.d"
  "libgocast_analysis.a"
  "libgocast_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gocast_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgocast_analysis.a"
)

file(REMOVE_RECURSE
  "libgocast_harness.a"
)

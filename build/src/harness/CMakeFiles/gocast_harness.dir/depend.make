# Empty dependencies file for gocast_harness.
# This may be replaced when dependencies are built.

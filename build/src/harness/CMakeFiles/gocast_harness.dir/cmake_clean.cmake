file(REMOVE_RECURSE
  "CMakeFiles/gocast_harness.dir/args.cpp.o"
  "CMakeFiles/gocast_harness.dir/args.cpp.o.d"
  "CMakeFiles/gocast_harness.dir/csv.cpp.o"
  "CMakeFiles/gocast_harness.dir/csv.cpp.o.d"
  "CMakeFiles/gocast_harness.dir/scenario.cpp.o"
  "CMakeFiles/gocast_harness.dir/scenario.cpp.o.d"
  "CMakeFiles/gocast_harness.dir/table.cpp.o"
  "CMakeFiles/gocast_harness.dir/table.cpp.o.d"
  "libgocast_harness.a"
  "libgocast_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gocast_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

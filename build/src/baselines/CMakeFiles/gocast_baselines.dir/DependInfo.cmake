
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/push_gossip.cpp" "src/baselines/CMakeFiles/gocast_baselines.dir/push_gossip.cpp.o" "gcc" "src/baselines/CMakeFiles/gocast_baselines.dir/push_gossip.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gocast/CMakeFiles/gocast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/gocast_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/overlay/CMakeFiles/gocast_overlay.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/gocast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gocast_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/coord/CMakeFiles/gocast_coord.dir/DependInfo.cmake"
  "/root/repo/build/src/membership/CMakeFiles/gocast_membership.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gocast_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/gocast_baselines.dir/push_gossip.cpp.o"
  "CMakeFiles/gocast_baselines.dir/push_gossip.cpp.o.d"
  "libgocast_baselines.a"
  "libgocast_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gocast_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

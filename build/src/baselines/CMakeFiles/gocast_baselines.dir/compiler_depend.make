# Empty compiler generated dependencies file for gocast_baselines.
# This may be replaced when dependencies are built.

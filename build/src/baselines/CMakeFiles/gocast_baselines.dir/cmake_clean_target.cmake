file(REMOVE_RECURSE
  "libgocast_baselines.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/gocast_net.dir/latency_model.cpp.o"
  "CMakeFiles/gocast_net.dir/latency_model.cpp.o.d"
  "CMakeFiles/gocast_net.dir/network.cpp.o"
  "CMakeFiles/gocast_net.dir/network.cpp.o.d"
  "CMakeFiles/gocast_net.dir/trace.cpp.o"
  "CMakeFiles/gocast_net.dir/trace.cpp.o.d"
  "CMakeFiles/gocast_net.dir/underlay.cpp.o"
  "CMakeFiles/gocast_net.dir/underlay.cpp.o.d"
  "libgocast_net.a"
  "libgocast_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gocast_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/latency_model.cpp" "src/net/CMakeFiles/gocast_net.dir/latency_model.cpp.o" "gcc" "src/net/CMakeFiles/gocast_net.dir/latency_model.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/gocast_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/gocast_net.dir/network.cpp.o.d"
  "/root/repo/src/net/trace.cpp" "src/net/CMakeFiles/gocast_net.dir/trace.cpp.o" "gcc" "src/net/CMakeFiles/gocast_net.dir/trace.cpp.o.d"
  "/root/repo/src/net/underlay.cpp" "src/net/CMakeFiles/gocast_net.dir/underlay.cpp.o" "gcc" "src/net/CMakeFiles/gocast_net.dir/underlay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gocast_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gocast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

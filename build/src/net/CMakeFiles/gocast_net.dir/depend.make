# Empty dependencies file for gocast_net.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libgocast_net.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/gocast_membership.dir/partial_view.cpp.o"
  "CMakeFiles/gocast_membership.dir/partial_view.cpp.o.d"
  "libgocast_membership.a"
  "libgocast_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gocast_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

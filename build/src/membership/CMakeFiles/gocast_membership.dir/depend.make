# Empty dependencies file for gocast_membership.
# This may be replaced when dependencies are built.

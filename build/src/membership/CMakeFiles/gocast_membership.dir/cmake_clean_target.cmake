file(REMOVE_RECURSE
  "libgocast_membership.a"
)

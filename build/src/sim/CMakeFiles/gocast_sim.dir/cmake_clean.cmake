file(REMOVE_RECURSE
  "CMakeFiles/gocast_sim.dir/engine.cpp.o"
  "CMakeFiles/gocast_sim.dir/engine.cpp.o.d"
  "libgocast_sim.a"
  "libgocast_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gocast_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

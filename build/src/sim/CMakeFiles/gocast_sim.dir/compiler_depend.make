# Empty compiler generated dependencies file for gocast_sim.
# This may be replaced when dependencies are built.

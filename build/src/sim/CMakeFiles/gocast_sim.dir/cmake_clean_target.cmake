file(REMOVE_RECURSE
  "libgocast_sim.a"
)

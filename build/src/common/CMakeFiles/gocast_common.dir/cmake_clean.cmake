file(REMOVE_RECURSE
  "CMakeFiles/gocast_common.dir/env.cpp.o"
  "CMakeFiles/gocast_common.dir/env.cpp.o.d"
  "CMakeFiles/gocast_common.dir/logging.cpp.o"
  "CMakeFiles/gocast_common.dir/logging.cpp.o.d"
  "CMakeFiles/gocast_common.dir/rng.cpp.o"
  "CMakeFiles/gocast_common.dir/rng.cpp.o.d"
  "CMakeFiles/gocast_common.dir/stats.cpp.o"
  "CMakeFiles/gocast_common.dir/stats.cpp.o.d"
  "libgocast_common.a"
  "libgocast_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gocast_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

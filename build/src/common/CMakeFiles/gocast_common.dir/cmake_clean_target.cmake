file(REMOVE_RECURSE
  "libgocast_common.a"
)

# Empty compiler generated dependencies file for gocast_common.
# This may be replaced when dependencies are built.

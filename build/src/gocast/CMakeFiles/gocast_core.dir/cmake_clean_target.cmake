file(REMOVE_RECURSE
  "libgocast_core.a"
)

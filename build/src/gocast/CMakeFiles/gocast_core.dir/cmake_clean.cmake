file(REMOVE_RECURSE
  "CMakeFiles/gocast_core.dir/dissemination.cpp.o"
  "CMakeFiles/gocast_core.dir/dissemination.cpp.o.d"
  "CMakeFiles/gocast_core.dir/node.cpp.o"
  "CMakeFiles/gocast_core.dir/node.cpp.o.d"
  "CMakeFiles/gocast_core.dir/system.cpp.o"
  "CMakeFiles/gocast_core.dir/system.cpp.o.d"
  "libgocast_core.a"
  "libgocast_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gocast_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for gocast_core.
# This may be replaced when dependencies are built.

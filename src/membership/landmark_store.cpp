#include "membership/landmark_store.h"

namespace gocast::membership {

LandmarkStore::LandmarkStore() {
  // Slot 0 is the all-unmeasured vector, pinned for the store's lifetime so
  // kEmptyHandle never needs refcounting.
  Slot empty;
  empty.value = empty_landmarks();
  empty.refs = 1;
  slots_.push_back(empty);
  index_[key_of(empty.value)] = kEmptyHandle;
  live_ = 1;
}

LandmarkStore::Handle LandmarkStore::intern(const LandmarkVector& value) {
  const Key key = key_of(value);
  auto [it, fresh] = index_.try_emplace(key, 0);
  if (!fresh) {
    const Handle h = it->second;
    if (h != kEmptyHandle) ++slots_[h].refs;
    return h;
  }
  Handle h;
  if (free_head_ != kNoFree) {
    h = free_head_;
    free_head_ = slots_[h].next_free;
  } else {
    h = static_cast<Handle>(slots_.size());
    slots_.emplace_back();
  }
  slots_[h].value = value;
  slots_[h].refs = 1;
  it->second = h;
  ++live_;
  return h;
}

void LandmarkStore::retain(Handle h) {
  if (h == kEmptyHandle) return;
  GOCAST_ASSERT(h < slots_.size() && slots_[h].refs > 0);
  ++slots_[h].refs;
}

void LandmarkStore::release(Handle h) {
  if (h == kEmptyHandle) return;
  GOCAST_ASSERT(h < slots_.size() && slots_[h].refs > 0);
  if (--slots_[h].refs > 0) return;
  index_.erase(key_of(slots_[h].value));
  slots_[h].next_free = free_head_;
  free_head_ = h;
  --live_;
}

std::size_t LandmarkStore::memory_bytes() const {
  return slots_.capacity() * sizeof(Slot) + index_.memory_bytes();
}

}  // namespace gocast::membership

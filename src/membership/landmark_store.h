// Deployment-wide interning (hash-consing) of landmark-RTT vectors.
//
// Every PartialView entry used to carry its own 32-byte LandmarkVector copy,
// so a node known to v views cost 32·v bytes of identical floats — the
// dominant membership cost at large scale (256-entry views × 8k+ nodes).
// The store keeps one refcounted copy per distinct value and hands out
// 4-byte handles; views store the handle and resolve it on demand.
//
// Interning is by VALUE, not by node id: two vectors that happen to be
// bit-identical share a slot, and a node whose vector evolves (landmark
// measurements completing one by one) simply retires old values as the last
// referencing view entry drops them. Exact bit-patterns round-trip, so a
// materialized MemberEntry is byte-identical to what was inserted —
// interning is invisible to protocol behavior and to the wire.
//
// Hashing and equality are bitwise over the float words (NaN marks
// unmeasured slots, and NaN != NaN under float compare), so partially
// measured vectors intern correctly.
//
// The store is single-threaded, like everything else hanging off one
// sim::Engine; parallel sweeps give each System its own store.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/flat_map.h"
#include "membership/member_entry.h"

namespace gocast::membership {

class LandmarkStore {
 public:
  using Handle = std::uint32_t;

  /// Handle of the all-unmeasured vector (empty_landmarks()). Permanently
  /// interned at construction; retain/release on it are no-ops, so callers
  /// may use it as a cheap default without refcount bookkeeping.
  static constexpr Handle kEmptyHandle = 0;

  LandmarkStore();

  /// Returns the handle for `value`, allocating a slot on first sight, and
  /// takes one reference on it.
  [[nodiscard]] Handle intern(const LandmarkVector& value);

  /// Adds one reference to an existing handle.
  void retain(Handle h);

  /// Drops one reference; the slot is recycled (and the value forgotten)
  /// when the last reference goes away. No-op for kEmptyHandle.
  void release(Handle h);

  /// The interned value. The reference is valid until the next intern()
  /// (slot storage may grow); copy it out before interning again.
  [[nodiscard]] const LandmarkVector& get(Handle h) const {
    GOCAST_ASSERT(h < slots_.size() && slots_[h].refs > 0);
    return slots_[h].value;
  }

  /// Live reference count of a handle (test visibility).
  [[nodiscard]] std::uint32_t refcount(Handle h) const {
    GOCAST_ASSERT(h < slots_.size());
    return slots_[h].refs;
  }

  /// Number of distinct values currently interned (including the empty one).
  [[nodiscard]] std::size_t unique_count() const { return live_; }

  /// Total heap footprint of slots + index, for --mem-report.
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  // Bitwise view of a vector: exact float bits, so NaN patterns hash and
  // compare like any other value.
  using Key = std::array<std::uint32_t, kLandmarkSlots>;

  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = 0xcbf29ce484222325ULL;
      for (std::uint32_t w : k) {
        h ^= w;
        h *= 0x100000001b3ULL;
      }
      return static_cast<std::size_t>(h);
    }
  };

  struct Slot {
    LandmarkVector value{};
    std::uint32_t refs = 0;       // 0 == free
    std::uint32_t next_free = 0;  // free-list link, valid when refs == 0
  };

  static Key key_of(const LandmarkVector& v) { return std::bit_cast<Key>(v); }

  static constexpr std::uint32_t kNoFree = 0xffffffffu;

  std::vector<Slot> slots_;
  common::FlatMap<Key, std::uint32_t, KeyHash> index_;  // value bits -> slot
  std::uint32_t free_head_ = kNoFree;
  std::size_t live_ = 0;
};

}  // namespace gocast::membership

#include "membership/partial_view.h"

#include <algorithm>

#include "common/assert.h"

namespace gocast::membership {

PartialView::PartialView(NodeId self, std::size_t capacity, Rng rng,
                         std::shared_ptr<LandmarkStore> store)
    : self_(self),
      capacity_(capacity),
      rng_(std::move(rng)),
      store_(store != nullptr ? std::move(store)
                              : std::make_shared<LandmarkStore>()) {
  GOCAST_ASSERT(capacity_ >= 1);
  // Exact-fit, once: gossip fills every view to capacity in any warmed
  // deployment, so reserving the final size up front costs the same bytes
  // the view ends at anyway — while the doubling path would leave each
  // node's outgrown buffers (~half the final footprint) stranded in the
  // allocator as fragmentation no large run ever gets back.
  entries_.reserve(capacity_);
  // Table sized for capacity_ entries at <= 7/8 load, fixed for the view's
  // lifetime.
  std::size_t slots = 4;
  while (slots * 7 < (capacity_ + 1) * 8) slots <<= 1;
  index_.assign(slots, kEmptySlot);
  index_mask_ = slots - 1;
}

std::uint32_t PartialView::lookup(NodeId id) const {
  std::size_t i = probe_start(id);
  for (;;) {
    std::uint32_t s = index_[i];
    if (s == kEmptySlot) return kEmptySlot;
    if (s != kDeadSlot && entries_[s].id == id) return s;
    i = (i + 1) & index_mask_;
  }
}

void PartialView::index_insert(NodeId id, std::uint32_t pos) {
  if ((entries_.size() + index_dead_ + 1) * 8 > index_.size() * 7) {
    index_rebuild();
  }
  std::size_t i = probe_start(id);
  for (;;) {
    std::uint32_t s = index_[i];
    if (s == kEmptySlot || s == kDeadSlot) {
      if (s == kDeadSlot) --index_dead_;
      index_[i] = pos;
      return;
    }
    if (entries_[s].id == id) {
      // Already mapped: the eviction path overwrites the victim entry
      // before re-indexing it, so a rebuild triggered just above has
      // indexed the new id already. Inserting again would leave a
      // duplicate slot that later turns into a stale alias.
      index_[i] = pos;
      return;
    }
    i = (i + 1) & index_mask_;
  }
}

void PartialView::index_erase(NodeId id) {
  std::size_t i = probe_start(id);
  for (;;) {
    std::uint32_t s = index_[i];
    if (s == kEmptySlot) return;
    if (s != kDeadSlot && entries_[s].id == id) {
      index_[i] = kDeadSlot;
      ++index_dead_;
      return;
    }
    i = (i + 1) & index_mask_;
  }
}

void PartialView::index_update(NodeId id, std::uint32_t pos) {
  std::size_t i = probe_start(id);
  for (;;) {
    std::uint32_t s = index_[i];
    GOCAST_ASSERT(s != kEmptySlot);
    if (s != kDeadSlot && entries_[s].id == id) {
      index_[i] = pos;
      return;
    }
    i = (i + 1) & index_mask_;
  }
}

void PartialView::index_rebuild() {
  std::fill(index_.begin(), index_.end(), kEmptySlot);
  index_dead_ = 0;
  for (std::uint32_t pos = 0; pos < entries_.size(); ++pos) {
    std::size_t i = probe_start(entries_[pos].id);
    while (index_[i] != kEmptySlot) i = (i + 1) & index_mask_;
    index_[i] = pos;
  }
}

PartialView::~PartialView() {
  if (store_ == nullptr) return;  // moved-from
  for (const CompactEntry& e : entries_) store_->release(e.lm);
}

void PartialView::insert(const MemberEntry& entry) {
  if (entry.id == self_ || entry.id == kInvalidNode) return;

  std::uint32_t pos = lookup(entry.id);
  if (pos != kEmptySlot) {
    CompactEntry& existing = entries_[pos];
    if (entry.heard_at >= existing.heard_at) {
      // Intern before releasing: a refresh with the same vector just bumps
      // and drops the refcount instead of recycling the slot.
      LandmarkStore::Handle lm = store_->intern(entry.landmark_rtt);
      store_->release(existing.lm);
      existing.lm = lm;
      existing.heard_at = std::max(existing.heard_at, entry.heard_at);
    }
    return;
  }

  if (entries_.size() >= capacity_) {
    // Uniform random eviction keeps the view an (approximately) uniform
    // sample of the membership stream. The index erase must precede the
    // slot overwrite: probes resolve ids through the entry they point at.
    std::size_t victim = static_cast<std::size_t>(rng_.next_below(entries_.size()));
    index_erase(entries_[victim].id);
    store_->release(entries_[victim].lm);
    entries_[victim] = CompactEntry{entry.id, store_->intern(entry.landmark_rtt),
                                    entry.heard_at};
    index_insert(entry.id, static_cast<std::uint32_t>(victim));
    return;
  }

  index_insert(entry.id, static_cast<std::uint32_t>(entries_.size()));
  entries_.push_back(CompactEntry{entry.id, store_->intern(entry.landmark_rtt),
                                  entry.heard_at});
}

void PartialView::integrate(std::span<const MemberEntry> entries) {
  for (const MemberEntry& e : entries) insert(e);
}

void PartialView::remove(NodeId id) {
  std::uint32_t pos = lookup(id);
  if (pos == kEmptySlot) return;
  std::uint32_t last = static_cast<std::uint32_t>(entries_.size() - 1);
  store_->release(entries_[pos].lm);
  index_erase(id);
  if (pos != last) {
    NodeId moved = entries_[last].id;
    entries_[pos] = entries_[last];
    index_update(moved, pos);
  }
  entries_.pop_back();
  if (cursor_ > entries_.size()) cursor_ = 0;
}

bool PartialView::contains(NodeId id) const {
  return lookup(id) != kEmptySlot;
}

std::optional<MemberEntry> PartialView::find(NodeId id) const {
  std::uint32_t pos = lookup(id);
  if (pos == kEmptySlot) return std::nullopt;
  return entry_at(pos);
}

MemberEntry PartialView::entry_at(std::size_t pos) const {
  const CompactEntry& e = entries_[pos];
  MemberEntry out;
  out.id = e.id;
  out.landmark_rtt = store_->get(e.lm);
  out.heard_at = e.heard_at;
  return out;
}

NodeId PartialView::random_member() {
  if (entries_.empty()) return kInvalidNode;
  return entries_[static_cast<std::size_t>(rng_.next_below(entries_.size()))].id;
}

std::vector<MemberEntry> PartialView::sample(std::size_t k) {
  // Reservoir-sample positions over the compact slots — the draw sequence
  // depends only on (size, k), so it matches the pre-interning sample()
  // byte for byte — then materialize the winners.
  std::vector<CompactEntry> picked = rng_.sample(entries_, k);
  std::vector<MemberEntry> out;
  out.reserve(picked.size());
  for (const CompactEntry& e : picked) {
    MemberEntry m;
    m.id = e.id;
    m.landmark_rtt = store_->get(e.lm);
    m.heard_at = e.heard_at;
    out.push_back(m);
  }
  return out;
}

NodeId PartialView::next_round_robin() {
  if (entries_.empty()) return kInvalidNode;
  if (cursor_ >= entries_.size()) cursor_ = 0;
  return entries_[cursor_++].id;
}

std::size_t PartialView::memory_bytes() const {
  return entries_.capacity() * sizeof(CompactEntry) +
         index_.capacity() * sizeof(std::uint32_t);
}

}  // namespace gocast::membership

#include "membership/partial_view.h"

#include <algorithm>

#include "common/assert.h"

namespace gocast::membership {

PartialView::PartialView(NodeId self, std::size_t capacity, Rng rng)
    : self_(self), capacity_(capacity), rng_(std::move(rng)) {
  GOCAST_ASSERT(capacity_ >= 1);
  entries_.reserve(capacity_);
  index_.reserve(capacity_);
}

void PartialView::insert(const MemberEntry& entry) {
  if (entry.id == self_ || entry.id == kInvalidNode) return;

  auto it = index_.find(entry.id);
  if (it != index_.end()) {
    MemberEntry& existing = entries_[it->second];
    if (entry.heard_at >= existing.heard_at) {
      SimTime prev = existing.heard_at;
      existing = entry;
      existing.heard_at = std::max(prev, entry.heard_at);
    }
    return;
  }

  if (entries_.size() >= capacity_) {
    // Uniform random eviction keeps the view an (approximately) uniform
    // sample of the membership stream.
    std::size_t victim = static_cast<std::size_t>(rng_.next_below(entries_.size()));
    index_.erase(entries_[victim].id);
    entries_[victim] = entry;
    index_[entry.id] = static_cast<std::uint32_t>(victim);
    return;
  }

  index_[entry.id] = static_cast<std::uint32_t>(entries_.size());
  entries_.push_back(entry);
}

void PartialView::integrate(std::span<const MemberEntry> entries) {
  for (const MemberEntry& e : entries) insert(e);
}

void PartialView::remove(NodeId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  std::size_t pos = it->second;
  std::size_t last = entries_.size() - 1;
  if (pos != last) {
    entries_[pos] = entries_[last];
    index_[entries_[pos].id] = static_cast<std::uint32_t>(pos);
  }
  entries_.pop_back();
  index_.erase(it);
  if (cursor_ > entries_.size()) cursor_ = 0;
}

bool PartialView::contains(NodeId id) const { return index_.count(id) > 0; }

const MemberEntry* PartialView::find(NodeId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &entries_[it->second];
}

NodeId PartialView::random_member() {
  if (entries_.empty()) return kInvalidNode;
  return entries_[static_cast<std::size_t>(rng_.next_below(entries_.size()))].id;
}

std::vector<MemberEntry> PartialView::sample(std::size_t k) {
  return rng_.sample(entries_, k);
}

const MemberEntry* PartialView::next_round_robin() {
  if (entries_.empty()) return nullptr;
  if (cursor_ >= entries_.size()) cursor_ = 0;
  return &entries_[cursor_++];
}

}  // namespace gocast::membership

// A partial-view entry: a node address plus the small landmark-RTT vector
// piggybacked for proximity estimation (see coord::TriangulationEstimator).
#pragma once

#include <array>
#include <cmath>
#include <cstddef>

#include "common/types.h"

namespace gocast::membership {

/// Number of landmark slots carried per member entry. Eight single-precision
/// RTTs cost 32 bytes on the wire — small enough to piggyback on gossips.
inline constexpr std::size_t kLandmarkSlots = 8;

/// RTT vector to the global landmark set; NaN marks unmeasured slots.
using LandmarkVector = std::array<float, kLandmarkSlots>;

[[nodiscard]] inline LandmarkVector empty_landmarks() {
  LandmarkVector v{};
  v.fill(std::nanf(""));
  return v;
}

struct MemberEntry {
  NodeId id = kInvalidNode;
  LandmarkVector landmark_rtt = empty_landmarks();
  SimTime heard_at = 0.0;  ///< local time the entry was last refreshed

  /// Wire footprint of one piggybacked entry: 4-byte address + landmark
  /// vector + 2-byte age.
  [[nodiscard]] static constexpr std::size_t wire_size() {
    return 4 + kLandmarkSlots * 4 + 2;
  }
};

}  // namespace gocast::membership

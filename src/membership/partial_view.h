// Bounded uniform partial membership view (lpbcast-style).
//
// The paper maintains per-node knowledge of a random subset of the system by
// piggybacking random node addresses on gossips; it cites [5, 16] for the
// details and relies only on the view being "uniformly random enough". This
// implementation keeps a bounded set refreshed by piggybacked entries, with
// uniform random eviction when full — the core mechanism of lpbcast.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/flat_map.h"
#include "common/rng.h"
#include "common/types.h"
#include "membership/member_entry.h"

namespace gocast::membership {

class PartialView {
 public:
  PartialView(NodeId self, std::size_t capacity, Rng rng);

  /// Inserts or refreshes an entry. Entries for `self` are ignored. When the
  /// view is full, a uniformly random existing entry is evicted. The policy
  /// is mildly recency-biased: entries that keep being recirculated by
  /// gossip stay present, one-shot entries (e.g. dead nodes) wash out.
  void insert(const MemberEntry& entry);

  /// Merges a batch of piggybacked entries.
  void integrate(std::span<const MemberEntry> entries);

  /// Drops a member (e.g. observed dead).
  void remove(NodeId id);

  [[nodiscard]] bool contains(NodeId id) const;
  [[nodiscard]] const MemberEntry* find(NodeId id) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// All current entries (order unspecified and unstable across mutation).
  [[nodiscard]] const std::vector<MemberEntry>& entries() const { return entries_; }

  /// Uniformly random member id; kInvalidNode when empty.
  [[nodiscard]] NodeId random_member();

  /// `k` entries sampled without replacement, for piggybacking on a gossip.
  [[nodiscard]] std::vector<MemberEntry> sample(std::size_t k);

  /// Round-robin cursor over the view, used by the nearby-neighbor
  /// maintenance protocol to consider candidates one per cycle. Skips
  /// nothing; wraps around. Returns nullptr when the view is empty.
  [[nodiscard]] const MemberEntry* next_round_robin();

 private:
  NodeId self_;
  std::size_t capacity_;
  Rng rng_;
  std::vector<MemberEntry> entries_;
  // id -> position in entries_. The value is u32 (not size_t) on purpose:
  // it halves the index's slot footprint, and membership inserts are
  // memory-bound across many per-node views in large runs.
  common::FlatMap<NodeId, std::uint32_t> index_;
  std::size_t cursor_ = 0;
};

}  // namespace gocast::membership

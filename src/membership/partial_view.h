// Bounded uniform partial membership view (lpbcast-style).
//
// The paper maintains per-node knowledge of a random subset of the system by
// piggybacking random node addresses on gossips; it cites [5, 16] for the
// details and relies only on the view being "uniformly random enough". This
// implementation keeps a bounded set refreshed by piggybacked entries, with
// uniform random eviction when full — the core mechanism of lpbcast.
//
// Storage is compact: each slot is 16 bytes ({id, landmark handle,
// heard_at}) with the 32-byte landmark vector interned in a LandmarkStore
// shared across the deployment, instead of the 48-byte MemberEntry copied
// into every view that knows a node. Entry order, eviction draws, and the
// materialized MemberEntry values are all identical to the uninterned
// representation — the compaction is invisible to protocol behavior.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "membership/landmark_store.h"
#include "membership/member_entry.h"

namespace gocast::membership {

class PartialView {
 public:
  /// `store` is the deployment-wide landmark interning store; when null the
  /// view creates a private one (convenient for unit tests and standalone
  /// nodes — sharing is what saves memory, not a correctness requirement).
  PartialView(NodeId self, std::size_t capacity, Rng rng,
              std::shared_ptr<LandmarkStore> store = nullptr);

  PartialView(const PartialView&) = delete;
  PartialView& operator=(const PartialView&) = delete;
  // Move-construction transfers the landmark references (the source is left
  // empty); move-assignment would leak the target's references, so it stays
  // deleted along with copying.
  PartialView(PartialView&&) = default;
  PartialView& operator=(PartialView&&) = delete;
  ~PartialView();

  /// Inserts or refreshes an entry. Entries for `self` are ignored. When the
  /// view is full, a uniformly random existing entry is evicted. The policy
  /// is mildly recency-biased: entries that keep being recirculated by
  /// gossip stay present, one-shot entries (e.g. dead nodes) wash out.
  void insert(const MemberEntry& entry);

  /// Merges a batch of piggybacked entries.
  void integrate(std::span<const MemberEntry> entries);

  /// Drops a member (e.g. observed dead), releasing its landmark reference.
  void remove(NodeId id);

  [[nodiscard]] bool contains(NodeId id) const;
  [[nodiscard]] std::optional<MemberEntry> find(NodeId id) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Materialized entry at a position (order unspecified and unstable
  /// across mutation; positions match the pre-interning entries() vector).
  [[nodiscard]] MemberEntry entry_at(std::size_t pos) const;

  /// Id at a position, without materializing the landmark vector.
  [[nodiscard]] NodeId id_at(std::size_t pos) const {
    return entries_[pos].id;
  }

  /// Landmark vector at a position, resolved from the store. The reference
  /// is valid until the next store mutation.
  [[nodiscard]] const LandmarkVector& landmarks_at(std::size_t pos) const {
    return store_->get(entries_[pos].lm);
  }

  /// Uniformly random member id; kInvalidNode when empty.
  [[nodiscard]] NodeId random_member();

  /// `k` entries sampled without replacement, for piggybacking on a gossip.
  [[nodiscard]] std::vector<MemberEntry> sample(std::size_t k);

  /// Round-robin cursor over the view, used by the nearby-neighbor
  /// maintenance protocol to consider candidates one per cycle. Skips
  /// nothing; wraps around. Returns kInvalidNode when the view is empty.
  [[nodiscard]] NodeId next_round_robin();

  /// The interning store backing this view.
  [[nodiscard]] const std::shared_ptr<LandmarkStore>& landmark_store() const {
    return store_;
  }

  /// Heap footprint of this view's slot vector and index (excludes the
  /// shared store, which --mem-report counts once per deployment).
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  // One view slot: the full 48-byte MemberEntry minus the landmark vector,
  // which lives (interned, refcounted) in the shared store.
  struct CompactEntry {
    NodeId id = kInvalidNode;
    LandmarkStore::Handle lm = LandmarkStore::kEmptyHandle;
    SimTime heard_at = 0.0;
  };
  static_assert(sizeof(CompactEntry) == 16);

  // The id->position index is a bare open-addressed table of u32 positions
  // into entries_ (4 bytes per slot; the key lives in the entry it points
  // at). The view is capacity-bounded, so the table is sized once in the
  // constructor and never grows; erase leaves tombstones that an in-place
  // O(table) rebuild sweeps out when they crowd the probe chains. Lookup
  // results are pure set semantics — probe layout is invisible to protocol
  // behavior.
  static constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFu;
  static constexpr std::uint32_t kDeadSlot = 0xFFFFFFFEu;

  [[nodiscard]] std::size_t probe_start(NodeId id) const {
    std::uint64_t x = id;
    x *= 0x9E3779B97F4A7C15ull;
    x ^= x >> 32;
    return static_cast<std::size_t>(x) & index_mask_;
  }
  /// Position of `id` in entries_, or kEmptySlot when absent.
  [[nodiscard]] std::uint32_t lookup(NodeId id) const;
  /// Records `id` (which must be absent) at position `pos`.
  void index_insert(NodeId id, std::uint32_t pos);
  /// Tombstones `id`'s slot; no-op when absent.
  void index_erase(NodeId id);
  /// Repoints `id`'s existing slot at a new position (swap-pop moves).
  void index_update(NodeId id, std::uint32_t pos);
  void index_rebuild();

  NodeId self_;
  std::size_t capacity_;
  Rng rng_;
  std::shared_ptr<LandmarkStore> store_;
  std::vector<CompactEntry> entries_;
  std::vector<std::uint32_t> index_;
  std::size_t index_mask_ = 0;
  std::size_t index_dead_ = 0;
  std::size_t cursor_ = 0;
};

}  // namespace gocast::membership

#include "sim/sharded_engine.h"

#include <algorithm>
#include <utility>

namespace gocast::sim {

ShardedEngine::ShardedEngine(Config config)
    : lookahead_(config.lookahead), serial_(config.serial) {
  GOCAST_ASSERT_MSG(config.shards >= 1, "shard count must be >= 1");
  GOCAST_ASSERT_MSG(lookahead_ > 0.0,
                    "non-positive lookahead " << lookahead_
                                              << " (degenerate topology; the "
                                                 "caller must fall back)");
  engines_.reserve(config.shards);
  for (std::size_t k = 0; k < config.shards; ++k) {
    engines_.push_back(std::make_unique<Engine>());
  }
  // resize, not assign: Mail holds a move-only callback, so the vectors are
  // not copy-fillable.
  outbox_.resize(config.shards);
  for (std::vector<std::vector<Mail>>& row : outbox_) row.resize(config.shards);
  if (!serial_ && config.shards > 1) {
    workers_.reserve(config.shards - 1);
    for (std::size_t k = 1; k < config.shards; ++k) {
      workers_.emplace_back([this, k] { worker_loop(k); });
    }
  }
}

ShardedEngine::~ShardedEngine() {
  if (!workers_.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& w : workers_) w.join();
  }
}

void ShardedEngine::schedule_control(SimTime t, InlineCallback cb) {
  GOCAST_ASSERT_MSG(t >= now_, "control scheduled into the past: t="
                                   << t << " now=" << now_);
  controls_.push_back(Control{t, control_seq_++, std::move(cb)});
  auto later = [](const Control& a, const Control& b) {
    return a.at > b.at || (a.at == b.at && a.seq > b.seq);
  };
  std::push_heap(controls_.begin(), controls_.end(), later);
}

void ShardedEngine::post(std::size_t src, std::size_t dst, SimTime at,
                         std::uint64_t key, InlineCallback cb) {
  GOCAST_ASSERT(src < outbox_.size() && dst < outbox_.size());
  outbox_[src][dst].push_back(Mail{at, key, std::move(cb)});
}

void ShardedEngine::drain_mail() {
  for (std::vector<std::vector<Mail>>& row : outbox_) {
    for (std::size_t dst = 0; dst < row.size(); ++dst) {
      std::vector<Mail>& box = row[dst];
      if (box.empty()) continue;
      Engine& engine = *engines_[dst];
      for (Mail& m : box) {
        engine.schedule_at_ordered(m.at, m.key, std::move(m.cb));
      }
      box.clear();
    }
  }
}

SimTime ShardedEngine::min_next_event() const {
  SimTime t = kNever;
  for (const std::unique_ptr<Engine>& e : engines_) {
    t = std::min(t, e->next_event_time());
  }
  return t;
}

void ShardedEngine::run_shard(std::size_t k, SimTime t, bool inclusive) {
  if (inclusive) {
    engines_[k]->run_until(t);
  } else {
    engines_[k]->run_before(t);
  }
}

void ShardedEngine::worker_loop(std::size_t k) {
  std::uint64_t seen = 0;
  for (;;) {
    SimTime t;
    bool inclusive;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return shutdown_ || job_gen_ != seen; });
      if (shutdown_) return;
      seen = job_gen_;
      t = job_time_;
      inclusive = job_inclusive_;
    }
    run_shard(k, t, inclusive);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++done_count_;
    }
    cv_done_.notify_one();
  }
}

void ShardedEngine::parallel_run(SimTime t, bool inclusive) {
  if (workers_.empty()) {
    for (std::size_t k = 0; k < engines_.size(); ++k) {
      run_shard(k, t, inclusive);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_time_ = t;
    job_inclusive_ = inclusive;
    done_count_ = 0;
    ++job_gen_;
  }
  cv_work_.notify_all();
  run_shard(0, t, inclusive);
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [&] { return done_count_ == workers_.size(); });
  }
}

void ShardedEngine::run_until(SimTime t) {
  GOCAST_ASSERT_MSG(t >= now_, "run_until into the past: t=" << t
                                                             << " now=" << now_);
  auto later = [](const Control& a, const Control& b) {
    return a.at > b.at || (a.at == b.at && a.seq > b.seq);
  };
  for (;;) {
    drain_mail();
    const SimTime t_next = min_next_event();
    const SimTime t_ctrl = controls_.empty() ? kNever : controls_.front().at;
    if (t_ctrl <= t_next) {
      // No shard event strictly earlier than the control. Advance every
      // shard to the control time with run_before — same-time shard events
      // stay pending, so the control fires ahead of them, exactly like a
      // serial engine where the control was admitted first.
      if (t_ctrl > t) break;
      parallel_run(t_ctrl, /*inclusive=*/false);
      now_ = t_ctrl;
      while (!controls_.empty() && controls_.front().at == t_ctrl) {
        std::pop_heap(controls_.begin(), controls_.end(), later);
        Control c = std::move(controls_.back());
        controls_.pop_back();
        c.cb();
      }
      continue;
    }
    // Conservative window: everything strictly before t_next + lookahead is
    // safe to run concurrently — a cross-shard admission caused by an event
    // at ts lands at >= ts + lookahead >= t_next + lookahead, i.e. beyond
    // the window edge, and waits in the mailbox for the next barrier.
    const SimTime edge = std::min(t_next + lookahead_, t_ctrl);
    if (edge > t) break;
    parallel_run(edge, /*inclusive=*/false);
    now_ = edge;
    ++windows_;
  }
  // Tail: no control remains at <= t, and either no events remain at <= t or
  // every remaining one lies within a single lookahead of the horizon
  // (t_next + lookahead > t), so cross-shard admissions land strictly after
  // t and wait in the mailboxes for the next run_until call. Running every
  // shard inclusively to t is therefore safe and also advances idle shard
  // clocks to the horizon.
  parallel_run(t, /*inclusive=*/true);
  now_ = t;
}

std::size_t ShardedEngine::processed() const {
  std::size_t n = 0;
  for (const std::unique_ptr<Engine>& e : engines_) n += e->processed();
  return n;
}

std::size_t ShardedEngine::pending() const {
  std::size_t n = controls_.size();
  for (const std::unique_ptr<Engine>& e : engines_) n += e->pending();
  for (const std::vector<std::vector<Mail>>& row : outbox_) {
    for (const std::vector<Mail>& box : row) n += box.size();
  }
  return n;
}

std::size_t ShardedEngine::memory_bytes() const {
  std::size_t bytes = controls_.capacity() * sizeof(Control);
  for (const std::unique_ptr<Engine>& e : engines_) {
    bytes += sizeof(Engine) + e->memory_bytes();
  }
  for (const std::vector<std::vector<Mail>>& row : outbox_) {
    for (const std::vector<Mail>& box : row) {
      bytes += box.capacity() * sizeof(Mail);
    }
  }
  return bytes;
}

}  // namespace gocast::sim

// Periodic timer built on the engine. Owns its pending event: destroying or
// stopping the timer cancels the event, so callbacks never outlive their
// owner.
#pragma once

#include <functional>
#include <utility>

#include "common/assert.h"
#include "sim/engine.h"

namespace gocast::sim {

class PeriodicTimer {
 public:
  /// `fn` fires every `period` seconds once started.
  PeriodicTimer(Engine& engine, SimTime period, std::function<void()> fn)
      : engine_(engine), period_(period), fn_(std::move(fn)) {
    GOCAST_ASSERT(period_ > 0.0);
    GOCAST_ASSERT(fn_ != nullptr);
  }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  ~PeriodicTimer() { stop(); }

  /// Starts (or restarts) the timer; the first firing happens after
  /// `first_delay` seconds.
  void start(SimTime first_delay) {
    stop();
    running_ = true;
    arm(first_delay);
  }

  /// Convenience: first firing after one full period.
  void start() { start(period_); }

  void stop() {
    if (!running_) return;
    running_ = false;
    engine_.cancel(pending_);
    pending_ = kInvalidEvent;
  }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] SimTime period() const { return period_; }

  /// Changes the period; takes effect from the next re-arm.
  void set_period(SimTime period) {
    GOCAST_ASSERT(period > 0.0);
    period_ = period;
  }

 private:
  void arm(SimTime delay) {
    pending_ = engine_.schedule_after(delay, [this] {
      // Re-arm before invoking: the callback may stop() us, and stopping
      // must win over re-arming.
      arm(period_);
      fn_();
    });
  }

  Engine& engine_;
  SimTime period_;
  std::function<void()> fn_;
  bool running_ = false;
  EventId pending_ = kInvalidEvent;
};

}  // namespace gocast::sim

// Periodic timer built on any scheduler satisfying the timer concept (the
// simulation engine, a runtime backend). Owns its pending event: destroying
// or stopping the timer cancels the event, so callbacks never outlive their
// owner.
//
// The tick callable is stored as a sim::InlineCallback, not a std::function:
// periodic protocol ticks are the most common recurring schedule in the
// system (every node arms maintenance/gossip/gc/heartbeat timers), and
// std::function would heap-allocate any capture beyond its tiny inline
// buffer. Captures must fit InlineCallback's inline capacity — asserted at
// compile time, so an outgrown capture is a build error, never a silent
// allocation.
#pragma once

#include <type_traits>
#include <utility>

#include "common/assert.h"
#include "sim/engine.h"
#include "sim/inline_callback.h"

namespace gocast::sim {

/// Periodic timer over a Scheduler providing:
///   using TimerId = ...;             // handle to a pending one-shot
///   static TimerId invalid_timer();  // sentinel handle
///   SimTime now() const;
///   TimerId schedule_after(SimTime delay, InlineCallback cb);
///   bool cancel(TimerId id);
template <class Scheduler>
class BasicPeriodicTimer {
 public:
  using TimerId = typename Scheduler::TimerId;

  /// `fn` fires every `period` seconds once started. The capture must fit
  /// the engine's inline callback storage (compile-time checked).
  template <class F>
  BasicPeriodicTimer(Scheduler& scheduler, SimTime period, F&& fn)
      : scheduler_(scheduler), period_(period), fn_(std::forward<F>(fn)) {
    static_assert(sizeof(std::decay_t<F>) <= InlineCallback::kInlineCapacity,
                  "periodic tick capture must fit InlineCallback inline "
                  "storage; shrink the capture or raise kInlineCapacity");
    static_assert(std::is_nothrow_move_constructible_v<std::decay_t<F>>,
                  "periodic tick capture must be nothrow-movable to stay on "
                  "the InlineCallback inline path");
    GOCAST_ASSERT(period_ > 0.0);
    GOCAST_ASSERT(static_cast<bool>(fn_));
  }

  BasicPeriodicTimer(const BasicPeriodicTimer&) = delete;
  BasicPeriodicTimer& operator=(const BasicPeriodicTimer&) = delete;

  ~BasicPeriodicTimer() { stop(); }

  /// Starts (or restarts) the timer; the first firing happens after
  /// `first_delay` seconds.
  void start(SimTime first_delay) {
    stop();
    running_ = true;
    arm(first_delay);
  }

  /// Convenience: first firing after one full period.
  void start() { start(period_); }

  void stop() {
    if (!running_) return;
    running_ = false;
    scheduler_.cancel(pending_);
    pending_ = Scheduler::invalid_timer();
  }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] SimTime period() const { return period_; }

  /// Changes the period; takes effect from the next re-arm.
  void set_period(SimTime period) {
    GOCAST_ASSERT(period > 0.0);
    period_ = period;
  }

 private:
  void arm(SimTime delay) {
    pending_ = scheduler_.schedule_after(delay, [this] {
      // Re-arm before invoking: the callback may stop() us, and stopping
      // must win over re-arming.
      arm(period_);
      fn_();
    });
  }

  Scheduler& scheduler_;
  SimTime period_;
  InlineCallback fn_;
  bool running_ = false;
  TimerId pending_ = Scheduler::invalid_timer();
};

/// The engine-driven timer used throughout the simulator.
using PeriodicTimer = BasicPeriodicTimer<Engine>;

}  // namespace gocast::sim

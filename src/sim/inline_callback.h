// Small-buffer-optimized move-only callable for the event engine.
//
// std::function heap-allocates any capture larger than its tiny inline
// buffer (16 bytes on libstdc++); the simulator's hottest callbacks — a
// network delivery captures {this, from, to, MessagePtr} = 32 bytes — paid
// one allocation per scheduled event. InlineCallback stores captures up to
// kInlineCapacity bytes in place and falls back to the heap only beyond
// that, with a flat ops table instead of virtual dispatch.
//
// Moves are branchless-cheap for trivially copyable captures (the common
// case: pointers and ids): their ops entries carry null relocate/destroy and
// the storage is memcpy'd. Non-trivial captures (e.g. a shared_ptr) relocate
// through a generated thunk.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace gocast::sim {

class InlineCallback {
 public:
  /// Captures up to this many bytes live inline (no allocation). Sized for
  /// the delivery callback plus slack; raise it if a hot caller outgrows it.
  static constexpr std::size_t kInlineCapacity = 32;

  InlineCallback() = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() {
    if (ops_ != nullptr && ops_->destroy != nullptr) ops_->destroy(storage_);
  }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-constructs dst from src and destroys src; null when a raw
    /// storage memcpy relocates correctly (trivially copyable captures and
    /// the heap path's plain pointer).
    void (*relocate)(void* dst, void* src);
    /// Null when destruction is a no-op.
    void (*destroy)(void* storage);
  };

  template <class Fn>
  static constexpr Ops inline_ops = {
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      std::is_trivially_copyable_v<Fn>
          ? nullptr
          : +[](void* dst, void* src) {
              Fn* from = std::launder(reinterpret_cast<Fn*>(src));
              ::new (dst) Fn(std::move(*from));
              from->~Fn();
            },
      std::is_trivially_destructible_v<Fn>
          ? nullptr
          : +[](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
  };

  template <class Fn>
  static constexpr Ops heap_ops = {
      [](void* s) { (**reinterpret_cast<Fn**>(s))(); },
      nullptr,  // relocating the owning pointer is a memcpy
      [](void* s) { delete *reinterpret_cast<Fn**>(s); },
  };

  void move_from(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->relocate != nullptr) {
        ops_->relocate(storage_, other.storage_);
      } else {
        std::memcpy(storage_, other.storage_, kInlineCapacity);
      }
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace gocast::sim

#include "sim/engine.h"

#ifdef __linux__
#include <sys/mman.h>
#endif

#include <algorithm>
#include <new>
#include <utility>

namespace gocast::sim {

// Physical index map (root offset kRootPos = 3): children of p are
// 4p-8 .. 4p-5, parent of c is (c + 8) / 4. See engine.h for why.

void Engine::sift_up(std::size_t pos) {
  HeapEntry e = heap_[pos];
  while (pos > kRootPos) {
    const std::size_t parent = (pos + 8) / 4;
    if (!(e < heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = e;
}

void Engine::sift_down(std::size_t pos, std::size_t top) {
  // Bottom-up variant (same trick as libstdc++ __adjust_heap): walk the hole
  // all the way down along min-children, then bubble the displaced element up
  // from the leaf. The displaced element came from the heap's back — almost
  // always a large key — so the up-phase is O(1) expected while the descent
  // skips a per-level comparison against it. The full-fanout min-of-4 scan
  // is unrolled and compiles to conditional moves (128-bit compares), so the
  // descent takes no data-dependent branches.
  //
  // The bubble-up must stop at `top` (the position the sift started from,
  // libstdc++'s __topIndex), NOT at kRootPos: when Floyd heapify sifts an
  // interior node whose ancestors are not yet heapified, stopping only at the
  // root would hoist the element above its own subtree and corrupt the heap.
  const std::size_t n = heap_.size();
  const HeapEntry e = heap_[pos];
  HeapEntry* h = heap_.data();
  std::size_t first;
  while ((first = pos * 4 - 8) + 3 < n) {
    // The next level's load address depends on which child wins the scan
    // below, so the descent is a chain of serial cache misses. Prefetching
    // all four grandchild lines (they are contiguous: children groups are
    // one line each) overlaps the next level's fill with this level's scan.
    const std::size_t grand = first * 4 - 8;
    if (grand < n) {
      __builtin_prefetch(h + grand);
      if (grand + 4 < n) __builtin_prefetch(h + grand + 4);
      if (grand + 8 < n) __builtin_prefetch(h + grand + 8);
      if (grand + 12 < n) __builtin_prefetch(h + grand + 12);
    }
    std::size_t best = first;
    best = h[first + 1] < h[best] ? first + 1 : best;
    best = h[first + 2] < h[best] ? first + 2 : best;
    best = h[first + 3] < h[best] ? first + 3 : best;
    h[pos] = h[best];
    pos = best;
  }
  if (first < n) {  // partial last group (1-3 children)
    std::size_t best = first;
    for (std::size_t c = first + 1; c < n; ++c) {
      best = h[c] < h[best] ? c : best;
    }
    h[pos] = h[best];
    pos = best;
  }
  while (pos > top) {
    const std::size_t parent = (pos + 8) / 4;
    if (!(e < h[parent])) break;
    h[pos] = h[parent];
    pos = parent;
  }
  h[pos] = e;
}

void Engine::heap_push(HeapEntry e) {
  heap_.push_back(e);
  sift_up(heap_.size() - 1);
}

void Engine::heap_pop() {
  heap_[kRootPos] = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n <= kRootPos) return;
  if (n >= 8) {
    // The next top is almost always the min of the root's children (the
    // element moved up from the back rarely wins). That line is cache-hot,
    // so predict the winner now and prefetch its slot a whole sift_down
    // earlier than fire_top's own prefetch can.
    const HeapEntry* h = heap_.data();
    std::size_t best = 4;
    best = h[5] < h[best] ? 5 : best;
    best = h[6] < h[best] ? 6 : best;
    best = h[7] < h[best] ? 7 : best;
    __builtin_prefetch(&meta_ref(tag_slot(entry_tag(h[best]))));
  }
  sift_down(kRootPos, kRootPos);
}

Engine::~Engine() {
  // Chunks hold raw storage; only slots [0, slot_count_) were ever
  // placement-constructed (free-listed slots stay constructed). SlotMeta is
  // trivially destructible; only the callbacks need real destruction.
  for (std::uint32_t s = 0; s < slot_count_; ++s) {
    callback_ref(s).~Callback();
  }
}

std::uint32_t Engine::acquire_slot() {
  if (free_head_ != kNoFreeSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = meta_ref(slot).next_free;
    return slot;
  }
  if ((slot_count_ >> kChunkShift) == chunks_.size()) {
    void* raw = ::operator new(kChunkBytes, std::align_val_t{kChunkBytes});
#ifdef __linux__
    madvise(raw, kChunkBytes, MADV_HUGEPAGE);
#endif
    chunks_.emplace_back(static_cast<std::byte*>(raw));
  }
  GOCAST_ASSERT(slot_count_ < (std::uint32_t{1} << kSlotBits));
  new (&meta_ref(slot_count_)) SlotMeta;
  new (&callback_ref(slot_count_)) Callback;
  return slot_count_++;
}

EventId Engine::schedule_at(SimTime t, Callback cb) {
  GOCAST_ASSERT_MSG(t >= now_, "scheduling into the past: t=" << t
                                                              << " now=" << now_);
  GOCAST_ASSERT(static_cast<bool>(cb));
  GOCAST_ASSERT(next_seq_ < kMaxSeq);

  const std::uint32_t slot = acquire_slot();
  const std::uint64_t tag = (next_seq_++ << kSlotBits) | slot;
  SlotMeta& m = meta_ref(slot);
  m.live_tag = tag;
  callback_ref(slot) = std::move(cb);

  heap_push(make_entry(time_key(t), tag));
  ++live_events_;
  return EventId{slot, m.generation};
}

EventId Engine::schedule_at_ordered(SimTime t, std::uint64_t order_key,
                                    Callback cb) {
  GOCAST_ASSERT_MSG(t >= now_, "scheduling into the past: t=" << t
                                                              << " now=" << now_);
  GOCAST_ASSERT(static_cast<bool>(cb));
  GOCAST_ASSERT_MSG(order_key < kMaxSeq, "order key " << order_key
                                                      << " overflows seq bits");

  const std::uint32_t slot = acquire_slot();
  const std::uint64_t tag = (order_key << kSlotBits) | slot;
  SlotMeta& m = meta_ref(slot);
  m.live_tag = tag;
  callback_ref(slot) = std::move(cb);

  heap_push(make_entry(time_key(t), tag));
  ++live_events_;
  return EventId{slot, m.generation};
}

void Engine::schedule_batch(std::span<BatchEvent> batch) {
  if (batch.empty()) return;
  const std::size_t old_size = heap_.size();
  heap_.reserve(old_size + batch.size());
  for (BatchEvent& ev : batch) {
    GOCAST_ASSERT_MSG(ev.at >= now_, "scheduling into the past: t="
                                         << ev.at << " now=" << now_);
    GOCAST_ASSERT(static_cast<bool>(ev.cb));
    GOCAST_ASSERT(next_seq_ < kMaxSeq);
    const std::uint32_t slot = acquire_slot();
    const std::uint64_t tag = (next_seq_++ << kSlotBits) | slot;
    meta_ref(slot).live_tag = tag;
    callback_ref(slot) = std::move(ev.cb);
    heap_.push_back(make_entry(time_key(ev.at), tag));
  }
  live_events_ += batch.size();

  const std::size_t n = heap_.size();
  if (batch.size() >= old_size - kRootPos) {
    // The batch dominates the existing entries: one Floyd heapify over the
    // whole array is O(n) versus O(k log n) for per-entry sifts. Each sift is
    // bounded at its own start position — ancestors are not heapified yet
    // (same discipline as compact_heap).
    if (n > kRootPos + 1) {
      for (std::size_t i = std::min((n - 1 + 8) / 4, n - 1); i >= kRootPos;
           --i) {
        sift_down(i, i);
      }
    }
  } else {
    for (std::size_t pos = old_size; pos < n; ++pos) sift_up(pos);
  }
}

bool Engine::cancel(EventId id) {
  if (id.slot >= slot_count_) return false;
  SlotMeta& m = meta_ref(id.slot);
  if (m.live_tag == kDeadTag || m.generation != id.generation) return false;
  m.live_tag = kDeadTag;
  ++m.generation;
  callback_ref(id.slot).reset();
  m.next_free = free_head_;
  free_head_ = id.slot;
  GOCAST_ASSERT(live_events_ > 0);
  --live_events_;
  // The heap entry is now stale; it is skipped lazily when it surfaces, and
  // compacted away wholesale when stale entries dominate the heap.
  ++dead_in_heap_;
  if (dead_in_heap_ > live_events_ && heap_.size() >= 64) compact_heap();
  return true;
}

void Engine::compact_heap() {
  auto dead = [this](HeapEntry e) { return !entry_live(e); };
  heap_.erase(std::remove_if(heap_.begin() + kRootPos, heap_.end(), dead),
              heap_.end());
  const std::size_t n = heap_.size();
  if (n > kRootPos + 1) {
    // Floyd heapify: sift interior nodes bottom-up (last parent first). Each
    // sift is bounded at its own start position `i` — the subtree root —
    // because nodes above i are not heapified yet.
    for (std::size_t i = std::min((n - 1 + 8) / 4, n - 1); i >= kRootPos; --i) {
      sift_down(i, i);
    }
  }
  dead_in_heap_ = 0;
#ifndef NDEBUG
  // Every live event has exactly one heap entry: after dropping the dead
  // ones the heap and the live-event count must agree with pending().
  GOCAST_ASSERT(heap_.size() - kRootPos == live_events_);
  GOCAST_ASSERT(pending() == live_events_);
  // Full heap invariant: no entry sorts below its parent. Fires immediately
  // on a heapify bug instead of surfacing later as an out-of-order event.
  for (std::size_t c = kRootPos + 1; c < heap_.size(); ++c) {
    GOCAST_ASSERT(!(heap_[c] < heap_[(c + 8) / 4]));
  }
#endif
}

bool Engine::prune_dead_top() {
  while (!heap_empty()) {
    if (entry_live(heap_top())) return true;
    heap_pop();
    GOCAST_ASSERT(dead_in_heap_ > 0);
    --dead_in_heap_;
  }
  return false;
}

void Engine::fire_top() {
  const HeapEntry entry = heap_top();
  heap_pop();
  // The next top's meta line will be needed by the upcoming liveness check
  // and its callback line by the likely following fire_top; issuing both
  // prefetches here lets the fills overlap with this event's callback.
  if (!heap_empty()) {
    const std::uint32_t next = tag_slot(entry_tag(heap_top()));
    __builtin_prefetch(&meta_ref(next));
    __builtin_prefetch(&callback_ref(next));
  }

  const SimTime t = key_time(entry_key(entry));
  GOCAST_ASSERT(t >= now_);
  now_ = t;

  const std::uint32_t slot = tag_slot(entry_tag(entry));
  SlotMeta& m = meta_ref(slot);
  // Mark the event dead before invoking (so a re-entrant cancel of this id
  // is a no-op) but keep the slot OFF the free list until the callback
  // returns: slots never move when the table grows, so invoking in place is
  // safe as long as a re-entrant schedule_at cannot recycle this slot and
  // overwrite the executing callback.
  m.live_tag = kDeadTag;
  ++m.generation;
  --live_events_;
  ++processed_;

  Callback& cb = callback_ref(slot);
  cb();
  cb.reset();
  m.next_free = free_head_;
  free_head_ = slot;
}

bool Engine::step() {
  if (!prune_dead_top()) return false;
  fire_top();
  return true;
}

std::size_t Engine::run_until(SimTime t) {
  GOCAST_ASSERT(t >= now_);
  // Batch fast path: one top-of-heap probe per event (step()-based looping
  // would prune and inspect the top twice per event).
  const std::uint64_t key_limit = time_key(t);
  std::size_t n = 0;
  while (prune_dead_top() && entry_key(heap_top()) <= key_limit) {
    fire_top();
    ++n;
  }
  now_ = t;
  return n;
}

std::size_t Engine::run_before(SimTime t) {
  GOCAST_ASSERT(t >= now_);
  const std::uint64_t key_limit = time_key(t);
  std::size_t n = 0;
  while (prune_dead_top() && entry_key(heap_top()) < key_limit) {
    fire_top();
    ++n;
  }
  now_ = t;
  return n;
}

std::size_t Engine::run() {
  std::size_t n = 0;
  while (prune_dead_top()) {
    fire_top();
    ++n;
  }
  return n;
}

SimTime Engine::next_event_time() const {
  // Pruning dead top entries is observationally const; doing it here keeps
  // the query O(1) amortized instead of scanning past stale entries.
  auto* self = const_cast<Engine*>(this);
  if (!self->prune_dead_top()) return kNever;
  return key_time(entry_key(heap_top()));
}

}  // namespace gocast::sim

#include "sim/engine.h"

#include <utility>

namespace gocast::sim {

EventId Engine::schedule_at(SimTime t, Callback cb) {
  GOCAST_ASSERT_MSG(t >= now_, "scheduling into the past: t=" << t
                                                              << " now=" << now_);
  GOCAST_ASSERT(cb != nullptr);

  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.callback = std::move(cb);
  s.active = true;

  EventId id{slot, s.generation};
  heap_.push(HeapEntry{t, next_seq_++, id});
  ++live_events_;
  return id;
}

bool Engine::cancel(EventId id) {
  if (id.slot >= slots_.size()) return false;
  Slot& s = slots_[id.slot];
  if (!s.active || s.generation != id.generation) return false;
  s.active = false;
  ++s.generation;
  s.callback = nullptr;
  free_slots_.push_back(id.slot);
  GOCAST_ASSERT(live_events_ > 0);
  --live_events_;
  return true;
}

bool Engine::pop_live(HeapEntry& out) {
  while (!heap_.empty()) {
    HeapEntry top = heap_.top();
    Slot& s = slots_[top.id.slot];
    if (s.active && s.generation == top.id.generation) {
      out = top;
      return true;
    }
    heap_.pop();  // stale entry for a canceled event
  }
  return false;
}

bool Engine::step() {
  HeapEntry entry{};
  if (!pop_live(entry)) return false;
  heap_.pop();

  GOCAST_ASSERT(entry.time >= now_);
  now_ = entry.time;

  Slot& s = slots_[entry.id.slot];
  Callback cb = std::move(s.callback);
  s.active = false;
  ++s.generation;
  s.callback = nullptr;
  free_slots_.push_back(entry.id.slot);
  --live_events_;
  ++processed_;

  cb();
  return true;
}

std::size_t Engine::run_until(SimTime t) {
  GOCAST_ASSERT(t >= now_);
  std::size_t n = 0;
  HeapEntry entry{};
  while (pop_live(entry) && entry.time <= t) {
    step();
    ++n;
  }
  now_ = t;
  return n;
}

std::size_t Engine::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

SimTime Engine::next_event_time() const {
  // const_cast-free peek: scan the heap top through a copy of the lazy-skip
  // logic. The heap only mutates in pop_live/step, so we replicate the check.
  auto* self = const_cast<Engine*>(this);
  HeapEntry entry{};
  if (!self->pop_live(entry)) return kNever;
  return entry.time;
}

}  // namespace gocast::sim

// Discrete-event simulation engine.
//
// Deterministic: events with equal timestamps fire in scheduling order, so a
// run is a pure function of the seed that fed its callbacks. Cancelation is
// O(1) via generation-checked slots (canceled entries are skipped lazily when
// popped).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace gocast::sim {

/// Handle to a scheduled event; valid until the event fires or is canceled.
struct EventId {
  std::uint32_t slot = 0;
  std::uint32_t generation = 0;

  friend bool operator==(const EventId&, const EventId&) = default;
};

/// Sentinel handle that never names a live event.
inline constexpr EventId kInvalidEvent{0xFFFFFFFFu, 0xFFFFFFFFu};

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time in seconds.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` after `delay` seconds (must be >= 0).
  EventId schedule_after(SimTime delay, Callback cb) {
    GOCAST_ASSERT_MSG(delay >= 0.0, "negative delay " << delay);
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event. Returns false if it already fired or was
  /// canceled (safe to call either way).
  bool cancel(EventId id);

  /// Runs the earliest pending event. Returns false when the queue is empty.
  bool step();

  /// Runs all events with timestamp <= t, then advances now() to t.
  /// Returns the number of events processed.
  std::size_t run_until(SimTime t);

  /// Runs until the queue drains. Returns the number of events processed.
  std::size_t run();

  /// Timestamp of the earliest pending event, or kNever when empty.
  [[nodiscard]] SimTime next_event_time() const;

  [[nodiscard]] std::size_t pending() const { return live_events_; }
  [[nodiscard]] std::size_t processed() const { return processed_; }

 private:
  struct Slot {
    Callback callback;
    std::uint32_t generation = 0;
    bool active = false;
  };

  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;  // breaks ties: FIFO among same-time events
    EventId id;

    bool operator>(const HeapEntry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  /// Pops heap entries until one names a live event; loads it into
  /// `out`. Returns false when no live event remains.
  bool pop_live(HeapEntry& out);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_events_ = 0;
  std::size_t processed_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace gocast::sim

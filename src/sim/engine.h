// Discrete-event simulation engine.
//
// Deterministic: events with equal timestamps fire in scheduling order, so a
// run is a pure function of the seed that fed its callbacks. Cancelation is
// O(1) via generation-checked slots (canceled entries are skipped lazily when
// popped, and the heap compacts itself when more than half its entries are
// dead so cancel-heavy workloads don't accumulate garbage).
//
// Hot-path notes (see DESIGN.md "Performance notes"):
//  - Callbacks are sim::InlineCallback: no heap allocation for captures up to
//    InlineCallback::kInlineCapacity bytes.
//  - Heap entries are one 128-bit integer each: the timestamp as an
//    order-preserving u64 bit pattern (IEEE-754 non-negative doubles compare
//    like unsigned integers) in the high qword, and a tag packing the FIFO
//    sequence number over the slot index in the low qword. Ordering by the
//    single integer compare is exactly (time, seq) order.
//  - The heap is a hand-rolled 4-ary min-heap with a bottom-up sift and a
//    branchless min-of-4 child scan: half the levels of a binary heap, no
//    data-dependent branches, and — thanks to 64-byte-aligned storage with
//    the root at physical index 3 — every sibling group exactly one cache
//    line, so each sift level costs a single line fill.
//  - Slot state is split structure-of-arrays style within each chunk: the
//    16-byte liveness records (tag/generation/free-link) the heap walk reads
//    are packed four per cache line in a region of their own, while the
//    48-byte callbacks — cold until the moment an event fires — live in a
//    separate region of the same chunk. Liveness checks and heap compaction
//    touch 4x fewer lines than the old one-slot-per-line layout. Chunks
//    never relocate, so growth never copies callbacks or faults in a fresh
//    multi-megabyte allocation. Free slots form an intrusive list threaded
//    through the meta records (no side array to grow).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/assert.h"
#include "common/types.h"
#include "sim/inline_callback.h"

namespace gocast::sim {

/// Handle to a scheduled event; valid until the event fires or is canceled.
struct EventId {
  std::uint32_t slot = 0;
  std::uint32_t generation = 0;

  friend bool operator==(const EventId&, const EventId&) = default;
};

/// Sentinel handle that never names a live event.
inline constexpr EventId kInvalidEvent{0xFFFFFFFFu, 0xFFFFFFFFu};

class Engine {
 public:
  using Callback = InlineCallback;

  // Scheduler concept (see sim/timer.h and runtime/context.h): any type with
  // TimerId/invalid_timer()/now()/schedule_after()/cancel() can drive a
  // BasicPeriodicTimer. The engine is the canonical implementation.
  using TimerId = EventId;
  [[nodiscard]] static constexpr EventId invalid_timer() {
    return kInvalidEvent;
  }

  Engine() { heap_.assign(kRootPos, HeapEntry{0}); }
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time in seconds.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` after `delay` seconds (must be >= 0).
  EventId schedule_after(SimTime delay, Callback cb) {
    GOCAST_ASSERT_MSG(delay >= 0.0, "negative delay " << delay);
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Schedules `cb` at absolute time `t` with an explicit ordering key
  /// instead of the engine-local admission sequence. Events pop in
  /// (time, order_key) order regardless of admission order, so callers that
  /// derive keys from run-invariant state (e.g. a per-origin counter in a
  /// sharded run — see sim/sharded_engine.h) get a pop order that does not
  /// depend on how admissions interleave. Mixing ordered and plain
  /// admissions in one engine interleaves their key spaces; a deployment
  /// should pick one discipline. Ordered events are fire-and-forget in
  /// spirit but still return a cancelable handle.
  EventId schedule_at_ordered(SimTime t, std::uint64_t order_key, Callback cb);

  /// One event of a schedule_batch admission.
  struct BatchEvent {
    SimTime at = 0.0;
    Callback cb;
  };

  /// Admits every event in `batch` (each at >= now()) in index order with the
  /// same seq tie-break discipline as the equivalent sequence of schedule_at
  /// calls — pop order is a function of the packed (time, seq) keys only, so
  /// a batched admission is byte-identical to the serial one. The entries are
  /// appended to the heap storage in one pass (filling whole sibling groups —
  /// each group is one cache line) and the invariant is restored either by
  /// sifting the new tail entries up, or, when the batch rivals the existing
  /// heap, by one bounded Floyd heapify over the whole array. Batch events
  /// are fire-and-forget: use schedule_at when a cancelable handle is needed.
  /// Callbacks are moved out of `batch`.
  void schedule_batch(std::span<BatchEvent> batch);

  /// Cancels a pending event. Returns false if it already fired or was
  /// canceled (safe to call either way).
  bool cancel(EventId id);

  /// Runs the earliest pending event. Returns false when the queue is empty.
  bool step();

  /// Runs all events with timestamp <= t, then advances now() to t.
  /// Returns the number of events processed.
  std::size_t run_until(SimTime t);

  /// Runs all events with timestamp strictly < t, then advances now() to t.
  /// The conservative-PDES window primitive (sim/sharded_engine.h): events at
  /// exactly the window edge are left for the next window so barrier-time
  /// admissions order ahead of them. Returns the number of events processed.
  std::size_t run_before(SimTime t);

  /// Runs until the queue drains. Returns the number of events processed.
  std::size_t run();

  /// Timestamp of the earliest pending event, or kNever when empty.
  [[nodiscard]] SimTime next_event_time() const;

  [[nodiscard]] std::size_t pending() const { return live_events_; }
  [[nodiscard]] std::size_t processed() const { return processed_; }

  /// Heap-owned bytes: the priority-queue array plus every slot chunk.
  /// (Memory accounting for --mem-report; approximate by design.)
  [[nodiscard]] std::size_t memory_bytes() const {
    return heap_.capacity() * sizeof(HeapEntry) +
           chunks_.size() * kChunkBytes + chunks_.capacity() * sizeof(ChunkPtr);
  }

 private:
  static constexpr std::uint64_t kDeadTag = ~std::uint64_t{0};
  static constexpr unsigned kSlotBits = 24;  // up to 16.7M concurrent events
  static constexpr std::uint64_t kMaxSeq = std::uint64_t{1}
                                           << (64 - kSlotBits);
  static constexpr std::uint32_t kNoFreeSlot = 0xFFFFFFFFu;
  /// Slots per chunk: 32768 * (16 B meta + 48 B callback) = 2 MiB, allocated
  /// 2 MiB-aligned and (on Linux) advised MADV_HUGEPAGE. A large run walks
  /// its slot table in a cache-unfriendly stride, so with 4 KiB pages the
  /// table thrashes the dTLB; one huge page per chunk makes slot lookups
  /// TLB-free. Chunks hold raw storage — slots are placement-constructed on
  /// first acquire — so a small engine touches only the pages it uses.
  static constexpr std::uint32_t kChunkShift = 15;
  static constexpr std::uint32_t kChunkSlots = 1u << kChunkShift;

  /// Liveness bookkeeping for one slot — everything the heap walk ever
  /// reads. 16 bytes packs four records per cache line; the cold Callback
  /// lives in the chunk's separate callback region (see the layout note on
  /// kChunkBytes) so liveness probes don't drag capture bytes through cache.
  struct SlotMeta {
    std::uint64_t live_tag = kDeadTag;  // tag of the pending event, else dead
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoFreeSlot;  // intrusive free-list link
  };
  static_assert(sizeof(SlotMeta) == 16);
  static_assert(sizeof(Callback) == 48);

  /// Chunk layout: [SlotMeta x kChunkSlots | Callback x kChunkSlots]. The
  /// meta region is 512 KiB (so its tail stays 64-byte aligned for the
  /// callback region) and the whole chunk is exactly one 2 MiB huge page.
  static constexpr std::size_t kMetaRegionBytes =
      std::size_t{kChunkSlots} * sizeof(SlotMeta);
  static constexpr std::size_t kChunkBytes =
      kMetaRegionBytes + std::size_t{kChunkSlots} * sizeof(Callback);

  /// Frees a chunk's raw storage. Slot destruction is the engine's job (only
  /// slots below slot_count_ were ever constructed; see ~Engine).
  struct ChunkFree {
    void operator()(std::byte* p) const noexcept {
      ::operator delete(static_cast<void*>(p), std::align_val_t{kChunkBytes});
    }
  };
  using ChunkPtr = std::unique_ptr<std::byte[], ChunkFree>;

  /// One heap entry packed into a single 128-bit integer: timestamp bits in
  /// the high qword, tag (seq << kSlotBits | slot) in the low qword. Packing
  /// makes the (time, seq) comparison one integer compare — cmp/sbb, no
  /// branches — which keeps the min-child scans in the 4-ary heap branchless.
  using HeapEntry = unsigned __int128;

  /// Allocator keeping the heap array on cache-line boundaries so the
  /// root-offset trick below can align sibling groups.
  template <class T>
  struct CacheAligned {
    using value_type = T;
    CacheAligned() = default;
    template <class U>
    CacheAligned(const CacheAligned<U>&) {}  // NOLINT(google-explicit-constructor)
    T* allocate(std::size_t n) {
      return static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t{64}));
    }
    void deallocate(T* p, std::size_t n) {
      ::operator delete(p, n * sizeof(T), std::align_val_t{64});
    }
    friend bool operator==(CacheAligned, CacheAligned) { return true; }
  };

  /// The root lives at physical index kRootPos and children of physical p
  /// are 4p-8 .. 4p-5; with 16-byte entries and 64-byte-aligned storage,
  /// every sibling group then starts on a multiple of four entries — one
  /// cache line. Indices 0..2 are never-read padding.
  static constexpr std::size_t kRootPos = 3;

  static HeapEntry make_entry(std::uint64_t key, std::uint64_t tag) {
    return (static_cast<HeapEntry>(key) << 64) | tag;
  }
  static std::uint64_t entry_key(HeapEntry e) {
    return static_cast<std::uint64_t>(e >> 64);
  }
  static std::uint64_t entry_tag(HeapEntry e) {
    return static_cast<std::uint64_t>(e);
  }

  /// Non-negative finite doubles compare identically to their bit patterns
  /// taken as unsigned integers; -0.0 is normalized so it doesn't read as a
  /// huge key. Times are always >= now() >= 0 here.
  static std::uint64_t time_key(SimTime t) {
    return std::bit_cast<std::uint64_t>(t == 0.0 ? 0.0 : t);
  }
  static SimTime key_time(std::uint64_t key) {
    return std::bit_cast<SimTime>(key);
  }

  static std::uint32_t tag_slot(std::uint64_t tag) {
    return static_cast<std::uint32_t>(tag & ((std::uint64_t{1} << kSlotBits) - 1));
  }

  [[nodiscard]] SlotMeta& meta_ref(std::uint32_t s) {
    return reinterpret_cast<SlotMeta*>(
        chunks_[s >> kChunkShift].get())[s & (kChunkSlots - 1)];
  }
  [[nodiscard]] const SlotMeta& meta_ref(std::uint32_t s) const {
    return reinterpret_cast<const SlotMeta*>(
        chunks_[s >> kChunkShift].get())[s & (kChunkSlots - 1)];
  }
  [[nodiscard]] Callback& callback_ref(std::uint32_t s) {
    return reinterpret_cast<Callback*>(chunks_[s >> kChunkShift].get() +
                                       kMetaRegionBytes)[s & (kChunkSlots - 1)];
  }

  [[nodiscard]] bool entry_live(HeapEntry e) const {
    return meta_ref(tag_slot(entry_tag(e))).live_tag == entry_tag(e);
  }

  /// Pops a slot off the free list, adding a chunk when none is free.
  std::uint32_t acquire_slot();

  [[nodiscard]] bool heap_empty() const { return heap_.size() == kRootPos; }
  [[nodiscard]] HeapEntry heap_top() const { return heap_[kRootPos]; }

  // 4-ary min-heap primitives over physical indices (see kRootPos).
  // sift_down restores the heap below `pos` assuming only h[pos] may violate
  // the invariant; `top` bounds the bubble-up phase so a sift rooted at an
  // interior node (Floyd heapify in compact_heap) never hoists the element
  // above its own subtree.
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos, std::size_t top);
  void heap_push(HeapEntry e);
  void heap_pop();

  /// Pops dead entries off the heap top until a live one (or nothing) is
  /// left. Returns false when no live event remains.
  bool prune_dead_top();

  /// Pops the (live) top entry, advances now(), and runs its callback.
  void fire_top();

  /// Rebuilds the heap without its dead entries. Called when dead entries
  /// outnumber live ones (heap hygiene for cancel-heavy workloads).
  void compact_heap();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t live_events_ = 0;
  std::size_t dead_in_heap_ = 0;
  std::size_t processed_ = 0;
  std::vector<HeapEntry, CacheAligned<HeapEntry>> heap_;
  std::vector<ChunkPtr> chunks_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNoFreeSlot;
};

}  // namespace gocast::sim

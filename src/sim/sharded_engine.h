// Sharded conservative parallel discrete-event simulation (DESIGN.md §11).
//
// K private Engines execute side by side in lookahead windows: whenever the
// globally earliest pending event is at t_next, every shard may safely run all
// events with timestamp < t_next + lookahead, because any event a shard
// executes in that window can only schedule onto ANOTHER shard at
// >= t_next + lookahead (the lookahead is the minimum cross-shard transit
// latency, guaranteed by the caller). Cross-shard admissions travel through
// per-(src,dst) mailboxes that are drained into the destination engines at the
// window barrier, on the coordinating thread, before the next window begins.
//
// Determinism (the headline contract): mailbox entries carry an explicit
// ordering key supplied by the caller, and land in the destination heap via
// Engine::schedule_at_ordered, so the destination's pop order is a pure
// function of the (time, key) pairs — independent of which window an entry
// arrived in, of worker scheduling, and of K itself. Callers derive keys from
// run-invariant state (per-origin counters; see net::Network::next_order_key)
// so the same seed produces byte-identical event interleavings at any shard
// count.
//
// Controls: simulation-global actions (fault injection, multicast injection,
// probes) run single-threaded at exact global times via schedule_control —
// the window loop advances every shard to the control time (run_before, so
// same-time shard events stay pending), fires the controls in admission
// order, and resumes. This reproduces the serial engine's discipline where a
// control admitted before same-time deliveries pops first.
//
// Threading: a persistent pool of K-1 workers plus the calling thread (which
// runs shard 0). All shared state hands over at the barrier mutex, so the
// structure is TSan-clean by construction; `serial` runs every window on the
// calling thread for debugging, with identical results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/assert.h"
#include "common/types.h"
#include "sim/engine.h"
#include "sim/inline_callback.h"

namespace gocast::sim {

class ShardedEngine {
 public:
  struct Config {
    std::size_t shards = 2;
    /// Minimum cross-shard transit latency (seconds). Every cross-shard
    /// mailbox post must satisfy at >= send_time + lookahead; the window
    /// width is derived from it. Must be > 0 — degenerate topologies are the
    /// caller's job to detect and fall back on (core::System does).
    SimTime lookahead = 0.001;
    /// Run windows on the calling thread (no worker pool). Identical
    /// results by construction; used by tests to pin threaded == serial.
    bool serial = false;
  };

  explicit ShardedEngine(Config config);
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return engines_.size(); }
  [[nodiscard]] SimTime lookahead() const { return lookahead_; }
  [[nodiscard]] Engine& shard(std::size_t k) { return *engines_[k]; }
  [[nodiscard]] const Engine& shard(std::size_t k) const {
    return *engines_[k];
  }

  /// Global simulated time: the lower edge of the current window. Individual
  /// shard clocks run ahead of this inside a window (never past now() +
  /// lookahead) and all agree with now() at barriers.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules a single-threaded control action at absolute global time `t`
  /// (>= now()). Controls at equal times fire in admission order, before any
  /// shard event with the same timestamp. Barrier context only (never from
  /// inside a shard's event callback).
  void schedule_control(SimTime t, InlineCallback cb);

  /// Posts a cross-shard event: `cb` runs on shard `dst` at time `at` with
  /// ordering key `key` (see Engine::schedule_at_ordered). Safe to call from
  /// shard `src`'s worker during a window, or from barrier context with any
  /// src. `at` must be >= the posting shard's current time + lookahead when
  /// posted from inside a window (the conservative contract; asserted
  /// indirectly by the destination's schedule-into-the-past check).
  void post(std::size_t src, std::size_t dst, SimTime at, std::uint64_t key,
            InlineCallback cb);

  /// Runs every shard up to global time `t` window by window, firing controls
  /// at their exact times. On return all shard clocks and now() equal `t`.
  void run_until(SimTime t);

  /// Sum of events processed across shards.
  [[nodiscard]] std::size_t processed() const;
  /// Sum of pending events across shards plus undrained mailbox entries and
  /// pending controls.
  [[nodiscard]] std::size_t pending() const;
  /// Synchronization windows executed so far (barrier count; perf telemetry).
  [[nodiscard]] std::uint64_t windows() const { return windows_; }

  /// Heap-owned bytes across shard engines and mailboxes (--mem-report).
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  struct Mail {
    SimTime at = 0.0;
    std::uint64_t key = 0;
    InlineCallback cb;
  };
  struct Control {
    SimTime at = 0.0;
    std::uint64_t seq = 0;
    InlineCallback cb;
  };

  /// Moves every outbox entry into its destination engine (barrier context).
  void drain_mail();
  /// Earliest pending event time across shards (after draining mail).
  [[nodiscard]] SimTime min_next_event() const;
  /// Runs every shard to `t` — run_before (exclusive) or run_until
  /// (inclusive) — on the pool, or inline when serial.
  void parallel_run(SimTime t, bool inclusive);
  void run_shard(std::size_t k, SimTime t, bool inclusive);
  void worker_loop(std::size_t k);

  SimTime now_ = 0.0;
  SimTime lookahead_;
  bool serial_;
  std::uint64_t windows_ = 0;
  std::uint64_t control_seq_ = 0;
  std::vector<std::unique_ptr<Engine>> engines_;
  /// outbox_[src][dst]: filled by shard src's thread during a window, drained
  /// by the coordinating thread at the barrier. The barrier mutex orders the
  /// hand-off, so no per-entry synchronization is needed.
  std::vector<std::vector<std::vector<Mail>>> outbox_;
  /// Min-heap on (at, seq); std::push_heap/pop_heap over a vector because
  /// InlineCallback is move-only and priority_queue::top() is const.
  std::vector<Control> controls_;

  // -- worker pool (unused when serial_ or shards == 1) --
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t job_gen_ = 0;
  SimTime job_time_ = 0.0;
  bool job_inclusive_ = false;
  bool shutdown_ = false;
  std::size_t done_count_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace gocast::sim

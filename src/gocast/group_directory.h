// Deterministic multi-group topology: which nodes subscribe to which groups.
//
// Group 0 is the universal group — every node is implicitly a member, and a
// single-group deployment is exactly "group 0 only". Extra groups (1..G-1)
// get Zipf-distributed sizes (group 1 the largest) and optionally correlated
// membership (a fraction of each group's members is drawn from the previous
// group, modeling interest clustering). Everything derives from one seed via
// the fork() discipline, so every process/harness that shares the seed
// computes the identical directory — tools/gocastd relies on this to agree
// on subscriptions without any coordination.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace gocast::core {

/// Declarative multi-group workload shape. Parses from / serializes to a
/// compact `key=value;...` spec (the `--faults`-grammar idiom), e.g.
///   "groups=8;zipf=0.9;pop=0.6;min=8;base=0.5;corr=0.25;churn=1.0"
struct GroupTopology {
  /// Total number of groups including the universal group 0.
  std::size_t group_count = 1;
  /// Zipf exponent for extra-group sizes (group g has rank g).
  double size_exponent = 0.9;
  /// Zipf exponent for traffic popularity across groups (rank = GroupId).
  double popularity_exponent = 0.6;
  /// Floor on extra-group membership.
  std::size_t min_group_size = 8;
  /// Size of group 1 (the largest extra group) as a fraction of all nodes.
  double base_fraction = 0.5;
  /// Fraction of each extra group's members drawn from the previous group.
  double correlation = 0.0;
  /// Group join/leave events per simulated second (harness-driven churn,
  /// independent of node churn).
  double churn_rate = 0.0;

  [[nodiscard]] static GroupTopology parse(const std::string& spec);
  [[nodiscard]] std::string to_spec() const;

  friend bool operator==(const GroupTopology&, const GroupTopology&) = default;
};

/// The materialized subscription table for a node universe [0, node_count).
/// Construction is pure: (topology, node_count, seed) -> identical directory
/// on every platform. Mutations (subscribe/unsubscribe) support group-churn
/// scenarios; callers own keeping live nodes in sync.
class GroupDirectory {
 public:
  GroupDirectory(const GroupTopology& topology, std::size_t node_count,
                 std::uint64_t seed);

  [[nodiscard]] std::size_t group_count() const { return members_.size(); }
  [[nodiscard]] std::size_t node_count() const { return extra_groups_.size(); }

  /// Sorted member list of group `g` (g >= 1; group 0 is implicit/universal).
  [[nodiscard]] const std::vector<NodeId>& members(GroupId g) const;

  /// Extra groups (>= 1) node `id` subscribes to, ascending. Group 0 is
  /// implicit and never listed.
  [[nodiscard]] const std::vector<GroupId>& groups_of(NodeId id) const;

  /// True when `id` subscribes to `g` (always true for group 0).
  [[nodiscard]] bool subscribed(NodeId id, GroupId g) const;

  /// Adds/removes a subscription (no-ops on group 0 and on redundant calls).
  void subscribe(NodeId id, GroupId g);
  void unsubscribe(NodeId id, GroupId g);

  [[nodiscard]] const GroupTopology& topology() const { return topology_; }

  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  GroupTopology topology_;
  /// members_[g] sorted ascending; members_[0] stays empty (universal).
  std::vector<std::vector<NodeId>> members_;
  /// extra_groups_[id] sorted ascending, group 0 omitted.
  std::vector<std::vector<GroupId>> extra_groups_;
};

}  // namespace gocast::core

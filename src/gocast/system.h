// Facade that assembles a complete simulated GoCast deployment: engine,
// latency model, network, and nodes, with the initialization procedure the
// paper's experiments use (seeded partial views, C_degree/2 random bootstrap
// links per node, one designated root).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "gocast/group_directory.h"
#include "gocast/node.h"
#include "membership/landmark_store.h"
#include "net/latency_model.h"
#include "net/network.h"
#include "sim/engine.h"
#include "sim/sharded_engine.h"

namespace gocast::core {

struct SystemConfig {
  std::size_t node_count = 64;
  GoCastConfig node;  ///< per-node configuration (landmarks filled in by System)
  net::NetworkConfig net;
  /// Latency model; when null a synthetic King-like model is generated from
  /// the seed (see net::make_synthetic_king).
  std::shared_ptr<const net::LatencyModel> latency;
  std::uint64_t seed = 1;
  /// Initial random links each node initiates (the paper uses C_degree/2, so
  /// the initial average degree is C_degree).
  std::size_t bootstrap_links_per_node = 3;
  std::size_t landmark_count = 8;
  /// Members seeded into each node's partial view at start.
  std::size_t initial_view_size = 64;

  /// Capacity-aware degrees (the paper: "tuning node degree according to
  /// node capacity can be accommodated in our protocol"): per-node
  /// multiplier applied to the nearby-degree target. Null means uniform.
  std::function<double(NodeId)> capacity_of;

  /// The last `deferred_nodes` nodes are created but not started: they join
  /// later through spawn_next() (churn experiments). They count as dead
  /// until spawned.
  std::size_t deferred_nodes = 0;

  /// Sharded conservative-PDES execution (DESIGN.md §11): partition nodes
  /// (by site) across this many engines synchronized in lookahead windows.
  /// 1 — the default — is the classic serial engine, the exact historical
  /// code path. More shards require a latency model whose minimum
  /// cross-partition one-way latency clears pdes_lookahead_floor; otherwise
  /// the system warns and falls back to 1. Unsupported combinations
  /// (multi-group, trace sinks, site-pair recording) also fall back.
  std::size_t shard_count = 1;
  /// Smallest usable lookahead in seconds. Below it, windows would be so
  /// narrow that barrier overhead swamps any parallelism (degenerate
  /// topologies like RingLatencyModel with tiny arcs, or single-site maps).
  SimTime pdes_lookahead_floor = 0.0008;
  /// Debug/test knob: run shard windows on the calling thread instead of the
  /// worker pool. Results are identical by construction.
  bool pdes_serial = false;

  /// Multi-group topology (DESIGN.md §10). group_count == 1 (the default)
  /// keeps the deployment single-group and byte-identical to the
  /// pre-multigroup simulator: no directory is built and no multi-group code
  /// path runs. With more groups, System derives a GroupDirectory from the
  /// seed, subscribes members, bootstraps each group's subgraph, and
  /// designates per-group roots.
  GroupTopology groups;
};

class System {
 public:
  explicit System(SystemConfig config);

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Seeds views, installs bootstrap links, designates the root, and starts
  /// every node with a small random stagger.
  void start();

  /// The serial engine. Sharded systems never run events through it — use
  /// schedule_control / run_until on the System, which dispatch correctly in
  /// both modes.
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] const net::Network& network() const { return *network_; }
  [[nodiscard]] GoCastNode& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] const GoCastNode& node(NodeId id) const { return *nodes_.at(id); }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const SystemConfig& config() const { return config_; }
  [[nodiscard]] SimTime now() const {
    return sharded_ != nullptr ? sharded_->now() : engine_.now();
  }
  [[nodiscard]] Rng& rng() { return rng_; }

  void run_for(SimTime duration) { run_until(now() + duration); }
  void run_until(SimTime t) {
    if (sharded_ != nullptr) {
      sharded_->run_until(t);
      network_->fold_shard_traffic();
      return;
    }
    engine_.run_until(t);
  }

  // -- sharded PDES (DESIGN.md §11) --

  /// Effective shard count: what the run actually uses after fallbacks
  /// (1 when unsharded).
  [[nodiscard]] std::size_t shard_count() const {
    return sharded_ != nullptr ? sharded_->shard_count() : 1;
  }
  [[nodiscard]] bool sharded() const { return sharded_ != nullptr; }
  /// The conservative lookahead in use (0 when unsharded).
  [[nodiscard]] SimTime pdes_lookahead() const {
    return sharded_ != nullptr ? sharded_->lookahead() : 0.0;
  }
  [[nodiscard]] sim::ShardedEngine* sharded_engine() { return sharded_.get(); }

  /// Schedules a simulation-global action (fault events, probes, message
  /// injection) at absolute time `t`. Unsharded this is exactly
  /// engine().schedule_at; sharded it runs single-threaded at a window
  /// barrier at the exact time, before same-time shard events.
  void schedule_control(SimTime t, sim::InlineCallback cb) {
    if (sharded_ != nullptr) {
      sharded_->schedule_control(t, std::move(cb));
      return;
    }
    engine_.schedule_at(t, std::move(cb));
  }
  /// Batch variant with the serial engine's schedule_batch admission
  /// semantics (index order). Callbacks are moved out of `batch`.
  void schedule_control_batch(std::span<sim::Engine::BatchEvent> batch) {
    if (sharded_ != nullptr) {
      for (sim::Engine::BatchEvent& ev : batch) {
        sharded_->schedule_control(ev.at, std::move(ev.cb));
      }
      return;
    }
    engine_.schedule_batch(batch);
  }

  /// Events processed / pending across all engines (sharded or not).
  [[nodiscard]] std::size_t events_processed() const {
    return sharded_ != nullptr ? sharded_->processed() : engine_.processed();
  }
  [[nodiscard]] std::size_t events_pending() const {
    return sharded_ != nullptr ? sharded_->pending() : engine_.pending();
  }

  /// Kills a uniformly random `fraction` of the currently alive nodes.
  /// Returns the killed ids.
  std::vector<NodeId> fail_random_fraction(double fraction);

  /// Freezes overlay/tree maintenance on every alive node (Fig 3(b) mode).
  void freeze_all();

  /// A uniformly random alive node id.
  [[nodiscard]] NodeId random_alive_node();

  /// Brings a crashed node back online: clears its stale protocol links
  /// (every TCP connection died with the process), recovers it on the
  /// network, and rejoins it through a random alive bootstrap node. The
  /// fault subsystem's recover events use this. No-op for alive nodes.
  void revive_node(NodeId id);

  /// Installs the hook on every node.
  void set_delivery_hook(const DeliveryHook& hook);

  // -- multi-group (only meaningful when config.groups.group_count > 1) --

  /// The shared group directory; null for single-group deployments.
  [[nodiscard]] const std::shared_ptr<GroupDirectory>& directory() const {
    return directory_;
  }
  /// Subscribes `id` to extra group `g` at runtime (group churn): updates
  /// the directory and spins up the node's per-group state.
  void group_join(NodeId id, GroupId g);
  /// Unsubscribes `id` from `g`: directory update plus node-side deactivate.
  void group_leave(NodeId id, GroupId g);

  /// Ids of currently alive nodes.
  [[nodiscard]] std::vector<NodeId> alive_nodes() const;

  /// Brings the next deferred node online: it joins through a random alive
  /// bootstrap node and integrates via the normal maintenance protocols.
  /// Returns its id, or kInvalidNode when none remain.
  NodeId spawn_next();
  [[nodiscard]] std::size_t deferred_remaining() const {
    return config_.deferred_nodes - spawned_;
  }

  /// Per-subsystem byte breakdown across the whole deployment (--mem-report).
  /// Approximate: container capacities, not allocator-level truth. Node
  /// objects count the GoCastNode footprint itself (dominated by the four
  /// deterministic mt19937_64 streams each node owns).
  struct MemoryReport {
    std::size_t engine_bytes = 0;          ///< event heap + slot chunks
    std::size_t network_bytes = 0;         ///< node records + message pool
    std::size_t node_object_bytes = 0;     ///< sizeof(GoCastNode) * nodes
    std::size_t view_bytes = 0;            ///< membership views (all nodes)
    std::size_t landmark_store_bytes = 0;  ///< shared interning store
    std::size_t landmark_unique = 0;       ///< distinct vectors interned
    std::size_t dissemination_bytes = 0;   ///< digest store + trackers
    std::size_t overlay_bytes = 0;         ///< neighbor/pending tables
    std::size_t tree_bytes = 0;            ///< children + distance caches
    /// Multi-group runs: (group id, tree+dissemination bytes summed over all
    /// subscribers). Already included in the dissemination/tree fields —
    /// this is a breakdown, not an addition. Empty for single-group runs.
    std::vector<std::pair<GroupId, std::size_t>> group_bytes;
    [[nodiscard]] std::size_t total_bytes() const {
      return engine_bytes + network_bytes + node_object_bytes + view_bytes +
             landmark_store_bytes + dissemination_bytes + overlay_bytes +
             tree_bytes;
    }
  };
  [[nodiscard]] MemoryReport memory_report() const;

 private:
  /// Resolves the effective shard layout: fills shard_of_node (per node) and
  /// creates sharded_ unless a fallback applies (warned). Ctor helper.
  void init_sharding();

  SystemConfig config_;
  Rng rng_;
  sim::Engine engine_;
  std::shared_ptr<const net::LatencyModel> latency_;
  std::unique_ptr<net::Network> network_;
  /// Non-null iff the run is sharded (after fallbacks).
  std::unique_ptr<sim::ShardedEngine> sharded_;
  /// Sharded runs: one landmark-interning store per shard (the store's
  /// intern tables are single-threaded; entries cross shards by value on the
  /// wire, so stores never share handles). config_.node.landmark_store stays
  /// null in that mode.
  std::vector<std::shared_ptr<membership::LandmarkStore>> shard_stores_;
  std::vector<std::unique_ptr<GoCastNode>> nodes_;
  std::shared_ptr<GroupDirectory> directory_;
  bool started_ = false;
  std::size_t spawned_ = 0;
};

/// Builds (and caches per-process, keyed by seed/sites) the default synthetic
/// King-like latency model. Generation costs ~n² work; experiments reuse it.
[[nodiscard]] std::shared_ptr<const net::LatencyModel> default_latency_model(
    std::uint64_t seed, std::size_t sites = 1740);

}  // namespace gocast::core

#include "gocast/dissemination.h"

#include <algorithm>
#include <memory>

#include "common/assert.h"
#include "common/logging.h"
#include "runtime/realtime_runtime.h"

namespace gocast::core {

template <runtime::Context RT>
DisseminationT<RT>::DisseminationT(NodeId self, RT rt,
                                   membership::PartialView& view,
                                   overlay::OverlayManagerT<RT>& overlay,
                                   tree::TreeManagerT<RT>* tree,
                                   DisseminationParams params, Rng rng)
    : self_(self),
      rt_(rt),
      view_(view),
      overlay_(overlay),
      tree_(tree),
      params_(params),
      rng_(std::move(rng)),
      gossip_timer_(rt_, params.gossip_period, [this] { on_gossip_timer(); }),
      gc_timer_(rt_, params.gc_sweep_period, [this] { gc_sweep(); }) {
  GOCAST_ASSERT(params_.gossip_period > 0.0);
  GOCAST_ASSERT(params_.pull_delay_threshold >= 0.0);
  GOCAST_ASSERT(params_.gc_record_after >= params_.gc_payload_after);
  GOCAST_ASSERT(params_.gossip_period_max >= params_.gossip_period);
  GOCAST_ASSERT(params_.gossip_backoff >= 1.0);
  GOCAST_ASSERT(params_.pull_max_attempts >= 1);
  // Flat tables, sized once: the store holds messages for gc_record_after
  // seconds, pending_ one slot per overlay neighbor, pull_pending_ the ids
  // currently being recovered. Steady state should never rehash.
  store_.reserve(256);
  pending_.reserve(32);
  pull_pending_.reserve(64);
  piggyback_buf_.reserve(params_.piggyback_members + 1);
}

template <runtime::Context RT>
void DisseminationT<RT>::start(SimTime stagger) {
  gossip_timer_.start(stagger + params_.gossip_period);
  gc_timer_.start(stagger + params_.gc_sweep_period);
}

template <runtime::Context RT>
void DisseminationT<RT>::stop() {
  gossip_timer_.stop();
  gc_timer_.stop();
}

template <runtime::Context RT>
MsgId DisseminationT<RT>::multicast(std::size_t payload_bytes) {
  MsgId id{self_, next_seq_++};
  accept_message(id, rt_.now(), payload_bytes, kInvalidNode,
                 DeliveryPath::kLocal);
  return id;
}

// ---------------------------------------------------------------------------
// Core acceptance path
// ---------------------------------------------------------------------------

template <runtime::Context RT>
void DisseminationT<RT>::accept_message(MsgId id, SimTime inject_time,
                                        std::size_t payload_bytes,
                                        NodeId learned_from, DeliveryPath path) {
  auto [it, inserted] = store_.try_emplace(
      id, Stored{inject_time, rt_.now(), payload_bytes, true});
  GOCAST_ASSERT(inserted);
  ++deliveries_;
  pull_pending_.erase(id);

  if (params_.adaptive_gossip &&
      gossip_timer_.period() > params_.gossip_period && gossip_timer_.running()) {
    // Traffic resumed: gossip at full rate again, starting now.
    gossip_timer_.set_period(params_.gossip_period);
    gossip_timer_.start(params_.gossip_period);
  }

  if (delivery_hook_) {
    delivery_hook_(DeliveryEvent{self_, id, inject_time, rt_.now(), path});
  }

  // Push without stop along remaining tree links (also after a pull: a
  // message entering a tree fragment floods the whole fragment, §2.1).
  if (params_.use_tree && tree_ != nullptr) {
    forward_on_tree(id, it->second, learned_from);
  }

  // Queue the ID for gossiping to every overlay neighbor except the one we
  // heard the message from.
  for (NodeId peer : rotation_) {
    if (peer != learned_from) pending_slot(peer).push_back(id);
  }
}

template <runtime::Context RT>
std::vector<MsgId>& DisseminationT<RT>::pending_slot(NodeId peer) {
  auto [it, fresh] = pending_.try_emplace(peer);
  if (fresh && !spare_pending_.empty()) {
    // Recycle the capacity of a departed neighbor's vector.
    it->second = std::move(spare_pending_.back());
    spare_pending_.pop_back();
  }
  return it->second;
}

template <runtime::Context RT>
void DisseminationT<RT>::forward_on_tree(MsgId id, const Stored& stored,
                                         NodeId except) {
  auto msg = rt_.template make<DataMsg>(id, stored.inject_time,
                                        stored.payload_bytes, /*via_tree=*/true,
                                        overlay_.my_degrees());
  const std::vector<NodeId> peers = tree_->tree_neighbors();
  rt_.send_multi(self_, peers.data(), peers.size(), except, std::move(msg));
}

template <runtime::Context RT>
void DisseminationT<RT>::on_data(NodeId from, const DataMsg& msg) {
  if (store_.count(msg.id) > 0) {
    // Redundant arrival — the paper's §2.1 "2% overhead" path. Optimization
    // (1) of §2.1: a real deployment aborts the transfer mid-stream, so the
    // payload bytes are not actually carried; we track them as savings.
    ++duplicates_;
    aborted_bytes_ += msg.payload_bytes;
    rt_.report_aborted_transfer(from, self_, msg.payload_bytes);
    return;
  }
  accept_message(msg.id, msg.inject_time, msg.payload_bytes, from,
                 msg.via_tree ? DeliveryPath::kTree : DeliveryPath::kPull);
}

// ---------------------------------------------------------------------------
// Gossip
// ---------------------------------------------------------------------------

template <runtime::Context RT>
void DisseminationT<RT>::on_gossip_timer() {
  if (params_.adaptive_gossip) {
    // Back off while idle (no IDs waiting for any neighbor).
    bool idle = true;
    for (const auto& [peer, ids] : pending_) {
      if (!ids.empty()) {
        idle = false;
        break;
      }
    }
    if (idle) {
      gossip_timer_.set_period(std::min(
          gossip_timer_.period() * params_.gossip_backoff,
          params_.gossip_period_max));
    } else {
      gossip_timer_.set_period(params_.gossip_period);
    }
  }
  if (rotation_.empty()) return;
  if (rotation_idx_ >= rotation_.size()) rotation_idx_ = 0;
  NodeId target = rotation_[rotation_idx_];
  rotation_idx_ = (rotation_idx_ + 1) % rotation_.size();

  digest_buf_.clear();
  auto pending_it = pending_.find(target);
  if (pending_it != pending_.end() && !pending_it->second.empty()) {
    digest_buf_.reserve(pending_it->second.size());
    for (MsgId id : pending_it->second) {
      auto it = store_.find(id);
      if (it == store_.end() || !it->second.payload_present) continue;
      digest_buf_.push_back(DigestEntry{id, it->second.inject_time});
    }
    pending_it->second.clear();  // keeps capacity for the next burst
  }

  if (digest_buf_.empty() && params_.skip_empty_gossips) return;

  ++gossips_sent_;
  digest_entries_sent_ += digest_buf_.size();
  rt_.send(self_, target,
           rt_.template make<GossipDigestMsg>(
               digest_buf_, piggyback_members(), overlay_.my_degrees()));
}

template <runtime::Context RT>
const std::vector<membership::MemberEntry>&
DisseminationT<RT>::piggyback_members() {
  std::vector<membership::MemberEntry>& members = piggyback_buf_;
  members.clear();

  // Our own (fresh) entry always rides along; it carries our landmark
  // vector, which keeps proximity estimates flowing through the system.
  membership::MemberEntry self_entry;
  self_entry.id = self_;
  self_entry.landmark_rtt = own_landmarks_;
  self_entry.heard_at = rt_.now();
  members.push_back(self_entry);

  const auto& entries = view_.entries();
  if (entries.empty()) return members;
  for (std::size_t i = 0; i < params_.piggyback_members; ++i) {
    // With-replacement picks: O(1) per gossip; duplicates are harmless.
    members.push_back(
        entries[static_cast<std::size_t>(rng_.next_below(entries.size()))]);
  }
  return members;
}

template <runtime::Context RT>
void DisseminationT<RT>::on_gossip_digest(NodeId from,
                                          const GossipDigestMsg& msg) {
  view_.integrate(msg.members);

  SimTime now = rt_.now();
  for (const DigestEntry& entry : msg.entries) {
    // The peer evidently knows this message: never gossip it back.
    remove_from_pending(from, entry.id);

    if (store_.count(entry.id) > 0) continue;
    if (pull_pending_.count(entry.id) > 0) continue;  // pull in flight
    pull_pending_[entry.id] = PullState{from, now, 0};

    // Pull-delay threshold f: give the tree a head start before pulling.
    SimTime age = now - entry.inject_time;
    SimTime delay = std::max(0.0, params_.pull_delay_threshold - age);
    if (delay <= 0.0) {
      issue_pull(from, entry.id);
    } else {
      rt_.schedule_after(delay, [this, from, id = entry.id] {
        if (store_.count(id) > 0) {
          pull_pending_.erase(id);  // the tree won the race
          return;
        }
        if (!rt_.alive(self_)) return;
        issue_pull(from, id);
      });
    }
  }
}

template <runtime::Context RT>
void DisseminationT<RT>::issue_pull(NodeId target, MsgId id) {
  ++pulls_sent_;
  rt_.send(self_, target,
           rt_.template make<PullRequestMsg>(id, overlay_.my_degrees()));
  schedule_pull_retry(id);
}

template <runtime::Context RT>
void DisseminationT<RT>::schedule_pull_retry(MsgId id) {
  // Self-driven retries: a lost pull request or a lost response must not
  // orphan the message (each neighbor advertises an ID only once).
  rt_.schedule_after(params_.pull_retry_timeout, [this, id] {
    auto it = pull_pending_.find(id);
    if (it == pull_pending_.end()) return;  // satisfied
    if (store_.count(id) > 0 || !rt_.alive(self_)) {
      pull_pending_.erase(it);
      return;
    }
    if (++it->second.attempts >= params_.pull_max_attempts) {
      pull_pending_.erase(it);  // give up; a future digest may re-trigger
      return;
    }
    issue_pull(it->second.target, id);
  });
}

template <runtime::Context RT>
void DisseminationT<RT>::on_pull_request(NodeId from, const PullRequestMsg& msg) {
  for (MsgId id : msg.ids) {
    auto it = store_.find(id);
    if (it == store_.end() || !it->second.payload_present) continue;
    rt_.send(self_, from,
             rt_.template make<DataMsg>(id, it->second.inject_time,
                                        it->second.payload_bytes,
                                        /*via_tree=*/false,
                                        overlay_.my_degrees()));
  }
}

template <runtime::Context RT>
void DisseminationT<RT>::remove_from_pending(NodeId neighbor, MsgId id) {
  auto it = pending_.find(neighbor);
  if (it == pending_.end()) return;
  auto& vec = it->second;
  auto pos = std::find(vec.begin(), vec.end(), id);
  if (pos != vec.end()) {
    *pos = vec.back();
    vec.pop_back();
  }
}

// ---------------------------------------------------------------------------
// Partition-heal re-advertisement
// ---------------------------------------------------------------------------

template <runtime::Context RT>
std::size_t DisseminationT<RT>::readvertise_recent() {
  // Messages whose payload is still held are exactly those younger than the
  // waiting period b — the ones the other side of a healed partition can
  // still pull. Re-queue each for every current neighbor; dedup against the
  // slot so a neighbor already waiting for the ID is not advertised twice.
  std::size_t requeued = 0;
  for (const auto& [id, stored] : store_) {
    if (!stored.payload_present) continue;
    bool queued = false;
    for (NodeId peer : rotation_) {
      std::vector<MsgId>& slot = pending_slot(peer);
      if (std::find(slot.begin(), slot.end(), id) != slot.end()) continue;
      slot.push_back(id);
      queued = true;
    }
    if (queued) ++requeued;
  }
  readvertised_ids_ += requeued;
  return requeued;
}

// ---------------------------------------------------------------------------
// Garbage collection
// ---------------------------------------------------------------------------

template <runtime::Context RT>
std::size_t DisseminationT<RT>::payloads_older_than(SimTime age) const {
  SimTime now = rt_.now();
  std::size_t count = 0;
  for (const auto& [id, stored] : store_) {
    if (stored.payload_present && now - stored.received_at > age) ++count;
  }
  return count;
}

template <runtime::Context RT>
std::size_t DisseminationT<RT>::records_older_than(SimTime age) const {
  SimTime now = rt_.now();
  std::size_t count = 0;
  for (const auto& [id, stored] : store_) {
    if (now - stored.received_at > age) ++count;
  }
  return count;
}

template <runtime::Context RT>
void DisseminationT<RT>::gc_sweep() {
  SimTime now = rt_.now();
  for (auto it = store_.begin(); it != store_.end();) {
    SimTime age = now - it->second.received_at;
    if (age > params_.gc_record_after) {
      it = store_.erase(it);
      continue;
    }
    if (age > params_.gc_payload_after) it->second.payload_present = false;
    ++it;
  }
  for (auto it = pull_pending_.begin(); it != pull_pending_.end();) {
    if (now - it->second.started > params_.gc_payload_after) {
      it = pull_pending_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Overlay listener
// ---------------------------------------------------------------------------

template <runtime::Context RT>
void DisseminationT<RT>::on_neighbor_added(NodeId peer, overlay::LinkKind kind) {
  (void)kind;
  if (std::find(rotation_.begin(), rotation_.end(), peer) == rotation_.end()) {
    rotation_.push_back(peer);
  }
}

template <runtime::Context RT>
void DisseminationT<RT>::on_neighbor_removed(NodeId peer) {
  auto it = std::find(rotation_.begin(), rotation_.end(), peer);
  if (it != rotation_.end()) {
    std::size_t idx = static_cast<std::size_t>(it - rotation_.begin());
    rotation_.erase(it);
    if (rotation_idx_ > idx) --rotation_idx_;
  }
  auto pit = pending_.find(peer);
  if (pit != pending_.end()) {
    // Swap-and-clear: park the vector's capacity for the next neighbor
    // instead of freeing and reallocating it on every overlay change.
    pit->second.clear();
    spare_pending_.push_back(std::move(pit->second));
    pending_.erase(pit);
  }
}

template class DisseminationT<runtime::SimRuntime>;
template class DisseminationT<runtime::RealtimeContext>;

}  // namespace gocast::core

#include "gocast/dissemination.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>

#include "common/assert.h"
#include "common/logging.h"
#include "runtime/realtime_runtime.h"
#include "runtime/udp_runtime.h"

namespace gocast::core {

template <runtime::Context RT>
DisseminationT<RT>::DisseminationT(NodeId self, RT rt,
                                   membership::PartialView& view,
                                   overlay::OverlayManagerT<RT>& overlay,
                                   tree::TreeManagerT<RT>* tree,
                                   DisseminationParams params,
                                   DefenseParams defense, Rng rng,
                                   GroupId group,
                                   SuspicionLedger* shared_suspicion)
    : self_(self),
      rt_(rt),
      view_(view),
      overlay_(overlay),
      tree_(tree),
      params_(params),
      defense_(defense),
      group_(group),
      suspicion_ledger_(shared_suspicion != nullptr ? shared_suspicion
                                                    : &own_suspicion_),
      rng_(std::move(rng)),
      retry_rng_(rng_.fork("pull-retry")),
      gossip_timer_(rt_, params.gossip_period, [this] { on_gossip_timer(); }),
      gc_timer_(rt_, params.gc_sweep_period, [this] { gc_sweep(); }) {
  GOCAST_ASSERT(params_.gossip_period > 0.0);
  GOCAST_ASSERT(params_.pull_delay_threshold >= 0.0);
  GOCAST_ASSERT(params_.gc_record_after >= params_.gc_payload_after);
  GOCAST_ASSERT(params_.gossip_period_max >= params_.gossip_period);
  GOCAST_ASSERT(params_.gossip_backoff >= 1.0);
  GOCAST_ASSERT(params_.pull_max_attempts >= 1);
  GOCAST_ASSERT(params_.pull_retry_backoff >= 1.0);
  GOCAST_ASSERT(params_.pull_retry_jitter >= 0.0);
  GOCAST_ASSERT(defense_.suspicion_decay_halflife > 0.0);
  GOCAST_ASSERT(defense_.suspicion_threshold > 0.0);
  // Flat tables sized for the common case, not the worst: pending_ holds one
  // slot per overlay neighbor (degree target ~6), pull_pending_ a handful of
  // in-flight recoveries, and the store grows deterministically toward the
  // record-retention window when a run actually sustains traffic. Large
  // deployments pay for what they use instead of 30+ KiB of empty table per
  // node up front.
  store_.reserve(32);
  pending_.reserve(8);
  pull_pending_.reserve(16);
  piggyback_buf_.reserve(params_.piggyback_members + 1);
}

template <runtime::Context RT>
void DisseminationT<RT>::start(SimTime stagger) {
  if (!external_gossip_) gossip_timer_.start(stagger + params_.gossip_period);
  gc_timer_.start(stagger + params_.gc_sweep_period);
}

template <runtime::Context RT>
void DisseminationT<RT>::stop() {
  gossip_timer_.stop();
  gc_timer_.stop();
}

template <runtime::Context RT>
void DisseminationT<RT>::deactivate() {
  stop();
  active_ = false;
  // Drop transient per-run state; the store keeps already-delivered records
  // so a quick rejoin does not re-deliver old traffic as new.
  pull_pending_.clear();
  for (auto& [peer, ids] : pending_) ids.clear();
}

template <runtime::Context RT>
void DisseminationT<RT>::reactivate(SimTime stagger) {
  if (active_) return;
  active_ = true;
  start(stagger);
}

template <runtime::Context RT>
MsgId DisseminationT<RT>::multicast(std::size_t payload_bytes) {
  GOCAST_ASSERT_MSG(active_, "multicast into a deactivated (left) group");
  MsgId id{self_, next_seq_++};
  accept_message(id, rt_.now(), payload_bytes, kInvalidNode,
                 DeliveryPath::kLocal);
  return id;
}

// ---------------------------------------------------------------------------
// Core acceptance path
// ---------------------------------------------------------------------------

template <runtime::Context RT>
void DisseminationT<RT>::accept_message(MsgId id, SimTime inject_time,
                                        std::size_t payload_bytes,
                                        NodeId learned_from, DeliveryPath path) {
  const auto bytes = static_cast<std::uint32_t>(payload_bytes);
  auto [it, inserted] =
      store_.try_emplace(id, Stored{inject_time, rt_.now(), bytes, true, true});
  if (!inserted) {
    // Only a digest-liar can race its own fake (payload-less) record against
    // a real arrival; promote the record instead of asserting.
    it->second = Stored{inject_time, rt_.now(), bytes, true, true};
  }
  ++deliveries_;
  pull_pending_.erase(id);
  if (defense_.audit_pulls) recent_ids_.emplace_back(rt_.now(), id);

  if (params_.adaptive_gossip &&
      gossip_timer_.period() > params_.gossip_period && gossip_timer_.running()) {
    // Traffic resumed: gossip at full rate again, starting now.
    gossip_timer_.set_period(params_.gossip_period);
    gossip_timer_.start(params_.gossip_period);
  }

  if (delivery_hook_) {
    delivery_hook_(
        DeliveryEvent{self_, id, inject_time, rt_.now(), path, group_});
  }

  if (defense_.suspect_silent && params_.use_tree && tree_ != nullptr) {
    check_parent_silence();
  }

  // A mute forwarder is a free-rider: it consumes other nodes' messages
  // without ever pushing or advertising them (the black-hole behavior of
  // DESIGN.md §9) — but it still disseminates its own multicasts, since the
  // point of muting is to shed relay cost, not to censor itself.
  const bool mute = behavior_ != nullptr && behavior_->mute_forwarder &&
                    learned_from != kInvalidNode;

  // Push without stop along remaining tree links (also after a pull: a
  // message entering a tree fragment floods the whole fragment, §2.1).
  if (params_.use_tree && tree_ != nullptr && !mute) {
    forward_on_tree(id, it->second, learned_from);
  }

  // Queue the ID for gossiping to every overlay neighbor except the one we
  // heard the message from.
  if (!mute) {
    for (NodeId peer : rotation_) {
      if (peer != learned_from) pending_slot(peer).push_back(id);
    }
  }
}

template <runtime::Context RT>
std::vector<MsgId>& DisseminationT<RT>::pending_slot(NodeId peer) {
  auto [it, fresh] = pending_.try_emplace(peer);
  if (fresh && !spare_pending_.empty()) {
    // Recycle the capacity of a departed neighbor's vector.
    it->second = std::move(spare_pending_.back());
    spare_pending_.pop_back();
  }
  return it->second;
}

template <runtime::Context RT>
void DisseminationT<RT>::forward_on_tree(MsgId id, const Stored& stored,
                                         NodeId except) {
  auto msg = rt_.template make<DataMsg>(id, stored.inject_time,
                                        stored.payload_bytes, /*via_tree=*/true,
                                        overlay_.my_degrees(), group_);
  const std::vector<NodeId> peers = tree_->tree_neighbors();
  rt_.send_multi(self_, peers.data(), peers.size(), except, std::move(msg));
}

template <runtime::Context RT>
void DisseminationT<RT>::on_data(NodeId from, const DataMsg& msg) {
  if (!active_) return;  // traffic for a group we already left
  if (defense_.suspect_silent && from == watched_parent_) {
    // Any push from the watched parent — fresh or redundant — is proof it
    // still forwards.
    last_parent_data_ = rt_.now();
  }
  if (defense_.audit_pulls) {
    auto audit_it = audit_pending_.find(msg.id);
    if (audit_it != audit_pending_.end() && audit_it->second.target == from) {
      // Challenge answered: a passed spot-check wipes the slate. Lost
      // messages make honest peers fail the occasional probe, so only
      // CONSECUTIVE failures — the one pattern an adversary cannot avoid —
      // may accumulate toward the eviction threshold.
      audit_pending_.erase(audit_it);
      auto sit = suspicion_ledger_->scores.find(from);
      if (sit != suspicion_ledger_->scores.end()) sit->second.score = 0.0;
    }
  }
  auto it = store_.find(msg.id);
  if (it != store_.end() && it->second.delivered) {
    // Redundant arrival — the paper's §2.1 "2% overhead" path. Optimization
    // (1) of §2.1: a real deployment aborts the transfer mid-stream, so the
    // payload bytes are not actually carried; we track them as savings.
    ++duplicates_;
    aborted_bytes_ += msg.payload_bytes;
    rt_.report_aborted_transfer(from, self_, msg.payload_bytes);
    return;
  }
  // First real payload (a record may exist but be a liar's undelivered
  // plant — accept_message promotes it in place).
  accept_message(msg.id, msg.inject_time, msg.payload_bytes, from,
                 msg.via_tree ? DeliveryPath::kTree : DeliveryPath::kPull);
}

// ---------------------------------------------------------------------------
// Gossip
// ---------------------------------------------------------------------------

template <runtime::Context RT>
void DisseminationT<RT>::on_gossip_timer() {
  if (params_.adaptive_gossip) {
    // Back off while idle (no IDs waiting for any neighbor).
    bool idle = true;
    for (const auto& [peer, ids] : pending_) {
      if (!ids.empty()) {
        idle = false;
        break;
      }
    }
    if (idle) {
      gossip_timer_.set_period(std::min(
          gossip_timer_.period() * params_.gossip_backoff,
          params_.gossip_period_max));
    } else {
      gossip_timer_.set_period(params_.gossip_period);
    }
  }
  if (rotation_.empty()) return;
  if (rotation_idx_ >= rotation_.size()) rotation_idx_ = 0;
  NodeId target = rotation_[rotation_idx_];
  rotation_idx_ = (rotation_idx_ + 1) % rotation_.size();

  if (defense_.deprioritize_suspects &&
      suspicion_score(target) >= defense_.suspicion_threshold) {
    // Skip past suspects in the rotation while an unsuspected neighbor
    // exists; if every neighbor is suspect, gossip to the original pick
    // anyway (starving the whole rotation would only hurt ourselves).
    for (std::size_t i = 0; i + 1 < rotation_.size(); ++i) {
      NodeId candidate = rotation_[rotation_idx_];
      rotation_idx_ = (rotation_idx_ + 1) % rotation_.size();
      if (suspicion_score(candidate) < defense_.suspicion_threshold) {
        target = candidate;
        break;
      }
    }
  }

  // A digest-liar advertises every record it knows of, including the fake
  // payload-less ones it planted on hearing other digests.
  const bool advertise_unheld = behavior_ != nullptr && behavior_->digest_liar;

  digest_buf_.clear();
  auto pending_it = pending_.find(target);
  if (pending_it != pending_.end() && !pending_it->second.empty()) {
    digest_buf_.reserve(pending_it->second.size());
    for (MsgId id : pending_it->second) {
      auto it = store_.find(id);
      if (it == store_.end()) continue;
      if (!it->second.payload_present && !advertise_unheld) continue;
      digest_buf_.push_back(DigestEntry{id, it->second.inject_time});
    }
    pending_it->second.clear();  // keeps capacity for the next burst
  }

  if (digest_buf_.empty() && params_.skip_empty_gossips) return;

  ++gossips_sent_;
  digest_entries_sent_ += digest_buf_.size();
  rt_.send(self_, target,
           rt_.template make<GossipDigestMsg>(
               digest_buf_, piggyback_members(), overlay_.my_degrees(),
               group_));

  if (defense_.audit_pulls) maybe_challenge(target);
}

template <runtime::Context RT>
const std::vector<DigestEntry>& DisseminationT<RT>::collect_digest_for(
    NodeId target) {
  // The same backlog drain the private gossip timer performs, minus the
  // send: the node-level multiplexer packs the result into one grouped
  // gossip alongside the other co-subscribed groups' sections. Gossip
  // MESSAGE counts are node-level in mux mode; entry counts stay per-group.
  const bool advertise_unheld = behavior_ != nullptr && behavior_->digest_liar;
  digest_buf_.clear();
  auto pending_it = pending_.find(target);
  if (pending_it != pending_.end() && !pending_it->second.empty()) {
    digest_buf_.reserve(pending_it->second.size());
    for (MsgId id : pending_it->second) {
      auto it = store_.find(id);
      if (it == store_.end()) continue;
      if (!it->second.payload_present && !advertise_unheld) continue;
      digest_buf_.push_back(DigestEntry{id, it->second.inject_time});
    }
    pending_it->second.clear();
  }
  digest_entries_sent_ += digest_buf_.size();
  return digest_buf_;
}

template <runtime::Context RT>
const std::vector<membership::MemberEntry>&
DisseminationT<RT>::piggyback_members() {
  std::vector<membership::MemberEntry>& members = piggyback_buf_;
  members.clear();

  // Our own (fresh) entry always rides along; it carries our landmark
  // vector, which keeps proximity estimates flowing through the system.
  membership::MemberEntry self_entry;
  self_entry.id = self_;
  self_entry.landmark_rtt = own_landmarks_;
  self_entry.heard_at = rt_.now();
  members.push_back(self_entry);

  if (view_.empty()) return members;
  for (std::size_t i = 0; i < params_.piggyback_members; ++i) {
    // With-replacement picks: O(1) per gossip; duplicates are harmless.
    members.push_back(view_.entry_at(
        static_cast<std::size_t>(rng_.next_below(view_.size()))));
  }
  return members;
}

template <runtime::Context RT>
void DisseminationT<RT>::on_gossip_digest(NodeId from,
                                          const GossipDigestMsg& msg) {
  view_.integrate(msg.members);
  if (!active_) return;

  if (defense_.digest_sanity &&
      msg.entries.size() > defense_.max_digest_entries) {
    // No honest backlog produces digests this large at our message rates;
    // treat the flood as hostile and drop it whole.
    raise_suspicion(from, defense_.suspicion_increment);
    return;
  }

  process_digest_entries(from, msg.entries.data(), msg.entries.size());
}

template <runtime::Context RT>
void DisseminationT<RT>::on_grouped_digest(NodeId from,
                                           const DigestEntry* entries,
                                           std::size_t count) {
  if (!active_) return;
  if (defense_.digest_sanity && count > defense_.max_digest_entries) {
    raise_suspicion(from, defense_.suspicion_increment);
    return;
  }
  process_digest_entries(from, entries, count);
}

template <runtime::Context RT>
void DisseminationT<RT>::process_digest_entries(NodeId from,
                                                const DigestEntry* entries,
                                                std::size_t count) {
  SimTime now = rt_.now();

  if (behavior_ != nullptr && behavior_->digest_liar) {
    // The liar never pulls: it plants a payload-less record for every id it
    // hears and re-queues the id for all other neighbors, so it wins
    // advertisement races while holding nothing it could ever serve.
    for (std::size_t i = 0; i < count; ++i) {
      const DigestEntry& entry = entries[i];
      remove_from_pending(from, entry.id);
      auto [it, fresh] = store_.try_emplace(
          entry.id, Stored{entry.inject_time, now, 0, false, false});
      (void)it;
      if (!fresh) continue;
      for (NodeId peer : rotation_) {
        if (peer != from) pending_slot(peer).push_back(entry.id);
      }
    }
    return;
  }

  for (std::size_t i = 0; i < count; ++i) {
    const DigestEntry& entry = entries[i];
    if (defense_.digest_sanity) {
      if (entry.inject_time > now + 1e-9) {
        // Injection times are sender-reported; one from the future is a
        // fabrication by construction.
        raise_suspicion(from, defense_.suspicion_increment);
        continue;
      }
      if (entry.id.origin == self_ && entry.id.seq >= next_seq_) {
        // An id in our own namespace that we never assigned: forged.
        raise_suspicion(from, defense_.suspicion_increment);
        continue;
      }
    }

    // The peer evidently knows this message: never gossip it back.
    remove_from_pending(from, entry.id);

    if (store_.count(entry.id) > 0) continue;
    if (pull_pending_.count(entry.id) > 0) {
      // Pull already in flight; remember the alternate source so a retry
      // can escalate away from a non-answering target.
      if (defense_.escalate_pulls) note_advertiser(entry.id, from);
      continue;
    }
    pull_pending_[entry.id] = PullState{from, now, 0, {}};

    // Pull-delay threshold f: give the tree a head start before pulling.
    SimTime age = now - entry.inject_time;
    SimTime delay = std::max(0.0, params_.pull_delay_threshold - age);
    if (delay <= 0.0) {
      issue_pull(from, entry.id);
    } else {
      rt_.schedule_after(delay, [this, from, id = entry.id] {
        if (store_.count(id) > 0) {
          pull_pending_.erase(id);  // the tree won the race
          return;
        }
        if (!rt_.alive(self_)) return;
        issue_pull(from, id);
      });
    }
  }
}

template <runtime::Context RT>
void DisseminationT<RT>::issue_pull(NodeId target, MsgId id) {
  if (!active_) return;  // a pull-delay callback outlived a group leave
  ++pulls_sent_;
  rt_.send(self_, target,
           rt_.template make<PullRequestMsg>(id, overlay_.my_degrees(),
                                             group_));
  schedule_pull_retry(id);
}

template <runtime::Context RT>
void DisseminationT<RT>::schedule_pull_retry(MsgId id) {
  // Self-driven retries: a lost pull request or a lost response must not
  // orphan the message (each neighbor advertises an ID only once). Each
  // retry waits exponentially longer, with uniform multiplicative jitter so
  // a burst loss does not re-synchronize every recovering node. The jitter
  // draws come from a dedicated stream: enabling or exhausting retries never
  // perturbs the piggyback-sampling sequence.
  auto it = pull_pending_.find(id);
  if (it == pull_pending_.end()) return;
  SimTime delay = params_.pull_retry_timeout *
                  std::pow(params_.pull_retry_backoff, it->second.attempts);
  if (params_.pull_retry_jitter > 0.0) {
    delay *= 1.0 + params_.pull_retry_jitter * retry_rng_.next_unit();
  }
  rt_.schedule_after(delay, [this, id] { on_pull_retry_timeout(id); });
}

template <runtime::Context RT>
void DisseminationT<RT>::on_pull_retry_timeout(MsgId id) {
  auto it = pull_pending_.find(id);
  if (it == pull_pending_.end()) return;  // satisfied
  if (store_.count(id) > 0 || !rt_.alive(self_)) {
    pull_pending_.erase(it);
    return;
  }
  // The target was asked and produced nothing within the timeout — the one
  // observable every pull-serving adversary (digest liar, mute forwarder,
  // crashed peer) has in common.
  if (defense_.suspicion_enabled()) {
    raise_suspicion(it->second.target, defense_.suspicion_increment);
  }

  if (++it->second.attempts >= params_.pull_max_attempts) {
    // Budget burned; a future digest may re-trigger the recovery.
    ++pull_retries_exhausted_;
    pull_pending_.erase(it);
    return;
  }
  NodeId target = it->second.target;
  if (defense_.escalate_pulls) {
    target = pick_escalation_target(it->second.advertisers, target);
    it->second.target = target;
  }
  issue_pull(target, id);
}

template <runtime::Context RT>
void DisseminationT<RT>::on_pull_request(NodeId from, const PullRequestMsg& msg) {
  if (!active_) return;
  // Mute forwarders relay nothing they did not originate; digest liars
  // advertised payloads they never held. Either way the requester's pull
  // times out — except for the adversary's own multicasts, which the
  // free-rider model still wants delivered.
  const bool adversarial =
      behavior_ != nullptr &&
      (behavior_->mute_forwarder || behavior_->digest_liar);
  for (MsgId id : msg.ids) {
    if (adversarial && id.origin != self_) continue;
    auto it = store_.find(id);
    if (it == store_.end() || !it->second.payload_present) continue;
    rt_.send(self_, from,
             rt_.template make<DataMsg>(id, it->second.inject_time,
                                        it->second.payload_bytes,
                                        /*via_tree=*/false,
                                        overlay_.my_degrees(), group_));
  }
}

// ---------------------------------------------------------------------------
// Suspicion (DESIGN.md §9)
// ---------------------------------------------------------------------------

template <runtime::Context RT>
void DisseminationT<RT>::raise_suspicion(NodeId peer, double increment) {
  SimTime now = rt_.now();
  auto& st = suspicion_ledger_->scores[peer];
  if (st.score > 0.0 && now > st.updated) {
    st.score *= std::exp2(-(now - st.updated) / defense_.suspicion_decay_halflife);
  }
  st.score += increment;
  st.updated = now;

  if (defense_.evict_suspects && st.score >= defense_.suspicion_threshold) {
    // Reset before evicting: the eviction answers the accumulated evidence,
    // and the blacklist keeps the peer away while the slate is clean.
    st.score = 0.0;
    if (overlay_.evict_neighbor(peer, defense_.blacklist_duration)) {
      suspicion_ledger_->evictions.push_back(Eviction{peer, now});
      GOCAST_DEBUG("node " << self_ << " evicted suspect " << peer << " at "
                           << now);
    }
  }
}

template <runtime::Context RT>
double DisseminationT<RT>::suspicion_score(NodeId peer) const {
  auto it = suspicion_ledger_->scores.find(peer);
  if (it == suspicion_ledger_->scores.end()) return 0.0;
  SimTime now = rt_.now();
  double score = it->second.score;
  if (score > 0.0 && now > it->second.updated) {
    score *= std::exp2(-(now - it->second.updated) /
                       defense_.suspicion_decay_halflife);
  }
  return score;
}

template <runtime::Context RT>
void DisseminationT<RT>::check_parent_silence() {
  // A tree parent is obligated to push every message down, so a parent that
  // stays data-silent while deliveries keep arriving by other paths is the
  // other observable signature of a mute forwarder (its empty digests look
  // legitimate to us, because tree children also send us empty digests).
  // Changing parents resets the clock: a fresh link gets a full window of
  // grace before silence counts.
  NodeId parent = tree_->parent();
  SimTime now = rt_.now();
  if (parent != watched_parent_) {
    watched_parent_ = parent;
    last_parent_data_ = now;
    return;
  }
  if (parent == kInvalidNode || parent == self_) return;
  if (now - last_parent_data_ > defense_.silence_window) {
    raise_suspicion(parent, defense_.suspicion_increment);
    last_parent_data_ = now;  // one offense per silent window
  }
}

template <runtime::Context RT>
void DisseminationT<RT>::maybe_challenge(NodeId target) {
  // Every audit_every-th gossip to a neighbor doubles as a spot-check: pull
  // a message old enough that every honest live node must still hold it
  // (older than audit_min_age, younger than the payload-retention bound
  // audit_max_age). An honest neighbor answers and the duplicate transfer
  // aborts after the header; mute forwarders and digest liars refuse pulls
  // for foreign ids, time out, and take a heavier suspicion hit than a
  // routine offense.
  SimTime now = rt_.now();
  while (recent_head_ < recent_ids_.size() &&
         now - recent_ids_[recent_head_].first > defense_.audit_max_age) {
    ++recent_head_;
  }
  if (recent_head_ > 1024) {
    // Compact the consumed prefix so the ring does not grow unboundedly.
    recent_ids_.erase(recent_ids_.begin(),
                      recent_ids_.begin() +
                          static_cast<std::ptrdiff_t>(recent_head_));
    recent_head_ = 0;
  }
  if (recent_head_ >= recent_ids_.size()) return;
  const auto& [received_at, id] = recent_ids_[recent_head_];
  if (now - received_at < defense_.audit_min_age) return;  // nothing old enough

  auto [cd, fresh] = audit_countdown_.try_emplace(
      target, static_cast<std::uint32_t>(defense_.audit_every));
  if (cd->second > 1) {
    --cd->second;
    return;
  }
  cd->second = static_cast<std::uint32_t>(defense_.audit_every);
  const std::uint64_t epoch = ++audit_epoch_;
  auto [pending, inserted] = audit_pending_.try_emplace(id, AuditProbe{target, epoch});
  (void)pending;
  if (!inserted) return;  // this id is already probing another neighbor
  ++audits_sent_;
  rt_.send(self_, target,
           rt_.template make<PullRequestMsg>(id, overlay_.my_degrees(),
                                             group_));
  rt_.schedule_after(params_.pull_retry_timeout, [this, target, id, epoch] {
    auto it = audit_pending_.find(id);
    // The epoch check pins the timeout to ITS challenge: after the original
    // probe was answered, a later probe may reuse the same (id, target) pair
    // and must not be failed by this stale timer.
    if (it == audit_pending_.end() || it->second.target != target ||
        it->second.epoch != epoch) {
      return;
    }
    audit_pending_.erase(it);
    if (!rt_.alive(self_)) return;
    raise_suspicion(target, defense_.audit_increment);
  });
}

template <runtime::Context RT>
void DisseminationT<RT>::note_advertiser(MsgId id, NodeId peer) {
  auto it = pull_pending_.find(id);
  if (it == pull_pending_.end()) return;
  if (peer == it->second.target) return;
  auto& advertisers = it->second.advertisers;
  if (std::find(advertisers.begin(), advertisers.end(), peer) ==
      advertisers.end()) {
    advertisers.push_back(peer);
  }
}

template <runtime::Context RT>
NodeId DisseminationT<RT>::pick_escalation_target(
    const std::vector<NodeId>& advertisers, NodeId current) const {
  // Lowest suspicion wins; strict less-than keeps the earliest-recorded
  // advertiser on ties, so the choice is deterministic.
  NodeId best = kInvalidNode;
  double best_score = 0.0;
  for (NodeId candidate : advertisers) {
    if (candidate == current) continue;
    double score = suspicion_score(candidate);
    if (best == kInvalidNode || score < best_score) {
      best = candidate;
      best_score = score;
    }
  }
  return best == kInvalidNode ? current : best;
}

template <runtime::Context RT>
void DisseminationT<RT>::remove_from_pending(NodeId neighbor, MsgId id) {
  auto it = pending_.find(neighbor);
  if (it == pending_.end()) return;
  auto& vec = it->second;
  auto pos = std::find(vec.begin(), vec.end(), id);
  if (pos != vec.end()) {
    *pos = vec.back();
    vec.pop_back();
  }
}

// ---------------------------------------------------------------------------
// Partition-heal re-advertisement
// ---------------------------------------------------------------------------

template <runtime::Context RT>
std::size_t DisseminationT<RT>::readvertise_recent() {
  // Messages whose payload is still held are exactly those younger than the
  // waiting period b — the ones the other side of a healed partition can
  // still pull. Re-queue each for every current neighbor; dedup against the
  // slot so a neighbor already waiting for the ID is not advertised twice.
  // The ids are sorted before queuing: flat-map iteration order is a
  // function of table capacity, and the queue order feeds digest order, so
  // sorting keeps re-advertisement behavior independent of how the store
  // happened to grow.
  std::vector<MsgId> held;
  held.reserve(store_.size());
  for (const auto& [id, stored] : store_) {
    if (stored.payload_present) held.push_back(id);
  }
  std::sort(held.begin(), held.end(), [](MsgId a, MsgId b) {
    return a.origin != b.origin ? a.origin < b.origin : a.seq < b.seq;
  });
  std::size_t requeued = 0;
  for (MsgId id : held) {
    bool queued = false;
    for (NodeId peer : rotation_) {
      std::vector<MsgId>& slot = pending_slot(peer);
      if (std::find(slot.begin(), slot.end(), id) != slot.end()) continue;
      slot.push_back(id);
      queued = true;
    }
    if (queued) ++requeued;
  }
  readvertised_ids_ += requeued;
  return requeued;
}

// ---------------------------------------------------------------------------
// Garbage collection
// ---------------------------------------------------------------------------

template <runtime::Context RT>
std::size_t DisseminationT<RT>::payloads_older_than(SimTime age) const {
  SimTime now = rt_.now();
  std::size_t count = 0;
  for (const auto& [id, stored] : store_) {
    if (stored.payload_present && now - stored.received_at > age) ++count;
  }
  return count;
}

template <runtime::Context RT>
std::size_t DisseminationT<RT>::records_older_than(SimTime age) const {
  SimTime now = rt_.now();
  std::size_t count = 0;
  for (const auto& [id, stored] : store_) {
    if (now - stored.received_at > age) ++count;
  }
  return count;
}

template <runtime::Context RT>
void DisseminationT<RT>::gc_sweep() {
  SimTime now = rt_.now();
  for (auto it = store_.begin(); it != store_.end();) {
    SimTime age = now - it->second.received_at;
    if (age > params_.gc_record_after) {
      it = store_.erase(it);
      continue;
    }
    if (age > params_.gc_payload_after) it->second.payload_present = false;
    ++it;
  }
  for (auto it = pull_pending_.begin(); it != pull_pending_.end();) {
    if (now - it->second.started > params_.gc_payload_after) {
      it = pull_pending_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Overlay listener
// ---------------------------------------------------------------------------

template <runtime::Context RT>
void DisseminationT<RT>::set_gossip_peers(const std::vector<NodeId>& peers) {
  // Departed peers first: recycles their pending capacity through the same
  // path an overlay neighbor loss takes.
  for (std::size_t i = rotation_.size(); i-- > 0;) {
    NodeId peer = rotation_[i];
    if (std::find(peers.begin(), peers.end(), peer) == peers.end()) {
      on_neighbor_removed(peer);
    }
  }
  std::vector<MsgId> held;  // filled lazily on the first genuinely new peer
  for (NodeId peer : peers) {
    if (peer == self_) continue;
    if (std::find(rotation_.begin(), rotation_.end(), peer) !=
        rotation_.end()) {
      continue;
    }
    rotation_.push_back(peer);
    // A fresh peer may have missed everything we still hold: queue the held
    // ids so the next digest to it advertises them. Sorted — flat-map
    // iteration order is capacity-dependent and must not leak into digest
    // order (see readvertise_recent).
    if (held.empty()) {
      held.reserve(store_.size());
      for (const auto& [id, stored] : store_) {
        if (stored.payload_present) held.push_back(id);
      }
      std::sort(held.begin(), held.end(), [](MsgId a, MsgId b) {
        return a.origin != b.origin ? a.origin < b.origin : a.seq < b.seq;
      });
    }
    std::vector<MsgId>& slot = pending_slot(peer);
    for (MsgId id : held) {
      if (std::find(slot.begin(), slot.end(), id) == slot.end()) {
        slot.push_back(id);
      }
    }
  }
}

template <runtime::Context RT>
void DisseminationT<RT>::on_neighbor_added(NodeId peer, overlay::LinkKind kind) {
  (void)kind;
  if (std::find(rotation_.begin(), rotation_.end(), peer) == rotation_.end()) {
    rotation_.push_back(peer);
  }
}

template <runtime::Context RT>
void DisseminationT<RT>::on_neighbor_removed(NodeId peer) {
  auto it = std::find(rotation_.begin(), rotation_.end(), peer);
  if (it != rotation_.end()) {
    std::size_t idx = static_cast<std::size_t>(it - rotation_.begin());
    rotation_.erase(it);
    if (rotation_idx_ > idx) --rotation_idx_;
  }
  audit_countdown_.erase(peer);
  auto pit = pending_.find(peer);
  if (pit != pending_.end()) {
    // Swap-and-clear: park the vector's capacity for the next neighbor
    // instead of freeing and reallocating it on every overlay change.
    pit->second.clear();
    spare_pending_.push_back(std::move(pit->second));
    pending_.erase(pit);
  }
}

template <runtime::Context RT>
std::size_t DisseminationT<RT>::memory_bytes() const {
  // A shared (node-global) suspicion ledger is accounted once by its owner,
  // not once per group.
  std::size_t bytes = store_.memory_bytes() + pending_.memory_bytes() +
                      pull_pending_.memory_bytes() +
                      (suspicion_ledger_ == &own_suspicion_
                           ? own_suspicion_.memory_bytes()
                           : 0) +
                      audit_countdown_.memory_bytes() +
                      audit_pending_.memory_bytes();
  for (const auto& [peer, ids] : pending_) {
    bytes += ids.capacity() * sizeof(MsgId);
  }
  for (const auto& [id, state] : pull_pending_) {
    bytes += state.advertisers.capacity() * sizeof(NodeId);
  }
  for (const auto& ids : spare_pending_) bytes += ids.capacity() * sizeof(MsgId);
  bytes += spare_pending_.capacity() * sizeof(std::vector<MsgId>);
  bytes += rotation_.capacity() * sizeof(NodeId);
  bytes += recent_ids_.capacity() * sizeof(std::pair<SimTime, MsgId>);
  bytes += piggyback_buf_.capacity() * sizeof(membership::MemberEntry);
  bytes += digest_buf_.capacity() * sizeof(DigestEntry);
  return bytes;
}

template class DisseminationT<runtime::SimRuntime>;
template class DisseminationT<runtime::RealtimeContext>;
template class DisseminationT<runtime::UdpContext>;

}  // namespace gocast::core

// Dissemination wire protocol: multicast payloads, gossip digests, pulls.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "membership/member_entry.h"
#include "net/message.h"
#include "net/message_pool.h"

namespace gocast::core {

inline constexpr int kPktData = 300;
inline constexpr int kPktGossipDigest = 301;
inline constexpr int kPktPullRequest = 302;

/// A multicast message (payload is simulated by its size). `inject_time`
/// implements the paper's piggybacked elapsed-time estimate: messages carry
/// the accumulated time since injection so receivers can apply the
/// pull-delay threshold f. (The simulator's shared clock makes the estimate
/// exact; the paper builds it by summing per-hop delays.)
struct DataMsg final : net::Message {
  DataMsg(MsgId id, SimTime inject_time, std::size_t payload_bytes,
          bool via_tree, net::PeerDegrees degrees)
      : net::Message(net::MsgKind::kData, kPktData),
        id(id),
        inject_time(inject_time),
        payload_bytes(payload_bytes),
        via_tree(via_tree),
        degrees(degrees) {}

  MsgId id;
  SimTime inject_time;
  std::size_t payload_bytes;
  bool via_tree;  ///< pushed along a tree link (vs. sent as a pull response)
  net::PeerDegrees degrees;

  /// Frame + {id 8, age f64 8, payload_len 4, via_tree 1, degrees 8} + payload.
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes + 21 + net::PeerDegrees::wire_size() +
           payload_bytes;
  }
  [[nodiscard]] const net::PeerDegrees* peer_degrees() const override {
    return &degrees;
  }
};

struct DigestEntry {
  MsgId id;
  SimTime inject_time;

  [[nodiscard]] static constexpr std::size_t wire_size() { return 12; }
};

/// The gossip: IDs of messages received or started since the last gossip to
/// this neighbor (minus those heard from it), plus piggybacked membership.
struct GossipDigestMsg final : net::Message {
  /// Pool-backed construction (Network::make passes the arena): the digest
  /// and member payload vectors are carved from the message pool, so a
  /// steady-state gossip performs no global-allocator calls at all.
  GossipDigestMsg(const std::shared_ptr<net::MessageArena>& arena,
                  const std::vector<DigestEntry>& entries_in,
                  const std::vector<membership::MemberEntry>& members_in,
                  net::PeerDegrees degrees)
      : net::Message(net::MsgKind::kGossipDigest, kPktGossipDigest),
        entries(entries_in.begin(), entries_in.end(),
                net::PayloadAllocator<DigestEntry>(arena)),
        members(members_in.begin(), members_in.end(),
                net::PayloadAllocator<membership::MemberEntry>(arena)),
        degrees(degrees) {}

  /// Arena-less construction (tests, direct use): global allocator.
  GossipDigestMsg(const std::vector<DigestEntry>& entries_in,
                  const std::vector<membership::MemberEntry>& members_in,
                  net::PeerDegrees degrees)
      : GossipDigestMsg(nullptr, entries_in, members_in, degrees) {}

  /// Wire-codec construction: empty pooled payloads, filled in place by
  /// wire::decode while parsing the frame.
  GossipDigestMsg(net::WireDecodeTag,
                  const std::shared_ptr<net::MessageArena>& arena,
                  net::PeerDegrees degrees)
      : net::Message(net::MsgKind::kGossipDigest, kPktGossipDigest),
        entries(net::PayloadAllocator<DigestEntry>(arena)),
        members(net::PayloadAllocator<membership::MemberEntry>(arena)),
        degrees(degrees) {}

  // Arena-backed payloads: iterate in place or COPY out (copies detach to the
  // global allocator via PayloadAllocator); never move a PoolVec out.
  net::PoolVec<DigestEntry> entries;
  net::PoolVec<membership::MemberEntry> members;
  net::PeerDegrees degrees;

  /// Frame + {n_entries 4, n_members 4, degrees 8} + payload tables.
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes + 8 + net::PeerDegrees::wire_size() +
           entries.size() * DigestEntry::wire_size() +
           members.size() * membership::MemberEntry::wire_size();
  }
  [[nodiscard]] const net::PeerDegrees* peer_degrees() const override {
    return &degrees;
  }
};

/// Request for messages whose IDs were learned from a gossip.
struct PullRequestMsg final : net::Message {
  /// Pool-backed single-id pull (the common case: one pull per missing
  /// message) — no temporary vector, no global-allocator call.
  PullRequestMsg(const std::shared_ptr<net::MessageArena>& arena, MsgId id,
                 net::PeerDegrees degrees)
      : net::Message(net::MsgKind::kPullRequest, kPktPullRequest),
        ids(1, id, net::PayloadAllocator<MsgId>(arena)),
        degrees(degrees) {}

  /// Arena-less construction (tests, direct use): global allocator.
  PullRequestMsg(const std::vector<MsgId>& ids_in, net::PeerDegrees degrees)
      : net::Message(net::MsgKind::kPullRequest, kPktPullRequest),
        ids(ids_in.begin(), ids_in.end(), net::PayloadAllocator<MsgId>()),
        degrees(degrees) {}

  /// Wire-codec construction: empty pooled id list, filled in place.
  PullRequestMsg(net::WireDecodeTag,
                 const std::shared_ptr<net::MessageArena>& arena,
                 net::PeerDegrees degrees)
      : net::Message(net::MsgKind::kPullRequest, kPktPullRequest),
        ids(net::PayloadAllocator<MsgId>(arena)),
        degrees(degrees) {}

  // Arena-backed payload: iterate in place or COPY out; never move it out.
  net::PoolVec<MsgId> ids;
  net::PeerDegrees degrees;

  /// Frame + {n_ids 4, degrees 8} + 8 bytes per id.
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes + 4 + net::PeerDegrees::wire_size() +
           ids.size() * 8;
  }
  [[nodiscard]] const net::PeerDegrees* peer_degrees() const override {
    return &degrees;
  }
};

}  // namespace gocast::core

// Dissemination wire protocol: multicast payloads, gossip digests, pulls.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "membership/member_entry.h"
#include "net/message.h"
#include "net/message_pool.h"

namespace gocast::core {

inline constexpr int kPktData = 300;
inline constexpr int kPktGossipDigest = 301;
inline constexpr int kPktPullRequest = 302;
inline constexpr int kPktGroupedGossip = 303;

/// Extra wire bytes a non-default group id costs. Group-0 (single-group)
/// frames omit the field entirely, keeping them byte-identical to the
/// pre-multigroup protocol — the determinism goldens depend on this.
[[nodiscard]] constexpr std::size_t group_wire_size(GroupId group) {
  return group == kDefaultGroup ? 0 : 4;
}

/// A multicast message (payload is simulated by its size). `inject_time`
/// implements the paper's piggybacked elapsed-time estimate: messages carry
/// the accumulated time since injection so receivers can apply the
/// pull-delay threshold f. (The simulator's shared clock makes the estimate
/// exact; the paper builds it by summing per-hop delays.)
struct DataMsg final : net::Message {
  DataMsg(MsgId id, SimTime inject_time, std::size_t payload_bytes,
          bool via_tree, net::PeerDegrees degrees,
          GroupId group = kDefaultGroup)
      : net::Message(net::MsgKind::kData, kPktData),
        id(id),
        inject_time(inject_time),
        payload_bytes(payload_bytes),
        via_tree(via_tree),
        group(group),
        degrees(degrees) {}

  MsgId id;
  SimTime inject_time;
  std::size_t payload_bytes;
  bool via_tree;  ///< pushed along a tree link (vs. sent as a pull response)
  GroupId group;  ///< destination group (kDefaultGroup: single-group traffic)
  net::PeerDegrees degrees;

  /// Frame + {id 8, age f64 8, payload_len 4, via_tree 1, degrees 8}
  /// [+ group 4 when non-default] + payload.
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes + 21 + net::PeerDegrees::wire_size() +
           group_wire_size(group) + payload_bytes;
  }
  [[nodiscard]] const net::PeerDegrees* peer_degrees() const override {
    return &degrees;
  }
};

struct DigestEntry {
  MsgId id;
  SimTime inject_time;

  [[nodiscard]] static constexpr std::size_t wire_size() { return 12; }
};

/// The gossip: IDs of messages received or started since the last gossip to
/// this neighbor (minus those heard from it), plus piggybacked membership.
struct GossipDigestMsg final : net::Message {
  /// Pool-backed construction (Network::make passes the arena): the digest
  /// and member payload vectors are carved from the message pool, so a
  /// steady-state gossip performs no global-allocator calls at all.
  GossipDigestMsg(const std::shared_ptr<net::MessageArena>& arena,
                  const std::vector<DigestEntry>& entries_in,
                  const std::vector<membership::MemberEntry>& members_in,
                  net::PeerDegrees degrees, GroupId group = kDefaultGroup)
      : net::Message(net::MsgKind::kGossipDigest, kPktGossipDigest),
        entries(entries_in.begin(), entries_in.end(),
                net::PayloadAllocator<DigestEntry>(arena)),
        members(members_in.begin(), members_in.end(),
                net::PayloadAllocator<membership::MemberEntry>(arena)),
        group(group),
        degrees(degrees) {}

  /// Arena-less construction (tests, direct use): global allocator.
  GossipDigestMsg(const std::vector<DigestEntry>& entries_in,
                  const std::vector<membership::MemberEntry>& members_in,
                  net::PeerDegrees degrees, GroupId group = kDefaultGroup)
      : GossipDigestMsg(nullptr, entries_in, members_in, degrees, group) {}

  /// Wire-codec construction: empty pooled payloads, filled in place by
  /// wire::decode while parsing the frame.
  GossipDigestMsg(net::WireDecodeTag,
                  const std::shared_ptr<net::MessageArena>& arena,
                  net::PeerDegrees degrees, GroupId group = kDefaultGroup)
      : net::Message(net::MsgKind::kGossipDigest, kPktGossipDigest),
        entries(net::PayloadAllocator<DigestEntry>(arena)),
        members(net::PayloadAllocator<membership::MemberEntry>(arena)),
        group(group),
        degrees(degrees) {}

  // Arena-backed payloads: iterate in place or COPY out (copies detach to the
  // global allocator via PayloadAllocator); never move a PoolVec out.
  net::PoolVec<DigestEntry> entries;
  net::PoolVec<membership::MemberEntry> members;
  GroupId group;  ///< which group's digests these are
  net::PeerDegrees degrees;

  /// Frame + {n_entries 4, n_members 4, degrees 8}
  /// [+ group 4 when non-default] + payload tables.
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes + 8 + net::PeerDegrees::wire_size() +
           group_wire_size(group) +
           entries.size() * DigestEntry::wire_size() +
           members.size() * membership::MemberEntry::wire_size();
  }
  [[nodiscard]] const net::PeerDegrees* peer_degrees() const override {
    return &degrees;
  }
};

/// Request for messages whose IDs were learned from a gossip.
struct PullRequestMsg final : net::Message {
  /// Pool-backed single-id pull (the common case: one pull per missing
  /// message) — no temporary vector, no global-allocator call.
  PullRequestMsg(const std::shared_ptr<net::MessageArena>& arena, MsgId id,
                 net::PeerDegrees degrees, GroupId group = kDefaultGroup)
      : net::Message(net::MsgKind::kPullRequest, kPktPullRequest),
        ids(1, id, net::PayloadAllocator<MsgId>(arena)),
        group(group),
        degrees(degrees) {}

  /// Arena-less construction (tests, direct use): global allocator.
  PullRequestMsg(const std::vector<MsgId>& ids_in, net::PeerDegrees degrees,
                 GroupId group = kDefaultGroup)
      : net::Message(net::MsgKind::kPullRequest, kPktPullRequest),
        ids(ids_in.begin(), ids_in.end(), net::PayloadAllocator<MsgId>()),
        group(group),
        degrees(degrees) {}

  /// Wire-codec construction: empty pooled id list, filled in place.
  PullRequestMsg(net::WireDecodeTag,
                 const std::shared_ptr<net::MessageArena>& arena,
                 net::PeerDegrees degrees, GroupId group = kDefaultGroup)
      : net::Message(net::MsgKind::kPullRequest, kPktPullRequest),
        ids(net::PayloadAllocator<MsgId>(arena)),
        group(group),
        degrees(degrees) {}

  // Arena-backed payload: iterate in place or COPY out; never move it out.
  net::PoolVec<MsgId> ids;
  GroupId group;  ///< group whose store should answer this pull
  net::PeerDegrees degrees;

  /// Frame + {n_ids 4, degrees 8} [+ group 4 when non-default] + 8/id.
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes + 4 + net::PeerDegrees::wire_size() +
           group_wire_size(group) + ids.size() * 8;
  }
  [[nodiscard]] const net::PeerDegrees* peer_degrees() const override {
    return &degrees;
  }
};

/// One digest section of a multiplexed gossip: `count` DigestEntry rows of
/// the flat entry table belong to `group`.
struct GroupSection {
  GroupId group = kDefaultGroup;
  std::uint32_t count = 0;

  friend bool operator==(const GroupSection&, const GroupSection&) = default;
  [[nodiscard]] static constexpr std::size_t wire_size() { return 8; }
};

/// Multiplexed gossip for multi-group nodes: ONE message to a neighbor
/// carries per-group digest sections for every group both endpoints
/// subscribe to, so gossip message count stays O(fanout) per node instead of
/// O(groups x fanout). `entries` is a flat table partitioned by `sections`
/// (section i owns the next sections[i].count rows). Membership piggyback
/// stays group-agnostic — the membership plane is shared. Wire: this type is
/// version-2 only (it does not exist in the v1 grammar).
struct GroupedGossipMsg final : net::Message {
  /// Pool-backed construction (Network::make passes the arena).
  GroupedGossipMsg(const std::shared_ptr<net::MessageArena>& arena,
                   const std::vector<GroupSection>& sections_in,
                   const std::vector<DigestEntry>& entries_in,
                   const std::vector<membership::MemberEntry>& members_in,
                   net::PeerDegrees degrees)
      : net::Message(net::MsgKind::kGossipDigest, kPktGroupedGossip),
        sections(sections_in.begin(), sections_in.end(),
                 net::PayloadAllocator<GroupSection>(arena)),
        entries(entries_in.begin(), entries_in.end(),
                net::PayloadAllocator<DigestEntry>(arena)),
        members(members_in.begin(), members_in.end(),
                net::PayloadAllocator<membership::MemberEntry>(arena)),
        degrees(degrees) {}

  /// Arena-less construction (tests, direct use): global allocator.
  GroupedGossipMsg(const std::vector<GroupSection>& sections_in,
                   const std::vector<DigestEntry>& entries_in,
                   const std::vector<membership::MemberEntry>& members_in,
                   net::PeerDegrees degrees)
      : GroupedGossipMsg(nullptr, sections_in, entries_in, members_in,
                         degrees) {}

  /// Wire-codec construction: empty pooled payloads, filled in place.
  GroupedGossipMsg(net::WireDecodeTag,
                   const std::shared_ptr<net::MessageArena>& arena,
                   net::PeerDegrees degrees)
      : net::Message(net::MsgKind::kGossipDigest, kPktGroupedGossip),
        sections(net::PayloadAllocator<GroupSection>(arena)),
        entries(net::PayloadAllocator<DigestEntry>(arena)),
        members(net::PayloadAllocator<membership::MemberEntry>(arena)),
        degrees(degrees) {}

  // Arena-backed payloads: iterate in place or COPY out; never move them out.
  net::PoolVec<GroupSection> sections;
  net::PoolVec<DigestEntry> entries;  ///< flat, partitioned by `sections`
  net::PoolVec<membership::MemberEntry> members;
  net::PeerDegrees degrees;

  /// Sum of section counts must equal entries.size() for a valid message.
  [[nodiscard]] std::size_t section_entry_total() const {
    std::size_t total = 0;
    for (const GroupSection& s : sections) total += s.count;
    return total;
  }

  /// Frame + {n_sections 4, n_entries 4, n_members 4, degrees 8} + tables.
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes + 12 + net::PeerDegrees::wire_size() +
           sections.size() * GroupSection::wire_size() +
           entries.size() * DigestEntry::wire_size() +
           members.size() * membership::MemberEntry::wire_size();
  }
  [[nodiscard]] const net::PeerDegrees* peer_degrees() const override {
    return &degrees;
  }
};

}  // namespace gocast::core

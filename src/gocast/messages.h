// Dissemination wire protocol: multicast payloads, gossip digests, pulls.
#pragma once

#include <vector>

#include "common/types.h"
#include "membership/member_entry.h"
#include "net/message.h"

namespace gocast::core {

inline constexpr int kPktData = 300;
inline constexpr int kPktGossipDigest = 301;
inline constexpr int kPktPullRequest = 302;

/// A multicast message (payload is simulated by its size). `inject_time`
/// implements the paper's piggybacked elapsed-time estimate: messages carry
/// the accumulated time since injection so receivers can apply the
/// pull-delay threshold f. (The simulator's shared clock makes the estimate
/// exact; the paper builds it by summing per-hop delays.)
struct DataMsg final : net::Message {
  DataMsg(MsgId id, SimTime inject_time, std::size_t payload_bytes,
          bool via_tree, net::PeerDegrees degrees)
      : net::Message(net::MsgKind::kData, kPktData),
        id(id),
        inject_time(inject_time),
        payload_bytes(payload_bytes),
        via_tree(via_tree),
        degrees(degrees) {}

  MsgId id;
  SimTime inject_time;
  std::size_t payload_bytes;
  bool via_tree;  ///< pushed along a tree link (vs. sent as a pull response)
  net::PeerDegrees degrees;

  [[nodiscard]] std::size_t wire_size() const override {
    return 32 + payload_bytes + net::PeerDegrees::wire_size();
  }
  [[nodiscard]] const net::PeerDegrees* peer_degrees() const override {
    return &degrees;
  }
};

struct DigestEntry {
  MsgId id;
  SimTime inject_time;

  [[nodiscard]] static constexpr std::size_t wire_size() { return 12; }
};

/// The gossip: IDs of messages received or started since the last gossip to
/// this neighbor (minus those heard from it), plus piggybacked membership.
struct GossipDigestMsg final : net::Message {
  GossipDigestMsg(std::vector<DigestEntry> entries,
                  std::vector<membership::MemberEntry> members,
                  net::PeerDegrees degrees)
      : net::Message(net::MsgKind::kGossipDigest, kPktGossipDigest),
        entries(std::move(entries)),
        members(std::move(members)),
        degrees(degrees) {}

  std::vector<DigestEntry> entries;
  std::vector<membership::MemberEntry> members;
  net::PeerDegrees degrees;

  [[nodiscard]] std::size_t wire_size() const override {
    return 8 + entries.size() * DigestEntry::wire_size() +
           members.size() * membership::MemberEntry::wire_size() +
           net::PeerDegrees::wire_size();
  }
  [[nodiscard]] const net::PeerDegrees* peer_degrees() const override {
    return &degrees;
  }
};

/// Request for messages whose IDs were learned from a gossip.
struct PullRequestMsg final : net::Message {
  PullRequestMsg(std::vector<MsgId> ids, net::PeerDegrees degrees)
      : net::Message(net::MsgKind::kPullRequest, kPktPullRequest),
        ids(std::move(ids)),
        degrees(degrees) {}

  std::vector<MsgId> ids;
  net::PeerDegrees degrees;

  [[nodiscard]] std::size_t wire_size() const override {
    return 8 + ids.size() * 8 + net::PeerDegrees::wire_size();
  }
  [[nodiscard]] const net::PeerDegrees* peer_degrees() const override {
    return &degrees;
  }
};

}  // namespace gocast::core

// Tunable parameters of the GoCast dissemination layer (paper §2.1) and the
// aggregate per-node configuration.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/types.h"
#include "membership/landmark_store.h"
#include "overlay/overlay_manager.h"
#include "tree/tree_manager.h"

namespace gocast::core {

struct DisseminationParams {
  /// Gossip period t: every t seconds one overlay neighbor (round-robin)
  /// receives a summary of new message IDs. 0.1 s per the paper (suggested
  /// by Bimodal Multicast).
  SimTime gossip_period = 0.1;

  /// Pull-delay threshold f: delay pulling a message discovered via gossip
  /// until it is at least f seconds old, giving the tree time to deliver it
  /// first. 0 disables the optimization. The paper recommends the 90th
  /// percentile tree delay (0.3 s for 1,024 nodes).
  SimTime pull_delay_threshold = 0.0;

  /// Waiting period b: payload is reclaimed this long after the ID was
  /// gossiped to the last neighbor (two minutes in the paper).
  SimTime gc_payload_after = 120.0;

  /// Message records (IDs) are kept a further period to suppress duplicate
  /// deliveries of stragglers.
  SimTime gc_record_after = 240.0;

  /// How often the garbage collector sweeps the store.
  SimTime gc_sweep_period = 5.0;

  /// Simulated multicast payload size in bytes (traffic accounting only).
  std::size_t payload_bytes = 1024;

  /// False for the gossip-only baselines ("proximity overlay", "random
  /// overlay"): messages then spread exclusively via neighbor gossip pulls.
  bool use_tree = true;

  /// Membership entries piggybacked per gossip (partial-view refresh).
  std::size_t piggyback_members = 3;

  /// When true, a gossip carrying no message IDs is suppressed ("a gossip
  /// can be saved if there is no multicast message during that period").
  /// Off by default so membership piggybacking keeps flowing.
  bool skip_empty_gossips = false;

  /// The paper: "the gossip period t is dynamically tunable according to
  /// the message rate". When enabled, the period stretches toward
  /// gossip_period_max while no messages flow and snaps back to
  /// gossip_period the moment one arrives.
  bool adaptive_gossip = false;
  SimTime gossip_period_max = 1.0;
  double gossip_backoff = 1.5;

  /// An unanswered pull is re-issued after this (a lost pull request or a
  /// lost response would otherwise orphan the message: each neighbor
  /// advertises an ID only once).
  SimTime pull_retry_timeout = 2.0;
  /// Retries per pull before giving up and waiting for a fresh digest
  /// (exhaustions are counted — see DisseminationT::pull_retries_exhausted).
  int pull_max_attempts = 5;
  /// Each retry waits pull_retry_timeout * pull_retry_backoff^attempts, so a
  /// capped budget of retries covers an exponentially growing window instead
  /// of hammering a fixed period.
  double pull_retry_backoff = 1.5;
  /// Uniform multiplicative jitter on every retry timeout (a fraction of the
  /// backed-off timeout), de-synchronizing retry storms after a burst loss.
  double pull_retry_jitter = 0.25;
};

/// Protocol-level defenses against misbehaving neighbors (DESIGN.md §9).
/// Every defense is individually gated and off by default: with all flags
/// off the honest path is byte-identical to the undefended protocol.
struct DefenseParams {
  /// Maintain per-neighbor suspicion scores (raised by pull-retry timeouts
  /// and — see suspect_silent — by sustained digest silence; decayed
  /// exponentially). Implied by any of the consumers below.
  bool track_suspicion = false;

  /// On a pull-retry timeout, escalate to an alternate neighbor that also
  /// advertised the id (lowest-suspicion first) instead of re-asking the
  /// same peer.
  bool escalate_pulls = false;

  /// Round-robin gossip targeting skips neighbors above the suspicion
  /// threshold while an unsuspected neighbor is available.
  bool deprioritize_suspects = false;

  /// Crossing the suspicion threshold evicts the neighbor from the overlay
  /// (reusing the drop/replace machinery) and blacklists it as a candidate
  /// for blacklist_duration.
  bool evict_suspects = false;

  /// Sanity-check inbound digests: cap the entries processed per digest,
  /// reject entries with future inject times, and reject advertisements of
  /// our own unsent ids — each offense raises the sender's suspicion.
  bool digest_sanity = false;

  /// Data-silence watch on the tree parent: a parent is obligated to push
  /// every message down, so one that pushes nothing for a whole
  /// silence_window while deliveries keep arriving by other paths carries
  /// the observable signature of a mute forwarder. (Digest emptiness is NOT
  /// used as evidence: a neighbor that legitimately learns everything from
  /// us — e.g. a tree child — sends empty digests forever.)
  bool suspect_silent = false;

  /// Challenge pulls: every audit_every-th gossip to a neighbor also sends
  /// a spot-check pull for a message old enough (audit_min_age) that every
  /// honest live node must hold it, yet young enough (audit_max_age) that
  /// its payload is still retained. Honest peers answer at the cost of one
  /// aborted duplicate transfer; mute forwarders and digest liars refuse
  /// all pulls for foreign ids, time out, and take audit_increment of
  /// suspicion (heavier than a routine offense). This makes both behaviors
  /// observable from every neighbor's vantage point, not only from nodes
  /// that happen to pull from them. Note: fresh joiners / recently healed
  /// partitions legitimately lack old messages, so deployments with heavy
  /// churn should keep this off or raise the eviction threshold.
  bool audit_pulls = false;

  double suspicion_increment = 1.0;      ///< added per offense
  double suspicion_decay_halflife = 30.0;  ///< seconds for a score to halve
  double suspicion_threshold = 2.5;      ///< deprioritize / evict above this
  SimTime blacklist_duration = 600.0;    ///< candidate ban after eviction
  std::size_t max_digest_entries = 128;  ///< digest_sanity per-message cap
  /// suspect_silent: the parent is "silent" once it has pushed nothing for
  /// this long while deliveries kept arriving along other paths.
  SimTime silence_window = 2.0;
  /// audit_pulls tunables (see the flag above).
  std::size_t audit_every = 4;
  SimTime audit_min_age = 5.0;
  SimTime audit_max_age = 30.0;
  double audit_increment = 1.25;

  [[nodiscard]] bool suspicion_enabled() const {
    return track_suspicion || escalate_pulls || deprioritize_suspects ||
           evict_suspects || digest_sanity || suspect_silent || audit_pulls;
  }
};

/// Everything one GoCast node needs.
struct GoCastConfig {
  overlay::OverlayParams overlay;
  tree::TreeParams tree;
  DisseminationParams dissemination;

  /// Partial-view capacity (bounded member list).
  std::size_t view_capacity = 256;

  /// Partition-heal recovery (extension; see DESIGN.md §7 and
  /// bench/ext_partition). When a node's tree root cedes to a different root
  /// — the signature of a healed partition — the node re-queues the IDs of
  /// messages younger than the payload waiting period b for one more round
  /// of gossip. Nodes on the other side of the former partition have never
  /// seen those IDs (gossip advertises an ID to each neighbor only once, and
  /// during the partition no link crossed the cut), so without
  /// re-advertisement recovery depends entirely on fresh cross-partition
  /// links happening to carry later digests. Off by default: it adds digest
  /// traffic after root changes and is not part of the paper's protocol.
  bool readvertise_on_heal = false;

  /// Defenses against adversarial neighbors (all off by default; see
  /// DefenseParams and DESIGN.md §9).
  DefenseParams defense;

  /// Multi-group digest multiplexing (DESIGN.md §10): when a node subscribes
  /// to several groups, ONE grouped gossip per period carries per-group
  /// digest sections for every group it shares with the target neighbor, so
  /// gossip message count stays O(fanout) instead of O(groups x fanout).
  /// Only consulted once enable_multigroup() is called; single-group nodes
  /// never multiplex and stay byte-identical to the pre-multigroup protocol.
  bool multiplex_gossip = true;

  /// Multi-group link keeper: how often a node checks that each subscribed
  /// extra group still has co-subscribed overlay neighbors, requesting one
  /// link per sparse group per check. Keeps every per-group subgraph
  /// connected while node-global overlay maintenance churns links.
  SimTime group_link_period = 2.0;
  /// Minimum co-subscribed neighbors per extra group before the keeper asks
  /// for more.
  std::size_t group_min_neighbors = 2;

  /// Global landmark node ids used for triangulation estimates.
  std::vector<NodeId> landmarks;

  /// Deployment-wide landmark-vector interning store shared by every node's
  /// partial view (System fills this in; null makes each node intern
  /// privately, which is correct but saves nothing).
  std::shared_ptr<membership::LandmarkStore> landmark_store;
};

}  // namespace gocast::core

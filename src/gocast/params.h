// Tunable parameters of the GoCast dissemination layer (paper §2.1) and the
// aggregate per-node configuration.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "overlay/overlay_manager.h"
#include "tree/tree_manager.h"

namespace gocast::core {

struct DisseminationParams {
  /// Gossip period t: every t seconds one overlay neighbor (round-robin)
  /// receives a summary of new message IDs. 0.1 s per the paper (suggested
  /// by Bimodal Multicast).
  SimTime gossip_period = 0.1;

  /// Pull-delay threshold f: delay pulling a message discovered via gossip
  /// until it is at least f seconds old, giving the tree time to deliver it
  /// first. 0 disables the optimization. The paper recommends the 90th
  /// percentile tree delay (0.3 s for 1,024 nodes).
  SimTime pull_delay_threshold = 0.0;

  /// Waiting period b: payload is reclaimed this long after the ID was
  /// gossiped to the last neighbor (two minutes in the paper).
  SimTime gc_payload_after = 120.0;

  /// Message records (IDs) are kept a further period to suppress duplicate
  /// deliveries of stragglers.
  SimTime gc_record_after = 240.0;

  /// How often the garbage collector sweeps the store.
  SimTime gc_sweep_period = 5.0;

  /// Simulated multicast payload size in bytes (traffic accounting only).
  std::size_t payload_bytes = 1024;

  /// False for the gossip-only baselines ("proximity overlay", "random
  /// overlay"): messages then spread exclusively via neighbor gossip pulls.
  bool use_tree = true;

  /// Membership entries piggybacked per gossip (partial-view refresh).
  std::size_t piggyback_members = 3;

  /// When true, a gossip carrying no message IDs is suppressed ("a gossip
  /// can be saved if there is no multicast message during that period").
  /// Off by default so membership piggybacking keeps flowing.
  bool skip_empty_gossips = false;

  /// The paper: "the gossip period t is dynamically tunable according to
  /// the message rate". When enabled, the period stretches toward
  /// gossip_period_max while no messages flow and snaps back to
  /// gossip_period the moment one arrives.
  bool adaptive_gossip = false;
  SimTime gossip_period_max = 1.0;
  double gossip_backoff = 1.5;

  /// An unanswered pull is re-issued after this (a lost pull request or a
  /// lost response would otherwise orphan the message: each neighbor
  /// advertises an ID only once).
  SimTime pull_retry_timeout = 2.0;
  /// Retries per pull before giving up and waiting for a fresh digest.
  int pull_max_attempts = 5;
};

/// Everything one GoCast node needs.
struct GoCastConfig {
  overlay::OverlayParams overlay;
  tree::TreeParams tree;
  DisseminationParams dissemination;

  /// Partial-view capacity (bounded member list).
  std::size_t view_capacity = 256;

  /// Partition-heal recovery (extension; see DESIGN.md §7 and
  /// bench/ext_partition). When a node's tree root cedes to a different root
  /// — the signature of a healed partition — the node re-queues the IDs of
  /// messages younger than the payload waiting period b for one more round
  /// of gossip. Nodes on the other side of the former partition have never
  /// seen those IDs (gossip advertises an ID to each neighbor only once, and
  /// during the partition no link crossed the cut), so without
  /// re-advertisement recovery depends entirely on fresh cross-partition
  /// links happening to carry later digests. Off by default: it adds digest
  /// traffic after root changes and is not part of the paper's protocol.
  bool readvertise_on_heal = false;

  /// Global landmark node ids used for triangulation estimates.
  std::vector<NodeId> landmarks;
};

}  // namespace gocast::core

#include "gocast/node.h"

#include "common/assert.h"
#include "common/logging.h"
#include "overlay/messages.h"
#include "runtime/realtime_runtime.h"
#include "runtime/udp_runtime.h"
#include "tree/messages.h"

namespace gocast::core {

namespace {
GoCastConfig normalize(GoCastConfig config) {
  // Gossip-only baselines have no tree; keep the flags consistent.
  if (!config.dissemination.use_tree) config.tree.enabled = false;
  return config;
}

std::shared_ptr<const GoCastConfig> normalize_shared(
    std::shared_ptr<const GoCastConfig> config) {
  // Copy only when the flags are actually inconsistent; a deployment's
  // shared config passes through untouched.
  if (!config->dissemination.use_tree && config->tree.enabled) {
    return std::make_shared<const GoCastConfig>(normalize(*config));
  }
  return config;
}
}  // namespace

template <runtime::Context RT>
GoCastNodeT<RT>::GoCastNodeT(NodeId id, RT rt, GoCastConfig config, Rng rng)
    : GoCastNodeT(id, rt,
                  std::make_shared<const GoCastConfig>(
                      normalize(std::move(config))),
                  std::move(rng)) {}

template <runtime::Context RT>
GoCastNodeT<RT>::GoCastNodeT(NodeId id, RT rt,
                             std::shared_ptr<const GoCastConfig> config,
                             Rng rng)
    : id_(id),
      rt_(rt),
      config_(normalize_shared(std::move(config))),
      view_(id, config_->view_capacity, rng.fork("view"),
            config_->landmark_store),
      overlay_(id, rt_, view_, config_->overlay, rng.fork("overlay")),
      tree_(id, rt_, overlay_, config_->tree),
      dissemination_(id, rt_, view_, overlay_,
                     config_->tree.enabled ? &tree_ : nullptr,
                     config_->dissemination, config_->defense,
                     rng.fork("dissemination")),
      own_landmarks_(membership::empty_landmarks()) {
  overlay_.add_listener(&tree_);
  overlay_.add_listener(&dissemination_);
  overlay_.set_behavior(&behavior_);
  dissemination_.set_behavior(&behavior_);
  if (config_->readvertise_on_heal) {
    tree_.set_root_change_hook([this](NodeId old_root, NodeId new_root) {
      (void)old_root;
      (void)new_root;
      dissemination_.readvertise_recent();
    });
  }
  rt_.set_endpoint(id_, this);
}

template <runtime::Context RT>
void GoCastNodeT<RT>::start(SimTime stagger) {
  overlay_.start(stagger);
  tree_.start(stagger);
  dissemination_.start(stagger);
  measure_landmarks();
}

template <runtime::Context RT>
void GoCastNodeT<RT>::stop() {
  overlay_.stop();
  tree_.stop();
  dissemination_.stop();
}

template <runtime::Context RT>
void GoCastNodeT<RT>::freeze() {
  overlay_.freeze();
  tree_.freeze();
}

template <runtime::Context RT>
void GoCastNodeT<RT>::kill() {
  rt_.fail_node(id_);
  stop();
}

template <runtime::Context RT>
void GoCastNodeT<RT>::join_via(NodeId bootstrap) {
  GOCAST_ASSERT(bootstrap != id_);
  rt_.send(id_, bootstrap, rt_.template make<overlay::JoinRequestMsg>());
}

template <runtime::Context RT>
void GoCastNodeT<RT>::seed_view(
    std::span<const membership::MemberEntry> entries) {
  view_.integrate(entries);
}

template <runtime::Context RT>
void GoCastNodeT<RT>::bootstrap_link(NodeId peer, overlay::LinkKind kind) {
  overlay_.bootstrap_link(peer, kind);
}

template <runtime::Context RT>
void GoCastNodeT<RT>::become_root() {
  tree_.become_root();
}

template <runtime::Context RT>
MsgId GoCastNodeT<RT>::multicast(std::size_t payload_bytes) {
  GOCAST_ASSERT_MSG(rt_.alive(id_), "dead node starting a multicast");
  return dissemination_.multicast(payload_bytes);
}

template <runtime::Context RT>
void GoCastNodeT<RT>::set_delivery_hook(DeliveryHook hook) {
  dissemination_.set_delivery_hook(std::move(hook));
}

template <runtime::Context RT>
void GoCastNodeT<RT>::measure_landmarks() {
  const auto& landmarks = config_->landmarks;
  for (std::size_t i = 0;
       i < landmarks.size() && i < membership::kLandmarkSlots; ++i) {
    NodeId lm = landmarks[i];
    if (lm == id_) {
      own_landmarks_[i] = 0.0f;
      overlay_.set_own_landmarks(own_landmarks_);
      dissemination_.set_own_landmarks(own_landmarks_);
      continue;
    }
    overlay_.measure_rtt(lm, [this, i](SimTime rtt) {
      own_landmarks_[i] = static_cast<float>(rtt);
      overlay_.set_own_landmarks(own_landmarks_);
      dissemination_.set_own_landmarks(own_landmarks_);
    });
  }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

template <runtime::Context RT>
void GoCastNodeT<RT>::handle_message(NodeId from, const net::MessagePtr& msg) {
  if (behavior_.processing_delay > 0.0) {
    // Slow node: a CPU-bound receive path pays the processing delay before
    // any protocol logic runs. (Capture fits the engine's inline budget:
    // this + from + one MessagePtr.)
    rt_.schedule_after(behavior_.processing_delay, [this, from, msg] {
      if (!rt_.alive(id_)) return;
      dispatch_message(from, msg);
    });
    return;
  }
  dispatch_message(from, msg);
}

template <runtime::Context RT>
void GoCastNodeT<RT>::dispatch_message(NodeId from, const net::MessagePtr& msg) {
  if (const net::PeerDegrees* degrees = msg->peer_degrees()) {
    overlay_.note_peer_degrees(from, *degrees);
  }

  switch (msg->packet_type()) {
    case overlay::kPktNeighborRequest:
      overlay_.on_neighbor_request(
          from, static_cast<const overlay::NeighborRequestMsg&>(*msg));
      return;
    case overlay::kPktNeighborAccept:
      overlay_.on_neighbor_accept(
          from, static_cast<const overlay::NeighborAcceptMsg&>(*msg));
      return;
    case overlay::kPktNeighborReject:
      overlay_.on_neighbor_reject(
          from, static_cast<const overlay::NeighborRejectMsg&>(*msg));
      return;
    case overlay::kPktNeighborDrop:
      overlay_.on_neighbor_drop(from,
                                static_cast<const overlay::NeighborDropMsg&>(*msg));
      return;
    case overlay::kPktLinkTransfer:
      overlay_.on_link_transfer(from,
                                static_cast<const overlay::LinkTransferMsg&>(*msg));
      return;
    case overlay::kPktPing:
      overlay_.on_ping(from, static_cast<const overlay::PingMsg&>(*msg));
      return;
    case overlay::kPktPong:
      overlay_.on_pong(from, static_cast<const overlay::PongMsg&>(*msg));
      return;
    case overlay::kPktJoinRequest:
      on_join_request(from);
      return;
    case overlay::kPktJoinReply:
      on_join_reply(static_cast<const overlay::JoinReplyMsg&>(*msg));
      return;
    case tree::kPktHeartbeat:
      tree_.on_heartbeat(from, static_cast<const tree::HeartbeatMsg&>(*msg));
      return;
    case tree::kPktChildJoin:
      tree_.on_child_join(from, static_cast<const tree::ChildJoinMsg&>(*msg));
      return;
    case tree::kPktChildLeave:
      tree_.on_child_leave(from, static_cast<const tree::ChildLeaveMsg&>(*msg));
      return;
    case kPktData:
      dissemination_.on_data(from, static_cast<const DataMsg&>(*msg));
      return;
    case kPktGossipDigest:
      dissemination_.on_gossip_digest(from,
                                      static_cast<const GossipDigestMsg&>(*msg));
      return;
    case kPktPullRequest:
      dissemination_.on_pull_request(from,
                                     static_cast<const PullRequestMsg&>(*msg));
      return;
    default:
      GOCAST_WARN("node " << id_ << " ignoring unknown packet type "
                          << msg->packet_type() << " from " << from);
  }
}

template <runtime::Context RT>
void GoCastNodeT<RT>::handle_send_failure(NodeId to, const net::MessagePtr& msg) {
  (void)msg;
  overlay_.on_peer_failure(to);
}

template <runtime::Context RT>
void GoCastNodeT<RT>::on_join_request(NodeId from) {
  std::vector<membership::MemberEntry> members = view_.sample(64);
  membership::MemberEntry self_entry;
  self_entry.id = id_;
  self_entry.landmark_rtt = own_landmarks_;
  self_entry.heard_at = rt_.now();
  members.push_back(self_entry);
  rt_.send(id_, from,
           rt_.template make<overlay::JoinReplyMsg>(std::move(members)));
}

template <runtime::Context RT>
void GoCastNodeT<RT>::on_join_reply(const overlay::JoinReplyMsg& msg) {
  view_.integrate(msg.members);
}

template class GoCastNodeT<runtime::SimRuntime>;
template class GoCastNodeT<runtime::RealtimeContext>;
template class GoCastNodeT<runtime::UdpContext>;

}  // namespace gocast::core

#include "gocast/node.h"

#include "common/assert.h"
#include "common/logging.h"
#include "overlay/messages.h"
#include "tree/messages.h"

namespace gocast::core {

namespace {
GoCastConfig normalize(GoCastConfig config) {
  // Gossip-only baselines have no tree; keep the flags consistent.
  if (!config.dissemination.use_tree) config.tree.enabled = false;
  return config;
}
}  // namespace

GoCastNode::GoCastNode(NodeId id, net::Network& network, GoCastConfig config,
                       Rng rng)
    : id_(id),
      network_(network),
      config_(normalize(std::move(config))),
      view_(id, config_.view_capacity, rng.fork("view")),
      overlay_(id, network, view_, config_.overlay, rng.fork("overlay")),
      tree_(id, network, overlay_, config_.tree),
      dissemination_(id, network, view_, overlay_,
                     config_.tree.enabled ? &tree_ : nullptr,
                     config_.dissemination, rng.fork("dissemination")),
      own_landmarks_(membership::empty_landmarks()) {
  overlay_.add_listener(&tree_);
  overlay_.add_listener(&dissemination_);
  network_.set_endpoint(id_, this);
}

void GoCastNode::start(SimTime stagger) {
  overlay_.start(stagger);
  tree_.start(stagger);
  dissemination_.start(stagger);
  measure_landmarks();
}

void GoCastNode::stop() {
  overlay_.stop();
  tree_.stop();
  dissemination_.stop();
}

void GoCastNode::freeze() {
  overlay_.freeze();
  tree_.freeze();
}

void GoCastNode::kill() {
  network_.fail_node(id_);
  stop();
}

void GoCastNode::join_via(NodeId bootstrap) {
  GOCAST_ASSERT(bootstrap != id_);
  network_.send(id_, bootstrap, network_.make<overlay::JoinRequestMsg>());
}

void GoCastNode::seed_view(std::span<const membership::MemberEntry> entries) {
  view_.integrate(entries);
}

void GoCastNode::bootstrap_link(NodeId peer, overlay::LinkKind kind) {
  overlay_.bootstrap_link(peer, kind);
}

void GoCastNode::become_root() { tree_.become_root(); }

MsgId GoCastNode::multicast(std::size_t payload_bytes) {
  GOCAST_ASSERT_MSG(network_.alive(id_), "dead node starting a multicast");
  return dissemination_.multicast(payload_bytes);
}

void GoCastNode::set_delivery_hook(DeliveryHook hook) {
  dissemination_.set_delivery_hook(std::move(hook));
}

void GoCastNode::measure_landmarks() {
  const auto& landmarks = config_.landmarks;
  for (std::size_t i = 0;
       i < landmarks.size() && i < membership::kLandmarkSlots; ++i) {
    NodeId lm = landmarks[i];
    if (lm == id_) {
      own_landmarks_[i] = 0.0f;
      overlay_.set_own_landmarks(own_landmarks_);
      dissemination_.set_own_landmarks(own_landmarks_);
      continue;
    }
    overlay_.measure_rtt(lm, [this, i](SimTime rtt) {
      own_landmarks_[i] = static_cast<float>(rtt);
      overlay_.set_own_landmarks(own_landmarks_);
      dissemination_.set_own_landmarks(own_landmarks_);
    });
  }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void GoCastNode::handle_message(NodeId from, const net::MessagePtr& msg) {
  if (const net::PeerDegrees* degrees = msg->peer_degrees()) {
    overlay_.note_peer_degrees(from, *degrees);
  }

  switch (msg->packet_type()) {
    case overlay::kPktNeighborRequest:
      overlay_.on_neighbor_request(
          from, static_cast<const overlay::NeighborRequestMsg&>(*msg));
      return;
    case overlay::kPktNeighborAccept:
      overlay_.on_neighbor_accept(
          from, static_cast<const overlay::NeighborAcceptMsg&>(*msg));
      return;
    case overlay::kPktNeighborReject:
      overlay_.on_neighbor_reject(
          from, static_cast<const overlay::NeighborRejectMsg&>(*msg));
      return;
    case overlay::kPktNeighborDrop:
      overlay_.on_neighbor_drop(from,
                                static_cast<const overlay::NeighborDropMsg&>(*msg));
      return;
    case overlay::kPktLinkTransfer:
      overlay_.on_link_transfer(from,
                                static_cast<const overlay::LinkTransferMsg&>(*msg));
      return;
    case overlay::kPktPing:
      overlay_.on_ping(from, static_cast<const overlay::PingMsg&>(*msg));
      return;
    case overlay::kPktPong:
      overlay_.on_pong(from, static_cast<const overlay::PongMsg&>(*msg));
      return;
    case overlay::kPktJoinRequest:
      on_join_request(from);
      return;
    case overlay::kPktJoinReply:
      on_join_reply(static_cast<const overlay::JoinReplyMsg&>(*msg));
      return;
    case tree::kPktHeartbeat:
      tree_.on_heartbeat(from, static_cast<const tree::HeartbeatMsg&>(*msg));
      return;
    case tree::kPktChildJoin:
      tree_.on_child_join(from, static_cast<const tree::ChildJoinMsg&>(*msg));
      return;
    case tree::kPktChildLeave:
      tree_.on_child_leave(from, static_cast<const tree::ChildLeaveMsg&>(*msg));
      return;
    case kPktData:
      dissemination_.on_data(from, static_cast<const DataMsg&>(*msg));
      return;
    case kPktGossipDigest:
      dissemination_.on_gossip_digest(from,
                                      static_cast<const GossipDigestMsg&>(*msg));
      return;
    case kPktPullRequest:
      dissemination_.on_pull_request(from,
                                     static_cast<const PullRequestMsg&>(*msg));
      return;
    default:
      GOCAST_WARN("node " << id_ << " ignoring unknown packet type "
                          << msg->packet_type() << " from " << from);
  }
}

void GoCastNode::handle_send_failure(NodeId to, const net::MessagePtr& msg) {
  (void)msg;
  overlay_.on_peer_failure(to);
}

void GoCastNode::on_join_request(NodeId from) {
  std::vector<membership::MemberEntry> members = view_.sample(64);
  membership::MemberEntry self_entry;
  self_entry.id = id_;
  self_entry.landmark_rtt = own_landmarks_;
  self_entry.heard_at = network_.engine().now();
  members.push_back(self_entry);
  network_.send(id_, from,
                network_.make<overlay::JoinReplyMsg>(std::move(members)));
}

void GoCastNode::on_join_reply(const overlay::JoinReplyMsg& msg) {
  view_.integrate(msg.members);
}

}  // namespace gocast::core

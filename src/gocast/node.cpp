#include "gocast/node.h"

#include <algorithm>

#include "common/assert.h"
#include "common/logging.h"
#include "overlay/messages.h"
#include "runtime/realtime_runtime.h"
#include "runtime/udp_runtime.h"
#include "tree/messages.h"

namespace gocast::core {

namespace {
GoCastConfig normalize(GoCastConfig config) {
  // Gossip-only baselines have no tree; keep the flags consistent.
  if (!config.dissemination.use_tree) config.tree.enabled = false;
  return config;
}

std::shared_ptr<const GoCastConfig> normalize_shared(
    std::shared_ptr<const GoCastConfig> config) {
  // Copy only when the flags are actually inconsistent; a deployment's
  // shared config passes through untouched.
  if (!config->dissemination.use_tree && config->tree.enabled) {
    return std::make_shared<const GoCastConfig>(normalize(*config));
  }
  return config;
}
}  // namespace

template <runtime::Context RT>
GoCastNodeT<RT>::GoCastNodeT(NodeId id, RT rt, GoCastConfig config, Rng rng)
    : GoCastNodeT(id, rt,
                  std::make_shared<const GoCastConfig>(
                      normalize(std::move(config))),
                  std::move(rng)) {}

template <runtime::Context RT>
GoCastNodeT<RT>::GoCastNodeT(NodeId id, RT rt,
                             std::shared_ptr<const GoCastConfig> config,
                             Rng rng)
    : id_(id),
      rt_(rt),
      config_(normalize_shared(std::move(config))),
      view_(id, config_->view_capacity, rng.fork("view"),
            config_->landmark_store),
      overlay_(id, rt_, view_, config_->overlay, rng.fork("overlay")),
      tree_(id, rt_, overlay_, config_->tree),
      dissemination_(id, rt_, view_, overlay_,
                     config_->tree.enabled ? &tree_ : nullptr,
                     config_->dissemination, config_->defense,
                     rng.fork("dissemination"), kDefaultGroup, &suspicion_),
      own_landmarks_(membership::empty_landmarks()),
      group_rng_(rng.fork("multigroup")) {
  overlay_.add_listener(&tree_);
  overlay_.add_listener(&dissemination_);
  overlay_.set_behavior(&behavior_);
  dissemination_.set_behavior(&behavior_);
  if (config_->readvertise_on_heal) {
    tree_.set_root_change_hook([this](NodeId old_root, NodeId new_root) {
      (void)old_root;
      (void)new_root;
      dissemination_.readvertise_recent();
    });
  }
  rt_.set_endpoint(id_, this);
}

template <runtime::Context RT>
void GoCastNodeT<RT>::start(SimTime stagger) {
  started_ = true;
  start_stagger_ = stagger;
  overlay_.start(stagger);
  tree_.start(stagger);
  dissemination_.start(stagger);
  for (GroupId g : extra_ids_) {
    GroupState* st = find_group(g);
    if (!st->diss.active()) continue;  // joined then left before start
    st->tree.start(stagger);
    st->diss.start(stagger);
  }
  if (multigroup_ && config_->multiplex_gossip) {
    mux_timer_ = std::make_unique<runtime::PeriodicTimer<RT>>(
        rt_, config_->dissemination.gossip_period, [this] { on_mux_timer(); });
    mux_timer_->start(stagger + config_->dissemination.gossip_period);
  }
  if (multigroup_) {
    keeper_timer_ = std::make_unique<runtime::PeriodicTimer<RT>>(
        rt_, config_->group_link_period, [this] { on_keeper_timer(); });
    keeper_timer_->start(stagger + config_->group_link_period);
  }
  measure_landmarks();
}

template <runtime::Context RT>
void GoCastNodeT<RT>::stop() {
  overlay_.stop();
  tree_.stop();
  dissemination_.stop();
  for (GroupId g : extra_ids_) {
    GroupState* st = find_group(g);
    st->tree.stop();
    st->diss.stop();
  }
  if (mux_timer_) mux_timer_->stop();
  if (keeper_timer_) keeper_timer_->stop();
}

template <runtime::Context RT>
void GoCastNodeT<RT>::freeze() {
  overlay_.freeze();
  tree_.freeze();
  for (GroupId g : extra_ids_) find_group(g)->tree.freeze();
}

template <runtime::Context RT>
void GoCastNodeT<RT>::kill() {
  rt_.fail_node(id_);
  stop();
}

template <runtime::Context RT>
void GoCastNodeT<RT>::join_via(NodeId bootstrap) {
  GOCAST_ASSERT(bootstrap != id_);
  rt_.send(id_, bootstrap, rt_.template make<overlay::JoinRequestMsg>());
}

template <runtime::Context RT>
void GoCastNodeT<RT>::seed_view(
    std::span<const membership::MemberEntry> entries) {
  view_.integrate(entries);
}

template <runtime::Context RT>
void GoCastNodeT<RT>::bootstrap_link(NodeId peer, overlay::LinkKind kind) {
  overlay_.bootstrap_link(peer, kind);
}

template <runtime::Context RT>
void GoCastNodeT<RT>::become_root() {
  tree_.become_root();
}

template <runtime::Context RT>
MsgId GoCastNodeT<RT>::multicast(std::size_t payload_bytes) {
  GOCAST_ASSERT_MSG(rt_.alive(id_), "dead node starting a multicast");
  return dissemination_.multicast(payload_bytes);
}

template <runtime::Context RT>
void GoCastNodeT<RT>::set_delivery_hook(DeliveryHook hook) {
  delivery_hook_ = std::move(hook);
  dissemination_.set_delivery_hook(delivery_hook_);
  for (GroupId g : extra_ids_) {
    find_group(g)->diss.set_delivery_hook(delivery_hook_);
  }
}

// ---------------------------------------------------------------------------
// Multi-group (DESIGN.md §10)
// ---------------------------------------------------------------------------

template <runtime::Context RT>
void GoCastNodeT<RT>::enable_multigroup(
    std::shared_ptr<const GroupDirectory> directory) {
  GOCAST_ASSERT_MSG(!started_, "enable_multigroup must precede start()");
  GOCAST_ASSERT(directory != nullptr);
  multigroup_ = true;
  directory_ = std::move(directory);
  if (config_->multiplex_gossip) {
    // The node-level grouped gossip replaces every per-group gossip timer,
    // including the base group's.
    dissemination_.set_external_gossip(true);
  }
}

template <runtime::Context RT>
typename GoCastNodeT<RT>::GroupState* GoCastNodeT<RT>::find_group(GroupId g) {
  auto it = std::lower_bound(
      extra_groups_.begin(), extra_groups_.end(), g,
      [](const auto& entry, GroupId key) { return entry.first < key; });
  if (it == extra_groups_.end() || it->first != g) return nullptr;
  return it->second.get();
}

template <runtime::Context RT>
const typename GoCastNodeT<RT>::GroupState* GoCastNodeT<RT>::find_group(
    GroupId g) const {
  auto it = std::lower_bound(
      extra_groups_.begin(), extra_groups_.end(), g,
      [](const auto& entry, GroupId key) { return entry.first < key; });
  if (it == extra_groups_.end() || it->first != g) return nullptr;
  return it->second.get();
}

template <runtime::Context RT>
void GoCastNodeT<RT>::join_group(GroupId g) {
  GOCAST_ASSERT_MSG(multigroup_, "join_group requires enable_multigroup");
  GOCAST_ASSERT_MSG(g != kDefaultGroup, "every node is in group 0 already");
  if (GroupState* st = find_group(g)) {
    // Rejoin after a leave: reuse the deactivated state.
    if (!st->diss.active()) {
      st->tree.rejoin(start_stagger_);
      st->diss.reactivate(start_stagger_);
      refresh_group_peers(g, *st);
    }
    return;
  }
  auto st = std::make_unique<GroupState>(id_, rt_, view_, overlay_, *config_,
                                         g, &suspicion_,
                                         group_rng_.fork(std::uint64_t{g}));
  GroupState* raw = st.get();
  extra_groups_.insert(
      std::lower_bound(
          extra_groups_.begin(), extra_groups_.end(), g,
          [](const auto& entry, GroupId key) { return entry.first < key; }),
      std::make_pair(g, std::move(st)));
  extra_ids_.insert(std::upper_bound(extra_ids_.begin(), extra_ids_.end(), g),
                    g);
  if (config_->multiplex_gossip) raw->diss.set_external_gossip(true);
  raw->diss.set_behavior(&behavior_);
  if (delivery_hook_) raw->diss.set_delivery_hook(delivery_hook_);
  raw->diss.set_own_landmarks(own_landmarks_);
  overlay_.add_listener(&raw->tree);
  // The group's gossip rotation is NOT overlay-listener-driven: extra
  // groups pick peers from the membership plane (refresh_group_peers), so
  // sparse groups stay gossip-connected even when the shared overlay holds
  // no co-subscribed link. The keeper timer re-refreshes periodically.
  refresh_group_peers(g, *raw);
  if (started_) {
    raw->tree.start(start_stagger_);
    raw->diss.start(start_stagger_);
  }
}

template <runtime::Context RT>
void GoCastNodeT<RT>::leave_group(GroupId g) {
  GroupState* st = find_group(g);
  if (st == nullptr || !st->diss.active()) return;
  st->tree.leave();
  st->diss.deactivate();
}

template <runtime::Context RT>
bool GoCastNodeT<RT>::in_group(GroupId g) const {
  if (g == kDefaultGroup) return true;
  const GroupState* st = find_group(g);
  return st != nullptr && st->diss.active();
}

template <runtime::Context RT>
MsgId GoCastNodeT<RT>::multicast_in(GroupId g, std::size_t payload_bytes) {
  GOCAST_ASSERT_MSG(rt_.alive(id_), "dead node starting a multicast");
  if (g == kDefaultGroup) return dissemination_.multicast(payload_bytes);
  GroupState* st = find_group(g);
  GOCAST_ASSERT_MSG(st != nullptr && st->diss.active(),
                    "multicast_in on an unsubscribed group");
  return st->diss.multicast(payload_bytes);
}

template <runtime::Context RT>
void GoCastNodeT<RT>::become_root_in(GroupId g) {
  if (g == kDefaultGroup) {
    tree_.become_root();
    return;
  }
  GroupState* st = find_group(g);
  GOCAST_ASSERT_MSG(st != nullptr, "become_root_in on an unjoined group");
  st->tree.become_root();
}

template <runtime::Context RT>
DisseminationT<RT>* GoCastNodeT<RT>::dissemination_for(GroupId g) {
  if (g == kDefaultGroup) return &dissemination_;
  GroupState* st = find_group(g);
  return st == nullptr ? nullptr : &st->diss;
}

template <runtime::Context RT>
const DisseminationT<RT>* GoCastNodeT<RT>::dissemination_for(GroupId g) const {
  if (g == kDefaultGroup) return &dissemination_;
  const GroupState* st = find_group(g);
  return st == nullptr ? nullptr : &st->diss;
}

template <runtime::Context RT>
tree::TreeManagerT<RT>* GoCastNodeT<RT>::tree_for(GroupId g) {
  if (g == kDefaultGroup) return &tree_;
  GroupState* st = find_group(g);
  return st == nullptr ? nullptr : &st->tree;
}

template <runtime::Context RT>
std::uint64_t GoCastNodeT<RT>::gossip_messages_sent() const {
  std::uint64_t total = dissemination_.gossips_sent() + mux_gossips_sent_;
  for (GroupId g : extra_ids_) total += find_group(g)->diss.gossips_sent();
  return total;
}

template <runtime::Context RT>
std::uint64_t GoCastNodeT<RT>::deliveries_count() const {
  std::uint64_t total = dissemination_.deliveries();
  for (GroupId g : extra_ids_) total += find_group(g)->diss.deliveries();
  return total;
}

template <runtime::Context RT>
std::uint64_t GoCastNodeT<RT>::duplicates_count() const {
  std::uint64_t total = dissemination_.duplicates();
  for (GroupId g : extra_ids_) total += find_group(g)->diss.duplicates();
  return total;
}

template <runtime::Context RT>
void GoCastNodeT<RT>::append_group_memory(
    std::vector<std::pair<GroupId, std::size_t>>& out) const {
  for (GroupId g : extra_ids_) {
    const GroupState* st = find_group(g);
    out.emplace_back(g, st->diss.memory_bytes() + st->tree.memory_bytes());
  }
}

template <runtime::Context RT>
void GoCastNodeT<RT>::on_mux_timer() {
  // One grouped gossip per period — the O(fanout) invariant. The rotation
  // unions the overlay neighbors (group 0's audience) with every active
  // extra group's peer set, so each peer periodically receives one message
  // carrying a digest section for every group it shares with us. Groups
  // trade a longer per-peer gossip interval (rotation is wider) for a flat
  // per-node message rate; pending digests simply accumulate until the
  // peer's turn comes around.
  mux_rotation_.clear();
  for (NodeId peer : overlay_.neighbor_ids()) mux_rotation_.push_back(peer);
  for (GroupId g : extra_ids_) {
    GroupState* st = find_group(g);
    if (!st->diss.active()) continue;
    for (NodeId peer : st->diss.gossip_peers()) {
      if (std::find(mux_rotation_.begin(), mux_rotation_.end(), peer) ==
          mux_rotation_.end()) {
        mux_rotation_.push_back(peer);
      }
    }
  }
  if (mux_rotation_.empty()) return;
  if (mux_idx_ >= mux_rotation_.size()) mux_idx_ = 0;
  const NodeId target = mux_rotation_[mux_idx_];
  mux_idx_ = (mux_idx_ + 1) % mux_rotation_.size();

  std::vector<GroupSection> sections;
  std::vector<DigestEntry> entries;
  auto add_section = [&](GroupId g, DisseminationT<RT>& diss) {
    if (!diss.active()) return;
    // A group's section is useful only when the target co-subscribes; a
    // section for a group the target is not in would be dropped unread.
    if (g != kDefaultGroup && !directory_->subscribed(target, g)) return;
    const std::vector<DigestEntry>& fresh = diss.collect_digest_for(target);
    // Extra groups keep a zero-entry section as a contact beacon: the
    // receiver reciprocates by folding us into its peer set (see
    // note_group_contact), which is what gives unsampled members in-edges.
    // Group 0's section is only worth its bytes when it carries entries.
    if (fresh.empty() && g == kDefaultGroup) return;
    sections.push_back(
        GroupSection{g, static_cast<std::uint32_t>(fresh.size())});
    entries.insert(entries.end(), fresh.begin(), fresh.end());
  };
  add_section(kDefaultGroup, dissemination_);
  for (GroupId g : extra_ids_) add_section(g, find_group(g)->diss);

  if (sections.empty() && config_->dissemination.skip_empty_gossips) return;
  rt_.send(id_, target,
           rt_.template make<GroupedGossipMsg>(
               sections, entries, dissemination_.piggyback_members(),
               overlay_.my_degrees()));
  ++mux_gossips_sent_;
}

template <runtime::Context RT>
void GoCastNodeT<RT>::on_keeper_timer() {
  for (GroupId g : extra_ids_) {
    GroupState* st = find_group(g);
    if (!st->diss.active()) continue;
    refresh_group_peers(g, *st);
  }
}

template <runtime::Context RT>
void GoCastNodeT<RT>::refresh_group_peers(GroupId g, GroupState& st) {
  // Gossip peers for an extra group come from the membership plane: every
  // co-subscribed overlay neighbor rides for free (the link already
  // exists), topped up to group_min_neighbors with members sampled from
  // the directory. Overlay maintenance keeps optimizing toward its own
  // degree targets and would prune any link we added for group
  // connectivity, so sparse groups instead stay connected through these
  // directory samples — per-node random member picks, which form an
  // expander over the membership.
  //
  // Fallbacks are sticky: a peer must survive several gossip rotations
  // (the mux rotation can be tens of peers wide at 1 per period) or its
  // queued digest backlog is recycled before its turn ever comes. So
  // instead of resampling wholesale, at most one fallback — the oldest —
  // retires per remix interval, which still slowly re-mixes the random
  // graph against unlucky static topologies.
  ++st.keeper_ticks;
  std::vector<NodeId>& peers = st.peer_buf;
  peers.clear();
  for (NodeId peer : overlay_.neighbor_ids()) {
    if (directory_->subscribed(peer, g)) peers.push_back(peer);
  }
  const std::size_t organic = peers.size();
  std::erase_if(st.fallbacks, [&](NodeId p) {
    return !directory_->subscribed(p, g) ||
           std::find(peers.begin(), peers.end(), p) != peers.end();
  });
  const std::size_t want = config_->group_min_neighbors;
  if (organic >= want) {
    // Enough organic co-subscribed links: retire fallbacks one per tick,
    // oldest first, so backlogs queued to them still get a turn.
    if (!st.fallbacks.empty()) st.fallbacks.erase(st.fallbacks.begin());
  } else {
    constexpr std::uint64_t kRemixInterval = 5;  // ticks; ~10 s at default
    if (organic + st.fallbacks.size() >= want &&
        st.keeper_ticks % kRemixInterval == 0 && !st.fallbacks.empty()) {
      st.fallbacks.erase(st.fallbacks.begin());
    }
    const std::vector<NodeId>& members = directory_->members(g);
    if (members.size() > 1) {
      for (std::size_t attempt = 0;
           organic + st.fallbacks.size() < want && attempt < 16; ++attempt) {
        const NodeId candidate = members[static_cast<std::size_t>(
            st.peer_rng.next_below(members.size()))];
        if (candidate == id_) continue;
        if (std::find(peers.begin(), peers.end(), candidate) != peers.end() ||
            std::find(st.fallbacks.begin(), st.fallbacks.end(), candidate) !=
                st.fallbacks.end()) {
          continue;
        }
        st.fallbacks.push_back(candidate);
      }
    }
  }
  peers.insert(peers.end(), st.fallbacks.begin(), st.fallbacks.end());
  // Reciprocate recent contacts: a member who gossiped to us gets a slot in
  // our rotation, so its own out-edges double as in-edges.
  std::erase_if(st.contacts,
                [&](NodeId p) { return !directory_->subscribed(p, g); });
  for (NodeId p : st.contacts) {
    if (std::find(peers.begin(), peers.end(), p) == peers.end()) {
      peers.push_back(p);
    }
  }
  st.diss.set_gossip_peers(peers);
}

template <runtime::Context RT>
void GoCastNodeT<RT>::note_group_contact(GroupId g, NodeId from) {
  if (g == kDefaultGroup || from == id_) return;
  GroupState* st = find_group(g);
  if (st == nullptr || !st->diss.active()) return;
  auto it = std::find(st->contacts.begin(), st->contacts.end(), from);
  if (it != st->contacts.end()) {
    // Already known: move to the back (freshest) instead of duplicating.
    st->contacts.erase(it);
  }
  st->contacts.push_back(from);
  constexpr std::size_t kMaxContacts = 4;
  if (st->contacts.size() > kMaxContacts) st->contacts.erase(st->contacts.begin());
}

template <runtime::Context RT>
void GoCastNodeT<RT>::on_grouped_gossip(NodeId from,
                                        const GroupedGossipMsg& msg) {
  // Membership piggyback is node-level: integrate once, not per section.
  view_.integrate({msg.members.data(), msg.members.size()});
  std::size_t offset = 0;
  for (const GroupSection& section : msg.sections) {
    if (offset + section.count > msg.entries.size()) break;  // malformed
    if (DisseminationT<RT>* diss = dissemination_for(section.group)) {
      diss->on_grouped_digest(from, msg.entries.data() + offset,
                              section.count);
      note_group_contact(section.group, from);
    }
    offset += section.count;
  }
}

template <runtime::Context RT>
void GoCastNodeT<RT>::apply_landmarks() {
  overlay_.set_own_landmarks(own_landmarks_);
  dissemination_.set_own_landmarks(own_landmarks_);
  for (GroupId g : extra_ids_) {
    find_group(g)->diss.set_own_landmarks(own_landmarks_);
  }
}

template <runtime::Context RT>
void GoCastNodeT<RT>::measure_landmarks() {
  const auto& landmarks = config_->landmarks;
  for (std::size_t i = 0;
       i < landmarks.size() && i < membership::kLandmarkSlots; ++i) {
    NodeId lm = landmarks[i];
    if (lm == id_) {
      own_landmarks_[i] = 0.0f;
      apply_landmarks();
      continue;
    }
    overlay_.measure_rtt(lm, [this, i](SimTime rtt) {
      own_landmarks_[i] = static_cast<float>(rtt);
      apply_landmarks();
    });
  }
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

template <runtime::Context RT>
void GoCastNodeT<RT>::handle_message(NodeId from, const net::MessagePtr& msg) {
  if (behavior_.processing_delay > 0.0) {
    // Slow node: a CPU-bound receive path pays the processing delay before
    // any protocol logic runs. (Capture fits the engine's inline budget:
    // this + from + one MessagePtr.)
    rt_.schedule_after(behavior_.processing_delay, [this, from, msg] {
      if (!rt_.alive(id_)) return;
      dispatch_message(from, msg);
    });
    return;
  }
  dispatch_message(from, msg);
}

template <runtime::Context RT>
void GoCastNodeT<RT>::dispatch_message(NodeId from, const net::MessagePtr& msg) {
  if (const net::PeerDegrees* degrees = msg->peer_degrees()) {
    overlay_.note_peer_degrees(from, *degrees);
  }

  switch (msg->packet_type()) {
    case overlay::kPktNeighborRequest:
      overlay_.on_neighbor_request(
          from, static_cast<const overlay::NeighborRequestMsg&>(*msg));
      return;
    case overlay::kPktNeighborAccept:
      overlay_.on_neighbor_accept(
          from, static_cast<const overlay::NeighborAcceptMsg&>(*msg));
      return;
    case overlay::kPktNeighborReject:
      overlay_.on_neighbor_reject(
          from, static_cast<const overlay::NeighborRejectMsg&>(*msg));
      return;
    case overlay::kPktNeighborDrop:
      overlay_.on_neighbor_drop(from,
                                static_cast<const overlay::NeighborDropMsg&>(*msg));
      return;
    case overlay::kPktLinkTransfer:
      overlay_.on_link_transfer(from,
                                static_cast<const overlay::LinkTransferMsg&>(*msg));
      return;
    case overlay::kPktPing:
      overlay_.on_ping(from, static_cast<const overlay::PingMsg&>(*msg));
      return;
    case overlay::kPktPong:
      overlay_.on_pong(from, static_cast<const overlay::PongMsg&>(*msg));
      return;
    case overlay::kPktJoinRequest:
      on_join_request(from);
      return;
    case overlay::kPktJoinReply:
      on_join_reply(static_cast<const overlay::JoinReplyMsg&>(*msg));
      return;
    // Group-scoped packets route by the message's group id: group 0 is the
    // inline tree/dissemination pair, other groups the per-node group table.
    // A packet for a group this node never joined is dropped silently —
    // common under churn (heartbeats flood all overlay links).
    case tree::kPktHeartbeat: {
      const auto& m = static_cast<const tree::HeartbeatMsg&>(*msg);
      if (auto* tree = tree_for(m.group)) tree->on_heartbeat(from, m);
      return;
    }
    case tree::kPktChildJoin: {
      const auto& m = static_cast<const tree::ChildJoinMsg&>(*msg);
      if (auto* tree = tree_for(m.group)) tree->on_child_join(from, m);
      return;
    }
    case tree::kPktChildLeave: {
      const auto& m = static_cast<const tree::ChildLeaveMsg&>(*msg);
      if (auto* tree = tree_for(m.group)) tree->on_child_leave(from, m);
      return;
    }
    case kPktData: {
      const auto& m = static_cast<const DataMsg&>(*msg);
      if (auto* diss = dissemination_for(m.group)) diss->on_data(from, m);
      return;
    }
    case kPktGossipDigest: {
      const auto& m = static_cast<const GossipDigestMsg&>(*msg);
      if (auto* diss = dissemination_for(m.group)) {
        diss->on_gossip_digest(from, m);
        note_group_contact(m.group, from);
      }
      return;
    }
    case kPktPullRequest: {
      const auto& m = static_cast<const PullRequestMsg&>(*msg);
      if (auto* diss = dissemination_for(m.group)) {
        diss->on_pull_request(from, m);
      }
      return;
    }
    case kPktGroupedGossip:
      on_grouped_gossip(from, static_cast<const GroupedGossipMsg&>(*msg));
      return;
    default:
      GOCAST_WARN("node " << id_ << " ignoring unknown packet type "
                          << msg->packet_type() << " from " << from);
  }
}

template <runtime::Context RT>
void GoCastNodeT<RT>::handle_send_failure(NodeId to, const net::MessagePtr& msg) {
  (void)msg;
  overlay_.on_peer_failure(to);
}

template <runtime::Context RT>
void GoCastNodeT<RT>::on_join_request(NodeId from) {
  std::vector<membership::MemberEntry> members = view_.sample(64);
  membership::MemberEntry self_entry;
  self_entry.id = id_;
  self_entry.landmark_rtt = own_landmarks_;
  self_entry.heard_at = rt_.now();
  members.push_back(self_entry);
  rt_.send(id_, from,
           rt_.template make<overlay::JoinReplyMsg>(std::move(members)));
}

template <runtime::Context RT>
void GoCastNodeT<RT>::on_join_reply(const overlay::JoinReplyMsg& msg) {
  view_.integrate(msg.members);
}

template class GoCastNodeT<runtime::SimRuntime>;
template class GoCastNodeT<runtime::RealtimeContext>;
template class GoCastNodeT<runtime::UdpContext>;

}  // namespace gocast::core

// Message dissemination (paper §2.1): unconditional push along tree links,
// plus background gossip of message IDs to overlay neighbors (round-robin,
// one per gossip period) with pull-based recovery, the pull-delay threshold
// f, and payload garbage collection after the waiting period b.
//
// Template over a runtime context (see runtime/context.h); the Dissemination
// alias binds the simulator backend. Bodies live in dissemination.cpp with
// explicit instantiations for both backends.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/fault_behavior.h"
#include "common/flat_map.h"
#include "common/rng.h"
#include "common/types.h"
#include "gocast/messages.h"
#include "gocast/params.h"
#include "gocast/suspicion.h"
#include "membership/partial_view.h"
#include "overlay/overlay_manager.h"
#include "runtime/context.h"
#include "runtime/sim_runtime.h"
#include "sim/timer.h"
#include "tree/tree_manager.h"

namespace gocast::core {

enum class DeliveryPath { kLocal, kTree, kPull };

struct DeliveryEvent {
  NodeId node;
  MsgId id;
  SimTime inject_time;
  SimTime deliver_time;
  DeliveryPath path;
  GroupId group = kDefaultGroup;
};

using DeliveryHook = std::function<void(const DeliveryEvent&)>;

template <runtime::Context RT>
class DisseminationT final : public overlay::OverlayListener {
 public:
  /// `tree` may be null (gossip-only baselines). `group` scopes every
  /// outgoing message; `shared_suspicion` (multi-group nodes) points at the
  /// node-global ledger — when null, this instance keeps a private one.
  DisseminationT(NodeId self, RT rt, membership::PartialView& view,
                 overlay::OverlayManagerT<RT>& overlay,
                 tree::TreeManagerT<RT>* tree, DisseminationParams params,
                 DefenseParams defense, Rng rng,
                 GroupId group = kDefaultGroup,
                 SuspicionLedger* shared_suspicion = nullptr);

  DisseminationT(NodeId self, RT rt, membership::PartialView& view,
                 overlay::OverlayManagerT<RT>& overlay,
                 tree::TreeManagerT<RT>* tree, DisseminationParams params,
                 Rng rng)
      : DisseminationT(self, rt, view, overlay, tree, params, DefenseParams{},
                       std::move(rng)) {}

  void start(SimTime stagger);
  void stop();

  /// Group-leave support: stops timers and drops transient per-run state
  /// (pending digests, in-flight pulls) while keeping the instance alive —
  /// scheduled callbacks capture `this`, so per-group state is deactivated,
  /// never destroyed. reactivate() rejoins with a fresh slate.
  void deactivate();
  void reactivate(SimTime stagger);
  [[nodiscard]] bool active() const { return active_; }

  /// Multiplexed-gossip mode (multi-group nodes): the owning node drives one
  /// grouped gossip per period instead of each group's private timer. Must
  /// be set before start().
  void set_external_gossip(bool on) { external_gossip_ = on; }

  /// Replaces the gossip rotation with an explicitly chosen peer set.
  /// Extra groups use this instead of the overlay listener: their peers are
  /// co-subscribed overlay neighbors plus directory-sampled members — the
  /// membership plane, not the overlay, decides who a sparse group gossips
  /// with (the overlay keeps pruning toward its own degree targets, so
  /// group-connectivity links would not survive there). Newly added peers
  /// get every still-held message id queued so they can pull history;
  /// departed peers' backlogs are recycled.
  void set_gossip_peers(const std::vector<NodeId>& peers);
  [[nodiscard]] const std::vector<NodeId>& gossip_peers() const {
    return rotation_;
  }

  /// Drains and returns this group's digest backlog for `target` (the same
  /// fill the private gossip timer performs; the buffer is valid until the
  /// next call). Used by the node-level digest multiplexer.
  [[nodiscard]] const std::vector<DigestEntry>& collect_digest_for(
      NodeId target);

  /// Entry point for one section of a multiplexed gossip (membership was
  /// already integrated once at the node level).
  void on_grouped_digest(NodeId from, const DigestEntry* entries,
                         std::size_t count);

  void set_delivery_hook(DeliveryHook hook) { delivery_hook_ = std::move(hook); }
  void set_own_landmarks(const membership::LandmarkVector& landmarks) {
    own_landmarks_ = landmarks;
  }
  /// Shares the owning node's fault behavior (adversarial models). May be
  /// null (tests constructing the layer directly stay honest).
  void set_behavior(const FaultBehavior* behavior) { behavior_ = behavior; }

  /// Starts a multicast from this node. Returns the assigned message id.
  MsgId multicast(std::size_t payload_bytes);

  /// Partition-heal re-advertisement (GoCastConfig::readvertise_on_heal):
  /// re-queues the IDs of every stored message whose payload is still held
  /// (i.e. younger than the waiting period b) for one more gossip round to
  /// every current overlay neighbor. Called by the owning node when the tree
  /// root changes to a healed epoch. Returns the number of IDs re-queued.
  std::size_t readvertise_recent();

  // -- message entry points --
  void on_data(NodeId from, const DataMsg& msg);
  void on_gossip_digest(NodeId from, const GossipDigestMsg& msg);
  void on_pull_request(NodeId from, const PullRequestMsg& msg);

  // -- OverlayListener (keeps the gossip rotation in sync) --
  void on_neighbor_added(NodeId peer, overlay::LinkKind kind) override;
  void on_neighbor_removed(NodeId peer) override;

  // -- queries / stats --
  [[nodiscard]] bool has_message(MsgId id) const { return store_.count(id) > 0; }
  [[nodiscard]] std::size_t store_size() const { return store_.size(); }
  /// Stored payloads older than `age` seconds (since reception). The GC must
  /// reclaim payloads within b + one sweep; the invariant checker audits it.
  [[nodiscard]] std::size_t payloads_older_than(SimTime age) const;
  /// Stored message records (IDs) older than `age` seconds.
  [[nodiscard]] std::size_t records_older_than(SimTime age) const;
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  [[nodiscard]] std::uint64_t pulls_sent() const { return pulls_sent_; }
  /// Payload bytes of redundant transfers that the abort optimization
  /// (§2.1 item 1) would avoid carrying.
  [[nodiscard]] std::uint64_t aborted_bytes() const { return aborted_bytes_; }
  [[nodiscard]] std::uint64_t gossips_sent() const { return gossips_sent_; }
  [[nodiscard]] std::uint64_t digest_entries_sent() const {
    return digest_entries_sent_;
  }
  [[nodiscard]] std::uint64_t readvertised_ids() const {
    return readvertised_ids_;
  }
  /// Pulls that burned their whole retry budget without an answer.
  [[nodiscard]] std::uint64_t pull_retries_exhausted() const {
    return pull_retries_exhausted_;
  }
  /// Spot-check pulls issued by the audit defense.
  [[nodiscard]] std::uint64_t audits_sent() const { return audits_sent_; }
  /// Pull recoveries currently in flight (empty once every pull either
  /// succeeded, exhausted its budget, or aged past the waiting period b).
  [[nodiscard]] std::size_t pull_pending_size() const {
    return pull_pending_.size();
  }
  /// Current (decay-adjusted) suspicion score for a peer; 0 when unknown or
  /// suspicion tracking is disabled.
  [[nodiscard]] double suspicion_score(NodeId peer) const;
  /// Suspicion-threshold evictions this node performed, with timestamps
  /// (time-to-evict analysis in bench/ext_byzantine). On a multi-group node
  /// the ledger is shared: read it once per node, not once per group.
  using Eviction = SuspicionLedger::Eviction;
  [[nodiscard]] const std::vector<Eviction>& evictions() const {
    return suspicion_ledger_->evictions;
  }
  [[nodiscard]] const DisseminationParams& params() const { return params_; }
  [[nodiscard]] const DefenseParams& defense() const { return defense_; }
  [[nodiscard]] GroupId group() const { return group_; }

  /// Fills and returns the reusable piggyback buffer (valid until the next
  /// call); avoids a fresh vector per gossip tick. Public for the node-level
  /// digest multiplexer, which piggybacks membership exactly once per
  /// grouped gossip.
  [[nodiscard]] const std::vector<membership::MemberEntry>& piggyback_members();

  /// Approximate heap bytes owned by the dissemination layer (message
  /// store, per-neighbor queues, pull/suspicion/audit trackers, scratch).
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  struct Stored {
    SimTime inject_time;
    SimTime received_at;
    /// u32, not size_t: halves nothing on its own, but together with the
    /// packed flags it takes the store slot from 40 to 32 bytes — the digest
    /// store is the largest per-node table at scale.
    std::uint32_t payload_bytes;
    bool payload_present;
    /// False only for the payload-less records a digest liar plants: a real
    /// arrival for such a record must still count as the first delivery.
    bool delivered = true;
  };
  static_assert(sizeof(Stored) == 24);

  /// First receipt of a message from any path: store, deliver, push along
  /// tree links (except `learned_from`), and queue its ID for gossiping to
  /// every overlay neighbor except `learned_from`.
  void accept_message(MsgId id, SimTime inject_time, std::size_t payload_bytes,
                      NodeId learned_from, DeliveryPath path);

  void forward_on_tree(MsgId id, const Stored& stored, NodeId except);
  /// Shared body of on_gossip_digest and on_grouped_digest: the digest-liar
  /// plant path plus the per-entry sanity/dedup/pull-scheduling loop.
  void process_digest_entries(NodeId from, const DigestEntry* entries,
                              std::size_t count);
  void on_gossip_timer();
  void gc_sweep();
  void issue_pull(NodeId target, MsgId id);
  void schedule_pull_retry(MsgId id);
  void on_pull_retry_timeout(MsgId id);
  void remove_from_pending(NodeId neighbor, MsgId id);
  /// Adds `increment` to a peer's decayed suspicion score; evicts it from
  /// the overlay once the threshold is crossed (when that defense is on).
  void raise_suspicion(NodeId peer, double increment);
  /// Data-silence watch on the tree parent (suspect_silent signal (b)):
  /// called on every delivery; raises suspicion when the current parent has
  /// pushed nothing for a whole silence window while traffic kept arriving.
  void check_parent_silence();
  /// Challenge pulls (DefenseParams::audit_pulls): every audit_every-th
  /// gossip to `target` also spot-checks it with a pull for a message old
  /// enough that every honest live node must hold it.
  void maybe_challenge(NodeId target);
  /// Records that a digest from `peer` carried payload ids (silence
  /// tracking) — and, while a pull for one of them is in flight, remembers
  /// the peer as an alternate source for escalation.
  void note_advertiser(MsgId id, NodeId peer);
  /// Escalation: the best alternate advertiser for a timed-out pull
  /// (lowest suspicion, earliest-recorded tie-break), or `current` when no
  /// alternate is known.
  [[nodiscard]] NodeId pick_escalation_target(
      const std::vector<NodeId>& advertisers, NodeId current) const;
  /// The pending-ids vector for `peer`, creating it (from the recycle bin
  /// when possible) on first use.
  std::vector<MsgId>& pending_slot(NodeId peer);

  NodeId self_;
  RT rt_;
  membership::PartialView& view_;
  overlay::OverlayManagerT<RT>& overlay_;
  tree::TreeManagerT<RT>* tree_;
  DisseminationParams params_;
  DefenseParams defense_;
  const FaultBehavior* behavior_ = nullptr;
  GroupId group_ = kDefaultGroup;
  /// Private ledger, used only when no shared one was injected.
  SuspicionLedger own_suspicion_;
  SuspicionLedger* suspicion_ledger_ = nullptr;
  bool external_gossip_ = false;
  bool active_ = true;
  Rng rng_;
  /// Separate stream for retry jitter so the backoff draws never perturb
  /// the piggyback-sampling stream.
  Rng retry_rng_;

  common::FlatMap<MsgId, Stored> store_;
  common::FlatMap<NodeId, std::vector<MsgId>> pending_;
  /// Capacity-preserving recycle bin for pending_ vectors of departed
  /// neighbors (swap-and-clear instead of erase/reinsert churn).
  std::vector<std::vector<MsgId>> spare_pending_;
  std::vector<NodeId> rotation_;
  std::size_t rotation_idx_ = 0;
  struct PullState {
    NodeId target = kInvalidNode;
    SimTime started = 0.0;
    int attempts = 0;
    /// Other neighbors that advertised the id while the pull was in flight
    /// (escalation candidates; only filled while escalate_pulls is on).
    std::vector<NodeId> advertisers;
  };
  common::FlatMap<MsgId, PullState> pull_pending_;

  /// Parent data-silence watch: the tree parent under observation, and the
  /// last time it pushed any DataMsg (duplicates count — a parent pushing
  /// redundant copies is demonstrably forwarding).
  NodeId watched_parent_ = kInvalidNode;
  SimTime last_parent_data_ = 0.0;
  /// Challenge pulls: per-neighbor gossip countdown until the next
  /// spot-check, the challenges currently awaiting an answer, and a ring of
  /// recent deliveries (time-ordered) that candidate challenge ids are
  /// drawn from. Each probe carries an epoch so a stale timeout (whose own
  /// challenge was already answered) cannot fail a newer in-flight probe
  /// for the same (id, target) pair.
  struct AuditProbe {
    NodeId target = kInvalidNode;
    std::uint64_t epoch = 0;
  };
  common::FlatMap<NodeId, std::uint32_t> audit_countdown_;
  common::FlatMap<MsgId, AuditProbe> audit_pending_;
  std::uint64_t audit_epoch_ = 0;
  std::vector<std::pair<SimTime, MsgId>> recent_ids_;
  std::size_t recent_head_ = 0;
  std::uint32_t next_seq_ = 0;
  std::vector<membership::MemberEntry> piggyback_buf_;
  std::vector<DigestEntry> digest_buf_;

  membership::LandmarkVector own_landmarks_ = membership::empty_landmarks();
  DeliveryHook delivery_hook_;

  runtime::PeriodicTimer<RT> gossip_timer_;
  runtime::PeriodicTimer<RT> gc_timer_;

  std::uint64_t deliveries_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t aborted_bytes_ = 0;
  std::uint64_t pulls_sent_ = 0;
  std::uint64_t gossips_sent_ = 0;
  std::uint64_t digest_entries_sent_ = 0;
  std::uint64_t readvertised_ids_ = 0;
  std::uint64_t pull_retries_exhausted_ = 0;
  std::uint64_t audits_sent_ = 0;
};

/// The simulation-backed dissemination layer used throughout the simulator.
using Dissemination = DisseminationT<runtime::SimRuntime>;

}  // namespace gocast::core

// Message dissemination (paper §2.1): unconditional push along tree links,
// plus background gossip of message IDs to overlay neighbors (round-robin,
// one per gossip period) with pull-based recovery, the pull-delay threshold
// f, and payload garbage collection after the waiting period b.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/flat_map.h"
#include "common/rng.h"
#include "common/types.h"
#include "gocast/messages.h"
#include "gocast/params.h"
#include "membership/partial_view.h"
#include "net/network.h"
#include "overlay/overlay_manager.h"
#include "sim/timer.h"
#include "tree/tree_manager.h"

namespace gocast::core {

enum class DeliveryPath { kLocal, kTree, kPull };

struct DeliveryEvent {
  NodeId node;
  MsgId id;
  SimTime inject_time;
  SimTime deliver_time;
  DeliveryPath path;
};

using DeliveryHook = std::function<void(const DeliveryEvent&)>;

class Dissemination final : public overlay::OverlayListener {
 public:
  /// `tree` may be null (gossip-only baselines).
  Dissemination(NodeId self, net::Network& network, membership::PartialView& view,
                overlay::OverlayManager& overlay, tree::TreeManager* tree,
                DisseminationParams params, Rng rng);

  void start(SimTime stagger);
  void stop();

  void set_delivery_hook(DeliveryHook hook) { delivery_hook_ = std::move(hook); }
  void set_own_landmarks(const membership::LandmarkVector& landmarks) {
    own_landmarks_ = landmarks;
  }

  /// Starts a multicast from this node. Returns the assigned message id.
  MsgId multicast(std::size_t payload_bytes);

  // -- message entry points --
  void on_data(NodeId from, const DataMsg& msg);
  void on_gossip_digest(NodeId from, const GossipDigestMsg& msg);
  void on_pull_request(NodeId from, const PullRequestMsg& msg);

  // -- OverlayListener (keeps the gossip rotation in sync) --
  void on_neighbor_added(NodeId peer, overlay::LinkKind kind) override;
  void on_neighbor_removed(NodeId peer) override;

  // -- queries / stats --
  [[nodiscard]] bool has_message(MsgId id) const { return store_.count(id) > 0; }
  [[nodiscard]] std::size_t store_size() const { return store_.size(); }
  /// Stored payloads older than `age` seconds (since reception). The GC must
  /// reclaim payloads within b + one sweep; the invariant checker audits it.
  [[nodiscard]] std::size_t payloads_older_than(SimTime age) const;
  /// Stored message records (IDs) older than `age` seconds.
  [[nodiscard]] std::size_t records_older_than(SimTime age) const;
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  [[nodiscard]] std::uint64_t pulls_sent() const { return pulls_sent_; }
  /// Payload bytes of redundant transfers that the abort optimization
  /// (§2.1 item 1) would avoid carrying.
  [[nodiscard]] std::uint64_t aborted_bytes() const { return aborted_bytes_; }
  [[nodiscard]] std::uint64_t gossips_sent() const { return gossips_sent_; }
  [[nodiscard]] std::uint64_t digest_entries_sent() const {
    return digest_entries_sent_;
  }
  [[nodiscard]] const DisseminationParams& params() const { return params_; }

 private:
  struct Stored {
    SimTime inject_time;
    SimTime received_at;
    std::size_t payload_bytes;
    bool payload_present;
  };

  /// First receipt of a message from any path: store, deliver, push along
  /// tree links (except `learned_from`), and queue its ID for gossiping to
  /// every overlay neighbor except `learned_from`.
  void accept_message(MsgId id, SimTime inject_time, std::size_t payload_bytes,
                      NodeId learned_from, DeliveryPath path);

  void forward_on_tree(MsgId id, const Stored& stored, NodeId except);
  void on_gossip_timer();
  void gc_sweep();
  void issue_pull(NodeId target, MsgId id);
  void schedule_pull_retry(MsgId id);
  void remove_from_pending(NodeId neighbor, MsgId id);
  /// The pending-ids vector for `peer`, creating it (from the recycle bin
  /// when possible) on first use.
  std::vector<MsgId>& pending_slot(NodeId peer);

  /// Fills and returns the reusable piggyback buffer (valid until the next
  /// call); avoids a fresh vector per gossip tick.
  [[nodiscard]] const std::vector<membership::MemberEntry>& piggyback_members();

  NodeId self_;
  net::Network& network_;
  sim::Engine& engine_;
  membership::PartialView& view_;
  overlay::OverlayManager& overlay_;
  tree::TreeManager* tree_;
  DisseminationParams params_;
  Rng rng_;

  common::FlatMap<MsgId, Stored> store_;
  common::FlatMap<NodeId, std::vector<MsgId>> pending_;
  /// Capacity-preserving recycle bin for pending_ vectors of departed
  /// neighbors (swap-and-clear instead of erase/reinsert churn).
  std::vector<std::vector<MsgId>> spare_pending_;
  std::vector<NodeId> rotation_;
  std::size_t rotation_idx_ = 0;
  struct PullState {
    NodeId target = kInvalidNode;
    SimTime started = 0.0;
    int attempts = 0;
  };
  common::FlatMap<MsgId, PullState> pull_pending_;
  std::uint32_t next_seq_ = 0;
  std::vector<membership::MemberEntry> piggyback_buf_;
  std::vector<DigestEntry> digest_buf_;

  membership::LandmarkVector own_landmarks_ = membership::empty_landmarks();
  DeliveryHook delivery_hook_;

  sim::PeriodicTimer gossip_timer_;
  sim::PeriodicTimer gc_timer_;

  std::uint64_t deliveries_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t aborted_bytes_ = 0;
  std::uint64_t pulls_sent_ = 0;
  std::uint64_t gossips_sent_ = 0;
  std::uint64_t digest_entries_sent_ = 0;
};

}  // namespace gocast::core

// Message dissemination (paper §2.1): unconditional push along tree links,
// plus background gossip of message IDs to overlay neighbors (round-robin,
// one per gossip period) with pull-based recovery, the pull-delay threshold
// f, and payload garbage collection after the waiting period b.
//
// Template over a runtime context (see runtime/context.h); the Dissemination
// alias binds the simulator backend. Bodies live in dissemination.cpp with
// explicit instantiations for both backends.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/flat_map.h"
#include "common/rng.h"
#include "common/types.h"
#include "gocast/messages.h"
#include "gocast/params.h"
#include "membership/partial_view.h"
#include "overlay/overlay_manager.h"
#include "runtime/context.h"
#include "runtime/sim_runtime.h"
#include "sim/timer.h"
#include "tree/tree_manager.h"

namespace gocast::core {

enum class DeliveryPath { kLocal, kTree, kPull };

struct DeliveryEvent {
  NodeId node;
  MsgId id;
  SimTime inject_time;
  SimTime deliver_time;
  DeliveryPath path;
};

using DeliveryHook = std::function<void(const DeliveryEvent&)>;

template <runtime::Context RT>
class DisseminationT final : public overlay::OverlayListener {
 public:
  /// `tree` may be null (gossip-only baselines).
  DisseminationT(NodeId self, RT rt, membership::PartialView& view,
                 overlay::OverlayManagerT<RT>& overlay,
                 tree::TreeManagerT<RT>* tree, DisseminationParams params,
                 Rng rng);

  void start(SimTime stagger);
  void stop();

  void set_delivery_hook(DeliveryHook hook) { delivery_hook_ = std::move(hook); }
  void set_own_landmarks(const membership::LandmarkVector& landmarks) {
    own_landmarks_ = landmarks;
  }

  /// Starts a multicast from this node. Returns the assigned message id.
  MsgId multicast(std::size_t payload_bytes);

  /// Partition-heal re-advertisement (GoCastConfig::readvertise_on_heal):
  /// re-queues the IDs of every stored message whose payload is still held
  /// (i.e. younger than the waiting period b) for one more gossip round to
  /// every current overlay neighbor. Called by the owning node when the tree
  /// root changes to a healed epoch. Returns the number of IDs re-queued.
  std::size_t readvertise_recent();

  // -- message entry points --
  void on_data(NodeId from, const DataMsg& msg);
  void on_gossip_digest(NodeId from, const GossipDigestMsg& msg);
  void on_pull_request(NodeId from, const PullRequestMsg& msg);

  // -- OverlayListener (keeps the gossip rotation in sync) --
  void on_neighbor_added(NodeId peer, overlay::LinkKind kind) override;
  void on_neighbor_removed(NodeId peer) override;

  // -- queries / stats --
  [[nodiscard]] bool has_message(MsgId id) const { return store_.count(id) > 0; }
  [[nodiscard]] std::size_t store_size() const { return store_.size(); }
  /// Stored payloads older than `age` seconds (since reception). The GC must
  /// reclaim payloads within b + one sweep; the invariant checker audits it.
  [[nodiscard]] std::size_t payloads_older_than(SimTime age) const;
  /// Stored message records (IDs) older than `age` seconds.
  [[nodiscard]] std::size_t records_older_than(SimTime age) const;
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  [[nodiscard]] std::uint64_t pulls_sent() const { return pulls_sent_; }
  /// Payload bytes of redundant transfers that the abort optimization
  /// (§2.1 item 1) would avoid carrying.
  [[nodiscard]] std::uint64_t aborted_bytes() const { return aborted_bytes_; }
  [[nodiscard]] std::uint64_t gossips_sent() const { return gossips_sent_; }
  [[nodiscard]] std::uint64_t digest_entries_sent() const {
    return digest_entries_sent_;
  }
  [[nodiscard]] std::uint64_t readvertised_ids() const {
    return readvertised_ids_;
  }
  [[nodiscard]] const DisseminationParams& params() const { return params_; }

 private:
  struct Stored {
    SimTime inject_time;
    SimTime received_at;
    std::size_t payload_bytes;
    bool payload_present;
  };

  /// First receipt of a message from any path: store, deliver, push along
  /// tree links (except `learned_from`), and queue its ID for gossiping to
  /// every overlay neighbor except `learned_from`.
  void accept_message(MsgId id, SimTime inject_time, std::size_t payload_bytes,
                      NodeId learned_from, DeliveryPath path);

  void forward_on_tree(MsgId id, const Stored& stored, NodeId except);
  void on_gossip_timer();
  void gc_sweep();
  void issue_pull(NodeId target, MsgId id);
  void schedule_pull_retry(MsgId id);
  void remove_from_pending(NodeId neighbor, MsgId id);
  /// The pending-ids vector for `peer`, creating it (from the recycle bin
  /// when possible) on first use.
  std::vector<MsgId>& pending_slot(NodeId peer);

  /// Fills and returns the reusable piggyback buffer (valid until the next
  /// call); avoids a fresh vector per gossip tick.
  [[nodiscard]] const std::vector<membership::MemberEntry>& piggyback_members();

  NodeId self_;
  RT rt_;
  membership::PartialView& view_;
  overlay::OverlayManagerT<RT>& overlay_;
  tree::TreeManagerT<RT>* tree_;
  DisseminationParams params_;
  Rng rng_;

  common::FlatMap<MsgId, Stored> store_;
  common::FlatMap<NodeId, std::vector<MsgId>> pending_;
  /// Capacity-preserving recycle bin for pending_ vectors of departed
  /// neighbors (swap-and-clear instead of erase/reinsert churn).
  std::vector<std::vector<MsgId>> spare_pending_;
  std::vector<NodeId> rotation_;
  std::size_t rotation_idx_ = 0;
  struct PullState {
    NodeId target = kInvalidNode;
    SimTime started = 0.0;
    int attempts = 0;
  };
  common::FlatMap<MsgId, PullState> pull_pending_;
  std::uint32_t next_seq_ = 0;
  std::vector<membership::MemberEntry> piggyback_buf_;
  std::vector<DigestEntry> digest_buf_;

  membership::LandmarkVector own_landmarks_ = membership::empty_landmarks();
  DeliveryHook delivery_hook_;

  runtime::PeriodicTimer<RT> gossip_timer_;
  runtime::PeriodicTimer<RT> gc_timer_;

  std::uint64_t deliveries_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t aborted_bytes_ = 0;
  std::uint64_t pulls_sent_ = 0;
  std::uint64_t gossips_sent_ = 0;
  std::uint64_t digest_entries_sent_ = 0;
  std::uint64_t readvertised_ids_ = 0;
};

/// The simulation-backed dissemination layer used throughout the simulator.
using Dissemination = DisseminationT<runtime::SimRuntime>;

}  // namespace gocast::core

#include "gocast/group_directory.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/assert.h"
#include "common/rng.h"
#include "common/zipf.h"

namespace gocast::core {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

GroupTopology GroupTopology::parse(const std::string& spec) {
  GroupTopology t;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ';')) {
    item = trim(item);
    if (item.empty()) continue;
    std::size_t eq = item.find('=');
    GOCAST_ASSERT_MSG(eq != std::string::npos,
                      "group spec item is not key=value");
    const std::string key = trim(item.substr(0, eq));
    const std::string value = trim(item.substr(eq + 1));
    if (key == "groups") {
      t.group_count = std::stoul(value);
    } else if (key == "zipf") {
      t.size_exponent = std::stod(value);
    } else if (key == "pop") {
      t.popularity_exponent = std::stod(value);
    } else if (key == "min") {
      t.min_group_size = std::stoul(value);
    } else if (key == "base") {
      t.base_fraction = std::stod(value);
    } else if (key == "corr") {
      t.correlation = std::stod(value);
    } else if (key == "churn") {
      t.churn_rate = std::stod(value);
    } else {
      GOCAST_ASSERT_MSG(false, "unknown group spec key");
    }
  }
  GOCAST_ASSERT_MSG(t.group_count >= 1, "group spec needs groups>=1");
  return t;
}

std::string GroupTopology::to_spec() const {
  std::ostringstream out;
  out << "groups=" << group_count << ";zipf=" << size_exponent
      << ";pop=" << popularity_exponent << ";min=" << min_group_size
      << ";base=" << base_fraction << ";corr=" << correlation
      << ";churn=" << churn_rate;
  return out.str();
}

GroupDirectory::GroupDirectory(const GroupTopology& topology,
                               std::size_t node_count, std::uint64_t seed)
    : topology_(topology),
      members_(topology.group_count),
      extra_groups_(node_count) {
  GOCAST_ASSERT(topology.group_count >= 1);
  GOCAST_ASSERT(node_count >= 1);
  if (topology.group_count == 1) return;

  Rng dir_rng = Rng(seed).fork("groups");
  const std::uint64_t s_fixed =
      common::zipf_exponent_fixed(topology.size_exponent);
  const auto base_count = static_cast<std::size_t>(std::llround(
      topology.base_fraction * static_cast<double>(node_count)));

  std::vector<NodeId> population(node_count);
  std::iota(population.begin(), population.end(), NodeId{0});

  for (GroupId g = 1; g < topology.group_count; ++g) {
    const std::uint64_t w = common::zipf_weight_fixed(g, s_fixed);
    std::size_t size = static_cast<std::size_t>(
        (static_cast<unsigned __int128>(w) * base_count) >> 32);
    size = std::clamp(size, topology.min_group_size, node_count);
    Rng grng = dir_rng.fork(static_cast<std::uint64_t>(g));

    std::vector<NodeId> chosen;
    chosen.reserve(size);
    std::vector<char> taken(node_count, 0);
    // Correlated portion: a fraction of members is inherited from the
    // previous extra group (group 1 has no predecessor among extra groups —
    // group 0 is everyone, so correlating with it would be a no-op).
    if (g >= 2 && topology.correlation > 0.0 && !members_[g - 1].empty()) {
      auto corr_count = static_cast<std::size_t>(
          std::llround(topology.correlation * static_cast<double>(size)));
      std::vector<NodeId> prev = members_[g - 1];
      grng.shuffle(prev);
      corr_count = std::min({corr_count, size, prev.size()});
      for (std::size_t i = 0; i < corr_count; ++i) {
        chosen.push_back(prev[i]);
        taken[prev[i]] = 1;
      }
    }
    std::vector<NodeId> pool = population;
    grng.shuffle(pool);
    for (std::size_t i = 0; i < pool.size() && chosen.size() < size; ++i) {
      if (!taken[pool[i]]) {
        chosen.push_back(pool[i]);
        taken[pool[i]] = 1;
      }
    }
    std::sort(chosen.begin(), chosen.end());
    for (NodeId id : chosen) extra_groups_[id].push_back(g);
    members_[g] = std::move(chosen);
  }
  // extra_groups_ entries were appended in ascending g, so they are sorted.
}

const std::vector<NodeId>& GroupDirectory::members(GroupId g) const {
  GOCAST_ASSERT(g >= 1 && g < members_.size());
  return members_[g];
}

const std::vector<GroupId>& GroupDirectory::groups_of(NodeId id) const {
  GOCAST_ASSERT(id < extra_groups_.size());
  return extra_groups_[id];
}

bool GroupDirectory::subscribed(NodeId id, GroupId g) const {
  if (g == kDefaultGroup) return id < extra_groups_.size();
  if (id >= extra_groups_.size() || g >= members_.size()) return false;
  const auto& gs = extra_groups_[id];
  return std::binary_search(gs.begin(), gs.end(), g);
}

void GroupDirectory::subscribe(NodeId id, GroupId g) {
  if (g == kDefaultGroup || g >= members_.size()) return;
  GOCAST_ASSERT(id < extra_groups_.size());
  auto& gs = extra_groups_[id];
  auto it = std::lower_bound(gs.begin(), gs.end(), g);
  if (it != gs.end() && *it == g) return;
  gs.insert(it, g);
  auto& ms = members_[g];
  ms.insert(std::lower_bound(ms.begin(), ms.end(), id), id);
}

void GroupDirectory::unsubscribe(NodeId id, GroupId g) {
  if (g == kDefaultGroup || g >= members_.size()) return;
  GOCAST_ASSERT(id < extra_groups_.size());
  auto& gs = extra_groups_[id];
  auto it = std::lower_bound(gs.begin(), gs.end(), g);
  if (it == gs.end() || *it != g) return;
  gs.erase(it);
  auto& ms = members_[g];
  auto mit = std::lower_bound(ms.begin(), ms.end(), id);
  if (mit != ms.end() && *mit == id) ms.erase(mit);
}

std::size_t GroupDirectory::memory_bytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& m : members_) bytes += m.capacity() * sizeof(NodeId);
  bytes += extra_groups_.capacity() * sizeof(std::vector<GroupId>);
  for (const auto& g : extra_groups_) bytes += g.capacity() * sizeof(GroupId);
  return bytes;
}

}  // namespace gocast::core

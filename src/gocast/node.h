// A complete GoCast node: partial membership view, overlay maintenance,
// embedded tree, and the dissemination layer, wired to a runtime backend.
// This is the main public entry point for using the protocol.
//
// Template over a runtime context (see runtime/context.h): the GoCastNode
// alias binds the simulator; tools/gocastd instantiates
// GoCastNodeT<runtime::RealtimeContext> to run live nodes over the real-time
// loopback transport. Bodies live in node.cpp with explicit instantiations
// for both backends.
#pragma once

#include <memory>
#include <span>

#include "common/fault_behavior.h"
#include "common/rng.h"
#include "common/types.h"
#include "gocast/dissemination.h"
#include "gocast/params.h"
#include "membership/partial_view.h"
#include "net/endpoint.h"
#include "overlay/overlay_manager.h"
#include "runtime/context.h"
#include "runtime/sim_runtime.h"
#include "tree/tree_manager.h"

namespace gocast::core {

template <runtime::Context RT>
class GoCastNodeT final : public net::Endpoint {
 public:
  /// Registers itself as `id`'s endpoint on the runtime.
  GoCastNodeT(NodeId id, RT rt, GoCastConfig config, Rng rng);

  /// Shared-config variant: nodes of one deployment reference a single
  /// immutable GoCastConfig instead of each holding a ~400-byte copy (the
  /// config is normalized on the way in; an already-consistent one is
  /// shared as-is).
  GoCastNodeT(NodeId id, RT rt, std::shared_ptr<const GoCastConfig> config,
              Rng rng);

  GoCastNodeT(const GoCastNodeT&) = delete;
  GoCastNodeT& operator=(const GoCastNodeT&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }

  /// Starts all protocol timers and measures landmark RTTs. `stagger`
  /// de-synchronizes periodic activity across nodes.
  void start(SimTime stagger);
  void stop();

  /// Freezes overlay and tree maintenance (Fig 3(b) stress mode): no link
  /// adds/drops/replacements, no tree repair. Dissemination keeps running.
  void freeze();

  /// Crashes the node: marks it dead on the runtime and stops all timers.
  void kill();

  /// Installs (or, with a default-constructed value, cures) an adversarial
  /// or slow-node behavior (fault injection). Subsystems observe the change
  /// immediately; the node itself stays alive.
  void set_fault_behavior(const FaultBehavior& behavior) {
    behavior_ = behavior;
  }
  [[nodiscard]] const FaultBehavior& fault_behavior() const {
    return behavior_;
  }

  /// Joins an existing overlay through a known bootstrap node: requests its
  /// member list; the maintenance protocols then establish links.
  void join_via(NodeId bootstrap);

  /// Seeds the membership view directly (harness initialization).
  void seed_view(std::span<const membership::MemberEntry> entries);

  /// Installs a pre-established overlay link (harness initialization; must
  /// be mirrored on the peer).
  void bootstrap_link(NodeId peer, overlay::LinkKind kind);

  /// Makes this node the tree root.
  void become_root();

  /// Starts a multicast from this node.
  MsgId multicast(std::size_t payload_bytes);
  MsgId multicast() { return multicast(config_->dissemination.payload_bytes); }

  void set_delivery_hook(DeliveryHook hook);

  /// Protocol-agnostic counters (shared with the baselines by the harness).
  [[nodiscard]] std::uint64_t deliveries_count() const {
    return dissemination_.deliveries();
  }
  [[nodiscard]] std::uint64_t duplicates_count() const {
    return dissemination_.duplicates();
  }

  // -- subsystem access (tests, analysis) --
  [[nodiscard]] membership::PartialView& view() { return view_; }
  [[nodiscard]] const membership::PartialView& view() const { return view_; }
  [[nodiscard]] overlay::OverlayManagerT<RT>& overlay() { return overlay_; }
  [[nodiscard]] const overlay::OverlayManagerT<RT>& overlay() const {
    return overlay_;
  }
  [[nodiscard]] tree::TreeManagerT<RT>& tree() { return tree_; }
  [[nodiscard]] const tree::TreeManagerT<RT>& tree() const { return tree_; }
  [[nodiscard]] DisseminationT<RT>& dissemination() { return dissemination_; }
  [[nodiscard]] const DisseminationT<RT>& dissemination() const {
    return dissemination_;
  }
  [[nodiscard]] const GoCastConfig& config() const { return *config_; }
  [[nodiscard]] const membership::LandmarkVector& landmarks() const {
    return own_landmarks_;
  }

  // -- net::Endpoint --
  void handle_message(NodeId from, const net::MessagePtr& msg) override;
  void handle_send_failure(NodeId to, const net::MessagePtr& msg) override;

 private:
  void measure_landmarks();
  void dispatch_message(NodeId from, const net::MessagePtr& msg);
  void on_join_request(NodeId from);
  void on_join_reply(const overlay::JoinReplyMsg& msg);

  NodeId id_;
  RT rt_;
  std::shared_ptr<const GoCastConfig> config_;
  /// Stable storage for the fault behavior; overlay and dissemination hold a
  /// const pointer to it, so a runtime flip is visible everywhere at once.
  FaultBehavior behavior_;
  membership::PartialView view_;
  overlay::OverlayManagerT<RT> overlay_;
  tree::TreeManagerT<RT> tree_;
  DisseminationT<RT> dissemination_;
  membership::LandmarkVector own_landmarks_;
};

/// The simulation-backed node used by the harness and tests.
using GoCastNode = GoCastNodeT<runtime::SimRuntime>;

}  // namespace gocast::core

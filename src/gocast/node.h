// A complete GoCast node: partial membership view, overlay maintenance,
// embedded tree, and the dissemination layer, wired to a runtime backend.
// This is the main public entry point for using the protocol.
//
// Template over a runtime context (see runtime/context.h): the GoCastNode
// alias binds the simulator; tools/gocastd instantiates
// GoCastNodeT<runtime::RealtimeContext> to run live nodes over the real-time
// loopback transport. Bodies live in node.cpp with explicit instantiations
// for both backends.
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "common/fault_behavior.h"
#include "common/rng.h"
#include "common/types.h"
#include "gocast/dissemination.h"
#include "gocast/group_directory.h"
#include "gocast/params.h"
#include "gocast/suspicion.h"
#include "membership/partial_view.h"
#include "net/endpoint.h"
#include "overlay/overlay_manager.h"
#include "runtime/context.h"
#include "runtime/sim_runtime.h"
#include "tree/tree_manager.h"

namespace gocast::core {

template <runtime::Context RT>
class GoCastNodeT final : public net::Endpoint {
 public:
  /// Registers itself as `id`'s endpoint on the runtime.
  GoCastNodeT(NodeId id, RT rt, GoCastConfig config, Rng rng);

  /// Shared-config variant: nodes of one deployment reference a single
  /// immutable GoCastConfig instead of each holding a ~400-byte copy (the
  /// config is normalized on the way in; an already-consistent one is
  /// shared as-is).
  GoCastNodeT(NodeId id, RT rt, std::shared_ptr<const GoCastConfig> config,
              Rng rng);

  GoCastNodeT(const GoCastNodeT&) = delete;
  GoCastNodeT& operator=(const GoCastNodeT&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }

  /// Starts all protocol timers and measures landmark RTTs. `stagger`
  /// de-synchronizes periodic activity across nodes.
  void start(SimTime stagger);
  void stop();

  /// Freezes overlay and tree maintenance (Fig 3(b) stress mode): no link
  /// adds/drops/replacements, no tree repair. Dissemination keeps running.
  void freeze();

  /// Crashes the node: marks it dead on the runtime and stops all timers.
  void kill();

  /// Installs (or, with a default-constructed value, cures) an adversarial
  /// or slow-node behavior (fault injection). Subsystems observe the change
  /// immediately; the node itself stays alive.
  void set_fault_behavior(const FaultBehavior& behavior) {
    behavior_ = behavior;
  }
  [[nodiscard]] const FaultBehavior& fault_behavior() const {
    return behavior_;
  }

  /// Joins an existing overlay through a known bootstrap node: requests its
  /// member list; the maintenance protocols then establish links.
  void join_via(NodeId bootstrap);

  /// Seeds the membership view directly (harness initialization).
  void seed_view(std::span<const membership::MemberEntry> entries);

  /// Installs a pre-established overlay link (harness initialization; must
  /// be mirrored on the peer).
  void bootstrap_link(NodeId peer, overlay::LinkKind kind);

  /// Makes this node the tree root.
  void become_root();

  /// Starts a multicast from this node.
  MsgId multicast(std::size_t payload_bytes);
  MsgId multicast() { return multicast(config_->dissemination.payload_bytes); }

  void set_delivery_hook(DeliveryHook hook);

  // -- multi-group (DESIGN.md §10) --

  /// Switches the node into multi-group mode against a shared directory.
  /// Must be called before start(). Group 0 (the base group every node is in)
  /// keeps the inline tree/dissemination instances; extra groups are joined
  /// with join_group(). When config.multiplex_gossip is set, per-group gossip
  /// timers are replaced by one node-level grouped gossip.
  void enable_multigroup(std::shared_ptr<const GroupDirectory> directory);
  [[nodiscard]] bool multigroup() const { return multigroup_; }

  /// Creates (or reactivates, after leave_group) the per-group protocol
  /// state for extra group `g` (g != 0). Safe before or after start().
  void join_group(GroupId g);
  /// Deactivates group `g`'s tree and dissemination. State is kept (never
  /// destroyed — scheduled callbacks may still reference it) so a later
  /// join_group resumes cleanly.
  void leave_group(GroupId g);
  [[nodiscard]] bool in_group(GroupId g) const;
  /// Sorted ids of the extra groups this node has ever joined (including
  /// currently-left ones; check in_group for liveness).
  [[nodiscard]] const std::vector<GroupId>& extra_group_ids() const {
    return extra_ids_;
  }

  /// Starts a multicast in a specific group this node subscribes to.
  MsgId multicast_in(GroupId g, std::size_t payload_bytes);
  /// Makes this node the root of group `g`'s tree.
  void become_root_in(GroupId g);

  /// Per-group subsystem lookup: group 0 -> the inline instances, else the
  /// group table. Null when the node never joined `g`.
  [[nodiscard]] DisseminationT<RT>* dissemination_for(GroupId g);
  [[nodiscard]] const DisseminationT<RT>* dissemination_for(GroupId g) const;
  [[nodiscard]] tree::TreeManagerT<RT>* tree_for(GroupId g);

  /// Total gossip messages sent by this node: per-group gossips plus grouped
  /// (multiplexed) gossips. The mux saving shows up here: one grouped gossip
  /// replaces one gossip per co-subscribed group.
  [[nodiscard]] std::uint64_t gossip_messages_sent() const;
  [[nodiscard]] std::uint64_t mux_gossips_sent() const {
    return mux_gossips_sent_;
  }

  /// Appends (group, heap bytes) for every extra group's tree+dissemination
  /// state (memory_report per-group breakdown).
  void append_group_memory(
      std::vector<std::pair<GroupId, std::size_t>>& out) const;

  /// Protocol-agnostic counters (shared with the baselines by the harness).
  /// In multi-group mode these aggregate across all groups.
  [[nodiscard]] std::uint64_t deliveries_count() const;
  [[nodiscard]] std::uint64_t duplicates_count() const;

  // -- subsystem access (tests, analysis) --
  [[nodiscard]] membership::PartialView& view() { return view_; }
  [[nodiscard]] const membership::PartialView& view() const { return view_; }
  [[nodiscard]] overlay::OverlayManagerT<RT>& overlay() { return overlay_; }
  [[nodiscard]] const overlay::OverlayManagerT<RT>& overlay() const {
    return overlay_;
  }
  [[nodiscard]] tree::TreeManagerT<RT>& tree() { return tree_; }
  [[nodiscard]] const tree::TreeManagerT<RT>& tree() const { return tree_; }
  [[nodiscard]] DisseminationT<RT>& dissemination() { return dissemination_; }
  [[nodiscard]] const DisseminationT<RT>& dissemination() const {
    return dissemination_;
  }
  [[nodiscard]] const GoCastConfig& config() const { return *config_; }
  [[nodiscard]] const membership::LandmarkVector& landmarks() const {
    return own_landmarks_;
  }

  // -- net::Endpoint --
  void handle_message(NodeId from, const net::MessagePtr& msg) override;
  void handle_send_failure(NodeId to, const net::MessagePtr& msg) override;

 private:
  /// Per-extra-group protocol state: a tree and a dissemination instance
  /// sharing the node-global overlay, view, and suspicion ledger. Never
  /// destroyed once created (deactivate-not-destroy; see leave_group).
  struct GroupState {
    GroupState(NodeId id, RT rt, membership::PartialView& view,
               overlay::OverlayManagerT<RT>& overlay,
               const GoCastConfig& config, GroupId group,
               SuspicionLedger* ledger, Rng rng)
        : tree(id, rt, overlay, config.tree, group),
          diss(id, rt, view, overlay, config.tree.enabled ? &tree : nullptr,
               config.dissemination, config.defense,
               rng.fork("dissemination"), group, ledger),
          peer_rng(rng.fork("peers")) {}
    tree::TreeManagerT<RT> tree;
    DisseminationT<RT> diss;
    /// Draws directory fallback gossip peers (refresh_group_peers).
    Rng peer_rng;
    /// Sticky directory-sampled peers, oldest first. Replaced slowly — a
    /// fallback must outlive several gossip rotations or its queued digests
    /// are recycled before its turn ever comes (see refresh_group_peers).
    std::vector<NodeId> fallbacks;
    /// Keeper ticks seen; paces fallback remixing.
    std::uint64_t keeper_ticks = 0;
    /// Recent gossip contacts (FIFO, newest last): members who sent us a
    /// digest for this group but are not in our peer set. Reciprocating —
    /// folding them into the next refresh — gives every member an in-edge:
    /// a member nobody happened to sample still reaches the group through
    /// its own out-edges, because those peers gossip back.
    std::vector<NodeId> contacts;
    /// Reused scratch for the refreshed peer set.
    std::vector<NodeId> peer_buf;
  };

  void measure_landmarks();
  void apply_landmarks();
  void dispatch_message(NodeId from, const net::MessagePtr& msg);
  void on_join_request(NodeId from);
  void on_join_reply(const overlay::JoinReplyMsg& msg);
  void on_grouped_gossip(NodeId from, const GroupedGossipMsg& msg);
  void on_mux_timer();
  void on_keeper_timer();
  void refresh_group_peers(GroupId g, GroupState& st);
  void note_group_contact(GroupId g, NodeId from);
  [[nodiscard]] GroupState* find_group(GroupId g);
  [[nodiscard]] const GroupState* find_group(GroupId g) const;

  NodeId id_;
  RT rt_;
  std::shared_ptr<const GoCastConfig> config_;
  /// Stable storage for the fault behavior; overlay and dissemination hold a
  /// const pointer to it, so a runtime flip is visible everywhere at once.
  FaultBehavior behavior_;
  /// Node-global suspicion ledger (ISSUE: per-neighbor trust is a property
  /// of the node pair, not of any one group) shared by every group's
  /// dissemination instance.
  SuspicionLedger suspicion_;
  membership::PartialView view_;
  overlay::OverlayManagerT<RT> overlay_;
  tree::TreeManagerT<RT> tree_;
  DisseminationT<RT> dissemination_;
  membership::LandmarkVector own_landmarks_;

  // -- multi-group state (empty / inert unless enable_multigroup ran) --
  std::shared_ptr<const GroupDirectory> directory_;
  /// Sorted by group id (binary-search lookup). unique_ptr keeps each
  /// GroupState heap-stable: scheduled callbacks and overlay listeners hold
  /// raw pointers across vector growth. A node subscribes to a handful of
  /// groups, so a sorted vector beats a hash table here.
  std::vector<std::pair<GroupId, std::unique_ptr<GroupState>>> extra_groups_;
  /// Sorted group ids mirroring extra_groups_ keys (cheap iteration and the
  /// extra_group_ids() accessor).
  std::vector<GroupId> extra_ids_;
  Rng group_rng_;
  DeliveryHook delivery_hook_;
  std::unique_ptr<runtime::PeriodicTimer<RT>> mux_timer_;
  std::unique_ptr<runtime::PeriodicTimer<RT>> keeper_timer_;
  std::size_t mux_idx_ = 0;
  /// Reused scratch: union of overlay neighbors and every active extra
  /// group's gossip peers, rebuilt each mux period.
  std::vector<NodeId> mux_rotation_;
  std::uint64_t mux_gossips_sent_ = 0;
  bool multigroup_ = false;
  bool started_ = false;
  SimTime start_stagger_ = 0.0;
};

/// The simulation-backed node used by the harness and tests.
using GoCastNode = GoCastNodeT<runtime::SimRuntime>;

}  // namespace gocast::core

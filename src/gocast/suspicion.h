// Node-global suspicion/eviction state (DESIGN.md §9), factored out of the
// dissemination layer so that every per-group Dissemination instance on a
// multi-group node shares ONE ledger: evidence against a neighbor observed
// in any group counts against it everywhere, and an eviction (an overlay
// action) is naturally node-scoped. Single-group deployments keep a private
// ledger inside their lone Dissemination — same behavior, same bytes.
#pragma once

#include <vector>

#include "common/flat_map.h"
#include "common/types.h"

namespace gocast::core {

struct SuspicionLedger {
  struct State {
    double score = 0.0;
    SimTime updated = 0.0;
  };
  struct Eviction {
    NodeId peer;
    SimTime at;
  };

  common::FlatMap<NodeId, State> scores;
  /// Suspicion-threshold evictions, with timestamps (time-to-evict analysis
  /// in bench/ext_byzantine).
  std::vector<Eviction> evictions;

  [[nodiscard]] std::size_t memory_bytes() const {
    return scores.memory_bytes() + evictions.capacity() * sizeof(Eviction);
  }
};

}  // namespace gocast::core

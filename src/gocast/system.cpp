#include "gocast/system.h"

#include <cmath>
#include <map>
#include <mutex>
#include <unordered_set>

#include "common/assert.h"
#include "common/logging.h"

namespace gocast::core {

std::shared_ptr<const net::LatencyModel> default_latency_model(
    std::uint64_t seed, std::size_t sites) {
  static std::mutex mutex;
  static std::map<std::pair<std::uint64_t, std::size_t>,
                  std::shared_ptr<const net::LatencyModel>>
      cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto key = std::make_pair(seed, sites);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  net::SyntheticKingParams params;
  params.sites = sites;
  auto model = std::shared_ptr<const net::LatencyModel>(
      net::make_synthetic_king(params, Rng(seed).fork("king")));
  cache[key] = model;
  return model;
}

void System::init_sharding() {
  std::size_t shards = config_.shard_count;
  if (shards <= 1) return;
  if (config_.groups.group_count > 1) {
    GOCAST_WARN("shard_count " << shards
                               << " unsupported with multi-group topologies; "
                                  "falling back to the serial engine");
    return;
  }
  if (config_.net.record_site_pairs) {
    GOCAST_WARN("shard_count " << shards
                               << " unsupported with site-pair accounting; "
                                  "falling back to the serial engine");
    return;
  }
  if (config_.node_count >= (std::size_t{1} << 20)) {
    GOCAST_WARN("shard_count " << shards
                               << " unsupported at >= 2^20 nodes (ordering-key "
                                  "width); falling back to the serial engine");
    return;
  }
  const std::size_t sites = latency_->site_count();
  shards = std::min(shards, sites);
  if (shards <= 1) {
    GOCAST_WARN("single-site topology cannot be sharded; "
                "falling back to the serial engine");
    return;
  }
  // Contiguous site ranges: site s -> shard s*K/S. Nodes are placed on sites
  // round-robin, so the shards stay balanced in node count as well.
  std::vector<std::uint32_t> site_shard(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    site_shard[s] = static_cast<std::uint32_t>(s * shards / sites);
  }
  const SimTime lookahead = latency_->min_cross_partition_one_way(site_shard);
  if (!(lookahead >= config_.pdes_lookahead_floor) || lookahead == kNever) {
    GOCAST_WARN("minimum cross-partition latency "
                << lookahead << "s is below the lookahead floor "
                << config_.pdes_lookahead_floor
                << "s; falling back to the serial engine");
    return;
  }
  sharded_ = std::make_unique<sim::ShardedEngine>(sim::ShardedEngine::Config{
      shards, lookahead, config_.pdes_serial});
  std::vector<std::uint16_t> shard_of(config_.node_count);
  for (NodeId id = 0; id < config_.node_count; ++id) {
    shard_of[id] = static_cast<std::uint16_t>(site_shard[network_->site_of(id)]);
  }
  // Stateless draw seed derived directly from the run seed (not from rng_:
  // the system's own stream must keep consuming exactly as it does
  // unsharded, so barrier-context draws stay byte-identical).
  std::uint64_t state = config_.seed ^ 0x70646573'64726177ULL;  // "pdesdraw"
  network_->enable_sharding(*sharded_, std::move(shard_of), splitmix64(state));
  GOCAST_INFO("sharded PDES: " << shards << " shards, lookahead "
                               << lookahead * 1000.0 << " ms"
                               << (config_.pdes_serial ? " (serial windows)"
                                                       : ""));
}

System::System(SystemConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  GOCAST_ASSERT(config_.node_count >= 2);

  latency_ = config_.latency != nullptr
                 ? config_.latency
                 : default_latency_model(config_.seed);
  network_ = std::make_unique<net::Network>(engine_, latency_, config_.net,
                                            rng_.fork("network"));
  network_->add_nodes_round_robin(config_.node_count);
  init_sharding();

  // One landmark-interning store for the whole deployment — sharing across
  // views is what collapses the duplicated member records (a node known to v
  // views costs one 32-byte vector instead of v of them). Stored back into
  // config_ so memory_report() can reach it. Sharded runs use one store per
  // shard instead (the intern tables are single-threaded; landmark vectors
  // cross shards by value on the wire, never as handles).
  if (sharded_ == nullptr) {
    if (config_.node.landmark_store == nullptr) {
      config_.node.landmark_store =
          std::make_shared<membership::LandmarkStore>();
    }
  } else {
    shard_stores_.resize(sharded_->shard_count());
    for (auto& store : shard_stores_) {
      store = std::make_shared<membership::LandmarkStore>();
    }
  }
  // Landmarks: the first k nodes (the bootstrap set a deployment would use).
  GoCastConfig node_config = config_.node;
  node_config.landmarks.clear();
  std::size_t landmark_count =
      std::min({config_.landmark_count, config_.node_count,
                membership::kLandmarkSlots});
  for (std::size_t i = 0; i < landmark_count; ++i) {
    node_config.landmarks.push_back(static_cast<NodeId>(i));
  }

  GOCAST_ASSERT(config_.deferred_nodes < config_.node_count - 1);

  // Uniform deployments share one immutable config across all nodes (one per
  // shard when sharded — the copies differ only in landmark_store);
  // capacity-aware ones need a per-node copy for the scaled degree target.
  std::shared_ptr<const GoCastConfig> shared_config;
  std::vector<std::shared_ptr<const GoCastConfig>> shard_configs;
  if (!config_.capacity_of) {
    if (sharded_ == nullptr) {
      shared_config = std::make_shared<const GoCastConfig>(node_config);
    } else {
      shard_configs.resize(sharded_->shard_count());
      for (std::size_t k = 0; k < shard_configs.size(); ++k) {
        GoCastConfig copy = node_config;
        copy.landmark_store = shard_stores_[k];
        shard_configs[k] = std::make_shared<const GoCastConfig>(copy);
      }
    }
  }

  nodes_.reserve(config_.node_count);
  for (NodeId id = 0; id < config_.node_count; ++id) {
    std::shared_ptr<const GoCastConfig> this_config =
        sharded_ != nullptr && !config_.capacity_of
            ? shard_configs[network_->shard_of(id)]
            : shared_config;
    if (config_.capacity_of) {
      // Capacity-aware degrees: scale the nearby target per node.
      double capacity = config_.capacity_of(id);
      GOCAST_ASSERT_MSG(capacity > 0.0, "capacity must be positive");
      int scaled = static_cast<int>(
          std::lround(node_config.overlay.target_near_degree * capacity));
      GoCastConfig scaled_config = node_config;
      scaled_config.overlay.target_near_degree = std::max(1, scaled);
      if (sharded_ != nullptr) {
        scaled_config.landmark_store = shard_stores_[network_->shard_of(id)];
      }
      this_config = std::make_shared<const GoCastConfig>(scaled_config);
    }
    // Owner-aware runtimes bind each node to its shard engine; the implicit
    // Network& conversion keeps the unsharded path byte-identical.
    nodes_.push_back(std::make_unique<GoCastNode>(
        id, runtime::SimRuntime(*network_, id), std::move(this_config),
        rng_.fork(static_cast<std::uint64_t>(id))));
  }
}

void System::start() {
  GOCAST_ASSERT_MSG(!started_, "System::start called twice");
  started_ = true;
  // Deferred nodes stay offline until spawn_next().
  std::size_t n = nodes_.size() - config_.deferred_nodes;
  for (NodeId id = static_cast<NodeId>(n); id < nodes_.size(); ++id) {
    network_->fail_node(id);
  }
  Rng init_rng = rng_.fork("init");

  // Seed partial views with uniform random subsets. The scratch containers
  // are hoisted out of the node loop: clearing keeps their capacity, so the
  // seeding pass allocates O(view_seed) once instead of O(n) times (the
  // draws are identical either way).
  std::size_t view_seed = std::min(config_.initial_view_size, n - 1);
  std::vector<membership::MemberEntry> seed;
  seed.reserve(view_seed);
  std::unordered_set<NodeId> chosen;
  chosen.reserve(view_seed);
  for (NodeId id = 0; id < n; ++id) {
    seed.clear();
    chosen.clear();
    while (chosen.size() < view_seed) {
      NodeId other = static_cast<NodeId>(init_rng.next_below(n));
      if (other == id || !chosen.insert(other).second) continue;
      membership::MemberEntry entry;
      entry.id = other;
      entry.heard_at = 0.0;
      seed.push_back(entry);
    }
    nodes_[id]->seed_view(seed);
  }

  // Each node initiates bootstrap_links_per_node random links (both sides
  // install the link, as an accepted TCP connection would).
  for (NodeId id = 0; id < n; ++id) {
    std::size_t made = 0;
    std::size_t attempts = 0;
    while (made < config_.bootstrap_links_per_node && attempts < 20 * n) {
      ++attempts;
      NodeId other = static_cast<NodeId>(init_rng.next_below(n));
      if (other == id || nodes_[id]->overlay().is_neighbor(other)) continue;
      nodes_[id]->bootstrap_link(other, overlay::LinkKind::kRandom);
      nodes_[other]->bootstrap_link(id, overlay::LinkKind::kRandom);
      ++made;
    }
  }

  // One random node is designated the tree root (the paper: "originally,
  // the first node in the overlay acts as the root").
  if (config_.node.tree.enabled && config_.node.dissemination.use_tree) {
    NodeId root = static_cast<NodeId>(init_rng.next_below(n));
    nodes_[root]->become_root();
  }

  // Multi-group wiring. Deliberately placed after all init_rng draws and
  // gated on group_count > 1: a single-group deployment takes none of these
  // branches and consumes no extra randomness, keeping it byte-identical to
  // the pre-multigroup simulator. The directory derives memberships from its
  // own fork of the seed.
  if (config_.groups.group_count > 1) {
    directory_ = std::make_shared<GroupDirectory>(config_.groups, n,
                                                  config_.seed);
    std::shared_ptr<const GroupDirectory> shared_dir = directory_;
    for (NodeId id = 0; id < n; ++id) {
      nodes_[id]->enable_multigroup(shared_dir);
    }
    const bool trees = config_.node.tree.enabled &&
                       config_.node.dissemination.use_tree;
    for (GroupId g = 1; g < config_.groups.group_count; ++g) {
      const std::vector<NodeId>& members = directory_->members(g);
      if (members.empty()) continue;
      for (NodeId m : members) nodes_[m]->join_group(g);
      // Ring bootstrap over the (sorted) membership so every group's
      // subgraph starts connected, plus one diameter chord on larger groups
      // to halve the initial gossip distance. The link keeper takes over
      // from there.
      for (std::size_t i = 0; i < members.size(); ++i) {
        NodeId a = members[i];
        NodeId b = members[(i + 1) % members.size()];
        if (a == b || nodes_[a]->overlay().is_neighbor(b)) continue;
        nodes_[a]->bootstrap_link(b, overlay::LinkKind::kRandom);
        nodes_[b]->bootstrap_link(a, overlay::LinkKind::kRandom);
      }
      if (members.size() >= 6) {
        NodeId a = members.front();
        NodeId b = members[members.size() / 2];
        if (!nodes_[a]->overlay().is_neighbor(b)) {
          nodes_[a]->bootstrap_link(b, overlay::LinkKind::kRandom);
          nodes_[b]->bootstrap_link(a, overlay::LinkKind::kRandom);
        }
      }
      if (trees) nodes_[members.front()]->become_root_in(g);
    }
  }

  for (NodeId id = 0; id < n; ++id) {
    SimTime stagger =
        init_rng.next_range(0.0, config_.node.overlay.maintenance_period);
    nodes_[id]->start(stagger);
  }
}

std::vector<NodeId> System::fail_random_fraction(double fraction) {
  GOCAST_ASSERT(fraction >= 0.0 && fraction <= 1.0);
  std::vector<NodeId> alive = alive_nodes();
  Rng fail_rng = rng_.fork("failures");
  fail_rng.shuffle(alive);
  std::size_t count = static_cast<std::size_t>(
      static_cast<double>(alive.size()) * fraction + 0.5);
  std::vector<NodeId> killed(alive.begin(),
                             alive.begin() + static_cast<long>(count));
  for (NodeId id : killed) nodes_[id]->kill();
  GOCAST_INFO("failed " << killed.size() << " of " << alive.size() << " nodes");
  return killed;
}

void System::freeze_all() {
  for (auto& node : nodes_) {
    if (network_->alive(node->id())) node->freeze();
  }
}

NodeId System::random_alive_node() {
  GOCAST_ASSERT(network_->alive_count() > 0);
  for (;;) {
    NodeId id = static_cast<NodeId>(rng_.next_below(nodes_.size()));
    if (network_->alive(id)) return id;
  }
}

void System::revive_node(NodeId id) {
  GOCAST_ASSERT_MSG(started_, "System::revive_node before start");
  GOCAST_ASSERT(id < nodes_.size());
  if (network_->alive(id)) return;
  GOCAST_ASSERT_MSG(network_->alive_count() > 0, "no bootstrap node alive");
  // Shed stale links while still marked dead (outbound drop notifications
  // are suppressed): a restarted process holds none of its old connections.
  GoCastNode& node = *nodes_[id];
  for (NodeId peer : node.overlay().neighbor_ids()) {
    node.overlay().on_peer_failure(peer);
  }
  network_->recover_node(id);
  NodeId bootstrap;
  do {
    bootstrap = random_alive_node();
  } while (bootstrap == id);
  node.join_via(bootstrap);
  node.start(rng_.next_range(0.0, config_.node.overlay.maintenance_period));
  GOCAST_INFO("revived node " << id << " via bootstrap " << bootstrap);
}

void System::set_delivery_hook(const DeliveryHook& hook) {
  for (auto& node : nodes_) node->set_delivery_hook(hook);
}

void System::group_join(NodeId id, GroupId g) {
  GOCAST_ASSERT_MSG(directory_ != nullptr, "group_join without multigroup");
  GOCAST_ASSERT(id < nodes_.size());
  if (directory_->subscribed(id, g)) return;
  directory_->subscribe(id, g);
  nodes_[id]->join_group(g);
}

void System::group_leave(NodeId id, GroupId g) {
  GOCAST_ASSERT_MSG(directory_ != nullptr, "group_leave without multigroup");
  GOCAST_ASSERT(id < nodes_.size());
  if (!directory_->subscribed(id, g)) return;
  directory_->unsubscribe(id, g);
  nodes_[id]->leave_group(g);
}

NodeId System::spawn_next() {
  GOCAST_ASSERT_MSG(started_, "System::spawn_next before start");
  if (spawned_ >= config_.deferred_nodes) return kInvalidNode;
  NodeId id = static_cast<NodeId>(nodes_.size() - config_.deferred_nodes +
                                  spawned_);
  ++spawned_;
  network_->recover_node(id);
  NodeId bootstrap;
  do {
    bootstrap = random_alive_node();
  } while (bootstrap == id);
  nodes_[id]->join_via(bootstrap);
  nodes_[id]->start(
      rng_.next_range(0.0, config_.node.overlay.maintenance_period));
  GOCAST_INFO("spawned node " << id << " via bootstrap " << bootstrap);
  return id;
}

System::MemoryReport System::memory_report() const {
  MemoryReport report;
  report.engine_bytes = sharded_ != nullptr ? sharded_->memory_bytes()
                                            : engine_.memory_bytes();
  report.network_bytes = network_->memory_bytes();
  report.node_object_bytes = nodes_.size() * sizeof(GoCastNode);
  std::map<GroupId, std::size_t> per_group;
  for (const auto& node : nodes_) {
    report.view_bytes += node->view().memory_bytes();
    report.dissemination_bytes += node->dissemination().memory_bytes();
    report.overlay_bytes += node->overlay().memory_bytes();
    report.tree_bytes += node->tree().memory_bytes();
    if (directory_ != nullptr) {
      per_group[kDefaultGroup] += node->dissemination().memory_bytes() +
                                  node->tree().memory_bytes();
      for (GroupId g : node->extra_group_ids()) {
        const DisseminationT<runtime::SimRuntime>* diss =
            node->dissemination_for(g);
        tree::TreeManager* tree = node->tree_for(g);
        report.dissemination_bytes += diss->memory_bytes();
        report.tree_bytes += tree->memory_bytes();
        per_group[g] += diss->memory_bytes() + tree->memory_bytes();
      }
    }
  }
  report.group_bytes.assign(per_group.begin(), per_group.end());
  const auto& store = config_.node.landmark_store;
  if (store != nullptr) {
    report.landmark_store_bytes = store->memory_bytes();
    report.landmark_unique = store->unique_count();
  }
  for (const auto& shard_store : shard_stores_) {
    report.landmark_store_bytes += shard_store->memory_bytes();
    report.landmark_unique += shard_store->unique_count();
  }
  return report;
}

std::vector<NodeId> System::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (network_->alive(id)) out.push_back(id);
  }
  return out;
}

}  // namespace gocast::core

#include "overlay/neighbor_table.h"

#include <algorithm>

#include "common/assert.h"

namespace gocast::overlay {

bool NeighborTable::add(NodeId id, LinkKind kind, SimTime rtt, SimTime now) {
  auto [it, inserted] = table_.try_emplace(id);
  if (!inserted) return false;
  it->second.kind = kind;
  it->second.rtt = rtt;
  it->second.added_at = now;
  it->second.last_heard = now;
  (kind == LinkKind::kRandom ? rand_degree_ : near_degree_) += 1;
  return true;
}

std::optional<NeighborInfo> NeighborTable::remove(NodeId id) {
  auto it = table_.find(id);
  if (it == table_.end()) return std::nullopt;
  NeighborInfo info = it->second;
  (info.kind == LinkKind::kRandom ? rand_degree_ : near_degree_) -= 1;
  table_.erase(it);
  GOCAST_ASSERT(rand_degree_ >= 0 && near_degree_ >= 0);
  return info;
}

const NeighborInfo* NeighborTable::find(NodeId id) const {
  auto it = table_.find(id);
  return it == table_.end() ? nullptr : &it->second;
}

void NeighborTable::update_degrees(NodeId id, const net::PeerDegrees& degrees,
                                   SimTime now) {
  auto it = table_.find(id);
  if (it == table_.end()) return;
  it->second.degrees = degrees;
  it->second.last_heard = now;
}

void NeighborTable::update_rtt(NodeId id, SimTime rtt) {
  auto it = table_.find(id);
  if (it != table_.end()) it->second.rtt = rtt;
}

SimTime NeighborTable::max_nearby_rtt() const {
  SimTime worst = 0.0;
  for (const auto& [id, info] : table_) {
    if (info.kind == LinkKind::kNearby && info.rtt != kNever) {
      worst = std::max(worst, info.rtt);
    }
  }
  return worst;
}

std::optional<NodeId> NeighborTable::worst_replaceable_nearby(
    int min_near_degree) const {
  NodeId worst = kInvalidNode;
  SimTime worst_rtt = -1.0;
  for (const auto& [id, info] : table_) {
    if (info.kind != LinkKind::kNearby) continue;
    if (info.degrees.near_degree < min_near_degree) continue;
    SimTime rtt = info.rtt == kNever ? 0.0 : info.rtt;
    if (rtt > worst_rtt) {
      worst_rtt = rtt;
      worst = id;
    }
  }
  if (worst == kInvalidNode) return std::nullopt;
  return worst;
}

std::vector<NodeId> NeighborTable::droppable_nearby(int min_near_degree) const {
  std::vector<std::pair<SimTime, NodeId>> candidates;
  for (const auto& [id, info] : table_) {
    if (info.kind != LinkKind::kNearby) continue;
    if (info.degrees.near_degree < min_near_degree) continue;
    candidates.emplace_back(info.rtt == kNever ? 0.0 : info.rtt, id);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<NodeId> out;
  out.reserve(candidates.size());
  for (const auto& [rtt, id] : candidates) out.push_back(id);
  return out;
}

std::vector<NodeId> NeighborTable::random_with_degree_above(int threshold) const {
  std::vector<NodeId> out;
  for (const auto& [id, info] : table_) {
    if (info.kind == LinkKind::kRandom && info.degrees.rand_degree > threshold) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());  // determinism across hash orders
  return out;
}

std::vector<NodeId> NeighborTable::ids() const {
  std::vector<NodeId> out;
  out.reserve(table_.size());
  for (const auto& [id, info] : table_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> NeighborTable::ids_of_kind(LinkKind kind) const {
  std::vector<NodeId> out;
  for (const auto& [id, info] : table_) {
    if (info.kind == kind) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double NeighborTable::mean_rtt() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [id, info] : table_) {
    if (info.rtt != kNever) {
      sum += info.rtt;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double NeighborTable::mean_rtt_of_kind(LinkKind kind) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& [id, info] : table_) {
    if (info.kind == kind && info.rtt != kNever) {
      sum += info.rtt;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

}  // namespace gocast::overlay

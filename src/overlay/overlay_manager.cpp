#include "overlay/overlay_manager.h"

#include <algorithm>

#include "common/assert.h"
#include "common/logging.h"
#include "coord/triangulation.h"
#include "runtime/realtime_runtime.h"
#include "runtime/udp_runtime.h"

namespace gocast::overlay {

template <runtime::Context RT>
OverlayManagerT<RT>::OverlayManagerT(NodeId self, RT rt,
                                     membership::PartialView& view,
                                     OverlayParams params, Rng rng)
    : self_(self),
      rt_(rt),
      view_(view),
      params_(params),
      rng_(std::move(rng)),
      maintenance_timer_(rt_, params.maintenance_period,
                         [this] { on_maintenance(); }) {
  GOCAST_ASSERT(params_.target_rand_degree >= 0);
  GOCAST_ASSERT(params_.target_near_degree >= 0);
  GOCAST_ASSERT(params_.target_degree() > 0);
  GOCAST_ASSERT(params_.maintenance_period > 0.0);
  GOCAST_ASSERT(params_.replace_ratio > 0.0 && params_.replace_ratio <= 1.0);
  GOCAST_ASSERT(params_.replace_floor_offset >= 0);
  GOCAST_ASSERT(params_.drop_slack >= 1);
  GOCAST_ASSERT(params_.maintenance_period_max >= params_.maintenance_period);
  GOCAST_ASSERT(params_.maintenance_backoff >= 1.0);
  // Flat tables: size once so steady-state maintenance never rehashes.
  table_.reserve(static_cast<std::size_t>(params_.target_degree()) * 2 + 8);
  pending_adds_.reserve(16);
  pending_pings_.reserve(16);
}

template <runtime::Context RT>
void OverlayManagerT<RT>::start(SimTime stagger) {
  maintenance_timer_.start(stagger + params_.maintenance_period);
}

template <runtime::Context RT>
void OverlayManagerT<RT>::stop() {
  maintenance_timer_.stop();
}

template <runtime::Context RT>
void OverlayManagerT<RT>::freeze() {
  frozen_ = true;
}

template <runtime::Context RT>
void OverlayManagerT<RT>::bootstrap_link(NodeId peer, LinkKind kind) {
  GOCAST_ASSERT(peer != self_);
  if (table_.has(peer)) return;
  establish(peer, kind);
}

template <runtime::Context RT>
void OverlayManagerT<RT>::add_listener(OverlayListener* listener) {
  GOCAST_ASSERT(listener != nullptr);
  listeners_.push_back(listener);
}

template <runtime::Context RT>
void OverlayManagerT<RT>::set_own_landmarks(
    const membership::LandmarkVector& landmarks) {
  own_landmarks_ = landmarks;
}

template <runtime::Context RT>
net::PeerDegrees OverlayManagerT<RT>::my_degrees() const {
  net::PeerDegrees d;
  if (behavior_ != nullptr && behavior_->degree_liar) {
    // The lie rides on every outgoing message: peers cache these degrees
    // and feed them into the C1/C4 victim checks and transfer decisions.
    d.rand_degree = behavior_->fake_rand_degree;
    d.near_degree = behavior_->fake_near_degree;
    d.max_nearby_rtt = static_cast<float>(table_.max_nearby_rtt());
    return d;
  }
  d.rand_degree = static_cast<std::uint16_t>(table_.rand_degree());
  d.near_degree = static_cast<std::uint16_t>(table_.near_degree());
  d.max_nearby_rtt = static_cast<float>(table_.max_nearby_rtt());
  return d;
}

// ---------------------------------------------------------------------------
// Maintenance cycle
// ---------------------------------------------------------------------------

template <runtime::Context RT>
void OverlayManagerT<RT>::on_maintenance() {
  if (frozen_) return;
  prune_pending();
  keepalive_check();
  maintain_random();
  if (params_.maintain_nearby) maintain_nearby();

  if (params_.adaptive_maintenance) {
    // Future-work extension the paper sketches: back the cycle off while
    // the neighbor set is stable, snap back on any change.
    std::uint64_t changes = links_added_ + links_dropped_;
    if (changes == last_cycle_changes_) {
      maintenance_timer_.set_period(
          std::min(maintenance_timer_.period() * params_.maintenance_backoff,
                   params_.maintenance_period_max));
    } else {
      maintenance_timer_.set_period(params_.maintenance_period);
    }
    last_cycle_changes_ = changes;
  }
}

template <runtime::Context RT>
void OverlayManagerT<RT>::keepalive_check() {
  // TCP-keepalive analogue: probe the most-stale neighbor so degree caches
  // stay fresh and dead neighbors are discovered even when the higher
  // layers are quiet. At most one probe per maintenance cycle.
  SimTime now = rt_.now();
  NodeId stalest = kInvalidNode;
  SimTime oldest = now - params_.keepalive_interval;
  for (const auto& [peer, info] : table_.raw()) {
    if (info.last_heard < oldest) {
      oldest = info.last_heard;
      stalest = peer;
    }
  }
  if (stalest != kInvalidNode) {
    // Pre-date last_heard refresh via the pong (or removal via the reset).
    table_.update_degrees(stalest, table_.find(stalest)->degrees, now);
    measure_rtt(stalest, [](SimTime) {});
  }
}

template <runtime::Context RT>
void OverlayManagerT<RT>::prune_pending() {
  SimTime now = rt_.now();
  for (auto it = pending_adds_.begin(); it != pending_adds_.end();) {
    if (now - it->second.started > params_.pending_timeout) {
      (it->second.kind == LinkKind::kRandom ? pending_rand_ : pending_near_) -= 1;
      it = pending_adds_.erase(it);
    } else {
      ++it;
    }
  }
  for (std::size_t i = 0; i < pending_pings_.size();) {
    if (now - pending_pings_[i].sent > params_.pending_timeout) {
      pending_pings_[i] = std::move(pending_pings_.back());
      pending_pings_.pop_back();
    } else {
      ++i;
    }
  }
  for (auto it = blacklist_.begin(); it != blacklist_.end();) {
    if (now >= it->second) {
      it = blacklist_.erase(it);
    } else {
      ++it;
    }
  }
}

template <runtime::Context RT>
void OverlayManagerT<RT>::maintain_random() {
  const int c_rand = params_.target_rand_degree;
  int degree = table_.rand_degree();

  if (degree + pending_rand_ < c_rand) {
    // Add: connect to a uniformly random member (§2.2.2).
    for (int attempt = 0; attempt < 3; ++attempt) {
      NodeId target = view_.random_member();
      if (target == kInvalidNode) return;
      if (!eligible_candidate(target)) continue;
      pending_adds_[target] = PendingAdd{LinkKind::kRandom, rt_.now()};
      ++pending_rand_;
      send_request(target, LinkKind::kRandom, kNever, /*transfer=*/false);
      return;
    }
    return;
  }

  if (degree >= c_rand + 2) {
    // Operation 1: hand two random neighbors to each other; our degree
    // drops by two, theirs stay unchanged.
    std::vector<NodeId> rand_ids = table_.ids_of_kind(LinkKind::kRandom);
    GOCAST_ASSERT(rand_ids.size() >= 2);
    std::size_t i = static_cast<std::size_t>(rng_.next_below(rand_ids.size()));
    std::size_t j = static_cast<std::size_t>(rng_.next_below(rand_ids.size() - 1));
    if (j >= i) ++j;
    NodeId y = rand_ids[i];
    NodeId z = rand_ids[j];
    rt_.send(self_, y,
             rt_.template make<LinkTransferMsg>(z, my_degrees()));
    drop_link(y, /*notify_peer=*/false);  // the transfer message implies it
    drop_link(z, /*notify_peer=*/true);
    return;
  }

  if (degree == c_rand + 1) {
    // Operation 2: drop the link to a random neighbor whose own random
    // degree exceeds the target; both sides stay >= C_rand.
    std::vector<NodeId> over = table_.random_with_degree_above(c_rand);
    if (!over.empty()) {
      NodeId victim = over[static_cast<std::size_t>(rng_.next_below(over.size()))];
      drop_link(victim, /*notify_peer=*/true);
    }
    // Otherwise stay at C_rand + 1 (the paper proves degrees settle at
    // C_rand or C_rand + 1).
  }
}

template <runtime::Context RT>
void OverlayManagerT<RT>::maintain_nearby() {
  const int c_near = params_.target_near_degree;
  int degree = table_.near_degree();

  if (degree >= c_near + params_.drop_slack) {
    drop_excess_nearby();
    return;
  }
  if (degree + pending_near_ < c_near) {
    start_nearby_add();
    return;
  }
  replace_step();
}

template <runtime::Context RT>
void OverlayManagerT<RT>::drop_excess_nearby() {
  const int c_near = params_.target_near_degree;
  // Drop longest-RTT neighbors first, but only those whose degree is not
  // dangerously low (condition C1's floor), until we are back at C_near.
  std::vector<NodeId> order =
      table_.droppable_nearby(c_near - params_.replace_floor_offset);
  for (NodeId victim : order) {
    if (table_.near_degree() <= c_near) break;
    drop_link(victim, /*notify_peer=*/true);
  }
}

template <runtime::Context RT>
void OverlayManagerT<RT>::start_nearby_add() {
  NodeId candidate = next_nearby_candidate();
  if (candidate == kInvalidNode) return;
  // Measure first so the request carries a real RTT for Q's C3 check.
  pending_adds_[candidate] = PendingAdd{LinkKind::kNearby, rt_.now()};
  ++pending_near_;
  measure_rtt(candidate, [this, candidate](SimTime rtt) {
    auto it = pending_adds_.find(candidate);
    if (it == pending_adds_.end() || it->second.kind != LinkKind::kNearby) return;
    if (table_.has(candidate)) return;  // raced with an inbound add
    send_request(candidate, LinkKind::kNearby, rtt, /*transfer=*/false);
  });
}

template <runtime::Context RT>
void OverlayManagerT<RT>::replace_step() {
  NodeId candidate = next_nearby_candidate();
  if (candidate == kInvalidNode) return;
  if (pending_near_ > 0) return;  // one replacement in flight at a time
  measure_rtt(candidate, [this, candidate](SimTime rtt) {
    evaluate_replace_candidate(candidate, rtt);
  });
}

template <runtime::Context RT>
void OverlayManagerT<RT>::evaluate_replace_candidate(NodeId candidate,
                                                     SimTime rtt) {
  if (frozen_) return;
  if (table_.has(candidate) || pending_adds_.count(candidate) > 0) return;
  if (pending_near_ > 0) return;
  const int c_near = params_.target_near_degree;
  if (table_.near_degree() < c_near) return;  // the add path handles this

  // C1: a replaceable victim must exist (degree floor C_near - 1 with the
  // default offset); among those, the one with the longest RTT is replaced.
  std::optional<NodeId> victim =
      table_.worst_replaceable_nearby(c_near - params_.replace_floor_offset);
  if (!victim.has_value()) return;
  const NeighborInfo* u = table_.find(*victim);
  GOCAST_ASSERT(u != nullptr);

  // C4: only adopt a significantly better link.
  SimTime u_rtt = u->rtt == kNever ? kNever : u->rtt;
  if (!(rtt <= params_.replace_ratio * u_rtt)) return;

  // C2 and C3 are evaluated by the candidate when it receives the request.
  PendingAdd pending{LinkKind::kNearby, rt_.now()};
  pending.replace_victim = *victim;
  pending_adds_[candidate] = pending;
  ++pending_near_;
  send_request(candidate, LinkKind::kNearby, rtt, /*transfer=*/false);
}

template <runtime::Context RT>
NodeId OverlayManagerT<RT>::next_nearby_candidate() {
  if (!initial_queue_built_ && !view_.empty()) build_initial_measure_queue();

  // Phase 1: probe members in increasing estimated latency. The queue is a
  // consume-once vector walked by index; once drained its storage is freed
  // for the rest of the node's lifetime.
  while (measure_head_ < measure_queue_.size()) {
    NodeId id = measure_queue_[measure_head_++];
    if (eligible_candidate(id) && view_.contains(id)) return id;
  }
  if (!measure_queue_.empty()) {
    measure_queue_ = {};
    measure_head_ = 0;
  }

  // Phase 2: round-robin over the (evolving) member list.
  for (std::size_t i = 0; i < view_.size(); ++i) {
    NodeId id = view_.next_round_robin();
    if (id == kInvalidNode) return kInvalidNode;
    if (eligible_candidate(id)) return id;
  }
  return kInvalidNode;
}

template <runtime::Context RT>
void OverlayManagerT<RT>::build_initial_measure_queue() {
  initial_queue_built_ = true;
  std::vector<std::pair<SimTime, NodeId>> est;
  est.reserve(view_.size());
  for (std::size_t i = 0; i < view_.size(); ++i) {
    SimTime estimate =
        coord::estimate_rtt_or_never(own_landmarks_, view_.landmarks_at(i));
    est.emplace_back(estimate, view_.id_at(i));
  }
  std::sort(est.begin(), est.end());
  measure_queue_.reserve(est.size());
  for (const auto& [estimate, id] : est) measure_queue_.push_back(id);
}

template <runtime::Context RT>
bool OverlayManagerT<RT>::eligible_candidate(NodeId id) const {
  return id != self_ && id != kInvalidNode && !table_.has(id) &&
         pending_adds_.count(id) == 0 && !is_blacklisted(id);
}

template <runtime::Context RT>
bool OverlayManagerT<RT>::is_blacklisted(NodeId id) const {
  auto it = blacklist_.find(id);
  return it != blacklist_.end() && rt_.now() < it->second;
}

template <runtime::Context RT>
bool OverlayManagerT<RT>::evict_neighbor(NodeId peer, SimTime blacklist_for) {
  if (blacklist_for > 0.0) {
    blacklist_[peer] = rt_.now() + blacklist_for;
  }
  if (!table_.has(peer)) return false;
  drop_link(peer, /*notify_peer=*/true);
  return true;
}

// ---------------------------------------------------------------------------
// RTT measurement
// ---------------------------------------------------------------------------

template <runtime::Context RT>
void OverlayManagerT<RT>::measure_rtt(NodeId target,
                                      std::function<void(SimTime)> done) {
  GOCAST_ASSERT(target != self_);
  std::uint32_t nonce = next_nonce_++;
  pending_pings_.push_back(PendingPing{nonce, target, rt_.now(), std::move(done)});
  ++pings_sent_;
  rt_.send(self_, target, rt_.template make<PingMsg>(nonce));
}

template <runtime::Context RT>
void OverlayManagerT<RT>::on_ping(NodeId from, const PingMsg& msg) {
  rt_.send(self_, from, rt_.template make<PongMsg>(msg.nonce, my_degrees()));
}

template <runtime::Context RT>
void OverlayManagerT<RT>::on_pong(NodeId from, const PongMsg& msg) {
  auto it = std::find_if(pending_pings_.begin(), pending_pings_.end(),
                         [&](const PendingPing& p) { return p.nonce == msg.nonce; });
  if (it == pending_pings_.end()) return;
  if (it->target != from) return;
  SimTime rtt = rt_.now() - it->sent;
  auto done = std::move(it->done);
  *it = std::move(pending_pings_.back());
  pending_pings_.pop_back();
  table_.update_rtt(from, rtt);  // refresh if the peer is a neighbor
  if (done) done(rtt);
}

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

template <runtime::Context RT>
void OverlayManagerT<RT>::send_request(NodeId target, LinkKind kind, SimTime rtt,
                                       bool transfer) {
  rt_.send(self_, target, rt_.template make<NeighborRequestMsg>(
                              kind, rtt, transfer, my_degrees()));
}

template <runtime::Context RT>
void OverlayManagerT<RT>::on_neighbor_request(NodeId from,
                                              const NeighborRequestMsg& msg) {
  if (table_.has(from)) {
    // Duplicate (e.g. retry after a lost accept): re-accept idempotently.
    rt_.send(self_, from, rt_.template make<NeighborAcceptMsg>(
                              msg.link, msg.measured_rtt, my_degrees()));
    return;
  }
  if (is_blacklisted(from)) {
    // An evicted suspect trying to re-link before its ban expires.
    rt_.send(self_, from,
             rt_.template make<NeighborRejectMsg>(msg.link, my_degrees()));
    return;
  }

  bool accept = false;
  if (msg.link == LinkKind::kRandom) {
    accept = table_.rand_degree() <
             params_.target_rand_degree + params_.degree_slack;
  } else {
    const int c_near = params_.target_near_degree;
    // C2: our nearby degree must not be too high.
    bool c2 = table_.near_degree() < c_near + params_.degree_slack;
    // C3: once we have enough nearby neighbors, only accept links better
    // than our current worst nearby link.
    bool c3 = true;
    if (table_.near_degree() >= c_near) {
      SimTime rtt = msg.measured_rtt;
      if (rtt == kNever) rtt = rt_.rtt(self_, from);
      c3 = rtt < table_.max_nearby_rtt();
    }
    accept = c2 && c3;
  }

  if (frozen_) accept = false;

  if (!accept) {
    rt_.send(self_, from,
             rt_.template make<NeighborRejectMsg>(msg.link, my_degrees()));
    return;
  }

  establish(from, msg.link);
  // The request carried the peer's degrees, but it was not yet a neighbor
  // when the dispatcher cached them; seed the cache now.
  if (const net::PeerDegrees* degrees = msg.peer_degrees()) {
    table_.update_degrees(from, *degrees, rt_.now());
  }
  rt_.send(self_, from, rt_.template make<NeighborAcceptMsg>(
                            msg.link, msg.measured_rtt, my_degrees()));
}

template <runtime::Context RT>
void OverlayManagerT<RT>::on_neighbor_accept(NodeId from,
                                             const NeighborAcceptMsg& msg) {
  auto it = pending_adds_.find(from);
  if (it == pending_adds_.end()) {
    // We gave up on this handshake (timeout) but the peer established the
    // link; tear its half down.
    if (!table_.has(from)) {
      rt_.send(self_, from, rt_.template make<NeighborDropMsg>(my_degrees()));
    }
    return;
  }
  PendingAdd pending = it->second;
  (pending.kind == LinkKind::kRandom ? pending_rand_ : pending_near_) -= 1;
  pending_adds_.erase(it);

  if (table_.has(from)) return;  // simultaneous handshakes; already linked
  establish(from, msg.link);
  if (const net::PeerDegrees* degrees = msg.peer_degrees()) {
    table_.update_degrees(from, *degrees, rt_.now());
  }

  // Replacement: drop the victim chosen under C1, re-validated now.
  if (pending.replace_victim != kInvalidNode &&
      table_.near_degree() > params_.target_near_degree &&
      table_.has(pending.replace_victim)) {
    const NeighborInfo* u = table_.find(pending.replace_victim);
    if (u != nullptr && u->kind == LinkKind::kNearby &&
        u->degrees.near_degree >=
            params_.target_near_degree - params_.replace_floor_offset) {
      drop_link(pending.replace_victim, /*notify_peer=*/true);
    }
  }
}

template <runtime::Context RT>
void OverlayManagerT<RT>::on_neighbor_reject(NodeId from,
                                             const NeighborRejectMsg& msg) {
  (void)msg;
  auto it = pending_adds_.find(from);
  if (it == pending_adds_.end()) return;
  (it->second.kind == LinkKind::kRandom ? pending_rand_ : pending_near_) -= 1;
  pending_adds_.erase(it);
}

template <runtime::Context RT>
void OverlayManagerT<RT>::on_neighbor_drop(NodeId from,
                                           const NeighborDropMsg& msg) {
  (void)msg;
  if (!table_.has(from)) return;
  drop_link(from, /*notify_peer=*/false);
}

template <runtime::Context RT>
void OverlayManagerT<RT>::on_link_transfer(NodeId from,
                                           const LinkTransferMsg& msg) {
  // `from` handed us off to msg.target and dropped our link.
  if (table_.has(from)) drop_link(from, /*notify_peer=*/false);
  if (frozen_) return;
  NodeId target = msg.target;
  if (target == self_ || table_.has(target) || pending_adds_.count(target) > 0) {
    return;
  }
  pending_adds_[target] = PendingAdd{LinkKind::kRandom, rt_.now()};
  ++pending_rand_;
  send_request(target, LinkKind::kRandom, kNever, /*transfer=*/true);
}

template <runtime::Context RT>
void OverlayManagerT<RT>::note_peer_degrees(NodeId from,
                                            const net::PeerDegrees& degrees) {
  table_.update_degrees(from, degrees, rt_.now());
}

template <runtime::Context RT>
void OverlayManagerT<RT>::on_peer_failure(NodeId peer) {
  view_.remove(peer);
  if (auto it = pending_adds_.find(peer); it != pending_adds_.end()) {
    (it->second.kind == LinkKind::kRandom ? pending_rand_ : pending_near_) -= 1;
    pending_adds_.erase(it);
  }
  if (table_.has(peer)) {
    drop_link(peer, /*notify_peer=*/false);
  }
}

// ---------------------------------------------------------------------------
// Link state changes
// ---------------------------------------------------------------------------

template <runtime::Context RT>
void OverlayManagerT<RT>::establish(NodeId peer, LinkKind kind) {
  // RTT known from handshake timing (TCP connect) — the simulator provides
  // the true value the timing measurement would produce.
  SimTime rtt = rt_.rtt(self_, peer);
  bool added = table_.add(peer, kind, rtt, rt_.now());
  GOCAST_ASSERT(added);
  ++links_added_;
  record_link_change();
  for (OverlayListener* l : listeners_) l->on_neighbor_added(peer, kind);
}

template <runtime::Context RT>
void OverlayManagerT<RT>::drop_link(NodeId peer, bool notify_peer) {
  std::optional<NeighborInfo> info = table_.remove(peer);
  if (!info.has_value()) return;
  ++links_dropped_;
  record_link_change();
  if (notify_peer) {
    rt_.send(self_, peer, rt_.template make<NeighborDropMsg>(my_degrees()));
  }
  for (OverlayListener* l : listeners_) l->on_neighbor_removed(peer);
}

template <runtime::Context RT>
void OverlayManagerT<RT>::record_link_change() {
  if (params_.record_link_changes) {
    link_change_times_.push_back(rt_.now());
  }
}

template <runtime::Context RT>
std::size_t OverlayManagerT<RT>::memory_bytes() const {
  return table_.raw().memory_bytes() + pending_adds_.memory_bytes() +
         pending_pings_.capacity() * sizeof(PendingPing) +
         blacklist_.memory_bytes() +
         measure_queue_.capacity() * sizeof(NodeId) +
         listeners_.capacity() * sizeof(OverlayListener*) +
         link_change_times_.capacity() * sizeof(SimTime);
}

template class OverlayManagerT<runtime::SimRuntime>;
template class OverlayManagerT<runtime::RealtimeContext>;
template class OverlayManagerT<runtime::UdpContext>;

}  // namespace gocast::overlay

// Decentralized overlay construction and maintenance (paper §2.2).
//
// Every maintenance cycle (r seconds) a node:
//   * drives its random degree toward C_rand via the add / transfer / drop
//     operations of §2.2.2;
//   * drives its nearby degree toward C_near and continuously replaces long
//     nearby links with short ones under conditions C1–C4 of §2.2.3,
//     measuring one candidate RTT per cycle.
//
// Degree information needed by the conditions is piggybacked on every
// inter-neighbor message and cached in the NeighborTable. Link establishment
// uses an asynchronous request/accept handshake; the RTT of an established
// link is obtained from the handshake timing (the TCP connect measurement a
// real deployment gets for free).
//
// The manager is a template over a runtime context (see runtime/context.h):
// the same protocol logic runs on the discrete-event simulator
// (runtime::SimRuntime — the default OverlayManager alias) and on the
// real-time loopback backend (runtime::RealtimeContext). Method bodies live
// in overlay_manager.cpp with explicit instantiations for both backends.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/fault_behavior.h"
#include "common/flat_map.h"
#include "common/rng.h"
#include "common/types.h"
#include "membership/partial_view.h"
#include "overlay/messages.h"
#include "overlay/neighbor_table.h"
#include "runtime/context.h"
#include "runtime/sim_runtime.h"
#include "sim/timer.h"

namespace gocast::overlay {

struct OverlayParams {
  int target_rand_degree = 1;  ///< C_rand
  int target_near_degree = 5;  ///< C_near
  int degree_slack = 5;        ///< acceptance cap: accept while D < C + slack
  SimTime maintenance_period = 0.1;  ///< r seconds
  /// C4: adopt Q over U only if RTT(X,Q) <= replace_ratio * RTT(X,U).
  /// 1.0 accepts any improvement — the paper rejects that as "futile minor
  /// adaptations" (ablated in bench/abl_maintenance_rules).
  double replace_ratio = 0.5;

  /// C1 degree floor offset: a nearby neighbor U is replaceable/droppable
  /// only while D_near(U) >= C_near - replace_floor_offset. The paper uses
  /// 1 and reports that tightening it to 0 produces dramatically longer
  /// links (fewer victims qualify); ablated in bench/abl_maintenance_rules.
  int replace_floor_offset = 1;

  /// Nearby links are shed only once D_near >= C_near + drop_slack. The
  /// paper uses 2 (stable band {C, C+1}) and reports that the aggressive
  /// value 1 adds ~1/3 more link changes and slows stabilization.
  int drop_slack = 2;

  /// Adaptive maintenance (the paper's "the maintenance cycle r can be
  /// increased accordingly... we leave the dynamic tuning of r as future
  /// work"): when enabled, the period stretches toward
  /// maintenance_period_max while the neighbor set is quiet and snaps back
  /// to maintenance_period on any link change.
  bool adaptive_maintenance = false;
  SimTime maintenance_period_max = 1.0;
  /// Multiplier applied to the period after each quiet cycle.
  double maintenance_backoff = 1.25;
  /// Handshakes and probes outstanding longer than this are abandoned.
  SimTime pending_timeout = 3.0;
  /// Neighbors silent longer than this get a keepalive probe (refreshes the
  /// degree cache and detects dead peers even without gossip traffic).
  SimTime keepalive_interval = 1.0;
  /// False for pure-random overlays (the "random overlay" baseline):
  /// disables the nearby maintenance sub-protocols entirely.
  bool maintain_nearby = true;
  /// Record a timestamp for every link add/drop (TXT1 convergence bench).
  bool record_link_changes = false;

  [[nodiscard]] int target_degree() const {
    return target_rand_degree + target_near_degree;
  }
};

/// Observer of neighbor-set changes; the tree and dissemination layers
/// register one.
class OverlayListener {
 public:
  virtual ~OverlayListener() = default;
  virtual void on_neighbor_added(NodeId peer, LinkKind kind) = 0;
  virtual void on_neighbor_removed(NodeId peer) = 0;
};

template <runtime::Context RT>
class OverlayManagerT {
 public:
  OverlayManagerT(NodeId self, RT rt, membership::PartialView& view,
                  OverlayParams params, Rng rng);

  OverlayManagerT(const OverlayManagerT&) = delete;
  OverlayManagerT& operator=(const OverlayManagerT&) = delete;

  /// Starts the periodic maintenance timer (phase-staggered by `stagger`).
  void start(SimTime stagger);
  void stop();

  /// Freezes adaptation: no more adds, drops, replacements, or transfers.
  /// Failure detection (removing dead neighbors) keeps working — that is
  /// observation, not repair. Used for the paper's Fig 3(b) stress test.
  void freeze();
  [[nodiscard]] bool frozen() const { return frozen_; }

  /// Installs a pre-established link without a handshake. The harness calls
  /// this on both endpoints when building the initial random graph the
  /// paper's experiments start from.
  void bootstrap_link(NodeId peer, LinkKind kind);

  void add_listener(OverlayListener* listener);

  /// The node's own landmark vector, used to order unmeasured candidates.
  void set_own_landmarks(const membership::LandmarkVector& landmarks);

  /// Measures RTT to `target` with a ping/pong exchange; invokes `done`
  /// with the measured RTT (skipped silently if the pong never arrives).
  void measure_rtt(NodeId target, std::function<void(SimTime)> done);

  // -- message entry points (called by the owning node's dispatcher) --
  void on_neighbor_request(NodeId from, const NeighborRequestMsg& msg);
  void on_neighbor_accept(NodeId from, const NeighborAcceptMsg& msg);
  void on_neighbor_reject(NodeId from, const NeighborRejectMsg& msg);
  void on_neighbor_drop(NodeId from, const NeighborDropMsg& msg);
  void on_link_transfer(NodeId from, const LinkTransferMsg& msg);
  void on_ping(NodeId from, const PingMsg& msg);
  void on_pong(NodeId from, const PongMsg& msg);

  /// Any message from `from` carrying degrees refreshes the cache.
  void note_peer_degrees(NodeId from, const net::PeerDegrees& degrees);

  /// TCP-reset analogue or gossip-layer failure evidence: `peer` is dead.
  void on_peer_failure(NodeId peer);

  /// Suspicion-driven eviction (DESIGN.md §9): drops the link to `peer`
  /// through the normal drop machinery and blacklists it as a candidate
  /// until now + blacklist_for. Inbound requests from a blacklisted peer are
  /// rejected. No-op when `peer` is not a neighbor. Returns true on drop.
  bool evict_neighbor(NodeId peer, SimTime blacklist_for);
  [[nodiscard]] bool is_blacklisted(NodeId id) const;

  /// Shares the owning node's fault behavior (degree lies). May be null.
  void set_behavior(const FaultBehavior* behavior) { behavior_ = behavior; }

  // -- queries --
  [[nodiscard]] const NeighborTable& table() const { return table_; }
  [[nodiscard]] std::vector<NodeId> neighbor_ids() const { return table_.ids(); }
  [[nodiscard]] bool is_neighbor(NodeId id) const { return table_.has(id); }
  [[nodiscard]] int rand_degree() const { return table_.rand_degree(); }
  [[nodiscard]] int near_degree() const { return table_.near_degree(); }
  [[nodiscard]] int degree() const { return table_.degree(); }
  [[nodiscard]] net::PeerDegrees my_degrees() const;
  [[nodiscard]] const OverlayParams& params() const { return params_; }

  [[nodiscard]] std::uint64_t links_added() const { return links_added_; }
  [[nodiscard]] std::uint64_t links_dropped() const { return links_dropped_; }
  [[nodiscard]] const std::vector<SimTime>& link_change_times() const {
    return link_change_times_;
  }

  /// Approximate heap bytes owned by the overlay layer (neighbor table,
  /// pending handshakes/pings, blacklist, probe queue, change log).
  [[nodiscard]] std::size_t memory_bytes() const;
  [[nodiscard]] std::uint64_t pings_sent() const { return pings_sent_; }

 private:
  struct PendingAdd {
    LinkKind kind;
    SimTime started;
    NodeId replace_victim = kInvalidNode;  ///< nearby neighbor to drop on success
  };

  // In-flight RTT probes. A flat vector scanned by nonce: the set stays a
  // few dozen entries at most (bounded by pings issued within one
  // pending_timeout window), so linear search beats a hash table while the
  // records pack at 48 bytes with no slot-state overhead — this table
  // exists once per node, and large runs felt every byte of it.
  struct PendingPing {
    std::uint32_t nonce;
    NodeId target;
    SimTime sent;
    std::function<void(SimTime)> done;
  };

  void on_maintenance();
  void keepalive_check();
  void maintain_random();
  void maintain_nearby();
  void replace_step();
  void evaluate_replace_candidate(NodeId candidate, SimTime rtt);
  void start_nearby_add();
  void drop_excess_nearby();
  void prune_pending();

  /// Picks the next nearby candidate to probe: sorted-by-estimate queue
  /// first (paper: "starting from the node with the lowest estimated
  /// latency"), then round-robin over the member list.
  [[nodiscard]] NodeId next_nearby_candidate();
  void build_initial_measure_queue();

  [[nodiscard]] bool eligible_candidate(NodeId id) const;

  void establish(NodeId peer, LinkKind kind);
  void drop_link(NodeId peer, bool notify_peer);
  void record_link_change();

  void send_request(NodeId target, LinkKind kind, SimTime rtt, bool transfer);

  NodeId self_;
  RT rt_;
  membership::PartialView& view_;
  OverlayParams params_;
  Rng rng_;

  NeighborTable table_;
  common::FlatMap<NodeId, PendingAdd> pending_adds_;
  int pending_rand_ = 0;
  int pending_near_ = 0;

  std::vector<PendingPing> pending_pings_;
  std::uint32_t next_nonce_ = 1;

  /// Evicted suspects barred from candidacy: peer -> ban expiry time.
  common::FlatMap<NodeId, SimTime> blacklist_;
  const FaultBehavior* behavior_ = nullptr;

  /// Consume-once probe order (vector + head index, freed after the drain —
  /// a deque would keep a heap block alive per node forever).
  std::vector<NodeId> measure_queue_;
  std::size_t measure_head_ = 0;
  bool initial_queue_built_ = false;
  membership::LandmarkVector own_landmarks_ = membership::empty_landmarks();

  std::vector<OverlayListener*> listeners_;
  runtime::PeriodicTimer<RT> maintenance_timer_;
  bool frozen_ = false;

  std::uint64_t links_added_ = 0;
  std::uint64_t links_dropped_ = 0;
  std::uint64_t last_cycle_changes_ = 0;
  std::uint64_t pings_sent_ = 0;
  std::vector<SimTime> link_change_times_;
};

/// The simulation-backed manager used throughout the simulator and tests.
using OverlayManager = OverlayManagerT<runtime::SimRuntime>;

}  // namespace gocast::overlay

// Overlay link classification: the paper distinguishes links to randomly
// chosen neighbors ("random links") from links chosen for network proximity
// ("nearby links").
#pragma once

namespace gocast::overlay {

enum class LinkKind { kRandom, kNearby };

[[nodiscard]] constexpr const char* link_kind_name(LinkKind kind) {
  return kind == LinkKind::kRandom ? "random" : "nearby";
}

}  // namespace gocast::overlay

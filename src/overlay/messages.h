// Overlay maintenance wire protocol: neighbor handshakes, degree-rebalancing
// transfers, and RTT probes. All carry the sender's degree snapshot so peers'
// caches stay fresh (needed by maintenance conditions C1–C4).
#pragma once

#include <cstdint>

#include "common/types.h"
#include "membership/member_entry.h"
#include "net/message.h"
#include "overlay/link_kind.h"

namespace gocast::overlay {

inline constexpr int kPktNeighborRequest = 100;
inline constexpr int kPktNeighborAccept = 101;
inline constexpr int kPktNeighborReject = 102;
inline constexpr int kPktNeighborDrop = 103;
inline constexpr int kPktLinkTransfer = 104;
inline constexpr int kPktPing = 105;
inline constexpr int kPktPong = 106;
inline constexpr int kPktJoinRequest = 107;
inline constexpr int kPktJoinReply = 108;

/// Base for overlay control messages that carry the sender's degrees.
class OverlayMessage : public net::Message {
 public:
  OverlayMessage(int packet_type, net::PeerDegrees degrees,
                 net::MsgKind kind = net::MsgKind::kOverlayControl)
      : net::Message(kind, packet_type), degrees_(degrees) {}

  [[nodiscard]] const net::PeerDegrees* peer_degrees() const override {
    return &degrees_;
  }

 private:
  net::PeerDegrees degrees_;
};

/// X asks Q to become a neighbor. `measured_rtt` is the RTT X measured to Q
/// (kNever when unmeasured); Q uses it to evaluate condition C3.
struct NeighborRequestMsg final : OverlayMessage {
  NeighborRequestMsg(LinkKind link, SimTime measured_rtt, bool is_transfer,
                     net::PeerDegrees degrees)
      : OverlayMessage(kPktNeighborRequest, degrees),
        link(link),
        measured_rtt(measured_rtt),
        is_transfer(is_transfer) {}

  LinkKind link;
  SimTime measured_rtt;
  bool is_transfer;  ///< part of a degree-rebalancing transfer (§2.2.2 op 1)

  /// Frame + {link 1, is_transfer 1, measured_rtt f64 8, degrees 8}.
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes + 10 + net::PeerDegrees::wire_size();
  }
};

struct NeighborAcceptMsg final : OverlayMessage {
  NeighborAcceptMsg(LinkKind link, SimTime rtt_echo, net::PeerDegrees degrees)
      : OverlayMessage(kPktNeighborAccept, degrees),
        link(link),
        rtt_echo(rtt_echo) {}

  LinkKind link;
  SimTime rtt_echo;  ///< the RTT from the request, echoed back

  /// Frame + {link 1, rtt_echo f64 8, degrees 8}.
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes + 9 + net::PeerDegrees::wire_size();
  }
};

struct NeighborRejectMsg final : OverlayMessage {
  NeighborRejectMsg(LinkKind link, net::PeerDegrees degrees)
      : OverlayMessage(kPktNeighborReject, degrees), link(link) {}

  LinkKind link;

  /// Frame + {link 1, degrees 8}.
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes + 1 + net::PeerDegrees::wire_size();
  }
};

struct NeighborDropMsg final : OverlayMessage {
  NeighborDropMsg(net::PeerDegrees degrees)
      : OverlayMessage(kPktNeighborDrop, degrees) {}

  /// Frame + {degrees 8}.
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes + net::PeerDegrees::wire_size();
  }
};

/// X → Y: "establish a random link to `target`; our own link is dropped."
/// Implements §2.2.2 operation 1 (reduce X's random degree by two while
/// leaving Y's and Z's unchanged).
struct LinkTransferMsg final : OverlayMessage {
  LinkTransferMsg(NodeId target, net::PeerDegrees degrees)
      : OverlayMessage(kPktLinkTransfer, degrees), target(target) {}

  NodeId target;

  /// Frame + {target 4, degrees 8}.
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes + 4 + net::PeerDegrees::wire_size();
  }
};

/// UDP-style RTT probe (non-neighbor communication in the paper uses UDP).
struct PingMsg final : net::Message {
  explicit PingMsg(std::uint32_t nonce)
      : net::Message(net::MsgKind::kPing, kPktPing), nonce(nonce) {}

  std::uint32_t nonce;

  /// Frame + {nonce 4}.
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes + 4;
  }
};

struct PongMsg final : OverlayMessage {
  PongMsg(std::uint32_t nonce, net::PeerDegrees degrees)
      : OverlayMessage(kPktPong, degrees, net::MsgKind::kPong), nonce(nonce) {}

  std::uint32_t nonce;

  /// Frame + {nonce 4, degrees 8}.
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes + 4 + net::PeerDegrees::wire_size();
  }
};

/// New node N → bootstrap node P: request P's member list.
struct JoinRequestMsg final : net::Message {
  JoinRequestMsg() : net::Message(net::MsgKind::kMembership, kPktJoinRequest) {}

  /// Frame only (empty body).
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes;
  }
};

/// P → N: P's member list (entries carry landmark vectors).
struct JoinReplyMsg final : net::Message {
  explicit JoinReplyMsg(std::vector<membership::MemberEntry> members)
      : net::Message(net::MsgKind::kMembership, kPktJoinReply),
        members(std::move(members)) {}

  std::vector<membership::MemberEntry> members;

  /// Frame + {n_members 4} + member table.
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes + 4 +
           members.size() * membership::MemberEntry::wire_size();
  }
};

}  // namespace gocast::overlay

// The per-node neighbor table: established overlay links, their kinds,
// measured RTTs, and cached peer degrees. Pure state + queries; the
// OverlayManager drives mutations.
#pragma once

#include <optional>
#include <vector>

#include "common/flat_map.h"
#include "common/types.h"
#include "net/message.h"
#include "overlay/link_kind.h"

namespace gocast::overlay {

struct NeighborInfo {
  LinkKind kind = LinkKind::kRandom;
  SimTime rtt = kNever;  ///< measured RTT to this neighbor, seconds
  net::PeerDegrees degrees;
  SimTime added_at = 0.0;
  SimTime last_heard = 0.0;
};

class NeighborTable {
 public:
  /// Pre-sizes the table (called once at construction time with the degree
  /// target so steady-state maintenance never rehashes).
  void reserve(std::size_t n) { table_.reserve(n); }

  /// Adds a neighbor; returns false if already present (no overwrite).
  bool add(NodeId id, LinkKind kind, SimTime rtt, SimTime now);

  /// Removes a neighbor; returns its info if it existed.
  std::optional<NeighborInfo> remove(NodeId id);

  [[nodiscard]] bool has(NodeId id) const { return table_.count(id) > 0; }
  [[nodiscard]] const NeighborInfo* find(NodeId id) const;

  void update_degrees(NodeId id, const net::PeerDegrees& degrees, SimTime now);
  void update_rtt(NodeId id, SimTime rtt);

  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] int rand_degree() const { return rand_degree_; }
  [[nodiscard]] int near_degree() const { return near_degree_; }
  [[nodiscard]] int degree() const { return static_cast<int>(table_.size()); }

  /// Max measured RTT among nearby neighbors; 0 when there are none
  /// (mirrors max_nearby_RTT in condition C3).
  [[nodiscard]] SimTime max_nearby_rtt() const;

  /// Condition C1: among nearby neighbors whose cached nearby degree is
  /// >= min_near_degree, the one with the longest RTT. nullopt when none
  /// qualifies.
  [[nodiscard]] std::optional<NodeId> worst_replaceable_nearby(
      int min_near_degree) const;

  /// Nearby neighbors satisfying C1, sorted by descending RTT (drop order).
  [[nodiscard]] std::vector<NodeId> droppable_nearby(int min_near_degree) const;

  /// Random neighbors whose cached random degree exceeds `threshold`
  /// (§2.2.2 operation 2 candidates).
  [[nodiscard]] std::vector<NodeId> random_with_degree_above(int threshold) const;

  [[nodiscard]] std::vector<NodeId> ids() const;
  [[nodiscard]] std::vector<NodeId> ids_of_kind(LinkKind kind) const;

  [[nodiscard]] const common::FlatMap<NodeId, NeighborInfo>& raw() const {
    return table_;
  }

  /// Mean measured RTT over all links / links of one kind (for Fig 5b).
  [[nodiscard]] double mean_rtt() const;
  [[nodiscard]] double mean_rtt_of_kind(LinkKind kind) const;

 private:
  common::FlatMap<NodeId, NeighborInfo> table_;
  int rand_degree_ = 0;
  int near_degree_ = 0;
};

}  // namespace gocast::overlay

// Structural analysis of overlay snapshots: connectivity, components,
// diameter, degree distributions, and link latency summaries (Figs 5 and 6,
// and the overlay-diameter text claim).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"
#include "gocast/system.h"
#include "overlay/link_kind.h"

namespace gocast::analysis {

/// An undirected snapshot of the overlay among a system's nodes. A link is
/// present when either endpoint's neighbor table lists it (handshake windows
/// make tables momentarily asymmetric).
struct OverlayGraph {
  std::size_t node_count = 0;
  std::vector<std::vector<NodeId>> adjacency;
  std::vector<bool> alive;

  [[nodiscard]] std::size_t alive_count() const;
  [[nodiscard]] std::size_t link_count() const;  ///< undirected, alive ends
};

[[nodiscard]] OverlayGraph snapshot_overlay(const core::System& system);

struct ComponentStats {
  std::size_t component_count = 0;
  std::size_t largest_component = 0;
  /// Largest component over alive node count — the paper's Fig 6 metric q.
  double largest_fraction = 0.0;
};

/// Connected components among alive nodes.
[[nodiscard]] ComponentStats components(const OverlayGraph& graph);

/// Hop-count diameter estimated by BFS from `samples` random alive nodes
/// plus a double-sweep refinement (exact on most graphs of this size).
[[nodiscard]] std::size_t estimate_diameter(const OverlayGraph& graph,
                                            std::size_t samples, Rng& rng);

/// Degree distribution over alive nodes (Fig 5a).
[[nodiscard]] IntDistribution degree_distribution(const core::System& system);
[[nodiscard]] IntDistribution rand_degree_distribution(const core::System& system);
[[nodiscard]] IntDistribution near_degree_distribution(const core::System& system);

struct LinkLatencyStats {
  double mean_overlay_one_way = 0.0;  ///< seconds, over distinct overlay links
  double mean_tree_one_way = 0.0;     ///< seconds, over distinct tree links
  std::size_t overlay_links = 0;
  std::size_t tree_links = 0;
};

/// True one-way latencies of current overlay and tree links (Fig 5b).
[[nodiscard]] LinkLatencyStats link_latency_stats(const core::System& system);

/// Mean one-way latency over links of one kind only (TXT2).
[[nodiscard]] double mean_link_latency_of_kind(const core::System& system,
                                               overlay::LinkKind kind);

/// Number of distinct tree links and whether they span all alive nodes
/// (tree validity check used by tests).
struct TreeStats {
  std::size_t tree_links = 0;
  std::size_t reachable_from_root = 0;
  NodeId root = kInvalidNode;
  bool spanning = false;
  bool is_forest = false;  ///< no cycles among tree links
};

[[nodiscard]] TreeStats tree_stats(const core::System& system);

}  // namespace gocast::analysis

#include "analysis/reliability.h"

#include <cmath>

#include "common/assert.h"

namespace gocast::analysis {

double push_gossip_atomicity(std::size_t n, double fanout) {
  GOCAST_ASSERT(n >= 2);
  return std::exp(-std::exp(std::log(static_cast<double>(n)) - fanout));
}

double push_gossip_atomicity_k(std::size_t n, double fanout, std::size_t k) {
  GOCAST_ASSERT(n >= 2);
  return std::exp(-static_cast<double>(k) *
                  std::exp(std::log(static_cast<double>(n)) - fanout));
}

int min_fanout_for_atomicity(std::size_t n, std::size_t k, double target) {
  GOCAST_ASSERT(target > 0.0 && target < 1.0);
  for (int fanout = 1; fanout <= 64; ++fanout) {
    if (push_gossip_atomicity_k(n, fanout, k) >= target) return fanout;
  }
  return -1;
}

}  // namespace gocast::analysis

#include "analysis/link_stress.h"

#include <algorithm>

namespace gocast::analysis {

LinkStressReport link_stress(const net::Underlay& underlay,
                             const net::TrafficStats& traffic,
                             std::size_t top_k) {
  LinkStressReport report;
  std::vector<net::Underlay::LinkLoad> loads =
      underlay.link_loads(traffic.site_pair_bytes());
  report.loaded_links = loads.size();
  for (const auto& load : loads) {
    report.total_bytes += load.bytes;
    report.max_link_bytes = std::max(report.max_link_bytes, load.bytes);
  }
  if (!loads.empty()) {
    report.mean_link_bytes =
        report.total_bytes / static_cast<double>(loads.size());
  }
  std::size_t k = std::min(top_k, loads.size());
  report.top_links.reserve(k);
  for (std::size_t i = 0; i < k; ++i) report.top_links.push_back(loads[i].bytes);
  return report;
}

}  // namespace gocast::analysis

// Closed-form reliability of push-based gossip (the paper's Fig 1, citing
// Eugster et al., "From Epidemics to Distributed Computing").
#pragma once

#include <cstddef>

namespace gocast::analysis {

/// Probability that ALL nodes in an n-node system hear about one message
/// gossiped push-style with fanout F:  e^{-e^{ln(n) - F}}.
[[nodiscard]] double push_gossip_atomicity(std::size_t n, double fanout);

/// Probability that all nodes hear about each of k independent messages:
/// atomicity^k = e^{-k * e^{ln(n) - F}}.
[[nodiscard]] double push_gossip_atomicity_k(std::size_t n, double fanout,
                                             std::size_t k);

/// Smallest integer fanout whose k-message atomicity reaches `target`.
[[nodiscard]] int min_fanout_for_atomicity(std::size_t n, std::size_t k,
                                           double target);

}  // namespace gocast::analysis

#include "analysis/delivery_tracker.h"

#include <algorithm>
#include <bit>

#include "common/assert.h"

namespace gocast::analysis {

DeliveryTracker::DeliveryTracker(std::size_t node_count)
    : node_count_(node_count), per_node_(node_count) {
  GOCAST_ASSERT(node_count >= 1);
}

core::DeliveryHook DeliveryTracker::hook() {
  return [this](const core::DeliveryEvent& event) { on_delivery(event); };
}

void DeliveryTracker::on_delivery(const core::DeliveryEvent& event) {
  auto it = msg_index_.find(event.id);
  if (it == msg_index_.end()) {
    if (!recording_) return;
    auto index = static_cast<std::uint32_t>(inject_times_.size());
    it = msg_index_.emplace(event.id, index).first;
    inject_times_.push_back(event.inject_time);
    per_message_deliveries_.push_back(0);
  }
  GOCAST_ASSERT(event.node < node_count_);
  double delay = event.deliver_time - event.inject_time;
  GOCAST_ASSERT_MSG(delay >= 0.0, "negative delivery delay " << delay);

  ++deliveries_;
  ++per_message_deliveries_[it->second];
  PerNode& node = per_node_[event.node];
  ++node.delivered;
  node.delay_sum += delay;
  node.delay_max = std::max(node.delay_max, delay);
  node.delays.push_back(static_cast<float>(delay));
}

void DeliveryTracker::merge_from(const DeliveryTracker& other) {
  GOCAST_ASSERT(other.node_count_ == node_count_);
  for (const auto& [id, other_index] : other.msg_index_) {
    auto it = msg_index_.find(id);
    if (it == msg_index_.end()) {
      auto index = static_cast<std::uint32_t>(inject_times_.size());
      it = msg_index_.emplace(id, index).first;
      inject_times_.push_back(other.inject_times_[other_index]);
      per_message_deliveries_.push_back(0);
    }
    per_message_deliveries_[it->second] +=
        other.per_message_deliveries_[other_index];
  }
  for (std::size_t n = 0; n < node_count_; ++n) {
    const PerNode& src = other.per_node_[n];
    if (src.delivered == 0) continue;
    GOCAST_ASSERT_MSG(per_node_[n].delivered == 0,
                      "merge_from with overlapping node rows (node " << n
                                                                     << ")");
    per_node_[n] = src;
  }
  deliveries_ += other.deliveries_;
}

std::uint64_t DeliveryTracker::checksum() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(inject_times_.size());
  mix(deliveries_);
  for (const PerNode& node : per_node_) {
    mix(node.delivered);
    for (float d : node.delays) {
      mix(std::bit_cast<std::uint32_t>(d));
    }
  }
  return h;
}

std::vector<double> DeliveryTracker::gather_sorted_delays(
    const std::vector<NodeId>& live_nodes) const {
  std::vector<double> delays;
  std::size_t total = 0;
  for (NodeId id : live_nodes) total += per_node_[id].delays.size();
  delays.reserve(total);
  for (NodeId id : live_nodes) {
    for (float d : per_node_[id].delays) delays.push_back(d);
  }
  std::sort(delays.begin(), delays.end());
  return delays;
}

DeliveryTracker::Report DeliveryTracker::report(
    const std::vector<NodeId>& live_nodes) const {
  Report r;
  r.messages = inject_times_.size();
  r.live_nodes = live_nodes.size();

  std::size_t complete_nodes = 0;
  for (NodeId id : live_nodes) {
    GOCAST_ASSERT(id < node_count_);
    const PerNode& node = per_node_[id];
    if (node.delivered > 0) {
      r.per_node_mean_delay.push_back(node.delay_sum /
                                      static_cast<double>(node.delivered));
    }
    if (node.delivered >= r.messages && r.messages > 0) ++complete_nodes;
  }
  if (!live_nodes.empty()) {
    r.nodes_with_all_messages = static_cast<double>(complete_nodes) /
                                static_cast<double>(live_nodes.size());
  }

  std::vector<double> delays = gather_sorted_delays(live_nodes);
  std::size_t expected = r.messages * live_nodes.size();
  r.undelivered_pairs = expected >= delays.size() ? expected - delays.size() : 0;
  r.delivered_fraction =
      expected == 0 ? 0.0
                    : static_cast<double>(delays.size()) /
                          static_cast<double>(expected);
  for (double d : delays) r.delay.add(d);
  if (!delays.empty()) {
    Percentiles p(delays);
    r.p50 = p.at(0.50);
    r.p90 = p.at(0.90);
    r.p99 = p.at(0.99);
    r.max_delay = delays.back();
  }
  return r;
}

std::vector<DeliveryTracker::CurvePoint> DeliveryTracker::pair_delay_curve(
    const std::vector<NodeId>& live_nodes, std::size_t points) const {
  GOCAST_ASSERT(points >= 2);
  std::vector<double> delays = gather_sorted_delays(live_nodes);
  std::vector<CurvePoint> curve;
  if (delays.empty()) return curve;
  double expected =
      static_cast<double>(inject_times_.size() * live_nodes.size());
  double hi = delays.back();
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    double x = hi * static_cast<double>(i) / static_cast<double>(points - 1);
    auto it = std::upper_bound(delays.begin(), delays.end(), x);
    double fraction = expected == 0.0
                          ? 0.0
                          : static_cast<double>(it - delays.begin()) / expected;
    curve.push_back(CurvePoint{x, fraction});
  }
  return curve;
}

}  // namespace gocast::analysis

// Records every multicast delivery across the system and produces the delay
// distributions the paper's figures plot. Protocol-agnostic: any system that
// emits core::DeliveryEvent can be tracked.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "gocast/dissemination.h"

namespace gocast::analysis {

class DeliveryTracker {
 public:
  /// `node_count` is the size of the node universe.
  explicit DeliveryTracker(std::size_t node_count);

  /// While recording is off, deliveries of previously unseen messages are
  /// ignored (warmup traffic). Deliveries of already-tracked messages are
  /// always recorded.
  void set_recording(bool on) { recording_ = on; }

  /// The hook to install on every node. The tracker must outlive the run.
  [[nodiscard]] core::DeliveryHook hook();

  void on_delivery(const core::DeliveryEvent& event);

  [[nodiscard]] std::size_t message_count() const { return inject_times_.size(); }
  [[nodiscard]] std::uint64_t delivery_count() const { return deliveries_; }

  struct Report {
    std::size_t messages = 0;
    std::size_t live_nodes = 0;
    /// Fraction of (live node, message) pairs that were delivered.
    double delivered_fraction = 0.0;
    std::size_t undelivered_pairs = 0;
    /// Fraction of live nodes that received every tracked message.
    double nodes_with_all_messages = 0.0;
    Summary delay;  ///< over delivered pairs on live nodes
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double max_delay = 0.0;
    /// Per-live-node mean delivery delay (for CDFs over nodes); only nodes
    /// that delivered at least one message appear.
    std::vector<double> per_node_mean_delay;
  };

  /// Summarizes deliveries restricted to `live_nodes` (pass all nodes when
  /// none failed).
  [[nodiscard]] Report report(const std::vector<NodeId>& live_nodes) const;

  /// Folds another tracker into this one. Sharded runs (DESIGN.md §11) keep
  /// one tracker per shard — each node's deliveries land in its shard's
  /// tracker, single-writer — and merge them at the end. Node rows must be
  /// disjoint; message sets may overlap (counts are summed).
  void merge_from(const DeliveryTracker& other);

  /// FNV-1a digest of everything the delay reports derive from: message and
  /// delivery counts plus, per node in id order, the delivered count and the
  /// delay bit patterns in delivery order. Two runs with equal checksums
  /// produce identical reports; the shard-invariance goldens compare this.
  [[nodiscard]] std::uint64_t checksum() const;

  struct CurvePoint {
    double delay;
    double fraction;
  };

  /// CDF curve over (live node, message) pairs: fraction of pairs delivered
  /// within x seconds. Tops out below 1.0 when some pairs were never
  /// delivered — exactly how the paper's Fig 3 renders gossip losses.
  [[nodiscard]] std::vector<CurvePoint> pair_delay_curve(
      const std::vector<NodeId>& live_nodes, std::size_t points) const;

  /// Approximate heap bytes held by the tracker (per-node delay logs
  /// dominate; the node-based message index is estimated at one bucket
  /// pointer plus one ~48-byte node per message).
  [[nodiscard]] std::size_t memory_bytes() const {
    std::size_t bytes = msg_index_.bucket_count() * sizeof(void*) +
                        msg_index_.size() * 48 +
                        inject_times_.capacity() * sizeof(SimTime) +
                        per_message_deliveries_.capacity() *
                            sizeof(std::uint32_t) +
                        per_node_.capacity() * sizeof(PerNode);
    for (const PerNode& n : per_node_) {
      bytes += n.delays.capacity() * sizeof(float);
    }
    return bytes;
  }

 private:
  struct PerNode {
    std::uint32_t delivered = 0;
    double delay_sum = 0.0;
    double delay_max = 0.0;
    std::vector<float> delays;  ///< one entry per delivered message
  };

  /// All delays on live nodes, sorted ascending.
  [[nodiscard]] std::vector<double> gather_sorted_delays(
      const std::vector<NodeId>& live_nodes) const;

  std::size_t node_count_;
  bool recording_ = false;

  std::unordered_map<MsgId, std::uint32_t> msg_index_;
  std::vector<SimTime> inject_times_;
  std::vector<std::uint32_t> per_message_deliveries_;
  std::vector<PerNode> per_node_;
  std::uint64_t deliveries_ = 0;
};

}  // namespace gocast::analysis

#include "analysis/graph_analysis.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/assert.h"

namespace gocast::analysis {

namespace {

std::uint64_t pack(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// BFS distances from `source` over alive nodes; kInvalidNode-distance marks
/// unreachable.
std::vector<std::uint32_t> bfs_distances(const OverlayGraph& graph,
                                         NodeId source) {
  constexpr std::uint32_t kUnreached = 0xFFFFFFFFu;
  std::vector<std::uint32_t> dist(graph.node_count, kUnreached);
  if (!graph.alive[source]) return dist;
  dist[source] = 0;
  std::deque<NodeId> queue{source};
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : graph.adjacency[u]) {
      if (!graph.alive[v] || dist[v] != kUnreached) continue;
      dist[v] = dist[u] + 1;
      queue.push_back(v);
    }
  }
  return dist;
}

}  // namespace

std::size_t OverlayGraph::alive_count() const {
  return static_cast<std::size_t>(
      std::count(alive.begin(), alive.end(), true));
}

std::size_t OverlayGraph::link_count() const {
  std::size_t ends = 0;
  for (NodeId u = 0; u < node_count; ++u) {
    if (!alive[u]) continue;
    for (NodeId v : adjacency[u]) {
      if (alive[v]) ++ends;
    }
  }
  return ends / 2;
}

OverlayGraph snapshot_overlay(const core::System& system) {
  OverlayGraph graph;
  graph.node_count = system.size();
  graph.adjacency.resize(graph.node_count);
  graph.alive.resize(graph.node_count);

  std::unordered_set<std::uint64_t> links;
  for (NodeId id = 0; id < graph.node_count; ++id) {
    graph.alive[id] = system.network().alive(id);
    for (const auto& [peer, info] : system.node(id).overlay().table().raw()) {
      links.insert(pack(id, peer));
    }
  }
  for (std::uint64_t link : links) {
    auto a = static_cast<NodeId>(link >> 32);
    auto b = static_cast<NodeId>(link & 0xFFFFFFFFu);
    graph.adjacency[a].push_back(b);
    graph.adjacency[b].push_back(a);
  }
  return graph;
}

ComponentStats components(const OverlayGraph& graph) {
  ComponentStats stats;
  std::vector<bool> visited(graph.node_count, false);
  std::size_t alive = 0;
  for (NodeId start = 0; start < graph.node_count; ++start) {
    if (!graph.alive[start]) continue;
    ++alive;
    if (visited[start]) continue;
    ++stats.component_count;
    std::size_t size = 0;
    std::deque<NodeId> queue{start};
    visited[start] = true;
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      ++size;
      for (NodeId v : graph.adjacency[u]) {
        if (!graph.alive[v] || visited[v]) continue;
        visited[v] = true;
        queue.push_back(v);
      }
    }
    stats.largest_component = std::max(stats.largest_component, size);
  }
  if (alive > 0) {
    stats.largest_fraction = static_cast<double>(stats.largest_component) /
                             static_cast<double>(alive);
  }
  return stats;
}

std::size_t estimate_diameter(const OverlayGraph& graph, std::size_t samples,
                              Rng& rng) {
  std::vector<NodeId> alive;
  for (NodeId id = 0; id < graph.node_count; ++id) {
    if (graph.alive[id]) alive.push_back(id);
  }
  if (alive.size() < 2) return 0;

  constexpr std::uint32_t kUnreached = 0xFFFFFFFFu;
  std::size_t best = 0;
  NodeId frontier = alive[0];
  for (std::size_t i = 0; i < samples; ++i) {
    NodeId source = i == 0 ? frontier : rng.pick(alive);
    std::vector<std::uint32_t> dist = bfs_distances(graph, source);
    for (NodeId v : alive) {
      if (dist[v] != kUnreached && dist[v] > best) {
        best = dist[v];
        frontier = v;
      }
    }
    // Double sweep: restart from the farthest node found so far.
    std::vector<std::uint32_t> dist2 = bfs_distances(graph, frontier);
    for (NodeId v : alive) {
      if (dist2[v] != kUnreached && dist2[v] > best) best = dist2[v];
    }
  }
  return best;
}

IntDistribution degree_distribution(const core::System& system) {
  IntDistribution dist;
  for (NodeId id = 0; id < system.size(); ++id) {
    if (!system.network().alive(id)) continue;
    dist.add(system.node(id).overlay().degree());
  }
  return dist;
}

IntDistribution rand_degree_distribution(const core::System& system) {
  IntDistribution dist;
  for (NodeId id = 0; id < system.size(); ++id) {
    if (!system.network().alive(id)) continue;
    dist.add(system.node(id).overlay().rand_degree());
  }
  return dist;
}

IntDistribution near_degree_distribution(const core::System& system) {
  IntDistribution dist;
  for (NodeId id = 0; id < system.size(); ++id) {
    if (!system.network().alive(id)) continue;
    dist.add(system.node(id).overlay().near_degree());
  }
  return dist;
}

LinkLatencyStats link_latency_stats(const core::System& system) {
  LinkLatencyStats stats;
  std::unordered_set<std::uint64_t> overlay_links;
  std::unordered_set<std::uint64_t> tree_links;

  for (NodeId id = 0; id < system.size(); ++id) {
    if (!system.network().alive(id)) continue;
    const auto& node = system.node(id);
    for (const auto& [peer, info] : node.overlay().table().raw()) {
      overlay_links.insert(pack(id, peer));
    }
    NodeId parent = node.tree().parent();
    if (parent != kInvalidNode) tree_links.insert(pack(id, parent));
  }

  double overlay_sum = 0.0;
  for (std::uint64_t link : overlay_links) {
    overlay_sum += system.network().one_way(static_cast<NodeId>(link >> 32),
                                            static_cast<NodeId>(link & 0xFFFFFFFFu));
  }
  double tree_sum = 0.0;
  for (std::uint64_t link : tree_links) {
    tree_sum += system.network().one_way(static_cast<NodeId>(link >> 32),
                                         static_cast<NodeId>(link & 0xFFFFFFFFu));
  }
  stats.overlay_links = overlay_links.size();
  stats.tree_links = tree_links.size();
  if (!overlay_links.empty()) {
    stats.mean_overlay_one_way = overlay_sum / static_cast<double>(overlay_links.size());
  }
  if (!tree_links.empty()) {
    stats.mean_tree_one_way = tree_sum / static_cast<double>(tree_links.size());
  }
  return stats;
}

double mean_link_latency_of_kind(const core::System& system,
                                 overlay::LinkKind kind) {
  std::unordered_set<std::uint64_t> links;
  for (NodeId id = 0; id < system.size(); ++id) {
    if (!system.network().alive(id)) continue;
    for (const auto& [peer, info] : system.node(id).overlay().table().raw()) {
      if (info.kind == kind) links.insert(pack(id, peer));
    }
  }
  if (links.empty()) return 0.0;
  double sum = 0.0;
  for (std::uint64_t link : links) {
    sum += system.network().one_way(static_cast<NodeId>(link >> 32),
                                    static_cast<NodeId>(link & 0xFFFFFFFFu));
  }
  return sum / static_cast<double>(links.size());
}

TreeStats tree_stats(const core::System& system) {
  TreeStats stats;

  // The authoritative root: the alive self-declared root with the best epoch.
  tree::Epoch best_epoch;
  for (NodeId id = 0; id < system.size(); ++id) {
    if (!system.network().alive(id)) continue;
    const auto& t = system.node(id).tree();
    if (t.is_root() && (stats.root == kInvalidNode || t.epoch().beats(best_epoch))) {
      best_epoch = t.epoch();
      stats.root = id;
    }
  }

  // Tree links: parent edges of alive nodes.
  std::unordered_set<std::uint64_t> links;
  std::vector<std::vector<NodeId>> adjacency(system.size());
  for (NodeId id = 0; id < system.size(); ++id) {
    if (!system.network().alive(id)) continue;
    NodeId parent = system.node(id).tree().parent();
    if (parent == kInvalidNode || !system.network().alive(parent)) continue;
    if (links.insert(pack(id, parent)).second) {
      adjacency[id].push_back(parent);
      adjacency[parent].push_back(id);
    }
  }
  stats.tree_links = links.size();

  // Cycle check (union-find): a valid tree snapshot is a forest.
  std::vector<NodeId> uf(system.size());
  for (NodeId id = 0; id < system.size(); ++id) uf[id] = id;
  auto find = [&uf](NodeId x) {
    while (uf[x] != x) {
      uf[x] = uf[uf[x]];
      x = uf[x];
    }
    return x;
  };
  stats.is_forest = true;
  for (std::uint64_t link : links) {
    NodeId a = find(static_cast<NodeId>(link >> 32));
    NodeId b = find(static_cast<NodeId>(link & 0xFFFFFFFFu));
    if (a == b) {
      stats.is_forest = false;
      break;
    }
    uf[a] = b;
  }

  if (stats.root != kInvalidNode) {
    std::deque<NodeId> queue{stats.root};
    std::vector<bool> visited(system.size(), false);
    visited[stats.root] = true;
    std::size_t reached = 0;
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop_front();
      ++reached;
      for (NodeId v : adjacency[u]) {
        if (!visited[v]) {
          visited[v] = true;
          queue.push_back(v);
        }
      }
    }
    stats.reachable_from_root = reached;
    stats.spanning = reached == system.network().alive_count();
  }
  return stats;
}

}  // namespace gocast::analysis

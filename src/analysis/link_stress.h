// Physical link-stress summary over an AS underlay (TXT4: GoCast vs gossip
// bottleneck-link load).
#pragma once

#include <cstddef>
#include <vector>

#include "net/traffic_stats.h"
#include "net/underlay.h"

namespace gocast::analysis {

struct LinkStressReport {
  double max_link_bytes = 0.0;     ///< the bottleneck link's load
  double mean_link_bytes = 0.0;    ///< over links that carried any traffic
  double total_bytes = 0.0;
  std::size_t loaded_links = 0;
  std::vector<double> top_links;   ///< descending loads of the hottest links
};

/// Routes the recorded site-pair traffic over the underlay and summarizes
/// per-physical-link load. `top_k` controls how many of the hottest links
/// are returned individually.
[[nodiscard]] LinkStressReport link_stress(const net::Underlay& underlay,
                                           const net::TrafficStats& traffic,
                                           std::size_t top_k = 10);

}  // namespace gocast::analysis

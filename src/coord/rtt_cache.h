// Per-node cache of measured round-trip times. Maintenance protocols measure
// one RTT per cycle; the cache remembers results so conditions C1–C4 can be
// evaluated without re-probing.
#pragma once

#include <optional>
#include <unordered_map>

#include "common/types.h"

namespace gocast::coord {

class RttCache {
 public:
  void record(NodeId peer, SimTime rtt, SimTime measured_at) {
    entries_[peer] = Entry{rtt, measured_at};
  }

  void forget(NodeId peer) { entries_.erase(peer); }

  [[nodiscard]] std::optional<SimTime> rtt(NodeId peer) const {
    auto it = entries_.find(peer);
    if (it == entries_.end()) return std::nullopt;
    return it->second.rtt;
  }

  [[nodiscard]] std::optional<SimTime> measured_at(NodeId peer) const {
    auto it = entries_.find(peer);
    if (it == entries_.end()) return std::nullopt;
    return it->second.measured_at;
  }

  [[nodiscard]] bool has(NodeId peer) const { return entries_.count(peer) > 0; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    SimTime rtt;
    SimTime measured_at;
  };
  std::unordered_map<NodeId, Entry> entries_;
};

}  // namespace gocast::coord

#include "coord/triangulation.h"

#include <algorithm>
#include <cmath>

namespace gocast::coord {

std::optional<TriangulationEstimate> estimate_rtt(
    const membership::LandmarkVector& mine,
    const membership::LandmarkVector& theirs) {
  double lower = 0.0;
  double upper = std::numeric_limits<double>::infinity();
  bool any = false;
  for (std::size_t i = 0; i < membership::kLandmarkSlots; ++i) {
    float m = mine[i];
    float t = theirs[i];
    if (std::isnan(m) || std::isnan(t)) continue;
    any = true;
    lower = std::max(lower, std::abs(static_cast<double>(m) - t));
    upper = std::min(upper, static_cast<double>(m) + t);
  }
  if (!any) return std::nullopt;
  // Measurement noise can push lower above upper; collapse to the tighter
  // bound's midpoint in that case.
  if (lower > upper) lower = upper;
  return TriangulationEstimate{lower, upper};
}

SimTime estimate_rtt_or_never(const membership::LandmarkVector& mine,
                              const membership::LandmarkVector& theirs) {
  auto est = estimate_rtt(mine, theirs);
  return est.has_value() ? est->midpoint() : kNever;
}

}  // namespace gocast::coord

// Triangulation-based network-distance estimation (the "triangular
// heuristic" of Ng & Zhang the paper cites).
//
// Each node measures its RTT to a small global landmark set once at startup
// and piggybacks the resulting vector on membership entries. Given my vector
// m and a candidate's vector c, the triangle inequality bounds our RTT by
//   lower = max_i |m_i - c_i|,   upper = min_i (m_i + c_i)
// and the estimate is the midpoint. Estimates only order candidates for real
// measurement; they never replace measured RTTs.
#pragma once

#include <optional>

#include "common/types.h"
#include "membership/member_entry.h"

namespace gocast::coord {

struct TriangulationEstimate {
  SimTime lower;
  SimTime upper;

  [[nodiscard]] SimTime midpoint() const { return 0.5 * (lower + upper); }
};

/// Estimates the RTT between the owners of two landmark vectors. Returns
/// nullopt when the vectors share no measured slot.
[[nodiscard]] std::optional<TriangulationEstimate> estimate_rtt(
    const membership::LandmarkVector& mine,
    const membership::LandmarkVector& theirs);

/// Convenience: midpoint estimate, or kNever when no estimate is possible
/// (so unmeasurable candidates sort last).
[[nodiscard]] SimTime estimate_rtt_or_never(
    const membership::LandmarkVector& mine,
    const membership::LandmarkVector& theirs);

}  // namespace gocast::coord

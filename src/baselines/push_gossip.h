// Push-based gossip multicast baseline (the paper's "gossip" and "no-wait
// gossip" curves, modeled on Bimodal Multicast).
//
// "gossip": every t seconds a node sends a summary of message IDs to one
// uniformly random node; each message's ID is gossiped to `fanout` random
// nodes in total (one per period). Receivers pull messages they miss.
//
// "no-wait gossip": upon first receiving a message, a node immediately
// gossips its ID to `fanout` random nodes (gossip period effectively 0) —
// the paper uses it to reveal the fundamental performance limit of gossip
// multicast. Gossips still precede payloads (pull model), which is the
// source of its residual delay.
//
// Unlike GoCast, targets are chosen from the full membership (complete
// randomness) — matching the baseline's definition and giving it the most
// favorable membership assumption.
//
// The node is a template over a runtime context (see runtime/context.h);
// PushGossipNode binds the simulator. PushGossipSystem stays sim-only.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "gocast/dissemination.h"  // DeliveryEvent / DeliveryHook / wire messages
#include "net/network.h"
#include "runtime/context.h"
#include "runtime/sim_runtime.h"
#include "sim/timer.h"

namespace gocast::baselines {

struct PushGossipParams {
  int fanout = 5;              ///< F: how many random nodes hear each ID
  SimTime gossip_period = 0.1; ///< t; ignored in no-wait mode
  bool no_wait = false;
  std::size_t payload_bytes = 1024;
  SimTime gc_payload_after = 120.0;
  SimTime gc_record_after = 240.0;
  SimTime gc_sweep_period = 5.0;
  SimTime pull_retry_timeout = 2.0;
  int pull_max_attempts = 5;
};

template <runtime::Context RT>
class PushGossipNodeT final : public net::Endpoint {
 public:
  PushGossipNodeT(NodeId id, RT rt, PushGossipParams params, Rng rng);

  [[nodiscard]] NodeId id() const { return id_; }

  void start(SimTime stagger);
  void stop();
  void kill();

  MsgId multicast(std::size_t payload_bytes);

  void set_delivery_hook(core::DeliveryHook hook) {
    delivery_hook_ = std::move(hook);
  }

  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }
  [[nodiscard]] std::uint64_t gossips_sent() const { return gossips_sent_; }

  /// Harness-facing aliases matching core::GoCastNode.
  [[nodiscard]] std::uint64_t deliveries_count() const { return deliveries_; }
  [[nodiscard]] std::uint64_t duplicates_count() const { return duplicates_; }

  // -- net::Endpoint --
  void handle_message(NodeId from, const net::MessagePtr& msg) override;

 private:
  struct Stored {
    SimTime inject_time;
    SimTime received_at;
    std::size_t payload_bytes;
    int remaining_fanout;  ///< gossip targets this ID still needs
    bool payload_present;
  };

  void accept_message(MsgId id, SimTime inject_time, std::size_t payload_bytes,
                      core::DeliveryPath path);
  void on_gossip_timer();
  void gossip_now(MsgId id);  ///< no-wait mode: immediate fanout
  void on_digest(NodeId from, const core::GossipDigestMsg& msg);
  void on_pull(NodeId from, const core::PullRequestMsg& msg);
  void on_data(NodeId from, const core::DataMsg& msg);
  void issue_pull(NodeId target, MsgId id);
  void gc_sweep();
  [[nodiscard]] NodeId random_target();

  NodeId id_;
  RT rt_;
  PushGossipParams params_;
  Rng rng_;

  struct PullState {
    NodeId target;
    SimTime started;
    int attempts;
  };

  std::unordered_map<MsgId, Stored> store_;
  std::unordered_map<MsgId, PullState> pull_pending_;
  std::uint32_t next_seq_ = 0;

  core::DeliveryHook delivery_hook_;
  runtime::PeriodicTimer<RT> gossip_timer_;
  runtime::PeriodicTimer<RT> gc_timer_;

  std::uint64_t deliveries_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t gossips_sent_ = 0;
};

/// The simulation-backed baseline node.
using PushGossipNode = PushGossipNodeT<runtime::SimRuntime>;

/// Assembles a complete push-gossip deployment over the same network
/// substrate as core::System.
struct PushGossipSystemConfig {
  std::size_t node_count = 64;
  PushGossipParams node;
  net::NetworkConfig net;
  std::shared_ptr<const net::LatencyModel> latency;  ///< null → synthetic King
  std::uint64_t seed = 1;
};

class PushGossipSystem {
 public:
  explicit PushGossipSystem(PushGossipSystemConfig config);

  PushGossipSystem(const PushGossipSystem&) = delete;
  PushGossipSystem& operator=(const PushGossipSystem&) = delete;

  void start();
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] PushGossipNode& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] SimTime now() const { return engine_.now(); }

  void run_for(SimTime duration) { engine_.run_until(engine_.now() + duration); }
  void run_until(SimTime t) { engine_.run_until(t); }
  std::vector<NodeId> fail_random_fraction(double fraction);
  [[nodiscard]] NodeId random_alive_node();
  void set_delivery_hook(const core::DeliveryHook& hook);
  [[nodiscard]] std::vector<NodeId> alive_nodes() const;

 private:
  PushGossipSystemConfig config_;
  Rng rng_;
  sim::Engine engine_;
  std::shared_ptr<const net::LatencyModel> latency_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<PushGossipNode>> nodes_;
};

}  // namespace gocast::baselines

#include "baselines/push_gossip.h"

#include <unordered_set>

#include "common/assert.h"
#include "gocast/system.h"  // default_latency_model

namespace gocast::baselines {

PushGossipNode::PushGossipNode(NodeId id, net::Network& network,
                               PushGossipParams params, Rng rng)
    : id_(id),
      network_(network),
      engine_(network.engine()),
      params_(params),
      rng_(std::move(rng)),
      gossip_timer_(engine_, params.gossip_period, [this] { on_gossip_timer(); }),
      gc_timer_(engine_, params.gc_sweep_period, [this] { gc_sweep(); }) {
  GOCAST_ASSERT(params_.fanout >= 1);
  GOCAST_ASSERT(params_.gossip_period > 0.0);
  network_.set_endpoint(id_, this);
}

void PushGossipNode::start(SimTime stagger) {
  if (!params_.no_wait) gossip_timer_.start(stagger + params_.gossip_period);
  gc_timer_.start(stagger + params_.gc_sweep_period);
}

void PushGossipNode::stop() {
  gossip_timer_.stop();
  gc_timer_.stop();
}

void PushGossipNode::kill() {
  network_.fail_node(id_);
  stop();
}

MsgId PushGossipNode::multicast(std::size_t payload_bytes) {
  GOCAST_ASSERT(network_.alive(id_));
  MsgId id{id_, next_seq_++};
  accept_message(id, engine_.now(), payload_bytes, core::DeliveryPath::kLocal);
  return id;
}

NodeId PushGossipNode::random_target() {
  GOCAST_ASSERT(network_.node_count() >= 2);
  for (;;) {
    NodeId target = static_cast<NodeId>(rng_.next_below(network_.node_count()));
    if (target != id_) return target;
  }
}

void PushGossipNode::accept_message(MsgId id, SimTime inject_time,
                                    std::size_t payload_bytes,
                                    core::DeliveryPath path) {
  auto [it, inserted] = store_.try_emplace(
      id,
      Stored{inject_time, engine_.now(), payload_bytes, params_.fanout, true});
  GOCAST_ASSERT(inserted);
  ++deliveries_;
  pull_pending_.erase(id);
  if (delivery_hook_) {
    delivery_hook_(core::DeliveryEvent{id_, id, inject_time, engine_.now(), path});
  }
  if (params_.no_wait) gossip_now(id);
}

void PushGossipNode::gossip_now(MsgId id) {
  // Immediately tell `fanout` distinct random nodes.
  auto it = store_.find(id);
  GOCAST_ASSERT(it != store_.end());
  it->second.remaining_fanout = 0;
  std::unordered_set<NodeId> picked;
  int wanted = std::min<int>(params_.fanout,
                             static_cast<int>(network_.node_count()) - 1);
  while (static_cast<int>(picked.size()) < wanted) {
    picked.insert(random_target());
  }
  for (NodeId target : picked) {
    ++gossips_sent_;
    network_.send(id_, target,
                  network_.make<core::GossipDigestMsg>(
                      std::vector<core::DigestEntry>{
                          core::DigestEntry{id, it->second.inject_time}},
                      std::vector<membership::MemberEntry>{},
                      net::PeerDegrees{}));
  }
}

void PushGossipNode::on_gossip_timer() {
  // One digest per period to one random node, containing every ID that
  // still owes gossip rounds; each send consumes one round per ID.
  std::vector<core::DigestEntry> entries;
  for (auto& [id, stored] : store_) {
    if (stored.remaining_fanout > 0 && stored.payload_present) {
      entries.push_back(core::DigestEntry{id, stored.inject_time});
      --stored.remaining_fanout;
    }
  }
  if (entries.empty()) return;  // "a gossip can be saved"
  ++gossips_sent_;
  network_.send(id_, random_target(),
                network_.make<core::GossipDigestMsg>(
                    std::move(entries), std::vector<membership::MemberEntry>{},
                    net::PeerDegrees{}));
}

void PushGossipNode::on_digest(NodeId from, const core::GossipDigestMsg& msg) {
  SimTime now = engine_.now();
  for (const core::DigestEntry& entry : msg.entries) {
    if (store_.count(entry.id) > 0) continue;
    if (pull_pending_.count(entry.id) > 0) continue;
    pull_pending_[entry.id] = PullState{from, now, 0};
    issue_pull(from, entry.id);
  }
}

void PushGossipNode::issue_pull(NodeId target, MsgId id) {
  network_.send(id_, target,
                network_.make<core::PullRequestMsg>(id, net::PeerDegrees{}));
  // Self-driven retry: a lost pull or response must not orphan the message.
  engine_.schedule_after(params_.pull_retry_timeout, [this, id] {
    auto it = pull_pending_.find(id);
    if (it == pull_pending_.end()) return;
    if (store_.count(id) > 0 || !network_.alive(id_)) {
      pull_pending_.erase(it);
      return;
    }
    if (++it->second.attempts >= params_.pull_max_attempts) {
      pull_pending_.erase(it);
      return;
    }
    issue_pull(it->second.target, id);
  });
}

void PushGossipNode::on_pull(NodeId from, const core::PullRequestMsg& msg) {
  for (MsgId id : msg.ids) {
    auto it = store_.find(id);
    if (it == store_.end() || !it->second.payload_present) continue;
    network_.send(id_, from,
                  network_.make<core::DataMsg>(
                      id, it->second.inject_time, it->second.payload_bytes,
                      /*via_tree=*/false, net::PeerDegrees{}));
  }
}

void PushGossipNode::on_data(NodeId from, const core::DataMsg& msg) {
  if (store_.count(msg.id) > 0) {
    ++duplicates_;
    // Same abort courtesy as GoCast: a redundant transfer is cut short.
    network_.report_aborted_transfer(from, id_, msg.payload_bytes);
    return;
  }
  accept_message(msg.id, msg.inject_time, msg.payload_bytes,
                 core::DeliveryPath::kPull);
}

void PushGossipNode::gc_sweep() {
  SimTime now = engine_.now();
  for (auto it = store_.begin(); it != store_.end();) {
    SimTime age = now - it->second.received_at;
    if (age > params_.gc_record_after) {
      it = store_.erase(it);
      continue;
    }
    if (age > params_.gc_payload_after) it->second.payload_present = false;
    ++it;
  }
  for (auto it = pull_pending_.begin(); it != pull_pending_.end();) {
    if (now - it->second.started > params_.gc_payload_after) {
      it = pull_pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void PushGossipNode::handle_message(NodeId from, const net::MessagePtr& msg) {
  switch (msg->packet_type()) {
    case core::kPktGossipDigest:
      on_digest(from, static_cast<const core::GossipDigestMsg&>(*msg));
      return;
    case core::kPktPullRequest:
      on_pull(from, static_cast<const core::PullRequestMsg&>(*msg));
      return;
    case core::kPktData:
      on_data(from, static_cast<const core::DataMsg&>(*msg));
      return;
    default:
      return;  // baseline ignores anything else
  }
}

// ---------------------------------------------------------------------------
// System facade
// ---------------------------------------------------------------------------

PushGossipSystem::PushGossipSystem(PushGossipSystemConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  GOCAST_ASSERT(config_.node_count >= 2);
  latency_ = config_.latency != nullptr
                 ? config_.latency
                 : core::default_latency_model(config_.seed);
  network_ = std::make_unique<net::Network>(engine_, latency_, config_.net,
                                            rng_.fork("network"));
  network_->add_nodes_round_robin(config_.node_count);
  nodes_.reserve(config_.node_count);
  for (NodeId id = 0; id < config_.node_count; ++id) {
    nodes_.push_back(std::make_unique<PushGossipNode>(
        id, *network_, config_.node, rng_.fork(static_cast<std::uint64_t>(id))));
  }
}

void PushGossipSystem::start() {
  Rng init_rng = rng_.fork("init");
  for (auto& node : nodes_) {
    node->start(init_rng.next_range(0.0, config_.node.gossip_period));
  }
}

std::vector<NodeId> PushGossipSystem::fail_random_fraction(double fraction) {
  GOCAST_ASSERT(fraction >= 0.0 && fraction <= 1.0);
  std::vector<NodeId> alive = alive_nodes();
  Rng fail_rng = rng_.fork("failures");
  fail_rng.shuffle(alive);
  std::size_t count = static_cast<std::size_t>(
      static_cast<double>(alive.size()) * fraction + 0.5);
  std::vector<NodeId> killed(alive.begin(),
                             alive.begin() + static_cast<long>(count));
  for (NodeId id : killed) nodes_[id]->kill();
  return killed;
}

NodeId PushGossipSystem::random_alive_node() {
  GOCAST_ASSERT(network_->alive_count() > 0);
  for (;;) {
    NodeId id = static_cast<NodeId>(rng_.next_below(nodes_.size()));
    if (network_->alive(id)) return id;
  }
}

void PushGossipSystem::set_delivery_hook(const core::DeliveryHook& hook) {
  for (auto& node : nodes_) node->set_delivery_hook(hook);
}

std::vector<NodeId> PushGossipSystem::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (network_->alive(id)) out.push_back(id);
  }
  return out;
}

}  // namespace gocast::baselines

#include "baselines/push_gossip.h"

#include <unordered_set>

#include "common/assert.h"
#include "gocast/system.h"  // default_latency_model
#include "runtime/realtime_runtime.h"
#include "runtime/udp_runtime.h"

namespace gocast::baselines {

template <runtime::Context RT>
PushGossipNodeT<RT>::PushGossipNodeT(NodeId id, RT rt, PushGossipParams params,
                                     Rng rng)
    : id_(id),
      rt_(rt),
      params_(params),
      rng_(std::move(rng)),
      gossip_timer_(rt_, params.gossip_period, [this] { on_gossip_timer(); }),
      gc_timer_(rt_, params.gc_sweep_period, [this] { gc_sweep(); }) {
  GOCAST_ASSERT(params_.fanout >= 1);
  GOCAST_ASSERT(params_.gossip_period > 0.0);
  rt_.set_endpoint(id_, this);
}

template <runtime::Context RT>
void PushGossipNodeT<RT>::start(SimTime stagger) {
  if (!params_.no_wait) gossip_timer_.start(stagger + params_.gossip_period);
  gc_timer_.start(stagger + params_.gc_sweep_period);
}

template <runtime::Context RT>
void PushGossipNodeT<RT>::stop() {
  gossip_timer_.stop();
  gc_timer_.stop();
}

template <runtime::Context RT>
void PushGossipNodeT<RT>::kill() {
  rt_.fail_node(id_);
  stop();
}

template <runtime::Context RT>
MsgId PushGossipNodeT<RT>::multicast(std::size_t payload_bytes) {
  GOCAST_ASSERT(rt_.alive(id_));
  MsgId id{id_, next_seq_++};
  accept_message(id, rt_.now(), payload_bytes, core::DeliveryPath::kLocal);
  return id;
}

template <runtime::Context RT>
NodeId PushGossipNodeT<RT>::random_target() {
  GOCAST_ASSERT(rt_.node_count() >= 2);
  for (;;) {
    NodeId target = static_cast<NodeId>(rng_.next_below(rt_.node_count()));
    if (target != id_) return target;
  }
}

template <runtime::Context RT>
void PushGossipNodeT<RT>::accept_message(MsgId id, SimTime inject_time,
                                         std::size_t payload_bytes,
                                         core::DeliveryPath path) {
  auto [it, inserted] = store_.try_emplace(
      id, Stored{inject_time, rt_.now(), payload_bytes, params_.fanout, true});
  GOCAST_ASSERT(inserted);
  ++deliveries_;
  pull_pending_.erase(id);
  if (delivery_hook_) {
    delivery_hook_(core::DeliveryEvent{id_, id, inject_time, rt_.now(), path});
  }
  if (params_.no_wait) gossip_now(id);
}

template <runtime::Context RT>
void PushGossipNodeT<RT>::gossip_now(MsgId id) {
  // Immediately tell `fanout` distinct random nodes.
  auto it = store_.find(id);
  GOCAST_ASSERT(it != store_.end());
  it->second.remaining_fanout = 0;
  std::unordered_set<NodeId> picked;
  int wanted = std::min<int>(params_.fanout,
                             static_cast<int>(rt_.node_count()) - 1);
  while (static_cast<int>(picked.size()) < wanted) {
    picked.insert(random_target());
  }
  for (NodeId target : picked) {
    ++gossips_sent_;
    rt_.send(id_, target,
             rt_.template make<core::GossipDigestMsg>(
                 std::vector<core::DigestEntry>{
                     core::DigestEntry{id, it->second.inject_time}},
                 std::vector<membership::MemberEntry>{},
                 net::PeerDegrees{}));
  }
}

template <runtime::Context RT>
void PushGossipNodeT<RT>::on_gossip_timer() {
  // One digest per period to one random node, containing every ID that
  // still owes gossip rounds; each send consumes one round per ID.
  std::vector<core::DigestEntry> entries;
  for (auto& [id, stored] : store_) {
    if (stored.remaining_fanout > 0 && stored.payload_present) {
      entries.push_back(core::DigestEntry{id, stored.inject_time});
      --stored.remaining_fanout;
    }
  }
  if (entries.empty()) return;  // "a gossip can be saved"
  ++gossips_sent_;
  rt_.send(id_, random_target(),
           rt_.template make<core::GossipDigestMsg>(
               std::move(entries), std::vector<membership::MemberEntry>{},
               net::PeerDegrees{}));
}

template <runtime::Context RT>
void PushGossipNodeT<RT>::on_digest(NodeId from,
                                    const core::GossipDigestMsg& msg) {
  SimTime now = rt_.now();
  for (const core::DigestEntry& entry : msg.entries) {
    if (store_.count(entry.id) > 0) continue;
    if (pull_pending_.count(entry.id) > 0) continue;
    pull_pending_[entry.id] = PullState{from, now, 0};
    issue_pull(from, entry.id);
  }
}

template <runtime::Context RT>
void PushGossipNodeT<RT>::issue_pull(NodeId target, MsgId id) {
  rt_.send(id_, target,
           rt_.template make<core::PullRequestMsg>(id, net::PeerDegrees{}));
  // Self-driven retry: a lost pull or response must not orphan the message.
  rt_.schedule_after(params_.pull_retry_timeout, [this, id] {
    auto it = pull_pending_.find(id);
    if (it == pull_pending_.end()) return;
    if (store_.count(id) > 0 || !rt_.alive(id_)) {
      pull_pending_.erase(it);
      return;
    }
    if (++it->second.attempts >= params_.pull_max_attempts) {
      pull_pending_.erase(it);
      return;
    }
    issue_pull(it->second.target, id);
  });
}

template <runtime::Context RT>
void PushGossipNodeT<RT>::on_pull(NodeId from, const core::PullRequestMsg& msg) {
  for (MsgId id : msg.ids) {
    auto it = store_.find(id);
    if (it == store_.end() || !it->second.payload_present) continue;
    rt_.send(id_, from,
             rt_.template make<core::DataMsg>(
                 id, it->second.inject_time, it->second.payload_bytes,
                 /*via_tree=*/false, net::PeerDegrees{}));
  }
}

template <runtime::Context RT>
void PushGossipNodeT<RT>::on_data(NodeId from, const core::DataMsg& msg) {
  if (store_.count(msg.id) > 0) {
    ++duplicates_;
    // Same abort courtesy as GoCast: a redundant transfer is cut short.
    rt_.report_aborted_transfer(from, id_, msg.payload_bytes);
    return;
  }
  accept_message(msg.id, msg.inject_time, msg.payload_bytes,
                 core::DeliveryPath::kPull);
}

template <runtime::Context RT>
void PushGossipNodeT<RT>::gc_sweep() {
  SimTime now = rt_.now();
  for (auto it = store_.begin(); it != store_.end();) {
    SimTime age = now - it->second.received_at;
    if (age > params_.gc_record_after) {
      it = store_.erase(it);
      continue;
    }
    if (age > params_.gc_payload_after) it->second.payload_present = false;
    ++it;
  }
  for (auto it = pull_pending_.begin(); it != pull_pending_.end();) {
    if (now - it->second.started > params_.gc_payload_after) {
      it = pull_pending_.erase(it);
    } else {
      ++it;
    }
  }
}

template <runtime::Context RT>
void PushGossipNodeT<RT>::handle_message(NodeId from,
                                         const net::MessagePtr& msg) {
  switch (msg->packet_type()) {
    case core::kPktGossipDigest:
      on_digest(from, static_cast<const core::GossipDigestMsg&>(*msg));
      return;
    case core::kPktPullRequest:
      on_pull(from, static_cast<const core::PullRequestMsg&>(*msg));
      return;
    case core::kPktData:
      on_data(from, static_cast<const core::DataMsg&>(*msg));
      return;
    default:
      return;  // baseline ignores anything else
  }
}

template class PushGossipNodeT<runtime::SimRuntime>;
template class PushGossipNodeT<runtime::RealtimeContext>;
template class PushGossipNodeT<runtime::UdpContext>;

// ---------------------------------------------------------------------------
// System facade
// ---------------------------------------------------------------------------

PushGossipSystem::PushGossipSystem(PushGossipSystemConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  GOCAST_ASSERT(config_.node_count >= 2);
  latency_ = config_.latency != nullptr
                 ? config_.latency
                 : core::default_latency_model(config_.seed);
  network_ = std::make_unique<net::Network>(engine_, latency_, config_.net,
                                            rng_.fork("network"));
  network_->add_nodes_round_robin(config_.node_count);
  nodes_.reserve(config_.node_count);
  for (NodeId id = 0; id < config_.node_count; ++id) {
    nodes_.push_back(std::make_unique<PushGossipNode>(
        id, *network_, config_.node, rng_.fork(static_cast<std::uint64_t>(id))));
  }
}

void PushGossipSystem::start() {
  Rng init_rng = rng_.fork("init");
  for (auto& node : nodes_) {
    node->start(init_rng.next_range(0.0, config_.node.gossip_period));
  }
}

std::vector<NodeId> PushGossipSystem::fail_random_fraction(double fraction) {
  GOCAST_ASSERT(fraction >= 0.0 && fraction <= 1.0);
  std::vector<NodeId> alive = alive_nodes();
  Rng fail_rng = rng_.fork("failures");
  fail_rng.shuffle(alive);
  std::size_t count = static_cast<std::size_t>(
      static_cast<double>(alive.size()) * fraction + 0.5);
  std::vector<NodeId> killed(alive.begin(),
                             alive.begin() + static_cast<long>(count));
  for (NodeId id : killed) nodes_[id]->kill();
  return killed;
}

NodeId PushGossipSystem::random_alive_node() {
  GOCAST_ASSERT(network_->alive_count() > 0);
  for (;;) {
    NodeId id = static_cast<NodeId>(rng_.next_below(nodes_.size()));
    if (network_->alive(id)) return id;
  }
}

void PushGossipSystem::set_delivery_hook(const core::DeliveryHook& hook) {
  for (auto& node : nodes_) node->set_delivery_hook(hook);
}

std::vector<NodeId> PushGossipSystem::alive_nodes() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (network_->alive(id)) out.push_back(id);
  }
  return out;
}

}  // namespace gocast::baselines

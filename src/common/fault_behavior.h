// Per-node adversarial / slow-node behavior, set by the fault subsystem and
// consulted by the protocol layers (node dispatch, overlay maintenance,
// dissemination). Lives in common/ because both the overlay layer and the
// gocast core read it; it carries no protocol dependencies of its own.
//
// A node's behavior is owned by the GoCastNode and shared by const pointer
// with its subsystems, so the FaultInjector can flip a node adversarial (or
// cure it) at any scheduled time and every layer sees the change
// immediately. All defaults mean "honest": the honest path never branches on
// anything but cheap always-false flags.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace gocast {

struct FaultBehavior {
  /// Accepts tree pushes and gossip normally but never forwards payloads:
  /// no tree forwarding, no digest entries advertised, pull requests
  /// ignored. Membership piggybacking still flows (the node looks alive).
  bool mute_forwarder = false;

  /// Advertises MsgIds it does not hold: every id heard in a digest is
  /// re-advertised to the other neighbors as if stored, but the node never
  /// pulls the payload and never answers pull requests — pulls to it yield
  /// nothing until the requester's retry timer fires.
  bool digest_liar = false;

  /// Advertises fake degrees in every outgoing message, distorting the
  /// C1–C4 maintenance decisions of its neighbors (e.g. the default 0/0
  /// makes the liar look permanently under-provisioned: peers never select
  /// it as a drop/replacement victim and keep accepting its links).
  bool degree_liar = false;
  std::uint16_t fake_rand_degree = 0;
  std::uint16_t fake_near_degree = 0;

  /// CPU-style per-message processing delay applied in the node's receive
  /// path (distinct from per-link `degrade`: the delay is paid once per
  /// inbound message regardless of sender). 0 = no delay.
  SimTime processing_delay = 0.0;

  [[nodiscard]] bool honest() const {
    return !mute_forwarder && !digest_liar && !degree_liar &&
           processing_delay <= 0.0;
  }

  friend bool operator==(const FaultBehavior&, const FaultBehavior&) = default;
};

}  // namespace gocast

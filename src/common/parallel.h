// Minimal data-parallel helper for embarrassingly parallel index loops
// (row-sharded latency-matrix generation, and anything else below the
// harness layer that wants worker threads without depending on it).
//
// Determinism contract: parallel_for only changes *which thread* runs
// body(i), never how many times or for which i. Any computation whose
// output is a pure per-index function (e.g. one forked RNG stream per row)
// therefore produces identical results at every thread count.
#pragma once

#include <cstddef>
#include <functional>

namespace gocast {

/// Resolves a requested worker count: a positive value is returned as-is;
/// 0 means "auto" — GOCAST_THREADS when set and positive, else
/// std::thread::hardware_concurrency(), else 1.
[[nodiscard]] std::size_t resolve_threads(std::size_t requested);

/// Runs body(i) for every i in [0, n), exactly once each, and returns after
/// all of them complete. With resolved threads == 1 (or n <= 1) the loop runs
/// inline on the caller's thread in index order — the exact serial path.
/// Otherwise worker threads pull contiguous index chunks off a shared atomic
/// cursor; `body` must be safe to call concurrently for distinct i. The first
/// exception thrown by any body (lowest index among those captured) is
/// rethrown on the caller's thread after the join.
void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace gocast

#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/assert.h"

namespace gocast {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-variance merge.
  double delta = other.mean_ - mean_;
  std::size_t n = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = n;
}

double Summary::mean() const { return count_ == 0 ? 0.0 : mean_; }

double Summary::variance() const {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::min() const { return count_ == 0 ? 0.0 : min_; }

double Summary::max() const { return count_ == 0 ? 0.0 : max_; }

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " sd=" << stddev()
     << " min=" << min() << " max=" << max();
  return os.str();
}

Percentiles::Percentiles(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Percentiles::at(double q) const {
  GOCAST_ASSERT(q >= 0.0 && q <= 1.0);
  GOCAST_ASSERT(!sorted_.empty());
  if (sorted_.size() == 1) return sorted_.front();
  double rank = q * static_cast<double>(sorted_.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::fraction_leq(double x) const {
  if (sorted_.empty()) return 0.0;
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

std::vector<Cdf::Point> Cdf::curve(std::size_t points) const {
  GOCAST_ASSERT(points >= 2);
  std::vector<Point> out;
  if (sorted_.empty()) return out;
  double lo = sorted_.front();
  double hi = sorted_.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    double x = lo + (hi - lo) * static_cast<double>(i) /
                        static_cast<double>(points - 1);
    out.push_back({x, fraction_leq(x)});
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  GOCAST_ASSERT(hi > lo);
  GOCAST_ASSERT(bins > 0);
}

void Histogram::add(double x) {
  double raw = (x - lo_) / width_;
  long bin = static_cast<long>(std::floor(raw));
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count_in_bin(std::size_t bin) const {
  GOCAST_ASSERT(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

void IntDistribution::add(long value) {
  auto it = std::lower_bound(
      counts_.begin(), counts_.end(), value,
      [](const auto& entry, long v) { return entry.first < v; });
  if (it != counts_.end() && it->first == value) {
    ++it->second;
  } else {
    counts_.insert(it, {value, 1});
  }
  ++total_;
  sum_ += static_cast<double>(value);
}

std::size_t IntDistribution::count(long value) const {
  auto it = std::lower_bound(
      counts_.begin(), counts_.end(), value,
      [](const auto& entry, long v) { return entry.first < v; });
  if (it != counts_.end() && it->first == value) return it->second;
  return 0;
}

double IntDistribution::fraction(long value) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(count(value)) /
                           static_cast<double>(total_);
}

double IntDistribution::fraction_leq(long value) const {
  if (total_ == 0) return 0.0;
  std::size_t acc = 0;
  for (const auto& [v, c] : counts_) {
    if (v > value) break;
    acc += c;
  }
  return static_cast<double>(acc) / static_cast<double>(total_);
}

double IntDistribution::mean() const {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

long IntDistribution::min() const {
  GOCAST_ASSERT(!counts_.empty());
  return counts_.front().first;
}

long IntDistribution::max() const {
  GOCAST_ASSERT(!counts_.empty());
  return counts_.back().first;
}

std::vector<std::pair<long, std::size_t>> IntDistribution::sorted_counts() const {
  return counts_;
}

}  // namespace gocast

// Core identifier and time types shared by every GoCast module.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace gocast {

/// Index of a node within a simulated system. Dense, assigned by the harness.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Identifier of a multicast group. Group 0 is the default (universal)
/// group every node belongs to; single-group deployments only ever see it,
/// which keeps their wire frames and protocol behavior byte-identical to the
/// pre-multigroup code.
using GroupId = std::uint32_t;

/// The implicit group of a single-group deployment.
inline constexpr GroupId kDefaultGroup = 0;

/// Sentinel for "no group".
inline constexpr GroupId kInvalidGroup = std::numeric_limits<GroupId>::max();

/// Simulated time in seconds since the start of the run.
using SimTime = double;

/// Sentinel for "never" / unset timestamps.
inline constexpr SimTime kNever = std::numeric_limits<SimTime>::infinity();

/// Identifier of a multicast message: the paper concatenates the source's IP
/// address with a per-source monotonically increasing sequence number. We use
/// the source NodeId in place of the IP address.
struct MsgId {
  NodeId origin = kInvalidNode;
  std::uint32_t seq = 0;

  friend bool operator==(const MsgId&, const MsgId&) = default;
  friend auto operator<=>(const MsgId&, const MsgId&) = default;

  /// Packs the id into one 64-bit word (origin in the high half).
  [[nodiscard]] std::uint64_t packed() const {
    return (static_cast<std::uint64_t>(origin) << 32) | seq;
  }

  [[nodiscard]] std::string to_string() const {
    return std::to_string(origin) + ":" + std::to_string(seq);
  }
};

}  // namespace gocast

template <>
struct std::hash<gocast::MsgId> {
  std::size_t operator()(const gocast::MsgId& id) const noexcept {
    // SplitMix64 finalizer over the packed id: cheap and well mixed.
    std::uint64_t z = id.packed() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

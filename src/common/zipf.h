// Seeded, cross-platform-deterministic Zipf sampler for group sizes and
// popularity. All arithmetic is unsigned fixed-point (Q32.32) plus raw
// splitmix64 draws, so the weights and every sampled index are identical on
// any platform/compiler — the same discipline the job-seed derivation uses
// (never route determinism-critical draws through std::distribution types,
// whose algorithms are implementation-defined).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gocast::common {

/// Q32.32 fixed-point rank weight `rank^-s` for 1-based `rank`.
/// `s_fixed` is the exponent in Q32.32 (e.g. exponent 0.8 -> 0.8 * 2^32).
[[nodiscard]] std::uint64_t zipf_weight_fixed(std::uint32_t rank,
                                              std::uint64_t s_fixed);

/// Converts a double exponent to the Q32.32 representation used throughout.
/// The conversion (llround of s * 2^32) is exact for the exponents we use
/// and deterministic everywhere.
[[nodiscard]] std::uint64_t zipf_exponent_fixed(double s);

/// Draws 0-based ranks with probability proportional to `(rank+1)^-s`.
/// Construction precomputes the cumulative weight table (O(n)); each draw is
/// one splitmix64 step plus a binary search (O(log n)).
class ZipfSampler {
 public:
  /// `n` ranks (must be >= 1), exponent `s` >= 0, deterministic `seed`.
  ZipfSampler(std::size_t n, double s, std::uint64_t seed);

  /// Next 0-based rank. Rank 0 is the most popular.
  [[nodiscard]] std::uint32_t next();

  /// Q32.32 weight of 0-based `rank` (as used in the CDF).
  [[nodiscard]] std::uint64_t weight(std::uint32_t rank) const;

  [[nodiscard]] std::uint64_t total_weight() const {
    return cumulative_.empty() ? 0 : cumulative_.back();
  }

  [[nodiscard]] std::size_t size() const { return cumulative_.size(); }

 private:
  std::vector<std::uint64_t> cumulative_;  ///< inclusive prefix sums, Q32.32
  std::uint64_t state_ = 0;                ///< splitmix64 state
};

}  // namespace gocast::common

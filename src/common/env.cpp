#include "common/env.h"

#include <algorithm>
#include <cstdlib>

namespace gocast {

double env_double(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  double value = std::strtod(raw, &end);
  return end == raw ? fallback : value;
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  long long value = std::strtoll(raw, &end, 10);
  return end == raw ? fallback : static_cast<std::int64_t>(value);
}

double bench_scale() { return env_double("GOCAST_BENCH_SCALE", 1.0); }

std::size_t scaled_count(std::size_t full, std::size_t min_value) {
  double scaled = static_cast<double>(full) * bench_scale();
  auto result = static_cast<std::size_t>(scaled);
  return std::max(result, min_value);
}

}  // namespace gocast

// Deterministic randomness. Every component derives its generator from the
// experiment seed through named streams, so adding a new consumer of
// randomness never perturbs existing ones.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

#include "common/assert.h"

namespace gocast {

/// SplitMix64 step — used to derive well-mixed child seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Stable 64-bit FNV-1a hash of a label, for naming RNG streams.
[[nodiscard]] std::uint64_t hash_label(std::string_view label);

/// A seeded random source. Thin wrapper over std::mt19937_64 that adds the
/// handful of sampling helpers the protocols need and supports deriving
/// independent child generators by label.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(mix(seed)), seed_material_(seed) {}

  /// Child generator whose stream is independent of (and stable w.r.t.)
  /// this generator's own consumption.
  [[nodiscard]] Rng fork(std::string_view label) const {
    return Rng(seed_material_ ^ hash_label(label));
  }

  /// Child generator derived from a numeric index (e.g. per-node streams).
  [[nodiscard]] Rng fork(std::uint64_t index) const {
    std::uint64_t s = seed_material_ + 0x632be59bd9b4e019ULL * (index + 1);
    return Rng(splitmix64(s));
  }

  /// Uniform integer in [0, bound). bound must be positive.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) {
    GOCAST_ASSERT(bound > 0);
    return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_unit() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double next_range(double lo, double hi) {
    GOCAST_ASSERT(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Normal deviate.
  [[nodiscard]] double next_gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial.
  [[nodiscard]] bool next_bool(double p_true) {
    return std::bernoulli_distribution(p_true)(engine_);
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) {
    GOCAST_ASSERT(!v.empty());
    return v[static_cast<std::size_t>(next_below(v.size()))];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Reservoir-samples k distinct positions of v (order unspecified).
  template <typename T>
  [[nodiscard]] std::vector<T> sample(const std::vector<T>& v, std::size_t k) {
    std::vector<T> out;
    out.reserve(std::min(k, v.size()));
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (out.size() < k) {
        out.push_back(v[i]);
      } else {
        std::size_t j = static_cast<std::size_t>(next_below(i + 1));
        if (j < k) out[j] = v[i];
      }
    }
    return out;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  static std::uint64_t mix(std::uint64_t seed) {
    std::uint64_t s = seed;
    return splitmix64(s);
  }

  std::mt19937_64 engine_;
  std::uint64_t seed_material_ = 0;
};

}  // namespace gocast

#include "common/parallel.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.h"

namespace gocast {

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  std::int64_t env = env_int("GOCAST_THREADS", 0);
  if (env > 0) return static_cast<std::size_t>(env);
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  std::size_t workers = std::min(resolve_threads(threads), n);
  if (workers <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  // Chunked dynamic scheduling: small enough chunks to balance uneven rows
  // (triangular work in matrix generation), large enough to keep the shared
  // cursor off the hot path.
  const std::size_t chunk = std::max<std::size_t>(1, n / (workers * 8));
  std::atomic<std::size_t> cursor{0};

  // First-failure capture: lowest-index wins so the surfaced error does not
  // depend on thread interleaving.
  std::mutex error_mutex;
  std::size_t error_index = n;
  std::exception_ptr error;

  auto work = [&] {
    for (;;) {
      const std::size_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      const std::size_t end = std::min(begin + chunk, n);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (i < error_index) {
            error_index = i;
            error = std::current_exception();
          }
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(work);
  work();  // the caller participates instead of idling at the join
  for (std::thread& t : pool) t.join();

  if (error) std::rethrow_exception(error);
}

}  // namespace gocast

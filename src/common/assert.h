// Always-on invariant checking. Simulation correctness depends on protocol
// invariants; violating one silently would corrupt every downstream result,
// so these checks stay enabled in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gocast {

/// Thrown when a GOCAST_ASSERT fails. Deriving from logic_error: an assert
/// failure is always a programming error, never an environmental condition.
class AssertionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "assertion failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw AssertionError(os.str());
}
}  // namespace detail

}  // namespace gocast

#define GOCAST_ASSERT(expr)                                              \
  do {                                                                   \
    if (!(expr))                                                         \
      ::gocast::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define GOCAST_ASSERT_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream gocast_assert_os;                               \
      gocast_assert_os << msg;                                           \
      ::gocast::detail::assert_fail(#expr, __FILE__, __LINE__,           \
                                    gocast_assert_os.str());             \
    }                                                                    \
  } while (0)

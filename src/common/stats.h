// Statistics utilities used by the analysis layer and the bench harness:
// streaming summaries, percentiles, CDFs, and fixed-bin histograms.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gocast {

/// Streaming mean/variance/min/max via Welford's algorithm.
class Summary {
 public:
  void add(double x);
  void merge(const Summary& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< Population variance.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(count_); }

  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch percentile computation over a sample set.
class Percentiles {
 public:
  explicit Percentiles(std::vector<double> samples);

  /// q in [0, 1]; linear interpolation between closest ranks.
  [[nodiscard]] double at(double q) const;
  [[nodiscard]] double median() const { return at(0.5); }
  [[nodiscard]] std::size_t count() const { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Empirical CDF: fraction of samples <= x.
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  [[nodiscard]] double fraction_leq(double x) const;
  [[nodiscard]] std::size_t count() const { return sorted_.size(); }

  struct Point {
    double x;
    double fraction;
  };
  /// `points` evenly spaced sample points between min and max (inclusive),
  /// suitable for plotting the curve the paper's figures show.
  [[nodiscard]] std::vector<Point> curve(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Fixed-width binned histogram over [lo, hi); out-of-range samples clamp to
/// the first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count_in_bin(std::size_t bin) const;
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Integer-keyed distribution (e.g. node degrees): count per value.
class IntDistribution {
 public:
  void add(long value);
  [[nodiscard]] std::size_t count(long value) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double fraction(long value) const;
  /// Fraction of samples <= value (for degree CDFs as in Fig 5a).
  [[nodiscard]] double fraction_leq(long value) const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] long min() const;
  [[nodiscard]] long max() const;

 private:
  std::vector<std::pair<long, std::size_t>> sorted_counts() const;
  // Sparse map kept as a small sorted vector: degree values cluster tightly.
  std::vector<std::pair<long, std::size_t>> counts_;
  std::size_t total_ = 0;
  double sum_ = 0.0;
};

}  // namespace gocast

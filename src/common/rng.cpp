#include "common/rng.h"

namespace gocast {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  // One extra mixing round: FNV alone is weak in the high bits.
  std::uint64_t s = h;
  return splitmix64(s);
}

}  // namespace gocast

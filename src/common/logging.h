// Minimal leveled logging. Simulations emit millions of events, so the hot
// path must cost one branch when the level is disabled; formatting happens
// only for enabled records.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace gocast {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Process-wide minimum level. Defaults to kWarn; tests and examples raise
/// or lower it explicitly. Reads GOCAST_LOG_LEVEL (trace|debug|info|warn|error|off)
/// from the environment on first use.
LogLevel log_level();
void set_log_level(LogLevel level);

/// True when records at `level` should be emitted.
inline bool log_enabled(LogLevel level) { return level >= log_level(); }

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}  // namespace detail

}  // namespace gocast

#define GOCAST_LOG(level, expr)                                     \
  do {                                                              \
    if (::gocast::log_enabled(level)) {                             \
      std::ostringstream gocast_log_os;                             \
      gocast_log_os << expr;                                        \
      ::gocast::detail::log_emit(level, gocast_log_os.str());       \
    }                                                               \
  } while (0)

#define GOCAST_TRACE(expr) GOCAST_LOG(::gocast::LogLevel::kTrace, expr)
#define GOCAST_DEBUG(expr) GOCAST_LOG(::gocast::LogLevel::kDebug, expr)
#define GOCAST_INFO(expr) GOCAST_LOG(::gocast::LogLevel::kInfo, expr)
#define GOCAST_WARN(expr) GOCAST_LOG(::gocast::LogLevel::kWarn, expr)
#define GOCAST_ERROR(expr) GOCAST_LOG(::gocast::LogLevel::kError, expr)

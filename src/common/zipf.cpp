#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"
#include "common/rng.h"

namespace gocast::common {
namespace {

constexpr std::uint64_t kOne = 1ULL << 32;  // 1.0 in Q32.32

[[nodiscard]] std::uint64_t mul_fixed(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) >> 32);
}

/// Integer square root of a 128-bit value (bit-by-bit; exact floor).
[[nodiscard]] std::uint64_t isqrt128(unsigned __int128 n) {
  unsigned __int128 x = n;
  unsigned __int128 result = 0;
  unsigned __int128 bit = static_cast<unsigned __int128>(1) << 126;
  while (bit > x) bit >>= 2;
  while (bit != 0) {
    if (x >= result + bit) {
      x -= result + bit;
      result = (result >> 1) + bit;
    } else {
      result >>= 1;
    }
    bit >>= 2;
  }
  return static_cast<std::uint64_t>(result);
}

/// sqrt of a Q32.32 value, in Q32.32: floor(sqrt(a << 32)).
[[nodiscard]] std::uint64_t sqrt_fixed(std::uint64_t a) {
  return isqrt128(static_cast<unsigned __int128>(a) << 32);
}

}  // namespace

std::uint64_t zipf_exponent_fixed(double s) {
  GOCAST_ASSERT(s >= 0.0 && s < 64.0);
  return static_cast<std::uint64_t>(std::llround(s * 4294967296.0));
}

std::uint64_t zipf_weight_fixed(std::uint32_t rank, std::uint64_t s_fixed) {
  GOCAST_ASSERT(rank >= 1);
  if (rank == 1 || s_fixed == 0) return kOne;
  // rank^-s == (1/rank)^s with base <= 1, so no intermediate overflows.
  const std::uint64_t inv = kOne / rank;
  std::uint64_t result = kOne;
  // Integer part of the exponent: binary exponentiation.
  std::uint64_t int_part = s_fixed >> 32;
  std::uint64_t base = inv;
  while (int_part != 0) {
    if (int_part & 1) result = mul_fixed(result, base);
    base = mul_fixed(base, base);
    int_part >>= 1;
  }
  // Fractional part: bit k (of 32) contributes a factor inv^(2^-k), which is
  // the k-th repeated square root of inv.
  std::uint64_t frac = s_fixed & 0xffffffffULL;
  std::uint64_t root = inv;
  for (unsigned k = 1; k <= 32 && frac != 0; ++k) {
    root = sqrt_fixed(root);
    const std::uint64_t bit = 1ULL << (32 - k);
    if (frac & bit) {
      result = mul_fixed(result, root);
      frac &= ~bit;
    }
  }
  return result;
}

ZipfSampler::ZipfSampler(std::size_t n, double s, std::uint64_t seed)
    : state_(seed) {
  GOCAST_ASSERT(n >= 1);
  const std::uint64_t s_fixed = zipf_exponent_fixed(s);
  cumulative_.resize(n);
  std::uint64_t sum = 0;
  for (std::size_t k = 0; k < n; ++k) {
    // Clamp to >= 1 so every rank stays sampleable even when the Q32.32
    // weight underflows (huge n with a steep exponent).
    sum += std::max<std::uint64_t>(
        zipf_weight_fixed(static_cast<std::uint32_t>(k + 1), s_fixed), 1);
    cumulative_[k] = sum;
  }
}

std::uint32_t ZipfSampler::next() {
  const std::uint64_t draw = splitmix64(state_);
  // Multiply-shift reduction onto [0, total): exactly defined, unlike
  // std::uniform_int_distribution.
  const std::uint64_t target = static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(draw) * total_weight()) >> 64);
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
  return static_cast<std::uint32_t>(it - cumulative_.begin());
}

std::uint64_t ZipfSampler::weight(std::uint32_t rank) const {
  GOCAST_ASSERT(rank < cumulative_.size());
  return cumulative_[rank] - (rank == 0 ? 0 : cumulative_[rank - 1]);
}

}  // namespace gocast::common

// Open-addressing flat hash map for the simulation hot path.
//
// Linear probing over one contiguous slot array (power-of-two capacity),
// tombstoned erase with automatic in-place rehash when dead slots pile up.
// Compared to std::unordered_map this removes the per-node heap allocation
// and pointer chase on every lookup, which dominates the simulator's inner
// loops (message stores, neighbor tables, membership indexes).
//
// Requirements and guarantees:
//  - Key and T must be default-constructible and movable (slots are storage,
//    not node pointers). Erased values are reset to T{} so owned resources
//    (e.g. vector capacity) are released eagerly.
//  - Iteration order is a pure function of the operation history and the
//    hash function — deterministic across runs, but NOT insertion order and
//    NOT stable across rehash.
//  - Iterators/pointers invalidate on rehash. Only inserting a NEW key can
//    rehash; try_emplace/operator[]/insert on an already-present key never
//    invalidates (same rule as std::unordered_map lookups). erase(it) never
//    moves elements, so erase-while-iterating loops are safe:
//    `it = map.erase(it)`.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/assert.h"

namespace gocast::common {

template <class Key, class T, class Hash = std::hash<Key>>
class FlatMap {
 public:
  using value_type = std::pair<Key, T>;
  using size_type = std::size_t;

  template <bool Const>
  class Iter {
   public:
    using reference =
        std::conditional_t<Const, const value_type&, value_type&>;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;

    Iter() = default;

    /// Conversion iterator -> const_iterator.
    template <bool C = Const, class = std::enable_if_t<C>>
    Iter(const Iter<false>& other)
        : slots_(other.slots_),
          bits_(other.bits_),
          idx_(other.idx_),
          cap_(other.cap_) {}

    reference operator*() const { return slots_[idx_]; }
    pointer operator->() const { return slots_ + idx_; }

    Iter& operator++() {
      ++idx_;
      skip_to_full();
      return *this;
    }
    Iter operator++(int) {
      Iter tmp = *this;
      ++(*this);
      return tmp;
    }

    friend bool operator==(const Iter& a, const Iter& b) {
      return a.idx_ == b.idx_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.idx_ != b.idx_;
    }

   private:
    friend class FlatMap;
    template <bool>
    friend class Iter;

    // Iteration walks the occupancy bitmap (one bit per slot) with
    // count-trailing-zeros rather than checking a state byte per slot: a
    // sparse table sweep is then a couple of word loads instead of a
    // data-dependent branch per slot. Table sweeps are a protocol hot path
    // (neighbor-table scans, piggyback assembly), and byte-wise skipping
    // mispredicts on every full/empty transition.
    void skip_to_full() {
      if (idx_ >= cap_) {
        idx_ = cap_;
        return;
      }
      size_type word = idx_ >> 6;
      const size_type words = (cap_ + 63) >> 6;
      std::uint64_t w = bits_[word] & (~std::uint64_t{0} << (idx_ & 63));
      while (w == 0) {
        if (++word >= words) {
          idx_ = cap_;
          return;
        }
        w = bits_[word];
      }
      idx_ = (word << 6) + static_cast<size_type>(std::countr_zero(w));
    }

    pointer slots_ = nullptr;
    const std::uint64_t* bits_ = nullptr;
    size_type idx_ = 0;
    size_type cap_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatMap() = default;

  [[nodiscard]] size_type size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  /// Current slot-array capacity (diagnostics; 0 before first insert).
  [[nodiscard]] size_type capacity() const { return states_.size(); }

  /// Heap bytes owned by the table, including the scratch buffers retained
  /// across rehashes (memory accounting for --mem-report).
  [[nodiscard]] std::size_t memory_bytes() const {
    return (slots_.capacity() + scratch_slots_.capacity()) *
               sizeof(value_type) +
           (states_.capacity() + scratch_states_.capacity()) * sizeof(State) +
           full_bits_.capacity() * sizeof(std::uint64_t);
  }

  [[nodiscard]] iterator begin() {
    iterator it = iterator_at(0);
    it.skip_to_full();
    return it;
  }
  [[nodiscard]] iterator end() { return iterator_at(states_.size()); }
  [[nodiscard]] const_iterator begin() const {
    const_iterator it = const_iterator_at(0);
    it.skip_to_full();
    return it;
  }
  [[nodiscard]] const_iterator end() const {
    return const_iterator_at(states_.size());
  }

  /// Pre-sizes the table for `n` elements without rehashing on the way there.
  void reserve(size_type n) {
    size_type needed = required_capacity(n);
    if (needed > states_.size()) rehash(needed);
  }

  void clear() {
    for (size_type i = 0; i < states_.size(); ++i) {
      if (states_[i] == State::kFull) slots_[i] = value_type{};
      states_[i] = State::kEmpty;
    }
    std::fill(full_bits_.begin(), full_bits_.end(), 0);
    size_ = 0;
    dead_ = 0;
  }

  [[nodiscard]] iterator find(const Key& key) {
    size_type idx = find_index(key);
    return idx == npos ? end() : iterator_at(idx);
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    size_type idx = find_index(key);
    return idx == npos ? end() : const_iterator_at(idx);
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return find_index(key) != npos;
  }
  [[nodiscard]] size_type count(const Key& key) const {
    return contains(key) ? 1 : 0;
  }

  template <class... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    if (states_.empty()) rehash(kMinCapacity);
    auto [idx, inserted] = probe_for_insert(key);
    if (!inserted) return {iterator_at(idx), false};
    // Grow only when a new key is actually being inserted, so try_emplace /
    // operator[] on a present key never rehashes (matches unordered_map's
    // rule that lookup of an existing key never invalidates). The load
    // invariant (size_+dead_ <= 7/8 cap after every insert) guarantees the
    // pre-grow probe above always terminates on an empty slot.
    if (size_type cap = states_.size(); (size_ + dead_ + 1) * 8 > cap * 7) {
      // Double only when genuinely loaded; if tombstones dominate, rehash at
      // the same capacity to reclaim them (steady-state churn stays O(1)).
      rehash(size_ + 1 > cap - cap / 4 ? cap * 2 : cap);
      idx = probe_for_insert(key).first;  // slot moved with the rehash
    }
    if (states_[idx] == State::kDead) --dead_;  // tombstone reclaimed
    slots_[idx].first = key;
    slots_[idx].second = T(std::forward<Args>(args)...);
    states_[idx] = State::kFull;
    set_bit(idx);
    ++size_;
    return {iterator_at(idx), true};
  }

  std::pair<iterator, bool> insert(const value_type& value) {
    return try_emplace(value.first, value.second);
  }

  T& operator[](const Key& key) { return try_emplace(key).first->second; }

  /// Erases by key; returns the number of elements removed (0 or 1).
  size_type erase(const Key& key) {
    size_type idx = find_index(key);
    if (idx == npos) return 0;
    erase_at(idx);
    return 1;
  }

  /// Erases the pointed-to element; returns an iterator to the next element.
  /// No element moves, so erase-while-iterating is safe.
  iterator erase(const_iterator pos) {
    const size_type idx = pos.idx_;
    GOCAST_ASSERT(pos.slots_ == slots_.data() && idx < states_.size());
    GOCAST_ASSERT(states_[idx] == State::kFull);
    erase_at(idx);
    iterator next = iterator_at(idx + 1);
    next.skip_to_full();
    return next;
  }

 private:
  enum class State : std::uint8_t { kEmpty = 0, kFull, kDead };

  static constexpr size_type npos = static_cast<size_type>(-1);
  static constexpr size_type kMinCapacity = 8;

  void set_bit(size_type i) {
    full_bits_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  void clear_bit(size_type i) {
    full_bits_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  /// Iterator positioned at `idx` WITHOUT skipping to the next full slot —
  /// used for find/try_emplace results, which always point at a full slot.
  [[nodiscard]] iterator iterator_at(size_type idx) {
    iterator it;
    it.slots_ = slots_.data();
    it.bits_ = full_bits_.data();
    it.idx_ = idx;
    it.cap_ = states_.size();
    return it;
  }
  [[nodiscard]] const_iterator const_iterator_at(size_type idx) const {
    const_iterator it;
    it.slots_ = slots_.data();
    it.bits_ = full_bits_.data();
    it.idx_ = idx;
    it.cap_ = states_.size();
    return it;
  }

  /// Smallest power-of-two capacity that keeps `n` elements under the max
  /// load factor of 7/8.
  [[nodiscard]] static size_type required_capacity(size_type n) {
    size_type cap = kMinCapacity;
    while (cap - cap / 8 < n) cap <<= 1;
    return cap;
  }

  [[nodiscard]] size_type find_index(const Key& key) const {
    if (states_.empty()) return npos;
    size_type mask = states_.size() - 1;
    size_type idx = Hash{}(key)&mask;
    while (true) {
      State s = states_[idx];
      if (s == State::kEmpty) return npos;
      if (s == State::kFull && slots_[idx].first == key) return idx;
      idx = (idx + 1) & mask;
    }
  }

  /// Finds the slot for `key`: {index of existing element, false} or
  /// {index of the insertion slot, true}. Pure probe — dead_ accounting for a
  /// reclaimed tombstone happens at the insertion site (the caller may probe,
  /// rehash, and probe again before committing the insert).
  [[nodiscard]] std::pair<size_type, bool> probe_for_insert(
      const Key& key) const {
    size_type mask = states_.size() - 1;
    size_type idx = Hash{}(key)&mask;
    size_type first_dead = npos;
    while (true) {
      State s = states_[idx];
      if (s == State::kFull && slots_[idx].first == key) return {idx, false};
      if (s == State::kDead && first_dead == npos) first_dead = idx;
      if (s == State::kEmpty) {
        return {first_dead != npos ? first_dead : idx, true};
      }
      idx = (idx + 1) & mask;
    }
  }

  void erase_at(size_type idx) {
    slots_[idx] = value_type{};  // release owned resources eagerly
    states_[idx] = State::kDead;
    clear_bit(idx);
    ++dead_;
    --size_;
  }

  /// Scratch buffers above this footprint are freed after a rehash instead
  /// of retained. Retention only pays at steady-state same-capacity rehashes
  /// (growth rehashes resize the scratch anyway), where the rehash's own
  /// O(capacity) rebuild dwarfs one malloc/free pair — so for big tables the
  /// retained buffers are pure resident memory. Small hot-path tables (the
  /// common case: a few dozen entries, rehashing every O(capacity) erases)
  /// keep the allocation-free behavior.
  static constexpr std::size_t kScratchRetainBytes = 1024;

  void rehash(size_type new_capacity) {
    GOCAST_ASSERT((new_capacity & (new_capacity - 1)) == 0);
    // Swap with retained scratch buffers instead of allocating fresh ones:
    // steady-state churn (erase+insert at constant size) triggers a
    // same-capacity rehash every O(capacity) operations, and paying a
    // malloc/free pair each time dominates small hot-path tables. After the
    // first rehash at a given capacity this is allocation-free.
    std::swap(slots_, scratch_slots_);
    std::swap(states_, scratch_states_);
    for (auto& v : slots_) v = value_type{};  // clear stale moved-from values
    slots_.resize(new_capacity);
    states_.assign(new_capacity, State::kEmpty);
    full_bits_.assign((new_capacity + 63) / 64, 0);
    dead_ = 0;
    size_type mask = new_capacity - 1;
    for (size_type i = 0; i < scratch_states_.size(); ++i) {
      if (scratch_states_[i] != State::kFull) continue;
      size_type idx = Hash{}(scratch_slots_[i].first) & mask;
      while (states_[idx] == State::kFull) idx = (idx + 1) & mask;
      slots_[idx] = std::move(scratch_slots_[i]);
      states_[idx] = State::kFull;
      set_bit(idx);
    }
    if (scratch_slots_.capacity() * sizeof(value_type) > kScratchRetainBytes) {
      scratch_slots_ = {};
      scratch_states_ = {};
    }
  }

  std::vector<value_type> slots_;
  std::vector<State> states_;
  std::vector<std::uint64_t> full_bits_;  // one bit per slot: occupied
  std::vector<value_type> scratch_slots_;  // retained across rehashes
  std::vector<State> scratch_states_;
  size_type size_ = 0;
  size_type dead_ = 0;
};

}  // namespace gocast::common

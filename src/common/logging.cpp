#include "common/logging.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

namespace gocast {
namespace {

LogLevel parse_level(std::string_view s, LogLevel fallback) {
  if (s == "trace") return LogLevel::kTrace;
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off") return LogLevel::kOff;
  return fallback;
}

LogLevel initial_level() {
  if (const char* env = std::getenv("GOCAST_LOG_LEVEL")) {
    return parse_level(env, LogLevel::kWarn);
  }
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(initial_level())};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
  std::ostream& os = level >= LogLevel::kWarn ? std::cerr : std::clog;
  os << "[" << level_name(level) << "] " << msg << "\n";
}
}  // namespace detail

}  // namespace gocast

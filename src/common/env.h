// Environment-variable helpers used by benches and examples to scale
// workloads without recompiling.
#pragma once

#include <cstdint>
#include <string>

namespace gocast {

/// Reads a double from the environment; returns `fallback` when unset or
/// unparsable.
[[nodiscard]] double env_double(const std::string& name, double fallback);

/// Reads a 64-bit integer from the environment.
[[nodiscard]] std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// GOCAST_BENCH_SCALE: global multiplier (default 1.0) applied to bench
/// workload sizes. Values < 1 shrink runs for smoke testing.
[[nodiscard]] double bench_scale();

/// Scales a node/message count by bench_scale(), with a floor.
[[nodiscard]] std::size_t scaled_count(std::size_t full, std::size_t min_value);

}  // namespace gocast

#include "wire/codec.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/assert.h"
#include "gocast/messages.h"
#include "membership/member_entry.h"
#include "overlay/messages.h"
#include "tree/messages.h"

namespace gocast::wire {
namespace {

using membership::MemberEntry;
using overlay::LinkKind;

// Body sizes excluding the frame header. Variable-length types add their
// payload tables on top.
constexpr std::size_t kDegreesBytes = 8;
constexpr std::size_t kMemberBytes = 38;  // id 4 + 8 landmarks f32 + age u16
constexpr std::size_t kDigestEntryBytes = 12;  // id 8 + age f32
static_assert(kDegreesBytes == net::PeerDegrees::wire_size());
static_assert(kMemberBytes == MemberEntry::wire_size());
static_assert(kDigestEntryBytes == core::DigestEntry::wire_size());

// ---- raw little-endian writer ------------------------------------------

class Writer {
 public:
  explicit Writer(std::uint8_t* p) : p_(p) {}

  void u8(std::uint8_t v) { *p_++ = v; }
  void u16(std::uint16_t v) {
    *p_++ = static_cast<std::uint8_t>(v);
    *p_++ = static_cast<std::uint8_t>(v >> 8);
  }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) *p_++ = static_cast<std::uint8_t>(v >> (8 * i));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) *p_++ = static_cast<std::uint8_t>(v >> (8 * i));
  }
  void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void zeros(std::size_t n) {
    std::memset(p_, 0, n);
    p_ += n;
  }

  [[nodiscard]] std::uint8_t* pos() const { return p_; }

 private:
  std::uint8_t* p_;
};

// ---- bounds-checked little-endian reader -------------------------------

class Reader {
 public:
  Reader(const std::uint8_t* p, const std::uint8_t* end) : p_(p), end_(end) {}

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return *p_++;
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(p_[0] | (p_[1] << 8));
    p_ += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p_[i]) << (8 * i);
    p_ += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p_[i]) << (8 * i);
    p_ += 8;
    return v;
  }
  float f32() { return std::bit_cast<float>(u32()); }
  double f64() { return std::bit_cast<double>(u64()); }
  void skip(std::size_t n) {
    if (need(n)) p_ += n;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }
  /// True when every byte was consumed and no read ran out of bounds.
  [[nodiscard]] bool exhausted() const { return ok_ && p_ == end_; }

 private:
  bool need(std::size_t n) {
    if (!ok_ || static_cast<std::size_t>(end_ - p_) < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
  bool ok_ = true;
};

// ---- shared field codecs -----------------------------------------------

/// Instants on the sender's clock travel as non-negative ages.
[[nodiscard]] double age_of(SimTime instant, SimTime now) {
  double age = now - instant;
  return age > 0.0 ? age : 0.0;
}

void put_degrees(Writer& w, const net::PeerDegrees& d) {
  w.u16(d.rand_degree);
  w.u16(d.near_degree);
  w.f32(d.max_nearby_rtt);
}

bool get_degrees(Reader& r, net::PeerDegrees& d) {
  d.rand_degree = r.u16();
  d.near_degree = r.u16();
  d.max_nearby_rtt = r.f32();
  // 0 means "no nearby neighbor"; anything non-finite or negative is junk.
  return r.ok() && std::isfinite(d.max_nearby_rtt) && d.max_nearby_rtt >= 0.0f;
}

void put_member(Writer& w, const MemberEntry& m, SimTime now) {
  w.u32(m.id);
  for (float rtt : m.landmark_rtt) w.f32(rtt);
  // Age in 0.1 s units, saturating at ~109 minutes (the paper piggybacks a
  // 2-byte age for exactly this reason).
  double ds = age_of(m.heard_at, now) * 10.0;
  w.u16(ds >= 65535.0 ? 65535
                      : static_cast<std::uint16_t>(std::lround(ds)));
}

bool get_member(Reader& r, MemberEntry& m, SimTime now) {
  m.id = r.u32();
  for (float& rtt : m.landmark_rtt) {
    rtt = r.f32();
    // NaN marks unmeasured slots; measured slots must be sane durations.
    if (!std::isnan(rtt) && (!std::isfinite(rtt) || rtt < 0.0f)) return false;
  }
  double age = static_cast<double>(r.u16()) * 0.1;
  SimTime heard = now - age;
  m.heard_at = heard > 0.0 ? heard : 0.0;
  return r.ok();
}

void put_digest_entry(Writer& w, const core::DigestEntry& e, SimTime now) {
  w.u32(e.id.origin);
  w.u32(e.id.seq);
  w.f32(static_cast<float>(age_of(e.inject_time, now)));
}

bool get_digest_entry(Reader& r, core::DigestEntry& e, SimTime now) {
  e.id.origin = r.u32();
  e.id.seq = r.u32();
  float age = r.f32();
  if (!std::isfinite(age) || age < 0.0f) return false;
  e.inject_time = now - static_cast<double>(age);
  return r.ok();
}

/// Durations (RTT estimates, cumulative latencies): non-negative, with +inf
/// allowed as the kNever sentinel.
bool valid_duration(double v) { return !std::isnan(v) && v >= 0.0; }

bool get_bool(Reader& r, bool& out) {
  std::uint8_t v = r.u8();
  if (v > 1) return false;
  out = (v == 1);
  return true;
}

bool get_link_kind(Reader& r, LinkKind& out) {
  std::uint8_t v = r.u8();
  if (v > 1) return false;
  out = (v == 0) ? LinkKind::kRandom : LinkKind::kNearby;
  return true;
}

// ---- per-type body sizes -----------------------------------------------

constexpr std::size_t kSectionBytes = 8;  // group u32 + count u32
static_assert(kSectionBytes == core::GroupSection::wire_size());

/// Types whose bodies are scoped to one multicast group (and therefore gain
/// a leading u32 group id under version-2 framing).
bool group_scoped(int type) {
  switch (type) {
    case tree::kPktHeartbeat:
    case tree::kPktChildJoin:
    case tree::kPktChildLeave:
    case core::kPktData:
    case core::kPktGossipDigest:
    case core::kPktPullRequest:
      return true;
    default:
      return false;
  }
}

/// The group id of a group-scoped message (kDefaultGroup for all others).
GroupId group_of(const net::Message& msg) {
  switch (msg.packet_type()) {
    case tree::kPktHeartbeat:
      return static_cast<const tree::HeartbeatMsg&>(msg).group;
    case tree::kPktChildJoin:
      return static_cast<const tree::ChildJoinMsg&>(msg).group;
    case tree::kPktChildLeave:
      return static_cast<const tree::ChildLeaveMsg&>(msg).group;
    case core::kPktData:
      return static_cast<const core::DataMsg&>(msg).group;
    case core::kPktGossipDigest:
      return static_cast<const core::GossipDigestMsg&>(msg).group;
    case core::kPktPullRequest:
      return static_cast<const core::PullRequestMsg&>(msg).group;
    default:
      return kDefaultGroup;
  }
}

/// Body length for a message, or SIZE_MAX for types outside the grammar.
/// Group-scoped types add 4 bytes for the group prefix when (and only when)
/// the group is non-default, matching each message's wire_size().
std::size_t body_size(const net::Message& msg) {
  const std::size_t group_bytes = core::group_wire_size(group_of(msg));
  switch (msg.packet_type()) {
    case overlay::kPktNeighborRequest: return 10 + kDegreesBytes;
    case overlay::kPktNeighborAccept: return 9 + kDegreesBytes;
    case overlay::kPktNeighborReject: return 1 + kDegreesBytes;
    case overlay::kPktNeighborDrop: return kDegreesBytes;
    case overlay::kPktLinkTransfer: return 4 + kDegreesBytes;
    case overlay::kPktPing: return 4;
    case overlay::kPktPong: return 4 + kDegreesBytes;
    case overlay::kPktJoinRequest: return 0;
    case overlay::kPktJoinReply: {
      const auto& m = static_cast<const overlay::JoinReplyMsg&>(msg);
      return 4 + m.members.size() * kMemberBytes;
    }
    case tree::kPktHeartbeat: return 20 + kDegreesBytes + group_bytes;
    case tree::kPktChildJoin: return 8 + kDegreesBytes + group_bytes;
    case tree::kPktChildLeave: return kDegreesBytes + group_bytes;
    case core::kPktData: {
      const auto& m = static_cast<const core::DataMsg&>(msg);
      return 21 + kDegreesBytes + group_bytes + m.payload_bytes;
    }
    case core::kPktGossipDigest: {
      const auto& m = static_cast<const core::GossipDigestMsg&>(msg);
      return 8 + kDegreesBytes + group_bytes +
             m.entries.size() * kDigestEntryBytes +
             m.members.size() * kMemberBytes;
    }
    case core::kPktPullRequest: {
      const auto& m = static_cast<const core::PullRequestMsg&>(msg);
      return 4 + kDegreesBytes + group_bytes + m.ids.size() * 8;
    }
    case core::kPktGroupedGossip: {
      const auto& m = static_cast<const core::GroupedGossipMsg&>(msg);
      return 12 + kDegreesBytes + m.sections.size() * kSectionBytes +
             m.entries.size() * kDigestEntryBytes +
             m.members.size() * kMemberBytes;
    }
    default: return static_cast<std::size_t>(-1);
  }
}

void encode_body(Writer& w, const net::Message& msg, SimTime now) {
  // Version-2 group prefix: a group-scoped body for a non-default group
  // leads with its u32 group id. Group-0 bodies stay prefix-free (and the
  // whole frame stays version 1).
  if (const GroupId group = group_of(msg); group != kDefaultGroup) {
    w.u32(group);
  }
  switch (msg.packet_type()) {
    case overlay::kPktNeighborRequest: {
      const auto& m = static_cast<const overlay::NeighborRequestMsg&>(msg);
      w.u8(m.link == LinkKind::kRandom ? 0 : 1);
      w.u8(m.is_transfer ? 1 : 0);
      w.f64(m.measured_rtt);
      put_degrees(w, *m.peer_degrees());
      return;
    }
    case overlay::kPktNeighborAccept: {
      const auto& m = static_cast<const overlay::NeighborAcceptMsg&>(msg);
      w.u8(m.link == LinkKind::kRandom ? 0 : 1);
      w.f64(m.rtt_echo);
      put_degrees(w, *m.peer_degrees());
      return;
    }
    case overlay::kPktNeighborReject: {
      const auto& m = static_cast<const overlay::NeighborRejectMsg&>(msg);
      w.u8(m.link == LinkKind::kRandom ? 0 : 1);
      put_degrees(w, *m.peer_degrees());
      return;
    }
    case overlay::kPktNeighborDrop: {
      put_degrees(w, *msg.peer_degrees());
      return;
    }
    case overlay::kPktLinkTransfer: {
      const auto& m = static_cast<const overlay::LinkTransferMsg&>(msg);
      w.u32(m.target);
      put_degrees(w, *m.peer_degrees());
      return;
    }
    case overlay::kPktPing: {
      w.u32(static_cast<const overlay::PingMsg&>(msg).nonce);
      return;
    }
    case overlay::kPktPong: {
      const auto& m = static_cast<const overlay::PongMsg&>(msg);
      w.u32(m.nonce);
      put_degrees(w, *m.peer_degrees());
      return;
    }
    case overlay::kPktJoinRequest: return;
    case overlay::kPktJoinReply: {
      const auto& m = static_cast<const overlay::JoinReplyMsg&>(msg);
      w.u32(static_cast<std::uint32_t>(m.members.size()));
      for (const auto& member : m.members) put_member(w, member, now);
      return;
    }
    case tree::kPktHeartbeat: {
      const auto& m = static_cast<const tree::HeartbeatMsg&>(msg);
      w.u32(m.epoch.term);
      w.u32(m.epoch.root);
      w.u32(m.seq);
      w.f64(m.cum_latency);
      put_degrees(w, *m.peer_degrees());
      return;
    }
    case tree::kPktChildJoin: {
      const auto& m = static_cast<const tree::ChildJoinMsg&>(msg);
      w.u32(m.epoch.term);
      w.u32(m.epoch.root);
      put_degrees(w, *m.peer_degrees());
      return;
    }
    case tree::kPktChildLeave: {
      put_degrees(w, *msg.peer_degrees());
      return;
    }
    case core::kPktData: {
      const auto& m = static_cast<const core::DataMsg&>(msg);
      w.u32(m.id.origin);
      w.u32(m.id.seq);
      w.f64(age_of(m.inject_time, now));
      w.u32(static_cast<std::uint32_t>(m.payload_bytes));
      w.u8(m.via_tree ? 1 : 0);
      put_degrees(w, m.degrees);
      // The simulator models payloads by size only; the wire carries the
      // honest byte count as zeros.
      w.zeros(m.payload_bytes);
      return;
    }
    case core::kPktGossipDigest: {
      const auto& m = static_cast<const core::GossipDigestMsg&>(msg);
      w.u32(static_cast<std::uint32_t>(m.entries.size()));
      w.u32(static_cast<std::uint32_t>(m.members.size()));
      put_degrees(w, m.degrees);
      for (const auto& e : m.entries) put_digest_entry(w, e, now);
      for (const auto& member : m.members) put_member(w, member, now);
      return;
    }
    case core::kPktPullRequest: {
      const auto& m = static_cast<const core::PullRequestMsg&>(msg);
      w.u32(static_cast<std::uint32_t>(m.ids.size()));
      put_degrees(w, m.degrees);
      for (const auto& id : m.ids) {
        w.u32(id.origin);
        w.u32(id.seq);
      }
      return;
    }
    case core::kPktGroupedGossip: {
      const auto& m = static_cast<const core::GroupedGossipMsg&>(msg);
      w.u32(static_cast<std::uint32_t>(m.sections.size()));
      w.u32(static_cast<std::uint32_t>(m.entries.size()));
      w.u32(static_cast<std::uint32_t>(m.members.size()));
      put_degrees(w, m.degrees);
      for (const auto& s : m.sections) {
        w.u32(s.group);
        w.u32(s.count);
      }
      for (const auto& e : m.entries) put_digest_entry(w, e, now);
      for (const auto& member : m.members) put_member(w, member, now);
      return;
    }
    default: GOCAST_ASSERT_MSG(false, "unencodable type " << msg.packet_type());
  }
}

// ---- pooled construction helpers ---------------------------------------

/// Mutable pooled construction: the codec fills payload containers in place
/// before releasing the message as shared_ptr<const Message>.
template <class M, class... Args>
std::shared_ptr<M> make_mutable(const std::shared_ptr<net::MessageArena>& arena,
                                Args&&... args) {
  return std::allocate_shared<M>(net::ArenaAllocator<M>(arena),
                                 std::forward<Args>(args)...);
}

/// Validates that a claimed element count fits exactly in the bytes left
/// after the fixed fields, before anything is reserved.
bool counts_fit(std::size_t remaining, std::size_t count_a, std::size_t size_a,
                std::size_t count_b = 0, std::size_t size_b = 0) {
  // 32-bit counts and small element sizes: no overflow in 64-bit math.
  return count_a * size_a + count_b * size_b == remaining;
}

DecodeStatus decode_body(int type, std::uint8_t version, Reader& r,
                         const std::shared_ptr<net::MessageArena>& arena,
                         SimTime now, net::MessagePtr& out) {
  // Version-2 framing: group-scoped bodies lead with a non-default group id;
  // GroupedGossip is v2-only; every other type must stay on v1 (and a v1
  // group-scoped body is implicitly group 0). Enforcing the canonical
  // version per message keeps encode/decode a bijection.
  GroupId group = kDefaultGroup;
  if (version == kVersionGrouped) {
    if (group_scoped(type)) {
      group = r.u32();
      if (!r.ok() || group == kDefaultGroup) return DecodeStatus::kMalformed;
    } else if (type != core::kPktGroupedGossip) {
      return DecodeStatus::kMalformed;
    }
  } else if (type == core::kPktGroupedGossip) {
    return DecodeStatus::kMalformed;  // grouped gossip requires version 2
  }
  net::PeerDegrees degrees;
  switch (type) {
    case overlay::kPktNeighborRequest: {
      LinkKind link;
      bool is_transfer = false;
      if (!get_link_kind(r, link) || !get_bool(r, is_transfer)) {
        return DecodeStatus::kMalformed;
      }
      double rtt = r.f64();
      if (!valid_duration(rtt) || !get_degrees(r, degrees)) {
        return DecodeStatus::kMalformed;
      }
      out = net::make_pooled<overlay::NeighborRequestMsg>(arena, link, rtt,
                                                          is_transfer, degrees);
      return DecodeStatus::kOk;
    }
    case overlay::kPktNeighborAccept: {
      LinkKind link;
      if (!get_link_kind(r, link)) return DecodeStatus::kMalformed;
      double echo = r.f64();
      if (!valid_duration(echo) || !get_degrees(r, degrees)) {
        return DecodeStatus::kMalformed;
      }
      out = net::make_pooled<overlay::NeighborAcceptMsg>(arena, link, echo,
                                                         degrees);
      return DecodeStatus::kOk;
    }
    case overlay::kPktNeighborReject: {
      LinkKind link;
      if (!get_link_kind(r, link) || !get_degrees(r, degrees)) {
        return DecodeStatus::kMalformed;
      }
      out = net::make_pooled<overlay::NeighborRejectMsg>(arena, link, degrees);
      return DecodeStatus::kOk;
    }
    case overlay::kPktNeighborDrop: {
      if (!get_degrees(r, degrees)) return DecodeStatus::kMalformed;
      out = net::make_pooled<overlay::NeighborDropMsg>(arena, degrees);
      return DecodeStatus::kOk;
    }
    case overlay::kPktLinkTransfer: {
      NodeId target = r.u32();
      if (!get_degrees(r, degrees)) return DecodeStatus::kMalformed;
      out = net::make_pooled<overlay::LinkTransferMsg>(arena, target, degrees);
      return DecodeStatus::kOk;
    }
    case overlay::kPktPing: {
      std::uint32_t nonce = r.u32();
      if (!r.ok()) return DecodeStatus::kMalformed;
      out = net::make_pooled<overlay::PingMsg>(arena, nonce);
      return DecodeStatus::kOk;
    }
    case overlay::kPktPong: {
      std::uint32_t nonce = r.u32();
      if (!get_degrees(r, degrees)) return DecodeStatus::kMalformed;
      out = net::make_pooled<overlay::PongMsg>(arena, nonce, degrees);
      return DecodeStatus::kOk;
    }
    case overlay::kPktJoinRequest: {
      out = net::make_pooled<overlay::JoinRequestMsg>(arena);
      return DecodeStatus::kOk;
    }
    case overlay::kPktJoinReply: {
      std::size_t count = r.u32();
      if (!r.ok() || !counts_fit(r.remaining(), count, kMemberBytes)) {
        return DecodeStatus::kMalformed;
      }
      auto msg = make_mutable<overlay::JoinReplyMsg>(
          arena, std::vector<MemberEntry>{});
      msg->members.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        MemberEntry m;
        if (!get_member(r, m, now)) return DecodeStatus::kMalformed;
        msg->members.push_back(m);
      }
      out = std::move(msg);
      return DecodeStatus::kOk;
    }
    case tree::kPktHeartbeat: {
      tree::Epoch epoch{r.u32(), r.u32()};
      std::uint32_t seq = r.u32();
      double cum = r.f64();
      if (!valid_duration(cum) || !get_degrees(r, degrees)) {
        return DecodeStatus::kMalformed;
      }
      out = net::make_pooled<tree::HeartbeatMsg>(arena, epoch, seq, cum,
                                                 degrees, group);
      return DecodeStatus::kOk;
    }
    case tree::kPktChildJoin: {
      tree::Epoch epoch{r.u32(), r.u32()};
      if (!get_degrees(r, degrees)) return DecodeStatus::kMalformed;
      out = net::make_pooled<tree::ChildJoinMsg>(arena, epoch, degrees, group);
      return DecodeStatus::kOk;
    }
    case tree::kPktChildLeave: {
      if (!get_degrees(r, degrees)) return DecodeStatus::kMalformed;
      out = net::make_pooled<tree::ChildLeaveMsg>(arena, degrees, group);
      return DecodeStatus::kOk;
    }
    case core::kPktData: {
      MsgId id{r.u32(), r.u32()};
      double age = r.f64();
      if (!r.ok() || !std::isfinite(age) || age < 0.0) {
        return DecodeStatus::kMalformed;
      }
      std::size_t payload = r.u32();
      bool via_tree = false;
      if (!get_bool(r, via_tree) || !get_degrees(r, degrees)) {
        return DecodeStatus::kMalformed;
      }
      if (r.remaining() != payload) return DecodeStatus::kMalformed;
      r.skip(payload);
      out = net::make_pooled<core::DataMsg>(arena, id, now - age, payload,
                                            via_tree, degrees, group);
      return DecodeStatus::kOk;
    }
    case core::kPktGossipDigest: {
      std::size_t n_entries = r.u32();
      std::size_t n_members = r.u32();
      if (!get_degrees(r, degrees) ||
          !counts_fit(r.remaining(), n_entries, kDigestEntryBytes, n_members,
                      kMemberBytes)) {
        return DecodeStatus::kMalformed;
      }
      auto msg = make_mutable<core::GossipDigestMsg>(
          arena, net::WireDecodeTag{}, arena, degrees, group);
      msg->entries.reserve(n_entries);
      for (std::size_t i = 0; i < n_entries; ++i) {
        core::DigestEntry e;
        if (!get_digest_entry(r, e, now)) return DecodeStatus::kMalformed;
        msg->entries.push_back(e);
      }
      msg->members.reserve(n_members);
      for (std::size_t i = 0; i < n_members; ++i) {
        MemberEntry m;
        if (!get_member(r, m, now)) return DecodeStatus::kMalformed;
        msg->members.push_back(m);
      }
      out = std::move(msg);
      return DecodeStatus::kOk;
    }
    case core::kPktPullRequest: {
      std::size_t count = r.u32();
      if (!get_degrees(r, degrees) || !counts_fit(r.remaining(), count, 8)) {
        return DecodeStatus::kMalformed;
      }
      auto msg = make_mutable<core::PullRequestMsg>(
          arena, net::WireDecodeTag{}, arena, degrees, group);
      msg->ids.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        msg->ids.push_back(MsgId{r.u32(), r.u32()});
      }
      if (!r.ok()) return DecodeStatus::kMalformed;
      out = std::move(msg);
      return DecodeStatus::kOk;
    }
    case core::kPktGroupedGossip: {
      std::size_t n_sections = r.u32();
      std::size_t n_entries = r.u32();
      std::size_t n_members = r.u32();
      if (!get_degrees(r, degrees)) return DecodeStatus::kMalformed;
      // Three tables share the remaining bytes; validate the exact fit
      // before reserving anything (64-bit math, no overflow for u32 counts).
      if (n_sections * kSectionBytes + n_entries * kDigestEntryBytes +
              n_members * kMemberBytes !=
          r.remaining()) {
        return DecodeStatus::kMalformed;
      }
      auto msg = make_mutable<core::GroupedGossipMsg>(
          arena, net::WireDecodeTag{}, arena, degrees);
      msg->sections.reserve(n_sections);
      std::size_t claimed_entries = 0;
      for (std::size_t i = 0; i < n_sections; ++i) {
        core::GroupSection s;
        s.group = r.u32();
        s.count = r.u32();
        claimed_entries += s.count;
        // Sections must name distinct groups in ascending order — the
        // canonical form the mux emits; rejecting the rest keeps the
        // section->dissemination routing unambiguous.
        if (i > 0 && s.group <= msg->sections.back().group) {
          return DecodeStatus::kMalformed;
        }
        msg->sections.push_back(s);
      }
      // Section counts must partition the entry table exactly.
      if (claimed_entries != n_entries) return DecodeStatus::kMalformed;
      msg->entries.reserve(n_entries);
      for (std::size_t i = 0; i < n_entries; ++i) {
        core::DigestEntry e;
        if (!get_digest_entry(r, e, now)) return DecodeStatus::kMalformed;
        msg->entries.push_back(e);
      }
      msg->members.reserve(n_members);
      for (std::size_t i = 0; i < n_members; ++i) {
        MemberEntry m;
        if (!get_member(r, m, now)) return DecodeStatus::kMalformed;
        msg->members.push_back(m);
      }
      out = std::move(msg);
      return DecodeStatus::kOk;
    }
    default: return DecodeStatus::kBadType;
  }
}

}  // namespace

std::size_t encoded_size(const net::Message& msg) {
  std::size_t body = body_size(msg);
  if (body == static_cast<std::size_t>(-1)) return 0;
  return kHeaderBytes + body;
}

std::size_t encode(const net::Message& msg, NodeId src, NodeId dst,
                   SimTime now, FrameBuffer& out) {
  std::size_t total = encoded_size(msg);
  if (total == 0 || total > kMaxFrameBytes) return 0;

  // Lowest version that can carry the message: group-0 traffic stays v1
  // (byte-identical to pre-multigroup builds); non-default groups and the
  // GroupedGossip type need the v2 grouped framing.
  const bool grouped = msg.packet_type() == core::kPktGroupedGossip ||
                       group_of(msg) != kDefaultGroup;

  std::size_t base = out.size();
  out.resize(base + total);
  Writer w(out.data() + base);
  w.u16(kMagic);
  w.u8(grouped ? kVersionGrouped : kVersion);
  w.u8(0);  // flags
  w.u16(static_cast<std::uint16_t>(msg.packet_type()));
  w.u16(0);  // reserved
  w.u32(static_cast<std::uint32_t>(total - kHeaderBytes));
  w.u32(src);
  w.u32(dst);
  encode_body(w, msg, now);
  GOCAST_ASSERT_MSG(w.pos() == out.data() + base + total,
                    "encoder wrote " << (w.pos() - (out.data() + base))
                                     << " bytes, expected " << total);
  return total;
}

DecodeStatus decode(const std::uint8_t* data, std::size_t len,
                    const std::shared_ptr<net::MessageArena>& arena,
                    SimTime now, Decoded& out) {
  GOCAST_ASSERT(arena != nullptr);
  out.msg = nullptr;
  if (len > kMaxFrameBytes) return DecodeStatus::kOversized;
  if (len < kHeaderBytes) return DecodeStatus::kTruncated;

  Reader header(data, data + kHeaderBytes);
  if (header.u16() != kMagic) return DecodeStatus::kBadMagic;
  const std::uint8_t version = header.u8();
  if (version != kVersion && version != kVersionGrouped) {
    return DecodeStatus::kBadVersion;
  }
  if (header.u8() != 0) return DecodeStatus::kMalformed;  // flags
  std::uint16_t type = header.u16();
  if (header.u16() != 0) return DecodeStatus::kMalformed;  // reserved
  std::size_t body_len = header.u32();
  NodeId src = header.u32();
  NodeId dst = header.u32();

  if (kHeaderBytes + body_len > len) return DecodeStatus::kTruncated;
  if (kHeaderBytes + body_len != len) return DecodeStatus::kLengthMismatch;

  Reader body(data + kHeaderBytes, data + len);
  net::MessagePtr msg;
  DecodeStatus status = decode_body(type, version, body, arena, now, msg);
  if (status != DecodeStatus::kOk) return status;
  // A body that parsed but left unread bytes is a length lie.
  if (!body.exhausted()) return DecodeStatus::kMalformed;

  out.msg = std::move(msg);
  out.src = src;
  out.dst = dst;
  return DecodeStatus::kOk;
}

}  // namespace gocast::wire

// Wire codec: version-tagged binary framing for the full GoCast message
// grammar (overlay handshakes, tree control, dissemination, membership).
//
// A frame is one UDP datagram:
//
//   offset  size  field
//   0       2     magic        0x4347 LE ("GC" on the wire)
//   2       1     version      kVersion; unknown versions are rejected
//   3       1     flags        reserved, must be 0
//   4       2     packet type  net::Message::packet_type()
//   6       2     reserved     must be 0
//   8       4     body length  bytes after the header
//   12      4     src          sender endpoint id (NodeId)
//   16      4     dst          destination endpoint id (NodeId)
//   20      ...   body         per-type layout, see PROTOCOL.md "Wire format"
//
// All fields are explicit little-endian fixed width; the layout is flat (no
// varints, no nesting) so per-type bodies are a straight sequence of
// get/put operations. Every message's wire_size() equals the exact frame
// size encode() produces — asserted for the whole grammar by
// tests/test_wire.cpp — so the simulator's traffic accounting matches the
// bytes a real deployment puts on the wire.
//
// Timestamps never cross the wire as absolute values: fields that are
// *instants* on the sender's clock (message inject times, membership
// heard-at stamps) are encoded as non-negative *ages* relative to the
// sender's now and re-anchored to the receiver's now on decode — the
// paper's piggybacked elapsed-time estimate, which also makes frames
// meaningful between hosts whose clocks share no epoch. Durations (RTTs,
// cumulative latencies) are encoded as-is.
//
// decode() hard-rejects truncated, oversized, length-lying, unknown-type,
// unknown-version, and malformed-field frames without allocating
// unbounded memory (payload counts are validated against the actual body
// size before any reservation). Accepted frames construct the message via
// the same pooled allocation path Network::make uses: object + control
// block from the arena, variable-length payloads filled in place into
// arena-backed PoolVecs (net::WireDecodeTag constructors) — no
// intermediate copies between the datagram bytes and the final message.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/types.h"
#include "net/message.h"
#include "net/message_pool.h"

namespace gocast::wire {

inline constexpr std::uint16_t kMagic = 0x4347;  // bytes 'G' 'C' on the wire
inline constexpr std::uint8_t kVersion = 1;
/// Version 2 = grouped frames (multi-group multicast): group-scoped bodies
/// (heartbeat, child join/leave, data, gossip digest, pull request) gain a
/// leading u32 group id, and the GroupedGossip type becomes encodable. The
/// encoder picks the lowest version that can carry the message — group-0
/// traffic stays version 1, byte-for-byte identical to pre-multigroup
/// builds — and the decoder accepts both. See PROTOCOL.md "Version policy".
inline constexpr std::uint8_t kVersionGrouped = 2;
inline constexpr std::size_t kHeaderBytes = 20;
static_assert(kHeaderBytes == net::kFrameOverheadBytes,
              "wire_size() overrides assume this frame header size");

/// Largest frame we will encode or accept: the maximum UDP payload over
/// IPv4. Anything larger is rejected on both sides.
inline constexpr std::size_t kMaxFrameBytes = 65507;

/// Frame buffer: arena-backed byte vector (the same slab pool the message
/// objects come from). Reused buffers reach steady state with zero
/// global-allocator traffic.
using FrameBuffer = net::PoolVec<std::uint8_t>;

enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kTruncated,       ///< shorter than the header, or body shorter than claimed
  kBadMagic,        ///< first two bytes are not kMagic
  kBadVersion,      ///< version byte differs from kVersion
  kBadType,         ///< packet type outside the known grammar
  kLengthMismatch,  ///< datagram size != header + claimed body length
  kOversized,       ///< frame larger than kMaxFrameBytes
  kMalformed,       ///< body fields inconsistent (counts, enums, ranges)
};

[[nodiscard]] constexpr const char* decode_status_name(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kTruncated: return "truncated";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadType: return "bad-type";
    case DecodeStatus::kLengthMismatch: return "length-mismatch";
    case DecodeStatus::kOversized: return "oversized";
    case DecodeStatus::kMalformed: return "malformed";
  }
  return "?";
}

inline constexpr std::size_t kDecodeStatusCount = 8;

struct Decoded {
  net::MessagePtr msg;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
};

/// Appends one frame for `msg` to `out` and returns the bytes appended,
/// which always equals msg->wire_size(). Returns 0 without touching `out`
/// when the frame would exceed kMaxFrameBytes or the type is outside the
/// wire grammar.
std::size_t encode(const net::Message& msg, NodeId src, NodeId dst,
                   SimTime now, FrameBuffer& out);

/// Exact frame size encode() would produce (== msg.wire_size()), or 0 for
/// types outside the wire grammar.
[[nodiscard]] std::size_t encoded_size(const net::Message& msg);

/// Parses one datagram. On kOk fills `out` with the pooled message and the
/// header's endpoint ids; on any other status `out.msg` stays null. `now`
/// re-anchors age-encoded timestamps to the local clock. `arena` must be
/// non-null.
DecodeStatus decode(const std::uint8_t* data, std::size_t len,
                    const std::shared_ptr<net::MessageArena>& arena,
                    SimTime now, Decoded& out);

}  // namespace gocast::wire

#include "runtime/udp_runtime.h"

#include <arpa/inet.h>
#include <linux/errqueue.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <thread>

#include "common/assert.h"

namespace gocast::runtime {
namespace {

[[nodiscard]] std::uint64_t pack_addr(std::uint32_t ip_be,
                                      std::uint16_t port_be) {
  return (static_cast<std::uint64_t>(ip_be) << 16) | port_be;
}

[[nodiscard]] sockaddr_in make_sockaddr(std::uint32_t ip_be,
                                        std::uint16_t port_be) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ip_be;
  addr.sin_port = port_be;
  return addr;
}

[[noreturn]] void setup_failed(const std::string& what) {
  throw UdpSetupError(what + ": " + std::strerror(errno));
}

}  // namespace

UdpRuntime::UdpRuntime(UdpConfig config)
    : config_(std::move(config)),
      anchor_(std::chrono::steady_clock::now()),
      frame_(net::PayloadAllocator<std::uint8_t>(pool_)),
      base_rng_(Rng(config_.seed).fork("udp.nodes")) {
  recv_buf_.resize(wire::kMaxFrameBytes + 1);  // +1 detects oversized frames

  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) setup_failed("socket");

  // ICMP errors (port/host unreachable from crashed peers) land on the
  // error queue instead of being dropped.
  int one = 1;
  (void)::setsockopt(fd_, IPPROTO_IP, IP_RECVERR, &one, sizeof one);

  in_addr listen_ip{};
  if (::inet_pton(AF_INET, config_.listen_host.c_str(), &listen_ip) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw UdpSetupError("listen host is not an IPv4 address: " +
                        config_.listen_host);
  }
  sockaddr_in addr = make_sockaddr(listen_ip.s_addr, htons(config_.listen_port));
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    setup_failed("bind " + config_.listen_host + ":" +
                 std::to_string(config_.listen_port));
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    setup_failed("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) setup_failed("epoll_create1");
  epoll_event ev{};
  ev.events = EPOLLIN;  // EPOLLERR is implicit
  ev.data.fd = fd_;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd_, &ev) != 0) {
    setup_failed("epoll_ctl");
  }

  for (const auto& peer : config_.peers) {
    if (peer.id == config_.self) continue;
    add_peer(peer.id, peer.host, peer.port);
  }
}

UdpRuntime::~UdpRuntime() {
  if (epfd_ >= 0) ::close(epfd_);
  if (fd_ >= 0) ::close(fd_);
}

void UdpRuntime::add_peer(NodeId id, const std::string& host,
                          std::uint16_t port) {
  GOCAST_ASSERT_MSG(id != config_.self, "peer table entry for self");
  in_addr ip{};
  if (::inet_pton(AF_INET, host.c_str(), &ip) != 1) {
    throw UdpSetupError("peer host is not an IPv4 address: " + host);
  }
  PeerRec rec;
  rec.ip = ip.s_addr;
  rec.port = htons(port);
  auto [it, inserted] = peers_.insert_or_assign(id, std::move(rec));
  (void)inserted;
  addr_to_node_[pack_addr(it->second.ip, it->second.port)] = id;
}

SimTime UdpRuntime::now() const {
  if (config_.epoch_unix > 0.0) {
    timespec ts{};
    clock_gettime(CLOCK_REALTIME, &ts);
    return (static_cast<double>(ts.tv_sec) - config_.epoch_unix) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       anchor_)
      .count();
}

sim::EventId UdpRuntime::schedule_after(SimTime delay, sim::InlineCallback cb) {
  GOCAST_ASSERT_MSG(delay >= 0.0, "negative delay " << delay);
  // Anchor to the wall clock (see RealtimeRuntime): the queue's own clock
  // only advances when the reactor fires due work.
  return queue_.schedule_at(now() + delay, std::move(cb));
}

void UdpRuntime::send(NodeId from, NodeId to, net::MessagePtr msg) {
  GOCAST_ASSERT_MSG(from == config_.self,
                    "UDP send from " << from << ", hosted node is "
                                     << config_.self);
  GOCAST_ASSERT_MSG(to != config_.self, "node " << from << " sending to itself");
  GOCAST_ASSERT(msg != nullptr);
  if (!alive_) {
    ++stats_.dropped_dead;
    return;
  }
  auto it = peers_.find(to);
  if (it == peers_.end()) {
    ++stats_.dropped_unknown_peer;
    notify_send_failure(to, std::move(msg));
    return;
  }

  frame_.clear();
  std::size_t size = wire::encode(*msg, from, to, now(), frame_);
  if (size == 0) {
    // Outside the wire grammar or over the datagram limit — surface it like
    // an undeliverable send rather than silently vanishing.
    ++stats_.send_failures;
    notify_send_failure(to, std::move(msg));
    return;
  }

  sockaddr_in addr = make_sockaddr(it->second.ip, it->second.port);
  for (int attempt = 0;; ++attempt) {
    ssize_t n = ::sendto(fd_, frame_.data(), size, 0,
                         reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    if (n >= 0) {
      ++stats_.datagrams_sent;
      stats_.bytes_sent += static_cast<std::uint64_t>(n);
      it->second.last_sent = std::move(msg);
      return;
    }
    if (errno == EINTR) continue;
    if ((errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) &&
        attempt < config_.send_retry_limit) {
      ++stats_.eagain_retries;
      // Kernel buffers are full; a short real sleep lets the stack drain.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      continue;
    }
    // Exhausted retries, or a hard error (ECONNREFUSED from a previous ICMP,
    // ENETUNREACH, ...): report as a failed send.
    ++stats_.send_failures;
    notify_send_failure(to, std::move(msg));
    return;
  }
}

void UdpRuntime::notify_send_failure(NodeId to, net::MessagePtr msg) {
  // Mirror the in-process backends: the notification arrives a beat after
  // the send, never reentrantly from inside it.
  queue_.schedule_at(now() + config_.failure_notify_delay,
                     [this, to, m = std::move(msg)] {
                       if (alive_ && endpoint_ != nullptr) {
                         endpoint_->handle_send_failure(to, m);
                       }
                     });
}

bool UdpRuntime::alive(NodeId node) const {
  if (node == config_.self) return alive_;
  return peers_.count(node) > 0;
}

void UdpRuntime::set_endpoint(NodeId node, net::Endpoint* endpoint) {
  GOCAST_ASSERT_MSG(node == config_.self,
                    "endpoint for " << node << " on runtime hosting "
                                    << config_.self);
  endpoint_ = endpoint;
}

void UdpRuntime::fail_node(NodeId node) {
  // Only local crash semantics exist over UDP; remote liveness is the
  // protocol's business.
  if (node == config_.self) alive_ = false;
}

void UdpRuntime::report_aborted_transfer(NodeId from, NodeId to,
                                         std::size_t bytes) {
  (void)from;
  (void)to;
  aborted_transfer_bytes_ += bytes;
}

void UdpRuntime::drain_socket() {
  for (;;) {
    sockaddr_in src{};
    socklen_t src_len = sizeof src;
    ssize_t n = ::recvfrom(fd_, recv_buf_.data(), recv_buf_.size(), 0,
                           reinterpret_cast<sockaddr*>(&src), &src_len);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained
    }
    ++stats_.datagrams_received;
    stats_.bytes_received += static_cast<std::uint64_t>(n);

    wire::Decoded decoded;
    wire::DecodeStatus status =
        wire::decode(recv_buf_.data(), static_cast<std::size_t>(n), pool_,
                     now(), decoded);
    if (status != wire::DecodeStatus::kOk) {
      ++stats_.rejected_frames;
      ++stats_.rejects_by_status[static_cast<std::size_t>(status)];
      continue;
    }
    if (decoded.dst != config_.self) {
      ++stats_.rejected_misaddressed;
      continue;
    }
    if (peers_.count(decoded.src) == 0) {
      ++stats_.rejected_unknown_src;
      continue;
    }
    if (alive_ && endpoint_ != nullptr) {
      ++stats_.delivered;
      endpoint_->handle_message(decoded.src, decoded.msg);
    }
  }
}

void UdpRuntime::drain_error_queue() {
  for (;;) {
    char data[64];
    char control[512];
    sockaddr_in offender{};
    iovec iov{data, sizeof data};
    msghdr mh{};
    mh.msg_name = &offender;
    mh.msg_namelen = sizeof offender;
    mh.msg_iov = &iov;
    mh.msg_iovlen = 1;
    mh.msg_control = control;
    mh.msg_controllen = sizeof control;
    ssize_t n = ::recvmsg(fd_, &mh, MSG_ERRQUEUE);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (cmsghdr* cm = CMSG_FIRSTHDR(&mh); cm != nullptr;
         cm = CMSG_NXTHDR(&mh, cm)) {
      if (cm->cmsg_level != IPPROTO_IP || cm->cmsg_type != IP_RECVERR) {
        continue;
      }
      ++stats_.icmp_unreachable;
      // msg_name carries the original destination; correlate it to the most
      // recent message sent there (UDP cannot attribute the error to one
      // specific datagram).
      auto node_it = addr_to_node_.find(
          pack_addr(offender.sin_addr.s_addr, offender.sin_port));
      if (node_it == addr_to_node_.end()) continue;
      auto peer_it = peers_.find(node_it->second);
      if (peer_it == peers_.end() || peer_it->second.last_sent == nullptr) {
        continue;
      }
      ++stats_.send_failures;
      notify_send_failure(node_it->second,
                          std::move(peer_it->second.last_sent));
      peer_it->second.last_sent = nullptr;
    }
  }
}

std::size_t UdpRuntime::run_for(SimTime wall_seconds) {
  GOCAST_ASSERT(wall_seconds >= 0.0);
  const SimTime deadline = now() + wall_seconds;
  std::size_t fired = 0;
  while (!stopped()) {
    fired += queue_.run_until(std::min(now(), deadline));
    SimTime t = now();
    if (t >= deadline) break;

    SimTime next = queue_.next_event_time();
    SimTime horizon = std::min(next == kNever ? deadline : next, deadline);
    // Bounded slices keep the stop flag honored even when a signal lands
    // between epoll_wait calls with SA_RESTART semantics.
    int timeout_ms = static_cast<int>(
        std::ceil(std::clamp(horizon - t, 0.0, 0.5) * 1000.0));

    epoll_event events[8];
    int n = ::epoll_wait(epfd_, events, 8, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks the stop flag
      break;
    }
    if (n > 0) {
      for (int i = 0; i < n; ++i) {
        if ((events[i].events & (EPOLLERR | EPOLLPRI)) != 0) {
          drain_error_queue();
        }
      }
      drain_socket();
      drain_error_queue();
    }
  }
  fired += queue_.run_until(std::min(now(), deadline));
  return fired;
}

std::size_t UdpRuntime::poll() {
  drain_socket();
  drain_error_queue();
  return queue_.run_until(now());
}

}  // namespace gocast::runtime

// Simulation binding of the runtime seam (see runtime/context.h).
//
// A SimRuntime is two pointers — the event engine and the simulated network —
// and every method is an inline forward. Protocol classes instantiated over
// it compile to the same code they did when they held `sim::Engine&` /
// `net::Network&` members directly: no virtual dispatch, no extra
// indirection, nothing for the optimizer to chew through. The implicit
// conversion from net::Network& keeps the dozens of existing construction
// sites (`OverlayManager(id, network, ...)`) source-compatible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/rng.h"
#include "common/types.h"
#include "net/endpoint.h"
#include "net/message.h"
#include "net/network.h"
#include "runtime/context.h"
#include "sim/engine.h"

namespace gocast::runtime {

class SimRuntime final {
 public:
  using TimerId = sim::EventId;
  [[nodiscard]] static constexpr sim::EventId invalid_timer() {
    return sim::kInvalidEvent;
  }

  // Implicit on purpose: every existing protocol constructor takes
  // `net::Network&` and should keep working unchanged.
  SimRuntime(net::Network& network)  // NOLINT(google-explicit-constructor)
      : engine_(&network.engine()), network_(&network) {}

  /// Owner-aware binding for sharded runs (DESIGN.md §11): schedules on the
  /// owner's shard engine and tags every timer with the owner's next
  /// ordering key, so timer pop order is shard-count-invariant. Unsharded
  /// networks get the classic single-engine behavior byte-for-byte.
  SimRuntime(net::Network& network, NodeId owner)
      : engine_(&network.engine_of(owner)),
        network_(&network),
        owner_(owner) {}

  [[nodiscard]] SimTime now() const { return engine_->now(); }

  TimerId schedule_after(SimTime delay, sim::InlineCallback cb) {
    if (network_->sharded()) {
      GOCAST_ASSERT_MSG(owner_ != kInvalidNode,
                        "sharded runs need owner-bound runtimes");
      GOCAST_ASSERT_MSG(delay >= 0.0, "negative delay " << delay);
      return engine_->schedule_at_ordered(engine_->now() + delay,
                                          network_->next_order_key(owner_),
                                          std::move(cb));
    }
    return engine_->schedule_after(delay, std::move(cb));
  }

  bool cancel(TimerId id) { return engine_->cancel(id); }

  void send(NodeId from, NodeId to, net::MessagePtr msg) {
    network_->send(from, to, std::move(msg));
  }

  void send_multi(NodeId from, const NodeId* targets, std::size_t count,
                  NodeId except, net::MessagePtr msg) {
    network_->send_multi(from, targets, count, except, std::move(msg));
  }

  template <class M, class... Args>
  [[nodiscard]] std::shared_ptr<const M> make(Args&&... args) {
    return network_->make_for<M>(owner_, std::forward<Args>(args)...);
  }

  [[nodiscard]] bool alive(NodeId node) const { return network_->alive(node); }
  [[nodiscard]] std::size_t node_count() const {
    return network_->node_count();
  }
  [[nodiscard]] SimTime rtt(NodeId a, NodeId b) const {
    return network_->rtt(a, b);
  }
  [[nodiscard]] SimTime one_way(NodeId a, NodeId b) const {
    return network_->one_way(a, b);
  }

  void report_aborted_transfer(NodeId from, NodeId to, std::size_t bytes) {
    network_->report_aborted_transfer(from, to, bytes);
  }

  void set_endpoint(NodeId node, net::Endpoint* endpoint) {
    network_->set_endpoint(node, endpoint);
  }

  void fail_node(NodeId node) { network_->fail_node(node); }

  [[nodiscard]] Rng fork_rng(std::uint64_t salt) const {
    return network_->fork_rng(salt);
  }

  // Escape hatches for sim-only code (harness, analysis). Protocol logic
  // must stay on the Context surface above.
  [[nodiscard]] sim::Engine& engine() { return *engine_; }
  [[nodiscard]] net::Network& network() { return *network_; }

 private:
  sim::Engine* engine_;
  net::Network* network_;
  /// Set by the owner-aware constructor; kInvalidNode routes make() to the
  /// network's main pool and is rejected by sharded schedule_after.
  NodeId owner_ = kInvalidNode;
};

static_assert(Context<SimRuntime>,
              "SimRuntime must satisfy the runtime Context contract");

}  // namespace gocast::runtime

#include "runtime/realtime_runtime.h"

#include <algorithm>
#include <thread>

#include "common/assert.h"

namespace gocast::runtime {

RealtimeRuntime::RealtimeRuntime(RealtimeConfig config)
    : config_(config),
      jitter_rng_(Rng(config.seed).fork("realtime.jitter")),
      base_rng_(Rng(config.seed).fork("realtime.nodes")) {
  GOCAST_ASSERT(config_.one_way_latency >= 0.0);
  GOCAST_ASSERT(config_.jitter >= 0.0);
}

NodeId RealtimeRuntime::add_node() {
  nodes_.push_back(NodeRecord{});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void RealtimeRuntime::set_endpoint(NodeId node, net::Endpoint* endpoint) {
  GOCAST_ASSERT(node < nodes_.size());
  nodes_[node].endpoint = endpoint;
}

bool RealtimeRuntime::alive(NodeId node) const {
  GOCAST_ASSERT(node < nodes_.size());
  return nodes_[node].alive;
}

void RealtimeRuntime::fail_node(NodeId node) {
  GOCAST_ASSERT(node < nodes_.size());
  nodes_[node].alive = false;
}

void RealtimeRuntime::recover_node(NodeId node) {
  GOCAST_ASSERT(node < nodes_.size());
  nodes_[node].alive = true;
}

sim::EventId RealtimeRuntime::schedule_after(SimTime delay,
                                             sim::InlineCallback cb) {
  GOCAST_ASSERT_MSG(delay >= 0.0, "negative delay " << delay);
  // Anchor to the wall clock, not the queue clock: the queue's notion of now
  // only advances when run_for() fires due work, so queue-relative delays
  // would drift early whenever callbacks take real time to execute.
  return queue_.schedule_at(now() + delay, std::move(cb));
}

void RealtimeRuntime::send(NodeId from, NodeId to, net::MessagePtr msg) {
  GOCAST_ASSERT(from < nodes_.size());
  GOCAST_ASSERT(to < nodes_.size());
  if (!nodes_[from].alive) {
    ++stats_.messages_dropped;
    return;
  }
  stats_.bytes_sent += msg->wire_size();
  ++stats_.messages_sent;
  if (!nodes_[to].alive) {
    if (config_.notify_send_failures) {
      queue_.schedule_at(now() + rtt(from, to),
                         [this, from, to, m = std::move(msg)] {
                           deliver_failure(from, to, m);
                         });
    } else {
      ++stats_.messages_dropped;
    }
    return;
  }
  SimTime latency = one_way(from, to);
  if (config_.jitter > 0.0) {
    latency += jitter_rng_.next_range(0.0, config_.jitter);
  }
  queue_.schedule_at(
      now() + latency,
      [this, from, to, m = std::move(msg)] { deliver(from, to, m); });
}

void RealtimeRuntime::deliver(NodeId from, NodeId to,
                              const net::MessagePtr& msg) {
  const NodeRecord& dst = nodes_[to];
  if (!dst.alive || dst.endpoint == nullptr) {
    ++stats_.messages_dropped;
    return;
  }
  ++stats_.messages_delivered;
  dst.endpoint->handle_message(from, msg);
}

void RealtimeRuntime::deliver_failure(NodeId from, NodeId to,
                                      const net::MessagePtr& msg) {
  const NodeRecord& src = nodes_[from];
  ++stats_.messages_dropped;
  if (!src.alive || src.endpoint == nullptr) return;
  src.endpoint->handle_send_failure(to, msg);
}

void RealtimeRuntime::report_aborted_transfer(NodeId from, NodeId to,
                                              std::size_t bytes) {
  (void)from;
  (void)to;
  stats_.aborted_transfer_bytes += bytes;
}

std::size_t RealtimeRuntime::run_for(SimTime wall_seconds) {
  GOCAST_ASSERT(wall_seconds >= 0.0);
  const SimTime deadline = now() + wall_seconds;
  std::size_t fired = 0;
  for (;;) {
    const SimTime next = queue_.next_event_time();
    if (next == kNever || next > deadline) break;
    if (next > now()) {
      std::this_thread::sleep_until(
          anchor_ + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(next)));
    }
    // The sleep may overshoot; fire everything due by the wall clock, but
    // never past the caller's horizon.
    fired += queue_.run_until(std::min(now(), deadline));
  }
  return fired;
}

}  // namespace gocast::runtime

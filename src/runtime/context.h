// The runtime seam: everything a protocol layer may ask of the substrate
// that carries it.
//
// GoCast's protocol logic (overlay maintenance, tree embedding,
// dissemination, baselines) is written against a *Context* — a clock, a
// timer service, a message transport, pooled message construction, and
// liveness/topology queries — rather than against the discrete-event
// simulator directly. A Context is a compile-time parameter, not a virtual
// interface: each protocol class is a template over its context type and the
// simulation binding (runtime::SimRuntime) is a final class of two pointers
// whose methods are inline forwards, so the simulator hot path keeps the
// exact non-virtual, fully-inlinable call graph it had before the seam
// existed (see DESIGN.md §7). The real-time loopback binding
// (runtime::RealtimeContext over runtime::RealtimeRuntime) drives the same
// protocol code from a std::chrono steady clock.
//
// Context contract (checked by the concept below; `make<M>` is a template
// and therefore listed here instead):
//   using TimerId;                       // handle to a pending one-shot
//   static TimerId invalid_timer();      // sentinel handle
//   SimTime now() const;                 // seconds on this runtime's clock
//   TimerId schedule_after(SimTime d, sim::InlineCallback cb);
//   bool cancel(TimerId id);
//   void send(NodeId from, NodeId to, net::MessagePtr msg);
//   void send_multi(NodeId from, const NodeId* targets, std::size_t count,
//                   NodeId except, net::MessagePtr msg);
//       // fan-out of one message to targets[0..count) except `except`
//       // (kInvalidNode = nobody), in index order; semantically identical to
//       // the equivalent send() loop, but backends may batch the admissions
//   std::shared_ptr<const M> make<M>(Args&&...);   // pooled construction
//   bool alive(NodeId) const;            // node liveness
//   std::size_t node_count() const;      // registered nodes (baselines)
//   SimTime rtt(a, b) / one_way(a, b);   // link-latency oracle/estimate
//   void report_aborted_transfer(from, to, bytes);
//   void set_endpoint(NodeId, net::Endpoint*);     // delivery callback
//   void fail_node(NodeId);              // crash semantics (kill path)
//   Rng fork_rng(std::uint64_t salt);    // per-node deterministic streams
//
// Timestamps are SimTime seconds in both backends: simulated seconds on the
// event engine, wall-clock seconds since runtime construction on the
// real-time backend. Timer callbacks must fit sim::InlineCallback's inline
// capacity — the seam never heap-allocates for a schedule.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "common/rng.h"
#include "common/types.h"
#include "net/endpoint.h"
#include "net/message.h"
#include "sim/inline_callback.h"
#include "sim/timer.h"

namespace gocast::runtime {

/// Compile-time check that a type implements the Context contract. Backends
/// static_assert it; protocol templates constrain on it so a missing method
/// fails at the seam, not three instantiation layers deep.
template <class RT>
concept Context = requires(RT rt, const RT crt, NodeId n, SimTime t,
                           net::MessagePtr msg, sim::InlineCallback cb,
                           typename RT::TimerId id, std::size_t bytes,
                           std::uint64_t salt) {
  { crt.now() } -> std::convertible_to<SimTime>;
  { rt.schedule_after(t, std::move(cb)) } -> std::same_as<typename RT::TimerId>;
  { rt.cancel(id) } -> std::same_as<bool>;
  { RT::invalid_timer() } -> std::same_as<typename RT::TimerId>;
  rt.send(n, n, std::move(msg));
  rt.send_multi(n, static_cast<const NodeId*>(nullptr), bytes, n,
                std::move(msg));
  { crt.alive(n) } -> std::same_as<bool>;
  { crt.node_count() } -> std::convertible_to<std::size_t>;
  { crt.rtt(n, n) } -> std::convertible_to<SimTime>;
  { crt.one_way(n, n) } -> std::convertible_to<SimTime>;
  rt.report_aborted_transfer(n, n, bytes);
  rt.set_endpoint(n, static_cast<net::Endpoint*>(nullptr));
  rt.fail_node(n);
  { crt.fork_rng(salt) } -> std::same_as<Rng>;
};

/// Periodic timer over a runtime context (maintenance cycles, gossip ticks,
/// heartbeats, GC sweeps). Same InlineCallback-backed implementation as the
/// engine-direct sim::PeriodicTimer.
template <class RT>
using PeriodicTimer = sim::BasicPeriodicTimer<RT>;

}  // namespace gocast::runtime

// UDP binding of the runtime seam (see runtime/context.h): the third
// Context backend, and the first that crosses process (and host)
// boundaries.
//
// One UdpRuntime hosts ONE protocol node (config.self) behind one
// non-blocking UDP socket driven by an epoll reactor. Messages are framed
// by the wire codec (src/wire/codec.h) — encode straight into a reusable
// arena-backed frame buffer, sendto(), and on the far side decode straight
// into pooled messages. The timer wheel is a sim::Engine reused as a
// deadline heap exactly as RealtimeRuntime does; the reactor loop sleeps
// in epoll_wait until the earlier of "next timer deadline" and "datagram
// arrived", so timers and I/O interleave on one thread and protocol code
// needs no locking.
//
// The endpoint table maps NodeIds to sockaddrs (--peers in gocastd).
// Send failures surface through net::Endpoint::handle_send_failure the
// same way the in-process backends deliver them, from two sources:
//   - ICMP unreachable (a crashed peer's kernel refuses the port):
//     harvested from the socket error queue (IP_RECVERR / MSG_ERRQUEUE)
//     and correlated to the most recent message sent to that peer;
//   - EAGAIN/ENOBUFS exhaustion: sendto retried with a short backoff up
//     to config.send_retry_limit, then reported as a failure.
//
// Clock: wall seconds since construction (steady clock), or — when
// config.epoch_unix is set — CLOCK_REALTIME seconds since that shared
// epoch, which lets a launcher hand every process the same time base so
// piggybacked age estimates line up across the deployment. Ages, not
// absolute instants, cross the wire either way (see wire/codec.h).
//
// Shutdown: watch_stop_flag() points the reactor at an async-signal-safe
// flag; run_for() returns promptly once it is set (signals interrupt
// epoll_wait), after which the owner can keep calling run_for()/poll() to
// drain in-flight traffic before exiting.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <csignal>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/endpoint.h"
#include "net/message.h"
#include "net/message_pool.h"
#include "runtime/context.h"
#include "sim/engine.h"
#include "wire/codec.h"

namespace gocast::runtime {

struct UdpPeerSpec {
  NodeId id = kInvalidNode;
  std::string host;
  std::uint16_t port = 0;
};

struct UdpConfig {
  /// The node this process hosts; every send must originate from it.
  NodeId self = 0;

  std::string listen_host = "127.0.0.1";
  /// 0 binds an ephemeral port (tests); query it with port().
  std::uint16_t listen_port = 0;

  /// Remote endpoint table. An entry for `self` is ignored, so a launcher
  /// can pass the same list to every process.
  std::vector<UdpPeerSpec> peers;

  /// RTT oracle fallback for links the protocol has not measured yet.
  SimTime assumed_rtt = 0.001;

  /// Shared CLOCK_REALTIME epoch (unix seconds) for the clock; 0 anchors
  /// a steady clock at construction instead.
  double epoch_unix = 0.0;

  /// sendto() EAGAIN/ENOBUFS retries (50 us backoff each) before the send
  /// is reported as failed.
  int send_retry_limit = 8;

  /// Delay before a send failure is reported back to the endpoint,
  /// mirroring the in-process backends' one-RTT reset latency.
  SimTime failure_notify_delay = 0.001;

  /// Seed for fork_rng() per-subsystem streams.
  std::uint64_t seed = 1;
};

/// Thrown on socket/bind/epoll setup failure (gocastd maps it to its
/// bind/config-error exit code).
struct UdpSetupError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class UdpRuntime {
 public:
  struct Stats {
    std::uint64_t datagrams_sent = 0;
    std::uint64_t datagrams_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t delivered = 0;          ///< frames handed to the endpoint
    std::uint64_t send_failures = 0;      ///< failure notifications scheduled
    std::uint64_t eagain_retries = 0;
    std::uint64_t dropped_dead = 0;       ///< sends while self marked dead
    std::uint64_t dropped_unknown_peer = 0;
    std::uint64_t rejected_frames = 0;    ///< decode rejections, any status
    std::uint64_t rejected_misaddressed = 0;  ///< decoded fine, wrong dst id
    std::uint64_t rejected_unknown_src = 0;   ///< src id not in peer table
    std::uint64_t icmp_unreachable = 0;
    /// Decode rejections by wire::DecodeStatus value.
    std::uint64_t rejects_by_status[wire::kDecodeStatusCount] = {};
  };

  explicit UdpRuntime(UdpConfig config);
  ~UdpRuntime();

  UdpRuntime(const UdpRuntime&) = delete;
  UdpRuntime& operator=(const UdpRuntime&) = delete;

  /// Registers/overwrites a peer endpoint (tests bind ephemeral ports and
  /// exchange them after construction).
  void add_peer(NodeId id, const std::string& host, std::uint16_t port);

  /// The actually bound UDP port.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  [[nodiscard]] SimTime now() const;

  sim::EventId schedule_after(SimTime delay, sim::InlineCallback cb);
  bool cancel(sim::EventId id) { return queue_.cancel(id); }

  void send(NodeId from, NodeId to, net::MessagePtr msg);

  template <class M, class... Args>
  [[nodiscard]] std::shared_ptr<const M> make(Args&&... args) {
    return net::make_pooled<M>(pool_, std::forward<Args>(args)...);
  }

  /// Liveness is local knowledge only: false for self after fail_node,
  /// true for every registered peer (a UDP runtime cannot observe remote
  /// crashes — the protocol's own suspicion machinery does that).
  [[nodiscard]] bool alive(NodeId node) const;
  [[nodiscard]] std::size_t node_count() const { return peers_.size() + 1; }

  [[nodiscard]] SimTime rtt(NodeId a, NodeId b) const {
    return a == b ? 0.0 : config_.assumed_rtt;
  }
  [[nodiscard]] SimTime one_way(NodeId a, NodeId b) const {
    return rtt(a, b) / 2.0;
  }

  void report_aborted_transfer(NodeId from, NodeId to, std::size_t bytes);

  void set_endpoint(NodeId node, net::Endpoint* endpoint);
  void fail_node(NodeId node);

  [[nodiscard]] Rng fork_rng(std::uint64_t salt) const {
    return base_rng_.fork(salt);
  }

  /// Runs the reactor for `wall_seconds`: fires due timers, sleeps in
  /// epoll_wait until the next deadline or datagram, delivers received
  /// frames, repeats. Returns the number of timer callbacks fired.
  /// Returns early when the watched stop flag becomes set.
  std::size_t run_for(SimTime wall_seconds);

  /// Non-blocking slice: drain the socket and error queue, fire due
  /// timers, return. Lets several runtimes interleave on one thread
  /// (in-process integration tests).
  std::size_t poll();

  /// Points the reactor at an async-signal-safe stop flag (owned by the
  /// caller, set from a signal handler). Null detaches.
  void watch_stop_flag(const volatile std::sig_atomic_t* flag) {
    stop_flag_ = flag;
  }

  [[nodiscard]] std::size_t pending_timers() const { return queue_.pending(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const UdpConfig& config() const { return config_; }
  [[nodiscard]] const net::MessageArena& pool() const { return *pool_; }

 private:
  struct PeerRec {
    std::uint32_t ip = 0;    ///< network byte order
    std::uint16_t port = 0;  ///< network byte order
    /// Most recent message sent to this peer, retained so an ICMP
    /// unreachable can be correlated to a concrete message for
    /// handle_send_failure (UDP reports errors per-destination, not
    /// per-datagram).
    net::MessagePtr last_sent;
  };

  [[nodiscard]] bool stopped() const {
    return stop_flag_ != nullptr && *stop_flag_ != 0;
  }

  void drain_socket();
  void drain_error_queue();
  void notify_send_failure(NodeId to, net::MessagePtr msg);

  UdpConfig config_;
  int fd_ = -1;
  int epfd_ = -1;
  std::uint16_t port_ = 0;
  std::chrono::steady_clock::time_point anchor_;
  sim::Engine queue_;
  std::shared_ptr<net::MessageArena> pool_ =
      std::make_shared<net::MessageArena>();
  wire::FrameBuffer frame_;              ///< reusable encode scratch
  std::vector<std::uint8_t> recv_buf_;   ///< one max-size datagram
  std::unordered_map<NodeId, PeerRec> peers_;
  std::unordered_map<std::uint64_t, NodeId> addr_to_node_;  ///< ip:port → id
  net::Endpoint* endpoint_ = nullptr;
  bool alive_ = true;
  Rng base_rng_;
  const volatile std::sig_atomic_t* stop_flag_ = nullptr;
  Stats stats_;
  std::uint64_t aborted_transfer_bytes_ = 0;
};

/// Copyable handle over a UdpRuntime — the Context type the protocol
/// templates are instantiated with (same shape as RealtimeContext).
class UdpContext final {
 public:
  using TimerId = sim::EventId;
  [[nodiscard]] static constexpr sim::EventId invalid_timer() {
    return sim::kInvalidEvent;
  }

  UdpContext(UdpRuntime& rt)  // NOLINT(google-explicit-constructor)
      : rt_(&rt) {}

  [[nodiscard]] SimTime now() const { return rt_->now(); }

  TimerId schedule_after(SimTime delay, sim::InlineCallback cb) {
    return rt_->schedule_after(delay, std::move(cb));
  }
  bool cancel(TimerId id) { return rt_->cancel(id); }

  void send(NodeId from, NodeId to, net::MessagePtr msg) {
    rt_->send(from, to, std::move(msg));
  }

  /// No batched admission over UDP; the fan-out is a plain send() loop.
  void send_multi(NodeId from, const NodeId* targets, std::size_t count,
                  NodeId except, net::MessagePtr msg) {
    for (std::size_t i = 0; i < count; ++i) {
      if (targets[i] != except) rt_->send(from, targets[i], msg);
    }
  }

  template <class M, class... Args>
  [[nodiscard]] std::shared_ptr<const M> make(Args&&... args) {
    return rt_->make<M>(std::forward<Args>(args)...);
  }

  [[nodiscard]] bool alive(NodeId node) const { return rt_->alive(node); }
  [[nodiscard]] std::size_t node_count() const { return rt_->node_count(); }
  [[nodiscard]] SimTime rtt(NodeId a, NodeId b) const { return rt_->rtt(a, b); }
  [[nodiscard]] SimTime one_way(NodeId a, NodeId b) const {
    return rt_->one_way(a, b);
  }

  void report_aborted_transfer(NodeId from, NodeId to, std::size_t bytes) {
    rt_->report_aborted_transfer(from, to, bytes);
  }
  void set_endpoint(NodeId node, net::Endpoint* endpoint) {
    rt_->set_endpoint(node, endpoint);
  }
  void fail_node(NodeId node) { rt_->fail_node(node); }

  [[nodiscard]] Rng fork_rng(std::uint64_t salt) const {
    return rt_->fork_rng(salt);
  }

  [[nodiscard]] UdpRuntime& runtime() { return *rt_; }

 private:
  UdpRuntime* rt_;
};

static_assert(Context<UdpContext>,
              "UdpContext must satisfy the runtime Context contract");

}  // namespace gocast::runtime

// Real-time binding of the runtime seam (see runtime/context.h).
//
// RealtimeRuntime drives the same protocol templates the simulator does, but
// against a std::chrono steady clock and an in-process loopback transport.
// Time is wall-clock seconds since runtime construction; timers actually
// sleep; sends are delivered to the destination endpoint after a configurable
// injected one-way latency (plus optional jitter), mimicking a LAN/WAN hop
// inside one process. tools/gocastd uses it to run N live GoCast nodes.
//
// Implementation: the pending-work queue is a sim::Engine — the same
// generation-checked 4-ary heap the simulator uses — anchored to the steady
// clock. run_for() repeatedly sleeps until the earliest deadline, then fires
// everything that has come due. Single-threaded by design: protocol code runs
// only inside run_for(), so no locking is needed and the protocol classes
// stay oblivious to which backend hosts them.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/endpoint.h"
#include "net/message.h"
#include "net/message_pool.h"
#include "runtime/context.h"
#include "sim/engine.h"

namespace gocast::runtime {

struct RealtimeConfig {
  /// Injected one-way latency between distinct nodes, in seconds. The
  /// loopback transport itself is instantaneous; this emulates a network hop.
  SimTime one_way_latency = 0.0002;

  /// Uniform jitter added to each hop: latency is drawn from
  /// [one_way_latency, one_way_latency + jitter].
  SimTime jitter = 0.0;

  /// Whether senders receive handle_send_failure (after one RTT) for
  /// messages addressed to failed nodes — mirrors net::NetworkConfig.
  bool notify_send_failures = true;

  /// Seed for jitter draws and fork_rng() per-node streams.
  std::uint64_t seed = 1;
};

class RealtimeRuntime {
 public:
  struct Stats {
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_delivered = 0;
    std::uint64_t messages_dropped = 0;  // dead sender or dead receiver
    std::uint64_t bytes_sent = 0;
    std::uint64_t aborted_transfer_bytes = 0;
  };

  explicit RealtimeRuntime(RealtimeConfig config = {});

  RealtimeRuntime(const RealtimeRuntime&) = delete;
  RealtimeRuntime& operator=(const RealtimeRuntime&) = delete;

  /// Registers a node; returns its id (dense, starting at 0).
  NodeId add_node();

  void set_endpoint(NodeId node, net::Endpoint* endpoint);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] bool alive(NodeId node) const;
  void fail_node(NodeId node);
  void recover_node(NodeId node);

  /// Wall-clock seconds since this runtime was constructed.
  [[nodiscard]] SimTime now() const {
    return std::chrono::duration<double>(Clock::now() - anchor_).count();
  }

  sim::EventId schedule_after(SimTime delay, sim::InlineCallback cb);
  bool cancel(sim::EventId id) { return queue_.cancel(id); }

  void send(NodeId from, NodeId to, net::MessagePtr msg);

  template <class M, class... Args>
  [[nodiscard]] std::shared_ptr<const M> make(Args&&... args) {
    return net::make_pooled<M>(pool_, std::forward<Args>(args)...);
  }

  [[nodiscard]] SimTime one_way(NodeId a, NodeId b) const {
    return a == b ? 0.0 : config_.one_way_latency;
  }
  [[nodiscard]] SimTime rtt(NodeId a, NodeId b) const {
    return 2.0 * one_way(a, b);
  }

  void report_aborted_transfer(NodeId from, NodeId to, std::size_t bytes);

  [[nodiscard]] Rng fork_rng(std::uint64_t salt) const {
    return base_rng_.fork(salt);
  }

  /// Runs the event loop for `wall_seconds` of real time: sleeps until the
  /// earliest pending deadline, fires due work, repeats. Returns early if the
  /// queue drains (single-threaded — nothing can add work while we sleep).
  /// Returns the number of callbacks fired.
  std::size_t run_for(SimTime wall_seconds);

  [[nodiscard]] std::size_t pending() const { return queue_.pending(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const RealtimeConfig& config() const { return config_; }
  [[nodiscard]] const net::MessageArena& pool() const { return *pool_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct NodeRecord {
    net::Endpoint* endpoint = nullptr;
    bool alive = true;
  };

  void deliver(NodeId from, NodeId to, const net::MessagePtr& msg);
  void deliver_failure(NodeId from, NodeId to, const net::MessagePtr& msg);

  RealtimeConfig config_;
  Clock::time_point anchor_ = Clock::now();
  sim::Engine queue_;
  std::shared_ptr<net::MessageArena> pool_ =
      std::make_shared<net::MessageArena>();
  Rng jitter_rng_;
  Rng base_rng_;
  std::vector<NodeRecord> nodes_;
  Stats stats_;
};

/// Copyable handle over a RealtimeRuntime — the Context type protocol
/// templates are instantiated with (mirrors SimRuntime's two-pointer shape;
/// protocol members store contexts by value).
class RealtimeContext final {
 public:
  using TimerId = sim::EventId;
  [[nodiscard]] static constexpr sim::EventId invalid_timer() {
    return sim::kInvalidEvent;
  }

  RealtimeContext(RealtimeRuntime& rt)  // NOLINT(google-explicit-constructor)
      : rt_(&rt) {}

  [[nodiscard]] SimTime now() const { return rt_->now(); }

  TimerId schedule_after(SimTime delay, sim::InlineCallback cb) {
    return rt_->schedule_after(delay, std::move(cb));
  }
  bool cancel(TimerId id) { return rt_->cancel(id); }

  void send(NodeId from, NodeId to, net::MessagePtr msg) {
    rt_->send(from, to, std::move(msg));
  }

  /// The real-time backend has no batched admission; the fan-out is a plain
  /// send() loop with identical per-target semantics.
  void send_multi(NodeId from, const NodeId* targets, std::size_t count,
                  NodeId except, net::MessagePtr msg) {
    for (std::size_t i = 0; i < count; ++i) {
      if (targets[i] != except) rt_->send(from, targets[i], msg);
    }
  }

  template <class M, class... Args>
  [[nodiscard]] std::shared_ptr<const M> make(Args&&... args) {
    return rt_->make<M>(std::forward<Args>(args)...);
  }

  [[nodiscard]] bool alive(NodeId node) const { return rt_->alive(node); }
  [[nodiscard]] std::size_t node_count() const { return rt_->node_count(); }
  [[nodiscard]] SimTime rtt(NodeId a, NodeId b) const { return rt_->rtt(a, b); }
  [[nodiscard]] SimTime one_way(NodeId a, NodeId b) const {
    return rt_->one_way(a, b);
  }

  void report_aborted_transfer(NodeId from, NodeId to, std::size_t bytes) {
    rt_->report_aborted_transfer(from, to, bytes);
  }
  void set_endpoint(NodeId node, net::Endpoint* endpoint) {
    rt_->set_endpoint(node, endpoint);
  }
  void fail_node(NodeId node) { rt_->fail_node(node); }

  [[nodiscard]] Rng fork_rng(std::uint64_t salt) const {
    return rt_->fork_rng(salt);
  }

  [[nodiscard]] RealtimeRuntime& runtime() { return *rt_; }

 private:
  RealtimeRuntime* rt_;
};

static_assert(Context<RealtimeContext>,
              "RealtimeContext must satisfy the runtime Context contract");

}  // namespace gocast::runtime

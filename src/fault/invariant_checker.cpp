#include "fault/invariant_checker.h"

#include <sstream>
#include <unordered_set>

#include "analysis/graph_analysis.h"
#include "common/assert.h"
#include "common/logging.h"

namespace gocast::fault {

namespace {
std::uint64_t pack_link(NodeId node, NodeId peer) {
  return (static_cast<std::uint64_t>(node) << 32) | peer;
}
}  // namespace

InvariantChecker::InvariantChecker(core::System& system,
                                   InvariantCheckerParams params)
    : system_(system),
      params_(params),
      timer_(system.engine(), params.period, [this] { sweep(); }) {
  GOCAST_ASSERT(params_.period > 0.0);
  GOCAST_ASSERT(params_.settle_after >= 0.0);
  GOCAST_ASSERT(params_.dead_neighbor_timeout > 0.0);
}

void InvariantChecker::start() { timer_.start(); }

void InvariantChecker::stop() { timer_.stop(); }

void InvariantChecker::check_now() { sweep(); }

void InvariantChecker::note_disturbance() {
  last_disturbance_ = system_.engine().now();
}

void InvariantChecker::set_partition_active(bool active) {
  partition_active_ = active;
  note_disturbance();
}

void InvariantChecker::mark_adversary(NodeId id, bool active) {
  if (active) {
    adversaries_.insert(id);
  } else {
    adversaries_.erase(id);
  }
  note_disturbance();
}

bool InvariantChecker::in_adversary_blast_radius(NodeId id) const {
  if (adversaries_.empty()) return false;
  if (adversaries_.count(id) > 0) return true;
  for (NodeId peer : system_.node(id).overlay().neighbor_ids()) {
    if (adversaries_.count(peer) > 0) return true;
  }
  return false;
}

void InvariantChecker::report(SimTime at, std::string what) {
  GOCAST_WARN("invariant violation at t=" << at << ": " << what);
  violations_.push_back(InvariantViolation{at, std::move(what)});
}

void InvariantChecker::report_expected(SimTime at, std::string what) {
  GOCAST_INFO("expected (adversary-caused) violation at t=" << at << ": "
                                                            << what);
  expected_violations_.push_back(InvariantViolation{at, std::move(what)});
}

void InvariantChecker::sweep() {
  ++sweeps_;
  SimTime now = system_.engine().now();
  if (params_.check_dead_neighbors) check_dead_neighbors(now);
  if (params_.check_store_gc) check_store_gc(now);
  // Structural equilibrium checks only once the system had time to settle
  // (and never across an active partition, which they cannot hold under).
  if (!partition_active_ && settled(now)) {
    if (params_.check_degrees) check_degrees(now);
    if (params_.check_tree || params_.check_connectivity) {
      check_tree_and_connectivity(now);
    }
  }
}

void InvariantChecker::check_degrees(SimTime now) {
  // Two-level audit of the paper's §2.2 degree promise. Per node: the C1
  // floor (target - lower_slack) and a strict upper bound (settled
  // maintenance sheds excess every r << sweep period). Aggregate: "most
  // nodes" sit in the strict band {C, C+1} — at most out_of_band_fraction
  // may stray. Capacity-aware configs scale per-node targets, so targets
  // are read off each node.
  // Nodes inside an adversary's blast radius (the victim itself and its
  // direct neighbors: degree lies distort exactly their C1–C4 decisions,
  // evictions deflate exactly their degree) report as *expected* and drop
  // out of the aggregate band statistic — the band promise is audited over
  // the unaffected population.
  std::vector<NodeId> alive = system_.alive_nodes();
  std::size_t out_of_band = 0;
  std::size_t audited = 0;
  for (NodeId id : alive) {
    const core::GoCastNode& node = system_.node(id);
    const overlay::OverlayParams& params = node.config().overlay;
    bool in_band = true;
    bool expected = in_adversary_blast_radius(id);

    int rand_lo = params.target_rand_degree - params_.degree_lower_slack;
    int rand_hi = params.target_rand_degree + 1 + params_.degree_slack;
    int rand_deg = node.overlay().rand_degree();
    if (rand_deg < rand_lo || rand_deg > rand_hi) {
      std::ostringstream what;
      what << "node " << id << " random degree " << rand_deg
           << " outside [" << rand_lo << ", " << rand_hi << "]";
      if (expected) {
        report_expected(now, what.str());
      } else {
        report(now, what.str());
      }
    }
    if (rand_deg < params.target_rand_degree ||
        rand_deg > params.target_rand_degree + 1) {
      in_band = false;
    }

    if (params.maintain_nearby) {
      int near_lo = params.target_near_degree - params_.degree_lower_slack;
      int near_hi = params.target_near_degree + 1 + params_.degree_slack;
      int near_deg = node.overlay().near_degree();
      if (near_deg < near_lo || near_deg > near_hi) {
        std::ostringstream what;
        what << "node " << id << " nearby degree " << near_deg << " outside ["
             << near_lo << ", " << near_hi << "]";
        if (expected) {
          report_expected(now, what.str());
        } else {
          report(now, what.str());
        }
      }
      if (near_deg < params.target_near_degree ||
          near_deg > params.target_near_degree + 1) {
        in_band = false;
      }
    }
    if (expected) continue;
    ++audited;
    if (!in_band) ++out_of_band;
  }
  if (audited > 0 &&
      static_cast<double>(out_of_band) >
          params_.out_of_band_fraction * static_cast<double>(audited)) {
    std::ostringstream what;
    what << out_of_band << " of " << audited
         << " audited live nodes outside the stable degree band {C, C+1}";
    report(now, what.str());
  }
}

void InvariantChecker::check_dead_neighbors(SimTime now) {
  std::unordered_set<std::uint64_t> current;
  for (NodeId id : system_.alive_nodes()) {
    for (NodeId peer : system_.node(id).overlay().neighbor_ids()) {
      if (system_.network().alive(peer)) continue;
      std::uint64_t key = pack_link(id, peer);
      current.insert(key);
      auto [it, inserted] = stale_links_.emplace(key, now);
      if (inserted) continue;
      if (now - it->second > params_.dead_neighbor_timeout) {
        std::ostringstream what;
        what << "node " << id << " still lists dead neighbor " << peer
             << " after " << (now - it->second) << " s";
        report(now, what.str());
        it->second = now;  // re-arm instead of flagging every sweep
      }
    }
  }
  // Forget entries that resolved (neighbor dropped or node died/recovered).
  for (auto it = stale_links_.begin(); it != stale_links_.end();) {
    if (current.count(it->first) == 0) {
      it = stale_links_.erase(it);
    } else {
      ++it;
    }
  }
}

void InvariantChecker::check_tree_and_connectivity(SimTime now) {
  // While adversaries are active, defended nodes legitimately evict and
  // blacklist them — an isolated (fully-evicted) adversary splits the
  // overlay and falls off the tree by design, so global structure
  // violations are attack damage, not protocol failures.
  const bool adversaries_active = !adversaries_.empty();
  if (params_.check_connectivity) {
    analysis::OverlayGraph graph = analysis::snapshot_overlay(system_);
    analysis::ComponentStats comp = analysis::components(graph);
    if (comp.largest_fraction < 1.0) {
      std::ostringstream what;
      what << "overlay split into " << comp.component_count
           << " components (largest holds " << comp.largest_fraction
           << " of live nodes)";
      if (adversaries_active) {
        report_expected(now, what.str());
      } else {
        report(now, what.str());
      }
    }
  }
  if (params_.check_tree && system_.config().node.tree.enabled &&
      system_.config().node.dissemination.use_tree) {
    analysis::TreeStats tree = analysis::tree_stats(system_);
    if (!tree.is_forest) {
      report(now, "tree links contain a cycle");
    }
    if (!tree.spanning) {
      std::ostringstream what;
      what << "tree spans " << tree.reachable_from_root << " of "
           << system_.network().alive_count() << " live nodes (root "
           << tree.root << ")";
      if (adversaries_active) {
        report_expected(now, what.str());
      } else {
        report(now, what.str());
      }
    }
  }
}

void InvariantChecker::check_store_gc(SimTime now) {
  const core::DisseminationParams& d =
      system_.config().node.dissemination;
  SimTime payload_bound = d.gc_payload_after + d.gc_sweep_period + params_.gc_margin;
  SimTime record_bound = d.gc_record_after + d.gc_sweep_period + params_.gc_margin;
  for (NodeId id : system_.alive_nodes()) {
    const core::Dissemination& diss = system_.node(id).dissemination();
    std::size_t payloads = diss.payloads_older_than(payload_bound);
    if (payloads > 0) {
      std::ostringstream what;
      what << "node " << id << " retains " << payloads
           << " payloads beyond b=" << d.gc_payload_after << " s (+slack)";
      report(now, what.str());
    }
    std::size_t records = diss.records_older_than(record_bound);
    if (records > 0) {
      std::ostringstream what;
      what << "node " << id << " retains " << records
           << " message records beyond " << d.gc_record_after << " s (+slack)";
      report(now, what.str());
    }
  }
}

}  // namespace gocast::fault

// The fault subsystem's link-policy state: which partition island each node
// belongs to, and which links are degraded (latency multiplier, jitter,
// extra loss). Installed on net::Network via set_link_policy; mutated by the
// FaultInjector as plan events fire.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "net/link_policy.h"

namespace gocast::fault {

/// Per-node (or global) link degradation.
struct Degradation {
  double latency_multiplier = 1.0;
  SimTime jitter = 0.0;
  double loss = 0.0;
};

class LinkPolicyTable final : public net::LinkPolicy {
 public:
  explicit LinkPolicyTable(std::size_t node_count);

  // -- partitions --
  /// Moves `node` into partition island `group`. Nodes in different islands
  /// cannot exchange messages. Island 0 is the default (everyone together).
  void set_group(NodeId node, std::uint32_t group);
  [[nodiscard]] std::uint32_t group(NodeId node) const;
  /// Dissolves all partitions (everyone back to island 0).
  void heal_partitions();
  [[nodiscard]] bool partition_active() const { return partitioned_nodes_ > 0; }
  /// True when the policy blocks messages between a and b.
  [[nodiscard]] bool severed(NodeId a, NodeId b) const {
    return group(a) != group(b);
  }

  // -- degradations --
  /// Degrades every link in the network.
  void degrade_all(Degradation degradation);
  /// Degrades every link incident to `node`.
  void degrade_node(NodeId node, Degradation degradation);
  /// Clears all degradations (global and per-node).
  void restore();
  [[nodiscard]] bool degraded() const {
    return global_active_ || !node_degradations_.empty();
  }

  // -- net::LinkPolicy --
  /// Blocks cross-island sends; otherwise combines the global and the two
  /// endpoint degradations: worst-case latency multiplier and jitter,
  /// independently composed loss (1 - prod(1 - l_i)).
  [[nodiscard]] net::LinkDecision evaluate(NodeId from, NodeId to) const override;

 private:
  std::vector<std::uint32_t> groups_;
  std::size_t partitioned_nodes_ = 0;  ///< nodes outside island 0
  bool global_active_ = false;
  Degradation global_;
  std::unordered_map<NodeId, Degradation> node_degradations_;
};

}  // namespace gocast::fault

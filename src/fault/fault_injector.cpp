#include "fault/fault_injector.h"

#include <algorithm>
#include <sstream>

#include "common/assert.h"
#include "common/logging.h"

namespace gocast::fault {

namespace {

void append_ids(std::string& detail, const std::vector<NodeId>& ids) {
  detail += " [";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) detail += " ";
    detail += std::to_string(ids[i]);
  }
  detail += "]";
}

std::size_t fraction_to_count(double fraction, std::size_t pool) {
  return static_cast<std::size_t>(static_cast<double>(pool) * fraction + 0.5);
}

}  // namespace

FaultInjector::FaultInjector(core::System& system, FaultPlan plan, Rng rng)
    : system_(system),
      plan_(std::move(plan)),
      rng_(std::move(rng)),
      policy_(system.size()) {
  system_.network().set_link_policy(&policy_);
}

FaultInjector::~FaultInjector() { system_.network().set_link_policy(nullptr); }

void FaultInjector::arm() {
  GOCAST_ASSERT_MSG(!armed_, "FaultInjector::arm called twice");
  armed_ = true;
  for (const FaultEvent& event : plan_.events()) {
    GOCAST_ASSERT_MSG(event.at >= system_.now(),
                      "fault event at t=" << event.at << " is in the past");
    // Control events: on sharded runs (DESIGN.md §11) these fire
    // single-threaded at a window barrier at the exact scripted time, so
    // victim selection and the fault log are shard-count-invariant.
    system_.schedule_control(event.at, [this, event] { apply(event); });
  }
}

std::vector<NodeId> FaultInjector::pick_victims(std::vector<NodeId> pool,
                                                std::size_t count) {
  count = std::min(count, pool.size());
  rng_.shuffle(pool);
  pool.resize(count);
  std::sort(pool.begin(), pool.end());
  return pool;
}

std::vector<NodeId> FaultInjector::dead_nodes() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < system_.size(); ++id) {
    if (!system_.network().alive(id)) out.push_back(id);
  }
  return out;
}

void FaultInjector::apply(const FaultEvent& event) {
  std::string detail;
  switch (event.kind) {
    case FaultKind::kCrash:
      apply_crash(event, detail);
      break;
    case FaultKind::kRecover:
      apply_recover(event, detail);
      break;
    case FaultKind::kCrashSite:
      apply_crash_site(event, detail);
      break;
    case FaultKind::kPartition:
      apply_partition(event, detail);
      if (checker_ != nullptr) checker_->set_partition_active(true);
      break;
    case FaultKind::kHeal:
      policy_.heal_partitions();
      detail = "all islands merged";
      if (checker_ != nullptr) checker_->set_partition_active(false);
      break;
    case FaultKind::kDegrade:
      apply_degrade(event, detail);
      break;
    case FaultKind::kRestore:
      policy_.restore();
      detail = "link degradations cleared";
      break;
    case FaultKind::kLoss: {
      system_.network().set_loss_probability(event.loss);
      std::ostringstream s;
      s << "global loss p=" << event.loss;
      detail = s.str();
      break;
    }
    case FaultKind::kMuteForwarder:
    case FaultKind::kDigestLiar:
    case FaultKind::kDegreeLiar:
    case FaultKind::kSlow:
      apply_behavior(event, detail);
      break;
    case FaultKind::kCure:
      apply_cure(event, detail);
      break;
  }
  if (checker_ != nullptr) checker_->note_disturbance();

  std::ostringstream line;
  line << "t=" << event.at << " " << fault_kind_name(event.kind) << " "
       << detail;
  GOCAST_INFO("fault: " << line.str());
  applied_.push_back(line.str());
}

void FaultInjector::apply_crash(const FaultEvent& event, std::string& detail) {
  std::vector<NodeId> victims;
  if (event.node != kInvalidNode) {
    if (system_.network().alive(event.node)) victims.push_back(event.node);
  } else {
    std::vector<NodeId> alive = system_.alive_nodes();
    std::size_t count = event.count != 0
                            ? event.count
                            : fraction_to_count(event.fraction, alive.size());
    // Never crash the whole system: a fault plan models failures, not
    // shutdown, and downstream phases need at least one live node.
    count = std::min(count, alive.size() > 0 ? alive.size() - 1 : 0);
    victims = pick_victims(std::move(alive), count);
  }
  for (NodeId id : victims) system_.node(id).kill();
  detail = "killed " + std::to_string(victims.size());
  append_ids(detail, victims);
}

void FaultInjector::apply_recover(const FaultEvent& event, std::string& detail) {
  std::vector<NodeId> victims;
  if (event.node != kInvalidNode) {
    if (!system_.network().alive(event.node)) victims.push_back(event.node);
  } else {
    victims = pick_victims(dead_nodes(), event.count);
  }
  for (NodeId id : victims) system_.revive_node(id);
  detail = "revived " + std::to_string(victims.size());
  append_ids(detail, victims);
}

void FaultInjector::apply_crash_site(const FaultEvent& event,
                                     std::string& detail) {
  std::vector<NodeId> victims;
  for (NodeId id : system_.alive_nodes()) {
    if (system_.network().site_of(id) == event.site) victims.push_back(id);
  }
  // Same guard as apply_crash: leave at least one node alive.
  if (victims.size() >= system_.network().alive_count()) victims.pop_back();
  for (NodeId id : victims) system_.node(id).kill();
  detail = "site " + std::to_string(event.site) + " killed " +
           std::to_string(victims.size());
  append_ids(detail, victims);
}

void FaultInjector::apply_partition(const FaultEvent& event,
                                    std::string& detail) {
  std::vector<NodeId> alive = system_.alive_nodes();
  std::size_t count = event.count != 0
                          ? event.count
                          : fraction_to_count(event.fraction, alive.size());
  count = std::min(count, alive.size() > 0 ? alive.size() - 1 : 0);
  std::vector<NodeId> island = pick_victims(std::move(alive), count);
  std::uint32_t group = next_group_++;
  for (NodeId id : island) policy_.set_group(id, group);
  detail = "island " + std::to_string(group) + " holds " +
           std::to_string(island.size());
  append_ids(detail, island);
}

void FaultInjector::apply_behavior(const FaultEvent& event,
                                   std::string& detail) {
  std::vector<NodeId> victims;
  if (event.node != kInvalidNode) {
    // Explicit victims stack behaviors (a node can both mute and lie).
    if (system_.network().alive(event.node)) victims.push_back(event.node);
  } else {
    // Random selection draws from alive, currently-honest nodes, so
    // fractions of different behavior kinds afflict disjoint sets.
    std::vector<NodeId> pool;
    for (NodeId id : system_.alive_nodes()) {
      if (system_.node(id).fault_behavior().honest()) pool.push_back(id);
    }
    std::size_t count = event.count != 0
                            ? event.count
                            : fraction_to_count(event.fraction, pool.size());
    victims = pick_victims(std::move(pool), count);
  }

  for (NodeId id : victims) {
    FaultBehavior behavior = system_.node(id).fault_behavior();
    switch (event.kind) {
      case FaultKind::kMuteForwarder:
        behavior.mute_forwarder = true;
        break;
      case FaultKind::kDigestLiar:
        behavior.digest_liar = true;
        break;
      case FaultKind::kDegreeLiar:
        behavior.degree_liar = true;
        behavior.fake_rand_degree = event.fake_rand_degree;
        behavior.fake_near_degree = event.fake_near_degree;
        break;
      case FaultKind::kSlow:
        behavior.processing_delay = event.delay;
        break;
      default:
        GOCAST_ASSERT_MSG(false, "apply_behavior on non-behavior kind");
    }
    system_.node(id).set_fault_behavior(behavior);
    if (checker_ != nullptr) checker_->mark_adversary(id, true);
    auto pos = std::lower_bound(adversaries_.begin(), adversaries_.end(), id);
    if (pos == adversaries_.end() || *pos != id) adversaries_.insert(pos, id);
  }

  std::ostringstream s;
  s << "afflicted " << victims.size();
  if (event.kind == FaultKind::kSlow) s << " delay=" << event.delay;
  if (event.kind == FaultKind::kDegreeLiar) {
    s << " rand=" << event.fake_rand_degree
      << " near=" << event.fake_near_degree;
  }
  detail = s.str();
  append_ids(detail, victims);
}

void FaultInjector::apply_cure(const FaultEvent& event, std::string& detail) {
  std::vector<NodeId> cured;
  if (event.node != kInvalidNode) {
    if (!system_.node(event.node).fault_behavior().honest()) {
      cured.push_back(event.node);
    }
  } else {
    cured = adversaries_;  // every current victim, already sorted
  }
  for (NodeId id : cured) {
    system_.node(id).set_fault_behavior(FaultBehavior{});
    if (checker_ != nullptr) checker_->mark_adversary(id, false);
    auto pos = std::lower_bound(adversaries_.begin(), adversaries_.end(), id);
    if (pos != adversaries_.end() && *pos == id) adversaries_.erase(pos);
  }
  detail = "cured " + std::to_string(cured.size());
  append_ids(detail, cured);
}

void FaultInjector::apply_degrade(const FaultEvent& event,
                                  std::string& detail) {
  Degradation degradation;
  degradation.latency_multiplier = event.latency_multiplier;
  degradation.jitter = event.jitter;
  degradation.loss = event.loss;
  std::ostringstream s;
  s << "mult=" << event.latency_multiplier << " jitter=" << event.jitter
    << " loss=" << event.loss;
  if (event.fraction > 0.0) {
    std::vector<NodeId> alive = system_.alive_nodes();
    std::size_t count = fraction_to_count(event.fraction, alive.size());
    std::vector<NodeId> victims = pick_victims(std::move(alive), count);
    for (NodeId id : victims) policy_.degrade_node(id, degradation);
    s << " on links of " << victims.size() << " nodes";
    detail = s.str();
    append_ids(detail, victims);
  } else {
    policy_.degrade_all(degradation);
    s << " on all links";
    detail = s.str();
  }
}

}  // namespace gocast::fault

// Executes a FaultPlan against a running core::System: schedules every
// event on the simulation engine, selects victims with its own seeded RNG
// (so a run stays a pure function of the experiment seed), drives the
// LinkPolicyTable installed on the network, and keeps a deterministic log
// of everything it applied.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "fault/fault_plan.h"
#include "fault/invariant_checker.h"
#include "fault/link_policy.h"
#include "gocast/system.h"

namespace gocast::fault {

class FaultInjector {
 public:
  /// The injector installs its LinkPolicyTable on `system`'s network and
  /// must outlive the run. `rng` should be forked from the experiment seed.
  FaultInjector(core::System& system, FaultPlan plan, Rng rng);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  ~FaultInjector();

  /// Schedules every plan event on the engine (at absolute sim times).
  /// Call once, any time before the first event's timestamp.
  void arm();

  /// Optional: an InvariantChecker to notify of disturbances (settle clock)
  /// and partition state. Must outlive the run.
  void set_invariant_checker(InvariantChecker* checker) { checker_ = checker; }

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  [[nodiscard]] const LinkPolicyTable& policy() const { return policy_; }
  [[nodiscard]] std::size_t events_applied() const { return applied_.size(); }

  /// One log line per applied event: "t=<time> <kind> <deterministic
  /// details, victims in sorted order>". Two runs with the same seed, plan,
  /// and system produce identical logs (the determinism test's witness).
  [[nodiscard]] const std::vector<std::string>& log() const { return applied_; }

  /// Nodes currently carrying an adversarial / slow behavior (sorted;
  /// behavior events add, cures remove). The harness uses this to compute
  /// eviction coverage.
  [[nodiscard]] const std::vector<NodeId>& adversaries() const {
    return adversaries_;
  }

 private:
  void apply(const FaultEvent& event);
  void apply_crash(const FaultEvent& event, std::string& detail);
  void apply_recover(const FaultEvent& event, std::string& detail);
  void apply_crash_site(const FaultEvent& event, std::string& detail);
  void apply_partition(const FaultEvent& event, std::string& detail);
  void apply_degrade(const FaultEvent& event, std::string& detail);
  void apply_behavior(const FaultEvent& event, std::string& detail);
  void apply_cure(const FaultEvent& event, std::string& detail);

  /// Uniform random sample of `count` ids out of `pool`, returned sorted.
  [[nodiscard]] std::vector<NodeId> pick_victims(std::vector<NodeId> pool,
                                                 std::size_t count);
  [[nodiscard]] std::vector<NodeId> dead_nodes() const;

  core::System& system_;
  FaultPlan plan_;
  Rng rng_;
  LinkPolicyTable policy_;
  InvariantChecker* checker_ = nullptr;
  std::uint32_t next_group_ = 1;
  bool armed_ = false;
  std::vector<std::string> applied_;
  std::vector<NodeId> adversaries_;
};

}  // namespace gocast::fault

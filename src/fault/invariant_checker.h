// Runtime protocol-health auditor: periodically asserts the structural
// invariants GoCast promises — degree bounds among live nodes, timely
// removal of dead overlay neighbors, a connected overlay with an acyclic
// spanning tree once the system has settled, and message-store reclamation
// within the paper's waiting period b. Violations are collected (and
// logged), never fatal: the checker observes, experiments decide.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "gocast/system.h"
#include "sim/timer.h"

namespace gocast::fault {

struct InvariantViolation {
  SimTime at = 0.0;
  std::string what;
};

struct InvariantCheckerParams {
  /// Sweep period.
  SimTime period = 5.0;

  /// Structural invariants (degrees, tree, connectivity) hold only at
  /// equilibrium: they are checked once this long has passed since start /
  /// the last disturbance (fault event).
  SimTime settle_after = 60.0;

  /// Extra degree headroom above the stable band [C, C+1]. 0 audits the
  /// paper's band exactly; the default 0 is safe because maintenance sheds
  /// excess every cycle (r = 0.1 s), far faster than the sweep period.
  int degree_slack = 0;

  /// Per-node tolerance below the target C before under-degree counts as a
  /// violation. The default 2 audits the C1 floor (§2.2.3: never drop below
  /// C - 2): the paper promises the band {C, C+1} only for "most nodes" —
  /// a node can sit under target indefinitely when every candidate is at
  /// capacity — but C1 must hold for every node.
  int degree_lower_slack = 2;

  /// Aggregate band check: the fraction of live nodes whose random or
  /// nearby degree is outside the strict band {C, C+1} may not exceed this
  /// (mirrors the property-test reading of the paper's claim).
  double out_of_band_fraction = 0.10;

  /// A live node may list a dead neighbor at most this long (TCP-reset and
  /// keepalive detection should fire well within it).
  SimTime dead_neighbor_timeout = 10.0;

  /// Slack added on top of gc_payload_after / gc_record_after (one sweep
  /// period plus margin) before store retention counts as a violation.
  SimTime gc_margin = 10.0;

  bool check_degrees = true;
  bool check_dead_neighbors = true;
  bool check_tree = true;
  bool check_connectivity = true;
  bool check_store_gc = true;
};

class InvariantChecker {
 public:
  InvariantChecker(core::System& system, InvariantCheckerParams params = {});

  /// Starts periodic sweeps on the system's engine.
  void start();
  void stop();

  /// Runs one sweep immediately.
  void check_now();

  /// A fault was applied: restart the settle clock for structural checks.
  void note_disturbance();

  /// While a partition is active the overlay *cannot* be connected or
  /// spanned by one tree; connectivity/tree checks are suspended (and
  /// resume settle_after seconds after the partition heals).
  void set_partition_active(bool active);

  /// Marks a node as an active adversarial victim (FaultInjector behavior
  /// events call this; a cure clears it). Structural violations caused by an
  /// adversary — on the victim itself, on its direct neighbors (degree lies
  /// distort their C1–C4 decisions), or overlay/tree splits while any
  /// adversary is active — are *expected* consequences of the attack: they
  /// are reported separately and never count as protocol failures.
  void mark_adversary(NodeId id, bool active);
  [[nodiscard]] bool is_adversary(NodeId id) const {
    return adversaries_.count(id) > 0;
  }

  [[nodiscard]] const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::size_t violation_count() const { return violations_.size(); }
  /// Violations attributed to active adversarial victims (see
  /// mark_adversary) — attack damage, not protocol bugs.
  [[nodiscard]] const std::vector<InvariantViolation>& expected_violations()
      const {
    return expected_violations_;
  }
  [[nodiscard]] std::size_t expected_violation_count() const {
    return expected_violations_.size();
  }
  [[nodiscard]] std::uint64_t sweeps() const { return sweeps_; }
  [[nodiscard]] const InvariantCheckerParams& params() const { return params_; }

 private:
  void sweep();
  void check_degrees(SimTime now);
  void check_dead_neighbors(SimTime now);
  void check_tree_and_connectivity(SimTime now);
  void check_store_gc(SimTime now);
  void report(SimTime at, std::string what);
  void report_expected(SimTime at, std::string what);
  /// True when `id` is an adversary or directly neighbors one (the blast
  /// radius inside which degree distortion is attributable to the attack).
  [[nodiscard]] bool in_adversary_blast_radius(NodeId id) const;

  [[nodiscard]] bool settled(SimTime now) const {
    return now - last_disturbance_ >= params_.settle_after;
  }

  core::System& system_;
  InvariantCheckerParams params_;
  sim::PeriodicTimer timer_;

  SimTime last_disturbance_ = 0.0;
  bool partition_active_ = false;
  std::unordered_set<NodeId> adversaries_;

  /// (node, dead neighbor) -> when the checker first saw the stale link.
  std::unordered_map<std::uint64_t, SimTime> stale_links_;

  std::vector<InvariantViolation> violations_;
  std::vector<InvariantViolation> expected_violations_;
  std::uint64_t sweeps_ = 0;
};

}  // namespace gocast::fault

// Declarative fault plans: a timeline of typed fault events executed by the
// FaultInjector. Plans are built programmatically or parsed from the compact
// CLI spec (see parse() below), and serialize back to a spec, so a scenario's
// failure schedule is a value that can be logged, diffed, and replayed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace gocast::fault {

enum class FaultKind : std::uint8_t {
  kCrash,      ///< kill nodes (random fraction/count, or one explicit node)
  kRecover,    ///< revive crashed nodes (random count, or one explicit node)
  kCrashSite,  ///< site-correlated crash: kill every alive node at one site
  kPartition,  ///< move a random subset of alive nodes into a new island
  kHeal,       ///< dissolve all partitions
  kDegrade,    ///< latency multiplier / jitter / loss on links (subset or all)
  kRestore,    ///< clear all link degradations
  kLoss,       ///< set the global message loss probability
  // Adversarial / slow-node behaviors (see common/fault_behavior.h). Victims
  // stay alive but misbehave until a `cure` event revokes the behavior.
  kMuteForwarder,  ///< accept payloads but never forward or serve them
  kDigestLiar,     ///< advertise ids it does not hold; pulls yield nothing
  kDegreeLiar,     ///< advertise fake degrees, distorting C1–C4 decisions
  kSlow,           ///< per-node CPU-style processing delay per message
  kCure,           ///< revoke behaviors (one explicit node, or every victim)
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// One scheduled fault. Which fields are meaningful depends on `kind`;
/// unused fields keep their defaults (and are omitted by to_spec()).
struct FaultEvent {
  SimTime at = 0.0;
  FaultKind kind = FaultKind::kCrash;

  /// Victim selection (crash / recover / partition / degrade):
  double fraction = 0.0;        ///< random fraction of eligible nodes (0 = unset)
  std::size_t count = 0;        ///< random count of eligible nodes (0 = unset)
  NodeId node = kInvalidNode;   ///< one explicit node (crash / recover)
  std::uint32_t site = 0;       ///< crash_site target

  /// Link degradation / loss parameters:
  double latency_multiplier = 1.0;  ///< degrade: one-way latency scale
  SimTime jitter = 0.0;             ///< degrade: max uniform extra delay (s)
  double loss = 0.0;                ///< degrade: per-link loss | loss: global p

  /// Behavior parameters:
  SimTime delay = 0.0;  ///< slow: per-message processing delay (required > 0)
  std::uint16_t fake_rand_degree = 0;  ///< degree_liar: advertised C_rand
  std::uint16_t fake_near_degree = 0;  ///< degree_liar: advertised C_near

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// A timeline of fault events, kept sorted by time (stable for ties: events
/// at the same instant apply in insertion order).
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Adds an event, keeping the timeline sorted (stable).
  FaultPlan& add(FaultEvent event);

  // Convenience builders (all return *this for chaining).
  FaultPlan& crash_fraction(SimTime at, double fraction);
  FaultPlan& crash_count(SimTime at, std::size_t count);
  FaultPlan& crash_node(SimTime at, NodeId node);
  FaultPlan& crash_site(SimTime at, std::uint32_t site);
  FaultPlan& recover_count(SimTime at, std::size_t count);
  FaultPlan& recover_node(SimTime at, NodeId node);
  FaultPlan& partition_fraction(SimTime at, double fraction);
  FaultPlan& heal(SimTime at);
  FaultPlan& degrade(SimTime at, double latency_multiplier, SimTime jitter,
                     double loss, double fraction = 0.0);
  FaultPlan& restore(SimTime at);
  FaultPlan& set_loss(SimTime at, double p);
  FaultPlan& mute_forwarder_fraction(SimTime at, double fraction);
  FaultPlan& mute_forwarder_node(SimTime at, NodeId node);
  FaultPlan& digest_liar_fraction(SimTime at, double fraction);
  FaultPlan& digest_liar_node(SimTime at, NodeId node);
  FaultPlan& degree_liar_fraction(SimTime at, double fraction,
                                  std::uint16_t fake_rand = 0,
                                  std::uint16_t fake_near = 0);
  FaultPlan& slow_fraction(SimTime at, double fraction, SimTime delay);
  FaultPlan& slow_node(SimTime at, NodeId node, SimTime delay);
  FaultPlan& cure_all(SimTime at);
  FaultPlan& cure_node(SimTime at, NodeId node);

  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  /// Parses the compact spec grammar, raising AssertionError on malformed
  /// input. Grammar: events separated by ';', each
  ///   <time>:<kind>[:<key>=<value>[,<key>=<value>...]]
  /// kinds and their keys:
  ///   crash      frac= | count= | node=
  ///   recover    count= | node=
  ///   crash_site site=
  ///   partition  frac= | count=
  ///   heal       (none)
  ///   degrade    mult=, jitter=, loss=, frac= (frac absent -> all links)
  ///   restore    (none)
  ///   loss       p=
  ///   mute_forwarder | digest_liar  frac= | count= | node=
  ///   degree_liar    frac= | count= | node=  [, rand=, near=]
  ///   slow           delay=, frac= | count= | node=
  ///   cure           node= (absent -> cure every current victim)
  /// Example: "330:crash:frac=0.2; 400:partition:frac=0.3; 460:heal"
  ///      or:  "60:mute_forwarder:frac=0.05; 60:digest_liar:frac=0.05;
  ///            200:cure"
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// Serializes back to the spec grammar; parse(to_spec()) reproduces the
  /// plan exactly.
  [[nodiscard]] std::string to_spec() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace gocast::fault

#include "fault/fault_plan.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

#include "common/assert.h"

namespace gocast::fault {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kRecover: return "recover";
    case FaultKind::kCrashSite: return "crash_site";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHeal: return "heal";
    case FaultKind::kDegrade: return "degrade";
    case FaultKind::kRestore: return "restore";
    case FaultKind::kLoss: return "loss";
    case FaultKind::kMuteForwarder: return "mute_forwarder";
    case FaultKind::kDigestLiar: return "digest_liar";
    case FaultKind::kDegreeLiar: return "degree_liar";
    case FaultKind::kSlow: return "slow";
    case FaultKind::kCure: return "cure";
  }
  return "?";
}

FaultPlan& FaultPlan::add(FaultEvent event) {
  GOCAST_ASSERT_MSG(event.at >= 0.0, "fault event before t=0");
  auto pos = std::upper_bound(
      events_.begin(), events_.end(), event,
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  events_.insert(pos, event);
  return *this;
}

FaultPlan& FaultPlan::crash_fraction(SimTime at, double fraction) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kCrash;
  e.fraction = fraction;
  return add(e);
}

FaultPlan& FaultPlan::crash_count(SimTime at, std::size_t count) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kCrash;
  e.count = count;
  return add(e);
}

FaultPlan& FaultPlan::crash_node(SimTime at, NodeId node) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kCrash;
  e.node = node;
  return add(e);
}

FaultPlan& FaultPlan::crash_site(SimTime at, std::uint32_t site) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kCrashSite;
  e.site = site;
  return add(e);
}

FaultPlan& FaultPlan::recover_count(SimTime at, std::size_t count) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kRecover;
  e.count = count;
  return add(e);
}

FaultPlan& FaultPlan::recover_node(SimTime at, NodeId node) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kRecover;
  e.node = node;
  return add(e);
}

FaultPlan& FaultPlan::partition_fraction(SimTime at, double fraction) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kPartition;
  e.fraction = fraction;
  return add(e);
}

FaultPlan& FaultPlan::heal(SimTime at) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kHeal;
  return add(e);
}

FaultPlan& FaultPlan::degrade(SimTime at, double latency_multiplier,
                              SimTime jitter, double loss, double fraction) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kDegrade;
  e.latency_multiplier = latency_multiplier;
  e.jitter = jitter;
  e.loss = loss;
  e.fraction = fraction;
  return add(e);
}

FaultPlan& FaultPlan::restore(SimTime at) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kRestore;
  return add(e);
}

FaultPlan& FaultPlan::set_loss(SimTime at, double p) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kLoss;
  e.loss = p;
  return add(e);
}

FaultPlan& FaultPlan::mute_forwarder_fraction(SimTime at, double fraction) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kMuteForwarder;
  e.fraction = fraction;
  return add(e);
}

FaultPlan& FaultPlan::mute_forwarder_node(SimTime at, NodeId node) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kMuteForwarder;
  e.node = node;
  return add(e);
}

FaultPlan& FaultPlan::digest_liar_fraction(SimTime at, double fraction) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kDigestLiar;
  e.fraction = fraction;
  return add(e);
}

FaultPlan& FaultPlan::digest_liar_node(SimTime at, NodeId node) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kDigestLiar;
  e.node = node;
  return add(e);
}

FaultPlan& FaultPlan::degree_liar_fraction(SimTime at, double fraction,
                                           std::uint16_t fake_rand,
                                           std::uint16_t fake_near) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kDegreeLiar;
  e.fraction = fraction;
  e.fake_rand_degree = fake_rand;
  e.fake_near_degree = fake_near;
  return add(e);
}

FaultPlan& FaultPlan::slow_fraction(SimTime at, double fraction, SimTime delay) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kSlow;
  e.fraction = fraction;
  e.delay = delay;
  return add(e);
}

FaultPlan& FaultPlan::slow_node(SimTime at, NodeId node, SimTime delay) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kSlow;
  e.node = node;
  e.delay = delay;
  return add(e);
}

FaultPlan& FaultPlan::cure_all(SimTime at) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kCure;
  return add(e);
}

FaultPlan& FaultPlan::cure_node(SimTime at, NodeId node) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kCure;
  e.node = node;
  return add(e);
}

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\n");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream stream(s);
  std::string part;
  while (std::getline(stream, part, sep)) out.push_back(part);
  return out;
}

double parse_double(const std::string& text, const std::string& context) {
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  GOCAST_ASSERT_MSG(end != text.c_str() && *end == '\0',
                    "bad number '" << text << "' in fault event '" << context
                                   << "'");
  return value;
}

std::uint64_t parse_uint(const std::string& text, const std::string& context) {
  char* end = nullptr;
  unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  GOCAST_ASSERT_MSG(end != text.c_str() && *end == '\0',
                    "bad integer '" << text << "' in fault event '" << context
                                    << "'");
  return value;
}

FaultKind parse_kind(const std::string& name, const std::string& context) {
  for (FaultKind kind :
       {FaultKind::kCrash, FaultKind::kRecover, FaultKind::kCrashSite,
        FaultKind::kPartition, FaultKind::kHeal, FaultKind::kDegrade,
        FaultKind::kRestore, FaultKind::kLoss, FaultKind::kMuteForwarder,
        FaultKind::kDigestLiar, FaultKind::kDegreeLiar, FaultKind::kSlow,
        FaultKind::kCure}) {
    if (name == fault_kind_name(kind)) return kind;
  }
  GOCAST_ASSERT_MSG(false, "unknown fault kind '" << name << "' in '"
                                                  << context << "'");
  return FaultKind::kCrash;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& raw : split(spec, ';')) {
    std::string entry = trim(raw);
    if (entry.empty()) continue;
    std::vector<std::string> parts = split(entry, ':');
    GOCAST_ASSERT_MSG(parts.size() >= 2 && parts.size() <= 3,
                      "fault event '" << entry
                                      << "' is not <time>:<kind>[:<args>]");
    FaultEvent event;
    event.at = parse_double(trim(parts[0]), entry);
    GOCAST_ASSERT_MSG(event.at >= 0.0, "negative time in '" << entry << "'");
    event.kind = parse_kind(trim(parts[1]), entry);

    std::map<std::string, std::string> args;
    if (parts.size() == 3) {
      for (const std::string& pair : split(parts[2], ',')) {
        std::string kv = trim(pair);
        if (kv.empty()) continue;
        std::size_t eq = kv.find('=');
        GOCAST_ASSERT_MSG(eq != std::string::npos && eq > 0,
                          "argument '" << kv << "' in '" << entry
                                       << "' is not key=value");
        args[trim(kv.substr(0, eq))] = trim(kv.substr(eq + 1));
      }
    }
    auto take = [&](const char* key) -> std::string {
      auto it = args.find(key);
      if (it == args.end()) return "";
      std::string value = it->second;
      args.erase(it);
      return value;
    };

    switch (event.kind) {
      case FaultKind::kCrash:
      case FaultKind::kPartition: {
        std::string frac = take("frac");
        std::string count = take("count");
        std::string node = take("node");
        bool node_ok = event.kind == FaultKind::kCrash && !node.empty();
        GOCAST_ASSERT_MSG(
            !frac.empty() || !count.empty() || node_ok,
            "'" << entry << "' needs frac=, count=, or node= victims");
        if (!frac.empty()) event.fraction = parse_double(frac, entry);
        if (!count.empty()) {
          event.count = static_cast<std::size_t>(parse_uint(count, entry));
        }
        if (node_ok) event.node = static_cast<NodeId>(parse_uint(node, entry));
        break;
      }
      case FaultKind::kRecover: {
        std::string count = take("count");
        std::string node = take("node");
        GOCAST_ASSERT_MSG(!count.empty() || !node.empty(),
                          "'" << entry << "' needs count= or node=");
        if (!count.empty()) {
          event.count = static_cast<std::size_t>(parse_uint(count, entry));
        }
        if (!node.empty()) {
          event.node = static_cast<NodeId>(parse_uint(node, entry));
        }
        break;
      }
      case FaultKind::kCrashSite: {
        std::string site = take("site");
        GOCAST_ASSERT_MSG(!site.empty(), "'" << entry << "' needs site=");
        event.site = static_cast<std::uint32_t>(parse_uint(site, entry));
        break;
      }
      case FaultKind::kDegrade: {
        std::string mult = take("mult");
        std::string jitter = take("jitter");
        std::string loss = take("loss");
        std::string frac = take("frac");
        if (!mult.empty()) event.latency_multiplier = parse_double(mult, entry);
        if (!jitter.empty()) event.jitter = parse_double(jitter, entry);
        if (!loss.empty()) event.loss = parse_double(loss, entry);
        if (!frac.empty()) event.fraction = parse_double(frac, entry);
        GOCAST_ASSERT_MSG(
            event.latency_multiplier != 1.0 || event.jitter != 0.0 ||
                event.loss != 0.0,
            "'" << entry << "' degrades nothing (set mult=, jitter=, or loss=)");
        break;
      }
      case FaultKind::kLoss: {
        std::string p = take("p");
        GOCAST_ASSERT_MSG(!p.empty(), "'" << entry << "' needs p=");
        event.loss = parse_double(p, entry);
        GOCAST_ASSERT_MSG(event.loss >= 0.0 && event.loss < 1.0,
                          "loss p out of [0,1) in '" << entry << "'");
        break;
      }
      case FaultKind::kMuteForwarder:
      case FaultKind::kDigestLiar:
      case FaultKind::kDegreeLiar:
      case FaultKind::kSlow: {
        std::string frac = take("frac");
        std::string count = take("count");
        std::string node = take("node");
        GOCAST_ASSERT_MSG(
            !frac.empty() || !count.empty() || !node.empty(),
            "'" << entry << "' needs frac=, count=, or node= victims");
        if (!frac.empty()) event.fraction = parse_double(frac, entry);
        if (!count.empty()) {
          event.count = static_cast<std::size_t>(parse_uint(count, entry));
        }
        if (!node.empty()) {
          event.node = static_cast<NodeId>(parse_uint(node, entry));
        }
        if (event.kind == FaultKind::kDegreeLiar) {
          std::string rand = take("rand");
          std::string near = take("near");
          if (!rand.empty()) {
            event.fake_rand_degree =
                static_cast<std::uint16_t>(parse_uint(rand, entry));
          }
          if (!near.empty()) {
            event.fake_near_degree =
                static_cast<std::uint16_t>(parse_uint(near, entry));
          }
        }
        if (event.kind == FaultKind::kSlow) {
          std::string delay = take("delay");
          GOCAST_ASSERT_MSG(!delay.empty(), "'" << entry << "' needs delay=");
          event.delay = parse_double(delay, entry);
          GOCAST_ASSERT_MSG(event.delay > 0.0,
                            "slow delay must be > 0 in '" << entry << "'");
        }
        break;
      }
      case FaultKind::kCure: {
        std::string node = take("node");
        if (!node.empty()) {
          event.node = static_cast<NodeId>(parse_uint(node, entry));
        }
        break;
      }
      case FaultKind::kHeal:
      case FaultKind::kRestore:
        break;
    }
    GOCAST_ASSERT_MSG(args.empty(), "unknown argument '" << args.begin()->first
                                                         << "' in '" << entry
                                                         << "'");
    plan.add(event);
  }
  return plan;
}

std::string FaultPlan::to_spec() const {
  std::ostringstream out;
  out.precision(17);
  bool first_event = true;
  for (const FaultEvent& e : events_) {
    if (!first_event) out << "; ";
    first_event = false;
    out << e.at << ":" << fault_kind_name(e.kind);
    std::vector<std::string> args;
    auto arg = [&](const char* key, auto value) {
      std::ostringstream a;
      a.precision(17);
      a << key << "=" << value;
      args.push_back(a.str());
    };
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kPartition:
        if (e.fraction != 0.0) arg("frac", e.fraction);
        if (e.count != 0) arg("count", e.count);
        if (e.node != kInvalidNode) arg("node", e.node);
        break;
      case FaultKind::kRecover:
        if (e.count != 0) arg("count", e.count);
        if (e.node != kInvalidNode) arg("node", e.node);
        break;
      case FaultKind::kCrashSite:
        arg("site", e.site);
        break;
      case FaultKind::kDegrade:
        if (e.latency_multiplier != 1.0) arg("mult", e.latency_multiplier);
        if (e.jitter != 0.0) arg("jitter", e.jitter);
        if (e.loss != 0.0) arg("loss", e.loss);
        if (e.fraction != 0.0) arg("frac", e.fraction);
        break;
      case FaultKind::kLoss:
        arg("p", e.loss);
        break;
      case FaultKind::kMuteForwarder:
      case FaultKind::kDigestLiar:
      case FaultKind::kDegreeLiar:
      case FaultKind::kSlow:
        if (e.fraction != 0.0) arg("frac", e.fraction);
        if (e.count != 0) arg("count", e.count);
        if (e.node != kInvalidNode) arg("node", e.node);
        if (e.kind == FaultKind::kDegreeLiar) {
          if (e.fake_rand_degree != 0) arg("rand", e.fake_rand_degree);
          if (e.fake_near_degree != 0) arg("near", e.fake_near_degree);
        }
        if (e.kind == FaultKind::kSlow) arg("delay", e.delay);
        break;
      case FaultKind::kCure:
        if (e.node != kInvalidNode) arg("node", e.node);
        break;
      case FaultKind::kHeal:
      case FaultKind::kRestore:
        break;
    }
    for (std::size_t i = 0; i < args.size(); ++i) {
      out << (i == 0 ? ":" : ",") << args[i];
    }
  }
  return out.str();
}

}  // namespace gocast::fault

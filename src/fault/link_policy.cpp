#include "fault/link_policy.h"

#include <algorithm>

#include "common/assert.h"

namespace gocast::fault {

LinkPolicyTable::LinkPolicyTable(std::size_t node_count)
    : groups_(node_count, 0) {}

void LinkPolicyTable::set_group(NodeId node, std::uint32_t group) {
  GOCAST_ASSERT(node < groups_.size());
  if (groups_[node] == 0 && group != 0) ++partitioned_nodes_;
  if (groups_[node] != 0 && group == 0) --partitioned_nodes_;
  groups_[node] = group;
}

std::uint32_t LinkPolicyTable::group(NodeId node) const {
  GOCAST_ASSERT(node < groups_.size());
  return groups_[node];
}

void LinkPolicyTable::heal_partitions() {
  std::fill(groups_.begin(), groups_.end(), 0u);
  partitioned_nodes_ = 0;
}

void LinkPolicyTable::degrade_all(Degradation degradation) {
  GOCAST_ASSERT(degradation.latency_multiplier > 0.0);
  GOCAST_ASSERT(degradation.loss >= 0.0 && degradation.loss < 1.0);
  GOCAST_ASSERT(degradation.jitter >= 0.0);
  global_active_ = true;
  global_ = degradation;
}

void LinkPolicyTable::degrade_node(NodeId node, Degradation degradation) {
  GOCAST_ASSERT(node < groups_.size());
  GOCAST_ASSERT(degradation.latency_multiplier > 0.0);
  GOCAST_ASSERT(degradation.loss >= 0.0 && degradation.loss < 1.0);
  GOCAST_ASSERT(degradation.jitter >= 0.0);
  node_degradations_[node] = degradation;
}

void LinkPolicyTable::restore() {
  global_active_ = false;
  global_ = Degradation{};
  node_degradations_.clear();
}

net::LinkDecision LinkPolicyTable::evaluate(NodeId from, NodeId to) const {
  net::LinkDecision decision;
  if (severed(from, to)) {
    decision.blocked = true;
    return decision;
  }
  if (!global_active_ && node_degradations_.empty()) return decision;

  double pass = 1.0;  // probability the message survives all degradations
  auto apply = [&](const Degradation& d) {
    decision.latency_multiplier =
        std::max(decision.latency_multiplier, d.latency_multiplier);
    decision.jitter = std::max(decision.jitter, d.jitter);
    pass *= 1.0 - d.loss;
  };
  if (global_active_) apply(global_);
  if (auto it = node_degradations_.find(from); it != node_degradations_.end()) {
    apply(it->second);
  }
  if (auto it = node_degradations_.find(to); it != node_degradations_.end()) {
    apply(it->second);
  }
  decision.extra_loss = 1.0 - pass;
  return decision;
}

}  // namespace gocast::fault

#include "harness/args.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "common/assert.h"

namespace gocast::harness {

Args::Args(int argc, char** argv, const std::vector<std::string>& allowed) {
  auto is_allowed = [&allowed](const std::string& name) {
    return std::find(allowed.begin(), allowed.end(), name) != allowed.end();
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      // "--flag value" unless the next token is another flag or missing.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (!is_allowed(name)) {
      std::cerr << "unknown flag --" << name << "\nallowed:";
      for (const auto& a : allowed) std::cerr << " --" << a;
      std::cerr << "\n";
      std::exit(2);
    }
    values_[name] = value;
  }
}

bool Args::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Args::get(const std::string& name, const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double Args::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  GOCAST_ASSERT_MSG(end != it->second.c_str(), "bad number for --" << name);
  return v;
}

long Args::get_int(const std::string& name, long fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  long v = std::strtol(it->second.c_str(), &end, 10);
  GOCAST_ASSERT_MSG(end != it->second.c_str(), "bad integer for --" << name);
  return v;
}

bool Args::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace gocast::harness

// Tiny command-line flag parser for the tools and examples:
// --name=value or --name value; unknown flags are fatal (typos should not
// silently run the wrong experiment).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace gocast::harness {

class Args {
 public:
  /// Parses argv. `allowed` lists every legal flag name (without "--").
  Args(int argc, char** argv, const std::vector<std::string>& allowed);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] long get_int(const std::string& name, long fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace gocast::harness

#include "harness/csv.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/assert.h"

namespace gocast::harness {

namespace {

double sample_curve(
    const std::vector<analysis::DeliveryTracker::CurvePoint>& curve, double x) {
  double fraction = 0.0;
  for (const auto& point : curve) {
    if (point.delay <= x) fraction = point.fraction;
  }
  return fraction;
}

}  // namespace

void write_curve_csv(
    const std::string& path,
    const std::vector<analysis::DeliveryTracker::CurvePoint>& curve) {
  std::ofstream out(path);
  GOCAST_ASSERT_MSG(out.good(), "cannot write " << path);
  out << "delay_seconds,fraction\n";
  for (const auto& point : curve) {
    out << point.delay << "," << point.fraction << "\n";
  }
}

void write_curves_csv(
    const std::string& path, const std::vector<std::string>& labels,
    const std::vector<std::vector<analysis::DeliveryTracker::CurvePoint>>& curves,
    std::size_t points) {
  GOCAST_ASSERT(labels.size() == curves.size());
  GOCAST_ASSERT(points >= 2);
  std::ofstream out(path);
  GOCAST_ASSERT_MSG(out.good(), "cannot write " << path);

  double hi = 0.0;
  for (const auto& curve : curves) {
    if (!curve.empty()) hi = std::max(hi, curve.back().delay);
  }
  out << "delay_seconds";
  for (const auto& label : labels) out << "," << label;
  out << "\n";
  for (std::size_t i = 0; i < points; ++i) {
    double x = hi * static_cast<double>(i) / static_cast<double>(points - 1);
    out << x;
    for (const auto& curve : curves) out << "," << sample_curve(curve, x);
    out << "\n";
  }
}

void append_summary_csv(const std::string& path, const std::string& label,
                        std::size_t nodes, double fail_fraction,
                        const ScenarioResult& result) {
  bool fresh = !std::filesystem::exists(path);
  std::ofstream out(path, std::ios::app);
  GOCAST_ASSERT_MSG(out.good(), "cannot write " << path);
  if (fresh) {
    out << "protocol,nodes,fail_fraction,mean_delay,p50,p90,p99,max_delay,"
           "delivered_fraction,redundancy,pull_retries_exhausted\n";
  }
  const auto& r = result.report;
  out << label << "," << nodes << "," << fail_fraction << "," << r.delay.mean()
      << "," << r.p50 << "," << r.p90 << "," << r.p99 << "," << r.max_delay
      << "," << r.delivered_fraction << "," << result.redundancy() << ","
      << result.pull_retries_exhausted << "\n";
}

}  // namespace gocast::harness

#include "harness/runner.h"

#include <atomic>
#include <exception>
#include <thread>

#include "common/parallel.h"

namespace gocast::harness {

std::size_t default_threads() { return resolve_threads(0); }

Runner::Runner(std::size_t threads)
    : threads_(threads > 0 ? threads : default_threads()) {}

void Runner::dispatch(std::size_t count,
                      const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  const std::size_t workers = std::min(threads_, count);
  if (workers <= 1) {
    // The exact pre-Runner serial path: in index order, on this thread, and
    // a throwing job aborts the loop immediately.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // One exception slot per job (disjoint writes, published by the joins);
  // the scan below rethrows the lowest-indexed failure so the surfaced
  // error does not depend on completion order.
  std::vector<std::exception_ptr> errors(count);
  std::atomic<std::size_t> cursor{0};
  auto work = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(work);
  work();  // the caller participates instead of idling at the join
  for (std::thread& t : pool) t.join();

  for (std::size_t i = 0; i < count; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

std::vector<SweepRun> run_sweep(const SweepSpec& spec, const Runner& runner) {
  std::vector<SweepJob> jobs = spec.jobs();
  std::vector<ScenarioResult> results = runner.run<ScenarioResult>(
      jobs.size(),
      [&jobs](std::size_t i) { return run_scenario(jobs[i].config); });

  std::vector<SweepRun> runs;
  runs.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    runs.push_back(SweepRun{std::move(jobs[i]), std::move(results[i])});
  }
  return runs;
}

}  // namespace gocast::harness

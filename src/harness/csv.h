// CSV export for experiment results, so curves can be re-plotted outside
// the terminal (gnuplot / matplotlib / spreadsheets).
#pragma once

#include <string>
#include <vector>

#include "analysis/delivery_tracker.h"
#include "harness/scenario.h"

namespace gocast::harness {

/// Writes one CDF curve as "delay_seconds,fraction" rows.
void write_curve_csv(const std::string& path,
                     const std::vector<analysis::DeliveryTracker::CurvePoint>& curve);

/// Writes a labeled family of curves on a shared grid:
/// "delay_seconds,<label1>,<label2>,..." — the format the paper's Fig 3
/// plots want. Curves are step-sampled onto `points` grid positions spanning
/// the slowest curve.
void write_curves_csv(const std::string& path,
                      const std::vector<std::string>& labels,
                      const std::vector<std::vector<analysis::DeliveryTracker::CurvePoint>>& curves,
                      std::size_t points = 64);

/// Appends a scenario's summary as one CSV row (writing a header first when
/// the file is new): protocol,nodes,failures,mean,p50,p90,p99,max,delivered,
/// redundancy,pull_retries_exhausted.
void append_summary_csv(const std::string& path, const std::string& label,
                        std::size_t nodes, double fail_fraction,
                        const ScenarioResult& result);

}  // namespace gocast::harness

#include "harness/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/assert.h"

namespace gocast::harness {

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_ms(double seconds, int precision) {
  return fmt(seconds * 1000.0, precision) + " ms";
}

std::string fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  GOCAST_ASSERT(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  GOCAST_ASSERT_MSG(cells.size() == headers_.size(),
                    "row has " << cells.size() << " cells, want "
                               << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void print_banner(std::ostream& os, const std::string& experiment,
                  const std::string& paper_claim) {
  os << "\n==== " << experiment << " ====\n";
  if (!paper_claim.empty()) os << "paper: " << paper_claim << "\n\n";
}

void print_claim(std::ostream& os, const std::string& what,
                 const std::string& paper, const std::string& measured) {
  os << "  " << what << ": paper=" << paper << " measured=" << measured << "\n";
}

}  // namespace gocast::harness

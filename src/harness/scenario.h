// Experiment harness: builds a system for any of the five evaluated
// protocols, runs the paper's phases (warmup → optional failure → message
// injection → drain), and returns delay/traffic reports.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analysis/delivery_tracker.h"
#include "common/types.h"
#include "gocast/params.h"
#include "net/latency_model.h"
#include "net/traffic_stats.h"

namespace gocast::harness {

/// The five protocols of the paper's Fig 3.
enum class Protocol {
  kGoCast,            ///< full protocol: tree + neighbor gossip
  kProximityOverlay,  ///< GoCast overlay, gossip-only (no tree)
  kRandomOverlay,     ///< 6 random neighbors, gossip-only
  kPushGossip,        ///< Bimodal-style push gossip, fanout F
  kNoWaitGossip,      ///< push gossip with zero gossip period
};

[[nodiscard]] const char* protocol_name(Protocol protocol);

struct ScenarioConfig {
  Protocol protocol = Protocol::kGoCast;
  std::size_t node_count = 1024;
  std::uint64_t seed = 1;

  /// Overlay/tree adaptation time before any message is injected (the paper
  /// uses 500 s; the benches default to less — convergence is mostly done
  /// by 100 s, see Fig 5b).
  SimTime warmup = 300.0;

  std::size_t message_count = 200;
  double message_rate = 100.0;  ///< messages per second, random sources
  std::size_t payload_bytes = 1024;

  /// Fraction of nodes killed right after warmup (0 = no failures).
  double fail_fraction = 0.0;
  /// Fig 3(b): freeze all repair after the failure.
  bool freeze_after_failure = true;
  /// Settle time between failure and first injection.
  SimTime post_failure_settle = 0.5;

  /// Time to keep simulating after the last injection.
  SimTime drain = 30.0;

  /// GoCast pull-delay threshold f (seconds).
  SimTime pull_delay_threshold = 0.0;

  /// Baseline gossip fanout F.
  int fanout = 5;

  /// Overlay targets (GoCast-family protocols). kRandomOverlay overrides
  /// these to 6 random / 0 nearby internally.
  int target_rand_degree = 1;
  int target_near_degree = 5;

  /// Shared latency model (null → synthetic King from the seed). Passing
  /// one model across runs makes protocol comparisons apples-to-apples and
  /// skips regeneration.
  std::shared_ptr<const net::LatencyModel> latency;

  /// Collect per site-pair traffic for link-stress analysis (TXT4).
  bool record_site_pairs = false;

  /// Sharded conservative-PDES execution (DESIGN.md §11): run the system on
  /// this many engines synchronized in lookahead windows. 1 (the default) is
  /// the classic serial path. GoCast-family, single-group only; unsupported
  /// combinations (multi-group, invariant checking, site-pair recording,
  /// baseline protocols) warn and fall back to 1. Results are byte-identical
  /// at any shard count.
  std::size_t shards = 1;

  /// Scripted fault timeline in the compact spec grammar (see
  /// fault::FaultPlan::parse); times are absolute sim times, so events meant
  /// for the injection phase go after `warmup`. Empty = no faults.
  /// GoCast-family protocols only.
  std::string fault_spec;

  /// Run the fault::InvariantChecker alongside the scenario and report its
  /// violations in the result. GoCast-family protocols only.
  bool check_invariants = false;

  /// Protocol-level defenses against adversarial neighbors (DESIGN.md §9).
  /// All off by default; GoCast-family protocols only.
  core::DefenseParams defense;

  /// Global per-message loss probability active for the whole run (0 = no
  /// loss). Unlike a `loss` fault event this applies from t=0.
  double loss_probability = 0.0;

  /// Byzantine runs: source traffic at honest nodes only and compute the
  /// delivery report over honest nodes only. The service guarantee under
  /// attack concerns honest participants — an ostracized adversary that can
  /// neither multicast nor receive is the defense working, not a delivery
  /// failure. No effect unless the fault spec creates adversaries.
  bool exclude_adversaries = false;

  /// When > 0: sample adversary_free_fraction at this absolute sim time
  /// (typically the end of the traffic window) instead of at the end of the
  /// run. Eviction coverage is only meaningful while traffic flows — during
  /// a silent drain there is no evidence against a re-connecting adversary,
  /// so an end-of-run snapshot understates what the defenses achieved.
  SimTime coverage_probe_at = 0.0;

  /// Multi-group topology in the GroupTopology spec grammar (e.g.
  /// "groups=8;zipf=0.9;pop=0.6;corr=0.25;churn=1.0" — see
  /// core::GroupTopology::parse). Empty or groups=1 keeps the run
  /// single-group and byte-identical to the pre-multigroup harness. Each
  /// injected message targets a group drawn Zipf-style by popularity, from a
  /// random alive member of that group. GoCast-family protocols only.
  std::string group_spec;

  /// Multi-group runs: multiplex co-subscribed groups' digests into one
  /// grouped gossip per period (the §10 optimization). False sends one
  /// gossip per group per period — the baseline ext_multigroup compares
  /// against. Ignored for single-group runs.
  bool multiplex_gossip = true;
};

struct ScenarioResult {
  analysis::DeliveryTracker::Report report;
  std::vector<analysis::DeliveryTracker::CurvePoint> curve;
  std::uint64_t deliveries = 0;   ///< first-time message receptions
  std::uint64_t duplicates = 0;   ///< redundant payload receptions
  net::TrafficStats traffic;      ///< full traffic accounting
  std::size_t alive_nodes = 0;
  SimTime sim_end = 0.0;

  /// DeliveryTracker::checksum() over the recorded deliveries — the
  /// shard-invariance gates compare this across shard counts.
  std::uint64_t delivery_checksum = 0;

  /// Fault-injection results (empty unless fault_spec / check_invariants
  /// were set): the injector's deterministic log and the checker's findings.
  /// `expected_violations` are those the checker attributed to active
  /// adversarial victims — attack damage, not protocol failures.
  std::vector<std::string> fault_log;
  std::vector<std::string> invariant_violations;
  std::vector<std::string> expected_violations;

  /// Pull-recovery accounting (GoCast-family): total pulls issued, pulls
  /// that burned their whole retry budget without an answer, and spot-check
  /// pulls issued by the audit defense.
  std::uint64_t pulls_sent = 0;
  std::uint64_t pull_retries_exhausted = 0;
  std::uint64_t audits_sent = 0;

  /// Suspicion-defense outcomes (zero unless defenses were on): eviction
  /// count, per-eviction sim times (time-to-evict analysis), and the
  /// fraction of alive honest nodes whose neighbor set holds no active
  /// adversary at the end of the run (1.0 when no adversaries exist).
  std::uint64_t suspects_evicted = 0;
  /// Of those, evictions whose target really was an adversary (the rest are
  /// false positives — honest neighbors caught by noise).
  std::uint64_t adversary_evictions = 0;
  std::vector<SimTime> eviction_times;
  double adversary_free_fraction = 1.0;

  /// Per-group delivery stats (multi-group runs only; group 0 first). The
  /// aggregate `report`/`curve` above cover group 0 — the one group every
  /// node subscribes to — so they stay comparable with single-group runs.
  struct GroupStats {
    GroupId group = kDefaultGroup;
    std::size_t members = 0;  ///< live subscribers at the end of the run
    std::size_t messages = 0;
    std::uint64_t deliveries = 0;
    double delivered_fraction = 0.0;
    double mean_delay = 0.0;
  };
  std::vector<GroupStats> group_stats;

  /// Total gossip messages sent across all nodes (per-group gossips plus
  /// multiplexed grouped gossips). The ext_multigroup bench's headline
  /// metric: with multiplexing this stays O(fanout) per node per period
  /// regardless of group count. Zero for non-GoCast-family protocols.
  std::uint64_t gossip_messages = 0;

  /// Mean receptions of a message per delivery: 1.0 is perfect (TXT6).
  [[nodiscard]] double redundancy() const {
    return deliveries == 0
               ? 0.0
               : 1.0 + static_cast<double>(duplicates) /
                           static_cast<double>(deliveries);
  }
};

[[nodiscard]] ScenarioResult run_scenario(const ScenarioConfig& config);

}  // namespace gocast::harness

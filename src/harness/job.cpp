#include "harness/job.h"

#include "common/rng.h"

namespace gocast::harness {

std::uint64_t derive_job_seed(std::uint64_t base_seed, std::size_t index) {
  // Same derivation family as Rng::fork(index): perturb the base material by
  // a Weyl step of the index, then mix through SplitMix64.
  std::uint64_t s =
      base_seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1);
  return splitmix64(s);
}

std::vector<SweepJob> SweepSpec::jobs() const {
  std::vector<Protocol> protocol_axis =
      protocols.empty() ? std::vector<Protocol>{base.protocol} : protocols;
  std::vector<std::size_t> node_axis =
      node_counts.empty() ? std::vector<std::size_t>{base.node_count}
                          : node_counts;

  std::vector<std::uint64_t> seed_axis = seeds;
  if (seed_axis.empty()) {
    if (replications > 0) {
      seed_axis.reserve(replications);
      for (std::size_t r = 0; r < replications; ++r) {
        seed_axis.push_back(derive_job_seed(base.seed, r));
      }
    } else {
      seed_axis.push_back(base.seed);
    }
  }

  std::vector<SweepJob> out;
  out.reserve(protocol_axis.size() * node_axis.size() * seed_axis.size() *
              (overrides.empty() ? 1 : overrides.size()));
  for (Protocol protocol : protocol_axis) {
    for (std::size_t nodes : node_axis) {
      for (std::uint64_t seed : seed_axis) {
        auto emit = [&](const Override* ov) {
          SweepJob job;
          job.index = out.size();
          job.config = base;
          job.config.protocol = protocol;
          job.config.node_count = nodes;
          job.config.seed = seed;
          if (ov != nullptr) {
            job.label = ov->label;
            ov->apply(job.config);
          }
          out.push_back(std::move(job));
        };
        if (overrides.empty()) {
          emit(nullptr);
        } else {
          for (const Override& ov : overrides) emit(&ov);
        }
      }
    }
  }
  return out;
}

}  // namespace gocast::harness

// Text tables for the bench harness: every bench prints the paper's value
// next to the measured one.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace gocast::harness {

/// Fixed formatting helpers.
[[nodiscard]] std::string fmt(double value, int precision = 3);
[[nodiscard]] std::string fmt_ms(double seconds, int precision = 1);
[[nodiscard]] std::string fmt_pct(double fraction, int precision = 1);

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner: the experiment id and what the paper reports.
void print_banner(std::ostream& os, const std::string& experiment,
                  const std::string& paper_claim);

/// One paper-vs-measured line.
void print_claim(std::ostream& os, const std::string& what,
                 const std::string& paper, const std::string& measured);

}  // namespace gocast::harness

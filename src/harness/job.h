// Declarative sweep jobs for the parallel experiment runner.
//
// A SweepSpec is the cross product of protocols x node counts x seeds x
// config overrides over a base ScenarioConfig. jobs() materializes that
// product into a flat, fully-ordered job list — the "spec order" every
// result merge uses — so a sweep's output is a pure function of the spec,
// never of worker scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/scenario.h"

namespace gocast::harness {

/// Deterministic per-job seed: a SplitMix64-style mix of the base seed and
/// the job/replication index. Depends only on (base_seed, index) — never on
/// completion order or thread count — and is bijective-ish enough that
/// adjacent indices land on well-separated generator states.
[[nodiscard]] std::uint64_t derive_job_seed(std::uint64_t base_seed,
                                            std::size_t index);

/// One materialized cell of a sweep, in spec order.
struct SweepJob {
  std::size_t index = 0;        ///< position in spec order
  std::string label;            ///< override label ("" for the identity)
  ScenarioConfig config;        ///< fully built per-job config
};

/// The cross product driving a sweep. Axes left empty collapse to the base
/// config's value, so a spec names only the dimensions it varies. Iteration
/// order (outermost to innermost): protocols, node_counts, seeds, overrides —
/// matching the nested loops the serial benches used to write.
struct SweepSpec {
  /// Copied into every job, then specialized by the axes below.
  ScenarioConfig base;

  std::vector<Protocol> protocols;        ///< empty -> {base.protocol}
  std::vector<std::size_t> node_counts;   ///< empty -> {base.node_count}

  /// Explicit per-cell seeds. Empty: when `replications` > 0 the axis becomes
  /// derive_job_seed(base.seed, r) for r in [0, replications) — independent
  /// replications that still compare the same seed across protocols/sizes —
  /// otherwise it collapses to {base.seed}.
  std::vector<std::uint64_t> seeds;
  std::size_t replications = 0;

  /// Config-override axis: each entry is applied to its cell's config after
  /// the other axes (so an override can touch anything, including the seed).
  struct Override {
    std::string label;
    std::function<void(ScenarioConfig&)> apply;
  };
  std::vector<Override> overrides;        ///< empty -> one identity override

  /// Materializes the cross product in spec order.
  [[nodiscard]] std::vector<SweepJob> jobs() const;
};

/// One finished cell: the job and its scenario result, still in spec order.
struct SweepRun {
  SweepJob job;
  ScenarioResult result;
};

}  // namespace gocast::harness

#include "harness/scenario.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <vector>

#include "baselines/push_gossip.h"
#include "common/assert.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "fault/fault_injector.h"
#include "fault/invariant_checker.h"
#include "gocast/system.h"

namespace gocast::harness {

const char* protocol_name(Protocol protocol) {
  switch (protocol) {
    case Protocol::kGoCast: return "GoCast";
    case Protocol::kProximityOverlay: return "proximity overlay";
    case Protocol::kRandomOverlay: return "random overlay";
    case Protocol::kPushGossip: return "gossip";
    case Protocol::kNoWaitGossip: return "no-wait gossip";
  }
  return "?";
}

namespace {

constexpr std::size_t kCurvePoints = 41;

/// Drives the shared run phases against either system facade. When
/// `excluded_sources` is non-null, traffic injection re-rolls sources that
/// appear in that (sorted) list — it may fill in mid-run, so membership is
/// checked at each injection's fire time.
template <typename SystemT>
ScenarioResult drive(SystemT& system, const ScenarioConfig& config,
                     analysis::DeliveryTracker& tracker,
                     const std::vector<NodeId>* excluded_sources = nullptr) {
  // Sharded runs (DESIGN.md §11) keep one tracker per shard so each hook has
  // a single writer — its shard's window thread — and merge into the caller's
  // tracker at the end. Unsharded runs install the caller's tracker directly.
  std::vector<std::unique_ptr<analysis::DeliveryTracker>> shard_trackers;
  bool sharded = false;
  if constexpr (requires { system.sharded(); }) {
    sharded = system.sharded();
    if (sharded) {
      shard_trackers.reserve(system.shard_count());
      for (std::size_t s = 0; s < system.shard_count(); ++s) {
        shard_trackers.push_back(
            std::make_unique<analysis::DeliveryTracker>(config.node_count));
      }
      for (NodeId id = 0; id < config.node_count; ++id) {
        system.node(id).set_delivery_hook(
            shard_trackers[system.network().shard_of(id)]->hook());
      }
    }
  }
  if (!sharded) system.set_delivery_hook(tracker.hook());
  if (config.loss_probability > 0.0) {
    system.network().set_loss_probability(config.loss_probability);
  }
  system.start();
  system.run_for(config.warmup);

  if (config.fail_fraction > 0.0) {
    system.fail_random_fraction(config.fail_fraction);
    if constexpr (requires { system.freeze_all(); }) {
      if (config.freeze_after_failure) system.freeze_all();
    }
    system.run_for(config.post_failure_settle);
  }

  tracker.set_recording(true);
  for (auto& shard_tracker : shard_trackers) shard_tracker->set_recording(true);
  // Link-stress comparisons measure the message workload, not warmup
  // control traffic: restart site-pair accounting at injection time.
  if (config.record_site_pairs) system.network().traffic().clear_site_pairs();
  SimTime inject_start = system.now();
  Rng source_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  // Batched admission: the injection timeline is known up front, so the
  // whole schedule enters the heap in one pass (identical firing order —
  // see Engine::schedule_batch).
  std::vector<sim::Engine::BatchEvent> inject;
  inject.reserve(config.message_count);
  for (std::size_t i = 0; i < config.message_count; ++i) {
    SimTime at = inject_start + static_cast<double>(i) / config.message_rate;
    inject.push_back({at, [&system, &config, excluded_sources] {
                        NodeId source = system.random_alive_node();
                        if (excluded_sources != nullptr) {
                          for (int guard = 0;
                               guard < 128 &&
                               std::binary_search(excluded_sources->begin(),
                                                  excluded_sources->end(),
                                                  source);
                               ++guard) {
                            source = system.random_alive_node();
                          }
                        }
                        system.node(source).multicast(config.payload_bytes);
                      }});
  }
  // Injection is a simulation-global action: sharded systems admit it at
  // window barriers (single-threaded, exact times); unsharded systems get the
  // classic schedule_batch admission byte-for-byte.
  if constexpr (requires { system.schedule_control_batch(inject); }) {
    system.schedule_control_batch(inject);
  } else {
    system.engine().schedule_batch(inject);
  }
  SimTime inject_end = inject_start + static_cast<double>(config.message_count) /
                                          config.message_rate;
  system.run_until(inject_end + config.drain);

  // Fold per-shard deliveries back into the caller's tracker (node rows are
  // disjoint by construction). The run is over, so no hook fires again.
  for (auto& shard_tracker : shard_trackers) {
    tracker.merge_from(*shard_tracker);
  }

  ScenarioResult result;
  result.delivery_checksum = tracker.checksum();
  std::vector<NodeId> alive = system.alive_nodes();
  result.report = tracker.report(alive);
  result.curve = tracker.pair_delay_curve(alive, kCurvePoints);
  result.alive_nodes = alive.size();
  result.sim_end = system.now();
  result.traffic = system.network().traffic();
  for (NodeId id : alive) {
    result.deliveries += system.node(id).deliveries_count();
    result.duplicates += system.node(id).duplicates_count();
    if constexpr (requires(SystemT& s) { s.node(NodeId{0}).dissemination(); }) {
      const auto& diss = system.node(id).dissemination();
      result.pulls_sent += diss.pulls_sent();
      result.pull_retries_exhausted += diss.pull_retries_exhausted();
      result.audits_sent += diss.audits_sent();
      result.suspects_evicted += diss.evictions().size();
      for (const auto& eviction : diss.evictions()) {
        result.eviction_times.push_back(eviction.at);
      }
      result.gossip_messages += system.node(id).gossip_messages_sent();
    }
  }
  return result;
}

/// Multi-group variant of drive(): per-group delivery trackers, Zipf group
/// popularity for injected traffic, and optional group join/leave churn.
/// GoCast-family only (needs System's group plumbing). `trackers` is filled
/// by this function and owned by the caller so the hooks installed on the
/// nodes stay valid while the caller reads results.
ScenarioResult drive_multigroup(
    core::System& system, const ScenarioConfig& config,
    const core::GroupTopology& topology,
    std::vector<std::unique_ptr<analysis::DeliveryTracker>>& trackers) {
  const std::size_t group_count = topology.group_count;
  trackers.reserve(group_count);
  for (std::size_t g = 0; g < group_count; ++g) {
    trackers.push_back(
        std::make_unique<analysis::DeliveryTracker>(config.node_count));
  }
  system.set_delivery_hook(
      [&trackers, group_count](const core::DeliveryEvent& event) {
        if (event.group < group_count) trackers[event.group]->on_delivery(event);
      });
  if (config.loss_probability > 0.0) {
    system.network().set_loss_probability(config.loss_probability);
  }
  system.start();
  system.run_for(config.warmup);
  for (auto& tracker : trackers) tracker->set_recording(true);

  const SimTime inject_start = system.now();
  const double window =
      static_cast<double>(config.message_count) / config.message_rate;
  std::vector<sim::Engine::BatchEvent> events;

  // Group churn: topology.churn_rate join/leave events per second during the
  // traffic window, alternating by coin flip, never draining a group below
  // three members (an empty group has no delivery semantics to measure).
  Rng churn_rng = Rng(config.seed).fork("group-churn");
  if (topology.churn_rate > 0.0 && group_count > 1) {
    const std::size_t churn_events =
        static_cast<std::size_t>(topology.churn_rate * window);
    events.reserve(config.message_count + churn_events);
    for (std::size_t i = 0; i < churn_events; ++i) {
      SimTime at = inject_start +
                   (static_cast<double>(i) + 0.5) / topology.churn_rate;
      events.push_back({at, [&system, &churn_rng, group_count] {
        const auto& dir = system.directory();
        GroupId g = static_cast<GroupId>(
            1 + churn_rng.next_below(group_count - 1));
        const std::vector<NodeId>& members = dir->members(g);
        const bool leave = churn_rng.next_below(2) == 0 && members.size() > 3;
        if (leave) {
          NodeId victim = members[churn_rng.next_below(members.size())];
          system.group_leave(victim, g);
        } else {
          for (int guard = 0; guard < 64; ++guard) {
            NodeId candidate = system.random_alive_node();
            if (!dir->subscribed(candidate, g)) {
              system.group_join(candidate, g);
              break;
            }
          }
        }
      }});
    }
  }

  // Traffic: each message targets a group drawn by Zipf popularity (rank 0 —
  // the most popular — is group 0) and originates at a random alive member.
  common::ZipfSampler popularity(group_count, topology.popularity_exponent,
                                 config.seed ^ 0xa24baed4963ee407ULL);
  Rng source_rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  for (std::size_t i = 0; i < config.message_count; ++i) {
    SimTime at = inject_start + static_cast<double>(i) / config.message_rate;
    events.push_back({at, [&system, &config, &popularity, &source_rng] {
      GroupId g = static_cast<GroupId>(popularity.next());
      NodeId source = kInvalidNode;
      if (g == kDefaultGroup) {
        source = system.random_alive_node();
      } else {
        const std::vector<NodeId>& members = system.directory()->members(g);
        for (int guard = 0; guard < 128 && !members.empty(); ++guard) {
          NodeId candidate = members[source_rng.next_below(members.size())];
          if (system.network().alive(candidate)) {
            source = candidate;
            break;
          }
        }
        if (source == kInvalidNode) {
          // Group fully dead/drained: fall back to the universal group so
          // the injection schedule keeps its length.
          g = kDefaultGroup;
          source = system.random_alive_node();
        }
      }
      system.node(source).multicast_in(g, config.payload_bytes);
    }});
  }
  system.engine().schedule_batch(events);
  system.run_until(inject_start + window + config.drain);

  ScenarioResult result;
  const std::vector<NodeId> alive = system.alive_nodes();
  // Group 0 spans every node, so its report keeps the single-group meaning.
  result.report = trackers[0]->report(alive);
  result.curve = trackers[0]->pair_delay_curve(alive, kCurvePoints);
  result.alive_nodes = alive.size();
  result.sim_end = system.now();
  result.traffic = system.network().traffic();
  for (NodeId id : alive) {
    result.deliveries += system.node(id).deliveries_count();
    result.duplicates += system.node(id).duplicates_count();
    const auto& diss = system.node(id).dissemination();
    result.pulls_sent += diss.pulls_sent();
    result.pull_retries_exhausted += diss.pull_retries_exhausted();
    result.audits_sent += diss.audits_sent();
    result.gossip_messages += system.node(id).gossip_messages_sent();
  }
  result.group_stats.reserve(group_count);
  for (std::size_t g = 0; g < group_count; ++g) {
    ScenarioResult::GroupStats stats;
    stats.group = static_cast<GroupId>(g);
    std::vector<NodeId> live_members;
    if (g == 0) {
      live_members = alive;
    } else {
      for (NodeId m : system.directory()->members(static_cast<GroupId>(g))) {
        if (system.network().alive(m)) live_members.push_back(m);
      }
    }
    stats.members = live_members.size();
    const auto report = trackers[g]->report(live_members);
    stats.messages = report.messages;
    stats.deliveries = trackers[g]->delivery_count();
    stats.delivered_fraction = report.delivered_fraction;
    stats.mean_delay = report.delay.mean();
    result.group_stats.push_back(stats);
  }
  return result;
}

ScenarioResult run_gocast_family(const ScenarioConfig& config) {
  core::SystemConfig sys;
  sys.node_count = config.node_count;
  sys.seed = config.seed;
  sys.latency = config.latency;
  sys.net.record_site_pairs = config.record_site_pairs;

  core::GoCastConfig& node = sys.node;
  node.dissemination.payload_bytes = config.payload_bytes;
  node.dissemination.pull_delay_threshold = config.pull_delay_threshold;
  node.defense = config.defense;

  switch (config.protocol) {
    case Protocol::kGoCast:
      node.overlay.target_rand_degree = config.target_rand_degree;
      node.overlay.target_near_degree = config.target_near_degree;
      break;
    case Protocol::kProximityOverlay:
      node.overlay.target_rand_degree = config.target_rand_degree;
      node.overlay.target_near_degree = config.target_near_degree;
      node.dissemination.use_tree = false;
      break;
    case Protocol::kRandomOverlay:
      node.overlay.target_rand_degree =
          config.target_rand_degree + config.target_near_degree;
      node.overlay.target_near_degree = 0;
      node.overlay.maintain_nearby = false;
      node.dissemination.use_tree = false;
      break;
    default:
      GOCAST_ASSERT_MSG(false, "not a GoCast-family protocol");
  }
  sys.bootstrap_links_per_node =
      static_cast<std::size_t>(node.overlay.target_degree() / 2);

  // Multi-group runs branch to their own driver: per-group trackers, Zipf
  // group popularity, group churn. An empty/singleton group_spec leaves sys
  // untouched and the single-group path byte-identical.
  core::GroupTopology topology;
  if (!config.group_spec.empty()) {
    topology = core::GroupTopology::parse(config.group_spec);
  }

  // Sharded-PDES gating: combinations the window protocol does not support
  // fall back to the serial engine with a warning rather than changing
  // semantics (System applies further model-level fallbacks — see
  // System::init_sharding).
  std::size_t shards = config.shards;
  if (shards > 1 && topology.group_count > 1) {
    GOCAST_WARN("sharded run requested with multi-group topology; "
                "falling back to 1 shard");
    shards = 1;
  }
  if (shards > 1 && config.check_invariants) {
    GOCAST_WARN("sharded run requested with invariant checking (global "
                "engine probes); falling back to 1 shard");
    shards = 1;
  }
  if (shards > 1 && config.record_site_pairs) {
    GOCAST_WARN("sharded run requested with site-pair recording (shared "
                "traffic map); falling back to 1 shard");
    shards = 1;
  }
  sys.shard_count = shards;

  if (topology.group_count > 1) {
    GOCAST_ASSERT_MSG(config.fault_spec.empty() && !config.check_invariants &&
                          config.fail_fraction == 0.0,
                      "multi-group runs do not compose with fault injection");
    sys.groups = topology;
    sys.node.multiplex_gossip = config.multiplex_gossip;
    core::System system(sys);
    std::vector<std::unique_ptr<analysis::DeliveryTracker>> trackers;
    return drive_multigroup(system, config, topology, trackers);
  }

  core::System system(sys);

  // Scripted faults + invariant auditing ride on the engine next to the
  // normal phases; the injector/checker must outlive drive().
  std::optional<fault::FaultInjector> injector;
  std::optional<fault::InvariantChecker> checker;
  if (config.check_invariants) {
    checker.emplace(system);
    checker->start();
  }
  if (!config.fault_spec.empty()) {
    injector.emplace(system, fault::FaultPlan::parse(config.fault_spec),
                     Rng(config.seed).fork("faults"));
    if (checker.has_value()) injector->set_invariant_checker(&*checker);
    injector->arm();
  }

  // Eviction coverage: how many honest nodes have no active adversary left
  // in their neighbor set — sampled mid-run at coverage_probe_at when set,
  // otherwise at the end of the run.
  auto coverage_now = [&]() -> double {
    const std::vector<NodeId>& adversaries = injector->adversaries();
    auto is_adversary = [&adversaries](NodeId id) {
      return std::binary_search(adversaries.begin(), adversaries.end(), id);
    };
    std::size_t honest = 0;
    std::size_t clean = 0;
    for (NodeId id : system.alive_nodes()) {
      if (is_adversary(id)) continue;
      ++honest;
      bool has_adversary_neighbor = false;
      for (NodeId peer : system.node(id).overlay().neighbor_ids()) {
        if (is_adversary(peer)) {
          has_adversary_neighbor = true;
          break;
        }
      }
      if (!has_adversary_neighbor) ++clean;
    }
    return honest == 0
               ? 1.0
               : static_cast<double>(clean) / static_cast<double>(honest);
  };
  std::optional<double> probed_coverage;
  if (config.coverage_probe_at > 0.0 && injector.has_value()) {
    system.schedule_control(config.coverage_probe_at, [&] {
      if (!injector->adversaries().empty()) probed_coverage = coverage_now();
    });
  }

  analysis::DeliveryTracker tracker(config.node_count);
  const std::vector<NodeId>* excluded_sources =
      config.exclude_adversaries && injector.has_value()
          ? &injector->adversaries()
          : nullptr;
  ScenarioResult result = drive(system, config, tracker, excluded_sources);
  if (config.exclude_adversaries && injector.has_value() &&
      !injector->adversaries().empty()) {
    // Honest-participant report: drop adversaries from the receiver set too.
    const std::vector<NodeId>& adversaries = injector->adversaries();
    std::vector<NodeId> honest_alive;
    for (NodeId id : system.alive_nodes()) {
      if (!std::binary_search(adversaries.begin(), adversaries.end(), id)) {
        honest_alive.push_back(id);
      }
    }
    result.report = tracker.report(honest_alive);
    result.curve = tracker.pair_delay_curve(honest_alive, kCurvePoints);
  }
  if (injector.has_value()) result.fault_log = injector->log();
  if (checker.has_value()) {
    for (const fault::InvariantViolation& v : checker->violations()) {
      std::ostringstream line;
      line << "t=" << v.at << " " << v.what;
      result.invariant_violations.push_back(line.str());
    }
    for (const fault::InvariantViolation& v : checker->expected_violations()) {
      std::ostringstream line;
      line << "t=" << v.at << " " << v.what;
      result.expected_violations.push_back(line.str());
    }
  }
  if (injector.has_value() && !injector->adversaries().empty()) {
    result.adversary_free_fraction =
        probed_coverage.has_value() ? *probed_coverage : coverage_now();
    const std::vector<NodeId>& adversaries = injector->adversaries();
    for (NodeId id : system.alive_nodes()) {
      for (const auto& eviction : system.node(id).dissemination().evictions()) {
        if (std::binary_search(adversaries.begin(), adversaries.end(),
                               eviction.peer)) {
          ++result.adversary_evictions;
        }
      }
    }
  }
  return result;
}

ScenarioResult run_push_gossip(const ScenarioConfig& config) {
  if (config.shards > 1) {
    GOCAST_WARN("sharded runs are GoCast-family only; gossip baseline "
                "runs on the serial engine");
  }
  baselines::PushGossipSystemConfig sys;
  sys.node_count = config.node_count;
  sys.seed = config.seed;
  sys.latency = config.latency;
  sys.net.record_site_pairs = config.record_site_pairs;
  sys.node.fanout = config.fanout;
  sys.node.no_wait = config.protocol == Protocol::kNoWaitGossip;
  sys.node.payload_bytes = config.payload_bytes;

  baselines::PushGossipSystem system(sys);
  analysis::DeliveryTracker tracker(config.node_count);
  return drive(system, config, tracker);
}

}  // namespace

ScenarioResult run_scenario(const ScenarioConfig& config) {
  GOCAST_ASSERT(config.node_count >= 8);
  GOCAST_ASSERT(config.message_rate > 0.0);
  GOCAST_ASSERT_MSG(
      (config.fault_spec.empty() && !config.check_invariants) ||
          config.protocol == Protocol::kGoCast ||
          config.protocol == Protocol::kProximityOverlay ||
          config.protocol == Protocol::kRandomOverlay,
      "fault injection / invariant checking require a GoCast-family protocol");
  switch (config.protocol) {
    case Protocol::kGoCast:
    case Protocol::kProximityOverlay:
    case Protocol::kRandomOverlay:
      return run_gocast_family(config);
    case Protocol::kPushGossip:
    case Protocol::kNoWaitGossip:
      return run_push_gossip(config);
  }
  GOCAST_ASSERT_MSG(false, "unknown protocol");
  return {};
}

}  // namespace gocast::harness

// Parallel scenario runner: shards independent replications across a
// fixed-size worker pool with deterministic merged output.
//
// Determinism contract (see DESIGN.md §8):
//  - each job builds its own Engine/Network/System and runs in isolation —
//    PR 3's runtime seam guarantees no shared mutable state between runs;
//  - per-job seeds derive from the job *index* (derive_job_seed), never from
//    completion order;
//  - results land in per-index slots and are returned in spec order, so
//    downstream CSV/JSON output is byte-identical at any thread count;
//  - `threads == 1` runs every job inline on the caller's thread in index
//    order — exactly the serial path the benches had before the Runner.
//
// Exceptions: a failing job never takes down the pool. In the threaded path
// every job still runs; after the join the exception of the lowest-indexed
// failing job is rethrown (deterministic). In the inline path the exception
// propagates immediately, like the historical serial loop.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "harness/job.h"

namespace gocast::harness {

/// Worker count used for "auto" (0): GOCAST_THREADS when set and positive,
/// else std::thread::hardware_concurrency(), else 1.
[[nodiscard]] std::size_t default_threads();

class Runner {
 public:
  /// threads == 0 means default_threads(). Benches pass their --threads flag
  /// straight through (0 when absent).
  explicit Runner(std::size_t threads = 0);

  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Runs job(i) for every i in [0, count) across the pool and returns the
  /// results indexed by i. `job` must be safe to call concurrently for
  /// distinct indices and T must be default-constructible and movable.
  template <class T>
  [[nodiscard]] std::vector<T> run(
      std::size_t count, const std::function<T(std::size_t)>& job) const {
    std::vector<T> results(count);
    dispatch(count, [&](std::size_t i) { results[i] = job(i); });
    return results;
  }

 private:
  /// Executes fn(i) for every index exactly once (inline when threads_ == 1,
  /// else across spawn-at-call/join-before-return workers pulling indices
  /// off a shared atomic cursor) and propagates job failures as documented
  /// above.
  void dispatch(std::size_t count,
                const std::function<void(std::size_t)>& fn) const;

  std::size_t threads_;
};

/// Materializes the spec, runs every job through the runner, and merges the
/// results in spec order.
[[nodiscard]] std::vector<SweepRun> run_sweep(const SweepSpec& spec,
                                              const Runner& runner);

}  // namespace gocast::harness

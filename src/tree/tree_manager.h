// The efficient tree embedded in the overlay (paper §2.3).
//
// The tree conceptually has a root; every 15 seconds the root floods a
// heartbeat over every overlay link. Heartbeats carry cumulative latency and
// are re-forwarded only on improvement (distance-vector relaxation), so each
// node's parent lies on a shortest latency path to the root and tree links
// are always overlay links. Parent choices are registered with ChildJoin /
// ChildLeave so both ends treat the link as a tree link. If the root fails,
// one of its overlay neighbors takes over (elected by heartbeat-timeout plus
// deterministic epoch ordering).
//
// Template over a runtime context (see runtime/context.h); the TreeManager
// alias binds the simulator backend. Bodies live in tree_manager.cpp with
// explicit instantiations for both backends.
#pragma once

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "overlay/overlay_manager.h"
#include "runtime/context.h"
#include "runtime/sim_runtime.h"
#include "sim/timer.h"
#include "tree/messages.h"

namespace gocast::tree {

struct TreeParams {
  SimTime heartbeat_period = 15.0;
  /// A root neighbor promotes itself after this many silent periods.
  double neighbor_takeover_periods = 2.5;
  /// Other nodes wait longer, so a live root neighbor wins the race.
  double distant_takeover_periods = 4.5;
  bool enabled = true;
};

template <runtime::Context RT>
class TreeManagerT final : public overlay::OverlayListener {
 public:
  /// `group` scopes every outgoing tree message: a multi-group node embeds
  /// one independent tree per group in the shared overlay.
  TreeManagerT(NodeId self, RT rt, overlay::OverlayManagerT<RT>& overlay,
               TreeParams params, GroupId group = kDefaultGroup);

  /// Starts heartbeat/watchdog timers. `stagger` de-synchronizes nodes.
  void start(SimTime stagger);
  void stop();

  /// Group-leave: deregisters from the parent, forgets children, and stops
  /// all repair (the instance stays alive — scheduled callbacks capture
  /// `this`). rejoin() re-arms the watchdog with a clean slate.
  void leave();
  void rejoin(SimTime stagger);

  /// Stops all repair: no heartbeats, no takeover, no parent re-selection.
  /// Existing tree links persist except those lost to dead neighbors
  /// (fragments, as in the paper's Fig 3(b) stress test).
  void freeze();

  /// Designates this node as the initial root (harness calls on one node).
  void become_root();

  /// Observer fired when adopting an epoch replaces a previously known root
  /// with a different one — the signature of a partition healing (the losing
  /// side's root cedes to the winning epoch). Cold path: root changes are
  /// rare, so a std::function costs nothing that matters. The dissemination
  /// layer hooks digest re-advertisement here (GoCastConfig::
  /// readvertise_on_heal).
  void set_root_change_hook(std::function<void(NodeId old_root, NodeId new_root)> hook) {
    root_change_hook_ = std::move(hook);
  }

  // -- message entry points --
  void on_heartbeat(NodeId from, const HeartbeatMsg& msg);
  void on_child_join(NodeId from, const ChildJoinMsg& msg);
  void on_child_leave(NodeId from, const ChildLeaveMsg& msg);

  // -- OverlayListener --
  void on_neighbor_added(NodeId peer, overlay::LinkKind kind) override;
  void on_neighbor_removed(NodeId peer) override;

  // -- queries --
  [[nodiscard]] bool is_root() const { return epoch_.root == self_; }
  [[nodiscard]] Epoch epoch() const { return epoch_; }
  [[nodiscard]] GroupId group() const { return group_; }
  [[nodiscard]] NodeId parent() const { return parent_; }
  [[nodiscard]] const std::unordered_set<NodeId>& children() const {
    return children_;
  }

  /// Parent plus children: the endpoints of this node's tree links.
  [[nodiscard]] std::vector<NodeId> tree_neighbors() const;
  [[nodiscard]] bool is_tree_neighbor(NodeId peer) const;

  /// Latency from the root along the tree, as learned from heartbeats.
  [[nodiscard]] SimTime root_distance() const { return best_dist_; }

  /// Approximate heap bytes owned by the tree layer (children set and
  /// per-neighbor distance cache; node-based containers are estimated at
  /// one bucket pointer plus one ~32-byte node per element).
  [[nodiscard]] std::size_t memory_bytes() const {
    return children_.bucket_count() * sizeof(void*) + children_.size() * 32 +
           neighbor_dist_.bucket_count() * sizeof(void*) +
           neighbor_dist_.size() * 40;
  }

 private:
  void flood_heartbeat();
  void watchdog_check();
  void set_parent(NodeId new_parent);
  void adopt_epoch(const Epoch& epoch);
  void promote_self();

  NodeId self_;
  RT rt_;
  overlay::OverlayManagerT<RT>& overlay_;
  TreeParams params_;
  GroupId group_ = kDefaultGroup;

  Epoch epoch_;
  std::uint32_t current_seq_ = 0;
  std::uint32_t flood_seq_ = 0;  ///< seq counter when we are root
  SimTime best_dist_ = kNever;
  NodeId parent_ = kInvalidNode;
  std::unordered_set<NodeId> children_;
  /// Last cumulative latency each neighbor advertised (parent failover).
  std::unordered_map<NodeId, SimTime> neighbor_dist_;
  SimTime last_heartbeat_ = 0.0;
  std::function<void(NodeId, NodeId)> root_change_hook_;

  runtime::PeriodicTimer<RT> root_timer_;
  runtime::PeriodicTimer<RT> watchdog_;
  bool frozen_ = false;
};

/// The simulation-backed tree manager used throughout the simulator/tests.
using TreeManager = TreeManagerT<runtime::SimRuntime>;

}  // namespace gocast::tree

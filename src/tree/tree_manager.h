// The efficient tree embedded in the overlay (paper §2.3).
//
// The tree conceptually has a root; every 15 seconds the root floods a
// heartbeat over every overlay link. Heartbeats carry cumulative latency and
// are re-forwarded only on improvement (distance-vector relaxation), so each
// node's parent lies on a shortest latency path to the root and tree links
// are always overlay links. Parent choices are registered with ChildJoin /
// ChildLeave so both ends treat the link as a tree link. If the root fails,
// one of its overlay neighbors takes over (elected by heartbeat-timeout plus
// deterministic epoch ordering).
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "net/network.h"
#include "overlay/overlay_manager.h"
#include "sim/timer.h"
#include "tree/messages.h"

namespace gocast::tree {

struct TreeParams {
  SimTime heartbeat_period = 15.0;
  /// A root neighbor promotes itself after this many silent periods.
  double neighbor_takeover_periods = 2.5;
  /// Other nodes wait longer, so a live root neighbor wins the race.
  double distant_takeover_periods = 4.5;
  bool enabled = true;
};

class TreeManager final : public overlay::OverlayListener {
 public:
  TreeManager(NodeId self, net::Network& network, overlay::OverlayManager& overlay,
              TreeParams params);

  /// Starts heartbeat/watchdog timers. `stagger` de-synchronizes nodes.
  void start(SimTime stagger);
  void stop();

  /// Stops all repair: no heartbeats, no takeover, no parent re-selection.
  /// Existing tree links persist except those lost to dead neighbors
  /// (fragments, as in the paper's Fig 3(b) stress test).
  void freeze();

  /// Designates this node as the initial root (harness calls on one node).
  void become_root();

  // -- message entry points --
  void on_heartbeat(NodeId from, const HeartbeatMsg& msg);
  void on_child_join(NodeId from, const ChildJoinMsg& msg);
  void on_child_leave(NodeId from, const ChildLeaveMsg& msg);

  // -- OverlayListener --
  void on_neighbor_added(NodeId peer, overlay::LinkKind kind) override;
  void on_neighbor_removed(NodeId peer) override;

  // -- queries --
  [[nodiscard]] bool is_root() const { return epoch_.root == self_; }
  [[nodiscard]] Epoch epoch() const { return epoch_; }
  [[nodiscard]] NodeId parent() const { return parent_; }
  [[nodiscard]] const std::unordered_set<NodeId>& children() const {
    return children_;
  }

  /// Parent plus children: the endpoints of this node's tree links.
  [[nodiscard]] std::vector<NodeId> tree_neighbors() const;
  [[nodiscard]] bool is_tree_neighbor(NodeId peer) const;

  /// Latency from the root along the tree, as learned from heartbeats.
  [[nodiscard]] SimTime root_distance() const { return best_dist_; }

 private:
  void flood_heartbeat();
  void watchdog_check();
  void set_parent(NodeId new_parent);
  void adopt_epoch(const Epoch& epoch);
  void promote_self();

  NodeId self_;
  net::Network& network_;
  overlay::OverlayManager& overlay_;
  TreeParams params_;

  Epoch epoch_;
  std::uint32_t current_seq_ = 0;
  std::uint32_t flood_seq_ = 0;  ///< seq counter when we are root
  SimTime best_dist_ = kNever;
  NodeId parent_ = kInvalidNode;
  std::unordered_set<NodeId> children_;
  /// Last cumulative latency each neighbor advertised (parent failover).
  std::unordered_map<NodeId, SimTime> neighbor_dist_;
  SimTime last_heartbeat_ = 0.0;

  sim::PeriodicTimer root_timer_;
  sim::PeriodicTimer watchdog_;
  bool frozen_ = false;
};

}  // namespace gocast::tree

// Tree protocol wire messages: root heartbeats flooded over every overlay
// link, and parent/child registration.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "net/message.h"

namespace gocast::tree {

inline constexpr int kPktHeartbeat = 200;
inline constexpr int kPktChildJoin = 201;
inline constexpr int kPktChildLeave = 202;

/// Identifies a root incarnation. Higher term wins; within a term, the
/// smaller node id wins (deterministic resolution of concurrent takeovers).
struct Epoch {
  std::uint32_t term = 0;
  NodeId root = kInvalidNode;

  friend bool operator==(const Epoch&, const Epoch&) = default;

  /// True when *this denotes a strictly better (more authoritative) epoch.
  [[nodiscard]] bool beats(const Epoch& other) const {
    if (term != other.term) return term > other.term;
    return root < other.root;
  }
};

class TreeMessage : public net::Message {
 public:
  TreeMessage(int packet_type, net::PeerDegrees degrees)
      : net::Message(net::MsgKind::kTreeControl, packet_type),
        degrees_(degrees) {}

  [[nodiscard]] const net::PeerDegrees* peer_degrees() const override {
    return &degrees_;
  }

 private:
  net::PeerDegrees degrees_;
};

/// Flooded with distance-vector relaxation: each node forwards the heartbeat
/// with its own cumulative latency to the root; tree links end up lying on
/// shortest latency paths from the root (DVMRP-style, single tree).
/// Extra wire bytes a non-default group id costs (group-0 frames omit the
/// field, staying byte-identical to the single-group protocol).
[[nodiscard]] constexpr std::size_t tree_group_wire_size(GroupId group) {
  return group == kDefaultGroup ? 0 : 4;
}

struct HeartbeatMsg final : TreeMessage {
  HeartbeatMsg(Epoch epoch, std::uint32_t seq, SimTime cum_latency,
               net::PeerDegrees degrees, GroupId group = kDefaultGroup)
      : TreeMessage(kPktHeartbeat, degrees),
        epoch(epoch),
        seq(seq),
        cum_latency(cum_latency),
        group(group) {}

  Epoch epoch;
  std::uint32_t seq;
  SimTime cum_latency;  ///< latency from the root to the sender
  GroupId group;        ///< which group's tree this heartbeat maintains

  /// Frame + {term 4, root 4, seq 4, cum_latency f64 8, degrees 8}
  /// [+ group 4 when non-default].
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes + 20 + net::PeerDegrees::wire_size() +
           tree_group_wire_size(group);
  }
};

struct ChildJoinMsg final : TreeMessage {
  ChildJoinMsg(Epoch epoch, net::PeerDegrees degrees,
               GroupId group = kDefaultGroup)
      : TreeMessage(kPktChildJoin, degrees), epoch(epoch), group(group) {}

  Epoch epoch;
  GroupId group;

  /// Frame + {term 4, root 4, degrees 8} [+ group 4 when non-default].
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes + 8 + net::PeerDegrees::wire_size() +
           tree_group_wire_size(group);
  }
};

struct ChildLeaveMsg final : TreeMessage {
  explicit ChildLeaveMsg(net::PeerDegrees degrees,
                         GroupId group = kDefaultGroup)
      : TreeMessage(kPktChildLeave, degrees), group(group) {}

  GroupId group;

  /// Frame + {degrees 8} [+ group 4 when non-default].
  [[nodiscard]] std::size_t wire_size() const override {
    return net::kFrameOverheadBytes + net::PeerDegrees::wire_size() +
           tree_group_wire_size(group);
  }
};

}  // namespace gocast::tree

#include "tree/tree_manager.h"

#include <memory>

#include "common/assert.h"
#include "common/logging.h"
#include "runtime/realtime_runtime.h"
#include "runtime/udp_runtime.h"

namespace gocast::tree {

namespace {
constexpr double kRelaxEpsilon = 1e-9;
}  // namespace

template <runtime::Context RT>
TreeManagerT<RT>::TreeManagerT(NodeId self, RT rt,
                               overlay::OverlayManagerT<RT>& overlay,
                               TreeParams params, GroupId group)
    : self_(self),
      rt_(rt),
      overlay_(overlay),
      params_(params),
      group_(group),
      root_timer_(rt_, params.heartbeat_period, [this] { flood_heartbeat(); }),
      watchdog_(rt_, params.heartbeat_period, [this] { watchdog_check(); }) {
  GOCAST_ASSERT(params_.heartbeat_period > 0.0);
  GOCAST_ASSERT(params_.neighbor_takeover_periods <
                params_.distant_takeover_periods);
}

template <runtime::Context RT>
void TreeManagerT<RT>::start(SimTime stagger) {
  if (!params_.enabled) return;
  last_heartbeat_ = rt_.now();
  watchdog_.start(stagger + params_.heartbeat_period);
  if (is_root()) root_timer_.start(stagger + 0.01);
}

template <runtime::Context RT>
void TreeManagerT<RT>::stop() {
  root_timer_.stop();
  watchdog_.stop();
}

template <runtime::Context RT>
void TreeManagerT<RT>::freeze() {
  frozen_ = true;
  stop();
}

template <runtime::Context RT>
void TreeManagerT<RT>::leave() {
  set_parent(kInvalidNode);
  children_.clear();
  neighbor_dist_.clear();
  best_dist_ = kNever;
  frozen_ = true;
  stop();
}

template <runtime::Context RT>
void TreeManagerT<RT>::rejoin(SimTime stagger) {
  if (!frozen_) return;
  frozen_ = false;
  current_seq_ = 0;
  start(stagger);
}

template <runtime::Context RT>
void TreeManagerT<RT>::become_root() {
  GOCAST_ASSERT(params_.enabled);
  adopt_epoch(Epoch{epoch_.term + 1, self_});
}

// ---------------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------------

template <runtime::Context RT>
void TreeManagerT<RT>::flood_heartbeat() {
  if (!is_root() || frozen_) return;
  ++flood_seq_;
  last_heartbeat_ = rt_.now();
  auto msg = rt_.template make<HeartbeatMsg>(epoch_, flood_seq_, 0.0,
                                             overlay_.my_degrees(), group_);
  const std::vector<NodeId> peers = overlay_.neighbor_ids();
  rt_.send_multi(self_, peers.data(), peers.size(), kInvalidNode,
                 std::move(msg));
}

template <runtime::Context RT>
void TreeManagerT<RT>::on_heartbeat(NodeId from, const HeartbeatMsg& msg) {
  if (!params_.enabled || frozen_) return;
  const overlay::NeighborInfo* link = overlay_.table().find(from);
  if (link == nullptr) return;  // heartbeats only flow on overlay links

  if (epoch_.beats(msg.epoch)) return;  // stale incarnation
  if (msg.epoch.beats(epoch_)) adopt_epoch(msg.epoch);
  if (is_root()) return;  // our own flood echoed back through a cycle

  last_heartbeat_ = rt_.now();

  if (msg.seq < current_seq_) return;  // stale round
  if (msg.seq > current_seq_) {
    // New round: restart relaxation but keep the current parent until a
    // better path shows up, to avoid gratuitous churn.
    current_seq_ = msg.seq;
    best_dist_ = kNever;
  }

  SimTime link_latency = link->rtt == kNever
                             ? rt_.one_way(self_, from)
                             : link->rtt / 2.0;
  SimTime candidate = msg.cum_latency + link_latency;
  neighbor_dist_[from] = msg.cum_latency;

  if (candidate + kRelaxEpsilon < best_dist_) {
    best_dist_ = candidate;
    set_parent(from);
    auto fwd = rt_.template make<HeartbeatMsg>(msg.epoch, msg.seq, candidate,
                                               overlay_.my_degrees(), group_);
    const std::vector<NodeId> peers = overlay_.neighbor_ids();
    rt_.send_multi(self_, peers.data(), peers.size(), from, std::move(fwd));
  }
}

template <runtime::Context RT>
void TreeManagerT<RT>::watchdog_check() {
  if (!params_.enabled || frozen_ || is_root()) return;
  if (epoch_.root == kInvalidNode) return;  // no root designated yet
  SimTime now = rt_.now();
  double silent = now - last_heartbeat_;
  double threshold = overlay_.is_neighbor(epoch_.root)
                         ? params_.neighbor_takeover_periods
                         : params_.distant_takeover_periods;
  if (silent > threshold * params_.heartbeat_period) {
    GOCAST_DEBUG("node " << self_ << " promoting self to root, old root "
                         << epoch_.root << " silent for " << silent << "s");
    promote_self();
  }
}

template <runtime::Context RT>
void TreeManagerT<RT>::promote_self() {
  adopt_epoch(Epoch{epoch_.term + 1, self_});
  flood_heartbeat();
}

template <runtime::Context RT>
void TreeManagerT<RT>::adopt_epoch(const Epoch& epoch) {
  bool was_root = is_root();
  NodeId old_root = epoch_.root;
  epoch_ = epoch;
  current_seq_ = 0;
  best_dist_ = is_root() ? 0.0 : kNever;
  neighbor_dist_.clear();
  last_heartbeat_ = rt_.now();
  if (is_root()) {
    set_parent(kInvalidNode);
    if (!was_root && params_.enabled && !frozen_) {
      root_timer_.start(0.01);
    }
  } else if (was_root) {
    root_timer_.stop();
  }
  // A known root ceding to a different one is how a healed partition looks
  // from the losing side; let the dissemination layer react (cold path).
  if (root_change_hook_ && old_root != kInvalidNode &&
      old_root != epoch_.root) {
    root_change_hook_(old_root, epoch_.root);
  }
}

// ---------------------------------------------------------------------------
// Parent / child bookkeeping
// ---------------------------------------------------------------------------

template <runtime::Context RT>
void TreeManagerT<RT>::set_parent(NodeId new_parent) {
  if (parent_ == new_parent) {
    // Refresh the child registration: every heartbeat round re-selects the
    // parent, and an idempotent re-join heals any parent that missed (or
    // rejected during a link-handshake window) the original ChildJoin.
    if (new_parent != kInvalidNode) {
      rt_.send(self_, new_parent,
               rt_.template make<ChildJoinMsg>(epoch_, overlay_.my_degrees(),
                                               group_));
    }
    return;
  }
  NodeId old_parent = parent_;
  parent_ = new_parent;
  if (old_parent != kInvalidNode && rt_.alive(self_)) {
    rt_.send(self_, old_parent,
             rt_.template make<ChildLeaveMsg>(overlay_.my_degrees(), group_));
  }
  if (new_parent != kInvalidNode) {
    rt_.send(self_, new_parent,
             rt_.template make<ChildJoinMsg>(epoch_, overlay_.my_degrees(),
                                               group_));
  }
}

template <runtime::Context RT>
void TreeManagerT<RT>::on_child_join(NodeId from, const ChildJoinMsg& msg) {
  if (!params_.enabled) return;
  if (!overlay_.is_neighbor(from)) return;  // tree links must be overlay links
  if (epoch_.beats(msg.epoch)) return;      // child follows a stale root
  children_.insert(from);
}

template <runtime::Context RT>
void TreeManagerT<RT>::on_child_leave(NodeId from, const ChildLeaveMsg& msg) {
  (void)msg;
  children_.erase(from);
}

template <runtime::Context RT>
void TreeManagerT<RT>::on_neighbor_added(NodeId peer, overlay::LinkKind kind) {
  (void)peer;
  (void)kind;
}

template <runtime::Context RT>
void TreeManagerT<RT>::on_neighbor_removed(NodeId peer) {
  children_.erase(peer);
  neighbor_dist_.erase(peer);
  if (parent_ == peer) {
    parent_ = kInvalidNode;
    best_dist_ = kNever;
    if (frozen_) return;  // no repair in the stress test
    // Fail over to the best alternative we heard from this epoch.
    NodeId best = kInvalidNode;
    SimTime best_dist = kNever;
    for (const auto& [neighbor, dist] : neighbor_dist_) {
      const overlay::NeighborInfo* link = overlay_.table().find(neighbor);
      if (link == nullptr) continue;
      SimTime through = dist + (link->rtt == kNever ? 0.0 : link->rtt / 2.0);
      if (through < best_dist) {
        best_dist = through;
        best = neighbor;
      }
    }
    if (best != kInvalidNode) {
      best_dist_ = best_dist;
      set_parent(best);
    }
  }
}

template <runtime::Context RT>
std::vector<NodeId> TreeManagerT<RT>::tree_neighbors() const {
  std::vector<NodeId> out;
  out.reserve(children_.size() + 1);
  if (parent_ != kInvalidNode) out.push_back(parent_);
  for (NodeId c : children_) {
    if (c != parent_) out.push_back(c);
  }
  return out;
}

template <runtime::Context RT>
bool TreeManagerT<RT>::is_tree_neighbor(NodeId peer) const {
  return peer == parent_ || children_.count(peer) > 0;
}

template class TreeManagerT<runtime::SimRuntime>;
template class TreeManagerT<runtime::RealtimeContext>;
template class TreeManagerT<runtime::UdpContext>;

}  // namespace gocast::tree

// Message-flow tracing: an optional observer on the Network that sees every
// send, delivery, and drop. Used for debugging protocol behavior and for
// exporting message flows (CSV) without touching protocol code.
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <string>

#include "common/types.h"
#include "net/message.h"

namespace gocast::net {

/// Why a traced message was dropped instead of delivered.
enum class DropReason : std::uint8_t {
  kRandomLoss = 0,  ///< NetworkConfig::loss_probability fired
  kDeadReceiver,    ///< receiver failed (sender gets the TCP-reset analogue)
  kLinkPolicy,      ///< a LinkPolicy blocked or lossily degraded the link
  kCount,  // sentinel
};

[[nodiscard]] constexpr const char* drop_reason_name(DropReason reason) {
  switch (reason) {
    case DropReason::kRandomLoss: return "loss";
    case DropReason::kDeadReceiver: return "dead";
    case DropReason::kLinkPolicy: return "policy";
    case DropReason::kCount: return "?";
  }
  return "?";
}

inline constexpr std::size_t kDropReasonCount =
    static_cast<std::size_t>(DropReason::kCount);

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// A message left `from` bound for `to`.
  virtual void on_send(SimTime at, NodeId from, NodeId to, const Message& msg) {
    (void)at;
    (void)from;
    (void)to;
    (void)msg;
  }

  /// The message reached `to`'s endpoint.
  virtual void on_deliver(SimTime at, NodeId from, NodeId to,
                          const Message& msg) {
    (void)at;
    (void)from;
    (void)to;
    (void)msg;
  }

  /// The message was dropped; `reason` says by which mechanism.
  virtual void on_drop(SimTime at, NodeId from, NodeId to, const Message& msg,
                       DropReason reason) {
    (void)at;
    (void)from;
    (void)to;
    (void)msg;
    (void)reason;
  }
};

/// Writes one CSV row per traced event:
/// event,time,from,to,kind,packet_type,bytes,reason
/// (`reason` is empty for send/deliver rows).
class CsvTraceSink final : public TraceSink {
 public:
  explicit CsvTraceSink(const std::string& path);

  void on_send(SimTime at, NodeId from, NodeId to, const Message& msg) override;
  void on_deliver(SimTime at, NodeId from, NodeId to, const Message& msg) override;
  void on_drop(SimTime at, NodeId from, NodeId to, const Message& msg,
               DropReason reason) override;

 private:
  void row(const char* event, SimTime at, NodeId from, NodeId to,
           const Message& msg, const char* reason);
  std::ofstream out_;
};

/// Counts events per MsgKind; handy in tests.
class CountingTraceSink final : public TraceSink {
 public:
  void on_send(SimTime, NodeId, NodeId, const Message& msg) override {
    ++sends_[static_cast<std::size_t>(msg.kind())];
  }
  void on_deliver(SimTime, NodeId, NodeId, const Message& msg) override {
    ++delivers_[static_cast<std::size_t>(msg.kind())];
  }
  void on_drop(SimTime, NodeId, NodeId, const Message& msg,
               DropReason reason) override {
    ++drops_[static_cast<std::size_t>(msg.kind())];
    ++drops_by_reason_[static_cast<std::size_t>(reason)];
  }

  [[nodiscard]] std::uint64_t sends(MsgKind kind) const {
    return sends_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t delivers(MsgKind kind) const {
    return delivers_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t drops(MsgKind kind) const {
    return drops_[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t drops(DropReason reason) const {
    return drops_by_reason_[static_cast<std::size_t>(reason)];
  }
  [[nodiscard]] std::uint64_t total_sends() const {
    std::uint64_t total = 0;
    for (auto v : sends_) total += v;
    return total;
  }

 private:
  std::array<std::uint64_t, kMsgKindCount> sends_{};
  std::array<std::uint64_t, kMsgKindCount> delivers_{};
  std::array<std::uint64_t, kMsgKindCount> drops_{};
  std::array<std::uint64_t, kDropReasonCount> drops_by_reason_{};
};

}  // namespace gocast::net

#include "net/trace.h"

#include "common/assert.h"

namespace gocast::net {

CsvTraceSink::CsvTraceSink(const std::string& path) : out_(path) {
  GOCAST_ASSERT_MSG(out_.good(), "cannot open trace file " << path);
  out_ << "event,time,from,to,kind,packet_type,bytes,reason\n";
}

void CsvTraceSink::row(const char* event, SimTime at, NodeId from, NodeId to,
                       const Message& msg, const char* reason) {
  out_ << event << "," << at << "," << from << "," << to << ","
       << msg_kind_name(msg.kind()) << "," << msg.packet_type() << ","
       << msg.wire_size() << "," << reason << "\n";
}

void CsvTraceSink::on_send(SimTime at, NodeId from, NodeId to,
                           const Message& msg) {
  row("send", at, from, to, msg, "");
}

void CsvTraceSink::on_deliver(SimTime at, NodeId from, NodeId to,
                              const Message& msg) {
  row("deliver", at, from, to, msg, "");
}

void CsvTraceSink::on_drop(SimTime at, NodeId from, NodeId to,
                           const Message& msg, DropReason reason) {
  row("drop", at, from, to, msg, drop_reason_name(reason));
}

}  // namespace gocast::net

// Message base type. Protocols exchange subclasses of Message through
// net::Network; wire_size() feeds traffic accounting (the simulator does not
// model packet-level detail, matching the paper).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

namespace gocast::net {

/// Coarse message category used for traffic breakdowns. Every protocol's
/// message types map onto one of these.
enum class MsgKind : std::uint8_t {
  kData = 0,        ///< full multicast payload (tree push or pull response)
  kGossipDigest,    ///< message-ID summary
  kPullRequest,     ///< request for messages discovered via gossip
  kOverlayControl,  ///< neighbor add/drop/transfer handshakes
  kTreeControl,     ///< heartbeats, parent/child registration
  kPing,            ///< RTT measurement probe
  kPong,            ///< RTT measurement reply
  kMembership,      ///< join / member-list transfer
  kOther,
  kCount,  // sentinel
};

/// Size of the wire codec's frame header in bytes (magic, version, flags,
/// packet type, body length, src/dst endpoint ids — see wire/codec.h, which
/// static_asserts this constant against the real layout). Every message's
/// wire_size() is kFrameOverheadBytes plus its encoded body, so traffic and
/// link-stress accounting match the bytes the UDP backend actually sends.
inline constexpr std::size_t kFrameOverheadBytes = 20;

/// Tag for the wire codec's construction path: build the message with empty
/// pooled payload containers, then fill them in place while parsing (no
/// intermediate vectors between the frame bytes and the pooled message).
struct WireDecodeTag {};

[[nodiscard]] constexpr const char* msg_kind_name(MsgKind kind) {
  switch (kind) {
    case MsgKind::kData: return "data";
    case MsgKind::kGossipDigest: return "gossip";
    case MsgKind::kPullRequest: return "pull";
    case MsgKind::kOverlayControl: return "overlay-ctl";
    case MsgKind::kTreeControl: return "tree-ctl";
    case MsgKind::kPing: return "ping";
    case MsgKind::kPong: return "pong";
    case MsgKind::kMembership: return "membership";
    case MsgKind::kOther: return "other";
    case MsgKind::kCount: return "?";
  }
  return "?";
}

inline constexpr std::size_t kMsgKindCount = static_cast<std::size_t>(MsgKind::kCount);

/// Node-degree snapshot piggybacked on inter-neighbor messages. The overlay
/// maintenance conditions (C1–C4, §2.2 of the paper) need neighbors' degrees
/// and worst-nearby-link RTT; piggybacking keeps those caches fresh without
/// dedicated probes.
struct PeerDegrees {
  std::uint16_t rand_degree = 0;
  std::uint16_t near_degree = 0;
  float max_nearby_rtt = 0.0f;  ///< seconds; 0 when no nearby neighbor

  [[nodiscard]] static constexpr std::size_t wire_size() { return 8; }
};

class Message {
 public:
  Message(MsgKind kind, int packet_type)
      : kind_(kind), packet_type_(packet_type) {}
  virtual ~Message() = default;

  [[nodiscard]] MsgKind kind() const { return kind_; }

  /// Protocol-specific discriminator used by nodes to dispatch without RTTI.
  /// Ranges: 100+ overlay, 200+ tree, 300+ gocast dissemination,
  /// 400+ baselines.
  [[nodiscard]] int packet_type() const { return packet_type_; }

  /// Approximate serialized size in bytes, for traffic and link-stress
  /// accounting.
  [[nodiscard]] virtual std::size_t wire_size() const = 0;

  /// Degree snapshot of the sender, when this message type carries one.
  [[nodiscard]] virtual const PeerDegrees* peer_degrees() const { return nullptr; }

 private:
  MsgKind kind_;
  int packet_type_;
};

using MessagePtr = std::shared_ptr<const Message>;

}  // namespace gocast::net

// Transport-agnostic delivery interface. Protocol nodes implement Endpoint to
// receive traffic; every runtime backend (the discrete-event simulator's
// net::Network, the real-time loopback transport) delivers through it. Lives
// apart from network.h so backends that are not the simulator can depend on
// the delivery contract without pulling in the simulation engine.
#pragma once

#include "common/types.h"
#include "net/message.h"

namespace gocast::net {

/// Interface protocol nodes implement to receive traffic.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// A message from `from` arrived. `from` may have died after sending.
  virtual void handle_message(NodeId from, const MessagePtr& msg) = 0;

  /// TCP-reset analogue: the message sent to `to` could not be delivered
  /// because `to` is dead. Arrives one RTT after the failed send.
  virtual void handle_send_failure(NodeId to, const MessagePtr& msg) {
    (void)to;
    (void)msg;
  }
};

}  // namespace gocast::net

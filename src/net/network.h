// Simulated wide-area network. Delivers messages between nodes with one-way
// latencies drawn from a LatencyModel, models node failure (silent drop of
// inbound traffic plus a TCP-reset analogue notification to the sender), and
// accounts traffic for the analysis layer.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "net/endpoint.h"
#include "net/latency_model.h"
#include "net/link_policy.h"
#include "net/message.h"
#include "net/message_pool.h"
#include "net/trace.h"
#include "net/traffic_stats.h"
#include "sim/engine.h"
#include "sim/sharded_engine.h"

namespace gocast::net {

struct NetworkConfig {
  /// One-way latency between two distinct nodes mapped to the same site
  /// (the paper co-locates surplus nodes at measured DNS-server sites).
  SimTime intra_site_one_way = 0.0005;

  /// Probability that a message is silently lost in transit. Neighbor links
  /// are TCP in GoCast, so the default is 0; failure-injection tests raise it
  /// to exercise gossip recovery.
  double loss_probability = 0.0;

  /// Whether senders receive handle_send_failure for messages to dead nodes.
  bool notify_send_failures = true;

  /// Collect per site-pair byte counts for underlay link-stress analysis.
  bool record_site_pairs = false;

  /// Per-node uplink bandwidth in bytes/second; 0 disables transmission
  /// delay (the paper's model). When set, a message's delivery time is
  /// latency + wire_size / bandwidth, and concurrent sends from one node
  /// queue behind each other (a simple fluid uplink model).
  double uplink_bytes_per_second = 0.0;
};

class Network {
 public:
  Network(sim::Engine& engine, std::shared_ptr<const LatencyModel> latency,
          NetworkConfig config, Rng rng);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a node at a site. Endpoints are attached separately so nodes
  /// can be constructed after their ids are known.
  NodeId add_node(std::uint32_t site);

  /// Adds `count` nodes with the default round-robin site mapping
  /// (node i -> site i mod site_count).
  void add_nodes_round_robin(std::size_t count);

  void set_endpoint(NodeId node, Endpoint* endpoint);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::uint32_t site_of(NodeId node) const;
  [[nodiscard]] bool alive(NodeId node) const;
  [[nodiscard]] std::size_t alive_count() const { return alive_count_; }

  /// Marks the node dead: inbound traffic is dropped, outbound sends are
  /// suppressed. The owning protocol node must also stop its timers (the
  /// harness calls both together).
  void fail_node(NodeId node);

  /// Brings a previously failed node back (used by churn tests).
  void recover_node(NodeId node);

  /// One-way latency between two nodes (0 for self, intra-site value for
  /// distinct co-located nodes).
  [[nodiscard]] SimTime one_way(NodeId a, NodeId b) const;
  [[nodiscard]] SimTime rtt(NodeId a, NodeId b) const { return 2.0 * one_way(a, b); }

  /// Sends `msg` from `from` to `to`. Drops silently (with accounting) when
  /// the sender is dead; notifies the sender after one RTT when the receiver
  /// is dead and notify_send_failures is set.
  void send(NodeId from, NodeId to, MessagePtr msg);

  /// Fan-out: sends `msg` from `from` to every id in targets[0..count) except
  /// `except` (pass kInvalidNode to exclude nobody), processing targets in
  /// index order with per-target semantics identical to send() — same stats,
  /// trace, policy and loss RNG draws, and fluid-uplink queueing — but
  /// admitting all surviving delivery events into the engine in one
  /// schedule_batch pass. Byte-identical to the equivalent send() loop.
  void send_multi(NodeId from, const NodeId* targets, std::size_t count,
                  NodeId except, MessagePtr msg);

  /// Constructs a message of type `M` from this network's slab pool.
  /// Steady-state traffic recycles message blocks instead of hitting the
  /// global allocator; the returned pointer is a normal MessagePtr-compatible
  /// shared_ptr (in-flight messages keep the pool alive on their own).
  /// Message types with an arena-first constructor get the pool passed
  /// through, so their variable-length payloads (PoolVec members) are pooled
  /// too.
  template <class M, class... Args>
  [[nodiscard]] std::shared_ptr<const M> make(Args&&... args) {
    return make_pooled<M>(pool_, std::forward<Args>(args)...);
  }

  /// Owner-routed variant: sharded runs allocate each message from its
  /// owner's shard pool (one single-writer arena per shard; cross-thread
  /// frees go through the arena's shared-mode mutex). Unsharded — or with
  /// kInvalidNode — this is exactly make().
  template <class M, class... Args>
  [[nodiscard]] std::shared_ptr<const M> make_for(NodeId owner,
                                                  Args&&... args) {
    const std::shared_ptr<MessageArena>& pool =
        (sharded_engine_ != nullptr && owner != kInvalidNode)
            ? shard_pools_[shard_of_[owner]]
            : pool_;
    return make_pooled<M>(pool, std::forward<Args>(args)...);
  }

  [[nodiscard]] const MessageArena& pool() const { return *pool_; }

  /// Pool telemetry summed over the main pool and any shard pools (bench
  /// reporting; individual arenas stay accessible via pool()).
  struct PoolCounters {
    std::uint64_t reused = 0;
    std::uint64_t fresh = 0;
    std::uint64_t oversized = 0;
    std::size_t chunks = 0;
  };
  [[nodiscard]] PoolCounters pool_counters() const;

  /// Reports that a transfer from `from` to `to` was aborted after `bytes`
  /// of its recorded size turned out redundant (the receiver already had
  /// the message — paper §2.1 optimization 1). Corrects site-pair traffic.
  void report_aborted_transfer(NodeId from, NodeId to, std::size_t bytes);

  /// Installs (or clears, with nullptr) a message-flow observer. The sink
  /// must outlive the network. Unsharded runs only (a sink would observe
  /// events out of global order across shard threads).
  void set_trace(TraceSink* sink) {
    GOCAST_ASSERT_MSG(sharded_engine_ == nullptr || sink == nullptr,
                      "trace sinks are unsupported in sharded runs");
    trace_ = sink;
  }

  // -- sharded PDES mode (DESIGN.md §11) --

  /// Switches the network into sharded mode: node `i` lives on shard
  /// `shard_of_node[i]` of `sharded`, sends route onto the owning shard's
  /// engine (same shard) or through the cross-shard mailboxes, and stats /
  /// message pools become per-shard (folded back via fold_shard_traffic).
  /// Must be called after all add_node calls and before any traffic; trace
  /// sinks and site-pair recording are unsupported. `draw_seed` keys the
  /// stateless per-sender loss/jitter draws that replace the serial rng_
  /// stream (see DESIGN.md §11 for why draws must be per-origin).
  void enable_sharding(sim::ShardedEngine& sharded,
                       std::vector<std::uint16_t> shard_of_node,
                       std::uint64_t draw_seed);
  [[nodiscard]] bool sharded() const { return sharded_engine_ != nullptr; }
  [[nodiscard]] std::uint16_t shard_of(NodeId node) const {
    return sharded_engine_ != nullptr ? shard_of_[node] : 0;
  }

  /// The engine that runs `node`'s events: its shard engine when sharded,
  /// else the network's single engine.
  [[nodiscard]] sim::Engine& engine_of(NodeId node) {
    return sharded_engine_ != nullptr ? sharded_engine_->shard(shard_of_[node])
                                      : engine_;
  }

  /// Next cross-shard ordering key for an event caused by `origin`:
  /// (origin << 20) | per-origin counter. Each origin's admissions happen in
  /// its own program order — which is shard-count-invariant — so the packed
  /// (time, key) order the engines pop in is byte-identical at any K.
  /// Counter wrap at 2^20 is benign for correctness (the engine's slot bits
  /// keep tags unique) and unreachable for same-(origin, time) pairs.
  [[nodiscard]] std::uint64_t next_order_key(NodeId origin) {
    GOCAST_ASSERT(origin < nodes_.size());
    NodeRecord& rec = nodes_[origin];
    return (static_cast<std::uint64_t>(origin) << 20) |
           (rec.order_ctr++ & 0xFFFFFu);
  }

  /// Folds per-shard traffic counters into the main TrafficStats (barrier
  /// context only). No-op when unsharded.
  void fold_shard_traffic();

  /// Installs (or clears, with nullptr) a per-link policy consulted on every
  /// send (partitions, degraded links — see net/link_policy.h). The policy
  /// must outlive the network.
  void set_link_policy(const LinkPolicy* policy) { policy_ = policy; }

  /// Changes the global loss probability at runtime (fault injection).
  void set_loss_probability(double p);

  /// Child generator derived from this network's seed material. Forking is
  /// independent of the network's own consumption, so runtime backends can
  /// hand out per-node streams without perturbing loss/latency draws.
  [[nodiscard]] Rng fork_rng(std::uint64_t salt) const {
    return rng_.fork(salt);
  }

  /// Approximate heap bytes owned by the network (node records, message
  /// pool slabs, batch scratch). The engine is counted separately.
  [[nodiscard]] std::size_t memory_bytes() const {
    std::size_t bytes = nodes_.capacity() * sizeof(NodeRecord) +
                        pool_->memory_bytes() +
                        batch_scratch_.capacity() * sizeof(sim::Engine::BatchEvent);
    for (const auto& pool : shard_pools_) bytes += pool->memory_bytes();
    bytes += shard_of_.capacity() * sizeof(std::uint16_t);
    return bytes;
  }

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] const LatencyModel& latency_model() const { return *latency_; }
  [[nodiscard]] TrafficStats& traffic() { return traffic_; }
  [[nodiscard]] const TrafficStats& traffic() const { return traffic_; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

 private:
  struct NodeRecord {
    Endpoint* endpoint = nullptr;
    std::uint32_t site = 0;
    bool alive = true;
    /// When the node's uplink frees up (fluid queueing model).
    SimTime uplink_free_at = 0.0;
    /// Sharded mode only; both written exclusively by the owning shard's
    /// thread (or at barriers). Cross-shard ordering-key counter and
    /// stateless-draw counter (see next_order_key / prf_uniform).
    std::uint32_t order_ctr = 0;
    std::uint32_t draw_ctr = 0;
  };

  /// Computes a target's admission — stats, trace, site pairs, link policy
  /// and loss draws, latency/jitter/uplink delay — and returns false when the
  /// message is dropped before the wire. On true, `delay` holds the delivery
  /// delay. Shared by send() and send_multi(); the sender must be alive.
  bool admit(NodeId from, NodeId to, const MessagePtr& msg, SimTime& delay);

  /// Delivery-time handling: hand to the endpoint, or account the dead
  /// receiver and schedule the TCP-reset-analogue notification.
  void deliver(NodeId from, NodeId to, const MessagePtr& msg);

  // -- sharded-mode internals (network.cpp) --
  void send_sharded(NodeId from, NodeId to, MessagePtr msg);
  bool admit_sharded(NodeId from, NodeId to, const MessagePtr& msg,
                     SimTime& delay);
  /// Schedules `cb` at `at` on `dst_shard` with `origin`'s next order key —
  /// directly when the origin owns the shard, via the mailbox otherwise.
  void route_sharded(NodeId origin, std::uint16_t dst_shard, SimTime at,
                     sim::InlineCallback cb);
  /// Stateless uniform [0,1) draw keyed by (draw_seed, origin, counter):
  /// per-origin streams make loss/jitter draws shard-count-invariant.
  [[nodiscard]] double prf_uniform(NodeId origin);

  sim::Engine& engine_;
  std::shared_ptr<const LatencyModel> latency_;
  std::shared_ptr<MessageArena> pool_ = std::make_shared<MessageArena>();
  NetworkConfig config_;
  Rng rng_;
  std::vector<NodeRecord> nodes_;
  /// Reused send_multi staging buffer. Safe as a member: schedule_batch runs
  /// no callbacks, so a send_multi can never re-enter another.
  std::vector<sim::Engine::BatchEvent> batch_scratch_;
  std::size_t alive_count_ = 0;
  TrafficStats traffic_;
  TraceSink* trace_ = nullptr;
  const LinkPolicy* policy_ = nullptr;

  // -- sharded mode (null/empty when unsharded) --
  sim::ShardedEngine* sharded_engine_ = nullptr;
  std::vector<std::uint16_t> shard_of_;
  /// One stats object per shard, written only by the owning shard's thread;
  /// folded into traffic_ at barriers. Senders account into their own
  /// shard's stats, deliveries into the receiver's.
  std::vector<TrafficStats> shard_traffic_;
  /// One arena per shard (shared-mode mutex armed for cross-thread frees).
  std::vector<std::shared_ptr<MessageArena>> shard_pools_;
  std::uint64_t draw_seed_ = 0;
};

}  // namespace gocast::net

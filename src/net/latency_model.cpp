#include "net/latency_model.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "common/assert.h"
#include "common/logging.h"
#include "common/parallel.h"

namespace gocast::net {

SimTime LatencyModel::mean_one_way() const {
  std::size_t n = site_count();
  if (n < 2) return 0.0;
  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      sum += one_way(i, j);
      ++pairs;
    }
  }
  return sum / static_cast<double>(pairs);
}

SimTime LatencyModel::max_one_way() const {
  std::size_t n = site_count();
  double best = 0.0;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      best = std::max(best, static_cast<double>(one_way(i, j)));
    }
  }
  return best;
}

SimTime LatencyModel::min_cross_partition_one_way(
    std::span<const std::uint32_t> partition_of_site) const {
  const std::size_t n = site_count();
  GOCAST_ASSERT(partition_of_site.size() == n);
  SimTime best = kNever;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (partition_of_site[i] == partition_of_site[j]) continue;
      best = std::min(best, one_way(i, j));
    }
  }
  return best;
}

SimTime MatrixLatencyModel::min_cross_partition_one_way(
    std::span<const std::uint32_t> partition_of_site) const {
  GOCAST_ASSERT(partition_of_site.size() == sites_);
  float best = std::numeric_limits<float>::infinity();
  for (std::size_t i = 0; i < sites_; ++i) {
    const float* row = matrix_.data() + i * sites_;
    const std::uint32_t pi = partition_of_site[i];
    for (std::size_t j = i + 1; j < sites_; ++j) {
      if (partition_of_site[j] != pi && row[j] < best) best = row[j];
    }
  }
  return std::isinf(best) ? kNever : static_cast<SimTime>(best);
}

MatrixLatencyModel::MatrixLatencyModel(std::size_t sites,
                                       std::vector<float> one_way_seconds)
    : sites_(sites), matrix_(std::move(one_way_seconds)) {
  GOCAST_ASSERT(matrix_.size() == sites_ * sites_);
  for (std::size_t i = 0; i < sites_; ++i) {
    GOCAST_ASSERT_MSG(matrix_[i * sites_ + i] == 0.0f,
                      "nonzero diagonal at site " << i);
  }
}

std::unique_ptr<MatrixLatencyModel> MatrixLatencyModel::load_king_file(
    const std::string& path) {
  std::ifstream in(path);
  GOCAST_ASSERT_MSG(in.good(), "cannot open king data file " << path);

  // First pass: collect measurements keyed by (i, j).
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> rtt_us;
  std::uint32_t max_index = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::uint32_t i = 0;
    std::uint32_t j = 0;
    double us = 0.0;
    if (!(ls >> i >> j >> us)) continue;
    if (i == 0 || j == 0 || i == j || us <= 0.0) continue;
    auto key = std::minmax(i, j);
    rtt_us[{key.first, key.second}] = us;
    max_index = std::max({max_index, i, j});
  }
  GOCAST_ASSERT_MSG(max_index >= 2, "no usable measurements in " << path);

  // Keep only sites with a measurement to every other kept site. The paper
  // likewise excludes servers with empty measurements; we take the stricter
  // "complete rows" rule iteratively.
  std::vector<std::size_t> missing(max_index + 1, 0);
  std::vector<bool> kept(max_index + 1, true);
  kept[0] = false;
  auto count_missing = [&] {
    std::fill(missing.begin(), missing.end(), 0);
    for (std::uint32_t i = 1; i <= max_index; ++i) {
      if (!kept[i]) continue;
      for (std::uint32_t j = i + 1; j <= max_index; ++j) {
        if (!kept[j]) continue;
        if (rtt_us.find({i, j}) == rtt_us.end()) {
          ++missing[i];
          ++missing[j];
        }
      }
    }
  };
  for (;;) {
    count_missing();
    std::uint32_t worst = 0;
    for (std::uint32_t i = 1; i <= max_index; ++i) {
      if (kept[i] && missing[i] > missing[worst]) worst = i;
    }
    if (worst == 0 || missing[worst] == 0) break;
    kept[worst] = false;
  }

  std::vector<std::uint32_t> index_of(max_index + 1, 0);
  std::vector<std::uint32_t> sites;
  for (std::uint32_t i = 1; i <= max_index; ++i) {
    if (kept[i]) {
      index_of[i] = static_cast<std::uint32_t>(sites.size());
      sites.push_back(i);
    }
  }
  std::size_t n = sites.size();
  GOCAST_ASSERT_MSG(n >= 2, "king data reduced to fewer than 2 sites");

  std::vector<float> matrix(n * n, 0.0f);
  for (const auto& [key, us] : rtt_us) {
    auto [i, j] = key;
    if (!kept[i] || !kept[j]) continue;
    // Divide RTT by two for one-way latency, as the paper does.
    float one_way_s = static_cast<float>(us / 2.0 / 1e6);
    std::uint32_t a = index_of[i];
    std::uint32_t b = index_of[j];
    matrix[a * n + b] = one_way_s;
    matrix[b * n + a] = one_way_s;
  }
  GOCAST_INFO("loaded king data: " << n << " sites from " << path);
  return std::make_unique<MatrixLatencyModel>(n, std::move(matrix));
}

namespace {

struct ClusterSpec {
  double weight;
  double x_ms;
  double y_ms;
};

// Continental cluster layout in a plane whose Euclidean metric approximates
// one-way propagation milliseconds. Clusters are kept well separated
// relative to the intra-cluster spread — like the oceans separating real
// continents — so that proximity-only overlays decompose into per-continent
// components (the effect behind the paper's Fig 6 C_rand=0 curve).
constexpr ClusterSpec kClusters[] = {
    {0.30, 0.0, 0.0},     // North America (east)
    {0.10, 48.0, 0.0},    // North America (west)
    {0.28, 82.0, 14.0},   // Europe
    {0.20, 175.0, 48.0},  // Asia
    {0.07, 55.0, 100.0},  // South America
    {0.05, 225.0, 95.0},  // Oceania
};

}  // namespace

std::unique_ptr<MatrixLatencyModel> make_synthetic_king(
    const SyntheticKingParams& params, Rng rng) {
  GOCAST_ASSERT(params.sites >= 2);
  GOCAST_ASSERT(params.target_mean_one_way > 0.0);
  GOCAST_ASSERT(params.max_one_way > params.target_mean_one_way);

  std::size_t n = params.sites;

  // Place each site around a cluster center.
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  std::vector<double> access_ms(n);
  for (std::size_t s = 0; s < n; ++s) {
    double pick = rng.next_unit();
    const ClusterSpec* cluster = &kClusters[0];
    double acc = 0.0;
    for (const ClusterSpec& c : kClusters) {
      acc += c.weight;
      cluster = &c;
      if (pick < acc) break;
    }
    xs[s] = cluster->x_ms + rng.next_gaussian(0.0, params.cluster_stddev_ms);
    ys[s] = cluster->y_ms + rng.next_gaussian(0.0, params.cluster_stddev_ms);
    access_ms[s] =
        rng.next_range(params.access_delay_min_ms, params.access_delay_max_ms);
  }

  // Raw latencies (ms): distance + both access delays, times symmetric
  // jitter. The jitter stream is drawn serially in pair order first — the
  // single RNG consumer, so the matrix stays byte-identical to the
  // historical all-serial generator — then the arithmetic is row-sharded
  // across worker threads: row i owns every pair (i, j) with j > i (both
  // mirror cells in the rescale pass), so writes are disjoint and the
  // result is a pure function of the seed at any thread count. Per-row sums
  // are reduced in row order for the same reason.
  const std::size_t pairs = n * (n - 1) / 2;
  std::vector<double> jitters(pairs);
  for (double& j : jitters) {
    j = rng.next_range(params.jitter_min, params.jitter_max);
  }
  // Flat index of row i's first pair (i, i+1) in the pair-ordered stream.
  auto row_offset = [n](std::size_t i) { return i * (2 * n - i - 1) / 2; };

  std::vector<float> matrix(n * n, 0.0f);
  std::vector<double> row_sum(n, 0.0);
  parallel_for(n, params.threads, [&](std::size_t i) {
    const double* row_jitter = jitters.data() + row_offset(i);
    double sum = 0.0;
    for (std::size_t j = i + 1; j < n; ++j) {
      double dx = xs[i] - xs[j];
      double dy = ys[i] - ys[j];
      double dist = std::sqrt(dx * dx + dy * dy);
      double jitter = row_jitter[j - i - 1];
      double ms = (dist + access_ms[i] + access_ms[j]) * jitter;
      matrix[i * n + j] = static_cast<float>(ms);
      sum += ms;
    }
    row_sum[i] = sum;
  });
  double sum_ms = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum_ms += row_sum[i];

  // Rescale to the target mean, then clamp into [min, max]. Same row
  // ownership as the fill pass.
  double mean_ms = sum_ms / static_cast<double>(pairs);
  double scale = params.target_mean_one_way * 1000.0 / mean_ms;
  parallel_for(n, params.threads, [&](std::size_t i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double seconds = matrix[i * n + j] * scale / 1000.0;
      seconds = std::clamp(seconds, params.min_one_way, params.max_one_way);
      matrix[i * n + j] = static_cast<float>(seconds);
      matrix[j * n + i] = static_cast<float>(seconds);
    }
  });

  return std::make_unique<MatrixLatencyModel>(n, std::move(matrix));
}

RingLatencyModel::RingLatencyModel(std::size_t sites, SimTime max_one_way)
    : sites_(sites), max_one_way_(max_one_way) {
  GOCAST_ASSERT(sites >= 2);
  GOCAST_ASSERT(max_one_way > 0.0);
}

SimTime RingLatencyModel::one_way(std::uint32_t a, std::uint32_t b) const {
  if (a == b) return 0.0;
  std::size_t d = a > b ? a - b : b - a;
  std::size_t arc = std::min(d, sites_ - d);
  std::size_t half = sites_ / 2;
  return max_one_way_ * static_cast<double>(arc) / static_cast<double>(half);
}

}  // namespace gocast::net

// Slab pool for simulated messages.
//
// Every Network::send used to cost one make_shared allocation per message
// (control block + message object). At 8k+ nodes the simulator creates and
// destroys millions of short-lived DataMsg / GossipDigestMsg / heartbeat
// objects per run; this arena recycles their (size-classed) blocks through
// free lists so steady-state message traffic performs no global-allocator
// calls for the message objects themselves.
//
// Ownership: allocators embedded in shared_ptr control blocks hold a
// shared_ptr to the arena, so in-flight messages keep the arena alive even
// if the owning Network is destroyed first (e.g. events still queued in an
// engine that outlives the network).
//
// Single-threaded by design, like the rest of the simulator — except when
// set_shared(true) arms a mutex around allocate/deallocate: sharded PDES runs
// (DESIGN.md §11) allocate every message on its sender's shard but may drop
// the last reference on the receiver's shard, so cross-thread deallocation
// must be safe. The flag is set once before any worker starts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace gocast::net {

class MessageArena {
 public:
  /// Size classes are multiples of kGranularity up to kMaxPooled bytes;
  /// larger (or oddly aligned) requests fall through to operator new.
  static constexpr std::size_t kGranularity = 32;
  static constexpr std::size_t kMaxPooled = 512;
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  MessageArena() = default;
  MessageArena(const MessageArena&) = delete;
  MessageArena& operator=(const MessageArena&) = delete;

  void* allocate(std::size_t bytes, std::size_t alignment) {
    if (shared_) {
      std::lock_guard<std::mutex> lock(mu_);
      return allocate_impl(bytes, alignment);
    }
    return allocate_impl(bytes, alignment);
  }

  void deallocate(void* p, std::size_t bytes, std::size_t alignment) {
    if (shared_) {
      std::lock_guard<std::mutex> lock(mu_);
      deallocate_impl(p, bytes, alignment);
      return;
    }
    deallocate_impl(p, bytes, alignment);
  }

  /// Arms the mutex for cross-thread use (sharded runs; see file comment).
  /// Must be called before any concurrent access; never disarmed.
  void set_shared(bool shared) { shared_ = shared; }

  /// Blocks served from a free list (steady-state hits).
  [[nodiscard]] std::uint64_t reused() const { return reused_; }
  /// Blocks carved fresh from a slab chunk.
  [[nodiscard]] std::uint64_t fresh() const { return fresh_; }
  /// Requests too large/aligned for the pool (global allocator fallback).
  [[nodiscard]] std::uint64_t oversized() const { return oversized_; }
  [[nodiscard]] std::size_t chunks() const { return chunks_.size(); }

  /// Heap bytes held by the arena: slab chunks plus free-list arrays.
  /// (Oversized blocks belong to the global allocator, not counted.)
  [[nodiscard]] std::size_t memory_bytes() const {
    std::size_t bytes = chunks_.size() * kChunkBytes;
    for (const auto& list : free_) bytes += list.capacity() * sizeof(void*);
    return bytes;
  }

 private:
  [[nodiscard]] static std::size_t size_class(std::size_t bytes) {
    return (bytes - 1) / kGranularity;
  }

  void* allocate_impl(std::size_t bytes, std::size_t alignment) {
    if (bytes == 0) bytes = 1;
    if (bytes > kMaxPooled || alignment > alignof(std::max_align_t)) {
      ++oversized_;
      return ::operator new(bytes, std::align_val_t(alignment));
    }
    std::size_t cls = size_class(bytes);
    auto& list = free_[cls];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      ++reused_;
      return p;
    }
    std::size_t chunk_size = (cls + 1) * kGranularity;
    if (bump_left_ < chunk_size) refill();
    void* p = bump_;
    bump_ += chunk_size;
    bump_left_ -= chunk_size;
    ++fresh_;
    return p;
  }

  void deallocate_impl(void* p, std::size_t bytes, std::size_t alignment) {
    if (bytes == 0) bytes = 1;
    if (bytes > kMaxPooled || alignment > alignof(std::max_align_t)) {
      ::operator delete(p, std::align_val_t(alignment));
      return;
    }
    free_[size_class(bytes)].push_back(p);
  }

  void refill() {
    // max_align_t-aligned chunk; all size classes are kGranularity multiples,
    // so every carved block stays max_align_t-aligned.
    chunks_.emplace_back(
        static_cast<unsigned char*>(::operator new(kChunkBytes)));
    bump_ = chunks_.back().get();
    bump_left_ = kChunkBytes;
  }

  struct OpDelete {
    void operator()(unsigned char* p) const { ::operator delete(p); }
  };

  std::vector<std::unique_ptr<unsigned char, OpDelete>> chunks_;
  unsigned char* bump_ = nullptr;
  std::size_t bump_left_ = 0;
  std::vector<void*> free_[kMaxPooled / kGranularity];
  std::uint64_t reused_ = 0;
  std::uint64_t fresh_ = 0;
  std::uint64_t oversized_ = 0;
  std::mutex mu_;
  bool shared_ = false;
};

/// std-compatible allocator over a shared MessageArena; used with
/// std::allocate_shared so message object + control block land in one pooled
/// block. Owning (shared_ptr) on purpose: in-flight messages keep the arena
/// alive through their control blocks.
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(std::shared_ptr<MessageArena> arena)
      : arena_(std::move(arena)) {}

  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    arena_->deallocate(p, n * sizeof(T), alignof(T));
  }

  [[nodiscard]] const std::shared_ptr<MessageArena>& arena() const {
    return arena_;
  }

  template <class U>
  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator<U>& b) {
    return a.arena_ == b.arena();
  }

 private:
  std::shared_ptr<MessageArena> arena_;
};

/// Non-owning allocator over a MessageArena, for containers embedded INSIDE
/// pooled messages (digest/member payload vectors). Such containers are
/// destroyed with their message, and the message's control block (an owning
/// ArenaAllocator) keeps the arena alive until then — so a raw pointer is
/// safe and avoids a shared_ptr refcount per vector. Null falls back to the
/// global allocator (tests, direct construction).
///
/// Lifetime guard: select_on_container_copy_construction() returns a NULL
/// allocator, so a PoolVec copied out of a message (`auto ids = msg.ids;`)
/// uses the global allocator and may safely outlive the arena. Only copies
/// detach this way — do NOT move a PoolVec out of a message (the moved-to
/// vector would steal arena-backed storage plus this raw pointer); messages
/// are handled as shared_ptr<const Message>, which makes that impossible
/// through the normal MessagePtr path.
template <class T>
class PayloadAllocator {
 public:
  using value_type = T;

  PayloadAllocator() = default;
  explicit PayloadAllocator(const std::shared_ptr<MessageArena>& arena)
      : arena_(arena.get()) {}

  /// Container copies detach from the arena (see class comment).
  [[nodiscard]] PayloadAllocator select_on_container_copy_construction()
      const {
    return PayloadAllocator();
  }

  template <class U>
  PayloadAllocator(const PayloadAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    if (!arena_) {
      return static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t(alignof(T))));
    }
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    if (!arena_) {
      ::operator delete(p, std::align_val_t(alignof(T)));
      return;
    }
    arena_->deallocate(p, n * sizeof(T), alignof(T));
  }

  [[nodiscard]] MessageArena* arena() const { return arena_; }

  template <class U>
  friend bool operator==(const PayloadAllocator& a, const PayloadAllocator<U>& b) {
    return a.arena_ == b.arena();
  }

 private:
  MessageArena* arena_ = nullptr;
};

/// Vector whose storage comes from the message pool (or the global allocator
/// for arena-less instances). Used for variable-length message payloads.
template <class T>
using PoolVec = std::vector<T, PayloadAllocator<T>>;

/// Constructs a message of type `M` from `pool` (object + control block in
/// one pooled allocation). Message types with an arena-first constructor get
/// the pool passed through, so their variable-length payloads (PoolVec
/// members) are pooled too. Shared by every backend that owns a MessageArena
/// (net::Network, runtime::RealtimeRuntime).
template <class M, class... Args>
[[nodiscard]] std::shared_ptr<const M> make_pooled(
    const std::shared_ptr<MessageArena>& pool, Args&&... args) {
  if constexpr (std::is_constructible_v<M, const std::shared_ptr<MessageArena>&,
                                        Args&&...>) {
    return std::allocate_shared<M>(ArenaAllocator<M>(pool), pool,
                                   std::forward<Args>(args)...);
  } else {
    return std::allocate_shared<M>(ArenaAllocator<M>(pool),
                                   std::forward<Args>(args)...);
  }
}

}  // namespace gocast::net

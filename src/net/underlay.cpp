#include "net/underlay.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/assert.h"

namespace gocast::net {

namespace {
constexpr std::uint32_t kNoParent = std::numeric_limits<std::uint32_t>::max();
}  // namespace

Underlay Underlay::barabasi_albert(std::size_t routers, std::size_t edges_per_new,
                                   Rng rng) {
  GOCAST_ASSERT(edges_per_new >= 1);
  GOCAST_ASSERT(routers > edges_per_new + 1);

  Underlay g;
  g.adjacency_.resize(routers);

  // Seed clique of (edges_per_new + 1) routers.
  std::size_t seed = edges_per_new + 1;
  for (std::uint32_t i = 0; i < seed; ++i) {
    for (std::uint32_t j = i + 1; j < seed; ++j) {
      g.add_link(i, j);
    }
  }

  // Degree-proportional attachment via the repeated-endpoints trick: sampling
  // a uniform element of the endpoint list samples routers proportionally to
  // their degree.
  std::vector<std::uint32_t> endpoints;
  endpoints.reserve(routers * edges_per_new * 2);
  for (const auto& [a, b] : g.link_endpoints_) {
    endpoints.push_back(a);
    endpoints.push_back(b);
  }

  for (std::uint32_t v = static_cast<std::uint32_t>(seed); v < routers; ++v) {
    std::vector<std::uint32_t> targets;
    while (targets.size() < edges_per_new) {
      std::uint32_t candidate =
          endpoints[static_cast<std::size_t>(rng.next_below(endpoints.size()))];
      if (candidate == v) continue;
      if (std::find(targets.begin(), targets.end(), candidate) != targets.end()) {
        continue;
      }
      targets.push_back(candidate);
    }
    for (std::uint32_t t : targets) {
      g.add_link(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return g;
}

Underlay Underlay::hierarchical(std::size_t routers, std::size_t regions,
                                std::size_t edges_per_new, Rng rng) {
  GOCAST_ASSERT(regions >= 2);
  GOCAST_ASSERT(routers >= regions * (edges_per_new + 2));

  Underlay g;
  g.adjacency_.resize(routers);
  g.regions_ = regions;
  g.region_of_router_.resize(routers);

  // Carve routers into contiguous region ranges; router `base` of each
  // region acts as its backbone gateway.
  std::size_t per_region = routers / regions;
  std::vector<std::uint32_t> gateways;
  for (std::size_t r = 0; r < regions; ++r) {
    std::size_t base = r * per_region;
    std::size_t size = r + 1 == regions ? routers - base : per_region;
    for (std::size_t i = 0; i < size; ++i) {
      g.region_of_router_[base + i] = static_cast<std::uint32_t>(r);
    }
    gateways.push_back(static_cast<std::uint32_t>(base));

    // Regional BA subgraph.
    Rng region_rng = rng.fork(static_cast<std::uint64_t>(r));
    Underlay sub = barabasi_albert(size, edges_per_new, std::move(region_rng));
    for (const auto& [a, b] : sub.link_endpoints_) {
      g.add_link(static_cast<std::uint32_t>(base + a),
                 static_cast<std::uint32_t>(base + b));
    }
  }

  // Backbone: full mesh over the gateways — tier-1 transit networks peer
  // densely, so inter-region traffic takes a single backbone hop.
  for (std::size_t a = 0; a < regions; ++a) {
    for (std::size_t b = a + 1; b < regions; ++b) {
      g.add_link(gateways[a], gateways[b]);
    }
  }
  return g;
}

std::uint32_t Underlay::region_of_router(std::uint32_t router) const {
  GOCAST_ASSERT(router < region_of_router_.size());
  return region_of_router_[router];
}

void Underlay::assign_sites_by_latency(const LatencyModel& latency, Rng& rng) {
  GOCAST_ASSERT_MSG(regions_ >= 2, "requires a hierarchical underlay");
  std::size_t sites = latency.site_count();
  site_router_.resize(sites);

  // Farthest-point (k-center) seeding: the first seed is random, each
  // subsequent seed maximizes its distance to all chosen seeds. Regions
  // then align with the latency geography (one seed per latency cluster
  // before any cluster is split) — the alignment real AS regions have.
  std::vector<std::uint32_t> seeds;
  seeds.reserve(regions_);
  seeds.push_back(static_cast<std::uint32_t>(rng.next_below(sites)));
  std::vector<double> dist_to_seeds(sites, std::numeric_limits<double>::infinity());
  while (seeds.size() < regions_) {
    std::uint32_t last = seeds.back();
    std::uint32_t farthest = 0;
    double best = -1.0;
    for (std::uint32_t s = 0; s < sites; ++s) {
      dist_to_seeds[s] = std::min(dist_to_seeds[s],
                                  static_cast<double>(latency.one_way(s, last)));
      if (dist_to_seeds[s] > best) {
        best = dist_to_seeds[s];
        farthest = s;
      }
    }
    seeds.push_back(farthest);
  }

  // Routers available per region. Gateways are transit routers: sites
  // attach to access routers, never directly to the backbone.
  std::vector<std::vector<std::uint32_t>> routers_in_region(regions_);
  std::vector<bool> is_gateway(adjacency_.size(), false);
  {
    std::size_t per_region = adjacency_.size() / regions_;
    for (std::size_t r = 0; r < regions_; ++r) {
      is_gateway[r * per_region] = true;
    }
  }
  for (std::uint32_t router = 0; router < adjacency_.size(); ++router) {
    if (!is_gateway[router]) {
      routers_in_region[region_of_router_[router]].push_back(router);
    }
  }

  // Pass 1: each site joins the region of its latency-nearest seed.
  std::vector<std::uint32_t> region_of_site(sites);
  std::vector<std::vector<std::uint32_t>> sites_in_region(regions_);
  for (std::uint32_t site = 0; site < sites; ++site) {
    std::size_t best_region = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < regions_; ++r) {
      double d = latency.one_way(site, seeds[r]);
      if (d < best) {
        best = d;
        best_region = r;
      }
    }
    region_of_site[site] = static_cast<std::uint32_t>(best_region);
    sites_in_region[best_region].push_back(site);
  }

  // Pass 2: within each region, every router gets a random anchor site and
  // each site attaches to the router with the latency-nearest anchor. This
  // clusters co-located sites onto shared access routers, as metro-area
  // servers share infrastructure in reality.
  for (std::size_t r = 0; r < regions_; ++r) {
    const auto& region_sites = sites_in_region[r];
    const auto& region_routers = routers_in_region[r];
    if (region_sites.empty()) continue;
    std::vector<std::uint32_t> anchors(region_routers.size());
    for (std::size_t i = 0; i < region_routers.size(); ++i) {
      anchors[i] = region_sites[static_cast<std::size_t>(
          rng.next_below(region_sites.size()))];
    }
    for (std::uint32_t site : region_sites) {
      std::size_t best_router = 0;
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < anchors.size(); ++i) {
        double d = latency.one_way(site, anchors[i]);
        if (d < best) {
          best = d;
          best_router = i;
        }
      }
      site_router_[site] = region_routers[best_router];
    }
  }
}

void Underlay::add_regional_peering(const LatencyModel& latency,
                                    std::size_t max_links_per_pair, Rng& rng) {
  GOCAST_ASSERT_MSG(!site_router_.empty(), "assign sites first");
  GOCAST_ASSERT(regions_ >= 2);
  GOCAST_ASSERT(max_links_per_pair >= 1);

  // Representative latency between two regions: median over sampled
  // cross-region site pairs.
  std::vector<std::vector<std::uint32_t>> sites_in_region(regions_);
  for (std::uint32_t site = 0; site < site_router_.size(); ++site) {
    sites_in_region[region_of_router_[site_router_[site]]].push_back(site);
  }
  std::vector<std::vector<std::uint32_t>> routers_in_region(regions_);
  for (std::uint32_t router = 0; router < adjacency_.size(); ++router) {
    routers_in_region[region_of_router_[router]].push_back(router);
  }

  // Scale: the closest region pair gets max_links_per_pair peerings; a pair
  // twice as distant gets half, and so on.
  std::vector<std::vector<double>> pair_latency(regions_,
                                                std::vector<double>(regions_, 0));
  double closest = std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < regions_; ++a) {
    for (std::size_t b = a + 1; b < regions_; ++b) {
      if (sites_in_region[a].empty() || sites_in_region[b].empty()) continue;
      std::vector<double> samples;
      for (int i = 0; i < 32; ++i) {
        std::uint32_t sa = rng.pick(sites_in_region[a]);
        std::uint32_t sb = rng.pick(sites_in_region[b]);
        samples.push_back(latency.one_way(sa, sb));
      }
      std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                       samples.end());
      pair_latency[a][b] = samples[samples.size() / 2];
      closest = std::min(closest, pair_latency[a][b]);
    }
  }
  if (!std::isfinite(closest) || closest <= 0.0) return;

  for (std::size_t a = 0; a < regions_; ++a) {
    for (std::size_t b = a + 1; b < regions_; ++b) {
      if (pair_latency[a][b] <= 0.0) continue;
      auto links = static_cast<std::size_t>(
          static_cast<double>(max_links_per_pair) * closest / pair_latency[a][b] +
          0.5);
      for (std::size_t i = 0; i < links; ++i) {
        std::uint32_t ra = rng.pick(routers_in_region[a]);
        std::uint32_t rb = rng.pick(routers_in_region[b]);
        if (ra != rb) add_link(ra, rb);
      }
    }
  }
}

void Underlay::add_link(std::uint32_t a, std::uint32_t b) {
  GOCAST_ASSERT(a != b);
  adjacency_[a].push_back(b);
  adjacency_[b].push_back(a);
  if (a > b) std::swap(a, b);
  link_endpoints_.emplace_back(a, b);
}

void Underlay::assign_sites(std::size_t site_count, Rng& rng) {
  site_router_.resize(site_count);
  for (std::size_t s = 0; s < site_count; ++s) {
    site_router_[s] =
        static_cast<std::uint32_t>(rng.next_below(adjacency_.size()));
  }
}

std::uint32_t Underlay::router_of_site(std::uint32_t site) const {
  GOCAST_ASSERT(site < site_router_.size());
  return site_router_[site];
}

std::vector<std::uint32_t> Underlay::bfs_parents(std::uint32_t source) const {
  std::vector<std::uint32_t> parent(adjacency_.size(), kNoParent);
  parent[source] = source;
  std::deque<std::uint32_t> queue{source};
  while (!queue.empty()) {
    std::uint32_t u = queue.front();
    queue.pop_front();
    for (std::uint32_t v : adjacency_[u]) {
      if (parent[v] == kNoParent) {
        parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  return parent;
}

std::vector<Underlay::LinkLoad> Underlay::link_loads(
    const std::unordered_map<std::uint64_t, double>& site_pair_bytes) const {
  GOCAST_ASSERT_MSG(!site_router_.empty(), "assign_sites not called");

  // Group traffic by source router so each BFS tree is computed once.
  std::unordered_map<std::uint32_t,
                     std::vector<std::pair<std::uint32_t, double>>>
      by_source;
  for (const auto& [key, bytes] : site_pair_bytes) {
    auto site_a = static_cast<std::uint32_t>(key >> 32);
    auto site_b = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
    std::uint32_t ra = router_of_site(site_a);
    std::uint32_t rb = router_of_site(site_b);
    if (ra == rb) continue;  // never leaves the router: no inter-AS stress
    if (ra > rb) std::swap(ra, rb);
    by_source[ra].emplace_back(rb, bytes);
  }

  std::unordered_map<std::uint64_t, double> per_link;
  for (const auto& [source, dests] : by_source) {
    std::vector<std::uint32_t> parent = bfs_parents(source);
    for (const auto& [dest, bytes] : dests) {
      std::uint32_t v = dest;
      while (v != source) {
        std::uint32_t p = parent[v];
        GOCAST_ASSERT_MSG(p != kNoParent, "underlay disconnected");
        std::uint64_t link = (static_cast<std::uint64_t>(std::min(v, p)) << 32) |
                             std::max(v, p);
        per_link[link] += bytes;
        v = p;
      }
    }
  }

  std::vector<LinkLoad> loads;
  loads.reserve(per_link.size());
  for (const auto& [link, bytes] : per_link) {
    loads.push_back(LinkLoad{static_cast<std::uint32_t>(link >> 32),
                             static_cast<std::uint32_t>(link & 0xFFFFFFFFu),
                             bytes});
  }
  std::sort(loads.begin(), loads.end(),
            [](const LinkLoad& a, const LinkLoad& b) { return a.bytes > b.bytes; });
  return loads;
}

double Underlay::mean_router_distance() const {
  std::size_t n = adjacency_.size();
  double sum = 0.0;
  std::size_t pairs = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    // Reuse BFS parents to get hop counts by walking up; cheaper: do a
    // distance BFS directly.
    std::vector<std::uint32_t> dist(n, kNoParent);
    dist[s] = 0;
    std::deque<std::uint32_t> queue{s};
    while (!queue.empty()) {
      std::uint32_t u = queue.front();
      queue.pop_front();
      for (std::uint32_t v : adjacency_[u]) {
        if (dist[v] == kNoParent) {
          dist[v] = dist[u] + 1;
          queue.push_back(v);
        }
      }
    }
    for (std::uint32_t v = s + 1; v < n; ++v) {
      GOCAST_ASSERT(dist[v] != kNoParent);
      sum += dist[v];
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : sum / static_cast<double>(pairs);
}

}  // namespace gocast::net

// AS-level underlay for physical link-stress accounting.
//
// The paper measures the traffic overlay protocols impose on underlying
// network links using Internet AS-topology snapshots. We substitute a
// preferential-attachment (Barabási–Albert) router graph — the standard
// synthetic model reproducing the power-law degree structure of the AS graph
// — route site-to-site traffic along shortest paths, and accumulate bytes per
// physical link (see DESIGN.md substitution table).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "net/latency_model.h"

namespace gocast::net {

class Underlay {
 public:
  /// Builds a connected BA graph: starts from a small clique, then each new
  /// router attaches to `edges_per_new` existing routers with probability
  /// proportional to their degree.
  static Underlay barabasi_albert(std::size_t routers, std::size_t edges_per_new,
                                  Rng rng);

  /// Builds a two-level Internet-like topology: `regions` regional BA
  /// subgraphs joined by a backbone over per-region gateway routers. This is
  /// the shape that makes link stress meaningful: intra-region overlay links
  /// stay off the backbone, random long-haul links cross it.
  static Underlay hierarchical(std::size_t routers, std::size_t regions,
                               std::size_t edges_per_new, Rng rng);

  [[nodiscard]] std::size_t region_count() const { return region_of_router_.empty() ? 0 : regions_; }
  [[nodiscard]] std::uint32_t region_of_router(std::uint32_t router) const;

  [[nodiscard]] std::size_t router_count() const { return adjacency_.size(); }
  [[nodiscard]] std::size_t link_count() const { return link_endpoints_.size(); }
  [[nodiscard]] const std::vector<std::uint32_t>& neighbors(std::uint32_t router) const {
    return adjacency_[router];
  }

  /// Assigns each site uniformly at random to a router. (Ignores latency
  /// locality — only appropriate for locality-free baselines or tests.)
  void assign_sites(std::size_t site_count, Rng& rng);

  /// Latency-aware assignment (requires a hierarchical underlay): regions
  /// are seeded by farthest-point sampling over the latency space, every
  /// site joins its latency-nearest seed's region, and within a region each
  /// site attaches to the access router with the latency-nearest anchor
  /// site. This restores the real-world correlation between latency
  /// proximity and AS-path locality that link-stress results depend on.
  void assign_sites_by_latency(const LatencyModel& latency, Rng& rng);

  /// Adds peering links between regions in proportion to their latency
  /// proximity (close regions peer densely, like adjacent real-world
  /// networks; distant ones rely on the backbone). Call after
  /// assign_sites_by_latency. `max_links_per_pair` bounds the density.
  void add_regional_peering(const LatencyModel& latency,
                            std::size_t max_links_per_pair, Rng& rng);
  [[nodiscard]] std::uint32_t router_of_site(std::uint32_t site) const;
  [[nodiscard]] std::size_t site_count() const { return site_router_.size(); }

  struct LinkLoad {
    std::uint32_t router_a;
    std::uint32_t router_b;
    double bytes;
  };

  /// Routes every site-pair's bytes along the (BFS) shortest router path and
  /// returns per-link byte totals, sorted descending. Keys are the packed
  /// site pairs produced by TrafficStats::pack_pair.
  [[nodiscard]] std::vector<LinkLoad> link_loads(
      const std::unordered_map<std::uint64_t, double>& site_pair_bytes) const;

  /// Average router-hop distance between two random distinct routers
  /// (diagnostic; small graphs only).
  [[nodiscard]] double mean_router_distance() const;

 private:
  Underlay() = default;

  void add_link(std::uint32_t a, std::uint32_t b);

  /// BFS predecessor tree rooted at `source`.
  [[nodiscard]] std::vector<std::uint32_t> bfs_parents(std::uint32_t source) const;

  std::vector<std::vector<std::uint32_t>> adjacency_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> link_endpoints_;
  std::vector<std::uint32_t> site_router_;
  std::vector<std::uint32_t> region_of_router_;  // empty for flat graphs
  std::size_t regions_ = 0;
};

}  // namespace gocast::net

// Per-link policy hook on the simulated network. A LinkPolicy sees every
// send and can block it (network partition), add loss (degraded link), or
// stretch its latency (congestion: multiplier plus bounded uniform jitter).
// Policies compose with the base latency model and the uplink queueing in
// Network::send; the fault subsystem (src/fault/) provides the standard
// implementation.
#pragma once

#include "common/types.h"

namespace gocast::net {

/// What the policy decided for one (from, to) send at one instant.
struct LinkDecision {
  /// Message is silently blackholed (partition semantics: no TCP reset —
  /// detection, if any, must come from higher-layer timeouts).
  bool blocked = false;

  /// Extra loss probability applied on top of NetworkConfig::loss_probability
  /// (independent trial; drops are traced as policy drops).
  double extra_loss = 0.0;

  /// Multiplier on the one-way propagation latency (>= 1 degrades).
  double latency_multiplier = 1.0;

  /// Upper bound of a uniform extra delay in seconds, drawn by the network
  /// from its own seeded stream (0 = no jitter).
  SimTime jitter = 0.0;

  [[nodiscard]] bool trivial() const {
    return !blocked && extra_loss == 0.0 && latency_multiplier == 1.0 &&
           jitter == 0.0;
  }
};

class LinkPolicy {
 public:
  virtual ~LinkPolicy() = default;

  /// Evaluated once per send, before loss and latency are applied.
  [[nodiscard]] virtual LinkDecision evaluate(NodeId from, NodeId to) const = 0;
};

}  // namespace gocast::net

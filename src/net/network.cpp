#include "net/network.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "common/logging.h"

namespace gocast::net {

Network::Network(sim::Engine& engine, std::shared_ptr<const LatencyModel> latency,
                 NetworkConfig config, Rng rng)
    : engine_(engine),
      latency_(std::move(latency)),
      config_(config),
      rng_(std::move(rng)) {
  GOCAST_ASSERT(latency_ != nullptr);
  GOCAST_ASSERT(config_.intra_site_one_way >= 0.0);
  GOCAST_ASSERT(config_.loss_probability >= 0.0 && config_.loss_probability < 1.0);
  GOCAST_ASSERT(config_.uplink_bytes_per_second >= 0.0);
}

NodeId Network::add_node(std::uint32_t site) {
  GOCAST_ASSERT_MSG(site < latency_->site_count(),
                    "site " << site << " out of range");
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeRecord{nullptr, site, true});
  ++alive_count_;
  return id;
}

void Network::add_nodes_round_robin(std::size_t count) {
  auto sites = static_cast<std::uint32_t>(latency_->site_count());
  for (std::size_t i = 0; i < count; ++i) {
    add_node(static_cast<std::uint32_t>(nodes_.size()) % sites);
  }
}

void Network::set_endpoint(NodeId node, Endpoint* endpoint) {
  GOCAST_ASSERT(node < nodes_.size());
  nodes_[node].endpoint = endpoint;
}

std::uint32_t Network::site_of(NodeId node) const {
  GOCAST_ASSERT(node < nodes_.size());
  return nodes_[node].site;
}

bool Network::alive(NodeId node) const {
  GOCAST_ASSERT(node < nodes_.size());
  return nodes_[node].alive;
}

void Network::fail_node(NodeId node) {
  GOCAST_ASSERT(node < nodes_.size());
  if (!nodes_[node].alive) return;
  nodes_[node].alive = false;
  GOCAST_ASSERT(alive_count_ > 0);
  --alive_count_;
}

void Network::recover_node(NodeId node) {
  GOCAST_ASSERT(node < nodes_.size());
  if (nodes_[node].alive) return;
  nodes_[node].alive = true;
  ++alive_count_;
}

SimTime Network::one_way(NodeId a, NodeId b) const {
  GOCAST_ASSERT(a < nodes_.size() && b < nodes_.size());
  if (a == b) return 0.0;
  std::uint32_t sa = nodes_[a].site;
  std::uint32_t sb = nodes_[b].site;
  if (sa == sb) return config_.intra_site_one_way;
  return latency_->one_way(sa, sb);
}

void Network::set_loss_probability(double p) {
  GOCAST_ASSERT(p >= 0.0 && p < 1.0);
  config_.loss_probability = p;
}

void Network::report_aborted_transfer(NodeId from, NodeId to, std::size_t bytes) {
  GOCAST_ASSERT(from < nodes_.size() && to < nodes_.size());
  if (config_.record_site_pairs) {
    traffic_.refund_site_pair(nodes_[from].site, nodes_[to].site, bytes);
  }
}

void Network::send(NodeId from, NodeId to, MessagePtr msg) {
  GOCAST_ASSERT(from < nodes_.size() && to < nodes_.size());
  GOCAST_ASSERT(msg != nullptr);
  GOCAST_ASSERT_MSG(from != to, "node " << from << " sending to itself");

  if (!nodes_[from].alive) {
    traffic_.record_sender_dead();
    return;
  }

  SimTime delay = 0.0;
  if (!admit(from, to, msg, delay)) return;
  engine_.schedule_after(delay, [this, from, to, msg = std::move(msg)] {
    deliver(from, to, msg);
  });
}

void Network::send_multi(NodeId from, const NodeId* targets, std::size_t count,
                         NodeId except, MessagePtr msg) {
  GOCAST_ASSERT(from < nodes_.size());
  GOCAST_ASSERT(msg != nullptr);

  if (!nodes_[from].alive) {
    // Matches the equivalent send() loop: one sender-dead record per target.
    for (std::size_t i = 0; i < count; ++i) {
      if (targets[i] != except) traffic_.record_sender_dead();
    }
    return;
  }

  batch_scratch_.clear();
  batch_scratch_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId to = targets[i];
    if (to == except) continue;
    GOCAST_ASSERT(to < nodes_.size());
    SimTime delay = 0.0;
    if (!admit(from, to, msg, delay)) continue;
    batch_scratch_.push_back(
        {engine_.now() + delay,
         sim::InlineCallback([this, from, to, msg] { deliver(from, to, msg); })});
  }
  engine_.schedule_batch(batch_scratch_);
  batch_scratch_.clear();
}

bool Network::admit(NodeId from, NodeId to, const MessagePtr& msg,
                    SimTime& delay) {
  GOCAST_ASSERT_MSG(from != to, "node " << from << " sending to itself");

  std::size_t bytes = msg->wire_size();
  traffic_.record_send(msg->kind(), bytes);
  if (trace_ != nullptr) trace_->on_send(engine_.now(), from, to, *msg);
  if (config_.record_site_pairs) {
    traffic_.record_site_pair(nodes_[from].site, nodes_[to].site, bytes);
  }

  LinkDecision link;
  if (policy_ != nullptr) link = policy_->evaluate(from, to);
  if (link.blocked ||
      (link.extra_loss > 0.0 && rng_.next_bool(link.extra_loss))) {
    // Partition blackhole / degraded-link loss: silent (no TCP reset — a
    // partitioned peer is unreachable, not provably dead).
    traffic_.record_policy_dropped();
    if (trace_ != nullptr) {
      trace_->on_drop(engine_.now(), from, to, *msg, DropReason::kLinkPolicy);
    }
    return false;
  }

  if (config_.loss_probability > 0.0 && rng_.next_bool(config_.loss_probability)) {
    traffic_.record_lost();
    if (trace_ != nullptr) {
      trace_->on_drop(engine_.now(), from, to, *msg, DropReason::kRandomLoss);
    }
    return false;
  }

  delay = one_way(from, to);
  if (link.latency_multiplier != 1.0) {
    GOCAST_ASSERT(link.latency_multiplier > 0.0);
    delay *= link.latency_multiplier;
  }
  if (link.jitter > 0.0) delay += rng_.next_range(0.0, link.jitter);
  if (config_.uplink_bytes_per_second > 0.0) {
    // Fluid uplink: serialization queues behind earlier sends.
    NodeRecord& sender = nodes_[from];
    SimTime start = std::max(engine_.now(), sender.uplink_free_at);
    SimTime serialize = static_cast<double>(bytes) / config_.uplink_bytes_per_second;
    sender.uplink_free_at = start + serialize;
    delay += (sender.uplink_free_at - engine_.now());
  }
  return true;
}

void Network::deliver(NodeId from, NodeId to, const MessagePtr& msg) {
  NodeRecord& target = nodes_[to];
  if (target.alive && target.endpoint != nullptr) {
    traffic_.record_delivered();
    if (trace_ != nullptr) trace_->on_deliver(engine_.now(), from, to, *msg);
    target.endpoint->handle_message(from, msg);
    return;
  }
  traffic_.record_dropped_dead();
  if (trace_ != nullptr) {
    trace_->on_drop(engine_.now(), from, to, *msg, DropReason::kDeadReceiver);
  }
  if (!config_.notify_send_failures) return;
  // The reset notification takes another one-way trip back.
  engine_.schedule_after(one_way(from, to), [this, from, to, msg] {
    NodeRecord& s = nodes_[from];
    if (s.alive && s.endpoint != nullptr) {
      s.endpoint->handle_send_failure(to, msg);
    }
  });
}

}  // namespace gocast::net

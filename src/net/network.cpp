#include "net/network.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"
#include "common/logging.h"

namespace gocast::net {

Network::Network(sim::Engine& engine, std::shared_ptr<const LatencyModel> latency,
                 NetworkConfig config, Rng rng)
    : engine_(engine),
      latency_(std::move(latency)),
      config_(config),
      rng_(std::move(rng)) {
  GOCAST_ASSERT(latency_ != nullptr);
  GOCAST_ASSERT(config_.intra_site_one_way >= 0.0);
  GOCAST_ASSERT(config_.loss_probability >= 0.0 && config_.loss_probability < 1.0);
  GOCAST_ASSERT(config_.uplink_bytes_per_second >= 0.0);
}

NodeId Network::add_node(std::uint32_t site) {
  GOCAST_ASSERT_MSG(site < latency_->site_count(),
                    "site " << site << " out of range");
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(NodeRecord{nullptr, site, true});
  ++alive_count_;
  return id;
}

void Network::add_nodes_round_robin(std::size_t count) {
  auto sites = static_cast<std::uint32_t>(latency_->site_count());
  for (std::size_t i = 0; i < count; ++i) {
    add_node(static_cast<std::uint32_t>(nodes_.size()) % sites);
  }
}

void Network::set_endpoint(NodeId node, Endpoint* endpoint) {
  GOCAST_ASSERT(node < nodes_.size());
  nodes_[node].endpoint = endpoint;
}

std::uint32_t Network::site_of(NodeId node) const {
  GOCAST_ASSERT(node < nodes_.size());
  return nodes_[node].site;
}

bool Network::alive(NodeId node) const {
  GOCAST_ASSERT(node < nodes_.size());
  return nodes_[node].alive;
}

void Network::fail_node(NodeId node) {
  GOCAST_ASSERT(node < nodes_.size());
  if (!nodes_[node].alive) return;
  nodes_[node].alive = false;
  GOCAST_ASSERT(alive_count_ > 0);
  --alive_count_;
}

void Network::recover_node(NodeId node) {
  GOCAST_ASSERT(node < nodes_.size());
  if (nodes_[node].alive) return;
  nodes_[node].alive = true;
  ++alive_count_;
}

SimTime Network::one_way(NodeId a, NodeId b) const {
  GOCAST_ASSERT(a < nodes_.size() && b < nodes_.size());
  if (a == b) return 0.0;
  std::uint32_t sa = nodes_[a].site;
  std::uint32_t sb = nodes_[b].site;
  if (sa == sb) return config_.intra_site_one_way;
  return latency_->one_way(sa, sb);
}

void Network::set_loss_probability(double p) {
  GOCAST_ASSERT(p >= 0.0 && p < 1.0);
  config_.loss_probability = p;
}

void Network::report_aborted_transfer(NodeId from, NodeId to, std::size_t bytes) {
  GOCAST_ASSERT(from < nodes_.size() && to < nodes_.size());
  if (config_.record_site_pairs) {
    traffic_.refund_site_pair(nodes_[from].site, nodes_[to].site, bytes);
  }
}

void Network::enable_sharding(sim::ShardedEngine& sharded,
                              std::vector<std::uint16_t> shard_of_node,
                              std::uint64_t draw_seed) {
  GOCAST_ASSERT_MSG(sharded_engine_ == nullptr, "already sharded");
  GOCAST_ASSERT_MSG(trace_ == nullptr,
                    "trace sinks are unsupported in sharded runs");
  GOCAST_ASSERT_MSG(!config_.record_site_pairs,
                    "site-pair accounting is unsupported in sharded runs");
  GOCAST_ASSERT(shard_of_node.size() == nodes_.size());
  // next_order_key packs the origin above a 20-bit counter.
  GOCAST_ASSERT_MSG(nodes_.size() < (std::size_t{1} << 20),
                    "sharded runs support < 2^20 nodes");
  for (std::uint16_t s : shard_of_node) {
    GOCAST_ASSERT(s < sharded.shard_count());
  }
  sharded_engine_ = &sharded;
  shard_of_ = std::move(shard_of_node);
  draw_seed_ = draw_seed;
  shard_traffic_.resize(sharded.shard_count());
  shard_pools_.reserve(sharded.shard_count());
  for (std::size_t k = 0; k < sharded.shard_count(); ++k) {
    shard_pools_.push_back(std::make_shared<MessageArena>());
    shard_pools_.back()->set_shared(true);
  }
}

void Network::fold_shard_traffic() {
  for (TrafficStats& stats : shard_traffic_) {
    traffic_.merge_from(stats);
    stats = TrafficStats{};
  }
}

Network::PoolCounters Network::pool_counters() const {
  PoolCounters c{pool_->reused(), pool_->fresh(), pool_->oversized(),
                 pool_->chunks()};
  for (const auto& pool : shard_pools_) {
    c.reused += pool->reused();
    c.fresh += pool->fresh();
    c.oversized += pool->oversized();
    c.chunks += pool->chunks();
  }
  return c;
}

double Network::prf_uniform(NodeId origin) {
  // splitmix64 over (seed, origin, per-origin counter): every origin gets an
  // independent stream consumed in its own program order, so draw outcomes
  // do not depend on how sends from different origins interleave.
  std::uint64_t state = draw_seed_ ^
                        (0x9e3779b97f4a7c15ULL *
                         (static_cast<std::uint64_t>(origin) + 1)) ^
                        (static_cast<std::uint64_t>(nodes_[origin].draw_ctr++)
                         << 32);
  const std::uint64_t x = splitmix64(state);
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

void Network::route_sharded(NodeId origin, std::uint16_t dst_shard, SimTime at,
                            sim::InlineCallback cb) {
  const std::uint16_t src_shard = shard_of_[origin];
  const std::uint64_t key = next_order_key(origin);
  if (src_shard == dst_shard) {
    sharded_engine_->shard(dst_shard).schedule_at_ordered(at, key,
                                                          std::move(cb));
  } else {
    sharded_engine_->post(src_shard, dst_shard, at, key, std::move(cb));
  }
}

void Network::send_sharded(NodeId from, NodeId to, MessagePtr msg) {
  if (!nodes_[from].alive) {
    shard_traffic_[shard_of_[from]].record_sender_dead();
    return;
  }
  SimTime delay = 0.0;
  if (!admit_sharded(from, to, msg, delay)) return;
  const SimTime at = engine_of(from).now() + delay;
  route_sharded(from, shard_of_[to], at,
                sim::InlineCallback([this, from, to, msg = std::move(msg)] {
                  deliver(from, to, msg);
                }));
}

bool Network::admit_sharded(NodeId from, NodeId to, const MessagePtr& msg,
                            SimTime& delay) {
  GOCAST_ASSERT_MSG(from != to, "node " << from << " sending to itself");
  TrafficStats& stats = shard_traffic_[shard_of_[from]];
  stats.record_send(msg->kind(), msg->wire_size());

  LinkDecision link;
  if (policy_ != nullptr) link = policy_->evaluate(from, to);
  if (link.blocked ||
      (link.extra_loss > 0.0 && prf_uniform(from) < link.extra_loss)) {
    stats.record_policy_dropped();
    return false;
  }
  if (config_.loss_probability > 0.0 &&
      prf_uniform(from) < config_.loss_probability) {
    stats.record_lost();
    return false;
  }

  delay = one_way(from, to);
  if (link.latency_multiplier != 1.0) {
    // A multiplier below 1 would undercut the cross-shard lookahead bound.
    GOCAST_ASSERT_MSG(link.latency_multiplier >= 1.0,
                      "sharded runs require latency multipliers >= 1, got "
                          << link.latency_multiplier);
    delay *= link.latency_multiplier;
  }
  if (link.jitter > 0.0) delay += prf_uniform(from) * link.jitter;
  if (config_.uplink_bytes_per_second > 0.0) {
    NodeRecord& sender = nodes_[from];
    const SimTime now = engine_of(from).now();
    SimTime start = std::max(now, sender.uplink_free_at);
    SimTime serialize =
        static_cast<double>(msg->wire_size()) / config_.uplink_bytes_per_second;
    sender.uplink_free_at = start + serialize;
    delay += (sender.uplink_free_at - now);
  }
  return true;
}

void Network::send(NodeId from, NodeId to, MessagePtr msg) {
  GOCAST_ASSERT(from < nodes_.size() && to < nodes_.size());
  GOCAST_ASSERT(msg != nullptr);
  GOCAST_ASSERT_MSG(from != to, "node " << from << " sending to itself");

  if (sharded_engine_ != nullptr) {
    send_sharded(from, to, std::move(msg));
    return;
  }

  if (!nodes_[from].alive) {
    traffic_.record_sender_dead();
    return;
  }

  SimTime delay = 0.0;
  if (!admit(from, to, msg, delay)) return;
  engine_.schedule_after(delay, [this, from, to, msg = std::move(msg)] {
    deliver(from, to, msg);
  });
}

void Network::send_multi(NodeId from, const NodeId* targets, std::size_t count,
                         NodeId except, MessagePtr msg) {
  GOCAST_ASSERT(from < nodes_.size());
  GOCAST_ASSERT(msg != nullptr);

  if (sharded_engine_ != nullptr) {
    // Per-target routing instead of schedule_batch: cross-shard ordering is
    // carried by the per-origin keys, so the batched admission would buy
    // nothing and the targets may live on different engines anyway.
    if (!nodes_[from].alive) {
      TrafficStats& stats = shard_traffic_[shard_of_[from]];
      for (std::size_t i = 0; i < count; ++i) {
        if (targets[i] != except) stats.record_sender_dead();
      }
      return;
    }
    for (std::size_t i = 0; i < count; ++i) {
      const NodeId to = targets[i];
      if (to == except) continue;
      GOCAST_ASSERT(to < nodes_.size());
      SimTime delay = 0.0;
      if (!admit_sharded(from, to, msg, delay)) continue;
      route_sharded(from, shard_of_[to], engine_of(from).now() + delay,
                    sim::InlineCallback(
                        [this, from, to, msg] { deliver(from, to, msg); }));
    }
    return;
  }

  if (!nodes_[from].alive) {
    // Matches the equivalent send() loop: one sender-dead record per target.
    for (std::size_t i = 0; i < count; ++i) {
      if (targets[i] != except) traffic_.record_sender_dead();
    }
    return;
  }

  batch_scratch_.clear();
  batch_scratch_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId to = targets[i];
    if (to == except) continue;
    GOCAST_ASSERT(to < nodes_.size());
    SimTime delay = 0.0;
    if (!admit(from, to, msg, delay)) continue;
    batch_scratch_.push_back(
        {engine_.now() + delay,
         sim::InlineCallback([this, from, to, msg] { deliver(from, to, msg); })});
  }
  engine_.schedule_batch(batch_scratch_);
  batch_scratch_.clear();
}

bool Network::admit(NodeId from, NodeId to, const MessagePtr& msg,
                    SimTime& delay) {
  GOCAST_ASSERT_MSG(from != to, "node " << from << " sending to itself");

  std::size_t bytes = msg->wire_size();
  traffic_.record_send(msg->kind(), bytes);
  if (trace_ != nullptr) trace_->on_send(engine_.now(), from, to, *msg);
  if (config_.record_site_pairs) {
    traffic_.record_site_pair(nodes_[from].site, nodes_[to].site, bytes);
  }

  LinkDecision link;
  if (policy_ != nullptr) link = policy_->evaluate(from, to);
  if (link.blocked ||
      (link.extra_loss > 0.0 && rng_.next_bool(link.extra_loss))) {
    // Partition blackhole / degraded-link loss: silent (no TCP reset — a
    // partitioned peer is unreachable, not provably dead).
    traffic_.record_policy_dropped();
    if (trace_ != nullptr) {
      trace_->on_drop(engine_.now(), from, to, *msg, DropReason::kLinkPolicy);
    }
    return false;
  }

  if (config_.loss_probability > 0.0 && rng_.next_bool(config_.loss_probability)) {
    traffic_.record_lost();
    if (trace_ != nullptr) {
      trace_->on_drop(engine_.now(), from, to, *msg, DropReason::kRandomLoss);
    }
    return false;
  }

  delay = one_way(from, to);
  if (link.latency_multiplier != 1.0) {
    GOCAST_ASSERT(link.latency_multiplier > 0.0);
    delay *= link.latency_multiplier;
  }
  if (link.jitter > 0.0) delay += rng_.next_range(0.0, link.jitter);
  if (config_.uplink_bytes_per_second > 0.0) {
    // Fluid uplink: serialization queues behind earlier sends.
    NodeRecord& sender = nodes_[from];
    SimTime start = std::max(engine_.now(), sender.uplink_free_at);
    SimTime serialize = static_cast<double>(bytes) / config_.uplink_bytes_per_second;
    sender.uplink_free_at = start + serialize;
    delay += (sender.uplink_free_at - engine_.now());
  }
  return true;
}

void Network::deliver(NodeId from, NodeId to, const MessagePtr& msg) {
  NodeRecord& target = nodes_[to];
  const bool sharded = sharded_engine_ != nullptr;
  // Sharded runs account deliveries into the receiver's shard stats (this
  // code runs on the receiver's thread).
  TrafficStats& stats = sharded ? shard_traffic_[shard_of_[to]] : traffic_;
  if (target.alive && target.endpoint != nullptr) {
    stats.record_delivered();
    if (trace_ != nullptr) trace_->on_deliver(engine_.now(), from, to, *msg);
    target.endpoint->handle_message(from, msg);
    return;
  }
  stats.record_dropped_dead();
  if (trace_ != nullptr) {
    trace_->on_drop(engine_.now(), from, to, *msg, DropReason::kDeadReceiver);
  }
  if (!config_.notify_send_failures) return;
  // The reset notification takes another one-way trip back.
  auto notify = [this, from, to, msg] {
    NodeRecord& s = nodes_[from];
    if (s.alive && s.endpoint != nullptr) {
      s.endpoint->handle_send_failure(to, msg);
    }
  };
  if (sharded) {
    // Runs on the dead receiver's shard: the key comes from the receiver's
    // own counter (its program order is shard-invariant), and the trip back
    // covers the cross-shard lookahead bound.
    route_sharded(to, shard_of_[from], engine_of(to).now() + one_way(from, to),
                  sim::InlineCallback(std::move(notify)));
    return;
  }
  engine_.schedule_after(one_way(from, to), std::move(notify));
}

}  // namespace gocast::net

// Traffic accounting: global and per-kind counters, plus optional per
// site-pair byte counts feeding the underlay link-stress analysis.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "net/message.h"

namespace gocast::net {

struct KindCounters {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class TrafficStats {
 public:
  void record_send(MsgKind kind, std::size_t bytes) {
    ++sent_.messages;
    sent_.bytes += bytes;
    auto& k = per_kind_[static_cast<std::size_t>(kind)];
    ++k.messages;
    k.bytes += bytes;
  }

  void record_delivered() { ++delivered_; }
  void record_dropped_dead() { ++dropped_dead_; }
  void record_lost() { ++lost_; }
  void record_sender_dead() { ++sender_dead_; }
  void record_policy_dropped() { ++policy_dropped_; }

  void record_site_pair(std::uint32_t site_a, std::uint32_t site_b,
                        std::size_t bytes) {
    if (site_a == site_b) return;
    auto key = pack_pair(site_a, site_b);
    site_pair_bytes_[key] += static_cast<double>(bytes);
  }

  [[nodiscard]] const KindCounters& total_sent() const { return sent_; }
  [[nodiscard]] const KindCounters& kind(MsgKind k) const {
    return per_kind_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped_dead() const { return dropped_dead_; }
  [[nodiscard]] std::uint64_t lost() const { return lost_; }
  [[nodiscard]] std::uint64_t sender_dead() const { return sender_dead_; }
  /// Messages a LinkPolicy blocked (partition) or lossily degraded away.
  [[nodiscard]] std::uint64_t policy_dropped() const { return policy_dropped_; }

  /// Per unordered-site-pair byte totals (only populated when the owning
  /// Network was configured with record_site_pairs).
  [[nodiscard]] const std::unordered_map<std::uint64_t, double>&
  site_pair_bytes() const {
    return site_pair_bytes_;
  }

  /// Drops accumulated site-pair traffic (e.g. to exclude warmup traffic
  /// from a link-stress comparison).
  void clear_site_pairs() { site_pair_bytes_.clear(); }

  /// Refunds bytes that were recorded at send time but never actually
  /// crossed the wire (a receiver aborted a redundant transfer, paper §2.1
  /// optimization 1).
  void refund_site_pair(std::uint32_t site_a, std::uint32_t site_b,
                        std::size_t bytes) {
    if (site_a == site_b) return;
    auto it = site_pair_bytes_.find(pack_pair(site_a, site_b));
    if (it == site_pair_bytes_.end()) return;
    it->second = std::max(0.0, it->second - static_cast<double>(bytes));
    aborted_bytes_ += bytes;
  }

  [[nodiscard]] std::uint64_t aborted_bytes() const { return aborted_bytes_; }

  /// Folds another stats object into this one (sharded runs keep one
  /// TrafficStats per shard and fold them into the Network's main stats at
  /// window barriers; see net::Network::fold_shard_traffic).
  void merge_from(const TrafficStats& other) {
    sent_.messages += other.sent_.messages;
    sent_.bytes += other.sent_.bytes;
    for (std::size_t k = 0; k < per_kind_.size(); ++k) {
      per_kind_[k].messages += other.per_kind_[k].messages;
      per_kind_[k].bytes += other.per_kind_[k].bytes;
    }
    delivered_ += other.delivered_;
    dropped_dead_ += other.dropped_dead_;
    lost_ += other.lost_;
    sender_dead_ += other.sender_dead_;
    policy_dropped_ += other.policy_dropped_;
    aborted_bytes_ += other.aborted_bytes_;
    for (const auto& [key, bytes] : other.site_pair_bytes_) {
      site_pair_bytes_[key] += bytes;
    }
  }

  [[nodiscard]] static std::uint64_t pack_pair(std::uint32_t a, std::uint32_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  [[nodiscard]] std::string report() const;

 private:
  KindCounters sent_;
  std::array<KindCounters, kMsgKindCount> per_kind_{};
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_dead_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t sender_dead_ = 0;
  std::uint64_t policy_dropped_ = 0;
  std::uint64_t aborted_bytes_ = 0;
  std::unordered_map<std::uint64_t, double> site_pair_bytes_;
};

}  // namespace gocast::net

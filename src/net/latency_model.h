// Latency models. A model maps (site, site) -> one-way latency in seconds.
// Sites correspond to the measured DNS-server locations of the King dataset;
// multiple overlay nodes may share one site (the paper does the same when
// simulating more nodes than measured servers).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace gocast::net {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  [[nodiscard]] virtual std::size_t site_count() const = 0;

  /// One-way latency between two distinct sites, in seconds. Symmetric.
  /// one_way(s, s) == 0 by convention; intra-site latency between distinct
  /// co-located nodes is applied by the Network.
  [[nodiscard]] virtual SimTime one_way(std::uint32_t site_a,
                                        std::uint32_t site_b) const = 0;

  /// Mean one-way latency over all unordered distinct site pairs.
  [[nodiscard]] SimTime mean_one_way() const;

  /// Maximum one-way latency over all pairs.
  [[nodiscard]] SimTime max_one_way() const;

  /// Minimum one-way latency over site pairs that `partition_of_site`
  /// (size site_count()) assigns to different partitions — the conservative
  /// lookahead bound for sharded PDES runs (DESIGN.md §11): a message between
  /// shards can never arrive sooner than this. Returns kNever when every site
  /// shares one partition. Default is an O(sites^2) scan through one_way();
  /// MatrixLatencyModel overrides it with a direct matrix sweep.
  [[nodiscard]] virtual SimTime min_cross_partition_one_way(
      std::span<const std::uint32_t> partition_of_site) const;
};

/// Dense symmetric matrix of one-way latencies.
class MatrixLatencyModel final : public LatencyModel {
 public:
  /// Takes a row-major n*n matrix of one-way latencies in seconds. Must be
  /// symmetric with a zero diagonal.
  MatrixLatencyModel(std::size_t sites, std::vector<float> one_way_seconds);

  [[nodiscard]] std::size_t site_count() const override { return sites_; }

  [[nodiscard]] SimTime one_way(std::uint32_t a, std::uint32_t b) const override {
    return matrix_[static_cast<std::size_t>(a) * sites_ + b];
  }

  [[nodiscard]] SimTime min_cross_partition_one_way(
      std::span<const std::uint32_t> partition_of_site) const override;

  /// Parses the p2psim "king data" text format: one "i j rtt_microseconds"
  /// triple per line (1-based indices). RTTs are halved to one-way latencies,
  /// matching the paper. Rows/columns with no measurements are dropped.
  static std::unique_ptr<MatrixLatencyModel> load_king_file(const std::string& path);

 private:
  std::size_t sites_;
  std::vector<float> matrix_;
};

/// Parameters of the synthetic King-like dataset. Defaults reproduce the
/// envelope the paper reports for the real data: ~1,740 sites, average
/// one-way latency ~91 ms, maximum one-way latency capped at 399 ms.
struct SyntheticKingParams {
  std::size_t sites = 1740;
  double target_mean_one_way = 0.091;  ///< seconds
  double max_one_way = 0.399;          ///< seconds; values are clamped here
  double min_one_way = 0.0005;         ///< floor for distinct-site latency
  double cluster_stddev_ms = 9.0;    ///< geographic spread within a cluster
  /// Per-site last-mile delay. Kept small: the real King data contains many
  /// sub-10 ms server pairs, which is what lets GoCast build ~15 ms tree
  /// links; large access delays would put an artificial floor under them.
  double access_delay_min_ms = 0.5;
  double access_delay_max_ms = 8.0;
  double jitter_min = 0.85;            ///< multiplicative path noise
  double jitter_max = 1.30;
  /// Worker threads for the O(sites^2) matrix fill (0 = auto, see
  /// gocast::resolve_threads). Jitter is drawn serially in pair order
  /// before the sharded fill, so the matrix is identical at every thread
  /// count — and to the historical all-serial generator.
  std::size_t threads = 0;
};

/// Builds the clustered synthetic dataset (see DESIGN.md, substitution table):
/// sites are placed around continental cluster centers in a 2-D plane whose
/// metric is milliseconds; pairwise latency = scaled Euclidean distance +
/// both sites' access delays, times a symmetric jitter factor; the matrix is
/// rescaled so the mean matches `target_mean_one_way` and clamped to
/// `max_one_way`.
[[nodiscard]] std::unique_ptr<MatrixLatencyModel> make_synthetic_king(
    const SyntheticKingParams& params, Rng rng);

/// Simple Euclidean model for tests: sites on a ring, latency proportional to
/// arc distance. Deterministic and triangle-inequality-clean.
class RingLatencyModel final : public LatencyModel {
 public:
  RingLatencyModel(std::size_t sites, SimTime max_one_way);

  [[nodiscard]] std::size_t site_count() const override { return sites_; }
  [[nodiscard]] SimTime one_way(std::uint32_t a, std::uint32_t b) const override;

 private:
  std::size_t sites_;
  SimTime max_one_way_;
};

}  // namespace gocast::net

// EXT — Adaptive maintenance and gossip periods (the paper's future-work
// sketches: "the gossip period t is dynamically tunable according to the
// message rate"; "the maintenance cycle r can be increased accordingly to
// reduce maintenance overheads").
//
// Measures the control-traffic saved during a long idle phase and verifies
// the cost: delivery delay when traffic resumes.
#include <iostream>

#include "analysis/delivery_tracker.h"
#include "common/env.h"
#include "gocast/system.h"
#include "harness/table.h"

namespace {

struct Result {
  double idle_msgs_per_node_per_s;
  double resume_mean_delay;
  double resume_delivered;
};

Result run(std::size_t nodes, bool adaptive) {
  using namespace gocast;
  core::SystemConfig config;
  config.node_count = nodes;
  config.seed = 81;
  config.node.overlay.adaptive_maintenance = adaptive;
  config.node.dissemination.adaptive_gossip = adaptive;
  core::System system(config);
  analysis::DeliveryTracker tracker(nodes);
  system.set_delivery_hook(tracker.hook());
  system.start();
  system.run_for(120.0);  // converge

  // Idle phase: count all control traffic.
  std::uint64_t before = system.network().traffic().total_sent().messages;
  system.run_for(120.0);
  std::uint64_t idle_msgs =
      system.network().traffic().total_sent().messages - before;

  // Traffic resumes.
  tracker.set_recording(true);
  for (int i = 0; i < 20; ++i) {
    system.engine().schedule_at(system.now() + i * 0.05, [&system] {
      system.node(system.random_alive_node()).multicast(512);
    });
  }
  system.run_for(20.0);

  auto report = tracker.report(system.alive_nodes());
  return Result{
      static_cast<double>(idle_msgs) / static_cast<double>(nodes) / 120.0,
      report.delay.mean(), report.delivered_fraction};
}

}  // namespace

int main() {
  using namespace gocast;
  using harness::fmt;

  std::size_t nodes = scaled_count(512, 64);

  harness::print_banner(
      std::cout,
      "EXT: adaptive maintenance/gossip periods (n=" + std::to_string(nodes) + ")",
      "future-work extension: idle overhead shrinks; delivery stays complete "
      "and fast once traffic resumes");

  Result fixed = run(nodes, false);
  Result adaptive = run(nodes, true);

  harness::Table table({"variant", "idle ctl msgs/node/s", "resume mean delay",
                        "resume delivered"});
  table.add_row({"fixed periods", fmt(fixed.idle_msgs_per_node_per_s, 1),
                 harness::fmt_ms(fixed.resume_mean_delay),
                 harness::fmt_pct(fixed.resume_delivered, 2)});
  table.add_row({"adaptive periods", fmt(adaptive.idle_msgs_per_node_per_s, 1),
                 harness::fmt_ms(adaptive.resume_mean_delay),
                 harness::fmt_pct(adaptive.resume_delivered, 2)});
  table.print(std::cout);

  harness::print_claim(
      std::cout, "idle control-traffic reduction", "substantial",
      fmt(fixed.idle_msgs_per_node_per_s / adaptive.idle_msgs_per_node_per_s, 1) +
          "x less");
  return adaptive.resume_delivered == 1.0 ? 0 : 1;
}

// TXT1 — Convergence of the overlay (paper §3, summary result 1).
//
// "Starting with a random structure with random links only, the overlay
// converges quickly to a stable state under our adaptation protocols. The
// number of changed links per second drops exponentially over time."
#include <iostream>
#include <vector>

#include "common/env.h"
#include "gocast/system.h"
#include "harness/table.h"

int main() {
  using namespace gocast;
  using harness::fmt;

  std::size_t nodes = scaled_count(1024, 128);
  double horizon = env_double("GOCAST_WARMUP", 240.0);

  harness::print_banner(
      std::cout, "TXT1: link changes per second over time (n=" +
                     std::to_string(nodes) + ")",
      "changed links per second drops exponentially as the overlay "
      "stabilizes");

  core::SystemConfig config;
  config.node_count = nodes;
  config.seed = 31;
  config.node.overlay.record_link_changes = true;
  core::System system(config);
  system.start();
  system.run_for(horizon);

  // Aggregate link-change timestamps across nodes into buckets.
  const double bucket = 10.0;
  std::vector<double> counts(static_cast<std::size_t>(horizon / bucket) + 1, 0);
  for (NodeId id = 0; id < system.size(); ++id) {
    for (SimTime t : system.node(id).overlay().link_change_times()) {
      auto b = static_cast<std::size_t>(t / bucket);
      if (b < counts.size()) counts[b] += 1.0;
    }
  }

  harness::Table table({"window", "link changes/s (per node)"});
  for (std::size_t b = 0; b < counts.size() - 1; ++b) {
    double per_second = counts[b] / bucket / static_cast<double>(nodes);
    table.add_row({fmt(b * bucket, 0) + "-" + fmt((b + 1) * bucket, 0) + " s",
                   fmt(per_second, 4)});
  }
  table.print(std::cout);

  double early = counts[0];
  double late = counts[counts.size() - 2];
  harness::print_claim(std::cout, "late/early change-rate ratio",
                       "<< 1 (exponential drop)",
                       fmt(late / std::max(early, 1.0), 4));
  return 0;
}

// TXT2 — Average overlay link latency vs number of random links (paper §3,
// summary result 2).
//
// "The average latency of the overlay links grows almost linearly with the
// number of random links, which again justifies our use of only one random
// link per node." (Total degree fixed at 6.)
#include <iostream>

#include "analysis/graph_analysis.h"
#include "common/env.h"
#include "gocast/system.h"
#include "harness/args.h"
#include "harness/runner.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace gocast;
  using harness::fmt;
  using harness::fmt_ms;

  harness::Args args(argc, argv, {"threads", "help"});
  if (args.get_bool("help", false)) {
    std::cout << "txt_latency_vs_random — overlay link latency vs C_rand\n"
                 "flags: --threads N [0 = auto]\n";
    return 0;
  }

  std::size_t nodes = scaled_count(1024, 128);
  double warmup = env_double("GOCAST_WARMUP", 240.0);

  harness::print_banner(
      std::cout,
      "TXT2: mean overlay link latency vs C_rand (degree 6, n=" +
          std::to_string(nodes) + ")",
      "mean overlay latency grows ~linearly with the number of random links");

  // Each C_rand run builds its own system, so the five runs shard cleanly
  // across the pool; only the measured latencies leave the job.
  struct Row {
    double overlay = 0.0;
    double nearby = 0.0;
    double random = 0.0;
  };
  const int rand_degrees[] = {0, 1, 2, 3, 4};
  harness::Runner runner(
      static_cast<std::size_t>(args.get_int("threads", 0)));
  std::vector<Row> rows = runner.run<Row>(
      std::size(rand_degrees), [&](std::size_t g) {
        const int c_rand = rand_degrees[g];
        core::SystemConfig config;
        config.node_count = nodes;
        config.seed = 41 + static_cast<std::uint64_t>(c_rand);
        config.node.overlay.target_rand_degree = c_rand;
        config.node.overlay.target_near_degree = 6 - c_rand;
        if (config.node.overlay.target_near_degree == 0) {
          config.node.overlay.maintain_nearby = false;
        }
        core::System system(config);
        system.start();
        system.run_for(warmup);
        Row row;
        row.overlay = analysis::link_latency_stats(system).mean_overlay_one_way;
        row.nearby = analysis::mean_link_latency_of_kind(
            system, overlay::LinkKind::kNearby);
        row.random = analysis::mean_link_latency_of_kind(
            system, overlay::LinkKind::kRandom);
        return row;
      });

  harness::Table table({"C_rand", "C_near", "mean overlay one-way",
                        "mean nearby one-way", "mean random one-way"});
  std::vector<double> means;
  for (std::size_t g = 0; g < rows.size(); ++g) {
    const int c_rand = rand_degrees[g];
    means.push_back(rows[g].overlay);
    table.add_row({std::to_string(c_rand), std::to_string(6 - c_rand),
                   fmt_ms(rows[g].overlay), fmt_ms(rows[g].nearby),
                   fmt_ms(rows[g].random)});
  }
  table.print(std::cout);

  // Linearity check: successive increments should be roughly equal.
  std::cout << "  per-random-link latency increments:";
  for (std::size_t i = 1; i < means.size(); ++i) {
    std::cout << " " << fmt_ms(means[i] - means[i - 1]);
  }
  std::cout << "\n";
  return 0;
}

// TXT2 — Average overlay link latency vs number of random links (paper §3,
// summary result 2).
//
// "The average latency of the overlay links grows almost linearly with the
// number of random links, which again justifies our use of only one random
// link per node." (Total degree fixed at 6.)
#include <iostream>

#include "analysis/graph_analysis.h"
#include "common/env.h"
#include "gocast/system.h"
#include "harness/table.h"

int main() {
  using namespace gocast;
  using harness::fmt;
  using harness::fmt_ms;

  std::size_t nodes = scaled_count(1024, 128);
  double warmup = env_double("GOCAST_WARMUP", 240.0);

  harness::print_banner(
      std::cout,
      "TXT2: mean overlay link latency vs C_rand (degree 6, n=" +
          std::to_string(nodes) + ")",
      "mean overlay latency grows ~linearly with the number of random links");

  harness::Table table({"C_rand", "C_near", "mean overlay one-way",
                        "mean nearby one-way", "mean random one-way"});
  std::vector<double> means;
  for (int c_rand : {0, 1, 2, 3, 4}) {
    core::SystemConfig config;
    config.node_count = nodes;
    config.seed = 41 + static_cast<std::uint64_t>(c_rand);
    config.node.overlay.target_rand_degree = c_rand;
    config.node.overlay.target_near_degree = 6 - c_rand;
    if (config.node.overlay.target_near_degree == 0) {
      config.node.overlay.maintain_nearby = false;
    }
    core::System system(config);
    system.start();
    system.run_for(warmup);

    auto stats = analysis::link_latency_stats(system);
    means.push_back(stats.mean_overlay_one_way);
    table.add_row(
        {std::to_string(c_rand), std::to_string(6 - c_rand),
         fmt_ms(stats.mean_overlay_one_way),
         fmt_ms(analysis::mean_link_latency_of_kind(system,
                                                    overlay::LinkKind::kNearby)),
         fmt_ms(analysis::mean_link_latency_of_kind(
             system, overlay::LinkKind::kRandom))});
  }
  table.print(std::cout);

  // Linearity check: successive increments should be roughly equal.
  std::cout << "  per-random-link latency increments:";
  for (std::size_t i = 1; i < means.size(); ++i) {
    std::cout << " " << fmt_ms(means[i] - means[i - 1]);
  }
  std::cout << "\n";
  return 0;
}

// PERF — tracked large-scale baseline: builds an 8k-node (default) GoCast
// deployment, runs 60 simulated seconds of full protocol activity (overlay
// maintenance, tree heartbeats, gossip, plus a stream of multicasts), and
// reports wall-clock time, events per second, and peak RSS as JSON. The
// output feeds tools/bench.sh, which assembles BENCH_core.json so perf
// changes are visible in review instead of anecdotal.
//
//   perf_scaling [--nodes N] [--seconds S] [--messages M] [--seed X]
//
// The run is deterministic per seed; timing obviously is not.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "gocast/system.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Peak resident set size in MiB (ru_maxrss is KiB on Linux).
double peak_rss_mib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t nodes = 8192;
  double sim_seconds = 60.0;
  std::size_t messages = 50;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--nodes") == 0) {
      nodes = static_cast<std::size_t>(std::strtoull(need_value("--nodes"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--seconds") == 0) {
      sim_seconds = std::strtod(need_value("--seconds"), nullptr);
    } else if (std::strcmp(argv[i], "--messages") == 0) {
      messages = static_cast<std::size_t>(std::strtoull(need_value("--messages"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--nodes N] [--seconds S] [--messages M] "
                   "[--seed X]\n",
                   argv[0]);
      return 2;
    }
  }

  using namespace gocast;

  const auto setup_start = Clock::now();
  core::SystemConfig config;
  config.node_count = nodes;
  config.seed = seed;
  config.latency = core::default_latency_model(seed);
  core::System system(config);
  system.start();
  const double setup_wall = seconds_since(setup_start);

  // Full-protocol load: maintenance everywhere, plus multicasts injected at
  // an even cadence through the middle of the run so data dissemination,
  // pull recovery, and payload GC all contribute events.
  const auto run_start = Clock::now();
  const double inject_begin = sim_seconds * 0.3;
  const double inject_end = sim_seconds * 0.9;
  system.run_until(inject_begin);
  for (std::size_t m = 0; m < messages; ++m) {
    system.run_until(inject_begin + (inject_end - inject_begin) *
                                        static_cast<double>(m) /
                                        static_cast<double>(messages));
    system.node(system.random_alive_node()).multicast(1024);
  }
  system.run_until(sim_seconds);
  const double run_wall = seconds_since(run_start);

  const std::uint64_t events = system.engine().processed();
  const auto& pool = system.network().pool();
  std::printf(
      "{\n"
      "  \"nodes\": %zu,\n"
      "  \"sim_seconds\": %.1f,\n"
      "  \"messages\": %zu,\n"
      "  \"seed\": %llu,\n"
      "  \"setup_wall_seconds\": %.3f,\n"
      "  \"run_wall_seconds\": %.3f,\n"
      "  \"events_processed\": %llu,\n"
      "  \"events_per_second\": %.0f,\n"
      "  \"events_pending_at_end\": %zu,\n"
      "  \"peak_rss_mib\": %.1f,\n"
      "  \"pool\": {\"reused\": %llu, \"fresh\": %llu, \"oversized\": %llu, "
      "\"chunks\": %zu}\n"
      "}\n",
      nodes, sim_seconds, messages,
      static_cast<unsigned long long>(seed), setup_wall, run_wall,
      static_cast<unsigned long long>(events),
      run_wall > 0.0 ? static_cast<double>(events) / run_wall : 0.0,
      system.engine().pending(), peak_rss_mib(),
      static_cast<unsigned long long>(pool.reused()),
      static_cast<unsigned long long>(pool.fresh()),
      static_cast<unsigned long long>(pool.oversized()), pool.chunks());
  return 0;
}

// PERF — tracked large-scale baseline: builds an 8k-node (default) GoCast
// deployment, runs 60 simulated seconds of full protocol activity (overlay
// maintenance, tree heartbeats, gossip, plus a stream of multicasts), and
// reports wall-clock time, events per second, and peak RSS as JSON. The
// output feeds tools/bench.sh, which assembles BENCH_core.json so perf
// changes are visible in review instead of anecdotal.
//
//   perf_scaling [--nodes N] [--seconds S] [--messages M] [--seed X]
//                [--mem-report] [--groups G] [--shards K]
//   perf_scaling --sweep [--threads T] [--reps R] [--nodes N] [--seed X]
//   perf_scaling --curve [--seed X] [--curve-points N1,N2,...]
//
// --sweep runs R independent replications of a small scenario through
// harness::Runner and reports wall clock, replications/hour, and a
// deterministic checksum over the merged results — the checksum must be
// identical at every thread count, which tools/bench.sh asserts when it
// records the sweep_parallel section of BENCH_core.json.
//
// --mem-report appends a per-subsystem byte breakdown (engine slots,
// membership views, message pool, digest store, overlay/tree trackers) to
// the JSON, from System::memory_report(). With --groups G > 1 the
// deployment is multi-group and the breakdown gains a per-group
// dissemination+tree byte table ("group_bytes"), answering what each extra
// group costs on top of the shared substrate.
//
// --shards K runs the deployment on the sharded conservative-PDES engine
// (DESIGN.md §11). The JSON gains "shards" (requested), "effective_shards"
// (after fallbacks) and a deterministic "checksum" over per-node delivery
// counters plus traffic totals — identical at every shard count, which
// tools/bench.sh asserts when it records the pdes_scaling section.
//
// --curve runs one single-run point per node count (default 8k/32k/128k/512k,
// sim horizon scaled down as the deployment grows) and emits a JSON array of
// the per-point reports. Each point re-executes this binary (/proc/self/exe)
// so its peak RSS is a clean per-process measurement instead of the max over
// all smaller points; each point's JSON carries its own nodes/seed/horizon
// metadata and a memory breakdown.
//
// The run is deterministic per seed; timing obviously is not.
#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "gocast/system.h"
#include "harness/runner.h"
#include "harness/scenario.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Peak resident set size in MiB (ru_maxrss is KiB on Linux).
double peak_rss_mib() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

const char* build_type() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

/// FNV-1a over the result fields that any scheduling bug would perturb.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ULL;
}

int run_sweep_mode(std::size_t threads, std::size_t reps, std::size_t nodes,
                   std::uint64_t seed) {
  using namespace gocast;

  harness::SweepSpec spec;
  spec.base.protocol = harness::Protocol::kGoCast;
  spec.base.node_count = nodes;
  spec.base.seed = seed;
  spec.base.warmup = 60.0;
  spec.base.message_count = 20;
  spec.base.drain = 20.0;
  spec.replications = reps;

  harness::Runner runner(threads);
  const auto start = Clock::now();
  auto runs = harness::run_sweep(spec, runner);
  const double wall = seconds_since(start);

  std::uint64_t checksum = 0xcbf29ce484222325ULL;
  for (const auto& run : runs) {
    checksum = mix(checksum, run.result.deliveries);
    checksum = mix(checksum, run.result.duplicates);
    checksum = mix(checksum, run.result.traffic.total_sent().messages);
    checksum = mix(checksum, run.result.traffic.total_sent().bytes);
    checksum = mix(checksum,
                   static_cast<std::uint64_t>(run.result.alive_nodes));
  }

  const double rep_hour =
      wall > 0.0 ? static_cast<double>(reps) * 3600.0 / wall : 0.0;
  const double rss = peak_rss_mib();
  std::printf(
      "{\n"
      "  \"mode\": \"sweep\",\n"
      "  \"build_type\": \"%s\",\n"
      "  \"threads\": %zu,\n"
      "  \"reps\": %zu,\n"
      "  \"nodes\": %zu,\n"
      "  \"seed\": %llu,\n"
      "  \"wall_seconds\": %.3f,\n"
      "  \"replications_per_hour\": %.1f,\n"
      "  \"peak_rss_mib\": %.1f,\n"
      "  \"peak_rss_per_thread_mib\": %.1f,\n"
      "  \"checksum\": \"%016llx\"\n"
      "}\n",
      build_type(), runner.threads(), reps, nodes,
      static_cast<unsigned long long>(seed), wall, rep_hour, rss,
      rss / static_cast<double>(runner.threads()),
      static_cast<unsigned long long>(checksum));
  return 0;
}

/// One --curve point: sim horizon and injected message count shrink as the
/// deployment grows so every point finishes in minutes on one core while
/// still exercising maintenance + dissemination + GC.
struct CurvePoint {
  std::size_t nodes;
  double sim_seconds;
  std::size_t messages;
};

CurvePoint curve_point_for(std::size_t nodes) {
  if (nodes <= 8192) return {nodes, 60.0, 50};
  if (nodes <= 32768) return {nodes, 20.0, 20};
  if (nodes <= 131072) return {nodes, 8.0, 8};
  return {nodes, 3.0, 2};
}

int run_curve_mode(const std::vector<std::size_t>& point_nodes,
                   std::uint64_t seed) {
  // Resolve our own binary path up front: popen's child is a shell, so a
  // literal /proc/self/exe in the command would resolve to the shell, not
  // to this benchmark.
  char exe[PATH_MAX];
  const ssize_t exe_len = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (exe_len <= 0) {
    std::perror("readlink /proc/self/exe");
    return 1;
  }
  exe[exe_len] = '\0';

  std::printf("[\n");
  bool first = true;
  for (std::size_t nodes : point_nodes) {
    const CurvePoint p = curve_point_for(nodes);
    // Fresh process per point: peak RSS is per-point truth, and a crashed
    // giant point (OOM) fails that point instead of the whole curve.
    char cmd[PATH_MAX + 128];
    std::snprintf(cmd, sizeof(cmd),
                  "\"%s\" --nodes %zu --seconds %.1f --messages %zu "
                  "--seed %llu --mem-report",
                  exe, p.nodes, p.sim_seconds, p.messages,
                  static_cast<unsigned long long>(seed));
    std::fprintf(stderr, "curve point: %s\n", cmd);
    FILE* child = popen(cmd, "r");
    if (child == nullptr) {
      std::fprintf(stderr, "popen failed for %zu nodes\n", nodes);
      return 1;
    }
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = fread(buf, 1, sizeof(buf), child)) > 0) out.append(buf, n);
    const int status = pclose(child);
    if (status != 0) {
      std::fprintf(stderr, "curve point %zu nodes exited with status %d\n",
                   nodes, status);
      return 1;
    }
    if (!first) std::printf(",\n");
    first = false;
    // Child output is a complete JSON object; trim the trailing newline so
    // the array renders cleanly.
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
      out.pop_back();
    }
    std::printf("%s", out.c_str());
    std::fflush(stdout);
  }
  std::printf("\n]\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t nodes = 8192;
  double sim_seconds = 60.0;
  std::size_t messages = 50;
  std::uint64_t seed = 1;
  bool sweep = false;
  std::size_t threads = 0;
  std::size_t reps = 8;
  bool nodes_set = false;
  bool mem_report = false;
  std::size_t groups = 1;
  std::size_t shards = 1;
  bool curve = false;
  std::vector<std::size_t> curve_points{8192, 32768, 131072, 524288};

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--nodes") == 0) {
      nodes = static_cast<std::size_t>(std::strtoull(need_value("--nodes"), nullptr, 10));
      nodes_set = true;
    } else if (std::strcmp(argv[i], "--seconds") == 0) {
      sim_seconds = std::strtod(need_value("--seconds"), nullptr);
    } else if (std::strcmp(argv[i], "--messages") == 0) {
      messages = static_cast<std::size_t>(std::strtoull(need_value("--messages"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--sweep") == 0) {
      sweep = true;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<std::size_t>(std::strtoull(need_value("--threads"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--reps") == 0) {
      reps = static_cast<std::size_t>(std::strtoull(need_value("--reps"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--mem-report") == 0) {
      mem_report = true;
    } else if (std::strcmp(argv[i], "--groups") == 0) {
      groups = static_cast<std::size_t>(
          std::strtoull(need_value("--groups"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      shards = static_cast<std::size_t>(
          std::strtoull(need_value("--shards"), nullptr, 10));
      if (shards == 0) shards = 1;
    } else if (std::strcmp(argv[i], "--curve") == 0) {
      curve = true;
    } else if (std::strcmp(argv[i], "--curve-points") == 0) {
      curve_points.clear();
      for (const char* s = need_value("--curve-points"); *s != '\0';) {
        char* end = nullptr;
        curve_points.push_back(
            static_cast<std::size_t>(std::strtoull(s, &end, 10)));
        s = (*end == ',') ? end + 1 : end;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--nodes N] [--seconds S] [--messages M] "
                   "[--seed X] [--mem-report] [--shards K] "
                   "[--sweep [--threads T] "
                   "[--reps R]] [--curve [--curve-points N1,N2,...]]\n",
                   argv[0]);
      return 2;
    }
  }

  if (curve) return run_curve_mode(curve_points, seed);

  if (sweep) {
    // The sweep replications are deliberately small so serial-vs-parallel
    // wall clock measures pool overhead, not one giant run.
    return run_sweep_mode(threads, reps, nodes_set ? nodes : 256, seed);
  }

  using namespace gocast;

  const auto setup_start = Clock::now();
  core::SystemConfig config;
  config.node_count = nodes;
  config.seed = seed;
  config.latency = core::default_latency_model(seed);
  config.groups.group_count = groups;
  config.shard_count = shards;
  core::System system(config);
  system.start();
  const double setup_wall = seconds_since(setup_start);

  // Full-protocol load: maintenance everywhere, plus multicasts injected at
  // an even cadence through the middle of the run so data dissemination,
  // pull recovery, and payload GC all contribute events.
  const auto run_start = Clock::now();
  const double inject_begin = sim_seconds * 0.3;
  const double inject_end = sim_seconds * 0.9;
  system.run_until(inject_begin);
  for (std::size_t m = 0; m < messages; ++m) {
    system.run_until(inject_begin + (inject_end - inject_begin) *
                                        static_cast<double>(m) /
                                        static_cast<double>(messages));
    system.node(system.random_alive_node()).multicast(1024);
  }
  system.run_until(sim_seconds);
  const double run_wall = seconds_since(run_start);

  const std::uint64_t events = system.events_processed();
  const auto pool = system.network().pool_counters();
  const double rss = peak_rss_mib();

  // Shard-count-invariant digest: per-node delivery counters in id order plus
  // the folded traffic totals. bench.sh asserts this across --shards values.
  std::uint64_t checksum = 0xcbf29ce484222325ULL;
  for (std::size_t id = 0; id < nodes; ++id) {
    checksum = mix(checksum, system.node(static_cast<gocast::NodeId>(id))
                                 .deliveries_count());
    checksum = mix(checksum, system.node(static_cast<gocast::NodeId>(id))
                                 .duplicates_count());
  }
  checksum = mix(checksum, system.network().traffic().total_sent().messages);
  checksum = mix(checksum, system.network().traffic().total_sent().bytes);

  std::printf(
      "{\n"
      "  \"build_type\": \"%s\",\n"
      "  \"nodes\": %zu,\n"
      "  \"sim_seconds\": %.1f,\n"
      "  \"messages\": %zu,\n"
      "  \"seed\": %llu,\n"
      "  \"shards\": %zu,\n"
      "  \"effective_shards\": %zu,\n"
      "  \"checksum\": \"%016llx\",\n"
      "  \"setup_wall_seconds\": %.3f,\n"
      "  \"run_wall_seconds\": %.3f,\n"
      "  \"events_processed\": %llu,\n"
      "  \"events_per_second\": %.0f,\n"
      "  \"events_pending_at_end\": %zu,\n"
      "  \"peak_rss_mib\": %.1f,\n"
      "  \"bytes_per_node\": %.0f,\n"
      "  \"pool\": {\"reused\": %llu, \"fresh\": %llu, \"oversized\": %llu, "
      "\"chunks\": %zu}",
      build_type(), nodes, sim_seconds, messages,
      static_cast<unsigned long long>(seed), shards, system.shard_count(),
      static_cast<unsigned long long>(checksum), setup_wall, run_wall,
      static_cast<unsigned long long>(events),
      run_wall > 0.0 ? static_cast<double>(events) / run_wall : 0.0,
      system.events_pending(), rss,
      rss * 1024.0 * 1024.0 / static_cast<double>(nodes),
      static_cast<unsigned long long>(pool.reused),
      static_cast<unsigned long long>(pool.fresh),
      static_cast<unsigned long long>(pool.oversized), pool.chunks);
  if (mem_report) {
    const auto mem = system.memory_report();
    std::printf(
        ",\n"
        "  \"memory\": {\n"
        "    \"engine_bytes\": %zu,\n"
        "    \"network_bytes\": %zu,\n"
        "    \"node_object_bytes\": %zu,\n"
        "    \"view_bytes\": %zu,\n"
        "    \"landmark_store_bytes\": %zu,\n"
        "    \"landmark_unique\": %zu,\n"
        "    \"dissemination_bytes\": %zu,\n"
        "    \"overlay_bytes\": %zu,\n"
        "    \"tree_bytes\": %zu,\n"
        "    \"accounted_total_bytes\": %zu\n"
        "  }",
        mem.engine_bytes, mem.network_bytes, mem.node_object_bytes,
        mem.view_bytes, mem.landmark_store_bytes, mem.landmark_unique,
        mem.dissemination_bytes, mem.overlay_bytes, mem.tree_bytes,
        mem.total_bytes());
    if (!mem.group_bytes.empty()) {
      // Per-group dissemination+tree footprint (multi-group deployments):
      // group 0 is the universal group; extra rows are what each
      // additional group costs on top of the shared substrate.
      std::printf(",\n  \"group_bytes\": {");
      bool first_group = true;
      for (const auto& [group, bytes] : mem.group_bytes) {
        std::printf("%s\"%u\": %zu", first_group ? "" : ", ",
                    static_cast<unsigned>(group), bytes);
        first_group = false;
      }
      std::printf("}");
    }
  }
  std::printf("\n}\n");
  return 0;
}

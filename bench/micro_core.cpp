// MICRO — google-benchmark microbenchmarks of the core primitives the
// simulation's throughput depends on: event scheduling, message delivery,
// overlay snapshots, latency-model generation, and graph analysis.
#include <benchmark/benchmark.h>

#include "analysis/graph_analysis.h"
#include "common/rng.h"
#include "gocast/system.h"
#include "net/latency_model.h"
#include "net/underlay.h"
#include "sim/engine.h"

namespace {

using namespace gocast;

void BM_EngineScheduleAndRun(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (std::size_t i = 0; i < batch; ++i) {
      engine.schedule_at(static_cast<double>(i % 97), [] {});
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EngineScheduleAndRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EngineScheduleBatch(benchmark::State& state) {
  // Same workload as BM_EngineScheduleAndRun, admitted through
  // schedule_batch: the delta between the two is the per-event sift_up cost
  // the batched path saves via Floyd heapify.
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::vector<sim::Engine::BatchEvent> events;
  for (auto _ : state) {
    state.PauseTiming();
    events.clear();
    events.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      events.push_back({static_cast<double>(i % 97), [] {}});
    }
    state.ResumeTiming();
    sim::Engine engine;
    engine.schedule_batch(events);
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EngineScheduleBatch)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EngineCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::vector<sim::EventId> ids;
    ids.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      ids.push_back(engine.schedule_at(static_cast<double>(i), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) engine.cancel(ids[i]);
    benchmark::DoNotOptimize(engine.run());
  }
}
BENCHMARK(BM_EngineCancelHeavy);

void BM_SyntheticKingGeneration(benchmark::State& state) {
  const auto sites = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    net::SyntheticKingParams params;
    params.sites = sites;
    auto model = net::make_synthetic_king(params, Rng(1));
    benchmark::DoNotOptimize(model->one_way(0, 1));
  }
}
BENCHMARK(BM_SyntheticKingGeneration)->Arg(256)->Arg(1024);

void BM_UnderlayLinkLoads(benchmark::State& state) {
  Rng rng(3);
  net::Underlay underlay = net::Underlay::barabasi_albert(256, 2, rng.fork("t"));
  Rng assign = rng.fork("a");
  underlay.assign_sites(1024, assign);
  std::unordered_map<std::uint64_t, double> traffic;
  Rng pairs = rng.fork("p");
  for (int i = 0; i < 5000; ++i) {
    auto a = static_cast<std::uint32_t>(pairs.next_below(1024));
    auto b = static_cast<std::uint32_t>(pairs.next_below(1024));
    if (a == b) continue;
    traffic[net::TrafficStats::pack_pair(a, b)] += 1000.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(underlay.link_loads(traffic));
  }
}
BENCHMARK(BM_UnderlayLinkLoads);

void BM_SystemWarmupSecond(benchmark::State& state) {
  // Cost of one simulated second of a running system (maintenance + gossip).
  const auto nodes = static_cast<std::size_t>(state.range(0));
  core::SystemConfig config;
  config.node_count = nodes;
  config.seed = 9;
  core::System system(config);
  system.start();
  system.run_for(5.0);
  for (auto _ : state) {
    system.run_for(1.0);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_SystemWarmupSecond)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_MulticastDelivery(benchmark::State& state) {
  core::SystemConfig config;
  config.node_count = 256;
  config.seed = 9;
  core::System system(config);
  system.start();
  system.run_for(60.0);
  for (auto _ : state) {
    system.node(system.random_alive_node()).multicast(1024);
    system.run_for(2.0);
  }
}
BENCHMARK(BM_MulticastDelivery)->Unit(benchmark::kMillisecond);

void BM_SnapshotAndComponents(benchmark::State& state) {
  core::SystemConfig config;
  config.node_count = 512;
  config.seed = 9;
  core::System system(config);
  system.start();
  system.run_for(30.0);
  for (auto _ : state) {
    auto graph = analysis::snapshot_overlay(system);
    benchmark::DoNotOptimize(analysis::components(graph));
  }
}
BENCHMARK(BM_SnapshotAndComponents);

}  // namespace

int main(int argc, char** argv) {
  // The distro's libbenchmark bakes its own (debug) build type into the
  // context; report how *this* binary was compiled so tools/bench.sh can
  // refuse to record numbers from an unoptimized build.
#ifdef NDEBUG
  benchmark::AddCustomContext("gocast_build_type", "release");
#else
  benchmark::AddCustomContext("gocast_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

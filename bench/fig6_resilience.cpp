// FIG6 — Resilience of the overlay vs number of random links (paper Fig 6).
//
// For C_rand in {0, 1, 2, 4} (total degree fixed at 6), fail 5%..50% of
// nodes and measure q = largest connected component / live nodes.
// Paper: with zero random links the overlay is partitioned even without
// failures; with one random link it survives 25% concurrent failures; one
// vs four random links differ little.
#include <iostream>

#include "analysis/graph_analysis.h"
#include "common/env.h"
#include "common/rng.h"
#include "gocast/system.h"
#include "harness/args.h"
#include "harness/runner.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace gocast;
  using harness::fmt;

  harness::Args args(argc, argv, {"threads", "help"});
  if (args.get_bool("help", false)) {
    std::cout << "fig6_resilience — live-component size vs random links\n"
                 "flags: --threads N [0 = auto]\n";
    return 0;
  }

  std::size_t nodes = scaled_count(1024, 128);
  double warmup = env_double("GOCAST_WARMUP", 300.0);

  harness::print_banner(
      std::cout,
      "FIG6: largest live component q after concurrent failures (n=" +
          std::to_string(nodes) + ")",
      "C_rand=0 partitions even at 0% failures; C_rand=1 keeps q=1 up to "
      "~25% failures; C_rand=1 vs 4 differ little");

  const int rand_degrees[] = {0, 1, 2, 4};
  const double fail_fractions[] = {0.0, 0.05, 0.10, 0.15, 0.20,
                                   0.25, 0.30, 0.40, 0.50};

  harness::Table table({"failed", "C_rand=0", "C_rand=1", "C_rand=2",
                        "C_rand=4"});

  // One adapted system per C_rand, sharded across the worker pool (each job
  // owns its Engine/Network/System); failures are applied to copies of the
  // final overlay graph (pure graph surgery — cheaper and exactly what the
  // metric measures). The surgery below consumes one shared Rng stream, so
  // it stays serial.
  harness::Runner runner(
      static_cast<std::size_t>(args.get_int("threads", 0)));
  std::vector<analysis::OverlayGraph> graphs =
      runner.run<analysis::OverlayGraph>(
          std::size(rand_degrees), [&](std::size_t g) {
            const int c_rand = rand_degrees[g];
            core::SystemConfig config;
            config.node_count = nodes;
            config.seed = 21 + static_cast<std::uint64_t>(c_rand);
            config.node.overlay.target_rand_degree = c_rand;
            config.node.overlay.target_near_degree = 6 - c_rand;
            if (config.node.overlay.target_near_degree == 0) {
              config.node.overlay.maintain_nearby = false;
            }
            core::System system(config);
            system.start();
            system.run_for(warmup);
            return analysis::snapshot_overlay(system);
          });

  Rng rng(99);
  double q_rand1_at_25 = -1.0;
  double q_rand0_at_0 = -1.0;
  for (double fail : fail_fractions) {
    std::vector<std::string> row{harness::fmt_pct(fail, 0)};
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      // Average q over several random failure draws.
      double q_sum = 0.0;
      const int trials = 3;
      for (int trial = 0; trial < trials; ++trial) {
        analysis::OverlayGraph graph = graphs[g];
        std::vector<NodeId> alive;
        for (NodeId id = 0; id < graph.node_count; ++id) {
          if (graph.alive[id]) alive.push_back(id);
        }
        rng.shuffle(alive);
        auto kill = static_cast<std::size_t>(
            static_cast<double>(alive.size()) * fail + 0.5);
        for (std::size_t i = 0; i < kill; ++i) graph.alive[alive[i]] = false;
        q_sum += analysis::components(graph).largest_fraction;
      }
      double q = q_sum / 3.0;
      row.push_back(fmt(q, 3));
      if (rand_degrees[g] == 1 && fail == 0.25) q_rand1_at_25 = q;
      if (rand_degrees[g] == 0 && fail == 0.0) q_rand0_at_0 = q;
    }
    table.add_row(row);
  }
  table.print(std::cout);

  harness::print_claim(std::cout, "q for C_rand=0 without failures",
                       "< 1 (partitioned)", fmt(q_rand0_at_0, 3));
  harness::print_claim(std::cout, "q for C_rand=1 at 25% failures", "1.0",
                       fmt(q_rand1_at_25, 3));
  return 0;
}

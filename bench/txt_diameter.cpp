// TXT3 — Overlay diameter vs system size (paper §3, summary result 3).
//
// "The overlay is scalable; the diameter of the overlay grows from 6 hops to
// 10 hops when the system size increases from 256 nodes to 8,192 nodes."
#include <iostream>

#include "analysis/graph_analysis.h"
#include "common/env.h"
#include "common/rng.h"
#include "gocast/system.h"
#include "harness/table.h"

int main() {
  using namespace gocast;

  double warmup = env_double("GOCAST_WARMUP", 200.0);
  double scale = bench_scale();

  harness::print_banner(std::cout, "TXT3: overlay diameter vs system size",
                        "diameter grows 6 -> 10 hops from 256 to 8,192 nodes");

  harness::Table table({"nodes", "links", "diameter (hops)", "connected"});
  Rng rng(55);
  std::size_t dia_small = 0;
  std::size_t dia_large = 0;
  std::vector<std::size_t> sizes{256, 1024, 4096, 8192};
  for (std::size_t full : sizes) {
    std::size_t n = scaled_count(full, 64);
    core::SystemConfig config;
    config.node_count = n;
    config.seed = 61;
    core::System system(config);
    system.start();
    system.run_for(warmup);

    auto graph = analysis::snapshot_overlay(system);
    auto comp = analysis::components(graph);
    std::size_t diameter = analysis::estimate_diameter(graph, 8, rng);
    table.add_row({std::to_string(n), std::to_string(graph.link_count()),
                   std::to_string(diameter),
                   comp.largest_fraction == 1.0 ? "yes" : "NO"});
    if (full == sizes.front()) dia_small = diameter;
    if (full == sizes.back()) dia_large = diameter;
  }
  table.print(std::cout);

  harness::print_claim(std::cout, "diameter smallest -> largest system",
                       "6 -> 10 hops",
                       std::to_string(dia_small) + " -> " +
                           std::to_string(dia_large) + " hops" +
                           (scale < 1.0 ? " (scaled run)" : ""));
  return 0;
}

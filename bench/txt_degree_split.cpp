// TXT7 — Stable degree split (paper §2.2.2 and §2.2.3).
//
// "Approximately 88% of nodes have C_rand random neighbors and 12% of nodes
// have C_rand+1"; "eventually about 70% of nodes have C_near nearby
// neighbors and about 30% have C_near+1."
#include <iostream>

#include "analysis/graph_analysis.h"
#include "common/env.h"
#include "gocast/system.h"
#include "harness/table.h"

int main() {
  using namespace gocast;
  using harness::fmt_pct;

  std::size_t nodes = scaled_count(1024, 128);
  double warmup = env_double("GOCAST_WARMUP", 500.0);

  harness::print_banner(
      std::cout,
      "TXT7: stabilized degree split (C_rand=1, C_near=5, n=" +
          std::to_string(nodes) + ")",
      "random degrees: ~88% at C_rand, ~12% at C_rand+1; nearby degrees: "
      "~70% at C_near, ~30% at C_near+1");

  core::SystemConfig config;
  config.node_count = nodes;
  config.seed = 23;
  core::System system(config);
  system.start();
  system.run_for(warmup);

  IntDistribution rand_deg = analysis::rand_degree_distribution(system);
  IntDistribution near_deg = analysis::near_degree_distribution(system);

  harness::Table table({"degree kind", "at C", "at C+1", "below C", "above C+1"});
  table.add_row({"random (C=1)", fmt_pct(rand_deg.fraction(1), 1),
                 fmt_pct(rand_deg.fraction(2), 1),
                 fmt_pct(rand_deg.fraction_leq(0), 1),
                 fmt_pct(1.0 - rand_deg.fraction_leq(2), 1)});
  table.add_row({"nearby (C=5)", fmt_pct(near_deg.fraction(5), 1),
                 fmt_pct(near_deg.fraction(6), 1),
                 fmt_pct(near_deg.fraction_leq(4), 1),
                 fmt_pct(1.0 - near_deg.fraction_leq(6), 1)});
  table.print(std::cout);

  harness::print_claim(std::cout, "random degree split C / C+1", "88% / 12%",
                       fmt_pct(rand_deg.fraction(1), 0) + " / " +
                           fmt_pct(rand_deg.fraction(2), 0));
  harness::print_claim(std::cout, "nearby degree split C / C+1", "70% / 30%",
                       fmt_pct(near_deg.fraction(5), 0) + " / " +
                           fmt_pct(near_deg.fraction(6), 0));
  return 0;
}

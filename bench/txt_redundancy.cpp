// TXT6 — Redundant message receptions in GoCast (paper §2.1).
//
// "On average each node receives a message 1.02 times" with no pull delay;
// "setting f = 0.3 s ... decreas[es] the probability that a node receives
// redundant multicast messages to 0.0005" with "almost no impact on the
// delivery delay".
#include <iostream>

#include "common/env.h"
#include "gocast/system.h"
#include "harness/scenario.h"
#include "harness/table.h"

int main() {
  using namespace gocast;
  using harness::fmt;
  using harness::fmt_ms;

  std::size_t nodes = scaled_count(1024, 128);
  std::size_t messages = scaled_count(200, 30);
  double warmup = env_double("GOCAST_WARMUP", 300.0);

  harness::print_banner(
      std::cout,
      "TXT6: redundant receptions vs pull-delay threshold f (n=" +
          std::to_string(nodes) + ")",
      "avg receptions/node 1.02 at f=0; ~1.0005 at f=0.3 s with unchanged "
      "delay");

  auto latency = core::default_latency_model(1);

  harness::Table table({"f", "receptions per delivery", "mean delay", "p90",
                        "max", "pulls"});
  double redundancy_f0 = 0.0;
  double redundancy_f03 = 0.0;
  double mean_f0 = 0.0;
  double mean_f03 = 0.0;
  double p90_f0 = -1.0;  // filled by the f=0 run; then used as adaptive f
  double redundancy_last = 0.0;
  std::vector<double> thresholds{0.0, 0.15, 0.3, 0.5, -1.0};
  for (double f : thresholds) {
    if (f < 0.0) f = p90_f0;  // the paper's recommendation: f = tree p90
    harness::ScenarioConfig config;
    config.protocol = harness::Protocol::kGoCast;
    config.node_count = nodes;
    config.message_count = messages;
    config.warmup = warmup;
    config.pull_delay_threshold = f;
    config.latency = latency;
    config.seed = 17;
    auto result = harness::run_scenario(config);
    table.add_row({fmt(f, 2) + " s", fmt(result.redundancy(), 4),
                   fmt_ms(result.report.delay.mean()),
                   fmt_ms(result.report.p90), fmt_ms(result.report.max_delay),
                   std::to_string(
                       result.traffic.kind(net::MsgKind::kPullRequest).messages)});
    if (f == 0.0) {
      redundancy_f0 = result.redundancy();
      mean_f0 = result.report.delay.mean();
      p90_f0 = result.report.p90;
    }
    if (f == 0.3) {
      redundancy_f03 = result.redundancy();
      mean_f03 = result.report.delay.mean();
    }
    redundancy_last = result.redundancy();
  }
  table.print(std::cout);

  harness::print_claim(std::cout, "receptions per delivery at f=0", "1.02",
                       fmt(redundancy_f0, 4));
  harness::print_claim(std::cout, "receptions per delivery at f=0.3", "1.0005",
                       fmt(redundancy_f03, 4));
  harness::print_claim(std::cout, "delay impact of f=0.3", "almost none",
                       fmt_ms(mean_f0) + " -> " + fmt_ms(mean_f03));
  harness::print_claim(std::cout,
                       "receptions per delivery at f=p90 (paper's rule)",
                       "~1.0005", fmt(redundancy_last, 4));
  return 0;
}

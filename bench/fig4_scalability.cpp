// FIG4 — GoCast scalability: 1,024 vs 8,192 nodes, with and without 20%
// concurrent failures (paper Fig 4(a)/(b)).
//
// Paper: without failures the difference is small (8,192 nodes stay under
// 0.42 s vs 0.33 s); with 20% failures the larger system's tail is ~60%
// longer, but the overall increase is moderate — GoCast is scalable.
//
// Flags: --threads N (0 = auto; GOCAST_THREADS also honored) shards the
// four runs across a worker pool; output is byte-identical at any thread
// count. --csv FILE appends one summary row per cell.
#include <iostream>

#include "common/env.h"
#include "gocast/system.h"
#include "harness/args.h"
#include "harness/csv.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace gocast;
  using harness::fmt;
  using harness::fmt_ms;

  harness::Args args(argc, argv, {"threads", "csv", "help"});
  if (args.get_bool("help", false)) {
    std::cout << "fig4_scalability — GoCast delay at 1k vs 8k nodes\n"
                 "flags: --threads N [0 = auto] --csv FILE (append rows)\n";
    return 0;
  }

  std::size_t small = scaled_count(1024, 64);
  std::size_t large = scaled_count(8192, 256);
  std::size_t messages = scaled_count(150, 20);
  double warmup = env_double("GOCAST_WARMUP", 300.0);

  harness::print_banner(
      std::cout,
      "FIG4: GoCast delay, " + std::to_string(small) + " vs " +
          std::to_string(large) + " nodes, 0% and 20% failures",
      "no-fail max: <0.33 s (1k) vs <0.42 s (8k); with 20% failures the 8k "
      "tail is ~60% longer; growth is moderate across 8x size");

  harness::SweepSpec spec;
  spec.base.protocol = harness::Protocol::kGoCast;
  spec.base.message_count = messages;
  spec.base.warmup = warmup;
  spec.base.seed = 11;
  spec.node_counts = {small, large};
  spec.overrides.push_back({"0%", [](harness::ScenarioConfig& c) {
                              c.fail_fraction = 0.0;
                              c.drain = 20.0;
                            }});
  spec.overrides.push_back({"20%", [](harness::ScenarioConfig& c) {
                              c.fail_fraction = 0.20;
                              c.drain = 45.0;
                            }});

  harness::Runner runner(
      static_cast<std::size_t>(args.get_int("threads", 0)));
  auto runs = harness::run_sweep(spec, runner);

  struct Cell {
    double max = 0.0;
    double mean = 0.0;
  };
  harness::Table table(
      {"system", "failures", "mean", "p90", "p99", "max", "delivered"});
  Cell small_fail;
  Cell large_fail;
  Cell small_ok;
  Cell large_ok;

  for (const harness::SweepRun& run : runs) {
    const std::size_t n = run.job.config.node_count;
    const double fail = run.job.config.fail_fraction;
    const auto& r = run.result.report;
    table.add_row({std::to_string(n) + " nodes", harness::fmt_pct(fail, 0),
                   fmt_ms(r.delay.mean()), fmt_ms(r.p90), fmt_ms(r.p99),
                   fmt_ms(r.max_delay),
                   harness::fmt_pct(r.delivered_fraction, 2)});
    Cell cell{r.max_delay, r.delay.mean()};
    if (n == small && fail == 0.0) small_ok = cell;
    if (n == large && fail == 0.0) large_ok = cell;
    if (n == small && fail > 0.0) small_fail = cell;
    if (n == large && fail > 0.0) large_fail = cell;
    if (args.has("csv")) {
      harness::append_summary_csv(args.get("csv", ""), "gocast", n, fail,
                                  run.result);
    }
  }
  table.print(std::cout);

  harness::print_claim(std::cout, "no-fail max delay (small vs large)",
                       "330 ms vs 420 ms",
                       fmt_ms(small_ok.max) + " vs " + fmt_ms(large_ok.max));
  if (small_fail.max > 0.0) {
    harness::print_claim(
        std::cout, "20%-failure tail growth (large/small max)", "~1.6x",
        fmt(large_fail.max / small_fail.max, 2) + "x");
  }
  return 0;
}

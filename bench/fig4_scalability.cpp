// FIG4 — GoCast scalability: 1,024 vs 8,192 nodes, with and without 20%
// concurrent failures (paper Fig 4(a)/(b)).
//
// Paper: without failures the difference is small (8,192 nodes stay under
// 0.42 s vs 0.33 s); with 20% failures the larger system's tail is ~60%
// longer, but the overall increase is moderate — GoCast is scalable.
#include <iostream>

#include "common/env.h"
#include "gocast/system.h"
#include "harness/scenario.h"
#include "harness/table.h"

int main() {
  using namespace gocast;
  using harness::fmt;
  using harness::fmt_ms;

  std::size_t small = scaled_count(1024, 64);
  std::size_t large = scaled_count(8192, 256);
  std::size_t messages = scaled_count(150, 20);
  double warmup = env_double("GOCAST_WARMUP", 300.0);

  harness::print_banner(
      std::cout,
      "FIG4: GoCast delay, " + std::to_string(small) + " vs " +
          std::to_string(large) + " nodes, 0% and 20% failures",
      "no-fail max: <0.33 s (1k) vs <0.42 s (8k); with 20% failures the 8k "
      "tail is ~60% longer; growth is moderate across 8x size");

  struct Cell {
    double max = 0.0;
    double mean = 0.0;
  };
  harness::Table table(
      {"system", "failures", "mean", "p90", "p99", "max", "delivered"});
  Cell small_fail;
  Cell large_fail;
  Cell small_ok;
  Cell large_ok;

  for (std::size_t n : {small, large}) {
    for (double fail : {0.0, 0.20}) {
      harness::ScenarioConfig config;
      config.protocol = harness::Protocol::kGoCast;
      config.node_count = n;
      config.message_count = messages;
      config.warmup = warmup;
      config.fail_fraction = fail;
      config.drain = fail > 0.0 ? 45.0 : 20.0;
      config.seed = 11;
      auto result = harness::run_scenario(config);
      const auto& r = result.report;
      table.add_row({std::to_string(n) + " nodes", harness::fmt_pct(fail, 0),
                     fmt_ms(r.delay.mean()), fmt_ms(r.p90), fmt_ms(r.p99),
                     fmt_ms(r.max_delay),
                     harness::fmt_pct(r.delivered_fraction, 2)});
      Cell cell{r.max_delay, r.delay.mean()};
      if (n == small && fail == 0.0) small_ok = cell;
      if (n == large && fail == 0.0) large_ok = cell;
      if (n == small && fail > 0.0) small_fail = cell;
      if (n == large && fail > 0.0) large_fail = cell;
    }
  }
  table.print(std::cout);

  harness::print_claim(std::cout, "no-fail max delay (small vs large)",
                       "330 ms vs 420 ms",
                       fmt_ms(small_ok.max) + " vs " + fmt_ms(large_ok.max));
  if (small_fail.max > 0.0) {
    harness::print_claim(
        std::cout, "20%-failure tail growth (large/small max)", "~1.6x",
        fmt(large_fail.max / small_fail.max, 2) + "x");
  }
  return 0;
}

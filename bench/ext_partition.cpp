// EXT — Partition and heal (beyond the paper's crash-only failure model).
//
// Scripts a network partition with the fault subsystem: after warmup, 30% of
// the nodes are split into a separate island for 60 s, then the partition
// heals. Multicast traffic is injected in three windows — before the
// partition, during it, and after healing — and each window is tracked
// separately, so the table shows exactly what a partition costs: deliveries
// to the far island stop during the split (messages injected while
// partitioned are *not* recovered after the heal; gossip advertises each id
// once), and the post-heal window shows full recovery. Also reports how long
// the overlay takes to re-merge into one component after the heal, and runs
// the InvariantChecker throughout.
//
// Flags: --nodes N --seed S --warmup SECS --csv FILE --threads N. Two runs
// with the same flags produce byte-identical CSVs; the single experiment is
// dispatched through harness::Runner so the driver shares the sweep
// machinery (and --threads knob) of the other benches.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/delivery_tracker.h"
#include "analysis/graph_analysis.h"
#include "common/env.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/invariant_checker.h"
#include "gocast/system.h"
#include "harness/args.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "sim/engine.h"

int main(int argc, char** argv) {
  using namespace gocast;
  using harness::fmt;

  harness::Args args(argc, argv, {"nodes", "seed", "warmup", "csv",
                                  "readvertise", "threads", "help"});
  if (args.get_bool("help", false)) {
    std::cout << "ext_partition — delivery across a partition-and-heal cycle\n"
                 "flags: --nodes N [512] --seed S [7] --warmup SECS [180]\n"
                 "       --csv FILE (append per-window rows)\n"
                 "       --threads N [0 = auto]\n"
                 "       --readvertise (re-gossip recent ids on partition "
                 "heal; compare the 'during partition' row against a run "
                 "without it)\n";
    return 0;
  }

  std::size_t nodes = static_cast<std::size_t>(
      args.get_int("nodes", static_cast<long>(scaled_count(512, 64))));
  std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  double warmup = args.get_double("warmup", env_double("GOCAST_WARMUP", 180.0));
  bool readvertise = args.get_bool("readvertise", false);

  // Timeline: pre-window traffic, then partition, traffic during the split,
  // heal, settle, post-window traffic. All times absolute sim seconds.
  const double window = 15.0;    // injection window length
  const double rate = 20.0;      // messages per second
  const double partition_at = warmup + window + 5.0;
  const double during_start = partition_at + 5.0;
  const double heal_at = partition_at + 60.0;
  const double post_start = heal_at + 30.0;
  const double sim_end = post_start + window + 30.0;

  harness::print_banner(
      std::cout,
      "EXT: delivery across a partition-and-heal cycle (n=" +
          std::to_string(nodes) + ")",
      "30% of nodes split off at t=" + fmt(partition_at, 0) + " s, heal at t=" +
          fmt(heal_at, 0) + " s; traffic windows before / during / after" +
          (readvertise ? "; heal re-advertisement ON" : ""));

  // The whole experiment runs as one Runner job returning only the data the
  // report below needs; the system, trackers, and checker stay job-local.
  struct Outcome {
    analysis::DeliveryTracker::Report pre;
    analysis::DeliveryTracker::Report during;
    analysis::DeliveryTracker::Report post;
    std::uint64_t readvertised = 0;
    double remerged_at = -1.0;
    std::vector<std::string> fault_log;
    std::vector<fault::InvariantViolation> violations;
  };
  auto experiment = [&](std::size_t) {
    core::SystemConfig config;
    config.node_count = nodes;
    config.seed = seed;
    config.node.readvertise_on_heal = readvertise;
    core::System system(config);

    fault::FaultPlan plan;
    plan.partition_fraction(partition_at, 0.3).heal(heal_at);
    fault::FaultInjector injector(system, plan, Rng(seed).fork("faults"));
    fault::InvariantChecker checker(system);
    injector.set_invariant_checker(&checker);
    checker.start();
    injector.arm();

    // One tracker per traffic window, dispatched on injection time, so late
    // deliveries are attributed to the window whose message they complete.
    analysis::DeliveryTracker pre(nodes), during(nodes), post(nodes);
    pre.set_recording(true);
    during.set_recording(true);
    post.set_recording(true);
    system.set_delivery_hook([&](const core::DeliveryEvent& e) {
      if (e.inject_time < partition_at) {
        pre.on_delivery(e);
      } else if (e.inject_time < heal_at) {
        during.on_delivery(e);
      } else {
        post.on_delivery(e);
      }
    });

    // Both the injection windows and the re-merge probes are admitted as
    // batches.
    std::vector<sim::Engine::BatchEvent> schedule;
    auto inject_window = [&](double start) {
      std::size_t messages = static_cast<std::size_t>(window * rate);
      schedule.clear();
      schedule.reserve(messages);
      for (std::size_t i = 0; i < messages; ++i) {
        schedule.push_back({start + static_cast<double>(i) / rate,
                            [&system] {
                              system.node(system.random_alive_node())
                                  .multicast(512);
                            }});
      }
      system.engine().schedule_batch(schedule);
    };
    inject_window(warmup);
    inject_window(during_start);
    inject_window(post_start);

    // After the heal, probe the overlay once per second until it is a single
    // component again: the re-merge time of the fault model.
    Outcome out;
    schedule.clear();
    schedule.reserve(61);
    for (int k = 0; k <= 60; ++k) {
      schedule.push_back({heal_at + static_cast<double>(k), [&] {
                            if (out.remerged_at >= 0.0) return;
                            auto graph = analysis::snapshot_overlay(system);
                            if (analysis::components(graph).largest_fraction ==
                                1.0) {
                              out.remerged_at = system.now();
                            }
                          }});
    }
    system.engine().schedule_batch(schedule);

    system.start();
    system.run_until(sim_end);

    std::vector<NodeId> alive = system.alive_nodes();
    out.pre = pre.report(alive);
    out.during = during.report(alive);
    out.post = post.report(alive);
    for (NodeId id : alive) {
      out.readvertised += system.node(id).dissemination().readvertised_ids();
    }
    out.fault_log = injector.log();
    out.violations = checker.violations();
    return out;
  };
  harness::Runner runner(
      static_cast<std::size_t>(args.get_int("threads", 0)));
  Outcome outcome = runner.run<Outcome>(1, experiment).front();

  struct Window {
    const char* name;
    const analysis::DeliveryTracker::Report* report;
  };
  std::vector<Window> windows = {{"pre-partition", &outcome.pre},
                                 {"during partition", &outcome.during},
                                 {"post-heal", &outcome.post}};

  harness::Table table(
      {"window", "delivered pairs", "mean delay", "p99 delay", "max delay"});
  for (const Window& w : windows) {
    table.add_row({w.name, harness::fmt_pct(w.report->delivered_fraction, 3),
                   harness::fmt_ms(w.report->delay.mean()),
                   harness::fmt_ms(w.report->p99),
                   harness::fmt_ms(w.report->max_delay)});
  }
  table.print(std::cout);

  std::cout << "\nheal re-advertisement "
            << (readvertise ? "ON" : "OFF (--readvertise to enable)") << ": "
            << outcome.readvertised
            << " message ids re-queued for gossip after root changes\n";

  double remerge_delay =
      outcome.remerged_at >= 0.0 ? outcome.remerged_at - heal_at : -1.0;
  std::cout << "overlay re-merged "
            << (outcome.remerged_at >= 0.0
                    ? fmt(remerge_delay, 1) + " s after heal"
                    : std::string("NEVER (within 60 s)"))
            << "\n";
  std::cout << "fault timeline:\n";
  for (const std::string& line : outcome.fault_log) {
    std::cout << "  " << line << "\n";
  }
  if (outcome.violations.empty()) {
    std::cout << "invariants: no violations\n";
  } else {
    std::cout << "invariant violations (" << outcome.violations.size()
              << "):\n";
    for (const auto& v : outcome.violations) {
      std::cout << "  t=" << fmt(v.at, 1) << " " << v.what << "\n";
    }
  }

  if (args.has("csv")) {
    std::string path = args.get("csv", "");
    std::ofstream out(path, std::ios::app);
    if (out.tellp() == 0) {
      out << "window,nodes,seed,readvertise,messages,delivered,mean_delay_ms,"
             "p99_delay_ms,remerge_s,readvertised_ids,violations\n";
    }
    for (const Window& w : windows) {
      out << w.name << "," << nodes << "," << seed << ","
          << (readvertise ? 1 : 0) << "," << w.report->messages << ","
          << fmt(w.report->delivered_fraction, 6) << ","
          << fmt(w.report->delay.mean() * 1000.0, 3) << ","
          << fmt(w.report->p99 * 1000.0, 3) << "," << fmt(remerge_delay, 3)
          << "," << outcome.readvertised << "," << outcome.violations.size()
          << "\n";
    }
    std::cout << "rows appended to " << path << "\n";
  }
  return 0;
}

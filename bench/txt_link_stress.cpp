// TXT4 — Stress on bottleneck physical links (paper §3, summary result 4).
//
// "Compared with a push-based gossip protocol using fanout 5, GoCast reduces
// the traffic imposed on bottleneck network links by a factor of 4-7."
// The underlay is a power-law (Barabási–Albert) router graph standing in for
// the paper's Internet AS snapshots (see DESIGN.md).
#include <iostream>

#include "analysis/link_stress.h"
#include "common/env.h"
#include "gocast/system.h"
#include "harness/scenario.h"
#include "harness/table.h"
#include "net/underlay.h"

int main() {
  using namespace gocast;
  using harness::fmt;

  std::size_t nodes = scaled_count(1024, 128);
  // Sustained message load (the paper injects 100 msg/s): payload traffic,
  // not control traffic, must dominate the accounting window.
  std::size_t messages = scaled_count(500, 50);
  std::size_t payload = 4096;
  double warmup = env_double("GOCAST_WARMUP", 240.0);

  harness::print_banner(
      std::cout,
      "TXT4: bottleneck link stress, GoCast vs push gossip (n=" +
          std::to_string(nodes) + ")",
      "GoCast reduces bottleneck-link traffic by 4-7x vs gossip fanout 5");

  auto latency = core::default_latency_model(1);
  std::size_t sites = latency->site_count();

  // AS-like underlay shared by both protocols: regional BA subgraphs over a
  // backbone, with sites attached by latency locality (nearby sites share a
  // region — the real-world correlation link stress depends on).
  Rng underlay_rng(77);
  // Continental-scale regions (the granularity at which latency geography
  // and AS-level locality align), farthest-point-seeded.
  net::Underlay underlay = net::Underlay::hierarchical(
      std::max<std::size_t>(sites / 4, 64), 6, 3, underlay_rng.fork("topology"));
  Rng assign_rng = underlay_rng.fork("sites");
  underlay.assign_sites_by_latency(*latency, assign_rng);
  // Latency-proximate regions peer densely (two halves of one continent
  // exchange traffic over many links, not one gateway funnel).
  Rng peering_rng = underlay_rng.fork("peering");
  underlay.add_regional_peering(*latency, 16, peering_rng);

  harness::Table table({"protocol", "bottleneck link MB", "mean link MB",
                        "total MB", "loaded links"});
  double gocast_max = 0.0;
  double gossip_max = 0.0;
  for (harness::Protocol protocol :
       {harness::Protocol::kGoCast, harness::Protocol::kPushGossip}) {
    harness::ScenarioConfig config;
    config.protocol = protocol;
    config.node_count = nodes;
    config.message_count = messages;
    config.payload_bytes = payload;
    config.warmup = protocol == harness::Protocol::kGoCast ? warmup : 5.0;
    config.latency = latency;
    config.record_site_pairs = true;
    config.seed = 7;
    auto result = harness::run_scenario(config);
    auto stress = analysis::link_stress(underlay, result.traffic);
    const double mb = 1024.0 * 1024.0;
    table.add_row({harness::protocol_name(protocol),
                   fmt(stress.max_link_bytes / mb, 2),
                   fmt(stress.mean_link_bytes / mb, 2),
                   fmt(stress.total_bytes / mb, 2),
                   std::to_string(stress.loaded_links)});
    if (protocol == harness::Protocol::kGoCast) gocast_max = stress.max_link_bytes;
    if (protocol == harness::Protocol::kPushGossip) {
      gossip_max = stress.max_link_bytes;
    }
  }
  table.print(std::cout);

  harness::print_claim(std::cout, "gossip/GoCast bottleneck-link ratio",
                       "4-7x", fmt(gossip_max / gocast_max, 1) + "x");
  std::cout << "  (site-pair accounting starts at message injection, so both "
               "protocols are compared on the same workload)\n";
  return 0;
}

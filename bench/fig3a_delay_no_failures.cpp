// FIG3a — Propagation delay of multicast messages, no failures (paper
// Fig 3(a), 1,024 nodes).
//
// Compares all five protocols: GoCast, proximity overlay, random overlay,
// push gossip (fanout 5), and no-wait gossip. The paper's headline: GoCast
// reaches every node in under 0.33 s and beats traditional gossip by ~8.9x
// in delivery delay.
#include <iostream>

#include "common/env.h"
#include "gocast/system.h"
#include "harness/args.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace gocast;
  using harness::fmt;
  using harness::fmt_ms;

  harness::Args args(argc, argv, {"threads", "help"});
  if (args.get_bool("help", false)) {
    std::cout << "fig3a_delay_no_failures — five-protocol delay comparison\n"
                 "flags: --threads N [0 = auto]\n";
    return 0;
  }

  std::size_t nodes = scaled_count(1024, 64);
  std::size_t messages = scaled_count(200, 20);
  double warmup = env_double("GOCAST_WARMUP", 300.0);

  harness::print_banner(
      std::cout,
      "FIG3a: multicast delay CDF, no failures (n=" + std::to_string(nodes) + ")",
      "GoCast max delay < 0.33 s; ~8.9x faster than gossip; proximity overlay "
      "beats random overlay beats gossip");

  auto latency = core::default_latency_model(1);

  harness::SweepSpec spec;
  spec.base.node_count = nodes;
  spec.base.message_count = messages;
  spec.base.warmup = warmup;
  spec.base.latency = latency;
  spec.base.seed = 7;
  spec.protocols = {
      harness::Protocol::kGoCast, harness::Protocol::kProximityOverlay,
      harness::Protocol::kRandomOverlay, harness::Protocol::kPushGossip,
      harness::Protocol::kNoWaitGossip};

  harness::Runner runner(
      static_cast<std::size_t>(args.get_int("threads", 0)));
  auto runs = harness::run_sweep(spec, runner);

  harness::Table table({"protocol", "mean", "p50", "p90", "p99", "max",
                        "delivered"});
  double gocast_mean = 0.0;
  double gossip_mean = 0.0;
  std::vector<harness::ScenarioResult> results;
  for (const harness::SweepRun& run : runs) {
    const harness::Protocol protocol = run.job.config.protocol;
    results.push_back(run.result);
    const auto& r = run.result.report;
    table.add_row({harness::protocol_name(protocol), fmt_ms(r.delay.mean()),
                   fmt_ms(r.p50), fmt_ms(r.p90), fmt_ms(r.p99),
                   fmt_ms(r.max_delay), harness::fmt_pct(r.delivered_fraction, 2)});
    if (protocol == harness::Protocol::kGoCast) gocast_mean = r.delay.mean();
    if (protocol == harness::Protocol::kPushGossip) gossip_mean = r.delay.mean();
  }
  table.print(std::cout);

  harness::print_claim(std::cout, "GoCast max delay",
                       "< 330 ms", fmt_ms(results[0].report.max_delay));
  harness::print_claim(std::cout, "gossip/GoCast mean-delay ratio", "~8.9x",
                       fmt(gossip_mean / gocast_mean, 1) + "x");

  std::cout << "\ndelay CDF (fraction of (node,msg) pairs delivered by t):\n";
  harness::Table cdf({"t", "GoCast", "proximity", "random", "gossip",
                      "no-wait"});
  // Re-sample each curve at the union of a fixed grid for comparability.
  for (double t : {0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.2, 2.0, 3.0, 5.0}) {
    std::vector<std::string> row{fmt(t, 2) + " s"};
    for (const auto& result : results) {
      double fraction = 0.0;
      for (const auto& point : result.curve) {
        if (point.delay <= t) fraction = point.fraction;
      }
      row.push_back(fmt(fraction, 3));
    }
    cdf.add_row(row);
  }
  cdf.print(std::cout);
  return 0;
}

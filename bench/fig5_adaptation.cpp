// FIG5 — Adaptation of the overlay and the tree (paper Fig 5, 1,024 nodes).
//
// (a) Node-degree distribution at 0 s, 5 s, and 500 s: degrees start spread
//     out (initialization makes 3 random links per node) and converge; the
//     paper reports 22% -> 57% -> 60% of nodes at the target degree 6, with
//     average degree 6.4 at 500 s.
// (b) Average one-way latency of overlay links and tree links over the first
//     200 s: random initial links (~91 ms) are replaced by nearby ones; tree
//     links reach ~15.5 ms after 100 s.
#include <iostream>

#include "analysis/graph_analysis.h"
#include "common/env.h"
#include "gocast/system.h"
#include "harness/table.h"

int main() {
  using namespace gocast;
  using harness::fmt;
  using harness::fmt_ms;
  using harness::fmt_pct;

  std::size_t nodes = scaled_count(1024, 64);

  harness::print_banner(
      std::cout, "FIG5: overlay and tree adaptation (n=" + std::to_string(nodes) + ")",
      "degrees converge (22%/57%/60% at degree 6 after 0/5/500 s, avg 6.4); "
      "overlay links drop from ~91 ms toward tree links ~15.5 ms by 100 s");

  core::SystemConfig config;
  config.node_count = nodes;
  config.seed = 5;
  config.bootstrap_links_per_node = 3;
  core::System system(config);
  system.start();

  // -- Fig 5(a): degree distribution snapshots --
  harness::Table degrees({"time", "deg<=4", "deg=5", "deg=6", "deg=7",
                          "deg>=8", "avg", "at target 6"});
  auto snapshot_degrees = [&](const std::string& label) {
    IntDistribution d = analysis::degree_distribution(system);
    double le4 = d.fraction_leq(4);
    double ge8 = 1.0 - d.fraction_leq(7);
    degrees.add_row({label, fmt_pct(le4, 1), fmt_pct(d.fraction(5), 1),
                     fmt_pct(d.fraction(6), 1), fmt_pct(d.fraction(7), 1),
                     fmt_pct(ge8, 1), fmt(d.mean(), 2),
                     fmt_pct(d.fraction(6), 1)});
    return d.fraction(6);
  };

  double at0 = snapshot_degrees("0 s");
  system.run_for(5.0);
  double at5 = snapshot_degrees("5 s");

  // -- Fig 5(b): link latency over time (sampled every 5 s to 200 s) --
  harness::Table latency({"time", "overlay links", "tree links",
                          "mean overlay one-way", "mean tree one-way"});
  double tree_at_100 = 0.0;
  for (double t = 5.0; t <= 200.0; t += 5.0) {
    system.run_until(t);
    auto stats = analysis::link_latency_stats(system);
    if (static_cast<long>(t) % 20 == 0 || t <= 10.0) {
      latency.add_row({fmt(t, 0) + " s", std::to_string(stats.overlay_links),
                       std::to_string(stats.tree_links),
                       fmt_ms(stats.mean_overlay_one_way),
                       fmt_ms(stats.mean_tree_one_way)});
    }
    if (t == 100.0) tree_at_100 = stats.mean_tree_one_way;
  }

  system.run_until(500.0);
  double at500 = snapshot_degrees("500 s");
  IntDistribution final_degrees = analysis::degree_distribution(system);

  std::cout << "Fig 5(a) — node degree distribution:\n";
  degrees.print(std::cout);
  harness::print_claim(std::cout, "fraction at degree 6 (0/5/500 s)",
                       "22% / 57% / 60%",
                       fmt_pct(at0, 0) + " / " + fmt_pct(at5, 0) + " / " +
                           fmt_pct(at500, 0));
  harness::print_claim(std::cout, "average degree at 500 s", "6.4",
                       fmt(final_degrees.mean(), 2));

  std::cout << "\nFig 5(b) — link latency over time:\n";
  latency.print(std::cout);
  auto final_latency = analysis::link_latency_stats(system);
  harness::print_claim(std::cout, "mean tree link one-way latency at 100 s",
                       "15.5 ms", fmt_ms(tree_at_100));
  harness::print_claim(std::cout, "random-pair one-way latency (for contrast)",
                       "91 ms",
                       fmt_ms(env_double("GOCAST_MEAN_OW", 0.091)));
  harness::print_claim(std::cout, "mean overlay link one-way at 500 s", "(low)",
                       fmt_ms(final_latency.mean_overlay_one_way));
  return 0;
}

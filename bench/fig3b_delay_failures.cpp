// FIG3b — Propagation delay under stress: 20% of nodes fail concurrently at
// the end of warmup; no repair runs (paper Fig 3(b), 1,024 nodes).
//
// Paper: the overlay protocols still deliver every message to every live
// node; GoCast stays fastest (~2.3x over gossip in mean delay) because
// messages flood tree fragments after each gossip pickup; push gossip loses
// more messages than in the no-failure case.
#include <iostream>

#include "common/env.h"
#include "gocast/system.h"
#include "harness/scenario.h"
#include "harness/table.h"

int main() {
  using namespace gocast;
  using harness::fmt;
  using harness::fmt_ms;

  std::size_t nodes = scaled_count(1024, 64);
  std::size_t messages = scaled_count(200, 20);
  double warmup = env_double("GOCAST_WARMUP", 300.0);

  harness::print_banner(
      std::cout,
      "FIG3b: multicast delay CDF with 20% concurrent failures, no repair (n=" +
          std::to_string(nodes) + ")",
      "overlay protocols deliver 100% to live nodes; GoCast ~2.3x faster than "
      "gossip; gossip loses more messages than without failures");

  auto latency = core::default_latency_model(1);

  const harness::Protocol protocols[] = {
      harness::Protocol::kGoCast, harness::Protocol::kProximityOverlay,
      harness::Protocol::kRandomOverlay, harness::Protocol::kPushGossip,
      harness::Protocol::kNoWaitGossip};

  harness::Table table({"protocol", "mean", "p50", "p90", "p99", "max",
                        "delivered"});
  double gocast_mean = 0.0;
  double gossip_mean = 0.0;
  std::vector<harness::ScenarioResult> results;
  for (harness::Protocol protocol : protocols) {
    harness::ScenarioConfig config;
    config.protocol = protocol;
    config.node_count = nodes;
    config.message_count = messages;
    config.warmup = warmup;
    config.latency = latency;
    config.fail_fraction = 0.20;
    config.freeze_after_failure = true;
    config.drain = 45.0;
    config.seed = 7;
    auto result = harness::run_scenario(config);
    results.push_back(result);
    const auto& r = result.report;
    table.add_row({harness::protocol_name(protocol), fmt_ms(r.delay.mean()),
                   fmt_ms(r.p50), fmt_ms(r.p90), fmt_ms(r.p99),
                   fmt_ms(r.max_delay), harness::fmt_pct(r.delivered_fraction, 2)});
    if (protocol == harness::Protocol::kGoCast) gocast_mean = r.delay.mean();
    if (protocol == harness::Protocol::kPushGossip) gossip_mean = r.delay.mean();
  }
  table.print(std::cout);

  harness::print_claim(std::cout, "GoCast delivered fraction (live nodes)",
                       "100%",
                       harness::fmt_pct(results[0].report.delivered_fraction, 3));
  harness::print_claim(std::cout, "gossip/GoCast mean-delay ratio", "~2.3x",
                       fmt(gossip_mean / gocast_mean, 1) + "x");

  std::cout << "\ndelay CDF (fraction of (live node,msg) pairs delivered by t):\n";
  harness::Table cdf({"t", "GoCast", "proximity", "random", "gossip",
                      "no-wait"});
  for (double t : {0.1, 0.3, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 15.0, 30.0}) {
    std::vector<std::string> row{fmt(t, 1) + " s"};
    for (const auto& result : results) {
      double fraction = 0.0;
      for (const auto& point : result.curve) {
        if (point.delay <= t) fraction = point.fraction;
      }
      row.push_back(fmt(fraction, 3));
    }
    cdf.add_row(row);
  }
  cdf.print(std::cout);
  return 0;
}

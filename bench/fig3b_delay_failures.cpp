// FIG3b — Propagation delay under stress: 20% of nodes fail concurrently at
// the end of warmup; no repair runs (paper Fig 3(b), 1,024 nodes).
//
// Paper: the overlay protocols still deliver every message to every live
// node; GoCast stays fastest (~2.3x over gossip in mean delay) because
// messages flood tree fragments after each gossip pickup; push gossip loses
// more messages than in the no-failure case.
#include <iostream>

#include "common/env.h"
#include "gocast/system.h"
#include "harness/args.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace gocast;
  using harness::fmt;
  using harness::fmt_ms;

  harness::Args args(argc, argv, {"threads", "help"});
  if (args.get_bool("help", false)) {
    std::cout << "fig3b_delay_failures — five-protocol delay under 20% "
                 "failures\nflags: --threads N [0 = auto]\n";
    return 0;
  }

  std::size_t nodes = scaled_count(1024, 64);
  std::size_t messages = scaled_count(200, 20);
  double warmup = env_double("GOCAST_WARMUP", 300.0);

  harness::print_banner(
      std::cout,
      "FIG3b: multicast delay CDF with 20% concurrent failures, no repair (n=" +
          std::to_string(nodes) + ")",
      "overlay protocols deliver 100% to live nodes; GoCast ~2.3x faster than "
      "gossip; gossip loses more messages than without failures");

  auto latency = core::default_latency_model(1);

  harness::SweepSpec spec;
  spec.base.node_count = nodes;
  spec.base.message_count = messages;
  spec.base.warmup = warmup;
  spec.base.latency = latency;
  spec.base.fail_fraction = 0.20;
  spec.base.freeze_after_failure = true;
  spec.base.drain = 45.0;
  spec.base.seed = 7;
  spec.protocols = {
      harness::Protocol::kGoCast, harness::Protocol::kProximityOverlay,
      harness::Protocol::kRandomOverlay, harness::Protocol::kPushGossip,
      harness::Protocol::kNoWaitGossip};

  harness::Runner runner(
      static_cast<std::size_t>(args.get_int("threads", 0)));
  auto runs = harness::run_sweep(spec, runner);

  harness::Table table({"protocol", "mean", "p50", "p90", "p99", "max",
                        "delivered"});
  double gocast_mean = 0.0;
  double gossip_mean = 0.0;
  std::vector<harness::ScenarioResult> results;
  for (const harness::SweepRun& run : runs) {
    const harness::Protocol protocol = run.job.config.protocol;
    results.push_back(run.result);
    const auto& r = run.result.report;
    table.add_row({harness::protocol_name(protocol), fmt_ms(r.delay.mean()),
                   fmt_ms(r.p50), fmt_ms(r.p90), fmt_ms(r.p99),
                   fmt_ms(r.max_delay), harness::fmt_pct(r.delivered_fraction, 2)});
    if (protocol == harness::Protocol::kGoCast) gocast_mean = r.delay.mean();
    if (protocol == harness::Protocol::kPushGossip) gossip_mean = r.delay.mean();
  }
  table.print(std::cout);

  harness::print_claim(std::cout, "GoCast delivered fraction (live nodes)",
                       "100%",
                       harness::fmt_pct(results[0].report.delivered_fraction, 3));
  harness::print_claim(std::cout, "gossip/GoCast mean-delay ratio", "~2.3x",
                       fmt(gossip_mean / gocast_mean, 1) + "x");

  std::cout << "\ndelay CDF (fraction of (live node,msg) pairs delivered by t):\n";
  harness::Table cdf({"t", "GoCast", "proximity", "random", "gossip",
                      "no-wait"});
  for (double t : {0.1, 0.3, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 15.0, 30.0}) {
    std::vector<std::string> row{fmt(t, 1) + " s"};
    for (const auto& result : results) {
      double fraction = 0.0;
      for (const auto& point : result.curve) {
        if (point.delay <= t) fraction = point.fraction;
      }
      row.push_back(fmt(fraction, 3));
    }
    cdf.add_row(row);
  }
  cdf.print(std::cout);
  return 0;
}

// EXT — Adversarial & slow-node fault models with protocol-level defenses
// (DESIGN.md §9; beyond the paper's crash-only failure model).
//
// Sweeps byzantine behavior × adversary fraction × defenses off/on × seeds.
// Adversaries are injected shortly before the traffic window via the fault
// spec grammar (mute_forwarder / digest_liar / slow), and each cell reports
// delivery rate, latency percentiles, pull-retry overhead, suspicion
// evictions with time-to-evict, and eviction coverage (the fraction of
// honest nodes whose final neighbor set holds no adversary).
//
// --smoke turns the bench into a CI gate: a single mixed
// mute-forwarder+digest-liar cell, defenses off vs on vs an equal-sized
// crash baseline, asserting that defenses strictly improve delivery, reach
// >= 90% eviction coverage, and keep defended delivery at or above the
// honest-crash baseline. Exit status reports the verdict.
//
// Flags: --nodes N --fraction F --seeds K --seed0 S --behavior B --warmup S
//        --csv FILE --threads N --smoke. Two runs with the same flags
// produce byte-identical output at any --threads (jobs are merged in index
// order and every per-job decision derives from the job's own seed).
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.h"
#include "harness/args.h"
#include "harness/csv.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/table.h"

namespace {

using namespace gocast;

struct Cell {
  std::string behavior;  // mute | liar | mixed | slow | crash
  double fraction = 0.0;
  bool defenses = false;
  std::uint64_t seed = 0;
};

/// The fault-spec timeline for one cell: behaviors switch on `lead` seconds
/// before the traffic window so the overlay is converged but suspicion
/// evidence only starts accruing with real traffic.
std::string spec_for(const Cell& cell, double at) {
  std::ostringstream spec;
  spec.precision(17);
  if (cell.behavior == "mute") {
    spec << at << ":mute_forwarder:frac=" << cell.fraction;
  } else if (cell.behavior == "liar") {
    spec << at << ":digest_liar:frac=" << cell.fraction;
  } else if (cell.behavior == "mixed") {
    spec << at << ":mute_forwarder:frac=" << cell.fraction / 2.0 << "; " << at
         << ":digest_liar:frac=" << cell.fraction / 2.0;
  } else if (cell.behavior == "slow") {
    spec << at << ":slow:delay=0.05,frac=" << cell.fraction;
  } else if (cell.behavior == "crash") {
    spec << at << ":crash:frac=" << cell.fraction;
  }
  return spec.str();
}

core::DefenseParams defenses_on() {
  core::DefenseParams d;
  d.track_suspicion = true;
  d.escalate_pulls = true;
  d.deprioritize_suspects = true;
  d.evict_suspects = true;
  d.digest_sanity = true;
  d.suspect_silent = true;
  d.audit_pulls = true;
  d.audit_every = 1;  // challenge each neighbor on every gossip rotation
  return d;
}

/// All cells run under mild link loss: with perfect links the gossip+pull
/// redundancy absorbs a 10% byzantine population outright (delivery stays at
/// 100% with or without defenses), so loss is what gives the attack teeth —
/// lost tree pushes force pull recovery, and pulls are exactly the path the
/// adversaries poison.
constexpr double kLinkLoss = 0.03;

}  // namespace

int main(int argc, char** argv) {
  using harness::fmt;

  harness::Args args(argc, argv,
                     {"nodes", "fraction", "seeds", "seed0", "behavior",
                      "warmup", "csv", "threads", "smoke", "help"});
  if (args.get_bool("help", false)) {
    std::cout
        << "ext_byzantine — adversarial fault models vs protocol defenses\n"
           "flags: --nodes N [256] --fraction F [0.1] --seeds K [2]\n"
           "       --seed0 S [21] --behavior mute|liar|mixed|slow|all [all]\n"
           "       --warmup SECS [120] --csv FILE --threads N [0 = auto]\n"
           "       --smoke (CI gate: mixed cell only, asserts defended\n"
           "        delivery > undefended, >= 90% eviction coverage, and\n"
           "        >= the equal-fraction crash baseline)\n";
    return 0;
  }

  const bool smoke = args.get_bool("smoke", false);
  std::size_t nodes = static_cast<std::size_t>(args.get_int(
      "nodes", static_cast<long>(smoke ? 192 : scaled_count(256, 64))));
  double fraction = args.get_double("fraction", 0.1);
  std::size_t seeds =
      static_cast<std::size_t>(args.get_int("seeds", smoke ? 1 : 2));
  std::uint64_t seed0 = static_cast<std::uint64_t>(args.get_int("seed0", 21));
  double warmup = args.get_double("warmup", env_double("GOCAST_WARMUP", 120.0));
  std::string behavior_arg = args.get("behavior", smoke ? "mixed" : "all");

  std::vector<std::string> behaviors;
  if (behavior_arg == "all") {
    behaviors = {"mute", "liar", "mixed", "slow"};
  } else {
    behaviors = {behavior_arg};
  }

  const double behavior_lead = 20.0;  // behaviors start this long before traffic
  const double behavior_at = warmup - behavior_lead;
  // The smoke gate needs a long sustained traffic window: per-node blacklists
  // only accrue while there is evidence (digest silence, failed audits), and
  // global ostracism of an adversary takes on the order of a hundred seconds
  // of flowing messages. The sweep cells keep a shorter, denser burst.
  const std::size_t messages = smoke ? 5500 : 600;
  const double rate = smoke ? 25.0 : 50.0;
  const double traffic_end = warmup + static_cast<double>(messages) / rate;

  harness::print_banner(
      std::cout,
      "EXT: adversarial fault models vs defenses (n=" + std::to_string(nodes) +
          ", fraction=" + fmt(fraction, 2) + ")",
      "behaviors on at t=" + fmt(behavior_at, 0) +
          " s, traffic from t=" + fmt(warmup, 0) +
          " s; defenses off vs on" + (smoke ? " [smoke gate]" : ""));

  // Job list: behavior × defenses × seed (+ the crash baseline in smoke
  // mode). Built up-front so Runner output order is the cell order.
  std::vector<Cell> cells;
  for (const std::string& behavior : behaviors) {
    for (bool defended : {false, true}) {
      for (std::size_t s = 0; s < seeds; ++s) {
        cells.push_back(Cell{behavior, fraction, defended, seed0 + s});
      }
    }
  }
  if (smoke) {
    for (std::size_t s = 0; s < seeds; ++s) {
      cells.push_back(Cell{"crash", fraction, false, seed0 + s});
    }
  }

  auto experiment = [&](std::size_t i) {
    const Cell& cell = cells[i];
    harness::ScenarioConfig config;
    config.protocol = harness::Protocol::kGoCast;
    config.node_count = nodes;
    config.seed = cell.seed;
    config.warmup = warmup;
    config.message_count = messages;
    config.message_rate = rate;
    config.payload_bytes = 512;
    config.loss_probability = kLinkLoss;
    // The guarantee under attack concerns honest participants: traffic is
    // sourced at honest nodes and delivery measured over honest nodes (an
    // ostracized adversary that can neither multicast nor receive is the
    // defense working). Applied to every cell, so off/on/crash compare the
    // same workload.
    config.exclude_adversaries = true;
    config.drain = smoke ? 15.0 : 30.0;
    config.fault_spec = spec_for(cell, behavior_at);
    // Sample eviction coverage when the traffic stops: during the silent
    // drain no new evidence can accrue against a re-connecting adversary.
    config.coverage_probe_at = traffic_end;
    if (cell.defenses) config.defense = defenses_on();
    return harness::run_scenario(config);
  };
  harness::Runner runner(static_cast<std::size_t>(args.get_int("threads", 0)));
  std::vector<harness::ScenarioResult> results =
      runner.run<harness::ScenarioResult>(cells.size(), experiment);

  harness::Table table({"behavior", "defenses", "seed", "delivered", "p50",
                        "p99", "pulls", "audits", "retries exhausted",
                        "evictions", "median evict s", "adv-free"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const harness::ScenarioResult& r = results[i];
    // Time-to-evict, measured from the moment the behavior switched on.
    std::vector<SimTime> evict_delays = r.eviction_times;
    for (SimTime& t : evict_delays) t -= behavior_at;
    std::sort(evict_delays.begin(), evict_delays.end());
    std::string median_evict =
        evict_delays.empty()
            ? "-"
            : fmt(evict_delays[evict_delays.size() / 2], 1);
    table.add_row({cell.behavior, cell.defenses ? "on" : "off",
                   std::to_string(cell.seed),
                   harness::fmt_pct(r.report.delivered_fraction, 3),
                   harness::fmt_ms(r.report.p50), harness::fmt_ms(r.report.p99),
                   std::to_string(r.pulls_sent), std::to_string(r.audits_sent),
                   std::to_string(r.pull_retries_exhausted),
                   std::to_string(r.suspects_evicted) + " (" +
                       std::to_string(r.adversary_evictions) + " adv)",
                   median_evict,
                   fmt(r.adversary_free_fraction, 3)});
  }
  table.print(std::cout);

  if (args.has("csv")) {
    std::string path = args.get("csv", "");
    std::ofstream out(path, std::ios::app);
    if (out.tellp() == 0) {
      out << "behavior,fraction,defenses,nodes,seed,delivered,p50_ms,p99_ms,"
             "pulls_sent,audits_sent,pull_retries_exhausted,evictions,"
             "adversary_free_fraction\n";
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& cell = cells[i];
      const harness::ScenarioResult& r = results[i];
      out << cell.behavior << "," << cell.fraction << ","
          << (cell.defenses ? 1 : 0) << "," << nodes << "," << cell.seed << ","
          << fmt(r.report.delivered_fraction, 6) << ","
          << fmt(r.report.p50 * 1000.0, 3) << ","
          << fmt(r.report.p99 * 1000.0, 3) << "," << r.pulls_sent << ","
          << r.audits_sent << "," << r.pull_retries_exhausted << ","
          << r.suspects_evicted << ","
          << fmt(r.adversary_free_fraction, 6) << "\n";
    }
    std::cout << "rows appended to " << path << "\n";
  }

  if (!smoke) return 0;

  // --- CI gate -------------------------------------------------------------
  // Per seed: defended delivery strictly above undefended, coverage >= 90%
  // at the end of the traffic window, and defended delivery within a small
  // tolerance of the equal-fraction crash baseline (a defended byzantine
  // population should cost little more than simply losing those nodes; the
  // epsilon absorbs the handful of pairs lost before detection converges).
  const double kCrashEps = 0.005;
  bool ok = true;
  for (std::size_t s = 0; s < seeds; ++s) {
    const harness::ScenarioResult& off = results[s];
    const harness::ScenarioResult& on = results[seeds + s];
    const harness::ScenarioResult& crash = results[2 * seeds + s];
    double d_off = off.report.delivered_fraction;
    double d_on = on.report.delivered_fraction;
    double d_crash = crash.report.delivered_fraction;
    std::cout << "\nsmoke seed " << (seed0 + s) << ": delivered off="
              << fmt(d_off, 4) << " on=" << fmt(d_on, 4)
              << " crash-baseline=" << fmt(d_crash, 4)
              << " adv-free=" << fmt(on.adversary_free_fraction, 3) << "\n";
    if (!(d_on > d_off)) {
      std::cout << "FAIL: defenses did not improve delivery\n";
      ok = false;
    }
    if (!(on.adversary_free_fraction >= 0.9)) {
      std::cout << "FAIL: adversaries evicted from < 90% of honest "
                   "neighbor sets\n";
      ok = false;
    }
    if (!(d_on >= d_crash - kCrashEps)) {
      std::cout << "FAIL: defended delivery below the crash baseline\n";
      ok = false;
    }
  }
  std::cout << (ok ? "\nbyzantine smoke: PASS\n" : "\nbyzantine smoke: FAIL\n");
  return ok ? 0 : 1;
}

// EXT — Continuous churn (the paper's scalability requirement: "the system
// should be self-adaptive to handle dynamic node joins and leaves").
//
// Runs a steady join/leave process at several churn rates while multicast
// traffic flows, and reports delivery completeness and delay for nodes that
// stay alive, plus how quickly joiners reach the target degree.
#include <iostream>

#include "analysis/delivery_tracker.h"
#include "analysis/graph_analysis.h"
#include "common/env.h"
#include "gocast/system.h"
#include "harness/table.h"

int main() {
  using namespace gocast;
  using harness::fmt;

  std::size_t base_nodes = scaled_count(512, 64);
  double warmup = env_double("GOCAST_WARMUP", 180.0);

  harness::print_banner(
      std::cout, "EXT: delivery under continuous churn (n=" +
                     std::to_string(base_nodes) + ")",
      "requirement from the paper's intro: graceful behavior under dynamic "
      "joins and leaves");

  harness::Table table({"churn (events/s)", "delivered (survivors)",
                        "mean delay", "p99 delay", "connected", "tree spans"});

  for (double churn_rate : {0.0, 0.5, 2.0, 5.0}) {
    core::SystemConfig config;
    config.node_count = base_nodes + base_nodes / 4;
    config.deferred_nodes = base_nodes / 4;
    config.seed = 91 + static_cast<std::uint64_t>(churn_rate * 10);
    core::System system(config);
    analysis::DeliveryTracker tracker(config.node_count);
    system.set_delivery_hook(tracker.hook());
    system.start();
    system.run_for(warmup);

    // Churn + traffic phase: 60 s of joins/leaves at churn_rate events/s
    // (half joins, half leaves) with 20 msg/s multicast.
    SimTime phase_start = system.now();
    const double phase = 60.0;
    if (churn_rate > 0.0) {
      std::size_t events = static_cast<std::size_t>(phase * churn_rate);
      for (std::size_t e = 0; e < events; ++e) {
        SimTime at = phase_start + static_cast<double>(e) / churn_rate;
        bool join = e % 2 == 0;
        system.engine().schedule_at(at, [&system, join] {
          if (join) {
            (void)system.spawn_next();
          } else if (system.network().alive_count() > 8) {
            system.node(system.random_alive_node()).kill();
          }
        });
      }
    }
    tracker.set_recording(true);
    std::size_t messages = static_cast<std::size_t>(phase * 20.0);
    for (std::size_t i = 0; i < messages; ++i) {
      system.engine().schedule_at(phase_start + static_cast<double>(i) / 20.0,
                                  [&system] {
                                    system.node(system.random_alive_node())
                                        .multicast(512);
                                  });
    }
    system.run_until(phase_start + phase + 30.0);

    // Survivors: alive now AND alive before the churn phase (they should
    // have every message; joiners miss messages sent before they joined).
    std::vector<NodeId> survivors;
    for (NodeId id = 0; id < base_nodes; ++id) {
      if (system.network().alive(id)) survivors.push_back(id);
    }
    auto report = tracker.report(survivors);
    auto graph = analysis::snapshot_overlay(system);
    auto comp = analysis::components(graph);
    auto tree = analysis::tree_stats(system);

    table.add_row({fmt(churn_rate, 1),
                   harness::fmt_pct(report.delivered_fraction, 2),
                   harness::fmt_ms(report.delay.mean()),
                   harness::fmt_ms(report.p99),
                   comp.largest_fraction == 1.0 ? "yes" : "NO",
                   tree.spanning ? "yes" : "NO"});
  }
  table.print(std::cout);
  return 0;
}

// EXT — Continuous churn (the paper's scalability requirement: "the system
// should be self-adaptive to handle dynamic node joins and leaves").
//
// Runs a steady join/leave process at several churn rates while multicast
// traffic flows, and reports delivery completeness and delay for nodes that
// stay alive, plus how quickly joiners reach the target degree.
#include <iostream>
#include <vector>

#include "analysis/delivery_tracker.h"
#include "analysis/graph_analysis.h"
#include "common/env.h"
#include "gocast/system.h"
#include "harness/args.h"
#include "harness/runner.h"
#include "harness/table.h"
#include "sim/engine.h"

int main(int argc, char** argv) {
  using namespace gocast;
  using harness::fmt;

  harness::Args args(argc, argv, {"threads", "help"});
  if (args.get_bool("help", false)) {
    std::cout << "ext_churn — delivery under continuous churn\n"
                 "flags: --threads N [0 = auto]\n";
    return 0;
  }

  std::size_t base_nodes = scaled_count(512, 64);
  double warmup = env_double("GOCAST_WARMUP", 180.0);

  harness::print_banner(
      std::cout, "EXT: delivery under continuous churn (n=" +
                     std::to_string(base_nodes) + ")",
      "requirement from the paper's intro: graceful behavior under dynamic "
      "joins and leaves");

  // One job per churn rate; every job owns its system, so the rates shard
  // across the worker pool and the table is assembled in rate order after.
  struct Row {
    analysis::DeliveryTracker::Report report;
    bool connected = false;
    bool spanning = false;
  };
  const double churn_rates[] = {0.0, 0.5, 2.0, 5.0};
  harness::Runner runner(
      static_cast<std::size_t>(args.get_int("threads", 0)));
  std::vector<Row> rows = runner.run<Row>(
      std::size(churn_rates), [&](std::size_t job) {
        const double churn_rate = churn_rates[job];
        core::SystemConfig config;
        config.node_count = base_nodes + base_nodes / 4;
        config.deferred_nodes = base_nodes / 4;
        config.seed = 91 + static_cast<std::uint64_t>(churn_rate * 10);
        core::System system(config);
        analysis::DeliveryTracker tracker(config.node_count);
        system.set_delivery_hook(tracker.hook());
        system.start();
        system.run_for(warmup);

        // Churn + traffic phase: 60 s of joins/leaves at churn_rate events/s
        // (half joins, half leaves) with 20 msg/s multicast. Both schedules
        // are admitted as batches.
        SimTime phase_start = system.now();
        const double phase = 60.0;
        std::vector<sim::Engine::BatchEvent> schedule;
        if (churn_rate > 0.0) {
          std::size_t events = static_cast<std::size_t>(phase * churn_rate);
          schedule.reserve(events);
          for (std::size_t e = 0; e < events; ++e) {
            SimTime at = phase_start + static_cast<double>(e) / churn_rate;
            bool join = e % 2 == 0;
            schedule.push_back({at, [&system, join] {
                                  if (join) {
                                    (void)system.spawn_next();
                                  } else if (system.network().alive_count() > 8) {
                                    system.node(system.random_alive_node())
                                        .kill();
                                  }
                                }});
          }
          system.engine().schedule_batch(schedule);
          schedule.clear();
        }
        tracker.set_recording(true);
        std::size_t messages = static_cast<std::size_t>(phase * 20.0);
        schedule.reserve(messages);
        for (std::size_t i = 0; i < messages; ++i) {
          schedule.push_back({phase_start + static_cast<double>(i) / 20.0,
                              [&system] {
                                system.node(system.random_alive_node())
                                    .multicast(512);
                              }});
        }
        system.engine().schedule_batch(schedule);
        system.run_until(phase_start + phase + 30.0);

        // Survivors: alive now AND alive before the churn phase (they should
        // have every message; joiners miss messages sent before they joined).
        std::vector<NodeId> survivors;
        for (NodeId id = 0; id < base_nodes; ++id) {
          if (system.network().alive(id)) survivors.push_back(id);
        }
        Row row;
        row.report = tracker.report(survivors);
        auto graph = analysis::snapshot_overlay(system);
        row.connected = analysis::components(graph).largest_fraction == 1.0;
        row.spanning = analysis::tree_stats(system).spanning;
        return row;
      });

  harness::Table table({"churn (events/s)", "delivered (survivors)",
                        "mean delay", "p99 delay", "connected", "tree spans"});
  for (std::size_t job = 0; job < rows.size(); ++job) {
    const Row& row = rows[job];
    table.add_row({fmt(churn_rates[job], 1),
                   harness::fmt_pct(row.report.delivered_fraction, 2),
                   harness::fmt_ms(row.report.delay.mean()),
                   harness::fmt_ms(row.report.p99),
                   row.connected ? "yes" : "NO",
                   row.spanning ? "yes" : "NO"});
  }
  table.print(std::cout);
  return 0;
}

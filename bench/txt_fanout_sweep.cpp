// TXT5 — Gossip fanout sweep (paper §3, summary result 5).
//
// "The message delay in the push-based gossip protocol cannot be reduced
// significantly by simply increasing the gossip fanout. When the fanout is
// increased from 5 to 9, the message delay is reduced by only about 5%;
// further increasing the fanout to 15 has virtually no impact."
#include <iostream>

#include "common/env.h"
#include "gocast/system.h"
#include "harness/args.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace gocast;
  using harness::fmt;
  using harness::fmt_ms;

  harness::Args args(argc, argv, {"threads", "help"});
  if (args.get_bool("help", false)) {
    std::cout << "txt_fanout_sweep — push-gossip delay vs fanout\n"
                 "flags: --threads N [0 = auto]\n";
    return 0;
  }

  std::size_t nodes = scaled_count(1024, 128);
  std::size_t messages = scaled_count(120, 20);

  harness::print_banner(
      std::cout,
      "TXT5: push-gossip delay vs fanout (n=" + std::to_string(nodes) + ")",
      "fanout 5->9 cuts delay only ~5%; 9->15 virtually none (reliability "
      "improves, delay does not)");

  auto latency = core::default_latency_model(1);

  harness::SweepSpec spec;
  spec.base.protocol = harness::Protocol::kPushGossip;
  spec.base.node_count = nodes;
  spec.base.message_count = messages;
  spec.base.warmup = 5.0;
  spec.base.latency = latency;
  spec.base.drain = 30.0;
  spec.base.seed = 13;
  for (int fanout : {5, 7, 9, 12, 15}) {
    spec.overrides.push_back(
        {std::to_string(fanout),
         [fanout](harness::ScenarioConfig& c) { c.fanout = fanout; }});
  }

  harness::Runner runner(
      static_cast<std::size_t>(args.get_int("threads", 0)));
  auto runs = harness::run_sweep(spec, runner);

  harness::Table table({"fanout", "mean delay", "p90", "max", "delivered",
                        "gossip MB"});
  double mean_at_5 = 0.0;
  double mean_at_9 = 0.0;
  double mean_at_15 = 0.0;
  for (const harness::SweepRun& run : runs) {
    const int fanout = run.job.config.fanout;
    const auto& r = run.result.report;
    table.add_row(
        {std::to_string(fanout), fmt_ms(r.delay.mean()), fmt_ms(r.p90),
         fmt_ms(r.max_delay), harness::fmt_pct(r.delivered_fraction, 2),
         fmt(static_cast<double>(
                 run.result.traffic.kind(net::MsgKind::kGossipDigest).bytes) /
                 (1024.0 * 1024.0),
             2)});
    if (fanout == 5) mean_at_5 = r.delay.mean();
    if (fanout == 9) mean_at_9 = r.delay.mean();
    if (fanout == 15) mean_at_15 = r.delay.mean();
  }
  table.print(std::cout);

  harness::print_claim(std::cout, "delay reduction fanout 5 -> 9", "~5%",
                       fmt((1.0 - mean_at_9 / mean_at_5) * 100.0, 1) + "%");
  harness::print_claim(std::cout, "delay reduction fanout 9 -> 15", "~0%",
                       fmt((1.0 - mean_at_15 / mean_at_9) * 100.0, 1) + "%");
  return 0;
}

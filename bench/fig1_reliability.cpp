// FIG1 — Push-gossip reliability vs fanout (paper Fig 1).
//
// Plots e^{-e^{ln(n)-F}} (probability that all 1,024 nodes hear one message)
// and its 1,000-message power, and validates the closed form empirically by
// simulating the push-gossip baseline at selected fanouts.
#include <iostream>

#include "analysis/reliability.h"
#include "common/env.h"
#include "harness/args.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace gocast;
  using harness::fmt;

  harness::Args args(argc, argv, {"threads", "help"});
  if (args.get_bool("help", false)) {
    std::cout << "fig1_reliability — push-gossip reliability vs fanout\n"
                 "flags: --threads N [0 = auto]\n";
    return 0;
  }

  harness::print_banner(
      std::cout, "FIG1: push-gossip reliability vs fanout (n=1024)",
      "all-nodes probability e^{-e^{ln n - F}}; >=0.5 for 1000 msgs needs "
      "fanout ~15");

  const std::size_t n = 1024;
  harness::Table table({"fanout", "P[all nodes, 1 msg]",
                        "P[all nodes, 1000 msgs]"});
  for (int fanout = 4; fanout <= 20; ++fanout) {
    table.add_row({std::to_string(fanout),
                   fmt(analysis::push_gossip_atomicity(n, fanout), 6),
                   fmt(analysis::push_gossip_atomicity_k(n, fanout, 1000), 6)});
  }
  table.print(std::cout);

  harness::print_claim(
      std::cout, "min fanout for P(1000 msgs) >= 0.5", "15",
      std::to_string(analysis::min_fanout_for_atomicity(n, 1000, 0.5)));

  // Empirical validation: fraction of (node, message) pairs missed by the
  // simulated push-gossip baseline at fanout 5. The paper reports ~0.7% of
  // nodes never hear a given message at fanout 5.
  std::cout << "\nempirical check (simulated push gossip):\n";
  std::size_t nodes = scaled_count(1024, 64);
  std::size_t messages = scaled_count(60, 10);

  harness::SweepSpec spec;
  spec.base.protocol = harness::Protocol::kPushGossip;
  spec.base.node_count = nodes;
  spec.base.warmup = 5.0;  // no overlay to adapt
  spec.base.message_count = messages;
  spec.base.drain = 30.0;
  for (int fanout : {5, 8}) {
    spec.overrides.push_back(
        {std::to_string(fanout), [fanout](harness::ScenarioConfig& c) {
           c.fanout = fanout;
           c.seed = 1000 + static_cast<std::uint64_t>(fanout);
         }});
  }
  harness::Runner runner(
      static_cast<std::size_t>(args.get_int("threads", 0)));
  for (const harness::SweepRun& run : harness::run_sweep(spec, runner)) {
    const int fanout = run.job.config.fanout;
    double missed = 1.0 - run.result.report.delivered_fraction;
    double predicted_node_miss =
        1.0 - analysis::push_gossip_atomicity(run.job.config.node_count, fanout);
    std::cout << "  fanout " << fanout << ": missed pair fraction "
              << fmt(missed, 5) << " (paper: ~0.007 of nodes at fanout 5)"
              << ", closed-form all-nodes failure " << fmt(predicted_node_miss, 5)
              << ", nodes with all messages "
              << fmt(run.result.report.nodes_with_all_messages, 4) << "\n";
  }
  return 0;
}

// FIG1 — Push-gossip reliability vs fanout (paper Fig 1).
//
// Plots e^{-e^{ln(n)-F}} (probability that all 1,024 nodes hear one message)
// and its 1,000-message power, and validates the closed form empirically by
// simulating the push-gossip baseline at selected fanouts.
#include <iostream>

#include "analysis/reliability.h"
#include "common/env.h"
#include "harness/scenario.h"
#include "harness/table.h"

int main() {
  using namespace gocast;
  using harness::fmt;

  harness::print_banner(
      std::cout, "FIG1: push-gossip reliability vs fanout (n=1024)",
      "all-nodes probability e^{-e^{ln n - F}}; >=0.5 for 1000 msgs needs "
      "fanout ~15");

  const std::size_t n = 1024;
  harness::Table table({"fanout", "P[all nodes, 1 msg]",
                        "P[all nodes, 1000 msgs]"});
  for (int fanout = 4; fanout <= 20; ++fanout) {
    table.add_row({std::to_string(fanout),
                   fmt(analysis::push_gossip_atomicity(n, fanout), 6),
                   fmt(analysis::push_gossip_atomicity_k(n, fanout, 1000), 6)});
  }
  table.print(std::cout);

  harness::print_claim(
      std::cout, "min fanout for P(1000 msgs) >= 0.5", "15",
      std::to_string(analysis::min_fanout_for_atomicity(n, 1000, 0.5)));

  // Empirical validation: fraction of (node, message) pairs missed by the
  // simulated push-gossip baseline at fanout 5. The paper reports ~0.7% of
  // nodes never hear a given message at fanout 5.
  std::cout << "\nempirical check (simulated push gossip):\n";
  std::size_t nodes = scaled_count(1024, 64);
  std::size_t messages = scaled_count(60, 10);
  for (int fanout : {5, 8}) {
    harness::ScenarioConfig config;
    config.protocol = harness::Protocol::kPushGossip;
    config.node_count = nodes;
    config.fanout = fanout;
    config.warmup = 5.0;  // no overlay to adapt
    config.message_count = messages;
    config.drain = 30.0;
    config.seed = 1000 + static_cast<std::uint64_t>(fanout);
    auto result = harness::run_scenario(config);
    double missed = 1.0 - result.report.delivered_fraction;
    double predicted_node_miss =
        1.0 - analysis::push_gossip_atomicity(config.node_count, fanout);
    std::cout << "  fanout " << fanout << ": missed pair fraction "
              << fmt(missed, 5) << " (paper: ~0.007 of nodes at fanout 5)"
              << ", closed-form all-nodes failure " << fmt(predicted_node_miss, 5)
              << ", nodes with all messages "
              << fmt(result.report.nodes_with_all_messages, 4) << "\n";
  }
  return 0;
}

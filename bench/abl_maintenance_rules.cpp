// ABL — Ablations of the overlay maintenance rules (paper §2.2.3).
//
// The paper justifies three design choices with measured claims:
//   A1. condition C1's floor C_near-1: tightening it to C_near "would
//       produce an overlay whose link latencies are dramatically higher"
//   A2. dropping only at D_near >= C_near+2: the aggressive alternative
//       (drop at C_near+1) "increases the number of link changes by almost
//       one third and it takes longer to stabilize"
//   A3. condition C4's factor-2 improvement requirement avoids "futile
//       minor adaptations" (vs accepting any improvement)
// This bench reproduces all three by re-running the adaptation experiment
// with each rule ablated.
#include <iostream>

#include "analysis/graph_analysis.h"
#include "common/env.h"
#include "gocast/system.h"
#include "harness/table.h"

namespace {

struct Ablated {
  double mean_overlay_one_way;
  double mean_nearby_one_way;
  std::uint64_t link_changes;
  double degree6_fraction;
};

Ablated run(std::size_t nodes, double warmup,
            const std::function<void(gocast::overlay::OverlayParams&)>& tweak) {
  using namespace gocast;
  core::SystemConfig config;
  config.node_count = nodes;
  config.seed = 71;
  tweak(config.node.overlay);
  core::System system(config);
  system.start();
  system.run_for(warmup);

  Ablated out{};
  auto stats = analysis::link_latency_stats(system);
  out.mean_overlay_one_way = stats.mean_overlay_one_way;
  out.mean_nearby_one_way =
      analysis::mean_link_latency_of_kind(system, overlay::LinkKind::kNearby);
  for (NodeId id = 0; id < system.size(); ++id) {
    out.link_changes += system.node(id).overlay().links_added() +
                        system.node(id).overlay().links_dropped();
  }
  out.degree6_fraction = analysis::degree_distribution(system).fraction(6);
  return out;
}

}  // namespace

int main() {
  using namespace gocast;
  using harness::fmt;
  using harness::fmt_ms;

  std::size_t nodes = scaled_count(1024, 128);
  double warmup = env_double("GOCAST_WARMUP", 240.0);

  harness::print_banner(
      std::cout,
      "ABL: maintenance-rule ablations (n=" + std::to_string(nodes) + ")",
      "C1 floor at C_near gives much longer links; dropping at C+1 adds ~1/3 "
      "link changes; C4 at 1.0 causes futile adaptations");

  Ablated base = run(nodes, warmup, [](overlay::OverlayParams&) {});
  Ablated tight_c1 = run(nodes, warmup, [](overlay::OverlayParams& p) {
    p.replace_floor_offset = 0;  // C1 floor at C_near instead of C_near-1
  });
  Ablated aggressive_drop = run(nodes, warmup, [](overlay::OverlayParams& p) {
    p.drop_slack = 1;  // drop already at C_near+1
  });
  Ablated loose_c4 = run(nodes, warmup, [](overlay::OverlayParams& p) {
    p.replace_ratio = 1.0;  // accept any improvement
  });

  harness::Table table({"variant", "mean overlay one-way", "mean nearby one-way",
                        "link changes", "at degree 6"});
  auto row = [&](const char* name, const Ablated& a) {
    table.add_row({name, fmt_ms(a.mean_overlay_one_way),
                   fmt_ms(a.mean_nearby_one_way),
                   std::to_string(a.link_changes),
                   harness::fmt_pct(a.degree6_fraction, 1)});
  };
  row("paper rules (baseline)", base);
  row("A1: C1 floor = C_near", tight_c1);
  row("A2: drop at C_near+1", aggressive_drop);
  row("A3: C4 ratio = 1.0", loose_c4);
  table.print(std::cout);

  harness::print_claim(
      std::cout, "A1 nearby-latency inflation vs baseline", "dramatic (>1x)",
      fmt(tight_c1.mean_nearby_one_way / base.mean_nearby_one_way, 2) + "x");
  harness::print_claim(
      std::cout, "A2 link-change inflation vs baseline", "~1.33x",
      fmt(static_cast<double>(aggressive_drop.link_changes) /
              static_cast<double>(base.link_changes),
          2) + "x");
  harness::print_claim(
      std::cout, "A3 link-change inflation vs baseline", "> 1x (futile churn)",
      fmt(static_cast<double>(loose_c4.link_changes) /
              static_cast<double>(base.link_changes),
          2) + "x");
  return 0;
}

// EXT — Multi-group multicast over a shared substrate (DESIGN.md §10).
//
// Sweeps group counts with digest multiplexing on and off and reports, per
// cell, aggregate group-0 delivery (comparable with every single-group
// bench), per-group delivery/delay, and the headline gossip-message count.
// With multiplexing one GroupedGossip per period carries every co-subscribed
// group's digest section, so gossip traffic stays O(fanout) per node per
// period instead of O(groups × fanout) — the ratio this bench measures.
//
// Usage: ext_multigroup [--nodes N] [--messages N] [--warmup SECS]
//        [--csv FILE] [--threads N] [--smoke]. Output is byte-identical at
//        any --threads value: jobs shard across the pool but merge in spec
//        order.
//
// --smoke turns the bench into a CI gate (tools/check.sh multigroup-smoke):
// one group count, mux on vs off, asserting that multiplexing cuts gossip
// messages below 0.7× the per-group baseline while every group still
// delivers.
#include <cstddef>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/env.h"
#include "harness/args.h"
#include "harness/runner.h"
#include "harness/scenario.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace gocast;
  using harness::fmt;

  harness::Args args(argc, argv,
                     {"nodes", "messages", "warmup", "csv", "threads",
                      "smoke", "help"});
  if (args.get_bool("help", false)) {
    std::cout
        << "ext_multigroup — per-group delivery and gossip mux savings\n"
           "flags: --nodes N [256] --messages N [240] --warmup SECS [150]\n"
           "       --csv FILE --threads N [0 = auto] --smoke (CI gate)\n";
    return 0;
  }

  const bool smoke = args.get_bool("smoke", false);
  const std::size_t nodes = static_cast<std::size_t>(args.get_int(
      "nodes", static_cast<long>(smoke ? 192 : scaled_count(256, 96))));
  const std::size_t messages = static_cast<std::size_t>(
      args.get_int("messages", smoke ? 160 : 240));
  const double warmup =
      args.get_double("warmup", env_double("GOCAST_WARMUP", 150.0));

  // One job per (group count, multiplexing) cell. groups=1 runs the
  // pre-multigroup code path (no mux timer exists), so it appears once as
  // the single-group baseline.
  struct Cell {
    std::size_t groups;
    bool mux;
  };
  std::vector<Cell> cells;
  if (smoke) {
    cells = {{8, false}, {8, true}};
  } else {
    cells = {{1, true}, {4, false}, {4, true}, {8, false}, {8, true}};
  }

  harness::print_banner(
      std::cout,
      "EXT: multi-group multicast (n=" + std::to_string(nodes) + ", " +
          std::to_string(messages) + " msgs)",
      "one membership plane, per-group trees/dissemination; mux packs "
      "co-subscribed digests into one gossip per period");

  harness::Runner runner(
      static_cast<std::size_t>(args.get_int("threads", 0)));
  std::vector<harness::ScenarioResult> results =
      runner.run<harness::ScenarioResult>(cells.size(), [&](std::size_t job) {
        const Cell& cell = cells[job];
        harness::ScenarioConfig config;
        config.node_count = nodes;
        config.seed = 407 + cell.groups;  // same seed for mux on/off pairs
        config.warmup = warmup;
        config.message_count = messages;
        config.message_rate = 20.0;
        config.payload_bytes = 512;
        if (cell.groups > 1) {
          config.group_spec = "groups=" + std::to_string(cell.groups) +
                              ";zipf=0.9;pop=0.6;corr=0.25";
          config.multiplex_gossip = cell.mux;
        }
        return harness::run_scenario(config);
      });

  harness::Table table({"groups", "mux", "delivered (g0)", "mean delay (g0)",
                        "worst group", "gossip msgs", "vs per-group"});
  // Baseline for the ratio column: the mux-off run with the same group
  // count (the single-group row compares against itself).
  auto baseline_of = [&](std::size_t job) -> const harness::ScenarioResult& {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].groups == cells[job].groups && !cells[i].mux) {
        return results[i];
      }
    }
    return results[job];
  };
  bool all_groups_delivered = true;
  for (std::size_t job = 0; job < cells.size(); ++job) {
    const Cell& cell = cells[job];
    const harness::ScenarioResult& r = results[job];
    double worst = 1.0;
    for (const auto& g : r.group_stats) {
      if (g.messages > 0 && g.delivered_fraction < worst) {
        worst = g.delivered_fraction;
      }
      if (g.messages > 0 && g.delivered_fraction < 0.999) {
        all_groups_delivered = false;
      }
    }
    const harness::ScenarioResult& base = baseline_of(job);
    double ratio = base.gossip_messages == 0
                       ? 1.0
                       : static_cast<double>(r.gossip_messages) /
                             static_cast<double>(base.gossip_messages);
    table.add_row({std::to_string(cell.groups),
                   cell.groups == 1 ? "-" : (cell.mux ? "on" : "off"),
                   harness::fmt_pct(r.report.delivered_fraction, 2),
                   harness::fmt_ms(r.report.delay.mean()),
                   harness::fmt_pct(worst, 2),
                   std::to_string(r.gossip_messages),
                   fmt(ratio, 2) + "x"});
  }
  table.print(std::cout);

  // Per-group breakdown of the largest multiplexed cell — the CSV carries
  // every cell's rows; the terminal shows the most interesting one.
  for (std::size_t job = cells.size(); job-- > 0;) {
    if (cells[job].groups > 1 && cells[job].mux) {
      std::cout << "\nper-group (groups=" << cells[job].groups
                << ", mux on):\n";
      harness::Table detail(
          {"group", "members", "messages", "delivered", "mean delay"});
      for (const auto& g : results[job].group_stats) {
        detail.add_row({std::to_string(g.group), std::to_string(g.members),
                        std::to_string(g.messages),
                        harness::fmt_pct(g.delivered_fraction, 2),
                        harness::fmt_ms(g.mean_delay)});
      }
      detail.print(std::cout);
      break;
    }
  }

  if (args.has("csv")) {
    std::string path = args.get("csv", "");
    std::ofstream out(path, std::ios::app);
    if (out.tellp() == 0) {
      out << "groups,mux,nodes,group,members,messages,deliveries,"
             "delivered_fraction,mean_delay_ms,gossip_messages\n";
    }
    for (std::size_t job = 0; job < cells.size(); ++job) {
      const Cell& cell = cells[job];
      const harness::ScenarioResult& r = results[job];
      if (r.group_stats.empty()) {
        out << cell.groups << "," << (cell.mux ? 1 : 0) << "," << nodes
            << ",0," << r.alive_nodes << "," << messages << ","
            << r.deliveries << "," << fmt(r.report.delivered_fraction, 6)
            << "," << fmt(r.report.delay.mean() * 1000.0, 3) << ","
            << r.gossip_messages << "\n";
        continue;
      }
      for (const auto& g : r.group_stats) {
        out << cell.groups << "," << (cell.mux ? 1 : 0) << "," << nodes
            << "," << g.group << "," << g.members << "," << g.messages << ","
            << g.deliveries << "," << fmt(g.delivered_fraction, 6) << ","
            << fmt(g.mean_delay * 1000.0, 3) << "," << r.gossip_messages
            << "\n";
      }
    }
    std::cout << "rows appended to " << path << "\n";
  }

  if (!smoke) return 0;

  // --- CI gate -------------------------------------------------------------
  // Multiplexing must cut gossip traffic well below the one-message-per-
  // group baseline, and no group may lose messages in either mode.
  const harness::ScenarioResult& off = results[0];
  const harness::ScenarioResult& on = results[1];
  std::cout << "pulls: off=" << off.pulls_sent << " (exhausted "
            << off.pull_retries_exhausted << "), on=" << on.pulls_sent
            << " (exhausted " << on.pull_retries_exhausted << ")\n";
  bool ok = true;
  if (off.gossip_messages == 0 || on.gossip_messages == 0) {
    std::cout << "SMOKE FAIL: gossip counters empty (off="
              << off.gossip_messages << ", on=" << on.gossip_messages
              << ")\n";
    ok = false;
  } else {
    double ratio = static_cast<double>(on.gossip_messages) /
                   static_cast<double>(off.gossip_messages);
    if (ratio >= 0.7) {
      std::cout << "SMOKE FAIL: mux gossip ratio " << fmt(ratio, 3)
                << " >= 0.7 (mux should beat one-gossip-per-group)\n";
      ok = false;
    }
  }
  for (std::size_t job = 0; job < 2; ++job) {
    for (const auto& g : results[job].group_stats) {
      if (g.messages > 0 && g.delivered_fraction < 0.995) {
        std::cout << "SMOKE FAIL: group " << g.group << " (mux "
                  << (cells[job].mux ? "on" : "off") << ") delivered "
                  << fmt(g.delivered_fraction, 4) << " < 0.995\n";
        ok = false;
      }
    }
  }
  if (!all_groups_delivered) {
    std::cout << "note: some group delivered < 99.9% (see table)\n";
  }
  std::cout << (ok ? "SMOKE OK: mux beats per-group gossip, all groups "
                     "delivered\n"
                   : "SMOKE FAILED\n");
  return ok ? 0 : 1;
}

// Soft real-time delivery under failures — the paper's mission-critical
// framing ("airline control and system monitoring... when a deadline is
// missed, the message becomes useless").
//
// Compares GoCast against push gossip on one question: what fraction of
// (receiver, message) pairs meet a delivery deadline, with a healthy system
// and with 20% of nodes crashed? Uses the same experiment harness as the
// paper-reproduction benches.
//
//   ./deadline_delivery [nodes] [deadline_ms]
#include <cstdlib>
#include <iostream>

#include "harness/scenario.h"
#include "harness/table.h"

int main(int argc, char** argv) {
  using namespace gocast;
  using harness::fmt;

  std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 256;
  double deadline = (argc > 2 ? std::strtod(argv[2], nullptr) : 800.0) / 1000.0;

  std::cout << "deadline-delivery comparison, " << nodes << " nodes, deadline "
            << deadline * 1000.0 << " ms\n";

  harness::Table table(
      {"protocol", "failures", "within deadline", "delivered", "mean delay"});

  for (double fail : {0.0, 0.20}) {
    for (harness::Protocol protocol :
         {harness::Protocol::kGoCast, harness::Protocol::kPushGossip}) {
      harness::ScenarioConfig config;
      config.protocol = protocol;
      config.node_count = nodes;
      config.warmup = protocol == harness::Protocol::kGoCast ? 150.0 : 5.0;
      config.message_count = 60;
      config.fail_fraction = fail;
      config.drain = 30.0;
      config.seed = 31;
      auto result = harness::run_scenario(config);

      // Fraction of pairs delivered within the deadline, from the CDF curve.
      double within = 0.0;
      for (const auto& point : result.curve) {
        if (point.delay <= deadline) within = point.fraction;
      }
      table.add_row({harness::protocol_name(protocol), harness::fmt_pct(fail, 0),
                     harness::fmt_pct(within, 1),
                     harness::fmt_pct(result.report.delivered_fraction, 1),
                     harness::fmt_ms(result.report.delay.mean())});
    }
  }
  table.print(std::cout);
  std::cout << "\nGoCast holds its deadline budget through failures; push\n"
               "gossip misses both the deadline and some deliveries.\n";
  return 0;
}

// Quickstart: build a small GoCast deployment, let the overlay and tree
// adapt, multicast a few messages, and watch them arrive everywhere.
//
//   ./quickstart [nodes] [messages]
#include <cstdlib>
#include <iostream>

#include "analysis/delivery_tracker.h"
#include "analysis/graph_analysis.h"
#include "gocast/system.h"

int main(int argc, char** argv) {
  using namespace gocast;

  std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;
  std::size_t messages = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 5;

  // 1. Configure the system. Defaults follow the paper: C_rand = 1 random
  //    neighbor, C_near = 5 nearby neighbors, 0.1 s gossip and maintenance
  //    periods, a 15 s tree heartbeat.
  core::SystemConfig config;
  config.node_count = nodes;
  config.seed = 42;

  core::System system(config);

  // 2. Track deliveries.
  analysis::DeliveryTracker tracker(nodes);
  system.set_delivery_hook(tracker.hook());

  // 3. Start and let the overlay adapt: long links are replaced by nearby
  //    ones, node degrees converge to 6, a latency-optimized tree forms.
  system.start();
  system.run_for(120.0);

  auto latency = analysis::link_latency_stats(system);
  std::cout << "after 120 s of adaptation:\n"
            << "  overlay links: " << latency.overlay_links
            << " (mean one-way " << latency.mean_overlay_one_way * 1000.0
            << " ms)\n"
            << "  tree links:    " << latency.tree_links << " (mean one-way "
            << latency.mean_tree_one_way * 1000.0 << " ms)\n";

  auto tree = analysis::tree_stats(system);
  std::cout << "  tree root: node " << tree.root << ", spans "
            << tree.reachable_from_root << "/" << nodes << " nodes\n";

  // 4. Multicast from random sources; any node may start a multicast
  //    without routing through the root.
  tracker.set_recording(true);
  for (std::size_t i = 0; i < messages; ++i) {
    NodeId source = system.random_alive_node();
    MsgId id = system.node(source).multicast();
    std::cout << "node " << source << " multicasts message " << id.to_string()
              << "\n";
    system.run_for(2.0);
  }
  system.run_for(5.0);

  // 5. Report.
  auto report = tracker.report(system.alive_nodes());
  std::cout << "\ndelivered " << report.delivered_fraction * 100.0
            << "% of (node, message) pairs\n"
            << "mean delay " << report.delay.mean() * 1000.0 << " ms, p99 "
            << report.p99 * 1000.0 << " ms, max "
            << report.max_delay * 1000.0 << " ms\n";

  return report.delivered_fraction == 1.0 ? 0 : 1;
}

// System-monitoring event feed — the workload the paper's introduction
// motivates ("disseminating system monitoring events to facilitate the
// management of distributed systems").
//
// A 200-node management fabric multicasts a steady feed of monitoring
// events. Mid-run, a rack-sized slice of the fleet crashes. The example
// shows the properties a monitoring pipeline cares about: every live node
// keeps receiving every event, and delivery delay degrades only mildly
// while repair runs in the background.
//
//   ./monitoring_feed [nodes] [events_per_second]
#include <cstdlib>
#include <iostream>

#include "analysis/delivery_tracker.h"
#include "analysis/graph_analysis.h"
#include "gocast/system.h"

int main(int argc, char** argv) {
  using namespace gocast;

  std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
  double rate = argc > 2 ? std::strtod(argv[2], nullptr) : 50.0;

  core::SystemConfig config;
  config.node_count = nodes;
  config.seed = 2026;
  // Monitoring events are small; make pulls cheap and let the tree win the
  // race (f = 0.3 s, the paper's recommendation).
  config.node.dissemination.payload_bytes = 256;
  config.node.dissemination.pull_delay_threshold = 0.3;

  core::System system(config);
  analysis::DeliveryTracker tracker(nodes);
  system.set_delivery_hook(tracker.hook());
  system.start();

  std::cout << "adapting overlay for 120 s...\n";
  system.run_for(120.0);

  auto inject_events = [&](double seconds, const char* phase) {
    SimTime start = system.now();
    std::size_t count = static_cast<std::size_t>(seconds * rate);
    for (std::size_t i = 0; i < count; ++i) {
      system.engine().schedule_at(
          start + static_cast<double>(i) / rate, [&system, &config] {
            // Any management node can publish an event directly.
            system.node(system.random_alive_node())
                .multicast(config.node.dissemination.payload_bytes);
          });
    }
    system.run_until(start + seconds + 5.0);
    std::cout << "  [" << phase << "] injected " << count << " events\n";
  };

  tracker.set_recording(true);
  inject_events(10.0, "healthy fleet");

  std::cout << "\ncrashing 15% of the fleet (repair stays ON)...\n";
  auto killed = system.fail_random_fraction(0.15);
  std::cout << "  " << killed.size() << " nodes down\n";
  inject_events(10.0, "degraded fleet");

  system.run_for(60.0);  // let repair finish
  inject_events(10.0, "repaired fleet");
  system.run_for(10.0);

  auto report = tracker.report(system.alive_nodes());
  auto graph = analysis::snapshot_overlay(system);
  auto comp = analysis::components(graph);
  auto tree = analysis::tree_stats(system);

  std::cout << "\nresults over all three phases:\n"
            << "  events tracked:    " << report.messages << "\n"
            << "  delivered:         " << report.delivered_fraction * 100.0
            << "% of (live node, event) pairs\n"
            << "  mean delay:        " << report.delay.mean() * 1000.0 << " ms\n"
            << "  p99 delay:         " << report.p99 * 1000.0 << " ms\n"
            << "  worst delay:       " << report.max_delay * 1000.0 << " ms\n"
            << "after repair:\n"
            << "  overlay connected: " << (comp.largest_fraction == 1.0 ? "yes" : "NO")
            << "\n"
            << "  tree spanning:     " << (tree.spanning ? "yes" : "NO") << "\n";

  return report.delivered_fraction == 1.0 && comp.largest_fraction == 1.0 ? 0 : 1;
}

// Cache-consistency updates — the paper's second motivating workload
// ("propagating updates of shared state to maintain cache consistency").
//
// A fleet of edge caches replicates a key-value store. Writes at any node
// are multicast as invalidations; every cache applies them in per-key
// version order. The example measures staleness (how long a cache serves an
// outdated value) and verifies convergence: after the write stream stops,
// all caches agree on every key, even with 10% packet loss on the wire.
//
//   ./cache_invalidation [nodes] [keys] [writes]
#include <cstdlib>
#include <iostream>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "gocast/system.h"

namespace {

struct CacheLine {
  std::uint32_t version = 0;
  gocast::SimTime applied_at = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gocast;

  std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 96;
  std::size_t keys = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 32;
  std::size_t writes = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 300;

  core::SystemConfig config;
  config.node_count = nodes;
  config.seed = 7;
  config.node.dissemination.payload_bytes = 128;  // an invalidation record
  config.net.loss_probability = 0.10;  // lossy wide-area paths

  core::System system(config);

  // Application state: per node, per key, the highest version applied.
  // The multicast id maps to (key, version) through the write log.
  std::vector<std::map<std::uint32_t, CacheLine>> caches(nodes);
  std::map<MsgId, std::pair<std::uint32_t, std::uint32_t>> write_log;
  std::map<std::uint32_t, std::uint32_t> latest_version;
  Summary staleness;

  system.set_delivery_hook([&](const core::DeliveryEvent& event) {
    auto it = write_log.find(event.id);
    if (it == write_log.end()) return;  // warmup traffic
    auto [key, version] = it->second;
    CacheLine& line = caches[event.node][key];
    if (version > line.version) {
      staleness.add(event.deliver_time - event.inject_time);
      line.version = version;
      line.applied_at = event.deliver_time;
    }
  });

  system.start();
  std::cout << "adapting overlay for 120 s (10% packet loss active)...\n";
  system.run_for(120.0);

  // Write workload: random writers update random keys at 40 writes/s.
  Rng workload(99);
  SimTime start = system.now();
  for (std::size_t i = 0; i < writes; ++i) {
    system.engine().schedule_at(
        start + static_cast<double>(i) / 40.0, [&, i] {
          auto key = static_cast<std::uint32_t>(workload.next_below(keys));
          NodeId writer = system.random_alive_node();
          std::uint32_t version = ++latest_version[key];
          MsgId id = system.node(writer).multicast(128);
          write_log[id] = {key, version};
          // The local delivery fired inside multicast(), before the write
          // was in the log; apply the writer's own update here.
          CacheLine& line = caches[writer][key];
          if (version > line.version) {
            line.version = version;
            line.applied_at = system.now();
          }
        });
  }
  system.run_until(start + static_cast<double>(writes) / 40.0 + 30.0);

  // Convergence check: every cache holds the latest version of every key.
  std::size_t divergent = 0;
  for (NodeId id = 0; id < nodes; ++id) {
    for (const auto& [key, version] : latest_version) {
      auto it = caches[id].find(key);
      if (it == caches[id].end() || it->second.version != version) ++divergent;
    }
  }

  std::cout << "\nresults:\n"
            << "  writes:            " << writes << " across " << keys
            << " keys\n"
            << "  update latency:    mean " << staleness.mean() * 1000.0
            << " ms, max " << staleness.max() * 1000.0 << " ms\n"
            << "  divergent entries: " << divergent << " of " << nodes * keys
            << " (after quiescence)\n";

  if (divergent == 0) {
    std::cout << "  all caches converged despite 10% packet loss\n";
    return 0;
  }
  return 1;
}

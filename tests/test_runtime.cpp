// Tests for the runtime seam (runtime/context.h): the simulator binding keeps
// full-system churn working (revive/spawn round-trips through SimRuntime),
// and the real-time backend runs the identical protocol templates against the
// steady clock — including an 8-node live smoke test where a multicast
// injected at a non-root node reaches everyone.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "gocast/node.h"
#include "gocast/system.h"
#include "runtime/realtime_runtime.h"
#include "runtime/sim_runtime.h"

namespace gocast {
namespace {

// ---------------------------------------------------------------------------
// SimRuntime through the full system: churn round-trips
// ---------------------------------------------------------------------------

TEST(SimRuntimeSystem, RevivedNodeRejoinsAndDeliversAgain) {
  core::SystemConfig config;
  config.node_count = 32;
  config.seed = 11;
  core::System system(config);
  system.start();
  system.run_for(60.0);

  // Kill a non-root node, let the overlay absorb the loss, revive it.
  NodeId victim = system.node(0).tree().is_root() ? 1 : 0;
  system.node(victim).kill();
  EXPECT_FALSE(system.network().alive(victim));
  system.run_for(30.0);

  system.revive_node(victim);
  EXPECT_TRUE(system.network().alive(victim));
  system.run_for(60.0);

  // The revived node is wired back in: it has neighbors and a tree parent
  // (or is root), and a multicast from elsewhere reaches it.
  EXPECT_GT(system.node(victim).overlay().degree(), 0);
  std::uint64_t before = system.node(victim).deliveries_count();
  NodeId sender = victim == 0 ? 1 : 0;
  system.node(sender).multicast(256);
  system.run_for(30.0);
  EXPECT_EQ(system.node(victim).deliveries_count(), before + 1);
}

TEST(SimRuntimeSystem, SpawnedDeferredNodeIntegrates) {
  core::SystemConfig config;
  config.node_count = 24;
  config.deferred_nodes = 2;
  config.seed = 12;
  core::System system(config);
  system.start();
  system.run_for(60.0);

  EXPECT_EQ(system.deferred_remaining(), 2u);
  NodeId first = system.spawn_next();
  ASSERT_NE(first, kInvalidNode);
  system.run_for(60.0);

  EXPECT_GT(system.node(first).overlay().degree(), 0);
  std::uint64_t before = system.node(first).deliveries_count();
  system.node(0).multicast(256);
  system.run_for(30.0);
  EXPECT_EQ(system.node(first).deliveries_count(), before + 1);

  NodeId second = system.spawn_next();
  ASSERT_NE(second, kInvalidNode);
  EXPECT_EQ(system.deferred_remaining(), 0u);
  EXPECT_EQ(system.spawn_next(), kInvalidNode);
}

// ---------------------------------------------------------------------------
// RealtimeRuntime unit behavior
// ---------------------------------------------------------------------------

TEST(RealtimeRuntime, TimersFireInDeadlineOrder) {
  runtime::RealtimeConfig config;
  runtime::RealtimeRuntime rt(config);
  std::vector<int> order;
  auto* order_ptr = &order;
  rt.schedule_after(0.02, [order_ptr] { order_ptr->push_back(2); });
  rt.schedule_after(0.01, [order_ptr] { order_ptr->push_back(1); });
  rt.schedule_after(0.03, [order_ptr] { order_ptr->push_back(3); });
  std::size_t fired = rt.run_for(0.5);
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RealtimeRuntime, CancelPreventsFiring) {
  runtime::RealtimeRuntime rt;
  bool fired = false;
  auto* fired_ptr = &fired;
  auto id = rt.schedule_after(0.01, [fired_ptr] { *fired_ptr = true; });
  EXPECT_TRUE(rt.cancel(id));
  EXPECT_FALSE(rt.cancel(id));
  rt.run_for(0.05);
  EXPECT_FALSE(fired);
}

struct TestMsg final : net::Message {
  explicit TestMsg(std::size_t bytes = 100)
      : Message(net::MsgKind::kOther, 999), bytes(bytes) {}
  std::size_t bytes;
  std::size_t wire_size() const override { return bytes; }
};

struct RecordingEndpoint final : net::Endpoint {
  std::vector<NodeId> senders;
  std::vector<NodeId> failures;
  void handle_message(NodeId from, const net::MessagePtr&) override {
    senders.push_back(from);
  }
  void handle_send_failure(NodeId to, const net::MessagePtr&) override {
    failures.push_back(to);
  }
};

TEST(RealtimeRuntime, SendDeliversAfterLatencyAndNotifiesFailures) {
  runtime::RealtimeConfig config;
  config.one_way_latency = 0.001;
  runtime::RealtimeRuntime rt(config);
  NodeId a = rt.add_node();
  NodeId b = rt.add_node();
  NodeId c = rt.add_node();
  RecordingEndpoint ep_a, ep_b;
  rt.set_endpoint(a, &ep_a);
  rt.set_endpoint(b, &ep_b);

  rt.send(a, b, rt.make<TestMsg>(64));
  rt.fail_node(c);
  rt.send(a, c, rt.make<TestMsg>(64));
  rt.run_for(0.1);

  ASSERT_EQ(ep_b.senders.size(), 1u);
  EXPECT_EQ(ep_b.senders[0], a);
  ASSERT_EQ(ep_a.failures.size(), 1u);
  EXPECT_EQ(ep_a.failures[0], c);
  EXPECT_EQ(rt.stats().messages_delivered, 1u);
  EXPECT_EQ(rt.stats().messages_dropped, 1u);
}

TEST(RealtimeRuntime, DeadSenderIsDropped) {
  runtime::RealtimeRuntime rt;
  NodeId a = rt.add_node();
  NodeId b = rt.add_node();
  RecordingEndpoint ep_b;
  rt.set_endpoint(b, &ep_b);
  rt.fail_node(a);
  rt.send(a, b, rt.make<TestMsg>(64));
  rt.run_for(0.05);
  EXPECT_TRUE(ep_b.senders.empty());
  EXPECT_EQ(rt.stats().messages_dropped, 1u);
}

// ---------------------------------------------------------------------------
// Live smoke test: 8 real nodes, one multicast, everyone delivers
// ---------------------------------------------------------------------------

TEST(RealtimeSmoke, EightLiveNodesDeliverOneMulticast) {
  constexpr std::size_t kNodes = 8;
  runtime::RealtimeConfig rt_config;
  rt_config.one_way_latency = 0.0002;
  rt_config.seed = 5;
  runtime::RealtimeRuntime rt(rt_config);
  for (std::size_t i = 0; i < kNodes; ++i) rt.add_node();

  core::GoCastConfig config;
  config.tree.heartbeat_period = 0.1;
  config.dissemination.gossip_period = 0.05;
  config.landmarks = {0, 1};

  using LiveNode = core::GoCastNodeT<runtime::RealtimeContext>;
  Rng rng(5);
  std::vector<std::unique_ptr<LiveNode>> nodes;
  for (NodeId id = 0; id < kNodes; ++id) {
    nodes.push_back(std::make_unique<LiveNode>(
        id, rt, config, rng.fork(static_cast<std::uint64_t>(id))));
  }

  std::vector<membership::MemberEntry> all(kNodes);
  for (NodeId id = 0; id < kNodes; ++id) all[id].id = id;
  Rng init_rng = rng.fork("init");
  for (NodeId id = 0; id < kNodes; ++id) {
    std::vector<membership::MemberEntry> others;
    for (const auto& entry : all) {
      if (entry.id != id) others.push_back(entry);
    }
    nodes[id]->seed_view(others);
    NodeId peer = static_cast<NodeId>((id + 1) % kNodes);
    nodes[id]->bootstrap_link(peer, overlay::LinkKind::kRandom);
    nodes[peer]->bootstrap_link(id, overlay::LinkKind::kRandom);
  }
  nodes[0]->become_root();

  std::map<MsgId, std::size_t> delivered;
  auto* delivered_ptr = &delivered;
  for (auto& node : nodes) {
    node->set_delivery_hook([delivered_ptr](const core::DeliveryEvent& e) {
      ++(*delivered_ptr)[e.id];
    });
  }
  for (NodeId id = 0; id < kNodes; ++id) {
    nodes[id]->start(init_rng.next_range(0.0, 0.05));
  }

  // Warm up until the overlay and tree form, then inject at a non-root node.
  rt.run_for(1.0);
  MsgId id = nodes[3]->multicast(256);

  // Poll rather than sleep a fixed worst case: CI machines vary.
  for (int i = 0; i < 40 && (*delivered_ptr)[id] < kNodes; ++i) {
    rt.run_for(0.1);
  }
  EXPECT_EQ(delivered[id], kNodes);
  for (const auto& node : nodes) {
    EXPECT_EQ(node->deliveries_count(), 1u) << "node " << node->id();
  }
}

}  // namespace
}  // namespace gocast

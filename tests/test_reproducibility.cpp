// Reproducibility and calibration tests: whole scenarios are bit-stable per
// seed, and the default latency model matches the King-dataset envelope the
// paper reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gocast/system.h"
#include "harness/scenario.h"

namespace gocast {
namespace {

TEST(Reproducibility, ScenarioIsBitStablePerSeed) {
  harness::ScenarioConfig config;
  config.protocol = harness::Protocol::kGoCast;
  config.node_count = 48;
  config.warmup = 30.0;
  config.message_count = 8;
  config.drain = 15.0;
  config.seed = 77;

  auto a = harness::run_scenario(config);
  auto b = harness::run_scenario(config);
  EXPECT_EQ(a.report.delay.mean(), b.report.delay.mean());
  EXPECT_EQ(a.report.max_delay, b.report.max_delay);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.traffic.total_sent().messages, b.traffic.total_sent().messages);
  EXPECT_EQ(a.traffic.total_sent().bytes, b.traffic.total_sent().bytes);
}

TEST(Reproducibility, DifferentSeedsDiverge) {
  harness::ScenarioConfig config;
  config.protocol = harness::Protocol::kGoCast;
  config.node_count = 48;
  config.warmup = 30.0;
  config.message_count = 8;
  config.drain = 15.0;

  config.seed = 77;
  auto a = harness::run_scenario(config);
  config.seed = 78;
  auto b = harness::run_scenario(config);
  EXPECT_NE(a.traffic.total_sent().messages, b.traffic.total_sent().messages);
}

TEST(Reproducibility, BaselineScenarioIsBitStable) {
  harness::ScenarioConfig config;
  config.protocol = harness::Protocol::kPushGossip;
  config.node_count = 48;
  config.warmup = 2.0;
  config.message_count = 8;
  config.drain = 15.0;
  config.seed = 79;
  auto a = harness::run_scenario(config);
  auto b = harness::run_scenario(config);
  EXPECT_EQ(a.report.delay.mean(), b.report.delay.mean());
  EXPECT_EQ(a.traffic.total_sent().bytes, b.traffic.total_sent().bytes);
}

TEST(Calibration, DefaultModelMatchesKingEnvelope) {
  // The full 1,740-site default model must reproduce the paper's reported
  // statistics of the King data: average one-way 91 ms, max one-way 399 ms.
  auto model = core::default_latency_model(1);
  EXPECT_EQ(model->site_count(), 1740u);
  double mean = model->mean_one_way();
  EXPECT_NEAR(mean, 0.091, 0.008);
  EXPECT_LE(model->max_one_way(), 0.399 + 1e-6);
  EXPECT_GT(model->max_one_way(), 0.30);
}

TEST(Calibration, DefaultModelHasDisconnectedClusters) {
  // Fig 6's C_rand=0 result depends on geography: with nearby links only,
  // remote clusters must not be bridgeable. Proxy check: for a typical
  // site, the 5 nearest other sites are much closer than the mean.
  auto model = core::default_latency_model(1);
  std::size_t n = model->site_count();
  double mean = model->mean_one_way();
  double near_sum = 0.0;
  int sampled = 0;
  for (std::uint32_t s = 0; s < n; s += 97) {
    std::vector<double> dists;
    dists.reserve(n - 1);
    for (std::uint32_t t = 0; t < n; ++t) {
      if (t != s) dists.push_back(model->one_way(s, t));
    }
    std::nth_element(dists.begin(), dists.begin() + 4, dists.end());
    near_sum += dists[4];
    ++sampled;
  }
  double mean_5th_nearest = near_sum / sampled;
  EXPECT_LT(mean_5th_nearest, mean / 4.0);
}

}  // namespace
}  // namespace gocast

// Unit tests for the discrete-event engine: ordering, cancelation,
// determinism, and run_until semantics.
#include "sim/engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

namespace gocast::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0.0);
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.processed(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 3.0);
}

TEST(Engine, SameTimeEventsRunInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ScheduleAfterUsesRelativeDelay) {
  Engine engine;
  double fired_at = -1.0;
  engine.schedule_at(5.0, [&] {
    engine.schedule_after(2.5, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Engine, NowAdvancesToEventTime) {
  Engine engine;
  double observed = -1.0;
  engine.schedule_at(4.25, [&] { observed = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(observed, 4.25);
}

TEST(Engine, CancelPreventsExecution) {
  Engine engine;
  bool fired = false;
  EventId id = engine.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(Engine, CancelTwiceReturnsFalse) {
  Engine engine;
  EventId id = engine.schedule_at(1.0, [] {});
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));
}

TEST(Engine, CancelAfterFireReturnsFalse) {
  Engine engine;
  EventId id = engine.schedule_at(1.0, [] {});
  engine.run();
  EXPECT_FALSE(engine.cancel(id));
}

TEST(Engine, SlotReuseDoesNotConfuseCancel) {
  Engine engine;
  bool second_fired = false;
  EventId first = engine.schedule_at(1.0, [] {});
  EXPECT_TRUE(engine.cancel(first));
  // The slot is recycled; the stale handle must not cancel the new event.
  engine.schedule_at(2.0, [&] { second_fired = true; });
  EXPECT_FALSE(engine.cancel(first));
  engine.run();
  EXPECT_TRUE(second_fired);
}

TEST(Engine, RunUntilStopsAtBoundaryInclusive) {
  Engine engine;
  std::vector<double> fired;
  engine.schedule_at(1.0, [&] { fired.push_back(1.0); });
  engine.schedule_at(2.0, [&] { fired.push_back(2.0); });
  engine.schedule_at(3.0, [&] { fired.push_back(3.0); });
  std::size_t n = engine.run_until(2.0);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(Engine, RunUntilAdvancesTimeEvenWithoutEvents) {
  Engine engine;
  engine.run_until(10.0);
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
}

TEST(Engine, EventsScheduledDuringRunUntilAreHonored) {
  Engine engine;
  std::vector<double> fired;
  engine.schedule_at(1.0, [&] {
    fired.push_back(engine.now());
    engine.schedule_after(0.5, [&] { fired.push_back(engine.now()); });
    engine.schedule_after(5.0, [&] { fired.push_back(engine.now()); });
  });
  engine.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 1.5}));
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine engine;
  engine.schedule_at(5.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(1.0, [] {}), AssertionError);
}

TEST(Engine, NegativeDelayThrows) {
  Engine engine;
  EXPECT_THROW(engine.schedule_after(-0.1, [] {}), AssertionError);
}

TEST(Engine, NextEventTimeReportsEarliestLive) {
  Engine engine;
  EventId early = engine.schedule_at(1.0, [] {});
  engine.schedule_at(2.0, [] {});
  EXPECT_DOUBLE_EQ(engine.next_event_time(), 1.0);
  engine.cancel(early);
  EXPECT_DOUBLE_EQ(engine.next_event_time(), 2.0);
}

TEST(Engine, NextEventTimeEmptyIsNever) {
  Engine engine;
  EXPECT_EQ(engine.next_event_time(), kNever);
}

TEST(Engine, ProcessedCountsOnlyFiredEvents) {
  Engine engine;
  engine.schedule_at(1.0, [] {});
  EventId id = engine.schedule_at(2.0, [] {});
  engine.cancel(id);
  engine.run();
  EXPECT_EQ(engine.processed(), 1u);
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine engine;
  EXPECT_FALSE(engine.step());
}

TEST(Engine, ManyEventsStress) {
  Engine engine;
  std::size_t counter = 0;
  for (int i = 0; i < 10000; ++i) {
    engine.schedule_at(static_cast<double>(i % 100), [&] { ++counter; });
  }
  engine.run();
  EXPECT_EQ(counter, 10000u);
  EXPECT_EQ(engine.processed(), 10000u);
}

// Regression: compact_heap's Floyd heapify sifts interior nodes, and the
// sift's bubble-up phase must stop at the sift's own start position — not at
// the root — or elements get hoisted above their subtree and the heap fires
// events out of (time, seq) order. The trigger needs a well-mixed heap
// array, so each round interleaves a schedule wave, a run_until slice (pops
// move back elements through the root, scrambling array order), and a cancel
// storm of ~2/3 of everything pending (drives dead > live -> compaction).
// With the unbounded bubble-up this pattern corrupts the heap in round one
// (verified: it throws the engine's t >= now_ assertion); afterwards
// delivery must be in nondecreasing time with same-time ties in scheduling
// order.
TEST(Engine, CancelHeavyCompactionPreservesOrder) {
  Engine engine;
  std::vector<std::pair<double, int>> fired;
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(rng >> 33);
  };

  std::vector<EventId> ids;
  int seq = 0;
  std::size_t canceled = 0;
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 200; ++i) {
      // Coarse time grid (1024 distinct offsets): plenty of same-time ties.
      const double t =
          engine.now() + static_cast<double>(next() % 1024) / 64.0;
      const int tag = seq++;
      ids.push_back(engine.schedule_at(t, [&fired, &engine, tag] {
        fired.emplace_back(engine.now(), tag);
      }));
    }
    engine.run_until(engine.now() + static_cast<double>(next() % 512) / 64.0);
    // Stale ids from prior rounds are generation-checked cancel no-ops.
    for (EventId& id : ids) {
      if (next() % 3 != 0 && engine.cancel(id)) ++canceled;
    }
  }

  engine.run();
  EXPECT_EQ(engine.pending(), 0u);
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(seq) - canceled);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1].first, fired[i].first)
        << "events fired out of time order at index " << i;
    if (fired[i - 1].first == fired[i].first) {
      ASSERT_LT(fired[i - 1].second, fired[i].second)
          << "same-time events fired out of scheduling order at index " << i;
    }
  }
}

// schedule_batch must be indistinguishable from calling schedule_at on each
// event in index order: same seq discipline, same tie-breaks, regardless of
// whether the admission path heapified (dominant batch) or sifted-up (small
// batch into a large heap).
TEST(EngineBatch, BatchMatchesSequentialScheduleIntoEmptyHeap) {
  Engine sequential;
  Engine batched;
  std::vector<int> seq_order;
  std::vector<int> batch_order;

  // Ties on purpose: three distinct times, many events each.
  std::vector<Engine::BatchEvent> batch;
  for (int i = 0; i < 60; ++i) {
    const SimTime at = 1.0 + static_cast<SimTime>(i % 3);
    sequential.schedule_at(at, [&seq_order, i] { seq_order.push_back(i); });
    batch.push_back({at, [&batch_order, i] { batch_order.push_back(i); }});
  }
  batched.schedule_batch(batch);

  sequential.run();
  batched.run();
  EXPECT_EQ(batch_order, seq_order);
  EXPECT_EQ(batched.now(), sequential.now());
  EXPECT_EQ(batched.processed(), sequential.processed());
}

TEST(EngineBatch, SmallBatchIntoLargeHeapPreservesTieBreaks) {
  Engine sequential;
  Engine batched;
  std::vector<int> seq_order;
  std::vector<int> batch_order;

  // Large pre-existing heap so the batch takes the incremental sift-up path.
  for (int i = 0; i < 200; ++i) {
    const SimTime at = 2.0 + 0.001 * static_cast<SimTime>(i % 7);
    sequential.schedule_at(at, [&seq_order, i] { seq_order.push_back(i); });
    batched.schedule_at(at, [&batch_order, i] { batch_order.push_back(i); });
  }
  // Small batch with times that tie existing entries: the batch's events must
  // sort after equal-time pre-existing ones (higher seq), exactly like
  // sequential schedule_at calls would.
  std::vector<Engine::BatchEvent> batch;
  for (int i = 200; i < 208; ++i) {
    const SimTime at = 2.0 + 0.001 * static_cast<SimTime>(i % 7);
    sequential.schedule_at(at, [&seq_order, i] { seq_order.push_back(i); });
    batch.push_back({at, [&batch_order, i] { batch_order.push_back(i); }});
  }
  batched.schedule_batch(batch);

  sequential.run();
  batched.run();
  EXPECT_EQ(batch_order, seq_order);
}

TEST(EngineBatch, EmptyBatchIsANoOp) {
  Engine engine;
  std::vector<Engine::BatchEvent> batch;
  engine.schedule_batch(batch);
  EXPECT_EQ(engine.pending(), 0u);
  engine.schedule_at(1.0, [] {});
  engine.schedule_batch(batch);
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(EngineBatch, BatchedEventsInterleaveWithLaterSequentialOnes) {
  Engine engine;
  std::vector<int> order;
  std::vector<Engine::BatchEvent> batch;
  batch.push_back({1.0, [&order] { order.push_back(0); }});
  batch.push_back({3.0, [&order] { order.push_back(2); }});
  engine.schedule_batch(batch);
  engine.schedule_at(2.0, [&order] { order.push_back(1); });
  engine.schedule_at(3.0, [&order] { order.push_back(3); });  // ties after batch
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EngineBatch, CancelStillWorksAroundABatch) {
  Engine engine;
  bool fired = false;
  EventId keep = engine.schedule_at(5.0, [&fired] { fired = true; });
  std::vector<Engine::BatchEvent> batch;
  for (int i = 0; i < 32; ++i) {
    batch.push_back({1.0 + 0.1 * i, [] {}});
  }
  engine.schedule_batch(batch);
  EXPECT_TRUE(engine.cancel(keep));
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.processed(), 32u);
}

TEST(Engine, RecursiveSchedulingChain) {
  Engine engine;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) engine.schedule_after(0.01, chain);
  };
  engine.schedule_after(0.01, chain);
  engine.run();
  EXPECT_EQ(depth, 100);
  EXPECT_NEAR(engine.now(), 1.0, 1e-9);
}

}  // namespace
}  // namespace gocast::sim

// Unit tests for the deterministic RNG: reproducibility, fork independence,
// sampling helpers, and distribution sanity.
#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace gocast {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_below(1000000), b.next_below(1000000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_below(1U << 30) == b.next_below(1U << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkByLabelIsStable) {
  Rng parent(7);
  Rng a = parent.fork("network");
  Rng b = Rng(7).fork("network");
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.next_below(1U << 30), b.next_below(1U << 30));
  }
}

TEST(Rng, ForksWithDifferentLabelsAreIndependent) {
  Rng parent(7);
  Rng a = parent.fork("alpha");
  Rng b = parent.fork("beta");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_below(1U << 30) == b.next_below(1U << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkByIndexIsStable) {
  Rng parent(9);
  Rng a = parent.fork(std::uint64_t{5});
  Rng b = Rng(9).fork(std::uint64_t{5});
  EXPECT_EQ(a.next_below(1U << 30), b.next_below(1U << 30));
}

TEST(Rng, ForkDoesNotConsumeParentStream) {
  Rng a(11);
  Rng b(11);
  (void)a.fork("child");
  EXPECT_EQ(a.next_below(1U << 30), b.next_below(1U << 30));
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(3);
  EXPECT_THROW((void)rng.next_below(0), AssertionError);
}

TEST(Rng, NextUnitInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NextUnitMeanIsCentered) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_unit();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(8);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.next_gaussian(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, BernoulliFraction) {
  Rng rng(12);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleWithoutReplacement) {
  Rng rng(14);
  std::vector<int> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  std::vector<int> s = rng.sample(v, 10);
  EXPECT_EQ(s.size(), 10u);
  std::set<int> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 10u);
}

TEST(Rng, SampleMoreThanPopulationReturnsAll) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3};
  std::vector<int> s = rng.sample(v, 10);
  EXPECT_EQ(s.size(), 3u);
}

TEST(Rng, SampleIsApproximatelyUniform) {
  Rng rng(16);
  std::vector<int> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  std::vector<int> counts(10, 0);
  for (int trial = 0; trial < 5000; ++trial) {
    for (int x : rng.sample(v, 3)) ++counts[static_cast<std::size_t>(x)];
  }
  // Each element should be picked ~1500 times (3/10 of 5000).
  for (int c : counts) EXPECT_NEAR(c, 1500, 200);
}

TEST(Rng, PickFromEmptyThrows) {
  Rng rng(17);
  std::vector<int> empty;
  EXPECT_THROW((void)rng.pick(empty), AssertionError);
}

TEST(SplitMix, KnownGoodMixing) {
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 1;
  // Nearby seeds must produce wildly different outputs.
  std::uint64_t a = splitmix64(s1);
  std::uint64_t b = splitmix64(s2);
  EXPECT_NE(a, b);
  int differing_bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(differing_bits, 16);
}

TEST(HashLabel, DistinctLabelsDistinctHashes) {
  EXPECT_NE(hash_label("alpha"), hash_label("beta"));
  EXPECT_NE(hash_label(""), hash_label("a"));
  EXPECT_EQ(hash_label("stable"), hash_label("stable"));
}

}  // namespace
}  // namespace gocast

// ZipfSampler coverage: the sampler is the determinism root for group sizes
// and popularity (group_directory derives everything from it), so beyond the
// usual distribution sanity the exact draw sequences are pinned — Q32.32
// fixed-point weights plus splitmix64 draws must produce identical values on
// every platform/compiler, or distributed gocastd processes disagree on the
// subscription table.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "common/zipf.h"

namespace gocast::common {
namespace {

TEST(Zipf, WeightsAreExactFixedPointValues) {
  // rank^-s in Q32.32. Rank 1 is exactly 1.0; the rest are pinned constants
  // (recomputing them with floating-point pow would reintroduce the
  // platform dependence the fixed-point path exists to remove).
  const std::uint64_t s09 = zipf_exponent_fixed(0.9);
  EXPECT_EQ(s09, 3865470566u);  // 0.9 * 2^32, rounded
  EXPECT_EQ(zipf_weight_fixed(1, s09), 4294967296u);  // 1.0 in Q32.32
  EXPECT_EQ(zipf_weight_fixed(2, s09), 2301615967u);  // 2^-0.9
  EXPECT_EQ(zipf_weight_fixed(10, s09), 540704338u);  // 10^-0.9
}

TEST(Zipf, WeightsDecreaseMonotonically) {
  const std::uint64_t s = zipf_exponent_fixed(0.8);
  std::uint64_t prev = zipf_weight_fixed(1, s);
  for (std::uint32_t rank = 2; rank <= 64; ++rank) {
    std::uint64_t w = zipf_weight_fixed(rank, s);
    EXPECT_LT(w, prev) << "rank " << rank;
    prev = w;
  }
}

TEST(Zipf, ExponentZeroIsUniform) {
  const std::uint64_t s0 = zipf_exponent_fixed(0.0);
  for (std::uint32_t rank = 1; rank <= 8; ++rank) {
    EXPECT_EQ(zipf_weight_fixed(rank, s0), 4294967296u);
  }
}

TEST(Zipf, SamplerSequenceIsPinned) {
  // The exact draw sequence for (n=16, s=0.9, seed=12345). A change here
  // means every seeded group directory in the wild changes — treat as a
  // wire-format break, not a refactor detail.
  ZipfSampler sampler(16, 0.9, 12345);
  const std::array<std::uint32_t, 12> expected{0, 0, 0, 0, 3, 1,
                                               0, 2, 2, 10, 0, 1};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(sampler.next(), expected[i]) << "draw " << i;
  }
  EXPECT_EQ(sampler.total_weight(), 16345843370u);
  EXPECT_EQ(sampler.weight(0), 4294967296u);
  EXPECT_EQ(sampler.weight(1), 2301615967u);
  EXPECT_EQ(sampler.weight(15), 354202698u);
}

TEST(Zipf, SameSeedSameSequenceDifferentSeedDiffers) {
  ZipfSampler a(64, 1.0, 7);
  ZipfSampler b(64, 1.0, 7);
  ZipfSampler c(64, 1.0, 8);
  bool any_diff = false;
  for (int i = 0; i < 256; ++i) {
    std::uint32_t va = a.next();
    EXPECT_EQ(va, b.next()) << "draw " << i;
    any_diff |= (va != c.next());
  }
  EXPECT_TRUE(any_diff);
}

TEST(Zipf, DrawsRespectTheDistributionShape) {
  // With s=1.0 over 16 ranks, rank 0 must clearly dominate the tail; every
  // draw stays in range.
  ZipfSampler sampler(16, 1.0, 2026);
  std::vector<int> hits(16, 0);
  for (int i = 0; i < 20000; ++i) {
    std::uint32_t r = sampler.next();
    ASSERT_LT(r, 16u);
    ++hits[r];
  }
  EXPECT_GT(hits[0], hits[8] * 4);
  EXPECT_GT(hits[0], 20000 / 8);  // ~29.6% expected for H_16
  // The tail is rare but not impossible at this sample size.
  int tail = 0;
  for (int r = 8; r < 16; ++r) tail += hits[r];
  EXPECT_GT(tail, 0);
}

TEST(Zipf, SingleRankAlwaysDrawsZero) {
  ZipfSampler sampler(1, 0.9, 42);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(sampler.next(), 0u);
}

}  // namespace
}  // namespace gocast::common

// Integration tests for the full GoCast system: startup, convergence,
// joins, landmark measurement, failure handling, and determinism.
#include "gocast/system.h"

#include <gtest/gtest.h>

#include "analysis/graph_analysis.h"

namespace gocast::core {
namespace {

TEST(System, StartBuildsConnectedOverlayWithTargetDegrees) {
  SystemConfig config;
  config.node_count = 64;
  config.seed = 2;
  System system(config);
  system.start();
  system.run_for(90.0);

  auto graph = analysis::snapshot_overlay(system);
  auto comp = analysis::components(graph);
  EXPECT_DOUBLE_EQ(comp.largest_fraction, 1.0);

  IntDistribution degrees = analysis::degree_distribution(system);
  EXPECT_GT(degrees.mean(), 5.5);
  EXPECT_LT(degrees.mean(), 7.5);
}

TEST(System, TreeSpansAllNodesAfterWarmup) {
  SystemConfig config;
  config.node_count = 48;
  config.seed = 4;
  System system(config);
  system.start();
  system.run_for(90.0);

  auto stats = analysis::tree_stats(system);
  EXPECT_TRUE(stats.spanning);
  EXPECT_TRUE(stats.is_forest);
  EXPECT_EQ(stats.tree_links, 47u);
  EXPECT_NE(stats.root, kInvalidNode);
}

TEST(System, TreeLinksAreOverlayLinks) {
  SystemConfig config;
  config.node_count = 48;
  config.seed = 4;
  System system(config);
  system.start();
  system.run_for(90.0);

  for (NodeId id = 0; id < system.size(); ++id) {
    NodeId parent = system.node(id).tree().parent();
    if (parent != kInvalidNode) {
      EXPECT_TRUE(system.node(id).overlay().is_neighbor(parent))
          << "node " << id << " parent " << parent;
    }
  }
}

TEST(System, LandmarksGetMeasured) {
  SystemConfig config;
  config.node_count = 24;
  config.seed = 6;
  config.landmark_count = 4;
  System system(config);
  system.start();
  system.run_for(5.0);

  const auto& landmarks = system.node(10).landmarks();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(std::isnan(landmarks[i])) << "slot " << i;
    EXPECT_NEAR(landmarks[i],
                system.network().rtt(10, static_cast<NodeId>(i)), 1e-6);
  }
  for (std::size_t i = 4; i < membership::kLandmarkSlots; ++i) {
    EXPECT_TRUE(std::isnan(landmarks[i]));
  }
}

TEST(System, FailRandomFractionKillsExactCount) {
  SystemConfig config;
  config.node_count = 40;
  config.seed = 8;
  System system(config);
  system.start();
  system.run_for(10.0);

  auto killed = system.fail_random_fraction(0.25);
  EXPECT_EQ(killed.size(), 10u);
  EXPECT_EQ(system.network().alive_count(), 30u);
  EXPECT_EQ(system.alive_nodes().size(), 30u);
  for (NodeId id : killed) EXPECT_FALSE(system.network().alive(id));
}

TEST(System, SurvivorsRepairOverlayAfterFailures) {
  SystemConfig config;
  config.node_count = 64;
  config.seed = 10;
  System system(config);
  system.start();
  system.run_for(90.0);
  system.fail_random_fraction(0.25);
  system.run_for(60.0);  // repair enabled (no freeze)

  auto graph = analysis::snapshot_overlay(system);
  EXPECT_DOUBLE_EQ(analysis::components(graph).largest_fraction, 1.0);
  // Degrees recover toward target.
  IntDistribution degrees = analysis::degree_distribution(system);
  EXPECT_GT(degrees.mean(), 5.0);
}

TEST(System, TreeRecoversAfterRootFailure) {
  SystemConfig config;
  config.node_count = 32;
  config.seed = 12;
  System system(config);
  system.start();
  system.run_for(90.0);

  auto before = analysis::tree_stats(system);
  ASSERT_TRUE(before.spanning);
  system.node(before.root).kill();
  system.run_for(120.0);  // a few heartbeat/takeover periods

  auto after = analysis::tree_stats(system);
  EXPECT_NE(after.root, before.root);
  EXPECT_NE(after.root, kInvalidNode);
  EXPECT_TRUE(after.spanning);
}

TEST(System, JoinViaBootstrapIntegratesNewcomer) {
  SystemConfig config;
  config.node_count = 24;
  config.seed = 14;
  // Reserve the last node: give it no view/links by doing a manual join.
  System system(config);
  system.start();
  system.run_for(30.0);

  // A "fresh" node: clear perspective by using one that the harness set up,
  // then verify the join protocol transfers membership.
  NodeId newcomer = 23;
  std::size_t before = system.node(newcomer).view().size();
  system.node(newcomer).join_via(0);
  system.run_for(2.0);
  EXPECT_GE(system.node(newcomer).view().size(), before);
  system.run_for(30.0);
  EXPECT_GE(system.node(newcomer).overlay().degree(), 5);
}

TEST(System, DeterministicAcrossRuns) {
  auto fingerprint = [](std::uint64_t seed) {
    SystemConfig config;
    config.node_count = 32;
    config.seed = seed;
    System system(config);
    system.start();
    system.run_for(30.0);
    std::uint64_t hash = 1469598103934665603ULL;
    for (NodeId id = 0; id < system.size(); ++id) {
      for (NodeId peer : system.node(id).overlay().neighbor_ids()) {
        hash = (hash ^ peer) * 1099511628211ULL;
      }
      hash = (hash ^ system.node(id).tree().parent()) * 1099511628211ULL;
    }
    return hash;
  };
  EXPECT_EQ(fingerprint(42), fingerprint(42));
  EXPECT_NE(fingerprint(42), fingerprint(43));
}

TEST(System, StartTwiceThrows) {
  SystemConfig config;
  config.node_count = 8;
  System system(config);
  system.start();
  EXPECT_THROW(system.start(), AssertionError);
}

TEST(System, RejectsTinySystems) {
  SystemConfig config;
  config.node_count = 1;
  EXPECT_THROW(System{config}, AssertionError);
}

TEST(System, FreezeAllStopsAdaptation) {
  SystemConfig config;
  config.node_count = 32;
  config.seed = 16;
  System system(config);
  system.start();
  system.run_for(60.0);
  system.freeze_all();

  std::uint64_t changes_before = 0;
  for (NodeId id = 0; id < system.size(); ++id) {
    changes_before += system.node(id).overlay().links_added() +
                      system.node(id).overlay().links_dropped();
  }
  system.run_for(30.0);
  std::uint64_t changes_after = 0;
  for (NodeId id = 0; id < system.size(); ++id) {
    changes_after += system.node(id).overlay().links_added() +
                     system.node(id).overlay().links_dropped();
  }
  EXPECT_EQ(changes_before, changes_after);
}

TEST(DefaultLatencyModel, CachedPerSeed) {
  auto a = default_latency_model(123, 64);
  auto b = default_latency_model(123, 64);
  EXPECT_EQ(a.get(), b.get());  // same shared instance
  auto c = default_latency_model(124, 64);
  EXPECT_NE(a.get(), c.get());
}

}  // namespace
}  // namespace gocast::core

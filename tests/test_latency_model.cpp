// Tests for latency models: matrix validation, the synthetic King dataset's
// envelope (the substitution contract in DESIGN.md), and the King file
// loader.
#include "net/latency_model.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/assert.h"

namespace gocast::net {
namespace {

TEST(RingLatencyModel, SymmetricAndZeroDiagonal) {
  RingLatencyModel model(10, 0.1);
  EXPECT_EQ(model.site_count(), 10u);
  for (std::uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(model.one_way(i, i), 0.0);
    for (std::uint32_t j = 0; j < 10; ++j) {
      EXPECT_DOUBLE_EQ(model.one_way(i, j), model.one_way(j, i));
    }
  }
}

TEST(RingLatencyModel, MaxAtAntipode) {
  RingLatencyModel model(10, 0.1);
  EXPECT_DOUBLE_EQ(model.one_way(0, 5), 0.1);
  EXPECT_DOUBLE_EQ(model.one_way(0, 1), 0.02);
  EXPECT_DOUBLE_EQ(model.one_way(0, 9), 0.02);  // wraps around
}

TEST(MatrixLatencyModel, RejectsNonzeroDiagonal) {
  std::vector<float> matrix{0.0f, 0.1f, 0.1f, 0.5f};
  EXPECT_THROW(MatrixLatencyModel(2, std::move(matrix)), AssertionError);
}

TEST(MatrixLatencyModel, RejectsWrongSize) {
  std::vector<float> matrix{0.0f, 0.1f, 0.1f};
  EXPECT_THROW(MatrixLatencyModel(2, std::move(matrix)), AssertionError);
}

TEST(MatrixLatencyModel, LooksUpValues) {
  std::vector<float> matrix{0.0f, 0.25f, 0.25f, 0.0f};
  MatrixLatencyModel model(2, std::move(matrix));
  EXPECT_FLOAT_EQ(static_cast<float>(model.one_way(0, 1)), 0.25f);
  EXPECT_DOUBLE_EQ(model.mean_one_way(), 0.25);
  EXPECT_DOUBLE_EQ(model.max_one_way(), 0.25);
}

class SyntheticKingTest : public ::testing::Test {
 protected:
  static std::unique_ptr<MatrixLatencyModel> make(std::size_t sites,
                                                  std::uint64_t seed) {
    SyntheticKingParams params;
    params.sites = sites;
    return make_synthetic_king(params, Rng(seed));
  }
};

TEST_F(SyntheticKingTest, MatchesPaperEnvelope) {
  // The paper's King data: avg one-way 91 ms, max one-way 399 ms.
  auto model = make(400, 1);
  double mean = model->mean_one_way();
  EXPECT_GT(mean, 0.080);
  EXPECT_LT(mean, 0.102);
  EXPECT_LE(model->max_one_way(), 0.399 + 1e-6);
  EXPECT_GT(model->max_one_way(), 0.200);
}

TEST_F(SyntheticKingTest, SymmetricWithZeroDiagonal) {
  auto model = make(100, 2);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(model->one_way(i, i), 0.0);
    for (std::uint32_t j = i + 1; j < 100; ++j) {
      EXPECT_FLOAT_EQ(static_cast<float>(model->one_way(i, j)),
                      static_cast<float>(model->one_way(j, i)));
    }
  }
}

TEST_F(SyntheticKingTest, DistinctSitesHavePositiveLatency) {
  auto model = make(100, 3);
  for (std::uint32_t i = 0; i < 100; ++i) {
    for (std::uint32_t j = i + 1; j < 100; ++j) {
      EXPECT_GE(model->one_way(i, j), 0.0005);
    }
  }
}

TEST_F(SyntheticKingTest, ThreadCountDoesNotChangeTheMatrix) {
  // Generation is row-sharded with one forked jitter stream per row, so the
  // matrix must be byte-identical at every worker count.
  auto build = [](std::size_t threads) {
    SyntheticKingParams params;
    params.sites = 96;
    params.threads = threads;
    return make_synthetic_king(params, Rng(17));
  };
  auto serial = build(1);
  auto two = build(2);
  auto four = build(4);
  for (std::uint32_t i = 0; i < 96; ++i) {
    for (std::uint32_t j = 0; j < 96; ++j) {
      ASSERT_EQ(serial->one_way(i, j), two->one_way(i, j));
      ASSERT_EQ(serial->one_way(i, j), four->one_way(i, j));
    }
  }
}

TEST_F(SyntheticKingTest, DeterministicPerSeed) {
  auto a = make(64, 7);
  auto b = make(64, 7);
  auto c = make(64, 8);
  bool any_diff = false;
  for (std::uint32_t i = 0; i < 64; ++i) {
    for (std::uint32_t j = i + 1; j < 64; ++j) {
      EXPECT_EQ(a->one_way(i, j), b->one_way(i, j));
      if (a->one_way(i, j) != c->one_way(i, j)) any_diff = true;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(SyntheticKingTest, HasProximityStructure) {
  // The clustered layout must produce meaningful spread: the closest pairs
  // should be far below the mean (otherwise proximity-aware overlays have
  // nothing to exploit).
  auto model = make(400, 4);
  double mean = model->mean_one_way();
  std::size_t below_third = 0;
  std::size_t pairs = 0;
  for (std::uint32_t i = 0; i < 400; ++i) {
    for (std::uint32_t j = i + 1; j < 400; ++j) {
      ++pairs;
      if (model->one_way(i, j) < mean / 3.0) ++below_third;
    }
  }
  // A decent fraction of pairs must be "nearby".
  EXPECT_GT(static_cast<double>(below_third) / static_cast<double>(pairs), 0.02);
}

TEST(KingFileLoader, ParsesTriplesAndHalvesRtt) {
  std::string path = ::testing::TempDir() + "/king_test.txt";
  {
    std::ofstream out(path);
    out << "# comment line\n";
    out << "1 2 100000\n";   // 100 ms RTT -> 50 ms one-way
    out << "1 3 200000\n";
    out << "2 3 300000\n";
  }
  auto model = MatrixLatencyModel::load_king_file(path);
  ASSERT_EQ(model->site_count(), 3u);
  EXPECT_NEAR(model->one_way(0, 1), 0.050, 1e-6);
  EXPECT_NEAR(model->one_way(0, 2), 0.100, 1e-6);
  EXPECT_NEAR(model->one_way(1, 2), 0.150, 1e-6);
  std::remove(path.c_str());
}

TEST(KingFileLoader, DropsIncompleteSites) {
  std::string path = ::testing::TempDir() + "/king_incomplete.txt";
  {
    std::ofstream out(path);
    // Site 4 has only one measurement; it must be dropped.
    out << "1 2 100000\n";
    out << "1 3 200000\n";
    out << "2 3 300000\n";
    out << "1 4 400000\n";
  }
  auto model = MatrixLatencyModel::load_king_file(path);
  EXPECT_EQ(model->site_count(), 3u);
  std::remove(path.c_str());
}

TEST(KingFileLoader, MissingFileThrows) {
  EXPECT_THROW(MatrixLatencyModel::load_king_file("/nonexistent/king.txt"),
               AssertionError);
}

}  // namespace
}  // namespace gocast::net

// Tests for GoCastNode itself: dispatch, lifecycle, wire sizes, and the
// join protocol's message exchange.
#include "gocast/node.h"

#include <gtest/gtest.h>

#include "gocast/messages.h"
#include "gocast/system.h"
#include "overlay/messages.h"
#include "tree/messages.h"

namespace gocast::core {
namespace {

TEST(GoCastNode, KillStopsAllActivity) {
  SystemConfig config;
  config.node_count = 16;
  config.seed = 60;
  System system(config);
  system.start();
  system.run_for(10.0);

  system.node(5).kill();
  std::uint64_t gossips = system.node(5).dissemination().gossips_sent();
  std::uint64_t pings = system.node(5).overlay().pings_sent();
  system.run_for(20.0);
  EXPECT_EQ(system.node(5).dissemination().gossips_sent(), gossips);
  EXPECT_EQ(system.node(5).overlay().pings_sent(), pings);
  EXPECT_FALSE(system.network().alive(5));
}

TEST(GoCastNode, FreezeKeepsDisseminationRunning) {
  SystemConfig config;
  config.node_count = 16;
  config.seed = 61;
  System system(config);
  system.start();
  system.run_for(30.0);

  system.node(3).freeze();
  std::uint64_t gossips = system.node(3).dissemination().gossips_sent();
  std::uint64_t changes = system.node(3).overlay().links_added() +
                          system.node(3).overlay().links_dropped();
  system.run_for(20.0);
  EXPECT_GT(system.node(3).dissemination().gossips_sent(), gossips);
  EXPECT_EQ(system.node(3).overlay().links_added() +
                system.node(3).overlay().links_dropped(),
            changes);
  EXPECT_TRUE(system.node(3).overlay().frozen());
}

TEST(GoCastNode, MulticastFromDeadNodeThrows) {
  SystemConfig config;
  config.node_count = 8;
  config.seed = 62;
  System system(config);
  system.start();
  system.node(2).kill();
  EXPECT_THROW(system.node(2).multicast(64), AssertionError);
}

TEST(GoCastNode, UnknownPacketTypeIsIgnored) {
  SystemConfig config;
  config.node_count = 8;
  config.seed = 63;
  System system(config);
  system.start();

  struct WeirdMsg final : net::Message {
    WeirdMsg() : net::Message(net::MsgKind::kOther, 9999) {}
    std::size_t wire_size() const override { return 8; }
  };
  // Must not throw or corrupt state.
  system.network().send(0, 1, std::make_shared<WeirdMsg>());
  system.run_for(1.0);
  EXPECT_TRUE(system.network().alive(1));
}

TEST(GoCastNode, JoinReplyCarriesMembersAndLandmarks) {
  SystemConfig config;
  config.node_count = 16;
  config.seed = 64;
  System system(config);
  system.start();
  system.run_for(10.0);  // landmark pings complete

  // Simulate a join against node 0 from node 15 with an emptied view.
  auto& joiner = system.node(15);
  std::vector<NodeId> before;
  for (std::size_t i = 0; i < joiner.view().size(); ++i) {
    before.push_back(joiner.view().id_at(i));
  }
  for (NodeId id : before) joiner.view().remove(id);
  ASSERT_EQ(joiner.view().size(), 0u);

  joiner.join_via(0);
  system.run_for(2.0);
  EXPECT_GT(joiner.view().size(), 4u);
}

TEST(WireSizes, AllMessageTypesReportPlausibleSizes) {
  net::PeerDegrees degrees;
  EXPECT_GT(overlay::NeighborRequestMsg(overlay::LinkKind::kNearby, 0.05, false,
                                        degrees)
                .wire_size(),
            8u);
  EXPECT_GT(overlay::NeighborAcceptMsg(overlay::LinkKind::kNearby, 0.05, degrees)
                .wire_size(),
            8u);
  EXPECT_GT(overlay::NeighborRejectMsg(overlay::LinkKind::kRandom, degrees)
                .wire_size(),
            8u);
  EXPECT_GT(overlay::NeighborDropMsg(degrees).wire_size(), 8u);
  EXPECT_GT(overlay::LinkTransferMsg(3, degrees).wire_size(), 8u);
  EXPECT_EQ(overlay::PingMsg(1).wire_size(), net::kFrameOverheadBytes + 4);
  EXPECT_GT(overlay::PongMsg(1, degrees).wire_size(),
            overlay::PingMsg(1).wire_size());
  EXPECT_GT(tree::HeartbeatMsg(tree::Epoch{1, 0}, 1, 0.0, degrees).wire_size(),
            16u);
  EXPECT_GT(tree::ChildJoinMsg(tree::Epoch{1, 0}, degrees).wire_size(), 8u);
  EXPECT_GT(tree::ChildLeaveMsg(degrees).wire_size(), 8u);

  DataMsg data(MsgId{0, 1}, 0.0, 2048, true, degrees);
  EXPECT_GT(data.wire_size(), 2048u);  // payload + header

  std::vector<DigestEntry> entries{{MsgId{0, 1}, 0.0}, {MsgId{0, 2}, 0.0}};
  std::vector<membership::MemberEntry> members(3);
  GossipDigestMsg digest(entries, members, degrees);
  EXPECT_GT(digest.wire_size(),
            2 * DigestEntry::wire_size() +
                3 * membership::MemberEntry::wire_size());
  // A digest is small relative to payloads — the premise of gossiping IDs.
  EXPECT_LT(digest.wire_size(), 256u);

  PullRequestMsg pull({MsgId{0, 1}}, degrees);
  EXPECT_GT(pull.wire_size(), 8u);
  EXPECT_LT(pull.wire_size(), 64u);

  overlay::JoinRequestMsg join_req;
  EXPECT_EQ(join_req.wire_size(), net::kFrameOverheadBytes);
  overlay::JoinReplyMsg join_reply(members);
  EXPECT_GT(join_reply.wire_size(), 3 * membership::MemberEntry::wire_size());
}

TEST(WireSizes, PeerDegreesRideAlongWhereExpected) {
  net::PeerDegrees degrees;
  degrees.rand_degree = 1;
  overlay::NeighborDropMsg drop(degrees);
  ASSERT_NE(drop.peer_degrees(), nullptr);
  EXPECT_EQ(drop.peer_degrees()->rand_degree, 1);

  overlay::PingMsg ping(7);
  EXPECT_EQ(ping.peer_degrees(), nullptr);  // bare UDP probe

  DataMsg data(MsgId{0, 1}, 0.0, 10, true, degrees);
  ASSERT_NE(data.peer_degrees(), nullptr);
}

}  // namespace
}  // namespace gocast::core

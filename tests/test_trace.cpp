// Tests for the message-flow trace subsystem.
#include "net/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "gocast/system.h"
#include "net/network.h"

namespace gocast::net {
namespace {

struct ProbeMsg final : Message {
  ProbeMsg() : Message(MsgKind::kOther, 998) {}
  std::size_t wire_size() const override { return 64; }
};

struct NullEndpoint final : Endpoint {
  void handle_message(NodeId, const MessagePtr&) override {}
};

TEST(CountingTraceSink, CountsSendsDeliversDrops) {
  sim::Engine engine;
  NetworkConfig config;
  Network network(engine, std::make_shared<RingLatencyModel>(4, 0.01), config,
                  Rng(1));
  NullEndpoint a;
  NullEndpoint b;
  network.set_endpoint(network.add_node(0), &a);
  network.set_endpoint(network.add_node(1), &b);

  CountingTraceSink sink;
  network.set_trace(&sink);

  network.send(0, 1, std::make_shared<ProbeMsg>());
  engine.run();  // first message delivered while the peer is alive
  network.fail_node(1);
  network.send(0, 1, std::make_shared<ProbeMsg>());
  engine.run();

  EXPECT_EQ(sink.sends(MsgKind::kOther), 2u);
  EXPECT_EQ(sink.delivers(MsgKind::kOther), 1u);
  EXPECT_EQ(sink.drops(MsgKind::kOther), 1u);
  EXPECT_EQ(sink.total_sends(), 2u);
  // The drop was a send to a dead receiver, and counted as such.
  EXPECT_EQ(sink.drops(DropReason::kDeadReceiver), 1u);
  EXPECT_EQ(sink.drops(DropReason::kRandomLoss), 0u);
  EXPECT_EQ(sink.drops(DropReason::kLinkPolicy), 0u);
}

TEST(CountingTraceSink, AttributesRandomLossDrops) {
  sim::Engine engine;
  NetworkConfig config;
  config.loss_probability = 0.5;
  Network network(engine, std::make_shared<RingLatencyModel>(4, 0.01), config,
                  Rng(3));
  NullEndpoint a;
  NullEndpoint b;
  network.set_endpoint(network.add_node(0), &a);
  network.set_endpoint(network.add_node(1), &b);
  CountingTraceSink sink;
  network.set_trace(&sink);

  for (int i = 0; i < 200; ++i) network.send(0, 1, std::make_shared<ProbeMsg>());
  engine.run();

  EXPECT_GT(sink.drops(DropReason::kRandomLoss), 0u);
  EXPECT_EQ(sink.drops(DropReason::kRandomLoss), sink.drops(MsgKind::kOther));
  EXPECT_EQ(sink.drops(DropReason::kDeadReceiver), 0u);
  // The per-reason split totals the per-kind drop count, and agrees with
  // TrafficStats accounting.
  EXPECT_EQ(sink.drops(DropReason::kRandomLoss) +
                sink.drops(DropReason::kDeadReceiver) +
                sink.drops(DropReason::kLinkPolicy),
            sink.drops(MsgKind::kOther));
  EXPECT_EQ(sink.drops(DropReason::kRandomLoss), network.traffic().lost());
}

TEST(CountingTraceSink, ObservesProtocolTrafficByKind) {
  core::SystemConfig config;
  config.node_count = 16;
  config.seed = 90;
  core::System system(config);
  CountingTraceSink sink;
  system.network().set_trace(&sink);
  system.start();
  system.run_for(20.0);
  system.node(0).multicast(256);
  system.run_for(3.0);

  EXPECT_GT(sink.sends(MsgKind::kGossipDigest), 0u);
  EXPECT_GT(sink.sends(MsgKind::kPing), 0u);
  EXPECT_GT(sink.sends(MsgKind::kTreeControl), 0u);
  EXPECT_GT(sink.sends(MsgKind::kData), 0u);
  // Nothing lost in a healthy run.
  EXPECT_EQ(sink.drops(MsgKind::kData), 0u);
}

TEST(CsvTraceSink, WritesRows) {
  std::string path = ::testing::TempDir() + "/trace_test.csv";
  {
    sim::Engine engine;
    Network network(engine, std::make_shared<RingLatencyModel>(4, 0.01),
                    NetworkConfig{}, Rng(1));
    NullEndpoint a;
    NullEndpoint b;
    network.set_endpoint(network.add_node(0), &a);
    network.set_endpoint(network.add_node(1), &b);
    CsvTraceSink sink(path);
    network.set_trace(&sink);
    network.send(0, 1, std::make_shared<ProbeMsg>());
    engine.run();
    network.fail_node(1);
    network.send(0, 1, std::make_shared<ProbeMsg>());
    engine.run();
  }
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "event,time,from,to,kind,packet_type,bytes,reason");
  std::string send_row;
  std::getline(in, send_row);
  EXPECT_EQ(send_row.rfind("send,", 0), 0u);
  // Send/deliver rows leave the reason column empty.
  EXPECT_EQ(send_row.back(), ',');
  std::string deliver_row;
  std::getline(in, deliver_row);
  EXPECT_EQ(deliver_row.rfind("deliver,", 0), 0u);
  std::string send2_row;
  std::getline(in, send2_row);
  std::string drop_row;
  std::getline(in, drop_row);
  EXPECT_EQ(drop_row.rfind("drop,", 0), 0u);
  // Drop rows name the mechanism: the receiver was dead.
  EXPECT_EQ(drop_row.substr(drop_row.rfind(',') + 1), "dead");
  std::remove(path.c_str());
}

TEST(CsvTraceSink, UnwritablePathThrows) {
  EXPECT_THROW(CsvTraceSink("/nonexistent/dir/trace.csv"), AssertionError);
}

}  // namespace
}  // namespace gocast::net
